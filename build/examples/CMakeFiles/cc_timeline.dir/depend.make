# Empty dependencies file for cc_timeline.
# This may be replaced when dependencies are built.
