file(REMOVE_RECURSE
  "CMakeFiles/cc_timeline.dir/cc_timeline.cpp.o"
  "CMakeFiles/cc_timeline.dir/cc_timeline.cpp.o.d"
  "cc_timeline"
  "cc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
