file(REMOVE_RECURSE
  "CMakeFiles/windy_forest.dir/windy_forest.cpp.o"
  "CMakeFiles/windy_forest.dir/windy_forest.cpp.o.d"
  "windy_forest"
  "windy_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windy_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
