# Empty dependencies file for windy_forest.
# This may be replaced when dependencies are built.
