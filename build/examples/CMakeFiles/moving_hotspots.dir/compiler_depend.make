# Empty compiler generated dependencies file for moving_hotspots.
# This may be replaced when dependencies are built.
