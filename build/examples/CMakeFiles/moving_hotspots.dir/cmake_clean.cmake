file(REMOVE_RECURSE
  "CMakeFiles/moving_hotspots.dir/moving_hotspots.cpp.o"
  "CMakeFiles/moving_hotspots.dir/moving_hotspots.cpp.o.d"
  "moving_hotspots"
  "moving_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
