file(REMOVE_RECURSE
  "CMakeFiles/ibsim_topo.dir/topo/builders.cpp.o"
  "CMakeFiles/ibsim_topo.dir/topo/builders.cpp.o.d"
  "CMakeFiles/ibsim_topo.dir/topo/routing.cpp.o"
  "CMakeFiles/ibsim_topo.dir/topo/routing.cpp.o.d"
  "CMakeFiles/ibsim_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/ibsim_topo.dir/topo/topology.cpp.o.d"
  "libibsim_topo.a"
  "libibsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
