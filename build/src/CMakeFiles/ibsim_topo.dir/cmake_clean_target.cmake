file(REMOVE_RECURSE
  "libibsim_topo.a"
)
