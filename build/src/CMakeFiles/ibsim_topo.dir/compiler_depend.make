# Empty compiler generated dependencies file for ibsim_topo.
# This may be replaced when dependencies are built.
