file(REMOVE_RECURSE
  "libibsim_analysis.a"
)
