file(REMOVE_RECURSE
  "CMakeFiles/ibsim_analysis.dir/analysis/series.cpp.o"
  "CMakeFiles/ibsim_analysis.dir/analysis/series.cpp.o.d"
  "CMakeFiles/ibsim_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/ibsim_analysis.dir/analysis/table.cpp.o.d"
  "CMakeFiles/ibsim_analysis.dir/analysis/tmax.cpp.o"
  "CMakeFiles/ibsim_analysis.dir/analysis/tmax.cpp.o.d"
  "libibsim_analysis.a"
  "libibsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
