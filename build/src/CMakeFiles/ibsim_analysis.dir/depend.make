# Empty dependencies file for ibsim_analysis.
# This may be replaced when dependencies are built.
