file(REMOVE_RECURSE
  "CMakeFiles/ibsim_traffic.dir/traffic/burst.cpp.o"
  "CMakeFiles/ibsim_traffic.dir/traffic/burst.cpp.o.d"
  "CMakeFiles/ibsim_traffic.dir/traffic/destination.cpp.o"
  "CMakeFiles/ibsim_traffic.dir/traffic/destination.cpp.o.d"
  "CMakeFiles/ibsim_traffic.dir/traffic/generator.cpp.o"
  "CMakeFiles/ibsim_traffic.dir/traffic/generator.cpp.o.d"
  "CMakeFiles/ibsim_traffic.dir/traffic/hotspot_schedule.cpp.o"
  "CMakeFiles/ibsim_traffic.dir/traffic/hotspot_schedule.cpp.o.d"
  "CMakeFiles/ibsim_traffic.dir/traffic/scenario.cpp.o"
  "CMakeFiles/ibsim_traffic.dir/traffic/scenario.cpp.o.d"
  "libibsim_traffic.a"
  "libibsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
