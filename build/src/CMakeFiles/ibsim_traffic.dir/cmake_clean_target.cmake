file(REMOVE_RECURSE
  "libibsim_traffic.a"
)
