# Empty compiler generated dependencies file for ibsim_traffic.
# This may be replaced when dependencies are built.
