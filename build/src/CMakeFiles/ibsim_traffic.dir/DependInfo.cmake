
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/burst.cpp" "src/CMakeFiles/ibsim_traffic.dir/traffic/burst.cpp.o" "gcc" "src/CMakeFiles/ibsim_traffic.dir/traffic/burst.cpp.o.d"
  "/root/repo/src/traffic/destination.cpp" "src/CMakeFiles/ibsim_traffic.dir/traffic/destination.cpp.o" "gcc" "src/CMakeFiles/ibsim_traffic.dir/traffic/destination.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/CMakeFiles/ibsim_traffic.dir/traffic/generator.cpp.o" "gcc" "src/CMakeFiles/ibsim_traffic.dir/traffic/generator.cpp.o.d"
  "/root/repo/src/traffic/hotspot_schedule.cpp" "src/CMakeFiles/ibsim_traffic.dir/traffic/hotspot_schedule.cpp.o" "gcc" "src/CMakeFiles/ibsim_traffic.dir/traffic/hotspot_schedule.cpp.o.d"
  "/root/repo/src/traffic/scenario.cpp" "src/CMakeFiles/ibsim_traffic.dir/traffic/scenario.cpp.o" "gcc" "src/CMakeFiles/ibsim_traffic.dir/traffic/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
