# Empty compiler generated dependencies file for ibsim_core.
# This may be replaced when dependencies are built.
