
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/log.cpp" "src/CMakeFiles/ibsim_core.dir/core/log.cpp.o" "gcc" "src/CMakeFiles/ibsim_core.dir/core/log.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/ibsim_core.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/ibsim_core.dir/core/rng.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/ibsim_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/ibsim_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/ibsim_core.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/ibsim_core.dir/core/stats.cpp.o.d"
  "/root/repo/src/core/time.cpp" "src/CMakeFiles/ibsim_core.dir/core/time.cpp.o" "gcc" "src/CMakeFiles/ibsim_core.dir/core/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
