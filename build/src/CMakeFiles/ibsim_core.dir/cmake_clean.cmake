file(REMOVE_RECURSE
  "CMakeFiles/ibsim_core.dir/core/log.cpp.o"
  "CMakeFiles/ibsim_core.dir/core/log.cpp.o.d"
  "CMakeFiles/ibsim_core.dir/core/rng.cpp.o"
  "CMakeFiles/ibsim_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/ibsim_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/ibsim_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/ibsim_core.dir/core/stats.cpp.o"
  "CMakeFiles/ibsim_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/ibsim_core.dir/core/time.cpp.o"
  "CMakeFiles/ibsim_core.dir/core/time.cpp.o.d"
  "libibsim_core.a"
  "libibsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
