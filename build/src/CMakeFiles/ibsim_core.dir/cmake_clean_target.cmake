file(REMOVE_RECURSE
  "libibsim_core.a"
)
