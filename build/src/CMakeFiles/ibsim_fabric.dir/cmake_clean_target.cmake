file(REMOVE_RECURSE
  "libibsim_fabric.a"
)
