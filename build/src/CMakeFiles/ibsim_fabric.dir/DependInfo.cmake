
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cpp" "src/CMakeFiles/ibsim_fabric.dir/fabric/fabric.cpp.o" "gcc" "src/CMakeFiles/ibsim_fabric.dir/fabric/fabric.cpp.o.d"
  "/root/repo/src/fabric/hca.cpp" "src/CMakeFiles/ibsim_fabric.dir/fabric/hca.cpp.o" "gcc" "src/CMakeFiles/ibsim_fabric.dir/fabric/hca.cpp.o.d"
  "/root/repo/src/fabric/switch_device.cpp" "src/CMakeFiles/ibsim_fabric.dir/fabric/switch_device.cpp.o" "gcc" "src/CMakeFiles/ibsim_fabric.dir/fabric/switch_device.cpp.o.d"
  "/root/repo/src/fabric/vl_arbiter.cpp" "src/CMakeFiles/ibsim_fabric.dir/fabric/vl_arbiter.cpp.o" "gcc" "src/CMakeFiles/ibsim_fabric.dir/fabric/vl_arbiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
