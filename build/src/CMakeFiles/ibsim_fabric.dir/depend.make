# Empty dependencies file for ibsim_fabric.
# This may be replaced when dependencies are built.
