file(REMOVE_RECURSE
  "CMakeFiles/ibsim_fabric.dir/fabric/fabric.cpp.o"
  "CMakeFiles/ibsim_fabric.dir/fabric/fabric.cpp.o.d"
  "CMakeFiles/ibsim_fabric.dir/fabric/hca.cpp.o"
  "CMakeFiles/ibsim_fabric.dir/fabric/hca.cpp.o.d"
  "CMakeFiles/ibsim_fabric.dir/fabric/switch_device.cpp.o"
  "CMakeFiles/ibsim_fabric.dir/fabric/switch_device.cpp.o.d"
  "CMakeFiles/ibsim_fabric.dir/fabric/vl_arbiter.cpp.o"
  "CMakeFiles/ibsim_fabric.dir/fabric/vl_arbiter.cpp.o.d"
  "libibsim_fabric.a"
  "libibsim_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
