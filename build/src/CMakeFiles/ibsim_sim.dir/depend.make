# Empty dependencies file for ibsim_sim.
# This may be replaced when dependencies are built.
