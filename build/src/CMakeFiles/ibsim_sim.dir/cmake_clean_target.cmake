file(REMOVE_RECURSE
  "libibsim_sim.a"
)
