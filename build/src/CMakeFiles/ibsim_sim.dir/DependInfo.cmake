
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cli.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/cli.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/cli.cpp.o.d"
  "/root/repo/src/sim/config_file.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/config_file.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/config_file.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/sim_config.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/sim_config.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/sim_config.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/CMakeFiles/ibsim_sim.dir/sim/timeline.cpp.o" "gcc" "src/CMakeFiles/ibsim_sim.dir/sim/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
