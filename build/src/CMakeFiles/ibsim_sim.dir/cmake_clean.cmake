file(REMOVE_RECURSE
  "CMakeFiles/ibsim_sim.dir/sim/cli.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/cli.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/config_file.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/config_file.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/sim_config.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/sim_config.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/simulation.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/simulation.cpp.o.d"
  "CMakeFiles/ibsim_sim.dir/sim/timeline.cpp.o"
  "CMakeFiles/ibsim_sim.dir/sim/timeline.cpp.o.d"
  "libibsim_sim.a"
  "libibsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
