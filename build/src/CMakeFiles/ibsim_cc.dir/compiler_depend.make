# Empty compiler generated dependencies file for ibsim_cc.
# This may be replaced when dependencies are built.
