file(REMOVE_RECURSE
  "libibsim_cc.a"
)
