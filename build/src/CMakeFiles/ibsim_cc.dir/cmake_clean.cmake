file(REMOVE_RECURSE
  "CMakeFiles/ibsim_cc.dir/cc/ca_cc.cpp.o"
  "CMakeFiles/ibsim_cc.dir/cc/ca_cc.cpp.o.d"
  "CMakeFiles/ibsim_cc.dir/cc/cc_manager.cpp.o"
  "CMakeFiles/ibsim_cc.dir/cc/cc_manager.cpp.o.d"
  "CMakeFiles/ibsim_cc.dir/cc/switch_cc.cpp.o"
  "CMakeFiles/ibsim_cc.dir/cc/switch_cc.cpp.o.d"
  "libibsim_cc.a"
  "libibsim_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
