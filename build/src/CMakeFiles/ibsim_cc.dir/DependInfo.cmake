
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/ca_cc.cpp" "src/CMakeFiles/ibsim_cc.dir/cc/ca_cc.cpp.o" "gcc" "src/CMakeFiles/ibsim_cc.dir/cc/ca_cc.cpp.o.d"
  "/root/repo/src/cc/cc_manager.cpp" "src/CMakeFiles/ibsim_cc.dir/cc/cc_manager.cpp.o" "gcc" "src/CMakeFiles/ibsim_cc.dir/cc/cc_manager.cpp.o.d"
  "/root/repo/src/cc/switch_cc.cpp" "src/CMakeFiles/ibsim_cc.dir/cc/switch_cc.cpp.o" "gcc" "src/CMakeFiles/ibsim_cc.dir/cc/switch_cc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_ib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
