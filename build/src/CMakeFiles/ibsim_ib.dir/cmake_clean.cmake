file(REMOVE_RECURSE
  "CMakeFiles/ibsim_ib.dir/ib/cc_params.cpp.o"
  "CMakeFiles/ibsim_ib.dir/ib/cc_params.cpp.o.d"
  "CMakeFiles/ibsim_ib.dir/ib/cct.cpp.o"
  "CMakeFiles/ibsim_ib.dir/ib/cct.cpp.o.d"
  "CMakeFiles/ibsim_ib.dir/ib/packet.cpp.o"
  "CMakeFiles/ibsim_ib.dir/ib/packet.cpp.o.d"
  "libibsim_ib.a"
  "libibsim_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibsim_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
