# Empty compiler generated dependencies file for ibsim_ib.
# This may be replaced when dependencies are built.
