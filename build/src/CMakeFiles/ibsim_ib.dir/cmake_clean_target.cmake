file(REMOVE_RECURSE
  "libibsim_ib.a"
)
