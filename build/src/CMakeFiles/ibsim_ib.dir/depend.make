# Empty dependencies file for ibsim_ib.
# This may be replaced when dependencies are built.
