
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ib/cc_params.cpp" "src/CMakeFiles/ibsim_ib.dir/ib/cc_params.cpp.o" "gcc" "src/CMakeFiles/ibsim_ib.dir/ib/cc_params.cpp.o.d"
  "/root/repo/src/ib/cct.cpp" "src/CMakeFiles/ibsim_ib.dir/ib/cct.cpp.o" "gcc" "src/CMakeFiles/ibsim_ib.dir/ib/cct.cpp.o.d"
  "/root/repo/src/ib/packet.cpp" "src/CMakeFiles/ibsim_ib.dir/ib/packet.cpp.o" "gcc" "src/CMakeFiles/ibsim_ib.dir/ib/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
