# Empty dependencies file for ablation_cc_params.
# This may be replaced when dependencies are built.
