file(REMOVE_RECURSE
  "CMakeFiles/ablation_cc_params.dir/ablation_cc_params.cpp.o"
  "CMakeFiles/ablation_cc_params.dir/ablation_cc_params.cpp.o.d"
  "ablation_cc_params"
  "ablation_cc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
