# Empty dependencies file for table2_silent.
# This may be replaced when dependencies are built.
