file(REMOVE_RECURSE
  "CMakeFiles/table2_silent.dir/table2_silent.cpp.o"
  "CMakeFiles/table2_silent.dir/table2_silent.cpp.o.d"
  "table2_silent"
  "table2_silent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_silent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
