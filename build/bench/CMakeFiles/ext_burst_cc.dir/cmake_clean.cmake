file(REMOVE_RECURSE
  "CMakeFiles/ext_burst_cc.dir/ext_burst_cc.cpp.o"
  "CMakeFiles/ext_burst_cc.dir/ext_burst_cc.cpp.o.d"
  "ext_burst_cc"
  "ext_burst_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_burst_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
