# Empty dependencies file for ext_burst_cc.
# This may be replaced when dependencies are built.
