file(REMOVE_RECURSE
  "CMakeFiles/ext_mesh_cc.dir/ext_mesh_cc.cpp.o"
  "CMakeFiles/ext_mesh_cc.dir/ext_mesh_cc.cpp.o.d"
  "ext_mesh_cc"
  "ext_mesh_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mesh_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
