# Empty compiler generated dependencies file for ext_mesh_cc.
# This may be replaced when dependencies are built.
