# Empty dependencies file for fig10_moving_windy.
# This may be replaced when dependencies are built.
