file(REMOVE_RECURSE
  "CMakeFiles/fig10_moving_windy.dir/fig10_moving_windy.cpp.o"
  "CMakeFiles/fig10_moving_windy.dir/fig10_moving_windy.cpp.o.d"
  "fig10_moving_windy"
  "fig10_moving_windy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_moving_windy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
