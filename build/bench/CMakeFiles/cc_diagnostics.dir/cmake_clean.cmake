file(REMOVE_RECURSE
  "CMakeFiles/cc_diagnostics.dir/cc_diagnostics.cpp.o"
  "CMakeFiles/cc_diagnostics.dir/cc_diagnostics.cpp.o.d"
  "cc_diagnostics"
  "cc_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
