# Empty compiler generated dependencies file for cc_diagnostics.
# This may be replaced when dependencies are built.
