file(REMOVE_RECURSE
  "CMakeFiles/fig6_windy50.dir/fig6_windy50.cpp.o"
  "CMakeFiles/fig6_windy50.dir/fig6_windy50.cpp.o.d"
  "fig6_windy50"
  "fig6_windy50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_windy50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
