# Empty dependencies file for fig6_windy50.
# This may be replaced when dependencies are built.
