file(REMOVE_RECURSE
  "CMakeFiles/fig9_moving_silent.dir/fig9_moving_silent.cpp.o"
  "CMakeFiles/fig9_moving_silent.dir/fig9_moving_silent.cpp.o.d"
  "fig9_moving_silent"
  "fig9_moving_silent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_moving_silent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
