# Empty dependencies file for fig9_moving_silent.
# This may be replaced when dependencies are built.
