# Empty dependencies file for ext_link_scaling.
# This may be replaced when dependencies are built.
