file(REMOVE_RECURSE
  "CMakeFiles/ext_link_scaling.dir/ext_link_scaling.cpp.o"
  "CMakeFiles/ext_link_scaling.dir/ext_link_scaling.cpp.o.d"
  "ext_link_scaling"
  "ext_link_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_link_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
