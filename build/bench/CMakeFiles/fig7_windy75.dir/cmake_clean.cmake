file(REMOVE_RECURSE
  "CMakeFiles/fig7_windy75.dir/fig7_windy75.cpp.o"
  "CMakeFiles/fig7_windy75.dir/fig7_windy75.cpp.o.d"
  "fig7_windy75"
  "fig7_windy75.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_windy75.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
