# Empty compiler generated dependencies file for fig7_windy75.
# This may be replaced when dependencies are built.
