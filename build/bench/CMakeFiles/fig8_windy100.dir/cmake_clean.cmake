file(REMOVE_RECURSE
  "CMakeFiles/fig8_windy100.dir/fig8_windy100.cpp.o"
  "CMakeFiles/fig8_windy100.dir/fig8_windy100.cpp.o.d"
  "fig8_windy100"
  "fig8_windy100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_windy100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
