# Empty compiler generated dependencies file for fig8_windy100.
# This may be replaced when dependencies are built.
