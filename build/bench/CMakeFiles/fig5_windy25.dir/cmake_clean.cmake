file(REMOVE_RECURSE
  "CMakeFiles/fig5_windy25.dir/fig5_windy25.cpp.o"
  "CMakeFiles/fig5_windy25.dir/fig5_windy25.cpp.o.d"
  "fig5_windy25"
  "fig5_windy25.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_windy25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
