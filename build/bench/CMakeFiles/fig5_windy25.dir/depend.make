# Empty dependencies file for fig5_windy25.
# This may be replaced when dependencies are built.
