file(REMOVE_RECURSE
  "CMakeFiles/tests_fabric.dir/fabric/credits_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/credits_test.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/flow_control_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/flow_control_test.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/hca_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/hca_test.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/packet_path_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/packet_path_test.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/params_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/params_test.cpp.o.d"
  "CMakeFiles/tests_fabric.dir/fabric/vl_arbiter_test.cpp.o"
  "CMakeFiles/tests_fabric.dir/fabric/vl_arbiter_test.cpp.o.d"
  "tests_fabric"
  "tests_fabric.pdb"
  "tests_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
