
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fabric/credits_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/credits_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/credits_test.cpp.o.d"
  "/root/repo/tests/fabric/flow_control_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/flow_control_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/flow_control_test.cpp.o.d"
  "/root/repo/tests/fabric/hca_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/hca_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/hca_test.cpp.o.d"
  "/root/repo/tests/fabric/packet_path_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/packet_path_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/packet_path_test.cpp.o.d"
  "/root/repo/tests/fabric/params_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/params_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/params_test.cpp.o.d"
  "/root/repo/tests/fabric/vl_arbiter_test.cpp" "tests/CMakeFiles/tests_fabric.dir/fabric/vl_arbiter_test.cpp.o" "gcc" "tests/CMakeFiles/tests_fabric.dir/fabric/vl_arbiter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ibsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ibsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
