file(REMOVE_RECURSE
  "CMakeFiles/tests_property.dir/property/frame1_test.cpp.o"
  "CMakeFiles/tests_property.dir/property/frame1_test.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/invariants_test.cpp.o"
  "CMakeFiles/tests_property.dir/property/invariants_test.cpp.o.d"
  "CMakeFiles/tests_property.dir/property/paper_properties_test.cpp.o"
  "CMakeFiles/tests_property.dir/property/paper_properties_test.cpp.o.d"
  "tests_property"
  "tests_property.pdb"
  "tests_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
