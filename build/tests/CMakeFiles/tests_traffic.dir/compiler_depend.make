# Empty compiler generated dependencies file for tests_traffic.
# This may be replaced when dependencies are built.
