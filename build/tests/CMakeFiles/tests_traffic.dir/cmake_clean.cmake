file(REMOVE_RECURSE
  "CMakeFiles/tests_traffic.dir/traffic/burst_test.cpp.o"
  "CMakeFiles/tests_traffic.dir/traffic/burst_test.cpp.o.d"
  "CMakeFiles/tests_traffic.dir/traffic/destination_test.cpp.o"
  "CMakeFiles/tests_traffic.dir/traffic/destination_test.cpp.o.d"
  "CMakeFiles/tests_traffic.dir/traffic/generator_test.cpp.o"
  "CMakeFiles/tests_traffic.dir/traffic/generator_test.cpp.o.d"
  "CMakeFiles/tests_traffic.dir/traffic/hotspot_schedule_test.cpp.o"
  "CMakeFiles/tests_traffic.dir/traffic/hotspot_schedule_test.cpp.o.d"
  "CMakeFiles/tests_traffic.dir/traffic/scenario_test.cpp.o"
  "CMakeFiles/tests_traffic.dir/traffic/scenario_test.cpp.o.d"
  "tests_traffic"
  "tests_traffic.pdb"
  "tests_traffic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
