file(REMOVE_RECURSE
  "CMakeFiles/tests_cc.dir/cc/ca_cc_test.cpp.o"
  "CMakeFiles/tests_cc.dir/cc/ca_cc_test.cpp.o.d"
  "CMakeFiles/tests_cc.dir/cc/cc_manager_test.cpp.o"
  "CMakeFiles/tests_cc.dir/cc/cc_manager_test.cpp.o.d"
  "CMakeFiles/tests_cc.dir/cc/switch_cc_test.cpp.o"
  "CMakeFiles/tests_cc.dir/cc/switch_cc_test.cpp.o.d"
  "tests_cc"
  "tests_cc.pdb"
  "tests_cc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
