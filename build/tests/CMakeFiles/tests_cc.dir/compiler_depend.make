# Empty compiler generated dependencies file for tests_cc.
# This may be replaced when dependencies are built.
