file(REMOVE_RECURSE
  "CMakeFiles/tests_ib.dir/ib/cc_params_test.cpp.o"
  "CMakeFiles/tests_ib.dir/ib/cc_params_test.cpp.o.d"
  "CMakeFiles/tests_ib.dir/ib/cct_test.cpp.o"
  "CMakeFiles/tests_ib.dir/ib/cct_test.cpp.o.d"
  "CMakeFiles/tests_ib.dir/ib/packet_test.cpp.o"
  "CMakeFiles/tests_ib.dir/ib/packet_test.cpp.o.d"
  "tests_ib"
  "tests_ib.pdb"
  "tests_ib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
