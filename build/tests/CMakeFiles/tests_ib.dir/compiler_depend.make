# Empty compiler generated dependencies file for tests_ib.
# This may be replaced when dependencies are built.
