file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/log_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/log_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/rng_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/rng_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/scheduler_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/stats_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/stats_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/time_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/time_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
