# Empty compiler generated dependencies file for tests_topo.
# This may be replaced when dependencies are built.
