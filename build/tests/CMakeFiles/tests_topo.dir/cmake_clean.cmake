file(REMOVE_RECURSE
  "CMakeFiles/tests_topo.dir/topo/builders_test.cpp.o"
  "CMakeFiles/tests_topo.dir/topo/builders_test.cpp.o.d"
  "CMakeFiles/tests_topo.dir/topo/fat_tree3_test.cpp.o"
  "CMakeFiles/tests_topo.dir/topo/fat_tree3_test.cpp.o.d"
  "CMakeFiles/tests_topo.dir/topo/mesh_test.cpp.o"
  "CMakeFiles/tests_topo.dir/topo/mesh_test.cpp.o.d"
  "CMakeFiles/tests_topo.dir/topo/routing_test.cpp.o"
  "CMakeFiles/tests_topo.dir/topo/routing_test.cpp.o.d"
  "CMakeFiles/tests_topo.dir/topo/topology_test.cpp.o"
  "CMakeFiles/tests_topo.dir/topo/topology_test.cpp.o.d"
  "tests_topo"
  "tests_topo.pdb"
  "tests_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
