# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_ib[1]_include.cmake")
include("/root/repo/build/tests/tests_topo[1]_include.cmake")
include("/root/repo/build/tests/tests_cc[1]_include.cmake")
include("/root/repo/build/tests/tests_fabric[1]_include.cmake")
include("/root/repo/build/tests/tests_traffic[1]_include.cmake")
include("/root/repo/build/tests/tests_analysis[1]_include.cmake")
include("/root/repo/build/tests/tests_sim[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
include("/root/repo/build/tests/tests_property[1]_include.cmake")
