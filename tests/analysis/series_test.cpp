#include "analysis/series.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ibsim::analysis {
namespace {

TEST(Series, AddAndQuery) {
  Series s{"t", {}, {}};
  s.add(0.0, 1.0);
  s.add(10.0, 5.0);
  s.add(20.0, 3.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.last_y(), 3.0);
  EXPECT_EQ(s.max_y(), 5.0);
  EXPECT_EQ(s.x_of_max_y(), 10.0);
}

TEST(Series, EmptyQueries) {
  Series s;
  EXPECT_EQ(s.last_y(), 0.0);
  EXPECT_EQ(s.max_y(), 0.0);
  EXPECT_EQ(s.x_of_max_y(), 0.0);
}

TEST(Series, RatioElementwise) {
  Series num{"on", {0, 1, 2}, {10, 20, 30}};
  Series den{"off", {0, 1, 2}, {5, 4, 10}};
  const Series r = ratio_series("imp", num, den);
  EXPECT_EQ(r.name, "imp");
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.y[0], 2.0);
  EXPECT_DOUBLE_EQ(r.y[1], 5.0);
  EXPECT_DOUBLE_EQ(r.y[2], 3.0);
}

TEST(Series, RatioZeroDenominatorIsZero) {
  Series num{"on", {0}, {10}};
  Series den{"off", {0}, {0}};
  EXPECT_EQ(ratio_series("imp", num, den).y[0], 0.0);
}

TEST(SeriesDeath, RatioMismatchedLengthsAbort) {
  Series num{"on", {0, 1}, {1, 2}};
  Series den{"off", {0}, {1}};
  EXPECT_DEATH((void)ratio_series("imp", num, den), "mismatched");
}

TEST(SeriesDeath, RatioMismatchedGridAborts) {
  Series num{"on", {0, 1}, {1, 2}};
  Series den{"off", {0, 2}, {1, 2}};
  EXPECT_DEATH((void)ratio_series("imp", num, den), "grids");
}

TEST(Series, CsvRoundTrip) {
  Series a{"alpha", {1, 2}, {0.5, 1.5}};
  Series b{"beta", {1, 2}, {10, 20}};
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  write_csv(path, "x", {&a, &b});
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "x,alpha,beta\n1,0.5,10\n2,1.5,20\n");
  std::remove(path.c_str());
}

TEST(Series, PrintDoesNotCrash) {
  Series a{"alpha", {1}, {2}};
  print_series("x", {&a});  // smoke: layout only
}

}  // namespace
}  // namespace ibsim::analysis
