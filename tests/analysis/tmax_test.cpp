#include "analysis/tmax.hpp"

#include <gtest/gtest.h>

namespace ibsim::analysis {
namespace {

TmaxInputs windy_648(std::int32_t n_b, double p) {
  TmaxInputs in;
  in.n_nodes = 648;
  in.n_b = n_b;
  const std::int32_t rest = 648 - n_b;
  in.n_c = static_cast<std::int32_t>(rest * 0.8 + 0.5);
  in.n_v = rest - in.n_c;
  in.p = p;
  return in;
}

TEST(Tmax, PaperFig5ValueAtPZero) {
  // 25% B nodes, p = 0: the paper quotes tmax = 5.4 Gb/s.
  EXPECT_NEAR(tmax_gbps(windy_648(162, 0.0)), 5.4, 0.01);
}

TEST(Tmax, DecreasesWithP) {
  double prev = 1e9;
  for (double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double t = tmax_gbps(windy_648(162, p));
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Tmax, AllBNodesAtP100IsZero) {
  TmaxInputs in;
  in.n_nodes = 648;
  in.n_b = 648;
  in.p = 1.0;
  EXPECT_DOUBLE_EQ(tmax_gbps(in), 0.0);
}

TEST(Tmax, AllBNodesAtP0IsFullUniform) {
  TmaxInputs in;
  in.n_nodes = 648;
  in.n_b = 648;
  in.p = 0.0;
  EXPECT_NEAR(tmax_gbps(in), 13.5, 1e-9);
}

TEST(Tmax, CappedByDrainRate) {
  TmaxInputs in;
  in.n_nodes = 2;
  in.n_v = 2;
  in.inject_gbps = 100.0;
  in.drain_gbps = 13.6;
  EXPECT_DOUBLE_EQ(tmax_gbps(in), 13.6);
}

TEST(Tmax, SteeperSlopeWithMoreBNodes) {
  // Section V-B.2: the tmax-vs-p graph gets steeper as the B fraction
  // grows.
  const double slope_25 =
      tmax_gbps(windy_648(162, 0.0)) - tmax_gbps(windy_648(162, 1.0));
  const double slope_75 =
      tmax_gbps(windy_648(486, 0.0)) - tmax_gbps(windy_648(486, 1.0));
  EXPECT_GT(slope_75, slope_25);
}

TEST(HotspotOffered, SplitsAcrossHotspots) {
  TmaxInputs in = windy_648(0, 0.0);  // pure 80/20 C/V split
  // 518 C nodes over 8 hotspots at 13.5 Gb/s each.
  EXPECT_NEAR(hotspot_offered_gbps(in, 8), 518.0 * 13.5 / 8.0, 1.0);
  EXPECT_EQ(hotspot_offered_gbps(in, 0), 0.0);
}

TEST(HotspotOffered, BContributionScalesWithP) {
  TmaxInputs in = windy_648(648, 0.5);
  in.n_c = 0;
  in.n_v = 0;
  EXPECT_NEAR(hotspot_offered_gbps(in, 8), 648.0 * 0.5 * 13.5 / 8.0, 1.0);
}

}  // namespace
}  // namespace ibsim::analysis
