#include "analysis/table.hpp"

#include <gtest/gtest.h>

namespace ibsim::analysis {
namespace {

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 3), "2.000");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"Metric", "Value"});
  t.add_row({"throughput", "13.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Metric"), std::string::npos);
  EXPECT_NE(out.find("Value"), std::string::npos);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  EXPECT_NE(out.find("13.5"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable t({"A", "B"});
  t.add_row({"short", "1"});
  t.add_row({"much-longer-label", "2"});
  const std::string out = t.render();
  // Both value cells start at the same column.
  const auto line_with = [&](const std::string& needle) {
    const auto pos = out.find(needle);
    const auto line_start = out.rfind('\n', pos) + 1;
    return out.substr(line_start, out.find('\n', pos) - line_start);
  };
  const std::string l1 = line_with("short");
  const std::string l2 = line_with("much-longer-label");
  EXPECT_EQ(l1.find(" 1"), l2.find(" 2"));
}

TEST(TextTable, KvHelperFormats) {
  TextTable t({"Metric", "Gbps"});
  t.add_kv("rate", 13.6012, 3);
  EXPECT_NE(t.render().find("13.601"), std::string::npos);
}

TEST(TextTable, SectionsRenderAsBanners) {
  TextTable t({"Metric", "Gbps"});
  t.add_section("Hotspots, no CC");
  t.add_kv("rate", 1.0);
  const std::string out = t.render();
  EXPECT_NE(out.find("-- Hotspots, no CC"), std::string::npos);
}

TEST(TextTable, CsvRendering) {
  TextTable t({"Metric", "Gbps"});
  t.add_section("part 1");
  t.add_row({"rate", "2.5"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("Metric,Gbps\n"), std::string::npos);
  EXPECT_NE(csv.find("# part 1\n"), std::string::npos);
  EXPECT_NE(csv.find("rate,2.5\n"), std::string::npos);
}

TEST(TextTableDeath, RowWidthChecked) {
  TextTable t({"A", "B"});
  EXPECT_DEATH(t.add_row({"only-one"}), "width");
}

TEST(TextTableDeath, KvNeedsTwoColumns) {
  TextTable t({"A", "B", "C"});
  EXPECT_DEATH(t.add_kv("x", 1.0), "two-column");
}

}  // namespace
}  // namespace ibsim::analysis
