#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/registry.hpp"

namespace ibsim::workload {
namespace {

WorkloadParams params(std::int32_t ranks, std::int32_t iters = 1) {
  WorkloadParams p;
  p.ranks = ranks;
  p.message_bytes = 8192;
  p.iterations = iters;
  return p;
}

TEST(WorkloadSpec, IncastShape) {
  const WorkloadSpec spec = build_incast(params(4, 2));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  ASSERT_EQ(spec.ops.size(), 6u);  // (ranks-1) senders x 2 iterations
  EXPECT_EQ(spec.phase_count(), 2);
  EXPECT_EQ(spec.total_bytes(), 6 * 8192);
  for (const WorkloadOp& op : spec.ops) EXPECT_EQ(op.dst_rank, 0);
  // First iteration starts unconstrained; the second barriers on all of it.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(spec.ops[i].deps.empty());
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(spec.ops[i].deps, (std::vector<std::int32_t>{0, 1, 2}));
    EXPECT_EQ(spec.ops[i].phase, 1);
  }
}

TEST(WorkloadSpec, RingAllreduceShape) {
  const WorkloadSpec spec = build_ring_allreduce(params(4));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  // 2(R-1) steps x R ranks.
  ASSERT_EQ(spec.ops.size(), 24u);
  EXPECT_EQ(spec.phase_count(), 6);
  // Chunks are message_bytes / R.
  for (const WorkloadOp& op : spec.ops) {
    EXPECT_EQ(op.bytes, 8192 / 4);
    EXPECT_EQ(op.dst_rank, (op.src_rank + 1) % 4);
  }
  // Step 1, rank 2 waits on its own step-0 send and its left neighbour's.
  const WorkloadOp& op = spec.ops[4 + 2];
  EXPECT_EQ(op.deps, (std::vector<std::int32_t>{2, 1}));
}

TEST(WorkloadSpec, RingAllreduceIterationsChain) {
  const WorkloadSpec spec = build_ring_allreduce(params(3, 2));
  EXPECT_TRUE(spec.validate().empty());
  const std::size_t per_iter = 4u * 3u;  // 2(R-1) steps x R
  ASSERT_EQ(spec.ops.size(), 2 * per_iter);
  // First step of iteration 2 depends on the last step of iteration 1.
  const WorkloadOp& op = spec.ops[per_iter];
  EXPECT_EQ(op.deps.size(), 2u);
  for (const std::int32_t d : op.deps) EXPECT_LT(d, static_cast<std::int32_t>(per_iter));
}

TEST(WorkloadSpec, TreeAllreduceShape) {
  for (const std::int32_t ranks : {2, 4, 5, 8}) {
    const WorkloadSpec spec = build_tree_allreduce(params(ranks));
    EXPECT_TRUE(spec.validate().empty()) << "ranks=" << ranks << ": " << spec.validate();
    // Every non-root rank sends once up (reduce) and receives once down
    // (broadcast): 2(R-1) ops total.
    EXPECT_EQ(spec.ops.size(), static_cast<std::size_t>(2 * (ranks - 1)))
        << "ranks=" << ranks;
    std::set<std::int32_t> broadcast_receivers;
    for (const WorkloadOp& op : spec.ops) broadcast_receivers.insert(op.dst_rank);
    // Everyone is reached by some message (root by the reduce sends).
    EXPECT_EQ(broadcast_receivers.size(), static_cast<std::size_t>(ranks));
  }
}

TEST(WorkloadSpec, TreeAllreduceRootGatesBroadcast) {
  const WorkloadSpec spec = build_tree_allreduce(params(4));
  // Broadcast sends out of rank 0 depend on every reduce send into it.
  for (const WorkloadOp& op : spec.ops) {
    if (op.src_rank != 0) continue;
    EXPECT_FALSE(op.deps.empty());
    for (const std::int32_t d : op.deps) {
      EXPECT_EQ(spec.ops[static_cast<std::size_t>(d)].dst_rank, 0);
    }
  }
}

TEST(WorkloadSpec, AllToAllShape) {
  const WorkloadSpec spec = build_all_to_all(params(4, 2));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  ASSERT_EQ(spec.ops.size(), 4u * 3u * 2u);  // R x (R-1) pairs x 2 iterations
  // Every ordered pair appears once per iteration.
  std::set<std::pair<std::int32_t, std::int32_t>> pairs;
  for (std::size_t i = 0; i < 12; ++i) {
    pairs.emplace(spec.ops[i].src_rank, spec.ops[i].dst_rank);
  }
  EXPECT_EQ(pairs.size(), 12u);
  // Each rank's shift-s send waits on its shift-(s-1) send.
  const WorkloadOp& second_shift = spec.ops[4 + 1];  // shift 2, rank 1
  ASSERT_EQ(second_shift.deps.size(), 1u);
  EXPECT_EQ(spec.ops[static_cast<std::size_t>(second_shift.deps[0])].src_rank, 1);
}

TEST(WorkloadSpec, StencilShape) {
  const WorkloadSpec spec = build_stencil(params(4, 2));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  ASSERT_EQ(spec.ops.size(), 4u * 2u * 2u);  // 2 halos per rank per iteration
  // Iteration-2 ops wait on the sender's own halos and its neighbours'.
  for (std::size_t i = 8; i < 16; ++i) {
    EXPECT_FALSE(spec.ops[i].deps.empty());
    EXPECT_EQ(spec.ops[i].phase, 1);
  }
}

TEST(WorkloadSpec, StencilTwoRanksDedupsDeps) {
  const WorkloadSpec spec = build_stencil(params(2, 2));
  EXPECT_TRUE(spec.validate().empty()) << spec.validate();
  for (const WorkloadOp& op : spec.ops) {
    std::vector<std::int32_t> deps = op.deps;
    std::sort(deps.begin(), deps.end());
    EXPECT_TRUE(std::adjacent_find(deps.begin(), deps.end()) == deps.end());
  }
}

TEST(WorkloadSpec, IdleIsEmpty) {
  const WorkloadSpec spec = build_idle(params(4));
  EXPECT_TRUE(spec.validate().empty());
  EXPECT_TRUE(spec.ops.empty());
  EXPECT_EQ(spec.phase_count(), 0);
  EXPECT_EQ(spec.total_bytes(), 0);
}

TEST(WorkloadSpec, ComputeAppliedToIterationStarts) {
  WorkloadParams p = params(3, 2);
  p.compute = 5 * core::kMicrosecond;
  const WorkloadSpec spec = build_incast(p);
  for (const WorkloadOp& op : spec.ops) {
    EXPECT_EQ(op.compute, op.deps.empty() ? 0 : 5 * core::kMicrosecond);
  }
}

TEST(WorkloadSpec, ValidateRejectsBadOps) {
  WorkloadSpec spec;
  spec.ranks = 2;
  WorkloadOp op;
  op.src_rank = 0;
  op.dst_rank = 0;  // self-send
  op.bytes = 1;
  spec.ops.push_back(op);
  EXPECT_NE(spec.validate().find("same"), std::string::npos);

  spec.ops[0].dst_rank = 5;  // out of range
  EXPECT_NE(spec.validate().find("out of range"), std::string::npos);

  spec.ops[0].dst_rank = 1;
  spec.ops[0].bytes = 0;
  EXPECT_NE(spec.validate().find("positive"), std::string::npos);

  spec.ops[0].bytes = 1;
  spec.ops[0].deps = {0};  // self/forward dependency
  EXPECT_NE(spec.validate().find("earlier"), std::string::npos);
}

TEST(WorkloadDsl, ParsesFullExample) {
  WorkloadSpec spec;
  const std::string err = parse_workload_text(R"(
# a tiny pipeline
name demo
ranks 3
op src 0 dst 1 bytes 4096
op src 1 dst 2 bytes 4096 after 0 phase 1
op src 2 dst 0 bytes 8192 after 0,1 phase 2 compute_us 7
)",
                                              &spec);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.ranks, 3);
  ASSERT_EQ(spec.ops.size(), 3u);
  EXPECT_TRUE(spec.ops[0].deps.empty());
  EXPECT_EQ(spec.ops[1].deps, (std::vector<std::int32_t>{0}));
  EXPECT_EQ(spec.ops[2].deps, (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(spec.ops[2].phase, 2);
  EXPECT_EQ(spec.ops[2].compute, 7 * core::kMicrosecond);
  EXPECT_EQ(spec.ops[2].bytes, 8192);
}

TEST(WorkloadDsl, ReportsLineNumbers) {
  WorkloadSpec spec;
  EXPECT_NE(parse_workload_text("ranks 2\nbogus 1\n", &spec).find("line 2"),
            std::string::npos);
  EXPECT_NE(parse_workload_text("op src 0 dst 1 bytes 4\n", &spec).find("line 1"),
            std::string::npos);  // op before ranks
  const std::string fwd =
      parse_workload_text("ranks 2\nop src 0 dst 1 bytes 4 after 1\n", &spec);
  EXPECT_NE(fwd.find("line 2"), std::string::npos);
  EXPECT_NE(fwd.find("earlier"), std::string::npos);
  EXPECT_NE(parse_workload_text("ranks 2\nop src 0 dst 1\n", &spec).find("bytes"),
            std::string::npos);
  EXPECT_NE(parse_workload_text("ranks 2\nop src 0 dst 1 bytes\n", &spec)
                .find("missing a value"),
            std::string::npos);
  EXPECT_NE(parse_workload_text("ranks 2\nop src 0 dst 1 bytes x\n", &spec)
                .find("integer"),
            std::string::npos);
}

TEST(WorkloadDsl, RejectsStructurallyInvalidSpecs) {
  WorkloadSpec spec;
  EXPECT_NE(parse_workload_text("", &spec).find("ranks"), std::string::npos);
  EXPECT_NE(parse_workload_text("ranks 2\nop src 0 dst 0 bytes 4\n", &spec).find("same"),
            std::string::npos);
}

TEST(WorkloadRegistry, BuiltinsRegisteredSorted) {
  const auto& registry = WorkloadRegistry::instance();
  const std::vector<std::string> names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name :
       {"all_to_all", "idle", "incast", "ring_allreduce", "stencil", "tree_allreduce"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_FALSE(registry.contains("file"));
  EXPECT_FALSE(registry.contains("bogus"));
  EXPECT_NE(registry.names_joined().find("incast"), std::string::npos);
}

TEST(WorkloadRegistry, BuildsByName) {
  const WorkloadSpec spec = WorkloadRegistry::instance().build("incast", params(5));
  EXPECT_EQ(spec.name, "incast");
  EXPECT_EQ(spec.ranks, 5);
  EXPECT_EQ(spec.ops.size(), 4u);
}

}  // namespace
}  // namespace ibsim::workload
