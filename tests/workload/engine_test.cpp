#include "workload/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ccalg/registry.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "workload/registry.hpp"

namespace ibsim::workload {
namespace {

/// Small single-switch fabric: 4 ranks + 4 background nodes.
sim::SimConfig small_config(const std::string& workload_name) {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.workload.name = workload_name;
  config.workload.ranks = 4;
  config.workload.message_bytes = 16 * 1024;
  config.workload.iterations = 2;
  config.sim_time = 4 * core::kMillisecond;
  config.warmup = 0;
  return config;
}

/// Two-leaf clos where the incast root's leaf is the bottleneck — the
/// configuration the CC-sensitivity guard runs on.
sim::SimConfig clos_config() {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, 4);
  config.workload.name = "incast";
  config.workload.ranks = 8;
  config.workload.message_bytes = 64 * 1024;
  config.workload.iterations = 2;
  config.sim_time = 5 * core::kMillisecond;
  config.warmup = 0;
  return config;
}

void expect_same_workload(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.workload.completed, b.workload.completed);
  EXPECT_EQ(a.workload.makespan, b.workload.makespan);
  EXPECT_EQ(a.workload.rank_finish, b.workload.rank_finish);
  EXPECT_EQ(a.workload.phase_finish, b.workload.phase_finish);
  EXPECT_EQ(a.workload.messages_completed, b.workload.messages_completed);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
}

TEST(WorkloadEngine, IncastCompletesWithProgressMetrics) {
  const sim::SimResult r = sim::run_sim(small_config("incast"));
  ASSERT_TRUE(r.workload.ran);
  EXPECT_TRUE(r.workload.completed);
  EXPECT_EQ(r.workload.messages_total, 6u);  // 3 senders x 2 iterations
  EXPECT_EQ(r.workload.messages_completed, 6u);
  EXPECT_GT(r.workload.makespan, 0);
  EXPECT_GT(r.workload.makespan_us(), 0.0);
  // Phases complete in order, and the barrier separates them strictly.
  ASSERT_EQ(r.workload.phase_finish.size(), 2u);
  EXPECT_LT(r.workload.phase_finish[0], r.workload.phase_finish[1]);
  EXPECT_EQ(r.workload.phase_finish[1], r.workload.makespan);
  // Every rank finishes by the makespan.
  ASSERT_EQ(r.workload.rank_finish.size(), 4u);
  for (const core::Time t : r.workload.rank_finish) {
    EXPECT_NE(t, core::kTimeNever);
    EXPECT_LE(t, r.workload.makespan);
  }
}

TEST(WorkloadEngine, DependenciesGateInjection) {
  // With dependencies honoured, iteration 2 cannot start before every
  // iteration-1 message has drained: the makespan of 2 iterations must
  // exceed the slowest single iteration by at least the second round's
  // serialized service time, which rules out concurrent iterations.
  sim::SimConfig one = small_config("incast");
  one.workload.iterations = 1;
  sim::SimConfig two = small_config("incast");
  const sim::SimResult r1 = sim::run_sim(one);
  const sim::SimResult r2 = sim::run_sim(two);
  ASSERT_TRUE(r1.workload.completed);
  ASSERT_TRUE(r2.workload.completed);
  EXPECT_GT(r2.workload.makespan, r1.workload.makespan + r1.workload.makespan / 2);
}

TEST(WorkloadEngine, AllCannedWorkloadsCompleteUnderEveryAlgorithm) {
  for (const char* name : {"incast", "ring_allreduce", "tree_allreduce", "all_to_all",
                           "stencil"}) {
    for (const std::string& algo : ccalg::CcAlgorithmRegistry::instance().names()) {
      sim::SimConfig config = small_config(name);
      config.workload.iterations = 1;
      config.cc_algo = algo;
      const sim::SimResult r = sim::run_sim(config);
      EXPECT_TRUE(r.workload.completed) << name << " under " << algo << ": "
                                        << r.workload.messages_completed << "/"
                                        << r.workload.messages_total;
      EXPECT_GT(r.workload.makespan, 0) << name << " under " << algo;
      for (const core::Time t : r.workload.phase_finish) EXPECT_NE(t, core::kTimeNever);
    }
  }
}

TEST(WorkloadEngine, IdleCompletesImmediatelyAndBackgroundRuns) {
  const sim::SimResult r = sim::run_sim(small_config("idle"));
  ASSERT_TRUE(r.workload.ran);
  EXPECT_TRUE(r.workload.completed);
  EXPECT_EQ(r.workload.makespan, 0);
  EXPECT_EQ(r.workload.messages_total, 0u);
  EXPECT_DOUBLE_EQ(r.workload.makespan_us(), 0.0);
  // The background senders still load the fabric (the victim baseline).
  EXPECT_GT(r.non_hotspot_rcv_gbps, 1.0);
}

TEST(WorkloadEngine, NoBackgroundLeavesVictimsSilent) {
  sim::SimConfig config = small_config("incast");
  config.workload.background_uniform = false;
  const sim::SimResult r = sim::run_sim(config);
  EXPECT_TRUE(r.workload.completed);
  // Non-rank nodes neither send nor receive: all traffic is rank-to-rank.
  EXPECT_DOUBLE_EQ(r.non_hotspot_rcv_gbps, 0.0);
}

TEST(WorkloadEngine, ResultsIdenticalAcrossSnapshotCacheModes) {
  sim::SimConfig cached = clos_config();
  cached.snapshot_cache = true;
  sim::SimConfig rebuilt = clos_config();
  rebuilt.snapshot_cache = false;
  expect_same_workload(sim::run_sim(cached), sim::run_sim(rebuilt));
}

TEST(WorkloadEngine, ResultsIdenticalAcrossRunParallelThreadCounts) {
  std::vector<sim::SimConfig> configs;
  for (const char* name : {"incast", "ring_allreduce", "all_to_all"}) {
    sim::SimConfig config = small_config(name);
    config.workload.iterations = 1;
    configs.push_back(config);
  }
  const std::vector<sim::SimResult> one = sim::run_parallel(configs, 1);
  const std::vector<sim::SimResult> two = sim::run_parallel(configs, 2);
  const std::vector<sim::SimResult> five = sim::run_parallel(configs, 5);
  ASSERT_EQ(one.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_TRUE(one[i].workload.completed) << i;
    expect_same_workload(one[i], two[i]);
    expect_same_workload(one[i], five[i]);
  }
}

TEST(WorkloadEngine, CcOnOffChangesIncastCompletionTime) {
  // The regression guard for the CC feedback loop: if the workload
  // engine stopped consulting the per-flow gate (or completions stopped
  // flowing through the fabric), CC-on and CC-off would become
  // bit-identical. They must differ measurably instead.
  sim::SimConfig on = clos_config();
  sim::SimConfig off = clos_config();
  off.cc.enabled = false;
  const sim::SimResult r_on = sim::run_sim(on);
  const sim::SimResult r_off = sim::run_sim(off);
  ASSERT_TRUE(r_on.workload.completed);
  ASSERT_TRUE(r_off.workload.completed);
  EXPECT_NE(r_on.workload.makespan, r_off.workload.makespan);
  const core::Time diff = r_on.workload.makespan > r_off.workload.makespan
                              ? r_on.workload.makespan - r_off.workload.makespan
                              : r_off.workload.makespan - r_on.workload.makespan;
  EXPECT_GT(diff, core::kMicrosecond);
}

TEST(WorkloadEngine, RankNodesClassedAsHotspotsForMetrics) {
  sim::Simulation simulation(small_config("incast"));
  ASSERT_NE(simulation.workload_engine(), nullptr);
  const auto& ranks = simulation.workload_engine()->rank_nodes();
  ASSERT_EQ(ranks.size(), 4u);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_EQ(ranks[i], static_cast<ib::NodeId>(i));
  }
}

TEST(WorkloadEngine, FileWorkloadRunsEndToEnd) {
  const std::string path = ::testing::TempDir() + "/ibsim_workload_test.wl";
  {
    std::ofstream out(path);
    out << "name filetest\nranks 3\n"
           "op src 1 dst 0 bytes 8192\n"
           "op src 2 dst 0 bytes 8192\n"
           "op src 0 dst 2 bytes 8192 after 0,1\n";
  }
  sim::SimConfig config = small_config("file");
  config.workload.file = path;
  const sim::SimResult r = sim::run_sim(config);
  std::remove(path.c_str());
  ASSERT_TRUE(r.workload.ran);
  EXPECT_TRUE(r.workload.completed);
  EXPECT_EQ(r.workload.messages_total, 3u);
  // The dependent op finishes last.
  ASSERT_EQ(r.workload.rank_finish.size(), 3u);
  EXPECT_EQ(r.workload.rank_finish[2], r.workload.makespan);
}

TEST(WorkloadEngine, ScenarioRunsUnaffectedWhenWorkloadInactive) {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.scenario.n_hotspots = 1;
  config.sim_time = 500 * core::kMicrosecond;
  config.warmup = 100 * core::kMicrosecond;
  const sim::SimResult r = sim::run_sim(config);
  EXPECT_FALSE(r.workload.ran);
  EXPECT_GT(r.delivered_bytes, 0);
}

}  // namespace
}  // namespace ibsim::workload
