#include "topo/routing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.hpp"

namespace ibsim::topo {
namespace {

TEST(Routing, SingleSwitchDirect) {
  const Topology topo = single_switch(4);
  const RoutingTables rt = RoutingTables::compute(topo);
  const DeviceId sw = topo.switches()[0];
  for (ib::NodeId dst = 0; dst < 4; ++dst) {
    EXPECT_EQ(rt.out_port(sw, dst), dst);  // port i hosts node i
  }
}

TEST(Routing, TraceSelfIsTrivial) {
  const Topology topo = single_switch(4);
  const RoutingTables rt = RoutingTables::compute(topo);
  const auto path = rt.trace(topo, 2, 2);
  EXPECT_EQ(path.size(), 1u);
}

TEST(Routing, SingleSwitchTwoHops) {
  const Topology topo = single_switch(4);
  const RoutingTables rt = RoutingTables::compute(topo);
  EXPECT_EQ(rt.hops(topo, 0, 3), 2);  // HCA -> switch -> HCA
}

TEST(Routing, FoldedClosAllPairsReachableWithCorrectHops) {
  const FoldedClosParams params = FoldedClosParams::scaled(4, 2, 3);
  const Topology topo = folded_clos(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src == dst) continue;
      const bool same_leaf = src / params.nodes_per_leaf == dst / params.nodes_per_leaf;
      EXPECT_EQ(rt.hops(topo, src, dst), same_leaf ? 2 : 4)
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(Routing, DModKSpreadsAcrossSpines) {
  const FoldedClosParams params = FoldedClosParams::scaled(4, 2, 3);
  const Topology topo = folded_clos(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  const DeviceId leaf0 = topo.switches()[0];
  // Destinations on other leaves must use up-ports spread by dst % spines.
  std::set<std::int32_t> up_ports_used;
  for (ib::NodeId dst = params.nodes_per_leaf; dst < topo.node_count(); ++dst) {
    const std::int32_t port = rt.out_port(leaf0, dst);
    EXPECT_GE(port, params.nodes_per_leaf);  // an up port
    up_ports_used.insert(port);
    EXPECT_EQ(port, params.nodes_per_leaf + dst % params.spines);
  }
  EXPECT_EQ(up_ports_used.size(), static_cast<std::size_t>(params.spines));
}

TEST(Routing, DownPathIsDirect) {
  const FoldedClosParams params = FoldedClosParams::scaled(4, 2, 3);
  const Topology topo = folded_clos(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  // From a spine, the route to any node goes to its leaf.
  const DeviceId spine0 = topo.switches()[4];
  for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
    EXPECT_EQ(rt.out_port(spine0, dst), dst / params.nodes_per_leaf);
  }
}

TEST(Routing, LocalTrafficStaysOnLeaf) {
  const FoldedClosParams params = FoldedClosParams::scaled(4, 2, 3);
  const Topology topo = folded_clos(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  // Same-leaf destinations go straight down, never to a spine.
  const DeviceId leaf0 = topo.switches()[0];
  for (ib::NodeId dst = 0; dst < params.nodes_per_leaf; ++dst) {
    EXPECT_EQ(rt.out_port(leaf0, dst), dst);
  }
}

TEST(Routing, ChainRoutesAlongTheLine) {
  const Topology topo = linear_chain(4, 1);
  const RoutingTables rt = RoutingTables::compute(topo);
  EXPECT_EQ(rt.hops(topo, 0, 3), 5);  // hca->sw0->sw1->sw2->sw3->hca
  EXPECT_EQ(rt.hops(topo, 3, 0), 5);
  EXPECT_EQ(rt.hops(topo, 1, 2), 3);
}

TEST(Routing, DumbbellCrossesBottleneck) {
  const Topology topo = dumbbell(3);
  const RoutingTables rt = RoutingTables::compute(topo);
  EXPECT_EQ(rt.hops(topo, 0, 1), 2);  // same side
  EXPECT_EQ(rt.hops(topo, 0, 3), 3);  // across the bridge
}

TEST(Routing, PathsFollowPhysicalLinks) {
  const Topology topo = folded_clos(FoldedClosParams::scaled(3, 2, 2));
  const RoutingTables rt = RoutingTables::compute(topo);
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src == dst) continue;
      const auto path = rt.trace(topo, src, dst);  // trace asserts link validity
      EXPECT_EQ(path.front(), topo.hca_device(src));
      EXPECT_EQ(path.back(), topo.hca_device(dst));
    }
  }
}

TEST(Routing, FullScaleComputeIsFeasible) {
  const Topology topo = folded_clos(FoldedClosParams::sun_dcs_648());
  const RoutingTables rt = RoutingTables::compute(topo);
  EXPECT_EQ(rt.hops(topo, 0, 1), 2);    // same leaf
  EXPECT_EQ(rt.hops(topo, 0, 647), 4);  // across spines
}

}  // namespace
}  // namespace ibsim::topo
