#include <gtest/gtest.h>

#include <set>

#include "topo/builders.hpp"
#include "topo/routing.hpp"

namespace ibsim::topo {
namespace {

FatTree3Params small_tree() {
  FatTree3Params p;
  p.pods = 3;
  p.leaves_per_pod = 2;
  p.aggs_per_pod = 2;
  p.cores = 4;
  p.nodes_per_leaf = 2;
  return p;
}

TEST(FatTree3, ShapeAndValidation) {
  const FatTree3Params params = small_tree();
  const Topology topo = fat_tree3(params);
  EXPECT_EQ(topo.node_count(), params.node_count());
  EXPECT_EQ(static_cast<std::int32_t>(topo.switches().size()), params.switch_count());
  EXPECT_TRUE(topo.validate().empty());
}

TEST(FatTree3, HopCountsByTier) {
  const FatTree3Params params = small_tree();
  const Topology topo = fat_tree3(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  const std::int32_t per_leaf = params.nodes_per_leaf;
  const std::int32_t per_pod = params.leaves_per_pod * per_leaf;
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src == dst) continue;
      const std::int32_t hops = rt.hops(topo, src, dst);
      if (src / per_leaf == dst / per_leaf) {
        EXPECT_EQ(hops, 2) << src << "->" << dst;  // same leaf
      } else if (src / per_pod == dst / per_pod) {
        EXPECT_EQ(hops, 4) << src << "->" << dst;  // via an agg
      } else {
        EXPECT_EQ(hops, 6) << src << "->" << dst;  // via a core
      }
    }
  }
}

TEST(FatTree3, DModKSpreadsOverAggsAndCores) {
  const FatTree3Params params = small_tree();
  const Topology topo = fat_tree3(params);
  const RoutingTables rt = RoutingTables::compute(topo);
  // From leaf 0 (pod 0), inter-pod destinations must use both up-ports.
  const DeviceId leaf0 = topo.switches()[0];
  std::set<std::int32_t> up_ports;
  const std::int32_t per_pod = params.leaves_per_pod * params.nodes_per_leaf;
  for (ib::NodeId dst = per_pod; dst < topo.node_count(); ++dst) {
    up_ports.insert(rt.out_port(leaf0, dst));
  }
  EXPECT_EQ(up_ports.size(), static_cast<std::size_t>(params.aggs_per_pod));
}

TEST(FatTree3, TrafficFlowsEndToEnd) {
  // Sanity through the fabric layer too: the 3-tier tree carries uniform
  // traffic with normal receive rates (wired correctly, no dead ends).
  const Topology topo = fat_tree3(small_tree());
  const RoutingTables rt = RoutingTables::compute(topo);
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src != dst) (void)rt.trace(topo, src, dst);  // asserts on breakage
    }
  }
}

TEST(FatTree3Death, RejectsDegenerate) {
  FatTree3Params p = small_tree();
  p.cores = 0;
  EXPECT_DEATH((void)fat_tree3(p), "positive");
}

}  // namespace
}  // namespace ibsim::topo
