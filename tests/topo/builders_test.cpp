#include "topo/builders.hpp"

#include <gtest/gtest.h>

namespace ibsim::topo {
namespace {

TEST(Builders, SingleSwitchShape) {
  const Topology topo = single_switch(8);
  EXPECT_EQ(topo.node_count(), 8);
  EXPECT_EQ(topo.switches().size(), 1u);
  EXPECT_TRUE(topo.validate().empty());
  // Every HCA is cabled to a distinct switch port.
  for (ib::NodeId n = 0; n < 8; ++n) {
    const PortRef peer = topo.peer(PortRef{topo.hca_device(n), 0});
    EXPECT_EQ(peer.device, topo.switches()[0]);
    EXPECT_EQ(peer.port, n);
  }
}

TEST(Builders, SunDcs648Dimensions) {
  const FoldedClosParams params = FoldedClosParams::sun_dcs_648();
  EXPECT_EQ(params.node_count(), 648);
  EXPECT_EQ(params.switch_count(), 54);
  EXPECT_EQ(params.leaf_ports(), 36);  // 36-port crossbars
}

TEST(Builders, FoldedClosSmallInstance) {
  const Topology topo = folded_clos(FoldedClosParams::scaled(4, 2, 3));
  EXPECT_EQ(topo.node_count(), 12);
  EXPECT_EQ(topo.switches().size(), 6u);
  EXPECT_TRUE(topo.validate().empty());
}

TEST(Builders, FoldedClosLeafSpineWiring) {
  const FoldedClosParams params = FoldedClosParams::scaled(4, 2, 3);
  const Topology topo = folded_clos(params);
  // Leaves are the first 4 switches, spines the next 2; every leaf
  // connects to every spine exactly once, spine port l = leaf l.
  for (std::int32_t l = 0; l < params.leaves; ++l) {
    const DeviceId leaf = topo.switches()[static_cast<std::size_t>(l)];
    for (std::int32_t s = 0; s < params.spines; ++s) {
      const DeviceId spine = topo.switches()[static_cast<std::size_t>(params.leaves + s)];
      const PortRef up = topo.peer(PortRef{leaf, params.nodes_per_leaf + s});
      EXPECT_EQ(up.device, spine);
      EXPECT_EQ(up.port, l);
    }
  }
}

TEST(Builders, FoldedClosNodesLeafMajor) {
  const FoldedClosParams params = FoldedClosParams::scaled(3, 2, 4);
  const Topology topo = folded_clos(params);
  // NodeId / nodes_per_leaf identifies the leaf switch.
  for (ib::NodeId n = 0; n < topo.node_count(); ++n) {
    const PortRef peer = topo.peer(PortRef{topo.hca_device(n), 0});
    const std::int32_t expected_leaf = n / params.nodes_per_leaf;
    EXPECT_EQ(peer.device, topo.switches()[static_cast<std::size_t>(expected_leaf)]);
    EXPECT_EQ(peer.port, n % params.nodes_per_leaf);
  }
}

TEST(Builders, FoldedClosFullScaleBuilds) {
  const Topology topo = folded_clos(FoldedClosParams::sun_dcs_648());
  EXPECT_EQ(topo.node_count(), 648);
  EXPECT_EQ(topo.switches().size(), 54u);
  EXPECT_TRUE(topo.validate().empty());
  // Spines use all 36 ports (one per leaf), leaves use 18+18.
  for (std::size_t i = 36; i < 54; ++i) {
    EXPECT_EQ(topo.port_count(topo.switches()[i]), 36);
  }
}

TEST(Builders, LinearChainShape) {
  const Topology topo = linear_chain(4, 2);
  EXPECT_EQ(topo.node_count(), 8);
  EXPECT_EQ(topo.switches().size(), 4u);
  EXPECT_TRUE(topo.validate().empty());
}

TEST(Builders, LinearChainNeighbourLinks) {
  const Topology topo = linear_chain(3, 1);
  const auto& sws = topo.switches();
  // Switch i connects to switch i+1 (port n+1 -> port n).
  for (std::size_t i = 0; i + 1 < sws.size(); ++i) {
    const PortRef next = topo.peer(PortRef{sws[i], 2});
    EXPECT_EQ(next.device, sws[i + 1]);
    EXPECT_EQ(next.port, 1);
  }
  // Chain ends are open.
  EXPECT_FALSE(topo.peer(PortRef{sws[0], 1}).valid());
  EXPECT_FALSE(topo.peer(PortRef{sws[2], 2}).valid());
}

TEST(Builders, DumbbellShape) {
  const Topology topo = dumbbell(4);
  EXPECT_EQ(topo.node_count(), 8);
  EXPECT_EQ(topo.switches().size(), 2u);
  EXPECT_TRUE(topo.validate().empty());
  // The bottleneck link joins the two switches.
  const PortRef bridge = topo.peer(PortRef{topo.switches()[0], 4});
  EXPECT_EQ(bridge.device, topo.switches()[1]);
}

TEST(BuildersDeath, RejectsDegenerateDimensions) {
  EXPECT_DEATH((void)single_switch(1), "at least two");
  EXPECT_DEATH((void)linear_chain(1, 2), "at least two");
  EXPECT_DEATH((void)folded_clos(FoldedClosParams::scaled(0, 1, 1)), "positive");
}

}  // namespace
}  // namespace ibsim::topo
