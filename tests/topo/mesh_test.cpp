#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/routing.hpp"

namespace ibsim::topo {
namespace {

TEST(Mesh2d, ShapeAndValidation) {
  const Topology topo = mesh2d(3, 4, 2);
  EXPECT_EQ(topo.switches().size(), 12u);
  EXPECT_EQ(topo.node_count(), 24);
  EXPECT_TRUE(topo.validate().empty());
}

TEST(Mesh2d, PortLayoutXThenY) {
  const std::int32_t n = 2;
  const Topology topo = mesh2d(3, 3, n);
  const auto at = [&](int r, int c) { return topo.switches()[static_cast<std::size_t>(r * 3 + c)]; };
  // Centre switch (1,1): X- to (1,0), X+ to (1,2), Y- to (0,1), Y+ to (2,1).
  EXPECT_EQ(topo.peer(PortRef{at(1, 1), n + 0}).device, at(1, 0));
  EXPECT_EQ(topo.peer(PortRef{at(1, 1), n + 1}).device, at(1, 2));
  EXPECT_EQ(topo.peer(PortRef{at(1, 1), n + 2}).device, at(0, 1));
  EXPECT_EQ(topo.peer(PortRef{at(1, 1), n + 3}).device, at(2, 1));
}

TEST(Mesh2d, EdgesHaveOpenPorts) {
  const std::int32_t n = 1;
  const Topology topo = mesh2d(2, 2, n);
  const DeviceId corner = topo.switches()[0];  // (0,0)
  EXPECT_FALSE(topo.peer(PortRef{corner, n + 0}).valid());  // no X-
  EXPECT_FALSE(topo.peer(PortRef{corner, n + 2}).valid());  // no Y-
  EXPECT_TRUE(topo.peer(PortRef{corner, n + 1}).valid());   // X+
  EXPECT_TRUE(topo.peer(PortRef{corner, n + 3}).valid());   // Y+
}

TEST(Mesh2d, FirstPortTieBreakIsDimensionOrder) {
  const std::int32_t rows = 4;
  const std::int32_t cols = 4;
  const std::int32_t n = 2;
  const Topology topo = mesh2d(rows, cols, n);
  const RoutingTables rt =
      RoutingTables::compute(topo, RoutingTables::TieBreak::FirstPort);
  // Every route corrects X before Y: once a hop moves in Y, no later hop
  // moves in X.
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src == dst) continue;
      const auto path = rt.trace(topo, src, dst);
      bool seen_y = false;
      for (std::size_t i = 1; i + 1 < path.size() - 1 + 1; ++i) {
        if (i + 1 >= path.size()) break;
        const DeviceId a = path[i];
        const DeviceId b = path[i + 1];
        if (topo.kind(a) != DeviceKind::Switch || topo.kind(b) != DeviceKind::Switch) {
          continue;
        }
        // Switch indices encode coordinates: idx = r * cols + c.
        const auto idx = [&](DeviceId dev) {
          for (std::size_t s = 0; s < topo.switches().size(); ++s) {
            if (topo.switches()[s] == dev) return static_cast<std::int32_t>(s);
          }
          return -1;
        };
        const std::int32_t ia = idx(a);
        const std::int32_t ib_ = idx(b);
        const bool x_move = ia / cols == ib_ / cols;
        if (x_move) {
          EXPECT_FALSE(seen_y) << "X move after Y move: src=" << src << " dst=" << dst;
        } else {
          seen_y = true;
        }
      }
    }
  }
}

TEST(Mesh2d, HopCountsAreManhattan) {
  const std::int32_t cols = 3;
  const std::int32_t n = 2;
  const Topology topo = mesh2d(3, cols, n);
  const RoutingTables rt =
      RoutingTables::compute(topo, RoutingTables::TieBreak::FirstPort);
  for (ib::NodeId src = 0; src < topo.node_count(); ++src) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      if (src == dst) continue;
      const std::int32_t s_sw = src / n;
      const std::int32_t d_sw = dst / n;
      const std::int32_t manhattan =
          std::abs(s_sw / cols - d_sw / cols) + std::abs(s_sw % cols - d_sw % cols);
      EXPECT_EQ(rt.hops(topo, src, dst), manhattan + 2) << src << "->" << dst;
    }
  }
}

TEST(Mesh2d, SingleRowDegeneratesToChain) {
  const Topology topo = mesh2d(1, 4, 1);
  const RoutingTables rt =
      RoutingTables::compute(topo, RoutingTables::TieBreak::FirstPort);
  EXPECT_EQ(rt.hops(topo, 0, 3), 5);
}

TEST(Mesh2dDeath, RejectsDegenerate) {
  EXPECT_DEATH((void)mesh2d(1, 1, 2), "two switches");
  EXPECT_DEATH((void)mesh2d(2, 2, 0), "nodes");
}

}  // namespace
}  // namespace ibsim::topo
