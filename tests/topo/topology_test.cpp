#include "topo/topology.hpp"

#include <gtest/gtest.h>

namespace ibsim::topo {
namespace {

TEST(Topology, AddDevices) {
  Topology topo;
  const DeviceId sw = topo.add_switch(4, "sw");
  const DeviceId hca = topo.add_hca("node");
  EXPECT_EQ(topo.device_count(), 2);
  EXPECT_EQ(topo.kind(sw), DeviceKind::Switch);
  EXPECT_EQ(topo.kind(hca), DeviceKind::Hca);
  EXPECT_EQ(topo.port_count(sw), 4);
  EXPECT_EQ(topo.port_count(hca), 1);
  EXPECT_EQ(topo.name(sw), "sw");
}

TEST(Topology, NodeIdsFollowCreationOrder) {
  Topology topo;
  (void)topo.add_switch(4);
  const DeviceId h0 = topo.add_hca();
  const DeviceId h1 = topo.add_hca();
  EXPECT_EQ(topo.node_count(), 2);
  EXPECT_EQ(topo.node_of(h0), 0);
  EXPECT_EQ(topo.node_of(h1), 1);
  EXPECT_EQ(topo.hca_device(0), h0);
  EXPECT_EQ(topo.hca_device(1), h1);
}

TEST(Topology, ConnectIsSymmetric) {
  Topology topo;
  const DeviceId sw = topo.add_switch(4);
  const DeviceId hca = topo.add_hca();
  topo.connect(PortRef{hca, 0}, PortRef{sw, 2});
  EXPECT_EQ(topo.peer(PortRef{hca, 0}), (PortRef{sw, 2}));
  EXPECT_EQ(topo.peer(PortRef{sw, 2}), (PortRef{hca, 0}));
}

TEST(Topology, UncabledPortHasInvalidPeer) {
  Topology topo;
  const DeviceId sw = topo.add_switch(4);
  EXPECT_FALSE(topo.peer(PortRef{sw, 0}).valid());
  EXPECT_FALSE(topo.connected(PortRef{sw, 0}));
}

TEST(Topology, DefaultNames) {
  Topology topo;
  const DeviceId s0 = topo.add_switch(2);
  const DeviceId h0 = topo.add_hca();
  EXPECT_EQ(topo.name(s0), "sw0");
  EXPECT_EQ(topo.name(h0), "hca0");
}

TEST(Topology, SwitchesListedInOrder) {
  Topology topo;
  const DeviceId s0 = topo.add_switch(2);
  (void)topo.add_hca();
  const DeviceId s1 = topo.add_switch(2);
  ASSERT_EQ(topo.switches().size(), 2u);
  EXPECT_EQ(topo.switches()[0], s0);
  EXPECT_EQ(topo.switches()[1], s1);
}

TEST(Topology, ValidateCatchesUncabledHca) {
  Topology topo;
  (void)topo.add_switch(2);
  (void)topo.add_hca("lonely");
  const std::string err = topo.validate();
  EXPECT_NE(err.find("lonely"), std::string::npos);
}

TEST(Topology, ValidateCatchesEmpty) {
  Topology topo;
  (void)topo.add_switch(2);
  EXPECT_FALSE(topo.validate().empty());
}

TEST(Topology, ValidatePassesWhenCabled) {
  Topology topo;
  const DeviceId sw = topo.add_switch(2);
  const DeviceId h0 = topo.add_hca();
  const DeviceId h1 = topo.add_hca();
  topo.connect(PortRef{h0, 0}, PortRef{sw, 0});
  topo.connect(PortRef{h1, 0}, PortRef{sw, 1});
  EXPECT_TRUE(topo.validate().empty());
}

TEST(TopologyDeath, DoubleCablingAborts) {
  Topology topo;
  const DeviceId sw = topo.add_switch(4);
  const DeviceId h0 = topo.add_hca();
  const DeviceId h1 = topo.add_hca();
  topo.connect(PortRef{h0, 0}, PortRef{sw, 0});
  EXPECT_DEATH(topo.connect(PortRef{h1, 0}, PortRef{sw, 0}), "already cabled");
}

TEST(TopologyDeath, SelfLinkAborts) {
  Topology topo;
  const DeviceId sw = topo.add_switch(4);
  EXPECT_DEATH(topo.connect(PortRef{sw, 0}, PortRef{sw, 1}), "self-link");
}

TEST(TopologyDeath, PortOutOfRangeAborts) {
  Topology topo;
  const DeviceId sw = topo.add_switch(2);
  const DeviceId hca = topo.add_hca();
  EXPECT_DEATH(topo.connect(PortRef{hca, 0}, PortRef{sw, 5}), "port out of range");
}

TEST(TopologyDeath, NodeOfSwitchAborts) {
  Topology topo;
  const DeviceId sw = topo.add_switch(2);
  EXPECT_DEATH((void)topo.node_of(sw), "switch");
}

}  // namespace
}  // namespace ibsim::topo
