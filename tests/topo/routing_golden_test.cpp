// Determinism regression for RoutingTables::compute: the LFT contents
// for a fat_tree3 and a mesh2d are pinned as hex-dump goldens captured
// from the original per-switch-vector implementation, so the flattened
// contiguous storage (and any future rewrite) cannot silently change a
// single forwarding decision. The dump goes through the public
// out_port() API and is therefore independent of the storage layout.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "topo/builders.hpp"
#include "topo/routing.hpp"

namespace ibsim::topo {
namespace {

/// One line of two-hex-digit ports per switch, destinations in NodeId
/// order, switches in Topology::switches() order.
std::string hex_dump(const Topology& topo, const RoutingTables& rt) {
  std::string out;
  out.reserve(topo.switches().size() *
              (static_cast<std::size_t>(topo.node_count()) * 2 + 1));
  char buf[8];
  for (const DeviceId sw : topo.switches()) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      std::snprintf(buf, sizeof(buf), "%02x", rt.out_port(sw, dst) & 0xff);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

// Captured from the seed implementation (per-switch vector-of-vectors)
// at PR 4; fat_tree3 default params (4 pods x 2 leaves x 2 aggs,
// 4 cores, 4 nodes/leaf), d-mod-k tie-break.
constexpr const char* kFatTree3Golden =
    "0001020304050405040504050405040504050405040504050405040504050405\n"
    "0405040500010203040504050405040504050405040504050405040504050405\n"
    "0405040504050405000102030405040504050405040504050405040504050405\n"
    "0405040504050405040504050001020304050405040504050405040504050405\n"
    "0405040504050405040504050405040500010203040504050405040504050405\n"
    "0405040504050405040504050405040504050405000102030405040504050405\n"
    "0405040504050405040504050405040504050405040504050001020304050405\n"
    "0405040504050405040504050405040504050405040504050405040500010203\n"
    "0000000001010101020304050203040502030405020304050203040502030405\n"
    "0000000001010101020304050203040502030405020304050203040502030405\n"
    "0203040502030405000000000101010102030405020304050203040502030405\n"
    "0203040502030405000000000101010102030405020304050203040502030405\n"
    "0203040502030405020304050203040500000000010101010203040502030405\n"
    "0203040502030405020304050203040500000000010101010203040502030405\n"
    "0203040502030405020304050203040502030405020304050000000001010101\n"
    "0203040502030405020304050203040502030405020304050000000001010101\n"
    "0001000100010001020302030203020304050405040504050607060706070607\n"
    "0001000100010001020302030203020304050405040504050607060706070607\n"
    "0001000100010001020302030203020304050405040504050607060706070607\n"
    "0001000100010001020302030203020304050405040504050607060706070607\n";

// Same capture; mesh2d(3, 3, 2), first-port (dimension-order) tie-break.
constexpr const char* kMesh2dGolden =
    "000103030303050503030303050503030303\n"
    "020200010303020205050303020205050303\n"
    "020202020001020202020505020202020505\n"
    "040403030303000103030303050503030303\n"
    "020204040303020200010303020205050303\n"
    "020202020404020202020001020202020505\n"
    "040403030303040403030303000103030303\n"
    "020204040303020204040303020200010303\n"
    "020202020404020202020404020202020001\n";

TEST(RoutingGolden, FatTree3LftsPinnedAcrossStorageRewrites) {
  const Topology topo = fat_tree3(FatTree3Params{});
  const RoutingTables rt = RoutingTables::compute(topo, RoutingTables::TieBreak::DModK);
  EXPECT_EQ(hex_dump(topo, rt), kFatTree3Golden);
}

TEST(RoutingGolden, Mesh2dLftsPinnedAcrossStorageRewrites) {
  const Topology topo = mesh2d(3, 3, 2);
  const RoutingTables rt = RoutingTables::compute(topo, RoutingTables::TieBreak::FirstPort);
  EXPECT_EQ(hex_dump(topo, rt), kMesh2dGolden);
}

TEST(RoutingGolden, FlatStorageMatchesOutPortView) {
  const Topology topo = fat_tree3(FatTree3Params{});
  const RoutingTables rt = RoutingTables::compute(topo);
  ASSERT_EQ(rt.stride(), static_cast<std::size_t>(topo.node_count()));
  ASSERT_EQ(rt.switch_count(), topo.switches().size());
  ASSERT_EQ(rt.flat().size(), rt.stride() * rt.switch_count());
  for (std::size_t slot = 0; slot < topo.switches().size(); ++slot) {
    for (ib::NodeId dst = 0; dst < topo.node_count(); ++dst) {
      EXPECT_EQ(rt.flat()[slot * rt.stride() + static_cast<std::size_t>(dst)],
                rt.out_port(topo.switches()[slot], dst));
    }
  }
}

}  // namespace
}  // namespace ibsim::topo
