// Shard partitioner (DESIGN.md §15): contiguous balanced splits over the
// builder-provided partition hints, HCAs co-located with their leaf.

#include "topo/partition.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "topo/builders.hpp"
#include "topo/topology.hpp"

namespace ibsim::topo {
namespace {

/// Per-shard attached-HCA counts (the balance target).
std::vector<std::int64_t> hcas_per_shard(const Topology& topo, const ShardPlan& plan) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(plan.n_shards), 0);
  for (ib::NodeId n = 0; n < topo.node_count(); ++n) {
    ++load[static_cast<std::size_t>(
        plan.shard_of_device[static_cast<std::size_t>(topo.hca_device(n))])];
  }
  return load;
}

void expect_valid_plan(const Topology& topo, const ShardPlan& plan) {
  ASSERT_EQ(plan.shard_of_device.size(), static_cast<std::size_t>(topo.device_count()));
  std::vector<bool> used(static_cast<std::size_t>(plan.n_shards), false);
  for (const std::int32_t s : plan.shard_of_device) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, plan.n_shards);
    used[static_cast<std::size_t>(s)] = true;
  }
  for (std::int32_t s = 0; s < plan.n_shards; ++s) {
    EXPECT_TRUE(used[static_cast<std::size_t>(s)]) << "empty shard " << s;
  }
  // The HCA<->leaf loop (grant, credit return, CNP) must never cross a
  // shard boundary — the fabric constructor asserts the same invariant.
  for (ib::NodeId n = 0; n < topo.node_count(); ++n) {
    const DeviceId hca = topo.hca_device(n);
    const PortRef up = topo.peer(PortRef{hca, 0});
    EXPECT_EQ(plan.shard_of_device[static_cast<std::size_t>(hca)],
              plan.shard_of_device[static_cast<std::size_t>(up.device)]);
  }
}

TEST(ShardPlan, SingleShardIsTrivial) {
  const Topology topo = folded_clos({4, 2, 4});
  const ShardPlan plan = make_shard_plan(topo, 1);
  EXPECT_EQ(plan.n_shards, 1);
  EXPECT_EQ(plan.cut_links, 0);
  for (const std::int32_t s : plan.shard_of_device) EXPECT_EQ(s, 0);
}

TEST(ShardPlan, WantClampsToSwitchCount) {
  const Topology topo = folded_clos({4, 2, 4});  // 6 switches
  const ShardPlan plan = make_shard_plan(topo, 64);
  EXPECT_EQ(plan.n_shards, 6);
  expect_valid_plan(topo, plan);
}

TEST(ShardPlan, FatTreePodsStayTogether) {
  // 4 pods, shards = pods: the pod hint makes each pod one shard, so
  // only agg<->core links are cut and pod-internal traffic never
  // crosses a boundary.
  const FatTree3Params params{4, 2, 2, 4, 4};
  const Topology topo = fat_tree3(params);
  const ShardPlan plan = make_shard_plan(topo, 4);
  ASSERT_EQ(plan.n_shards, 4);
  expect_valid_plan(topo, plan);

  // Every leaf and agg of one pod shares a shard (cores are spread
  // round-robin and may land anywhere).
  for (std::int32_t pod = 0; pod < params.pods; ++pod) {
    std::int32_t pod_shard = -1;
    for (const DeviceId sw : topo.switches()) {
      if (topo.partition_group(sw) != pod) continue;
      if (topo.kind(sw) != DeviceKind::Switch) continue;
      if (pod_shard == -1) pod_shard = plan.shard_of_device[static_cast<std::size_t>(sw)];
      EXPECT_EQ(plan.shard_of_device[static_cast<std::size_t>(sw)], pod_shard)
          << "pod " << pod << " split across shards";
    }
  }

  const std::vector<std::int64_t> load = hcas_per_shard(topo, plan);
  const std::int64_t per_pod = static_cast<std::int64_t>(params.leaves_per_pod) *
                               params.nodes_per_leaf;
  for (const std::int64_t l : load) EXPECT_EQ(l, per_pod);
}

TEST(ShardPlan, ClosSplitBalancesHcas) {
  const Topology topo = folded_clos({8, 4, 6});  // 48 HCAs
  const ShardPlan plan = make_shard_plan(topo, 4);
  ASSERT_EQ(plan.n_shards, 4);
  expect_valid_plan(topo, plan);
  const std::vector<std::int64_t> load = hcas_per_shard(topo, plan);
  for (const std::int64_t l : load) {
    EXPECT_GE(l, 6);   // perfectly balanced would be 12
    EXPECT_LE(l, 18);
  }
  EXPECT_GT(plan.cut_links, 0);
}

TEST(ShardPlan, MeshRowsSplitAlongRowHints) {
  const Topology topo = mesh2d(4, 4, 2);
  const ShardPlan plan = make_shard_plan(topo, 4);
  ASSERT_EQ(plan.n_shards, 4);
  expect_valid_plan(topo, plan);
  // Row hints make each row one shard: 4 cut column-links per boundary,
  // 3 boundaries.
  EXPECT_EQ(plan.cut_links, 12);
}

TEST(ShardPlan, DeterministicForFixedInputs) {
  const Topology a = fat_tree3({4, 2, 2, 4, 4});
  const Topology b = fat_tree3({4, 2, 2, 4, 4});
  const ShardPlan pa = make_shard_plan(a, 3);
  const ShardPlan pb = make_shard_plan(b, 3);
  EXPECT_EQ(pa.n_shards, pb.n_shards);
  EXPECT_EQ(pa.cut_links, pb.cut_links);
  EXPECT_EQ(pa.shard_of_device, pb.shard_of_device);
}

}  // namespace
}  // namespace ibsim::topo
