// Property suite: model invariants that must hold for ANY topology,
// traffic mix, seed, and CC setting. Violations of the credit/lossless
// invariants abort via IBSIM_ASSERT during the runs themselves; here we
// additionally check end-state conservation properties.

#include <gtest/gtest.h>

#include <tuple>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

struct InvariantCase {
  TopologyKind topology;
  double fraction_b;
  double p;
  std::int32_t n_hotspots;
  bool cc_on;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<InvariantCase>& info) {
  const InvariantCase& c = info.param;
  std::string name = topology_name(c.topology);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += "_b" + std::to_string(static_cast<int>(c.fraction_b * 100));
  name += "_p" + std::to_string(static_cast<int>(c.p * 100));
  name += "_h" + std::to_string(c.n_hotspots);
  name += c.cc_on ? "_ccon" : "_ccoff";
  name += "_s" + std::to_string(c.seed);
  return name;
}

class InvariantTest : public ::testing::TestWithParam<InvariantCase> {
 protected:
  SimConfig make_config() const {
    const InvariantCase& c = GetParam();
    SimConfig config;
    config.topology = c.topology;
    config.clos = topo::FoldedClosParams::scaled(4, 2, 3);
    config.single_switch_nodes = 8;
    config.chain_switches = 3;
    config.chain_nodes_per_switch = 3;
    config.dumbbell_nodes_per_side = 4;
    config.sim_time = core::kMillisecond;
    config.warmup = 200 * core::kMicrosecond;
    config.seed = c.seed;
    config.cc = c.cc_on ? ib::CcParams::paper_table1() : ib::CcParams::disabled();
    config.cc.ccti_timer = 20;  // faster recovery on tiny fixtures
    config.scenario.fraction_b = c.fraction_b;
    config.scenario.p = c.p;
    config.scenario.n_hotspots = c.n_hotspots;
    return config;
  }
};

TEST_P(InvariantTest, ConservationAndBoundsHold) {
  Simulation sim(make_config());
  const SimResult r = sim.run();

  // 1. Conservation: every byte delivered was injected; the difference
  //    is bounded by what the fabric can buffer in flight.
  const std::int64_t injected = sim.fabric().total_injected_bytes();
  const std::int64_t delivered = sim.fabric().total_delivered_bytes();
  EXPECT_LE(delivered, injected);
  std::int64_t buffer_bound = 0;
  for (std::size_t i = 0; i < sim.fabric().switch_count(); ++i) {
    auto& sw = sim.fabric().switch_at(i);
    for (std::int32_t port = 0; port < sw.n_ports(); ++port) {
      if (!sw.output(port).connected) continue;
      for (ib::Vl vl = 0; vl < sw.bank().n_vls(); ++vl) {
        buffer_bound += sw.bank().credit(port, vl).capacity();
      }
    }
  }
  for (ib::NodeId n = 0; n < sim.fabric().node_count(); ++n) {
    const fabric::PortVlBank& bank = sim.fabric().hca(n).bank();
    for (ib::Vl vl = 0; vl < bank.n_vls(); ++vl) {
      buffer_bound += bank.credit(0, vl).capacity();
    }
  }
  EXPECT_LE(injected - delivered, buffer_bound)
      << "more bytes in flight than the fabric can buffer";

  // 2. Live packets are bounded by buffering too (counting staged and
  //    queued CNPs generously via the same bound plus the CNP queues).
  EXPECT_GE(sim.fabric().arena().live(), 0);

  // 3. Receive rates respect the physical ceilings.
  for (ib::NodeId n = 0; n < sim.fabric().node_count(); ++n) {
    EXPECT_LE(sim.metrics().node_gbps(n, sim.sched().now()), 13.6 + 0.05);
  }
  EXPECT_LE(r.hotspot_rcv_gbps, 13.6 + 0.05);

  // 4. The CC counters are consistent: BECNs received never exceed CNPs
  //    sent, CNPs never exceed FECN-marked deliveries.
  EXPECT_LE(r.becn_received, r.cnps_sent);
  if (!GetParam().cc_on) {
    EXPECT_EQ(r.fecn_marked, 0u);
    EXPECT_EQ(r.cnps_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantTest,
    ::testing::Values(
        InvariantCase{TopologyKind::SingleSwitch, 0.0, 0.0, 1, false, 1},
        InvariantCase{TopologyKind::SingleSwitch, 0.0, 0.0, 1, true, 1},
        InvariantCase{TopologyKind::SingleSwitch, 1.0, 0.5, 2, true, 2},
        InvariantCase{TopologyKind::FoldedClos, 0.0, 0.0, 2, false, 3},
        InvariantCase{TopologyKind::FoldedClos, 0.0, 0.0, 2, true, 3},
        InvariantCase{TopologyKind::FoldedClos, 0.5, 0.3, 2, true, 4},
        InvariantCase{TopologyKind::FoldedClos, 1.0, 0.6, 4, true, 5},
        InvariantCase{TopologyKind::FoldedClos, 1.0, 1.0, 1, false, 6},
        InvariantCase{TopologyKind::FoldedClos, 0.25, 0.9, 3, true, 7},
        InvariantCase{TopologyKind::LinearChain, 0.0, 0.0, 1, false, 8},
        InvariantCase{TopologyKind::LinearChain, 0.5, 0.5, 2, true, 9},
        InvariantCase{TopologyKind::Dumbbell, 0.0, 0.0, 1, true, 10},
        InvariantCase{TopologyKind::Dumbbell, 1.0, 0.7, 2, true, 11},
        InvariantCase{TopologyKind::Dumbbell, 1.0, 0.7, 2, false, 11}),
    case_name);

/// Moving-hotspot variant of the same conservation checks.
class MovingInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MovingInvariantTest, ConservationUnderMovement) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);
  config.sim_time = 2 * core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.seed = static_cast<std::uint64_t>(GetParam());
  config.cc.ccti_timer = 20;
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.6;
  config.scenario.n_hotspots = 3;
  config.scenario.hotspot_lifetime = 100 * core::kMicrosecond * (1 + GetParam());

  Simulation sim(config);
  const SimResult r = sim.run();
  EXPECT_GT(r.delivered_bytes, 0);
  EXPECT_LE(sim.fabric().total_delivered_bytes(), sim.fabric().total_injected_bytes());
  EXPECT_LE(r.becn_received, r.cnps_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MovingInvariantTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace ibsim::sim
