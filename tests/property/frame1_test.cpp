// Property suite for the Frame I generator semantics, driven through
// the full simulation so pacing, flow control and CC throttling all
// interact with the budgets.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "traffic/scenario.hpp"

namespace ibsim::sim {
namespace {

class Frame1Property : public ::testing::TestWithParam<double> {};

TEST_P(Frame1Property, BudgetsHoldThroughTheFullStack) {
  const double p = GetParam();
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = 2 * core::kMillisecond;
  config.warmup = 0;
  config.cc = ib::CcParams::disabled();
  config.scenario.fraction_b = 1.0;
  config.scenario.p = p;
  config.scenario.n_hotspots = 2;

  Simulation sim(config);
  (void)sim.run();

  const std::int64_t budget = core::capacity_bytes(13.5, config.sim_time);
  for (const traffic::BNodeGenerator* gen : sim.scenario().generators()) {
    // Frame I: by time t, at most p% of capacity x t to the hotspot and
    // at most (1-p)% elsewhere (one in-flight packet of slack).
    EXPECT_LE(gen->hotspot_bytes_sent(),
              static_cast<std::int64_t>(p * static_cast<double>(budget)) + ib::kMtuBytes)
        << "node " << gen->node();
    EXPECT_LE(gen->uniform_bytes_sent(),
              static_cast<std::int64_t>((1.0 - p) * static_cast<double>(budget)) +
                  ib::kMtuBytes)
        << "node " << gen->node();
  }
}

TEST_P(Frame1Property, UncongestedSendersUseTheirBudget) {
  // With hotspots disabled (every node uniform-only via p applied to a
  // hotspot that never congests... simplest: no hotspots, pure V), a
  // saturating generator should consume nearly its whole budget.
  const double p = GetParam();
  if (p > 0.2) GTEST_SKIP() << "heavy hotspot shares congest; covered elsewhere";
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);
  config.sim_time = core::kMillisecond;
  config.warmup = 0;
  config.cc = ib::CcParams::disabled();
  config.scenario.fraction_b = 1.0;
  config.scenario.p = p;
  config.scenario.n_hotspots = 2;

  Simulation sim(config);
  (void)sim.run();
  const std::int64_t budget = core::capacity_bytes(13.5, config.sim_time);
  for (const traffic::BNodeGenerator* gen : sim.scenario().generators()) {
    const std::int64_t sent = gen->hotspot_bytes_sent() + gen->uniform_bytes_sent();
    EXPECT_GT(sent, budget / 2) << "node " << gen->node() << " left its link idle";
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, Frame1Property,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

TEST(Frame1, ThrottledHotspotLeavesLinkIdleNotReallocated) {
  // End-to-end version of Frame I's independence rule: with CC enabled
  // and deep hotspot congestion, B nodes must NOT shift unused hotspot
  // budget onto uniform traffic.
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);
  config.sim_time = 2 * core::kMillisecond;
  config.warmup = 0;
  config.cc.ccti_increase = 8;  // hard throttling
  config.cc.ccti_timer = 150;
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.7;
  config.scenario.n_hotspots = 1;

  Simulation sim(config);
  (void)sim.run();
  const std::int64_t budget = core::capacity_bytes(13.5, config.sim_time);
  for (const traffic::BNodeGenerator* gen : sim.scenario().generators()) {
    EXPECT_LE(gen->uniform_bytes_sent(),
              static_cast<std::int64_t>(0.3 * static_cast<double>(budget)) + ib::kMtuBytes);
  }
}

}  // namespace
}  // namespace ibsim::sim
