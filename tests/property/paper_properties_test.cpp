// Properties the paper's analysis implies must hold at ANY scale, probed
// on a small fabric across the p axis:
//
//  * measured non-hotspot receive never exceeds the analytic tmax bound
//    (fig 5-8a: tmax is a ceiling);
//  * enabling CC can only reduce the hotspots' receive rate (fig 5-8b:
//    CC trades a small hotspot drop for the victims' recovery);
//  * total throughput with CC is bounded by the physical ceiling.

#include <gtest/gtest.h>

#include "analysis/tmax.hpp"
#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

class PaperProperty : public ::testing::TestWithParam<double> {
 protected:
  static SimConfig windy_config(double p, bool cc_on) {
    SimConfig config;
    config.topology = TopologyKind::FoldedClos;
    config.clos = topo::FoldedClosParams::scaled(6, 3, 3);  // 18 nodes
    config.sim_time = 2 * core::kMillisecond;
    config.warmup = 500 * core::kMicrosecond;
    config.cc.enabled = cc_on;
    config.cc.ccti_increase = 4;
    config.cc.ccti_timer = 38;
    config.scenario.fraction_b = 1.0;
    config.scenario.p = p;
    config.scenario.n_hotspots = 2;
    return config;
  }
};

TEST_P(PaperProperty, NonHotspotReceiveBoundedByTmax) {
  const double p = GetParam();
  for (const bool cc_on : {false, true}) {
    const SimResult r = run_sim(windy_config(p, cc_on));
    analysis::TmaxInputs in;
    in.n_nodes = 18;
    in.n_b = 18;
    in.p = p;
    // Two corrections invisible at paper scale but material at 18 nodes:
    // 2% window quantisation, and the self-hotspot redirect (a node drawn
    // as its own hotspot sends that share uniformly instead) which can
    // add up to n_hotspots x cap x p / n_nodes of uniform traffic.
    const double self_redirect = 2.0 * 13.5 * p / 18.0;
    EXPECT_LE(r.non_hotspot_rcv_gbps,
              analysis::tmax_gbps(in) * 1.02 + self_redirect + 0.01)
        << "p=" << p << " cc=" << cc_on;
  }
}

TEST_P(PaperProperty, CcNeverRaisesHotspotReceive) {
  const double p = GetParam();
  if (p == 0.0) GTEST_SKIP() << "no hotspot traffic at p=0";
  const SimResult off = run_sim(windy_config(p, false));
  const SimResult on = run_sim(windy_config(p, true));
  // Without CC the hotspots saturate their sinks; CC can only hold that
  // or trade a little of it away.
  EXPECT_LE(on.hotspot_rcv_gbps, off.hotspot_rcv_gbps + 0.05) << "p=" << p;
}

TEST_P(PaperProperty, TotalThroughputWithinPhysicalCeiling) {
  const double p = GetParam();
  for (const bool cc_on : {false, true}) {
    const SimResult r = run_sim(windy_config(p, cc_on));
    // No node can receive beyond its 13.6 Gb/s sink.
    EXPECT_LE(r.total_throughput_gbps, 18 * 13.6 * 1.001);
    EXPECT_GE(r.total_throughput_gbps, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(PAxis, PaperProperty,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace ibsim::sim
