#include "service/sweep_service.hpp"

#include "service/json.hpp"
#include "service/sweep_request.hpp"
#include "store/result_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace ibsim::service {
namespace {

namespace fs = std::filesystem;

Json parse_ok(const std::string& text) {
  std::string error;
  Json v = Json::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return v;
}

sim::SimConfig tiny_base() {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 6;
  config.sim_time = 200 * core::kMicrosecond;
  config.warmup = 0;
  config.scenario.n_hotspots = 1;
  return config;
}

TEST(SweepRequest, ParsesBaseAxesAndName) {
  const Json json = parse_ok(
      R"({"op":"submit","name":"t2","base":{"hotspots":1,"fraction_c":0.8},)"
      R"("axes":{"cc_enabled":[0,1],"seed":[1,2,3]},"threads":4})");
  SweepRequest request;
  std::string error;
  ASSERT_TRUE(parse_sweep_request(json, &request, &error)) << error;
  EXPECT_EQ(request.name, "t2");
  ASSERT_EQ(request.base.size(), 2u);
  EXPECT_EQ(request.base[0], (std::pair<std::string, std::string>{"hotspots", "1"}));
  EXPECT_EQ(request.base[1].second, "0.8");  // source spelling preserved
  ASSERT_EQ(request.axes.size(), 2u);
  EXPECT_EQ(request.axes[0].first, "cc_enabled");
  EXPECT_EQ(request.axes[1].second, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(request.threads, 4);
}

TEST(SweepRequest, RejectsUnknownRequestFields) {
  SweepRequest request;
  std::string error;
  EXPECT_FALSE(parse_sweep_request(parse_ok(R"({"op":"submit","nmae":"typo"})"),
                                   &request, &error));
  EXPECT_NE(error.find("nmae"), std::string::npos);
}

TEST(SweepRequest, ExpandsCartesianProductRowMajor) {
  SweepRequest request;
  request.name = "grid";
  request.base = {{"hotspots", "1"}};
  request.axes = {{"cc_enabled", {"0", "1"}}, {"seed", {"1", "2", "3"}}};
  std::vector<SweepCell> cells;
  std::string error;
  ASSERT_TRUE(expand_sweep(request, tiny_base(), &cells, &error)) << error;
  ASSERT_EQ(cells.size(), 6u);
  // Last axis varies fastest.
  EXPECT_EQ(cells[0].label, "cc_enabled=0 seed=1");
  EXPECT_EQ(cells[1].label, "cc_enabled=0 seed=2");
  EXPECT_EQ(cells[3].label, "cc_enabled=1 seed=1");
  EXPECT_FALSE(cells[0].config.cc.enabled);
  EXPECT_TRUE(cells[5].config.cc.enabled);
  EXPECT_EQ(cells[5].config.seed, 3u);
  // Base applied to every cell.
  for (const SweepCell& cell : cells) EXPECT_EQ(cell.config.scenario.n_hotspots, 1);
}

TEST(SweepRequest, AxisOverridesBaseAndErrorsPropagate) {
  SweepRequest request;
  request.base = {{"seed", "9"}};
  request.axes = {{"seed", {"1", "2"}}};
  std::vector<SweepCell> cells;
  std::string error;
  ASSERT_TRUE(expand_sweep(request, tiny_base(), &cells, &error)) << error;
  EXPECT_EQ(cells[0].config.seed, 1u);
  EXPECT_EQ(cells[1].config.seed, 2u);

  // Unknown keys get the config parser's diagnostic, did-you-mean included.
  request.base = {{"hotspost", "1"}};
  request.axes.clear();
  EXPECT_FALSE(expand_sweep(request, tiny_base(), &cells, &error));
  EXPECT_NE(error.find("hotspost"), std::string::npos);
  EXPECT_NE(error.find("hotspots"), std::string::npos);
}

TEST(SweepRequest, AxislessRequestIsOneCell) {
  SweepRequest request;
  request.name = "solo";
  request.base = {{"seed", "5"}};
  std::vector<SweepCell> cells;
  std::string error;
  ASSERT_TRUE(expand_sweep(request, tiny_base(), &cells, &error)) << error;
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].label, "solo");
  EXPECT_EQ(cells[0].config.seed, 5u);
}

std::vector<SweepCell> tiny_cells(int n) {
  std::vector<SweepCell> cells;
  for (int i = 0; i < n; ++i) {
    SweepCell cell;
    cell.label = "seed=" + std::to_string(i + 1);
    cell.config = tiny_base();
    cell.config.seed = static_cast<std::uint64_t>(i + 1);
    cells.push_back(cell);
  }
  return cells;
}

/// Thread-safe sink for cell outcomes.
struct Sink {
  std::mutex mu;
  std::vector<SweepService::CellOutcome> outcomes;
  SweepService::CellCallback callback() {
    return [this](const SweepService::CellOutcome& outcome) {
      std::lock_guard<std::mutex> lock(mu);
      outcomes.push_back(outcome);
    };
  }
};

TEST(SweepService, ComputesThenServesFromStore) {
  const fs::path dir = fs::path(::testing::TempDir()) / "ibsim_sweep_service_store";
  fs::remove_all(dir);
  {
    SweepService service({dir.string(), 2});
    Sink first;
    service.submit("cold", tiny_cells(3), first.callback());
    service.drain();
    ASSERT_EQ(first.outcomes.size(), 3u);
    // Cold outcomes arrive in completion order; compare by cell index.
    std::sort(first.outcomes.begin(), first.outcomes.end(),
              [](const auto& x, const auto& y) { return x.index < y.index; });
    for (const auto& outcome : first.outcomes) {
      EXPECT_FALSE(outcome.cached);
      EXPECT_GT(outcome.result.delivered_bytes, 0);
    }

    // Same cells again: pure store hits, delivered before submit returns.
    Sink second;
    service.submit("warm", tiny_cells(3), second.callback());
    ASSERT_EQ(second.outcomes.size(), 3u);
    std::sort(second.outcomes.begin(), second.outcomes.end(),
              [](const auto& x, const auto& y) { return x.index < y.index; });
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(second.outcomes[i].cached);
      EXPECT_EQ(second.outcomes[i].result.delivered_bytes,
                first.outcomes[i].result.delivered_bytes)
          << "cached result diverged on cell " << i;
    }

    const auto jobs = service.status();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].name, "cold");
    EXPECT_TRUE(jobs[0].complete);
    EXPECT_EQ(jobs[1].store_hits, 3u);
    EXPECT_TRUE(jobs[1].complete);
  }
  fs::remove_all(dir);
  store::StoreRegistry::instance().clear();
}

TEST(SweepService, ConcurrentIdenticalCellsRunOnce) {
  // No store: dedup must come from in-flight subscription alone. One
  // worker guarantees the first job's second cell is still queued when
  // the overlapping job arrives.
  SweepService service({"", 1});
  Sink a;
  Sink b;
  auto cells_a = tiny_cells(2);  // seeds 1, 2
  auto cells_b = tiny_cells(2);  // identical
  // Long enough per cell (tens of ms of wall time) that the lone worker
  // cannot possibly clear job a's first cell before the very next
  // statement submits job b, even if this thread gets preempted.
  for (auto* cells : {&cells_a, &cells_b}) {
    for (SweepCell& cell : *cells) cell.config.sim_time = 10 * core::kMillisecond;
  }
  service.submit("a", std::move(cells_a), a.callback());
  service.submit("b", std::move(cells_b), b.callback());
  service.drain();

  ASSERT_EQ(a.outcomes.size(), 2u);
  ASSERT_EQ(b.outcomes.size(), 2u);
  // Job b subscribed to a's in-flight runs rather than scheduling its own.
  for (const auto& outcome : b.outcomes) {
    EXPECT_TRUE(outcome.shared) << outcome.label;
  }
  // Both jobs observed the same results, keyed the same.
  const auto by_index = [](std::vector<SweepService::CellOutcome>* v) {
    std::sort(v->begin(), v->end(),
              [](const auto& x, const auto& y) { return x.index < y.index; });
  };
  by_index(&a.outcomes);
  by_index(&b.outcomes);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.outcomes[i].key, b.outcomes[i].key);
    EXPECT_EQ(a.outcomes[i].result.delivered_bytes, b.outcomes[i].result.delivered_bytes);
  }
}

TEST(SweepService, StatusTracksProgressAndDoneFires) {
  SweepService service({"", 2});
  Sink sink;
  std::mutex done_mu;
  std::vector<std::uint64_t> done_jobs;
  const std::uint64_t job = service.submit(
      "tracked", tiny_cells(2), sink.callback(), [&](std::uint64_t id) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_jobs.push_back(id);
      });
  service.drain();
  ASSERT_EQ(done_jobs.size(), 1u);
  EXPECT_EQ(done_jobs[0], job);
  const auto jobs = service.status();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].cells, 2u);
  EXPECT_EQ(jobs[0].done, 2u);
  EXPECT_TRUE(jobs[0].complete);
}

}  // namespace
}  // namespace ibsim::service
