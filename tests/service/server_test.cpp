#include "service/server.hpp"

#include "service/json.hpp"
#include "service/socket.hpp"
#include "store/result_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace ibsim::service {
namespace {

namespace fs = std::filesystem;

/// One protocol client: send a line, collect events until `final_event`.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    std::string error;
    ok_ = connect_unix(socket_path, &fd_, &error);
    EXPECT_TRUE(ok_) << error;
  }

  [[nodiscard]] bool ok() const { return ok_; }

  /// Returns every event received, last one being `final_event` (or
  /// "error"). Fails the test on disconnect.
  std::vector<Json> roundtrip(const std::string& request, const std::string& final_event) {
    std::vector<Json> events;
    EXPECT_TRUE(write_line(fd_.get(), request));
    std::string line;
    while (read_line(fd_.get(), &buffer_, &line)) {
      std::string error;
      events.push_back(Json::parse(line, &error));
      EXPECT_TRUE(error.empty()) << line;
      const Json* kind = events.back().find("event");
      EXPECT_NE(kind, nullptr) << line;
      if (kind == nullptr) return events;
      if (kind->as_string() == final_event || kind->as_string() == "error") return events;
    }
    ADD_FAILURE() << "daemon closed the connection";
    return events;
  }

 private:
  Fd fd_;
  std::string buffer_;
  bool ok_ = false;
};

sim::SimConfig tiny_base() {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 6;
  config.sim_time = 200 * core::kMicrosecond;
  config.warmup = 0;
  config.scenario.n_hotspots = 1;
  return config;
}

constexpr const char* kSubmit =
    R"({"op":"submit","name":"t","axes":{"seed":[1,2]}})";

class SweepServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    socket_path_ =
        (fs::path(::testing::TempDir()) / (std::string("ibsim_srv_") + info->name() + ".sock"))
            .string();
    store_dir_ = (fs::path(::testing::TempDir()) /
                  (std::string("ibsim_srv_store_") + info->name()))
                     .string();
    fs::remove_all(store_dir_);

    SweepServer::Options options;
    options.socket_path = socket_path_;
    options.base_config = tiny_base();
    options.service.store_dir = store_dir_;
    options.service.threads = 2;
    server_ = std::make_unique<SweepServer>(std::move(options));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    server_->stop();
    server_.reset();
    fs::remove_all(store_dir_);
    store::StoreRegistry::instance().clear();
  }

  std::string socket_path_;
  std::string store_dir_;
  std::unique_ptr<SweepServer> server_;
};

TEST_F(SweepServerTest, PingPong) {
  Client client(socket_path_);
  ASSERT_TRUE(client.ok());
  const auto events = client.roundtrip(R"({"op":"ping"})", "pong");
  ASSERT_EQ(events.size(), 1u);
}

TEST_F(SweepServerTest, SubmitStreamsCellsThenServesWarmFromStore) {
  Client client(socket_path_);
  ASSERT_TRUE(client.ok());

  const auto cold = client.roundtrip(kSubmit, "done");
  // accepted + 2 cells + done.
  ASSERT_EQ(cold.size(), 4u);
  EXPECT_EQ(cold[0].find("event")->as_string(), "accepted");
  EXPECT_EQ(cold[0].find("cells")->as_int(), 2);
  for (std::size_t i = 1; i <= 2; ++i) {
    EXPECT_EQ(cold[i].find("event")->as_string(), "cell");
    EXPECT_FALSE(cold[i].find("cached")->as_bool());
    EXPECT_GT(cold[i].find("total_throughput_gbps")->as_double(), 0.0);
    EXPECT_EQ(cold[i].find("key")->as_string().size(), 64u);
  }
  EXPECT_EQ(cold[3].find("store_hits")->as_int(), 0);

  // Same sweep again — all store hits, byte-identical metric values.
  const auto warm = client.roundtrip(kSubmit, "done");
  ASSERT_EQ(warm.size(), 4u);
  for (std::size_t i = 1; i <= 2; ++i) {
    EXPECT_TRUE(warm[i].find("cached")->as_bool());
  }
  EXPECT_EQ(warm[3].find("store_hits")->as_int(), 2);
  // Match cells by key: completion order of the cold pass is arbitrary.
  for (std::size_t i = 1; i <= 2; ++i) {
    for (std::size_t j = 1; j <= 2; ++j) {
      if (cold[i].find("key")->as_string() != warm[j].find("key")->as_string()) continue;
      EXPECT_EQ(cold[i].find("total_throughput_gbps")->number_text(),
                warm[j].find("total_throughput_gbps")->number_text());
    }
  }
}

TEST_F(SweepServerTest, TwoClientsShareTheDaemon) {
  Client first(socket_path_);
  Client second(socket_path_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  (void)first.roundtrip(kSubmit, "done");
  // The second client's identical sweep is served from the store the
  // first client's run populated.
  const auto events = second.roundtrip(kSubmit, "done");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(events[1].find("cached")->as_bool());
  EXPECT_TRUE(events[2].find("cached")->as_bool());

  const auto status = second.roundtrip(R"({"op":"status"})", "status");
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].find("jobs")->elements().size(), 2u);
}

TEST_F(SweepServerTest, DrainBlocksUntilIdle) {
  Client client(socket_path_);
  ASSERT_TRUE(client.ok());
  (void)client.roundtrip(kSubmit, "done");
  const auto events = client.roundtrip(R"({"op":"drain"})", "drained");
  ASSERT_EQ(events.size(), 1u);
}

TEST_F(SweepServerTest, ProtocolErrorsKeepConnectionOpen) {
  Client client(socket_path_);
  ASSERT_TRUE(client.ok());
  auto events = client.roundtrip("this is not json", "error");
  ASSERT_EQ(events.size(), 1u);
  events = client.roundtrip(R"({"op":"florble"})", "error");
  ASSERT_EQ(events.size(), 1u);
  // Bad config keys surface the config parser's diagnostic.
  events = client.roundtrip(R"({"op":"submit","name":"bad","base":{"hotspost":1}})", "error");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("message")->as_string().find("hotspost"), std::string::npos);
  // Still alive.
  events = client.roundtrip(R"({"op":"ping"})", "pong");
  ASSERT_EQ(events.size(), 1u);
}

TEST_F(SweepServerTest, ShutdownSaysBye) {
  Client client(socket_path_);
  ASSERT_TRUE(client.ok());
  const auto events = client.roundtrip(R"({"op":"shutdown"})", "bye");
  ASSERT_EQ(events.size(), 1u);
  server_->wait();  // returns immediately once shutdown was requested
}

}  // namespace
}  // namespace ibsim::service
