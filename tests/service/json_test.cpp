#include "service/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ibsim::service {
namespace {

Json parse_ok(const std::string& text) {
  std::string error;
  Json v = Json::parse(text, &error);
  EXPECT_TRUE(error.empty()) << text << " -> " << error;
  return v;
}

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_ok("-2.5e3").as_double(), -2500.0);
  EXPECT_EQ(parse_ok("42").as_int(), 42);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(Json, NumbersKeepTheirSourceSpelling) {
  // Values forwarded from a request into config text must arrive
  // exactly as the client wrote them.
  EXPECT_EQ(parse_ok("0.1").number_text(), "0.1");
  EXPECT_EQ(parse_ok("1e2").number_text(), "1e2");
  EXPECT_EQ(parse_ok("007").number_text(), "007");
  Json arr = parse_ok("[0.30000000000000004]");
  EXPECT_EQ(arr.elements()[0].number_text(), "0.30000000000000004");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\n")").as_string(), "a\"b\\c\n");
  EXPECT_EQ(parse_ok(R"("Aé")").as_string(), "A\xc3\xa9");
  // And dump re-escapes what must be escaped.
  EXPECT_EQ(Json::string("a\"b\nc").dump(), R"("a\"b\nc")");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", Json::number_int(1));
  obj.set("alpha", Json::number_int(2));
  obj.set("mid", Json::boolean(true));
  EXPECT_EQ(obj.dump(), R"({"zebra":1,"alpha":2,"mid":true})");
  // Overwrite keeps the original position.
  obj.set("zebra", Json::number_int(9));
  EXPECT_EQ(obj.dump(), R"({"zebra":9,"alpha":2,"mid":true})");
}

TEST(Json, FindAndNesting) {
  const Json v = parse_ok(R"({"a":{"b":[1,2,{"c":"deep"}]},"n":null})");
  const Json* a = v.find("a");
  ASSERT_NE(a, nullptr);
  const Json* b = a->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->elements().size(), 3u);
  EXPECT_EQ(b->elements()[2].find("c")->as_string(), "deep");
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(b->find("not_an_object"), nullptr);
}

TEST(Json, DumpParseRoundTrip) {
  const std::string text =
      R"({"name":"t2","base":{"topology":"clos","p_percent":0.5},"axes":{"seed":[1,2,3]},"ok":true})";
  EXPECT_EQ(parse_ok(text).dump(), text);
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01x",
                          "\"unterminated", "{} trailing", "[1 2]", "{\"a\":1,}"}) {
    error.clear();
    (void)Json::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
  }
}

TEST(Json, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  std::string error;
  (void)Json::parse(deep, &error);
  EXPECT_NE(error.find("deep"), std::string::npos);
}

}  // namespace
}  // namespace ibsim::service
