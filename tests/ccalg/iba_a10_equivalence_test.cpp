// A/B guard for the CcAlgorithm extraction: `LegacyCaCcAgent` below is a
// verbatim copy of the pre-refactor cc::CaCcAgent state machine (CCTI
// bump/clamp, swap-remove active list, timer chain, FECN turnaround,
// telemetry stripped). Both agents are driven in lockstep through
// scripted and randomized BECN/grant/timer sequences shaped like the
// paper's three scenario kinds, and every observable must match after
// every step. A divergence here means `iba_a10` is no longer the
// annex-A10 machine this simulator was validated with.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cc/ca_cc.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "ib/cc_params.hpp"
#include "ib/cct.hpp"
#include "ib/types.hpp"

namespace ibsim::cc {
namespace {

constexpr std::uint32_t kLegacyTimerEvent = 0xCC01;

class CountingCnpSender : public CnpSender {
 public:
  void send_cnp(ib::NodeId to, ib::NodeId flow_dst) override {
    ++count;
    last_to = to;
    last_flow_dst = flow_dst;
  }
  int count = 0;
  ib::NodeId last_to = -1;
  ib::NodeId last_flow_dst = -1;
};

/// The CA CC agent exactly as it existed before the ccalg extraction.
class LegacyCaCcAgent final : public core::EventHandler {
 public:
  LegacyCaCcAgent(ib::NodeId self, std::int32_t n_nodes, const ib::CcParams& params,
                  const ib::CongestionControlTable* cct, core::Scheduler* sched,
                  CnpSender* cnp_sender)
      : self_(self),
        params_(params),
        cct_(cct),
        sched_(sched),
        cnp_sender_(cnp_sender),
        flows_(params.sl_level ? 1 : static_cast<std::size_t>(n_nodes)) {}

  [[nodiscard]] core::Time flow_ready_at(ib::NodeId dst) const {
    if (!params_.enabled) return 0;
    return flow(dst).ready_at;
  }

  void on_data_granted(ib::NodeId dst, std::int32_t bytes, core::Time end) {
    if (!params_.enabled) return;
    FlowCc& f = flow(dst);
    if (f.ccti == 0) {
      f.ready_at = end;
      return;
    }
    f.ready_at = end + cct_->ird_delay(f.ccti, bytes);
  }

  void on_becn(ib::NodeId flow_dst, core::Time now) {
    if (!params_.enabled) return;
    ++becn_received_;
    FlowCc& f = flow(flow_dst);
    const bool newly_throttled = f.ccti == 0 && f.active_idx < 0;
    if (newly_throttled) {
      f.active_idx = static_cast<std::int32_t>(active_flows_.size());
      active_flows_.push_back(params_.sl_level ? 0 : flow_dst);
    }
    const std::uint16_t before = f.ccti;
    f.ccti = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(f.ccti + params_.ccti_increase, params_.ccti_limit));
    ccti_total_ += f.ccti - before;
    arm_timer(now);
  }

  void on_fecn(ib::NodeId src) {
    if (!params_.enabled) return;
    ++cnps_sent_;
    cnp_sender_->send_cnp(src, self_);
  }

  void on_event(core::Scheduler& sched, const core::Event& ev) override {
    ASSERT_EQ(ev.kind, kLegacyTimerEvent);
    ++timer_expirations_;
    timer_armed_ = false;
    for (std::size_t i = 0; i < active_flows_.size();) {
      const std::int32_t dst = active_flows_[i];
      FlowCc& f = flows_[static_cast<std::size_t>(dst)];
      if (f.ccti > params_.ccti_min) {
        --f.ccti;
        --ccti_total_;
      }
      if (f.ccti == 0) {
        f.active_idx = -1;
        active_flows_[i] = active_flows_.back();
        active_flows_.pop_back();
        if (i < active_flows_.size()) {
          flows_[static_cast<std::size_t>(active_flows_[i])].active_idx =
              static_cast<std::int32_t>(i);
        }
      } else {
        ++i;
      }
    }
    arm_timer(sched.now());
  }

  [[nodiscard]] std::uint16_t ccti(ib::NodeId dst) const { return flow(dst).ccti; }
  [[nodiscard]] std::uint64_t becn_received() const { return becn_received_; }
  [[nodiscard]] std::uint64_t cnps_sent() const { return cnps_sent_; }
  [[nodiscard]] std::uint64_t timer_expirations() const { return timer_expirations_; }
  [[nodiscard]] std::int32_t active_flow_count() const {
    return static_cast<std::int32_t>(active_flows_.size());
  }
  [[nodiscard]] std::int64_t ccti_sum() const { return ccti_total_; }
  [[nodiscard]] bool timer_armed() const { return timer_armed_; }

 private:
  struct FlowCc {
    std::uint16_t ccti = 0;
    std::int32_t active_idx = -1;
    core::Time ready_at = 0;
  };

  void arm_timer(core::Time now) {
    if (timer_armed_ || active_flows_.empty()) return;
    timer_armed_ = true;
    sched_->schedule_at(now + params_.timer_interval(), this, kLegacyTimerEvent);
  }
  FlowCc& flow(ib::NodeId dst) {
    return flows_[params_.sl_level ? 0 : static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] const FlowCc& flow(ib::NodeId dst) const {
    return flows_[params_.sl_level ? 0 : static_cast<std::size_t>(dst)];
  }

  ib::NodeId self_;
  ib::CcParams params_;
  const ib::CongestionControlTable* cct_;
  core::Scheduler* sched_;
  CnpSender* cnp_sender_;
  std::vector<FlowCc> flows_;
  std::vector<std::int32_t> active_flows_;
  std::int64_t ccti_total_ = 0;
  bool timer_armed_ = false;
  std::uint64_t becn_received_ = 0;
  std::uint64_t cnps_sent_ = 0;
  std::uint64_t timer_expirations_ = 0;
};

/// Drives a legacy and a refactored agent (each on its own scheduler, so
/// timer events fire independently) through the same op sequence and
/// checks every observable after every op.
class Lockstep {
 public:
  Lockstep(const ib::CcParams& params, std::int32_t n_nodes)
      : n_nodes_(n_nodes),
        cct_(128, 13.5),
        legacy_(nullptr),
        agent_(nullptr) {
    cct_.populate_geometric(1.05);
    legacy_ = std::make_unique<LegacyCaCcAgent>(0, n_nodes, params, &cct_, &legacy_sched_,
                                                &legacy_sender_);
    agent_ = std::make_unique<CaCcAgent>(0, n_nodes, params, &cct_, &agent_sched_,
                                         &agent_sender_, "iba_a10");
  }

  void advance_to(core::Time t) {
    legacy_sched_.run_until(t);
    agent_sched_.run_until(t);
    compare(t);
  }

  void becn(ib::NodeId dst, core::Time now) {
    legacy_->on_becn(dst, now);
    agent_->on_becn(dst, now);
    compare(now);
  }

  void grant(ib::NodeId dst, std::int32_t bytes, core::Time end) {
    legacy_->on_data_granted(dst, bytes, end);
    agent_->on_data_granted(dst, bytes, end);
    compare(end);
  }

  void fecn(ib::NodeId src) {
    legacy_->on_fecn(src);
    agent_->on_fecn(src);
    ASSERT_EQ(legacy_sender_.count, agent_sender_.count);
    ASSERT_EQ(legacy_sender_.last_to, agent_sender_.last_to);
  }

  void compare(core::Time at) {
    ASSERT_EQ(legacy_->active_flow_count(), agent_->active_flow_count()) << "t=" << at;
    ASSERT_EQ(legacy_->ccti_sum(), agent_->ccti_sum()) << "t=" << at;
    ASSERT_EQ(legacy_->timer_armed(), agent_->timer_armed()) << "t=" << at;
    ASSERT_EQ(legacy_->timer_expirations(), agent_->timer_expirations()) << "t=" << at;
    ASSERT_EQ(legacy_->becn_received(), agent_->becn_received()) << "t=" << at;
    ASSERT_EQ(legacy_->cnps_sent(), agent_->cnps_sent()) << "t=" << at;
    ASSERT_EQ(legacy_sched_.pending(), agent_sched_.pending()) << "t=" << at;
    for (ib::NodeId d = 0; d < n_nodes_; ++d) {
      ASSERT_EQ(legacy_->ccti(d), agent_->ccti(d)) << "t=" << at << " dst=" << d;
      ASSERT_EQ(legacy_->flow_ready_at(d), agent_->flow_ready_at(d))
          << "t=" << at << " dst=" << d;
    }
  }

  std::int32_t n_nodes_;
  ib::CongestionControlTable cct_;
  core::Scheduler legacy_sched_;
  core::Scheduler agent_sched_;
  CountingCnpSender legacy_sender_;
  CountingCnpSender agent_sender_;
  std::unique_ptr<LegacyCaCcAgent> legacy_;
  std::unique_ptr<CaCcAgent> agent_;
};

ib::CcParams quick_params() {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.ccti_increase = 4;
  p.ccti_timer = 38;
  return p;
}

/// Random drive shaped like one of the paper's scenario kinds: a set of
/// hot destinations attracting a `hot_bias` share of the BECNs, hotspots
/// optionally moving to new destinations at a fixed period.
void random_drive(Lockstep& ab, std::uint64_t seed, double hot_bias, int n_hotspots,
                  core::Time hotspot_period) {
  core::Rng rng(seed);
  const core::Time step = 2 * core::kMicrosecond;
  std::vector<ib::NodeId> hot;
  for (int h = 0; h < n_hotspots; ++h) {
    hot.push_back(static_cast<ib::NodeId>(rng.next_below(
        static_cast<std::uint64_t>(ab.n_nodes_))));
  }
  core::Time now = 0;
  core::Time next_move = hotspot_period;
  for (int op = 0; op < 3000; ++op) {
    now += static_cast<core::Time>(rng.next_below(step));
    if (hotspot_period > 0 && now >= next_move) {
      next_move += hotspot_period;
      for (ib::NodeId& h : hot) {
        h = static_cast<ib::NodeId>(rng.next_below(
            static_cast<std::uint64_t>(ab.n_nodes_)));
      }
    }
    ab.advance_to(now);
    const ib::NodeId dst =
        rng.chance(hot_bias)
            ? hot[rng.next_below(hot.size())]
            : static_cast<ib::NodeId>(rng.next_below(
                  static_cast<std::uint64_t>(ab.n_nodes_)));
    switch (rng.next_below(4)) {
      case 0:
        ab.becn(dst, now);
        break;
      case 1:
      case 2:
        ab.grant(dst, static_cast<std::int32_t>(256 + rng.next_below(ib::kMtuBytes - 256)),
                 now);
        break;
      default:
        ab.fecn(dst);
        break;
    }
  }
  // Drain both timer chains completely.
  ab.advance_to(now + 1000 * core::kMillisecond);
}

TEST(IbaA10Equivalence, ScriptedBecnTimerInterleaving) {
  Lockstep ab(quick_params(), 8);
  const core::Time ti = quick_params().timer_interval();
  ab.becn(3, 0);
  ab.becn(3, 100);
  ab.becn(5, 200);
  ab.grant(3, ib::kMtuBytes, 300);
  ab.advance_to(ti + 1);           // one timer expiry
  ab.becn(5, ti + 50);
  ab.grant(5, 512, ti + 60);
  ab.advance_to(3 * ti);           // more expiries
  ab.becn(1, 3 * ti + 5);
  ab.advance_to(100 * ti);         // full recovery, chain stops
  ASSERT_EQ(ab.agent_->active_flow_count(), 0);
}

TEST(IbaA10Equivalence, ClampAtLimitMatches) {
  ib::CcParams p = quick_params();
  p.ccti_limit = 12;
  Lockstep ab(p, 4);
  for (int i = 0; i < 40; ++i) ab.becn(1, i * 10);
  ASSERT_EQ(ab.agent_->ccti(1), 12);
  ab.advance_to(1000 * core::kMillisecond);
}

TEST(IbaA10Equivalence, CctiMinFloorMatches) {
  ib::CcParams p = quick_params();
  p.ccti_min = 3;
  Lockstep ab(p, 4);
  for (int i = 0; i < 10; ++i) ab.becn(2, i);
  ab.advance_to(1000 * core::kMillisecond);
  ASSERT_EQ(ab.agent_->ccti(2), 3);
  ASSERT_EQ(ab.agent_->active_flow_count(), 1);  // floored flow stays active
}

TEST(IbaA10Equivalence, SlLevelMatches) {
  ib::CcParams p = quick_params();
  p.sl_level = true;
  Lockstep ab(p, 8);
  ab.becn(1, 0);
  ab.becn(6, 10);
  ab.grant(4, ib::kMtuBytes, 20);
  ab.advance_to(1000 * core::kMillisecond);
}

// The three randomized drives mirror the paper's taxonomy: static silent
// trees (few fixed hotspots), a windy forest (diffuse victims, p=0.5
// bias), and moving hotspots (targets shift every period).
TEST(IbaA10Equivalence, RandomizedSilentForestDrive) {
  Lockstep ab(quick_params(), 12);
  random_drive(ab, /*seed=*/42, /*hot_bias=*/0.8, /*n_hotspots=*/2,
               /*hotspot_period=*/0);
}

TEST(IbaA10Equivalence, RandomizedWindyForestDrive) {
  Lockstep ab(quick_params(), 12);
  random_drive(ab, /*seed=*/7, /*hot_bias=*/0.5, /*n_hotspots=*/4,
               /*hotspot_period=*/0);
}

TEST(IbaA10Equivalence, RandomizedMovingHotspotDrive) {
  Lockstep ab(quick_params(), 12);
  random_drive(ab, /*seed=*/11, /*hot_bias=*/0.7, /*n_hotspots=*/2,
               /*hotspot_period=*/200 * core::kMicrosecond);
}

}  // namespace
}  // namespace ibsim::cc
