// Full-simulation guards for the pluggable CC subsystem.
//
// The golden tests pin `--cc-algo=iba_a10` to SimResults captured from
// the tree as it was BEFORE the CcAlgorithm extraction (same seeds, same
// scenarios, exact hexfloat values). The simulator is deterministic down
// to the bit: integer-picosecond time, IEEE-754 double arithmetic with
// no FMA contraction in generic builds, and no std::random. If one of
// these fails, the refactor changed simulated behaviour — which the
// whole PR promises not to.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig base_config(std::uint64_t seed) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.seed = seed;
  return config;
}

SimConfig silent_config() {
  SimConfig c = base_config(42);
  c.scenario.fraction_b = 0.0;
  c.scenario.n_hotspots = 2;
  return c;
}

SimConfig windy_config() {
  SimConfig c = base_config(7);
  c.scenario.fraction_b = 1.0;
  c.scenario.p = 0.5;
  c.scenario.n_hotspots = 2;
  return c;
}

SimConfig moving_config() {
  SimConfig c = base_config(11);
  c.scenario.fraction_b = 0.5;
  c.scenario.p = 0.4;
  c.scenario.n_hotspots = 2;
  c.scenario.hotspot_lifetime = 200 * core::kMicrosecond;
  return c;
}

struct Golden {
  double hotspot_rcv_gbps;
  double non_hotspot_rcv_gbps;
  double all_rcv_gbps;
  double total_throughput_gbps;
  double jain_non_hotspot;
  double median_latency_us;
  double p99_latency_us;
  std::uint64_t fecn_marked;
  std::uint64_t cnps_sent;
  std::uint64_t becn_received;
  std::int64_t delivered_bytes;
  std::uint64_t events_executed;
};

void expect_matches(const SimResult& r, const Golden& g) {
  // Bitwise comparisons on purpose: EXPECT_DOUBLE_EQ's 4-ULP slack would
  // hide a real behaviour change.
  EXPECT_EQ(r.hotspot_rcv_gbps, g.hotspot_rcv_gbps);
  EXPECT_EQ(r.non_hotspot_rcv_gbps, g.non_hotspot_rcv_gbps);
  EXPECT_EQ(r.all_rcv_gbps, g.all_rcv_gbps);
  EXPECT_EQ(r.total_throughput_gbps, g.total_throughput_gbps);
  EXPECT_EQ(r.jain_non_hotspot, g.jain_non_hotspot);
  EXPECT_EQ(r.median_latency_us, g.median_latency_us);
  EXPECT_EQ(r.p99_latency_us, g.p99_latency_us);
  EXPECT_EQ(r.fecn_marked, g.fecn_marked);
  EXPECT_EQ(r.cnps_sent, g.cnps_sent);
  EXPECT_EQ(r.becn_received, g.becn_received);
  EXPECT_EQ(r.delivered_bytes, g.delivered_bytes);
  EXPECT_EQ(r.events_executed, g.events_executed);
}

// Captured 2026-08-06 at commit 9ba5484 (pre-ccalg tree), g++ -O2.
// The captures predate the fabric fast path and pin events_executed, so
// they run the reference event chain; fast-vs-slow equivalence of every
// behavioural field is covered by tests/integration/fast_path_equivalence.
// Rate/Jain fields were re-captured when the measurement window was
// pinned to the configured [warmup, sim_time] instants (it previously
// ended at the last executed event): identical traffic, identical event
// counts, slightly different rate denominators.
TEST(IbaA10Golden, SilentForestMatchesPreRefactorTree) {
  SimConfig c = silent_config();
  c.fabric_fast_path = false;
  c.cc_algo = "iba_a10";
  expect_matches(run_sim(c),
                 {0x1.db22d0e560418p+2, 0x1.b43526527a205p+0, 0x1.5421c044284ep+1,
                  0x1.fe32a0663c75p+4, 0x1.d1aa986978624p-1, 0x1.d7a125fd84587p+5,
                  0x1.cf01696969696p+7, 1268, 999, 999, 3188736, 38301});
}

TEST(IbaA10Golden, WindyForestMatchesPreRefactorTree) {
  SimConfig c = windy_config();
  c.fabric_fast_path = false;
  c.cc_algo = "iba_a10";
  expect_matches(run_sim(c),
                 {0x1.23a29c779a6b5p+3, 0x1.86db50f40e5a3p+1, 0x1.041195e2e41ebp+2,
                  0x1.861a60d4562e1p+5, 0x1.f4592e45b6e72p-1, 0x1.b16bb60131877p+5,
                  0x1.c61ap+7, 1439, 1083, 1083, 4876288, 51796});
}

TEST(IbaA10Golden, MovingHotspotsMatchesPreRefactorTree) {
  SimConfig c = moving_config();
  c.fabric_fast_path = false;
  c.cc_algo = "iba_a10";
  expect_matches(run_sim(c),
                 {0x1.cf56eac860568p+2, 0x1.63baba7b9170ep+2, 0x1.75aa17ddb3ec8p+2,
                  0x1.183f91e646f16p+6, 0x1.a4ca7589f1261p-1, 0x1.faff457703668p+5,
                  0x1.f1d1dc47711dcp+7, 3593, 2764, 2760, 7006208, 86433});
}

// --- cross-algorithm properties --------------------------------------------

TEST(CcAlgoSim, EveryAlgorithmIsDeterministic) {
  for (const char* algo : {"iba_a10", "dcqcn", "aimd", "none"}) {
    SimConfig c = silent_config();
    c.cc_algo = algo;
    const SimResult a = run_sim(c);
    const SimResult b = run_sim(c);
    EXPECT_EQ(a.events_executed, b.events_executed) << algo;
    EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << algo;
    EXPECT_EQ(a.all_rcv_gbps, b.all_rcv_gbps) << algo;
    EXPECT_EQ(a.becn_received, b.becn_received) << algo;
  }
}

TEST(CcAlgoSim, NoneMatchesDisabledCc) {
  // The explicit passthrough must reproduce cc.enabled=false exactly:
  // same events, same bytes, zero notifications.
  SimConfig with_none = silent_config();
  with_none.cc_algo = "none";
  SimConfig disabled = silent_config();
  disabled.cc.enabled = false;
  const SimResult a = run_sim(with_none);
  const SimResult b = run_sim(disabled);
  EXPECT_EQ(a.cnps_sent, 0u);
  EXPECT_EQ(a.becn_received, 0u);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.all_rcv_gbps, b.all_rcv_gbps);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(CcAlgoSim, ReactiveAlgorithmsThrottleTheSilentForest) {
  // Behaviour sanity, not equivalence: every reactive algorithm must
  // receive BECNs and lift victim throughput above the none baseline.
  SimConfig base = silent_config();
  base.cc_algo = "none";
  const SimResult none = run_sim(base);
  for (const char* algo : {"iba_a10", "dcqcn", "aimd"}) {
    SimConfig c = silent_config();
    c.cc_algo = algo;
    const SimResult r = run_sim(c);
    EXPECT_GT(r.becn_received, 0u) << algo;
    EXPECT_GT(r.non_hotspot_rcv_gbps, none.non_hotspot_rcv_gbps) << algo;
  }
}

TEST(CcAlgoSim, AlgorithmsActuallyDiffer) {
  // If dcqcn or aimd ever collapse into iba_a10 (e.g. a registry wiring
  // bug returning the default), their trajectories would be identical.
  SimConfig c = windy_config();
  c.cc_algo = "iba_a10";
  const SimResult a10 = run_sim(c);
  c.cc_algo = "dcqcn";
  const SimResult dc = run_sim(c);
  c.cc_algo = "aimd";
  const SimResult am = run_sim(c);
  EXPECT_NE(a10.delivered_bytes, dc.delivered_bytes);
  EXPECT_NE(a10.delivered_bytes, am.delivered_bytes);
  EXPECT_NE(dc.delivered_bytes, am.delivered_bytes);
}

TEST(CcAlgoSimDeath, UnknownAlgorithmAborts) {
  SimConfig c = silent_config();
  c.cc_algo = "bogus";
  EXPECT_DEATH((void)run_sim(c), "cc_algo");
}

}  // namespace
}  // namespace ibsim::sim
