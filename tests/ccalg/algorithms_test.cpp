#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ccalg/registry.hpp"
#include "core/time.hpp"
#include "ib/cc_params.hpp"
#include "ib/cct.hpp"
#include "ib/types.hpp"

namespace ibsim::ccalg {
namespace {

class AlgorithmsTest : public ::testing::Test {
 protected:
  AlgorithmsTest() : cct_(128, 13.5) { cct_.populate_linear(); }

  std::unique_ptr<CcAlgorithm> make(const std::string& name, std::int32_t n_flows = 4) {
    CcAlgoContext ctx;
    ctx.n_flows = n_flows;
    ctx.params = ib::CcParams::paper_table1();
    ctx.cct = &cct_;
    return CcAlgorithmRegistry::instance().create(name, ctx);
  }

  /// Drain one flow back to full rate; returns timer expiries used.
  int recover_fully(CcAlgorithm& algo, int max_ticks = 10000) {
    int ticks = 0;
    while (algo.active_flow_count() > 0 && ticks < max_ticks) {
      algo.on_timer(0, nullptr);
      ++ticks;
    }
    return ticks;
  }

  ib::CongestionControlTable cct_;
};

// --- iba_a10 ---------------------------------------------------------------

TEST_F(AlgorithmsTest, IbaA10BecnBumpsCctiAndSeverity) {
  auto algo = make("iba_a10");
  const BecnOutcome first = algo->on_becn(2, 0);
  EXPECT_TRUE(first.newly_throttled);
  EXPECT_EQ(first.severity, 1);
  EXPECT_EQ(algo->ccti(2), 1);
  const BecnOutcome second = algo->on_becn(2, 0);
  EXPECT_FALSE(second.newly_throttled);
  EXPECT_EQ(second.severity, 2);
  EXPECT_EQ(algo->active_flow_count(), 1);
  EXPECT_DOUBLE_EQ(algo->rate_fraction(2), cct_.rate_fraction(2));
}

TEST_F(AlgorithmsTest, IbaA10TimerDecrementsAndReportsEnded) {
  auto algo = make("iba_a10");
  algo->on_becn(1, 0);
  algo->on_becn(3, 0);
  std::vector<std::int32_t> ended;
  const std::int64_t severity = algo->on_timer(0, &ended);
  EXPECT_EQ(severity, 0);
  EXPECT_EQ(algo->active_flow_count(), 0);
  ASSERT_EQ(ended.size(), 2u);
  EXPECT_EQ(algo->timer_delay(), 0);
}

TEST_F(AlgorithmsTest, IbaA10SendAppliesIrdOfCurrentCcti) {
  auto algo = make("iba_a10");
  algo->on_becn(0, 0);
  const core::Time end = 5 * core::kMicrosecond;
  const core::Time ready = algo->on_send(0, ib::kMtuBytes, end);
  EXPECT_EQ(ready, end + cct_.ird_delay(1, ib::kMtuBytes));
  EXPECT_EQ(algo->ready_at(0), ready);
}

// --- dcqcn -----------------------------------------------------------------

TEST_F(AlgorithmsTest, DcqcnBecnCutsRateMultiplicatively) {
  auto algo = make("dcqcn");
  EXPECT_DOUBLE_EQ(algo->rate_fraction(0), 1.0);
  const BecnOutcome out = algo->on_becn(0, 0);
  EXPECT_TRUE(out.newly_throttled);
  EXPECT_GT(out.severity, 0);
  const double after_one = algo->rate_fraction(0);
  EXPECT_LT(after_one, 1.0);
  // Repeated marks keep compounding (alpha grows, rate shrinks).
  for (int i = 0; i < 10; ++i) algo->on_becn(0, 0);
  EXPECT_LT(algo->rate_fraction(0), after_one);
  EXPECT_GT(algo->rate_fraction(0), 0.0);
}

TEST_F(AlgorithmsTest, DcqcnThrottledFlowDelaysInjection) {
  auto algo = make("dcqcn");
  algo->on_becn(1, 0);
  EXPECT_GT(algo->injection_delay(1, ib::kMtuBytes), 0);
  EXPECT_EQ(algo->injection_delay(0, ib::kMtuBytes), 0);  // other flow untouched
  const core::Time end = 1000000;
  EXPECT_GT(algo->on_send(1, ib::kMtuBytes, end), end);
}

TEST_F(AlgorithmsTest, DcqcnTimerRecoversToFullRate) {
  auto algo = make("dcqcn");
  for (int i = 0; i < 5; ++i) algo->on_becn(2, 0);
  EXPECT_EQ(algo->active_flow_count(), 1);
  const int ticks = recover_fully(*algo);
  EXPECT_LT(ticks, 200) << "recovery must converge";
  EXPECT_DOUBLE_EQ(algo->rate_fraction(2), 1.0);
  EXPECT_EQ(algo->severity_sum(), 0);
  EXPECT_EQ(algo->injection_delay(2, ib::kMtuBytes), 0);
}

TEST_F(AlgorithmsTest, DcqcnFastRecoveryMovesHalfwayToTarget) {
  auto algo = make("dcqcn");
  algo->on_becn(0, 0);
  const double cut = algo->rate_fraction(0);
  algo->on_timer(0, nullptr);
  const double recovered = algo->rate_fraction(0);
  // One fast-recovery stage closes at least a third of the gap to the
  // pre-cut target (exactly half, minus the alpha-decay interplay).
  EXPECT_GT(recovered, cut);
  EXPECT_LT(recovered, 1.0);
}

// --- aimd ------------------------------------------------------------------

TEST_F(AlgorithmsTest, AimdHalvesOnBecn) {
  auto algo = make("aimd");
  algo->on_becn(0, 0);
  EXPECT_DOUBLE_EQ(algo->rate_fraction(0), 0.5);
  algo->on_becn(0, 0);
  EXPECT_DOUBLE_EQ(algo->rate_fraction(0), 0.25);
}

TEST_F(AlgorithmsTest, AimdRateNeverBelowFloor) {
  auto algo = make("aimd");
  for (int i = 0; i < 64; ++i) algo->on_becn(0, 0);
  EXPECT_GT(algo->rate_fraction(0), 0.0);
}

TEST_F(AlgorithmsTest, AimdRecoversAdditively) {
  auto algo = make("aimd");
  algo->on_becn(3, 0);
  const double halved = algo->rate_fraction(3);
  std::vector<std::int32_t> ended;
  algo->on_timer(0, &ended);
  EXPECT_NEAR(algo->rate_fraction(3), halved + 1.0 / 32.0, 1e-12);
  EXPECT_TRUE(ended.empty());
  const int ticks = recover_fully(*algo);
  EXPECT_EQ(ticks, 15);  // 0.5 -> 1.0 in 1/32 steps
  EXPECT_DOUBLE_EQ(algo->rate_fraction(3), 1.0);
}

// --- none ------------------------------------------------------------------

TEST_F(AlgorithmsTest, NoneIsCompletelyInert) {
  auto algo = make("none");
  EXPECT_FALSE(algo->cnp_on_fecn());
  const BecnOutcome out = algo->on_becn(0, 0);
  EXPECT_FALSE(out.newly_throttled);
  EXPECT_EQ(out.severity, 0);
  EXPECT_EQ(algo->active_flow_count(), 0);
  EXPECT_EQ(algo->timer_delay(), 0);
  EXPECT_EQ(algo->on_send(0, ib::kMtuBytes, 777), 777);
  EXPECT_EQ(algo->ready_at(0), 0);
  EXPECT_DOUBLE_EQ(algo->rate_fraction(0), 1.0);
}

// --- shared contracts ------------------------------------------------------

TEST_F(AlgorithmsTest, ReactiveAlgorithmsNeedTimerOnlyWhenThrottled) {
  for (const char* name : {"iba_a10", "dcqcn", "aimd"}) {
    auto algo = make(name);
    EXPECT_EQ(algo->timer_delay(), 0) << name;
    algo->on_becn(0, 0);
    EXPECT_EQ(algo->timer_delay(), ib::CcParams::paper_table1().timer_interval()) << name;
    recover_fully(*algo);
    EXPECT_EQ(algo->timer_delay(), 0) << name;
  }
}

TEST_F(AlgorithmsTest, ReactiveAlgorithmsAnswerFecn) {
  for (const char* name : {"iba_a10", "dcqcn", "aimd"}) {
    EXPECT_TRUE(make(name)->cnp_on_fecn()) << name;
  }
}

TEST_F(AlgorithmsTest, NullEndedListNeverChangesBehaviour) {
  for (const char* name : {"iba_a10", "dcqcn", "aimd"}) {
    auto with_list = make(name);
    auto without = make(name);
    for (int i = 0; i < 3; ++i) {
      with_list->on_becn(1, 0);
      without->on_becn(1, 0);
    }
    std::vector<std::int32_t> ended;
    for (int t = 0; t < 50; ++t) {
      const std::int64_t a = with_list->on_timer(0, &ended);
      const std::int64_t b = without->on_timer(0, nullptr);
      EXPECT_EQ(a, b) << name << " tick " << t;
    }
    EXPECT_EQ(with_list->active_flow_count(), without->active_flow_count()) << name;
  }
}

}  // namespace
}  // namespace ibsim::ccalg
