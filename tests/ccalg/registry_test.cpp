#include "ccalg/registry.hpp"

#include <gtest/gtest.h>

#include "ib/cc_params.hpp"
#include "ib/cct.hpp"

namespace ibsim::ccalg {
namespace {

CcAlgoContext make_ctx(const ib::CongestionControlTable* cct) {
  CcAlgoContext ctx;
  ctx.n_flows = 4;
  ctx.params = ib::CcParams::paper_table1();
  ctx.cct = cct;
  return ctx;
}

TEST(CcAlgorithmRegistry, BuiltinsRegistered) {
  const auto& reg = CcAlgorithmRegistry::instance();
  EXPECT_TRUE(reg.contains("iba_a10"));
  EXPECT_TRUE(reg.contains("dcqcn"));
  EXPECT_TRUE(reg.contains("aimd"));
  EXPECT_TRUE(reg.contains("none"));
  EXPECT_FALSE(reg.contains("ecn"));
  EXPECT_FALSE(reg.contains(""));
}

TEST(CcAlgorithmRegistry, NamesSortedAndJoined) {
  const auto& reg = CcAlgorithmRegistry::instance();
  const std::vector<std::string> names = reg.names();
  ASSERT_GE(names.size(), 4u);
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]) << "names must enumerate sorted";
  }
  const std::string joined = reg.names_joined();
  EXPECT_NE(joined.find("iba_a10"), std::string::npos);
  EXPECT_NE(joined.find("dcqcn"), std::string::npos);
}

TEST(CcAlgorithmRegistry, IdsAreSortedRanks) {
  const auto& reg = CcAlgorithmRegistry::instance();
  const std::vector<std::string> names = reg.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(reg.id_of(names[i]), static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(reg.id_of("no-such-algorithm"), -1);
}

TEST(CcAlgorithmRegistry, CreateReturnsNamedInstance) {
  ib::CongestionControlTable cct(128, 13.5);
  cct.populate_linear();
  const auto& reg = CcAlgorithmRegistry::instance();
  for (const std::string& name : {"iba_a10", "dcqcn", "aimd", "none"}) {
    const auto algo = reg.create(name, make_ctx(&cct));
    ASSERT_NE(algo, nullptr);
    EXPECT_STREQ(algo->name(), name.c_str());
  }
}

TEST(CcAlgorithmRegistry, RateBasedAlgorithmsWorkWithoutCct) {
  const auto& reg = CcAlgorithmRegistry::instance();
  for (const std::string& name : {"dcqcn", "aimd", "none"}) {
    const auto algo = reg.create(name, make_ctx(nullptr));
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->injection_delay(0, 2048), 0);
  }
}

TEST(CcAlgorithmRegistryDeath, CreateUnknownAborts) {
  ib::CongestionControlTable cct(128, 13.5);
  EXPECT_DEATH((void)CcAlgorithmRegistry::instance().create("bogus", make_ctx(&cct)),
               "unknown");
}

TEST(CcAlgorithmRegistryDeath, IbaA10NeedsCct) {
  EXPECT_DEATH((void)CcAlgorithmRegistry::instance().create("iba_a10", make_ctx(nullptr)),
               "table");
}

}  // namespace
}  // namespace ibsim::ccalg
