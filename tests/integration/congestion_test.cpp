// Integration tests of congestion formation and HOL blocking (the
// phenomena of paper section III) on small fabrics, CC disabled.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig small_clos_config() {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, 3);  // 18 nodes
  config.sim_time = 2 * core::kMillisecond;
  config.warmup = 500 * core::kMicrosecond;
  config.cc = ib::CcParams::disabled();
  return config;
}

TEST(Congestion, UniformTrafficIsUncongested) {
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.0;  // all V nodes
  config.scenario.n_hotspots = 0;
  const SimResult r = run_sim(config);
  // 18 saturating uniform senders on a non-blocking fabric: every node
  // receives close to the 13.5 Gb/s injection cap (transient collisions
  // on shared sinks cost a little), with near-perfect fairness.
  EXPECT_GT(r.all_rcv_gbps, 11.5);
  EXPECT_LE(r.all_rcv_gbps, 13.6);
  EXPECT_GT(r.jain_non_hotspot, 0.98);
  EXPECT_EQ(r.fecn_marked, 0u);  // CC disabled
}

TEST(Congestion, HotspotSaturatesItsSink) {
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  const SimResult r = run_sim(config);
  EXPECT_NEAR(r.hotspot_rcv_gbps, 13.6, 0.1);
}

TEST(Congestion, HolBlockingDegradesVictims) {
  // With half the nodes hammering one hotspot, the congestion tree HOL-
  // blocks the victims far below their no-hotspot throughput.
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  const SimResult with_hotspot = run_sim(config);

  SimConfig baseline = config;
  baseline.scenario.c_nodes_active = false;
  const SimResult alone = run_sim(baseline);

  EXPECT_LT(with_hotspot.non_hotspot_rcv_gbps, alone.all_rcv_gbps / 2.0);
}

TEST(Congestion, MoreContributorsDeeperCollapse) {
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.n_hotspots = 1;
  config.scenario.fraction_c_of_rest = 0.3;
  const SimResult light = run_sim(config);
  config.scenario.fraction_c_of_rest = 0.9;
  const SimResult heavy = run_sim(config);
  EXPECT_LT(heavy.non_hotspot_rcv_gbps, light.non_hotspot_rcv_gbps);
}

TEST(Congestion, NoTrafficNoDeliveries) {
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 1.0;  // all C...
  config.scenario.c_nodes_active = false;    // ...but silent
  config.scenario.n_hotspots = 1;
  const SimResult r = run_sim(config);
  EXPECT_EQ(r.delivered_bytes, 0);
  EXPECT_EQ(r.total_throughput_gbps, 0.0);
}

TEST(Congestion, SingleSwitchEndpointCongestion) {
  // Endpoint congestion exists even in a single crossbar: no fabric
  // links to blame, just the oversubscribed sink.
  SimConfig config;
  config.topology = TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.cc = ib::CcParams::disabled();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.75;
  config.scenario.n_hotspots = 1;
  const SimResult r = run_sim(config);
  EXPECT_NEAR(r.hotspot_rcv_gbps, 13.6, 0.2);
  // Uniform victims suffer because their packets to the hotspot HOL
  // block their input queues at the sources... but on a single switch
  // with VoQ there is no fabric HOL blocking: victims retain most of
  // their uniform throughput towards non-hotspot destinations.
  EXPECT_GT(r.non_hotspot_rcv_gbps, 0.0);
}

TEST(Congestion, MovingHotspotsRaiseAggregateThroughput) {
  // Section V-C: shorter hotspot lifetimes spread load and raise total
  // throughput even without CC.
  SimConfig config = small_clos_config();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.8;
  config.scenario.n_hotspots = 2;
  config.sim_time = 4 * core::kMillisecond;
  config.warmup = 500 * core::kMicrosecond;

  config.scenario.hotspot_lifetime = core::kTimeNever;
  const SimResult still = run_sim(config);
  config.scenario.hotspot_lifetime = 250 * core::kMicrosecond;
  const SimResult moving = run_sim(config);
  EXPECT_GT(moving.total_throughput_gbps, still.total_throughput_gbps);
}

}  // namespace
}  // namespace ibsim::sim
