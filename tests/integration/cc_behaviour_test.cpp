// Integration tests of the full FECN -> BECN -> throttle loop (paper
// section II) on small fabrics.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "traffic/scenario.hpp"

namespace ibsim::sim {
namespace {

SimConfig hotspot_config(bool cc_on) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, 3);  // 18 nodes
  config.sim_time = 3 * core::kMillisecond;
  config.warmup = core::kMillisecond;
  config.cc = cc_on ? ib::CcParams::paper_table1() : ib::CcParams::disabled();
  // Faster loop so the small fixture converges well inside the window.
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  return config;
}

TEST(CcBehaviour, FeedbackLoopActivatesUnderCongestion) {
  const SimResult r = run_sim(hotspot_config(true));
  EXPECT_GT(r.fecn_marked, 100u);
  EXPECT_GT(r.cnps_sent, 100u);
  EXPECT_GT(r.becn_received, 100u);
  // Every BECN comes from a CNP; in-flight CNPs account for the slack.
  EXPECT_LE(r.becn_received, r.cnps_sent);
}

TEST(CcBehaviour, UniformTrafficPenaltyIsSmall) {
  // Saturating uniform traffic causes transient queue build-ups that an
  // aggressive threshold (weight 15) occasionally marks — the spec
  // itself warns weight 15 may fire "even when the switch is not really
  // congested". Figure 8(a) of the paper quantifies the resulting
  // penalty at p=0 as ~3%; on this fixture we bound it at 10%.
  // The penalty shrinks with node count (per-flow rates get finer
  // relative to the CCT step): ~25%% at 18 nodes, ~15%% at 72, ~2.5%% at
  // the paper's 648 (measured by the fig8 bench at p=0). Bound the
  // 72-node fixture at 20%%.
  SimConfig uniform_on = hotspot_config(true);
  uniform_on.clos = topo::FoldedClosParams::scaled(12, 6, 6);  // 72 nodes
  uniform_on.scenario.fraction_c_of_rest = 0.0;  // all uniform
  uniform_on.scenario.n_hotspots = 0;
  SimConfig uniform_off = uniform_on;
  uniform_off.cc = ib::CcParams::disabled();
  const SimResult on = run_sim(uniform_on);
  const SimResult off = run_sim(uniform_off);
  EXPECT_GT(on.all_rcv_gbps, 0.8 * off.all_rcv_gbps);
}

TEST(CcBehaviour, CcRescuesVictims) {
  const SimResult off = run_sim(hotspot_config(false));
  const SimResult on = run_sim(hotspot_config(true));
  EXPECT_GT(on.non_hotspot_rcv_gbps, 1.5 * off.non_hotspot_rcv_gbps);
  EXPECT_GT(on.total_throughput_gbps, off.total_throughput_gbps);
}

TEST(CcBehaviour, HotspotThroughputLargelyPreserved) {
  const SimResult off = run_sim(hotspot_config(false));
  const SimResult on = run_sim(hotspot_config(true));
  // The paper reports only a small percentage drop at the hotspots.
  EXPECT_GT(on.hotspot_rcv_gbps, 0.5 * off.hotspot_rcv_gbps);
}

TEST(CcBehaviour, CcImprovesFairnessAmongVictims) {
  const SimResult off = run_sim(hotspot_config(false));
  const SimResult on = run_sim(hotspot_config(true));
  EXPECT_GT(on.jain_non_hotspot, off.jain_non_hotspot);
}

TEST(CcBehaviour, ThresholdWeightZeroDisablesTheLoop) {
  SimConfig config = hotspot_config(true);
  config.cc.threshold_weight = 0;
  const SimResult r = run_sim(config);
  EXPECT_EQ(r.fecn_marked, 0u);
}

TEST(CcBehaviour, LaxThresholdMarksLess) {
  SimConfig aggressive = hotspot_config(true);
  aggressive.cc.threshold_weight = 15;
  SimConfig lax = hotspot_config(true);
  lax.cc.threshold_weight = 1;
  const SimResult a = run_sim(aggressive);
  const SimResult l = run_sim(lax);
  EXPECT_GT(a.fecn_marked, l.fecn_marked);
}

TEST(CcBehaviour, MarkingRateThinsMarks) {
  SimConfig all = hotspot_config(true);
  SimConfig sparse = hotspot_config(true);
  sparse.cc.marking_rate = 7;  // one mark per 8 eligible packets
  const SimResult a = run_sim(all);
  const SimResult s = run_sim(sparse);
  EXPECT_LT(s.fecn_marked, a.fecn_marked / 4);
}

TEST(CcBehaviour, PacketSizeExemptsCnpSizedPackets) {
  SimConfig config = hotspot_config(true);
  config.cc.packet_size = 32;  // 32 x 64 B = 2048: exempts all MTU packets too
  const SimResult r = run_sim(config);
  EXPECT_EQ(r.fecn_marked, 0u);
}

TEST(CcBehaviour, SlLevelCcThrottlesInnocentFlows) {
  // Section II.2: operating at SL level throttles *all* flows of a
  // source once any of its flows is marked — the uniform (victim-bound)
  // traffic of B nodes is gated at the generator even though it does
  // not contribute to the hotspot tree. Measured at the source: B nodes
  // inject less uniform traffic under SL-level CC than under QP-level.
  SimConfig qp = hotspot_config(true);
  qp.scenario.fraction_b = 1.0;  // B nodes mix hotspot + uniform traffic
  qp.scenario.p = 0.5;
  SimConfig sl = qp;
  sl.cc.sl_level = true;
  Simulation sim_qp(qp);
  (void)sim_qp.run();
  Simulation sim_sl(sl);
  (void)sim_sl.run();
  std::int64_t uniform_qp = 0;
  for (const auto* gen : sim_qp.scenario().generators()) {
    uniform_qp += gen->uniform_bytes_sent();
  }
  std::int64_t uniform_sl = 0;
  for (const auto* gen : sim_sl.scenario().generators()) {
    uniform_sl += gen->uniform_bytes_sent();
  }
  EXPECT_LT(uniform_sl, uniform_qp);
}

TEST(CcBehaviour, DynamicTrafficNotHarmed) {
  // Section V-C: as hotspots move faster, the CC advantage shrinks —
  // but CC must not hurt. On this small fixture we assert the no-harm
  // bound; the fig9/fig10 benches measure the actual advantage at paper
  // scale.
  SimConfig off = hotspot_config(false);
  off.scenario.hotspot_lifetime = 2 * core::kMillisecond;
  off.sim_time = 8 * core::kMillisecond;
  SimConfig on = hotspot_config(true);
  on.scenario.hotspot_lifetime = 2 * core::kMillisecond;
  on.sim_time = 8 * core::kMillisecond;
  const SimResult r_off = run_sim(off);
  const SimResult r_on = run_sim(on);
  EXPECT_GT(r_on.all_rcv_gbps, 0.9 * r_off.all_rcv_gbps);
}

TEST(CcBehaviour, CnpsFlowOnDedicatedVl) {
  // With the CNP VL disabled (single lane), the loop still works — the
  // dedicated lane is a robustness feature, not a correctness one.
  SimConfig config = hotspot_config(true);
  config.fabric.n_vls = 1;
  config.fabric.cnp_on_own_vl = false;
  const SimResult r = run_sim(config);
  EXPECT_GT(r.becn_received, 0u);
}

}  // namespace
}  // namespace ibsim::sim
