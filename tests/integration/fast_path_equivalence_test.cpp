// A/B equivalence of the fabric event fast path (SimConfig::fabric_fast_path):
// lazy link wakeups, busy-aware credit handling and coalesced credit
// returns must change *only* how many scheduler events run, never what
// the simulation computes. Every behavioural SimResult field is required
// to be bit-identical fast-on vs. fast-off across the paper's scenario
// taxonomy, while events_executed must strictly drop — the same
// discipline the QueueKind A/B suite applies to the event queue
// (DESIGN.md §11 carries the determinism argument).

#include <gtest/gtest.h>

#include <numeric>

#include "fabric/events.hpp"
#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig base_config(std::uint64_t seed) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.seed = seed;
  return config;
}

/// Run `config` with the fast path on and off and require bit-identical
/// behaviour. events_executed is the one field allowed — required — to
/// differ: the fast path must execute strictly fewer events.
void expect_fast_path_equivalent(SimConfig config) {
  config.fabric_fast_path = true;
  const SimResult fast = run_sim(config);
  config.fabric_fast_path = false;
  const SimResult slow = run_sim(config);

  EXPECT_EQ(fast.total_throughput_gbps, slow.total_throughput_gbps);
  EXPECT_EQ(fast.hotspot_rcv_gbps, slow.hotspot_rcv_gbps);
  EXPECT_EQ(fast.non_hotspot_rcv_gbps, slow.non_hotspot_rcv_gbps);
  EXPECT_EQ(fast.all_rcv_gbps, slow.all_rcv_gbps);
  EXPECT_EQ(fast.jain_non_hotspot, slow.jain_non_hotspot);
  EXPECT_EQ(fast.median_latency_us, slow.median_latency_us);
  EXPECT_EQ(fast.p99_latency_us, slow.p99_latency_us);
  EXPECT_EQ(fast.fecn_marked, slow.fecn_marked);
  EXPECT_EQ(fast.cnps_sent, slow.cnps_sent);
  EXPECT_EQ(fast.becn_received, slow.becn_received);
  EXPECT_EQ(fast.delivered_bytes, slow.delivered_bytes);
  EXPECT_EQ(fast.delivered_packets, slow.delivered_packets);
  EXPECT_GT(fast.delivered_bytes, 0);  // the scenario actually ran

  EXPECT_LT(fast.events_executed, slow.events_executed);
  // The savings come from exactly the kinds the fast path touches:
  // packet arrivals and sink drains are real work and never elided.
  EXPECT_EQ(fast.events_by_kind[fabric::kEvPacketArrive],
            slow.events_by_kind[fabric::kEvPacketArrive]);
  EXPECT_EQ(fast.events_by_kind[fabric::kEvSinkFree],
            slow.events_by_kind[fabric::kEvSinkFree]);
  EXPECT_LE(fast.events_by_kind[fabric::kEvLinkFree],
            slow.events_by_kind[fabric::kEvLinkFree]);
  EXPECT_LE(fast.events_by_kind[fabric::kEvCreditUpdate],
            slow.events_by_kind[fabric::kEvCreditUpdate]);

  // The per-kind breakdown accounts for every executed event, both ways.
  const auto sum = [](const SimResult& r) {
    return std::accumulate(r.events_by_kind.begin(), r.events_by_kind.end(),
                           std::uint64_t{0});
  };
  EXPECT_EQ(sum(fast), fast.events_executed);
  EXPECT_EQ(sum(slow), slow.events_executed);
}

TEST(FastPathEquivalence, Table2SilentForest) {
  // Table II: silent congestion trees (no background traffic), CC on.
  // Victims answer with CNPs only — the HCA-side wakeup elision's case.
  SimConfig config = base_config(42);
  config.scenario.fraction_b = 0.0;
  config.scenario.n_hotspots = 2;
  expect_fast_path_equivalent(config);
}

TEST(FastPathEquivalence, Table2SilentForestCcOff) {
  SimConfig config = base_config(42);
  config.scenario.fraction_b = 0.0;
  config.scenario.n_hotspots = 2;
  config.cc.enabled = false;
  expect_fast_path_equivalent(config);
}

TEST(FastPathEquivalence, WindyForestHalfP) {
  // Figures 5-8 regime: all background nodes windy with p = 0.5. Busy
  // outputs keep queued work, so eager and elided wakeups interleave.
  SimConfig config = base_config(7);
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 2;
  expect_fast_path_equivalent(config);
}

TEST(FastPathEquivalence, MovingHotspots) {
  // Figures 9-10 regime: relocating congestion trees nudge idle HCAs,
  // exercising deferred-wakeup materialization from external events.
  SimConfig config = base_config(11);
  config.scenario.fraction_b = 0.5;
  config.scenario.p = 0.4;
  config.scenario.n_hotspots = 2;
  config.scenario.hotspot_lifetime = 200 * core::kMicrosecond;
  expect_fast_path_equivalent(config);
}

TEST(FastPathEquivalence, OrthogonalToQueueKind) {
  // The two A/B axes compose: fast path on the reference heap must match
  // slow path on the calendar queue bit for bit.
  SimConfig config = base_config(42);
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 2;
  config.scheduler_queue = core::QueueKind::kHeap;
  expect_fast_path_equivalent(config);
}

}  // namespace
}  // namespace ibsim::sim
