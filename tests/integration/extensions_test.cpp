// Integration tests for the extension features: CC on 2D meshes (the
// paper's open question), per-link rate scaling, and the linear CCT
// fill option.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig mesh_config(bool cc_on) {
  SimConfig config;
  config.topology = TopologyKind::Mesh2D;
  config.mesh_rows = 4;
  config.mesh_cols = 4;
  config.mesh_nodes_per_switch = 2;  // 32 nodes
  config.sim_time = 3 * core::kMillisecond;
  config.warmup = core::kMillisecond;
  config.cc.enabled = cc_on;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.6;
  config.scenario.n_hotspots = 2;
  return config;
}

TEST(MeshExtension, TrafficFlowsOnMesh) {
  SimConfig config = mesh_config(false);
  config.scenario.fraction_c_of_rest = 0.0;
  config.scenario.n_hotspots = 0;
  const SimResult r = run_sim(config);
  EXPECT_GT(r.all_rcv_gbps, 1.0);
  EXPECT_EQ(r.fecn_marked, 0u);
}

TEST(MeshExtension, HotspotsCongestTheMesh) {
  const SimResult r = run_sim(mesh_config(false));
  EXPECT_NEAR(r.hotspot_rcv_gbps, 13.6, 0.2);
  // Victims lose most of their no-congestion throughput (~5 Gb/s on this
  // lightly-subscribed mesh) to HOL blocking.
  EXPECT_LT(r.non_hotspot_rcv_gbps, 2.0);
}

TEST(MeshExtension, CcHelpsOnTheMeshToo) {
  const SimResult off = run_sim(mesh_config(false));
  const SimResult on = run_sim(mesh_config(true));
  // The open question of the paper's conclusion, answered for the mesh:
  // the Table-I-style parameter set still rescues victims...
  EXPECT_GT(on.non_hotspot_rcv_gbps, 2.0 * off.non_hotspot_rcv_gbps);
  EXPECT_GT(on.total_throughput_gbps, off.total_throughput_gbps);
  // ...though the loop is active throughout.
  EXPECT_GT(on.fecn_marked, 0u);
}

TEST(MeshExtension, DeterministicOnMesh) {
  const SimResult a = run_sim(mesh_config(true));
  const SimResult b = run_sim(mesh_config(true));
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(LinkScaling, SlowLinkThrottlesItsTraffic) {
  // A 4x-slowed HCA downlink bounds that node's receive rate.
  SimConfig config;
  config.topology = TopologyKind::SingleSwitch;
  config.single_switch_nodes = 4;
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.cc = ib::CcParams::disabled();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.0;  // all uniform
  config.scenario.n_hotspots = 0;

  Simulation sim(config);
  // Slow the switch's port to node 0 down to 4 Gb/s.
  sim.fabric().set_link_rate(sim.fabric().switch_at(0).device_id(), 0, 4.0);
  (void)sim.run();
  EXPECT_LT(sim.metrics().node_gbps(0, sim.sched().now()), 4.1);
  EXPECT_GT(sim.metrics().node_gbps(1, sim.sched().now()), 4.1);
}

TEST(LinkScaling, ScaledHcaInjectionSlowsItsSends) {
  SimConfig config;
  config.topology = TopologyKind::SingleSwitch;
  config.single_switch_nodes = 3;
  config.sim_time = core::kMillisecond;
  config.warmup = 0;
  config.cc = ib::CcParams::disabled();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.0;
  config.scenario.n_hotspots = 0;

  Simulation sim(config);
  sim.fabric().set_link_rate(sim.fabric().hca(0).device_id(), 0, 2.0);
  (void)sim.run();
  EXPECT_LT(core::rate_gbps(sim.fabric().hca(0).injected_bytes(), config.sim_time), 2.1);
}

TEST(CctFill, LinearOptionChangesThrottleShape) {
  SimConfig geometric = mesh_config(true);
  SimConfig linear = mesh_config(true);
  linear.cc.cct_fill = ib::CctFill::Linear;
  const SimResult g = run_sim(geometric);
  const SimResult l = run_sim(linear);
  // Both fills resolve the congestion; they differ measurably (the
  // linear table's first step halves a flow's rate).
  EXPECT_GT(g.non_hotspot_rcv_gbps, 0.5);
  EXPECT_GT(l.non_hotspot_rcv_gbps, 0.5);
  EXPECT_NE(g.delivered_bytes, l.delivered_bytes);
}

}  // namespace
}  // namespace ibsim::sim
