// Scale-path invariants for the SoA/arena fabric (DESIGN.md §13).
//
// The layout refactor must be observationally invisible at the
// ~2k-endpoint scale the CI smoke job exercises: snapshot-cache sharing,
// sweep-level parallelism and scheduler reuse may not perturb a single
// bit of any SimResult. These run the scale_2k fat-tree with short
// windows — large enough to light up every arbitration mask and arena
// regrowth path, short enough for a test suite.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../fabric/fabric_fixture.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "topo/builders.hpp"

namespace ibsim::sim {
namespace {

SimConfig scale2k_config() {
  SimConfig config;
  config.topology = TopologyKind::FatTree3;
  config.fat_tree3 = topo::FatTree3Params::scale_2k();
  config.sim_time = 150 * core::kMicrosecond;
  config.warmup = 50 * core::kMicrosecond;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 2;
  return config;
}

void expect_identical(const SimResult& a, const SimResult& b, const std::string& what) {
  EXPECT_EQ(a.hotspot_rcv_gbps, b.hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.non_hotspot_rcv_gbps, b.non_hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.all_rcv_gbps, b.all_rcv_gbps) << what;
  EXPECT_EQ(a.total_throughput_gbps, b.total_throughput_gbps) << what;
  EXPECT_EQ(a.jain_non_hotspot, b.jain_non_hotspot) << what;
  EXPECT_EQ(a.median_latency_us, b.median_latency_us) << what;
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us) << what;
  EXPECT_EQ(a.fecn_marked, b.fecn_marked) << what;
  EXPECT_EQ(a.cnps_sent, b.cnps_sent) << what;
  EXPECT_EQ(a.becn_received, b.becn_received) << what;
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << what;
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
}

TEST(ScaleInvariants, SnapshotCacheOnOffBitIdenticalAt2k) {
  SnapshotCache::instance().clear();
  SimConfig cached = scale2k_config();
  cached.snapshot_cache = true;
  SimConfig fresh = scale2k_config();
  fresh.snapshot_cache = false;
  const SimResult warm = run_sim(cached);
  const SimResult cold = run_sim(fresh);
  const SimResult warm2 = run_sim(cached);  // second run really hits the cache
  expect_identical(warm, cold, "2k scale, cache on vs off");
  expect_identical(warm, warm2, "2k scale, cold vs warm cache");
}

TEST(ScaleInvariants, RunParallelThreadCountsBitIdenticalAt2k) {
  SnapshotCache::instance().clear();
  std::vector<SimConfig> configs;
  configs.push_back(scale2k_config());
  configs.push_back(scale2k_config());
  configs.back().cc = ib::CcParams::disabled();
  configs.back().seed = 7;
  configs.push_back(scale2k_config());
  configs.back().seed = 42;
  configs.back().sim_time = 100 * core::kMicrosecond;

  const std::vector<SimResult> one = run_parallel(configs, 1);
  const std::vector<SimResult> two = run_parallel(configs, 2);
  const std::vector<SimResult> five = run_parallel(configs, 5);
  ASSERT_EQ(one.size(), configs.size());
  ASSERT_EQ(two.size(), configs.size());
  ASSERT_EQ(five.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::string what = "2k scale, config " + std::to_string(i);
    expect_identical(one[i], two[i], what + " (1 vs 2 threads)");
    expect_identical(one[i], five[i], what + " (1 vs 5 threads)");
  }
}

}  // namespace
}  // namespace ibsim::sim

namespace ibsim::fabric::testing {
namespace {

/// Drive one full many-to-one + cross-traffic run on the given scheduler
/// and return every delivery in order. The run drains completely, so the
/// arena must end with zero live packets.
std::vector<Delivery> replay_run(core::Scheduler& sched) {
  const topo::Topology topo = topo::fat_tree3({2, 2, 2, 2, 4});  // 16 nodes
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const FabricParams fparams;
  cc::CcManager ccm(ib::CcParams::paper_table1(), 128, fparams.hca_inject_gbps);
  Fabric fabric(topo, routing, fparams, ccm, sched);
  RecordingObserver observer;
  for (ib::NodeId n = 0; n < topo.node_count(); ++n) {
    fabric.hca(n).attach_observer(&observer);
  }
  std::vector<std::unique_ptr<ScriptedSource>> sources;
  for (ib::NodeId n = 1; n < topo.node_count(); ++n) {
    auto src = std::make_unique<ScriptedSource>(n, &fabric.arena());
    // Everyone hammers node 0 (the hotspot), plus a cross-flow to the
    // neighbouring node so victim traffic shares the congested leaves.
    src->add_burst(0, ib::kMtuBytes, 60);
    src->add_burst((n % (topo.node_count() - 1)) + 1, ib::kMtuBytes, 20);
    fabric.hca(n).attach_source(src.get());
    sources.push_back(std::move(src));
  }
  fabric.start(sched);
  sched.run();
  EXPECT_EQ(fabric.arena().live(), 0) << "drained run left live packets";
  return observer.deliveries;
}

TEST(ScaleInvariants, SchedulerClearReplaysBitIdentical) {
  // Scheduler::clear between runs rewinds time and the insertion
  // sequence; tie-breaking is (at, seq), so a replay on a reused
  // scheduler must reproduce the exact delivery stream of a replay on a
  // pristine one — even though the calendar wheel keeps its grown bucket
  // capacities across clear().
  core::Scheduler reused;
  const std::vector<Delivery> first = replay_run(reused);
  reused.clear();
  const std::vector<Delivery> second = replay_run(reused);
  core::Scheduler pristine;
  const std::vector<Delivery> control = replay_run(pristine);

  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), control.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].node, second[i].node) << i;
    EXPECT_EQ(first[i].src, second[i].src) << i;
    EXPECT_EQ(first[i].bytes, second[i].bytes) << i;
    EXPECT_EQ(first[i].fecn, second[i].fecn) << i;
    EXPECT_EQ(first[i].injected_at, second[i].injected_at) << i;
    EXPECT_EQ(first[i].at, second[i].at) << i;
    EXPECT_EQ(first[i].at, control[i].at) << i;
    EXPECT_EQ(first[i].node, control[i].node) << i;
    EXPECT_EQ(first[i].src, control[i].src) << i;
  }
}

}  // namespace
}  // namespace ibsim::fabric::testing
