// End-to-end CC behaviour on the three-tier fat-tree.

#include <gtest/gtest.h>

#include "sim/config_file.hpp"
#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig ft3_config(bool cc_on) {
  SimConfig config;
  config.topology = TopologyKind::FatTree3;
  config.fat_tree3.pods = 3;
  config.fat_tree3.leaves_per_pod = 2;
  config.fat_tree3.aggs_per_pod = 2;
  config.fat_tree3.cores = 3;
  config.fat_tree3.nodes_per_leaf = 4;  // 24 nodes
  config.sim_time = 3 * core::kMillisecond;
  config.warmup = core::kMillisecond;
  config.cc.enabled = cc_on;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.6;
  config.scenario.n_hotspots = 2;
  return config;
}

TEST(FatTree3Sim, UniformTrafficFlows) {
  SimConfig config = ft3_config(false);
  config.scenario.fraction_c_of_rest = 0.0;
  config.scenario.n_hotspots = 0;
  const SimResult r = run_sim(config);
  EXPECT_GT(r.all_rcv_gbps, 5.0);
}

TEST(FatTree3Sim, CcResolvesHotspotsAcrossThreeTiers) {
  const SimResult off = run_sim(ft3_config(false));
  const SimResult on = run_sim(ft3_config(true));
  EXPECT_NEAR(off.hotspot_rcv_gbps, 13.6, 0.2);
  EXPECT_GT(on.non_hotspot_rcv_gbps, 1.5 * off.non_hotspot_rcv_gbps);
  EXPECT_GT(on.total_throughput_gbps, off.total_throughput_gbps);
}

TEST(FatTree3Sim, DeterministicReplay) {
  const SimResult a = run_sim(ft3_config(true));
  const SimResult b = run_sim(ft3_config(true));
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(FatTree3Sim, ConfigFileSelectsIt) {
  SimConfig config;
  ASSERT_TRUE(apply_config_text(R"(
topology = fat-tree3
ft3_pods = 2
ft3_leaves_per_pod = 2
ft3_aggs_per_pod = 2
ft3_cores = 2
ft3_nodes_per_leaf = 3
)",
                                &config)
                  .empty());
  EXPECT_EQ(config.topology, TopologyKind::FatTree3);
  EXPECT_EQ(config.node_count(), 12);
}

}  // namespace
}  // namespace ibsim::sim
