// Replay determinism: identical configuration => bit-identical results.

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig busy_config(std::uint64_t seed) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.seed = seed;
  config.scenario.fraction_b = 0.5;
  config.scenario.p = 0.4;
  config.scenario.n_hotspots = 2;
  return config;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.total_throughput_gbps, b.total_throughput_gbps);
  EXPECT_EQ(a.hotspot_rcv_gbps, b.hotspot_rcv_gbps);
  EXPECT_EQ(a.non_hotspot_rcv_gbps, b.non_hotspot_rcv_gbps);
  EXPECT_EQ(a.fecn_marked, b.fecn_marked);
  EXPECT_EQ(a.becn_received, b.becn_received);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Determinism, SameSeedBitIdentical) {
  const SimResult a = run_sim(busy_config(42));
  const SimResult b = run_sim(busy_config(42));
  expect_identical(a, b);
}

TEST(Determinism, SameSeedWithCcBitIdentical) {
  SimConfig config = busy_config(7);
  config.cc.ccti_increase = 2;
  const SimResult a = run_sim(config);
  const SimResult b = run_sim(config);
  expect_identical(a, b);
}

TEST(Determinism, SameSeedWithMovingHotspotsBitIdentical) {
  SimConfig config = busy_config(11);
  config.scenario.hotspot_lifetime = 200 * core::kMicrosecond;
  const SimResult a = run_sim(config);
  const SimResult b = run_sim(config);
  expect_identical(a, b);
}

TEST(Determinism, TelemetryIsObservationOnly) {
  // Tracing and counters must never change simulated behaviour: a fully
  // instrumented run (trace + detailed counters; the CSV sampler is the
  // one exception, since it schedules its own events) produces the same
  // SimResult as a bare run, event count included.
  const SimResult off = run_sim(busy_config(42));

  SimConfig config = busy_config(42);
  config.telemetry.counters = true;
  config.telemetry.detailed = true;
  config.telemetry.trace_path = "determinism_telemetry.trace.json";
  const SimResult on = run_sim(config);
  std::remove("determinism_telemetry.trace.json");

  expect_identical(off, on);
  EXPECT_FALSE(on.counters.empty());
  EXPECT_TRUE(off.counters.empty());
}

TEST(Determinism, DifferentSeedsDiffer) {
  const SimResult a = run_sim(busy_config(1));
  const SimResult b = run_sim(busy_config(2));
  // Role placement and destinations differ; byte counts almost surely do.
  EXPECT_NE(a.delivered_bytes, b.delivered_bytes);
}

TEST(Determinism, ResultsIndependentOfOtherSimulations) {
  // Running another simulation in between (or concurrently elsewhere)
  // must not perturb a seeded run — no hidden global state.
  const SimResult a = run_sim(busy_config(99));
  (void)run_sim(busy_config(123));
  const SimResult b = run_sim(busy_config(99));
  expect_identical(a, b);
}

}  // namespace
}  // namespace ibsim::sim
