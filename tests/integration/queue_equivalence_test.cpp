// A/B equivalence of the two pending-event structures: the two-tier
// calendar queue (default) and the reference 4-ary heap must produce
// bit-identical simulations — same metrics, same event count — on every
// scenario class the paper exercises. This is the determinism contract
// the calendar queue's design argument (DESIGN.md) is checked against.

#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig base_config(std::uint64_t seed) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 200 * core::kMicrosecond;
  config.seed = seed;
  return config;
}

/// Run `config` under both queue kinds and require bit-identical results,
/// down to latency quantiles and the executed-event count.
void expect_queue_equivalent(SimConfig config) {
  config.scheduler_queue = core::QueueKind::kTwoTier;
  const SimResult two_tier = run_sim(config);
  config.scheduler_queue = core::QueueKind::kHeap;
  const SimResult heap = run_sim(config);

  EXPECT_EQ(two_tier.total_throughput_gbps, heap.total_throughput_gbps);
  EXPECT_EQ(two_tier.hotspot_rcv_gbps, heap.hotspot_rcv_gbps);
  EXPECT_EQ(two_tier.non_hotspot_rcv_gbps, heap.non_hotspot_rcv_gbps);
  EXPECT_EQ(two_tier.all_rcv_gbps, heap.all_rcv_gbps);
  EXPECT_EQ(two_tier.jain_non_hotspot, heap.jain_non_hotspot);
  EXPECT_EQ(two_tier.median_latency_us, heap.median_latency_us);
  EXPECT_EQ(two_tier.p99_latency_us, heap.p99_latency_us);
  EXPECT_EQ(two_tier.fecn_marked, heap.fecn_marked);
  EXPECT_EQ(two_tier.cnps_sent, heap.cnps_sent);
  EXPECT_EQ(two_tier.becn_received, heap.becn_received);
  EXPECT_EQ(two_tier.delivered_bytes, heap.delivered_bytes);
  EXPECT_EQ(two_tier.events_executed, heap.events_executed);
  EXPECT_GT(two_tier.delivered_bytes, 0u);  // scenario actually ran
}

TEST(QueueEquivalence, Table2SilentForest) {
  // Table II: silent congestion trees (no background traffic), CC on.
  SimConfig config = base_config(42);
  config.scenario.fraction_b = 0.0;
  config.scenario.n_hotspots = 2;
  expect_queue_equivalent(config);
}

TEST(QueueEquivalence, Table2SilentForestCcOff) {
  SimConfig config = base_config(42);
  config.scenario.fraction_b = 0.0;
  config.scenario.n_hotspots = 2;
  config.cc.enabled = false;
  expect_queue_equivalent(config);
}

TEST(QueueEquivalence, WindyForestHalfP) {
  // Figures 5-8 regime: all background nodes windy with p = 0.5.
  SimConfig config = base_config(7);
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 2;
  expect_queue_equivalent(config);
}

TEST(QueueEquivalence, MovingHotspots) {
  // Figures 9-10 regime: congestion trees relocate every 200 µs, which
  // exercises the far-future tier (hotspot moves and CCTI timers live
  // beyond the calendar horizon) and its migration into the wheel.
  SimConfig config = base_config(11);
  config.scenario.fraction_b = 0.5;
  config.scenario.p = 0.4;
  config.scenario.n_hotspots = 2;
  config.scenario.hotspot_lifetime = 200 * core::kMicrosecond;
  expect_queue_equivalent(config);
}

}  // namespace
}  // namespace ibsim::sim
