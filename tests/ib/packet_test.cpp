#include "ib/packet.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "core/rng.hpp"

namespace ibsim::ib {
namespace {

TEST(PacketArena, AllocatesFreshPackets) {
  PacketArena arena;
  arena.reserve(16);
  const PacketHandle a = arena.allocate();
  const PacketHandle b = arena.allocate();
  ASSERT_NE(a, kNullPacket);
  ASSERT_NE(b, kNullPacket);
  EXPECT_NE(a, b);
  EXPECT_NE(arena.get(a).id, arena.get(b).id);
  EXPECT_EQ(arena.live(), 2);
}

TEST(PacketArena, RecyclesReleasedHandles) {
  PacketArena arena;
  arena.reserve(4);
  const PacketHandle a = arena.allocate();
  arena.get(a).bytes = 2048;
  arena.get(a).fecn = true;
  arena.release(a);
  const PacketHandle b = arena.allocate();
  EXPECT_EQ(a, b);  // LIFO freelist reuses the slot
  EXPECT_EQ(arena.get(b).bytes, 0);
  EXPECT_FALSE(arena.get(b).fecn);  // fully reset
  EXPECT_EQ(arena.get(b).dst, kInvalidNode);
}

TEST(PacketArena, GrowsBeyondInitialReserve) {
  PacketArena arena;
  arena.reserve(4);
  std::vector<PacketHandle> pkts;
  for (int i = 0; i < 50; ++i) pkts.push_back(arena.allocate());
  EXPECT_EQ(arena.live(), 50);
  EXPECT_GE(arena.capacity(), 50u);
  for (const PacketHandle h : pkts) arena.release(h);
  EXPECT_EQ(arena.live(), 0);
}

TEST(PacketArena, HandlesStayValidAcrossGrowth) {
  // Growth reallocates the slot storage but handles are indices: data
  // written before an exhaustion-triggered regrowth must read back
  // unchanged through the same handles afterwards.
  PacketArena arena;
  arena.reserve(4);
  std::vector<PacketHandle> pkts;
  for (int i = 0; i < 4; ++i) {
    const PacketHandle h = arena.allocate();
    arena.get(h).bytes = 100 + i;
    arena.get(h).msg_seq = static_cast<std::uint32_t>(i);
    pkts.push_back(h);
  }
  const std::uint64_t growths_before = arena.growths();
  for (int i = 0; i < 100; ++i) pkts.push_back(arena.allocate());  // forces regrowth
  EXPECT_GT(arena.growths(), growths_before);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(arena.get(pkts[static_cast<std::size_t>(i)]).bytes, 100 + i);
    EXPECT_EQ(arena.get(pkts[static_cast<std::size_t>(i)]).msg_seq,
              static_cast<std::uint32_t>(i));
  }
  for (const PacketHandle h : pkts) arena.release(h);
  EXPECT_EQ(arena.live(), 0);
}

TEST(PacketArena, IdsAreUniqueAcrossRecycling) {
  PacketArena arena;
  arena.reserve(2);
  const PacketHandle a = arena.allocate();
  const std::uint64_t id0 = arena.get(a).id;
  arena.release(a);
  const PacketHandle b = arena.allocate();
  EXPECT_NE(arena.get(b).id, id0);
}

TEST(PacketArenaDeath, DoubleAccountingCaught) {
  PacketArena arena;
  arena.reserve(2);
  const PacketHandle a = arena.allocate();
  arena.release(a);
  EXPECT_DEATH(arena.release(a), "more packets");
}

TEST(PacketArenaDeath, ForeignHandleCaught) {
  PacketArena arena;
  arena.reserve(2);
  (void)arena.allocate();
  EXPECT_DEATH(arena.release(kNullPacket), "foreign");
}

TEST(PacketQueue, FifoOrder) {
  PacketArena arena;
  arena.reserve(8);
  PacketQueue q;
  const PacketHandle a = arena.allocate();
  const PacketHandle b = arena.allocate();
  const PacketHandle c = arena.allocate();
  q.push_back(arena, a);
  q.push_back(arena, b);
  q.push_back(arena, c);
  EXPECT_EQ(q.pop_front(arena), a);
  EXPECT_EQ(q.pop_front(arena), b);
  EXPECT_EQ(q.pop_front(arena), c);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, TracksCountAndBytes) {
  PacketArena arena;
  arena.reserve(8);
  PacketQueue q;
  const PacketHandle a = arena.allocate();
  arena.get(a).bytes = 100;
  const PacketHandle b = arena.allocate();
  arena.get(b).bytes = 200;
  q.push_back(arena, a);
  q.push_back(arena, b);
  EXPECT_EQ(q.count(), 2);
  EXPECT_EQ(q.bytes(), 300);
  (void)q.pop_front(arena);
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.bytes(), 200);
}

TEST(PacketQueue, PushFrontGoesFirst) {
  PacketArena arena;
  arena.reserve(8);
  PacketQueue q;
  const PacketHandle a = arena.allocate();
  const PacketHandle b = arena.allocate();
  q.push_back(arena, a);
  q.push_front(arena, b);
  EXPECT_EQ(q.front(), b);
  EXPECT_EQ(q.pop_front(arena), b);
  EXPECT_EQ(q.pop_front(arena), a);
}

TEST(PacketQueue, PushFrontIntoEmpty) {
  PacketArena arena;
  arena.reserve(2);
  PacketQueue q;
  const PacketHandle a = arena.allocate();
  q.push_front(arena, a);
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.pop_front(arena), a);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, InterleavedOperations) {
  PacketArena arena;
  arena.reserve(16);
  PacketQueue q;
  std::vector<PacketHandle> order;
  for (int i = 0; i < 5; ++i) {
    const PacketHandle h = arena.allocate();
    order.push_back(h);
    q.push_back(arena, h);
  }
  EXPECT_EQ(q.pop_front(arena), order[0]);
  const PacketHandle extra = arena.allocate();
  q.push_back(arena, extra);
  EXPECT_EQ(q.pop_front(arena), order[1]);
  EXPECT_EQ(q.pop_front(arena), order[2]);
  EXPECT_EQ(q.pop_front(arena), order[3]);
  EXPECT_EQ(q.pop_front(arena), order[4]);
  EXPECT_EQ(q.pop_front(arena), extra);
}

TEST(PacketArena, ReusedSlotsCycleWithoutGrowth) {
  // Steady-state churn must be served entirely from the freelist: with a
  // reserve of 4 and never more than 4 live, the same 4 slots cycle
  // forever, the arena never grows again, and every reused packet comes
  // back fully reset.
  PacketArena arena;
  arena.reserve(4);
  std::vector<PacketHandle> first;
  for (int i = 0; i < 4; ++i) first.push_back(arena.allocate());
  std::set<PacketHandle> slots(first.begin(), first.end());
  for (const PacketHandle h : first) {
    arena.get(h).bytes = 2048;
    arena.get(h).msg_seq = 7;
    arena.get(h).becn = true;
    arena.release(h);
  }
  const std::uint64_t growths = arena.growths();
  for (int round = 0; round < 100; ++round) {
    const PacketHandle h = arena.allocate();
    EXPECT_EQ(slots.count(h), 1u) << "allocation left the original slots";
    EXPECT_EQ(arena.get(h).bytes, 0);
    EXPECT_EQ(arena.get(h).msg_seq, 0u);
    EXPECT_FALSE(arena.get(h).becn);
    EXPECT_EQ(arena.get(h).next, kNullPacket);
    arena.release(h);
  }
  EXPECT_EQ(arena.growths(), growths) << "steady-state churn grew the arena";
  EXPECT_EQ(arena.live(), 0);
}

TEST(PacketQueue, ReleasedPacketNeverStaysLinked) {
  // pop_front must sever the link before handing the handle out;
  // otherwise a release-then-reallocate could double-link the freelist
  // with a packet still referenced by a queue.
  PacketArena arena;
  arena.reserve(8);
  PacketQueue q;
  const PacketHandle a = arena.allocate();
  const PacketHandle b = arena.allocate();
  q.push_back(arena, a);
  q.push_back(arena, b);  // a.next == b inside the queue
  const PacketHandle popped = q.pop_front(arena);
  ASSERT_EQ(popped, a);
  EXPECT_EQ(arena.get(popped).next, kNullPacket);
  arena.release(popped);
  const PacketHandle c = arena.allocate();
  EXPECT_EQ(c, a);  // LIFO reuse
  EXPECT_EQ(arena.get(c).next, kNullPacket);
  // b is still queued and untouched by the recycling of a.
  EXPECT_EQ(q.front(), b);
  EXPECT_EQ(q.count(), 1);
}

TEST(PacketQueue, InterleavedFrontBackAccounting) {
  // The byte/count totals and FIFO-with-requeue order under the exact
  // pattern the fabric produces: push_back on arrival, push_front when a
  // drained packet is requeued after a blocked grant.
  PacketArena arena;
  arena.reserve(32);
  PacketQueue q;
  std::deque<PacketHandle> model;
  std::int64_t bytes = 0;
  std::uint64_t state = 123;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t roll = core::splitmix64(state) % 4;
    if (roll == 0 && !model.empty()) {
      const PacketHandle h = q.pop_front(arena);
      ASSERT_EQ(h, model.front());
      model.pop_front();
      bytes -= arena.get(h).bytes;
      arena.release(h);
    } else if (roll == 1 && !model.empty()) {
      // Requeue the head (blocked grant path).
      const PacketHandle h = q.pop_front(arena);
      q.push_front(arena, h);
    } else {
      const PacketHandle h = arena.allocate();
      arena.get(h).bytes = static_cast<std::int32_t>(core::splitmix64(state) % 2048) + 1;
      if (roll == 2) {
        q.push_front(arena, h);
        model.push_front(h);
      } else {
        q.push_back(arena, h);
        model.push_back(h);
      }
      bytes += arena.get(h).bytes;
    }
    ASSERT_EQ(q.count(), static_cast<std::int32_t>(model.size()));
    ASSERT_EQ(q.bytes(), bytes);
    ASSERT_EQ(q.empty(), model.empty());
  }
  while (!model.empty()) {
    const PacketHandle h = q.pop_front(arena);
    ASSERT_EQ(h, model.front());
    model.pop_front();
    arena.release(h);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_EQ(arena.live(), 0);
}

TEST(PacketArena, ResetCoversEveryHeaderField) {
  // The fast path recycles packets harder (fewer events between release
  // and reallocation), so a stale CC mark or stream tag on a reused slot
  // would silently corrupt marking statistics. Exercise every field
  // reset() promises to clear.
  PacketArena arena;
  arena.reserve(2);
  const PacketHandle h = arena.allocate();
  Packet& p = arena.get(h);
  p.src = 3;
  p.dst = 5;
  p.bytes = 2048;
  p.vl = 1;
  p.sl = 2;
  p.fecn = true;
  p.becn = true;
  p.is_cnp = true;
  p.flow_dst = 7;
  p.hotspot_stream = true;
  p.app = true;
  p.msg_seq = 42;
  p.injected_at = 123456;
  arena.release(h);
  const PacketHandle h2 = arena.allocate();
  ASSERT_EQ(h2, h);  // LIFO freelist: same slot comes straight back
  const Packet& q = arena.get(h2);
  EXPECT_EQ(q.src, kInvalidNode);
  EXPECT_EQ(q.dst, kInvalidNode);
  EXPECT_EQ(q.bytes, 0);
  EXPECT_EQ(q.vl, kDataVl);
  EXPECT_EQ(q.sl, 0);
  EXPECT_FALSE(q.fecn);
  EXPECT_FALSE(q.becn);
  EXPECT_FALSE(q.is_cnp);
  EXPECT_EQ(q.flow_dst, kInvalidNode);
  EXPECT_FALSE(q.hotspot_stream);
  EXPECT_FALSE(q.app);
  EXPECT_EQ(q.msg_seq, 0u);
  EXPECT_EQ(q.injected_at, 0);
}

TEST(PacketArena, ChurnKeepsIdsUniqueAndAccountingExact) {
  // Randomized allocate/release churn across growth boundaries: live()
  // must track the model exactly, ids of live packets must never
  // collide, and total_allocated() must grow by one per allocation.
  PacketArena arena;
  arena.reserve(8);
  std::vector<PacketHandle> live;
  std::set<std::uint64_t> live_ids;
  std::uint64_t state = 2026;
  std::uint64_t allocations = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool grow = live.empty() || core::splitmix64(state) % 3 != 0;
    if (grow) {
      const PacketHandle h = arena.allocate();
      ++allocations;
      ASSERT_TRUE(live_ids.insert(arena.get(h).id).second) << "duplicate live id";
      live.push_back(h);
    } else {
      const std::size_t idx = core::splitmix64(state) % live.size();
      const PacketHandle h = live[idx];
      live_ids.erase(arena.get(h).id);
      live[idx] = live.back();
      live.pop_back();
      arena.release(h);
    }
    ASSERT_EQ(arena.live(), static_cast<std::int64_t>(live.size()));
    ASSERT_EQ(arena.total_allocated(), allocations);
  }
  for (const PacketHandle h : live) arena.release(h);
  EXPECT_EQ(arena.live(), 0);
}

TEST(PacketArena, MemoryBytesTracksCapacity) {
  PacketArena arena;
  arena.reserve(1024);
  EXPECT_EQ(arena.memory_bytes(), arena.capacity() * sizeof(Packet));
}

TEST(PacketQueueDeath, PopEmptyAborts) {
  PacketArena arena;
  PacketQueue q;
  EXPECT_DEATH((void)q.pop_front(arena), "empty");
}

TEST(PacketConstants, PaperFraming) {
  // Section IV: MTU 2048 B, two packets per 4096 B message.
  EXPECT_EQ(kMtuBytes, 2048);
  EXPECT_EQ(kPacketsPerMessage, 2);
  EXPECT_EQ(kMessageBytes, 4096);
}

}  // namespace
}  // namespace ibsim::ib
