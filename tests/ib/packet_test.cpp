#include "ib/packet.hpp"

#include <gtest/gtest.h>

namespace ibsim::ib {
namespace {

TEST(PacketPool, AllocatesFreshPackets) {
  PacketPool pool(16);
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(pool.live(), 2);
}

TEST(PacketPool, RecyclesReleasedPackets) {
  PacketPool pool(4);
  Packet* a = pool.allocate();
  a->bytes = 2048;
  a->fecn = true;
  pool.release(a);
  Packet* b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO freelist reuses the slot
  EXPECT_EQ(b->bytes, 0);
  EXPECT_FALSE(b->fecn);  // fully reset
  EXPECT_EQ(b->dst, kInvalidNode);
}

TEST(PacketPool, GrowsBeyondOneChunk) {
  PacketPool pool(4);
  std::vector<Packet*> pkts;
  for (int i = 0; i < 50; ++i) pkts.push_back(pool.allocate());
  EXPECT_EQ(pool.live(), 50);
  for (Packet* p : pkts) pool.release(p);
  EXPECT_EQ(pool.live(), 0);
}

TEST(PacketPool, IdsAreUniqueAcrossRecycling) {
  PacketPool pool(2);
  Packet* a = pool.allocate();
  const std::uint64_t id0 = a->id;
  pool.release(a);
  Packet* b = pool.allocate();
  EXPECT_NE(b->id, id0);
}

TEST(PacketPoolDeath, DoubleAccountingCaught) {
  PacketPool pool(2);
  Packet* a = pool.allocate();
  pool.release(a);
  EXPECT_DEATH(pool.release(a), "more packets");
}

TEST(PacketQueue, FifoOrder) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  Packet* c = pool.allocate();
  q.push_back(a);
  q.push_back(b);
  q.push_back(c);
  EXPECT_EQ(q.pop_front(), a);
  EXPECT_EQ(q.pop_front(), b);
  EXPECT_EQ(q.pop_front(), c);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, TracksCountAndBytes) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  a->bytes = 100;
  Packet* b = pool.allocate();
  b->bytes = 200;
  q.push_back(a);
  q.push_back(b);
  EXPECT_EQ(q.count(), 2);
  EXPECT_EQ(q.bytes(), 300);
  (void)q.pop_front();
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.bytes(), 200);
}

TEST(PacketQueue, PushFrontGoesFirst) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  q.push_back(a);
  q.push_front(b);
  EXPECT_EQ(q.front(), b);
  EXPECT_EQ(q.pop_front(), b);
  EXPECT_EQ(q.pop_front(), a);
}

TEST(PacketQueue, PushFrontIntoEmpty) {
  PacketPool pool(2);
  PacketQueue q;
  Packet* a = pool.allocate();
  q.push_front(a);
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.pop_front(), a);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, InterleavedOperations) {
  PacketPool pool(16);
  PacketQueue q;
  std::vector<Packet*> order;
  for (int i = 0; i < 5; ++i) {
    Packet* p = pool.allocate();
    order.push_back(p);
    q.push_back(p);
  }
  EXPECT_EQ(q.pop_front(), order[0]);
  Packet* extra = pool.allocate();
  q.push_back(extra);
  EXPECT_EQ(q.pop_front(), order[1]);
  EXPECT_EQ(q.pop_front(), order[2]);
  EXPECT_EQ(q.pop_front(), order[3]);
  EXPECT_EQ(q.pop_front(), order[4]);
  EXPECT_EQ(q.pop_front(), extra);
}

TEST(PacketQueueDeath, PopEmptyAborts) {
  PacketQueue q;
  EXPECT_DEATH((void)q.pop_front(), "empty");
}

TEST(PacketConstants, PaperFraming) {
  // Section IV: MTU 2048 B, two packets per 4096 B message.
  EXPECT_EQ(kMtuBytes, 2048);
  EXPECT_EQ(kPacketsPerMessage, 2);
  EXPECT_EQ(kMessageBytes, 4096);
}

}  // namespace
}  // namespace ibsim::ib
