#include "ib/packet.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "core/rng.hpp"

namespace ibsim::ib {
namespace {

TEST(PacketPool, AllocatesFreshPackets) {
  PacketPool pool(16);
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_NE(a->id, b->id);
  EXPECT_EQ(pool.live(), 2);
}

TEST(PacketPool, RecyclesReleasedPackets) {
  PacketPool pool(4);
  Packet* a = pool.allocate();
  a->bytes = 2048;
  a->fecn = true;
  pool.release(a);
  Packet* b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO freelist reuses the slot
  EXPECT_EQ(b->bytes, 0);
  EXPECT_FALSE(b->fecn);  // fully reset
  EXPECT_EQ(b->dst, kInvalidNode);
}

TEST(PacketPool, GrowsBeyondOneChunk) {
  PacketPool pool(4);
  std::vector<Packet*> pkts;
  for (int i = 0; i < 50; ++i) pkts.push_back(pool.allocate());
  EXPECT_EQ(pool.live(), 50);
  for (Packet* p : pkts) pool.release(p);
  EXPECT_EQ(pool.live(), 0);
}

TEST(PacketPool, IdsAreUniqueAcrossRecycling) {
  PacketPool pool(2);
  Packet* a = pool.allocate();
  const std::uint64_t id0 = a->id;
  pool.release(a);
  Packet* b = pool.allocate();
  EXPECT_NE(b->id, id0);
}

TEST(PacketPoolDeath, DoubleAccountingCaught) {
  PacketPool pool(2);
  Packet* a = pool.allocate();
  pool.release(a);
  EXPECT_DEATH(pool.release(a), "more packets");
}

TEST(PacketQueue, FifoOrder) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  Packet* c = pool.allocate();
  q.push_back(a);
  q.push_back(b);
  q.push_back(c);
  EXPECT_EQ(q.pop_front(), a);
  EXPECT_EQ(q.pop_front(), b);
  EXPECT_EQ(q.pop_front(), c);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, TracksCountAndBytes) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  a->bytes = 100;
  Packet* b = pool.allocate();
  b->bytes = 200;
  q.push_back(a);
  q.push_back(b);
  EXPECT_EQ(q.count(), 2);
  EXPECT_EQ(q.bytes(), 300);
  (void)q.pop_front();
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.bytes(), 200);
}

TEST(PacketQueue, PushFrontGoesFirst) {
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  q.push_back(a);
  q.push_front(b);
  EXPECT_EQ(q.front(), b);
  EXPECT_EQ(q.pop_front(), b);
  EXPECT_EQ(q.pop_front(), a);
}

TEST(PacketQueue, PushFrontIntoEmpty) {
  PacketPool pool(2);
  PacketQueue q;
  Packet* a = pool.allocate();
  q.push_front(a);
  EXPECT_EQ(q.count(), 1);
  EXPECT_EQ(q.pop_front(), a);
  EXPECT_TRUE(q.empty());
}

TEST(PacketQueue, InterleavedOperations) {
  PacketPool pool(16);
  PacketQueue q;
  std::vector<Packet*> order;
  for (int i = 0; i < 5; ++i) {
    Packet* p = pool.allocate();
    order.push_back(p);
    q.push_back(p);
  }
  EXPECT_EQ(q.pop_front(), order[0]);
  Packet* extra = pool.allocate();
  q.push_back(extra);
  EXPECT_EQ(q.pop_front(), order[1]);
  EXPECT_EQ(q.pop_front(), order[2]);
  EXPECT_EQ(q.pop_front(), order[3]);
  EXPECT_EQ(q.pop_front(), order[4]);
  EXPECT_EQ(q.pop_front(), extra);
}

TEST(PacketPool, ReusedSlotsCycleWithoutNewChunks) {
  // Steady-state churn must be served entirely from the freelist: with a
  // chunk of 4 and never more than 4 live, the same 4 slots cycle
  // forever and every reused packet comes back fully reset.
  PacketPool pool(4);
  std::vector<Packet*> first;
  for (int i = 0; i < 4; ++i) first.push_back(pool.allocate());
  std::set<Packet*> slots(first.begin(), first.end());
  for (Packet* p : first) {
    p->bytes = 2048;
    p->msg_seq = 7;
    p->becn = true;
    pool.release(p);
  }
  for (int round = 0; round < 100; ++round) {
    Packet* p = pool.allocate();
    EXPECT_EQ(slots.count(p), 1u) << "allocation left the original chunk";
    EXPECT_EQ(p->bytes, 0);
    EXPECT_EQ(p->msg_seq, 0u);
    EXPECT_FALSE(p->becn);
    EXPECT_EQ(p->pool_next, nullptr);
    pool.release(p);
  }
  EXPECT_EQ(pool.live(), 0);
}

TEST(PacketQueue, ReleasedPacketNeverStaysLinked) {
  // pop_front must sever pool_next before handing the packet out;
  // otherwise a release-then-reallocate could double-link the freelist
  // with a packet still referenced by a queue.
  PacketPool pool(8);
  PacketQueue q;
  Packet* a = pool.allocate();
  Packet* b = pool.allocate();
  q.push_back(a);
  q.push_back(b);  // a->pool_next == b inside the queue
  Packet* popped = q.pop_front();
  ASSERT_EQ(popped, a);
  EXPECT_EQ(popped->pool_next, nullptr);
  pool.release(popped);
  Packet* c = pool.allocate();
  EXPECT_EQ(c, a);  // LIFO reuse
  EXPECT_EQ(c->pool_next, nullptr);
  // b is still queued and untouched by the recycling of a.
  EXPECT_EQ(q.front(), b);
  EXPECT_EQ(q.count(), 1);
}

TEST(PacketQueue, InterleavedFrontBackAccounting) {
  // The byte/count totals and FIFO-with-requeue order under the exact
  // pattern the fabric produces: push_back on arrival, push_front when a
  // drained packet is requeued after a blocked grant.
  PacketPool pool(32);
  PacketQueue q;
  std::deque<Packet*> model;
  std::int64_t bytes = 0;
  std::uint64_t state = 123;
  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t roll = core::splitmix64(state) % 4;
    if (roll == 0 && !model.empty()) {
      Packet* p = q.pop_front();
      ASSERT_EQ(p, model.front());
      model.pop_front();
      bytes -= p->bytes;
      pool.release(p);
    } else if (roll == 1 && !model.empty()) {
      // Requeue the head (blocked grant path).
      Packet* p = q.pop_front();
      q.push_front(p);
    } else {
      Packet* p = pool.allocate();
      p->bytes = static_cast<std::int32_t>(core::splitmix64(state) % 2048) + 1;
      if (roll == 2) {
        q.push_front(p);
        model.push_front(p);
      } else {
        q.push_back(p);
        model.push_back(p);
      }
      bytes += p->bytes;
    }
    ASSERT_EQ(q.count(), static_cast<std::int32_t>(model.size()));
    ASSERT_EQ(q.bytes(), bytes);
    ASSERT_EQ(q.empty(), model.empty());
  }
  while (!model.empty()) {
    Packet* p = q.pop_front();
    ASSERT_EQ(p, model.front());
    model.pop_front();
    pool.release(p);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_EQ(pool.live(), 0);
}

TEST(PacketPool, ResetCoversEveryHeaderField) {
  // The fast path recycles packets harder (fewer events between release
  // and reallocation), so a stale CC mark or stream tag on a reused slot
  // would silently corrupt marking statistics. Exercise every field
  // reset() promises to clear.
  PacketPool pool(2);
  Packet* p = pool.allocate();
  p->src = 3;
  p->dst = 5;
  p->bytes = 2048;
  p->vl = 1;
  p->sl = 2;
  p->fecn = true;
  p->becn = true;
  p->is_cnp = true;
  p->flow_dst = 7;
  p->hotspot_stream = true;
  p->msg_seq = 42;
  p->injected_at = 123456;
  pool.release(p);
  Packet* q = pool.allocate();
  ASSERT_EQ(q, p);  // LIFO freelist: same slot comes straight back
  EXPECT_EQ(q->src, kInvalidNode);
  EXPECT_EQ(q->dst, kInvalidNode);
  EXPECT_EQ(q->bytes, 0);
  EXPECT_EQ(q->vl, kDataVl);
  EXPECT_EQ(q->sl, 0);
  EXPECT_FALSE(q->fecn);
  EXPECT_FALSE(q->becn);
  EXPECT_FALSE(q->is_cnp);
  EXPECT_EQ(q->flow_dst, kInvalidNode);
  EXPECT_FALSE(q->hotspot_stream);
  EXPECT_EQ(q->msg_seq, 0u);
  EXPECT_EQ(q->injected_at, 0);
}

TEST(PacketPool, ChurnKeepsIdsUniqueAndAccountingExact) {
  // Randomized allocate/release churn across chunk-growth boundaries:
  // live() must track the model exactly, ids of live packets must never
  // collide, and total_allocated() must grow by one per allocation.
  PacketPool pool(8);
  std::vector<Packet*> live;
  std::set<std::uint64_t> live_ids;
  std::uint64_t state = 2026;
  std::uint64_t allocations = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool grow = live.empty() || core::splitmix64(state) % 3 != 0;
    if (grow) {
      Packet* p = pool.allocate();
      ++allocations;
      ASSERT_TRUE(live_ids.insert(p->id).second) << "duplicate live id";
      live.push_back(p);
    } else {
      const std::size_t idx = core::splitmix64(state) % live.size();
      Packet* p = live[idx];
      live_ids.erase(p->id);
      live[idx] = live.back();
      live.pop_back();
      pool.release(p);
    }
    ASSERT_EQ(pool.live(), static_cast<std::int64_t>(live.size()));
    ASSERT_EQ(pool.total_allocated(), allocations);
  }
  for (Packet* p : live) pool.release(p);
  EXPECT_EQ(pool.live(), 0);
}

TEST(PacketQueueDeath, PopEmptyAborts) {
  PacketQueue q;
  EXPECT_DEATH((void)q.pop_front(), "empty");
}

TEST(PacketConstants, PaperFraming) {
  // Section IV: MTU 2048 B, two packets per 4096 B message.
  EXPECT_EQ(kMtuBytes, 2048);
  EXPECT_EQ(kPacketsPerMessage, 2);
  EXPECT_EQ(kMessageBytes, 4096);
}

}  // namespace
}  // namespace ibsim::ib
