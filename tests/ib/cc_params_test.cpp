#include "ib/cc_params.hpp"

#include <gtest/gtest.h>

#include "core/time.hpp"

namespace ibsim::ib {
namespace {

TEST(CcParams, PaperTable1Values) {
  const CcParams p = CcParams::paper_table1();
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.ccti_increase, 1);
  EXPECT_EQ(p.ccti_limit, 127);
  EXPECT_EQ(p.ccti_min, 0);
  EXPECT_EQ(p.ccti_timer, 150);
  EXPECT_EQ(p.threshold_weight, 15);
  EXPECT_EQ(p.marking_rate, 0);
  EXPECT_EQ(p.packet_size, 0);
  EXPECT_TRUE(p.validate().empty());
}

TEST(CcParams, DisabledValidates) {
  const CcParams p = CcParams::disabled();
  EXPECT_FALSE(p.enabled);
  EXPECT_TRUE(p.validate().empty());
}

TEST(CcParams, TimerIntervalUsesSpecUnit) {
  CcParams p = CcParams::paper_table1();
  // 150 x 1.024 us = 153.6 us.
  EXPECT_EQ(p.timer_interval(), 153600 * core::kNanosecond);
  p.ccti_timer = 1;
  EXPECT_EQ(p.timer_interval(), 1024 * core::kNanosecond);
}

TEST(CcParams, ThresholdFractionUniformlyDecreasing) {
  CcParams p;
  double prev = 2.0;
  for (std::uint8_t w = 1; w <= 15; ++w) {
    p.threshold_weight = w;
    const double frac = p.threshold_fraction();
    EXPECT_LT(frac, prev) << "weight " << int(w);
    EXPECT_GT(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    prev = frac;
  }
}

TEST(CcParams, ThresholdWeightEndpoints) {
  CcParams p;
  p.threshold_weight = 0;
  EXPECT_GT(p.threshold_fraction(), 1.0);  // unreachable: marking disabled
  p.threshold_weight = 15;
  EXPECT_DOUBLE_EQ(p.threshold_fraction(), 1.0 / 16.0);
  p.threshold_weight = 1;
  EXPECT_DOUBLE_EQ(p.threshold_fraction(), 15.0 / 16.0);
}

TEST(CcParams, MinMarkableBytesIn64ByteUnits) {
  CcParams p;
  p.packet_size = 0;
  EXPECT_EQ(p.min_markable_bytes(), 0);
  p.packet_size = 4;
  EXPECT_EQ(p.min_markable_bytes(), 256);
}

TEST(CcParams, ValidateRejectsBadRanges) {
  CcParams p = CcParams::paper_table1();
  p.threshold_weight = 16;
  EXPECT_FALSE(p.validate().empty());

  p = CcParams::paper_table1();
  p.ccti_min = 200;
  p.ccti_limit = 100;
  EXPECT_FALSE(p.validate().empty());

  p = CcParams::paper_table1();
  p.ccti_increase = 0;
  EXPECT_FALSE(p.validate().empty());

  p = CcParams::paper_table1();
  p.ccti_timer = 0;
  EXPECT_FALSE(p.validate().empty());
}

TEST(CcParams, DisabledSkipsCaChecks) {
  CcParams p = CcParams::disabled();
  p.ccti_increase = 0;
  p.ccti_timer = 0;
  EXPECT_TRUE(p.validate().empty());
}

}  // namespace
}  // namespace ibsim::ib
