#include "ib/cct.hpp"

#include <gtest/gtest.h>

#include "core/time.hpp"
#include "ib/types.hpp"

namespace ibsim::ib {
namespace {

TEST(Cct, EncodeDecodeRoundTrip) {
  for (std::uint32_t shift = 0; shift < 4; ++shift) {
    for (std::uint32_t mult : {0u, 1u, 100u, 16383u}) {
      const std::uint16_t e = CongestionControlTable::encode(mult, shift);
      EXPECT_EQ(CongestionControlTable::decode_factor(e), mult << shift);
    }
  }
}

TEST(Cct, EntryZeroAlwaysZeroDelay) {
  CongestionControlTable cct(8, 13.5);
  cct.set_entry(0, CongestionControlTable::encode(100, 1));
  EXPECT_EQ(cct.entry(0), 0);
  EXPECT_EQ(cct.ird_delay(0, kMtuBytes), 0);
}

TEST(Cct, IrdDelayScalesWithPacketLength) {
  CongestionControlTable cct(8, 13.5);
  cct.set_entry(3, CongestionControlTable::encode(3, 0));
  const core::Time full = cct.ird_delay(3, kMtuBytes);
  const core::Time half = cct.ird_delay(3, kMtuBytes / 2);
  EXPECT_EQ(full, 2 * half);  // "relative to the packet length"
}

TEST(Cct, IrdDelayMatchesFactorTimesPacketTime) {
  CongestionControlTable cct(128, 13.5);
  cct.populate_linear();
  const core::Time pkt_time = core::transmit_time(kMtuBytes, 13.5);
  EXPECT_EQ(cct.ird_delay(1, kMtuBytes), pkt_time);
  EXPECT_EQ(cct.ird_delay(10, kMtuBytes), 10 * pkt_time);
  EXPECT_EQ(cct.ird_delay(127, kMtuBytes), 127 * pkt_time);
}

TEST(Cct, LinearPopulationYieldsHarmonicRates) {
  CongestionControlTable cct(128, 13.5);
  cct.populate_linear();
  EXPECT_DOUBLE_EQ(cct.rate_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(cct.rate_fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(cct.rate_fraction(3), 0.25);
  EXPECT_DOUBLE_EQ(cct.rate_fraction(127), 1.0 / 128.0);
}

TEST(Cct, CctiClampedToTableEnd) {
  CongestionControlTable cct(16, 13.5);
  cct.populate_linear();
  EXPECT_EQ(cct.ird_delay(999, kMtuBytes), cct.ird_delay(15, kMtuBytes));
  EXPECT_DOUBLE_EQ(cct.rate_fraction(999), cct.rate_fraction(15));
}

TEST(Cct, ClampBoundaryIsExactlyTheTableSize) {
  // The interesting off-by-one band around the clamp: size-1 is the last
  // real entry, size is the first clamped index, and both lookups must
  // agree for every packet length.
  CongestionControlTable cct(16, 13.5);
  cct.populate_linear();
  EXPECT_EQ(cct.ird_delay(15, kMtuBytes), 15 * core::transmit_time(kMtuBytes, 13.5));
  for (const std::int32_t bytes : {64, 1024, kMtuBytes}) {
    EXPECT_EQ(cct.ird_delay(16, bytes), cct.ird_delay(15, bytes)) << bytes;
    EXPECT_EQ(cct.ird_delay(17, bytes), cct.ird_delay(15, bytes)) << bytes;
  }
  EXPECT_DOUBLE_EQ(cct.rate_fraction(16), cct.rate_fraction(15));
  EXPECT_DOUBLE_EQ(cct.rate_fraction(17), cct.rate_fraction(15));
}

TEST(Cct, SingleEntryTableNeverDelays) {
  // Degenerate one-entry table: index 0 is spec-pinned to "no delay" and
  // every CCTI clamps onto it.
  CongestionControlTable cct(1, 13.5);
  EXPECT_EQ(cct.ird_delay(0, kMtuBytes), 0);
  EXPECT_EQ(cct.ird_delay(7, kMtuBytes), 0);
  EXPECT_DOUBLE_EQ(cct.rate_fraction(7), 1.0);
}

TEST(Cct, LinearPopulationMonotone) {
  CongestionControlTable cct(128, 13.5);
  cct.populate_linear();
  for (std::size_t i = 1; i < cct.size(); ++i) {
    EXPECT_GE(cct.ird_delay(i, kMtuBytes), cct.ird_delay(i - 1, kMtuBytes))
        << "at index " << i;
  }
}

TEST(Cct, LinearPopulationHandles14BitOverflowViaShift) {
  CongestionControlTable cct(40000, 13.5);
  cct.populate_linear();
  // Past the 14-bit multiplier range entries use the shift bits; the
  // factor stays close to the index (within the rounding of one shift).
  const std::uint32_t factor = CongestionControlTable::decode_factor(cct.entry(20000));
  EXPECT_NEAR(static_cast<double>(factor), 20000.0, 2.0);
}

TEST(Cct, GeometricPopulationMonotoneAndSteeper) {
  CongestionControlTable cct(128, 13.5);
  cct.populate_geometric(1.05);
  double prev = 1.0;
  for (std::size_t i = 1; i < cct.size(); ++i) {
    EXPECT_LE(cct.rate_fraction(i), prev + 1e-12);
    prev = cct.rate_fraction(i);
  }
  // base^i - 1 at i=60: ~17.7x slowdown.
  EXPECT_NEAR(1.0 / cct.rate_fraction(60), 18.7, 1.0);
}

TEST(CctDeath, EncodeRangeChecks) {
  EXPECT_DEATH((void)CongestionControlTable::encode(1u << 14, 0), "14 bits");
  EXPECT_DEATH((void)CongestionControlTable::encode(0, 4), "2 bits");
}

TEST(CctDeath, OutOfRangeIndex) {
  CongestionControlTable cct(4, 13.5);
  EXPECT_DEATH((void)cct.entry(4), "out of range");
  EXPECT_DEATH(cct.set_entry(4, 0), "out of range");
}

TEST(Cct, RefRateStored) {
  CongestionControlTable cct(4, 10.0);
  EXPECT_DOUBLE_EQ(cct.ref_gbps(), 10.0);
  cct.set_entry(1, CongestionControlTable::encode(1, 0));
  EXPECT_EQ(cct.ird_delay(1, 1000), core::transmit_time(1000, 10.0));
}

}  // namespace
}  // namespace ibsim::ib
