#include "core/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace ibsim::core {
namespace {

class NullHandler final : public EventHandler {
 public:
  void on_event(Scheduler&, const Event&) override {}
};

NullHandler g_handler;

Event make_event(Time at, std::uint64_t seq) {
  return Event{at, seq, &g_handler, seq, 0, 0};
}

/// Drain `queue` completely, returning the (at, seq) extraction order.
template <typename Queue>
std::vector<std::pair<Time, std::uint64_t>> drain(Queue& queue) {
  std::vector<std::pair<Time, std::uint64_t>> order;
  for (;;) {
    const Event* front = queue.peek();
    if (front == nullptr) break;
    order.emplace_back(front->at, front->seq);
    queue.pop();
  }
  return order;
}

TEST(CalendarQueue, EmptyPeeksNull) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(CalendarQueue, SingleBucketOrdersByTimeThenSeq) {
  CalendarQueue q;
  q.push(make_event(30, 0));
  q.push(make_event(10, 1));
  q.push(make_event(10, 2));
  q.push(make_event(20, 3));
  const auto order = drain(q);
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {10, 1}, {10, 2}, {20, 3}, {30, 0}};
  EXPECT_EQ(order, want);
}

TEST(CalendarQueue, FarFutureEventsMigrateFromHeap) {
  CalendarQueue q;
  // Beyond the wheel horizon at insertion time.
  const Time far = CalendarQueue::kBucketWidth *
                   static_cast<Time>(CalendarQueue::kNumBuckets) * 3;
  q.push(make_event(far + 5, 0));
  q.push(make_event(far + 5, 1));
  q.push(make_event(3, 2));
  const auto order = drain(q);
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {3, 2}, {far + 5, 0}, {far + 5, 1}};
  EXPECT_EQ(order, want);
}

TEST(CalendarQueue, InsertIntoDrainingBucketKeepsOrder) {
  // Events pushed into the current bucket *while* it drains (the overlay
  // path) must still come out in (at, seq) order.
  CalendarQueue q;
  q.push(make_event(10, 0));
  q.push(make_event(50, 1));
  const Event* front = q.peek();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(front->at, 10);
  q.pop();
  // Bucket 0 is now mid-drain; 20 and 50 land in it via the overlay.
  q.push(make_event(20, 2));
  q.push(make_event(50, 3));
  const auto order = drain(q);
  const std::vector<std::pair<Time, std::uint64_t>> want{
      {20, 2}, {50, 1}, {50, 3}};
  EXPECT_EQ(order, want);
}

TEST(CalendarQueue, JumpsOverEmptyStretches) {
  CalendarQueue q;
  // A sparse sequence spanning many rotations of the wheel.
  std::vector<std::pair<Time, std::uint64_t>> want;
  Time at = 0;
  for (std::uint64_t seq = 0; seq < 30; ++seq) {
    at += CalendarQueue::kBucketWidth * 700;  // > half a rotation apart
    q.push(make_event(at, seq));
    want.emplace_back(at, seq);
  }
  EXPECT_EQ(drain(q), want);
}

TEST(CalendarQueue, SizeTracksAllTiers) {
  CalendarQueue q;
  q.push(make_event(1, 0));                                    // current bucket
  q.push(make_event(CalendarQueue::kBucketWidth * 5, 1));      // future bucket
  const Time far = CalendarQueue::kBucketWidth *
                   static_cast<Time>(CalendarQueue::kNumBuckets) * 2;
  q.push(make_event(far, 2));                                  // far heap
  EXPECT_EQ(q.size(), 3u);
  (void)q.peek();
  q.pop();
  EXPECT_EQ(q.size(), 2u);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(CalendarQueue, MatchesHeapOnRandomWorkload) {
  // The determinism contract, exercised adversarially: interleaved
  // pushes and pops with times spanning bucket, rotation, and horizon
  // scales must extract in exactly the heap's (at, seq) order.
  CalendarQueue cal;
  HeapQueue heap;
  Rng rng(2024);
  Time now = 0;
  std::uint64_t seq = 0;
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t action = rng.next_below(3);
    if (action != 0 || cal.empty()) {
      // Mixed horizons: same-bucket, near, far, very far.
      static constexpr Time kSpans[] = {
          1, CalendarQueue::kBucketWidth / 2, CalendarQueue::kBucketWidth * 20,
          CalendarQueue::kBucketWidth * static_cast<Time>(CalendarQueue::kNumBuckets) * 4};
      const Time span = kSpans[rng.next_below(4)];
      const Time at = now + static_cast<Time>(rng.next_below(
                                static_cast<std::uint64_t>(span))) +
                      1;
      cal.push(make_event(at, seq));
      heap.push(make_event(at, seq));
      ++seq;
    } else {
      const Event* front = cal.peek();
      ASSERT_NE(front, nullptr);
      ASSERT_FALSE(heap.empty());
      EXPECT_EQ(front->at, heap.top().at);
      EXPECT_EQ(front->seq, heap.top().seq);
      now = front->at;  // simulation time advances monotonically
      cal.pop();
      heap.pop();
    }
    ASSERT_EQ(cal.size(), heap.size());
  }
  // Drain the rest in lockstep.
  while (!heap.empty()) {
    const Event* front = cal.peek();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(front->at, heap.top().at);
    EXPECT_EQ(front->seq, heap.top().seq);
    cal.pop();
    heap.pop();
  }
  EXPECT_TRUE(cal.empty());
}

TEST(EventStruct, StaysWithinOneCacheLine) {
  // Queue operations copy events constantly; the layout must not creep
  // past a cache line. (at, seq) lead the struct so ordering compares
  // touch the first 16 bytes only.
  EXPECT_LE(sizeof(Event), 64u);
  EXPECT_EQ(offsetof(Event, at), 0u);
  EXPECT_EQ(offsetof(Event, seq), 8u);
}

}  // namespace
}  // namespace ibsim::core
