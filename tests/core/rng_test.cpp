#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ibsim::core {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng.next());
  rng.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowSmallBounds) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(42);
  Rng a = root.fork("gen", 7);
  Rng b = root.fork("gen", 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkStreamsAreIndependentByLabelAndIndex) {
  Rng root(42);
  Rng a = root.fork("gen", 0);
  Rng b = root.fork("gen", 1);
  Rng c = root.fork("sink", 0);
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    same_ab += (va == b.next()) ? 1 : 0;
    same_ac += (va == c.next()) ? 1 : 0;
  }
  EXPECT_EQ(same_ab, 0);
  EXPECT_EQ(same_ac, 0);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork("x", 1);
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the splitmix64 reference implementation with
  // initial state 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
}

TEST(Rng, HashLabelDistinguishes) {
  EXPECT_NE(hash_label("gen"), hash_label("sink"));
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_EQ(hash_label("same"), hash_label("same"));
}

TEST(Rng, UniformBitGeneratorInterface) {
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), UINT64_MAX);
  Rng rng(1);
  (void)rng();  // callable
}

}  // namespace
}  // namespace ibsim::core
