#include "core/log.hpp"

#include <gtest/gtest.h>

namespace ibsim::core {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(Log::level()) {}
  ~LogLevelGuard() { Log::set_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultThresholdIsWarn) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::Warn);
  EXPECT_FALSE(Log::enabled(LogLevel::Trace));
  EXPECT_FALSE(Log::enabled(LogLevel::Debug));
  EXPECT_FALSE(Log::enabled(LogLevel::Info));
  EXPECT_TRUE(Log::enabled(LogLevel::Warn));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
}

TEST(Log, ThresholdIsAdjustable) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::Trace);
  EXPECT_TRUE(Log::enabled(LogLevel::Trace));
  Log::set_level(LogLevel::Error);
  EXPECT_FALSE(Log::enabled(LogLevel::Warn));
  EXPECT_TRUE(Log::enabled(LogLevel::Error));
}

TEST(Log, OffDisablesEverything) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::Off);
  EXPECT_FALSE(Log::enabled(LogLevel::Error));
  EXPECT_FALSE(Log::enabled(LogLevel::Off));
}

TEST(Log, WriteBelowThresholdIsSilentNoCrash) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::Error);
  // Goes nowhere, must not crash or allocate the formatted string.
  Log::write(LogLevel::Debug, 12345, "dropped %d", 1);
  IBSIM_LOG(LogLevel::Info, 0, "also dropped %s", "x");
}

TEST(Log, WriteAboveThresholdFormats) {
  LogLevelGuard guard;
  Log::set_level(LogLevel::Error);
  // Smoke: formatted output path executes (visually goes to stderr).
  Log::write(LogLevel::Error, kMicrosecond, "test message %d/%s", 42, "ok");
}

}  // namespace
}  // namespace ibsim::core
