#include "core/time.hpp"

#include <gtest/gtest.h>

namespace ibsim::core {
namespace {

TEST(Time, UnitsNest) {
  EXPECT_EQ(kNanosecond, 1000);
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(Time, TransmitTimeExactFor16Gbps) {
  // One byte at 16 Gb/s is exactly 500 ps: the calibrated data rate was
  // chosen so packet timings stay integral.
  EXPECT_EQ(transmit_time(1, 16.0), 500);
  EXPECT_EQ(transmit_time(2048, 16.0), 2048 * 500);
}

TEST(Time, TransmitTimeMtuAtInjectRate) {
  // 2048 B at 13.5 Gb/s = 2048*8/13.5 ns = 1213.6 ns.
  const Time t = transmit_time(2048, 13.5);
  EXPECT_NEAR(static_cast<double>(t), 2048.0 * 8000.0 / 13.5, 1.0);
}

TEST(Time, TransmitTimeZeroBytes) { EXPECT_EQ(transmit_time(0, 16.0), 0); }

TEST(Time, RateGbpsRoundTrips) {
  const Time span = kMillisecond;
  const std::int64_t bytes = capacity_bytes(13.5, span);
  EXPECT_NEAR(rate_gbps(bytes, span), 13.5, 0.001);
}

TEST(Time, RateGbpsZeroSpanIsZero) {
  EXPECT_EQ(rate_gbps(12345, 0), 0.0);
  EXPECT_EQ(rate_gbps(12345, -5), 0.0);
}

TEST(Time, CapacityBytesLinear) {
  EXPECT_EQ(capacity_bytes(8.0, kMicrosecond), 1000);  // 8 Gb/s = 1 B/ns
}

TEST(Time, FormatTimePicksUnits) {
  EXPECT_EQ(format_time(500), "500 ps");
  EXPECT_EQ(format_time(1500), "1.5 ns");
  EXPECT_EQ(format_time(2 * kMicrosecond), "2.000 us");
  EXPECT_EQ(format_time(3 * kMillisecond), "3.000 ms");
  EXPECT_EQ(format_time(kSecond), "1.000 s");
}

TEST(Time, CcTimerUnitIsExact) {
  // 1.024 us (the CCTI_Timer unit) is an exact picosecond count.
  EXPECT_EQ(1024 * kNanosecond, 1024000);
}

}  // namespace
}  // namespace ibsim::core
