#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace ibsim::core {
namespace {

/// Records the order and payloads of events it receives.
class Recorder : public EventHandler {
 public:
  void on_event(Scheduler& sched, const Event& ev) override {
    times.push_back(sched.now());
    kinds.push_back(ev.kind);
    payloads.push_back(ev.a);
  }
  std::vector<Time> times;
  std::vector<std::uint32_t> kinds;
  std::vector<std::uint64_t> payloads;
};

/// Handler that schedules a follow-up event on itself.
class Chainer : public EventHandler {
 public:
  explicit Chainer(int remaining) : remaining_(remaining) {}
  void on_event(Scheduler& sched, const Event&) override {
    ++fired;
    if (--remaining_ > 0) sched.schedule_in(10, this, 0);
  }
  int fired = 0;

 private:
  int remaining_;
};

TEST(Scheduler, StartsAtTimeZeroEmpty) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.executed(), 0u);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(30, &rec, 3);
  sched.schedule_at(10, &rec, 1);
  sched.schedule_at(20, &rec, 2);
  sched.run();
  ASSERT_EQ(rec.kinds.size(), 3u);
  EXPECT_EQ(rec.kinds, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(rec.times, (std::vector<Time>{10, 20, 30}));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler sched;
  Recorder rec;
  for (std::uint64_t i = 0; i < 100; ++i) sched.schedule_at(42, &rec, 0, i);
  sched.run();
  ASSERT_EQ(rec.payloads.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(rec.payloads[i], i);
}

TEST(Scheduler, RunUntilStopsAtHorizonInclusive) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(10, &rec, 1);
  sched.schedule_at(20, &rec, 2);
  sched.schedule_at(21, &rec, 3);
  const std::uint64_t n = sched.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.now(), 20);
}

TEST(Scheduler, RunUntilAdvancesClockWhenQueueDrains) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(5, &rec, 1);
  sched.run_until(1000);
  EXPECT_EQ(sched.now(), 1000);
}

TEST(Scheduler, ResumesAfterHorizon) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(10, &rec, 1);
  sched.schedule_at(30, &rec, 2);
  sched.run_until(15);
  EXPECT_EQ(rec.kinds.size(), 1u);
  sched.run_until(40);
  EXPECT_EQ(rec.kinds.size(), 2u);
}

TEST(Scheduler, HandlersCanScheduleDuringExecution) {
  Scheduler sched;
  Chainer chain(5);
  sched.schedule_at(0, &chain, 0);
  sched.run();
  EXPECT_EQ(chain.fired, 5);
  EXPECT_EQ(sched.now(), 40);
}

TEST(Scheduler, StopAbortsTheLoop) {
  class Stopper : public EventHandler {
   public:
    void on_event(Scheduler& sched, const Event&) override {
      ++fired;
      sched.stop();
    }
    int fired = 0;
  };
  Scheduler sched;
  Stopper stopper;
  sched.schedule_at(1, &stopper, 0);
  sched.schedule_at(2, &stopper, 0);
  sched.run();
  EXPECT_EQ(stopper.fired, 1);
  EXPECT_EQ(sched.pending(), 1u);
  // A subsequent run resumes.
  sched.run();
  EXPECT_EQ(stopper.fired, 2);
}

TEST(Scheduler, ClearDropsPendingEvents) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(10, &rec, 1);
  sched.clear();
  sched.run();
  EXPECT_TRUE(rec.kinds.empty());
}

TEST(Scheduler, ClearResetsClockAndSequence) {
  // Regression: clear() used to drop the queue but keep now_ and
  // next_seq_, so a reused scheduler aborted on schedule_at(t) for any
  // t below the previous run's end time.
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(500, &rec, 1);
  sched.run();
  ASSERT_EQ(sched.now(), 500);
  sched.clear();
  EXPECT_EQ(sched.now(), 0);
  sched.schedule_at(10, &rec, 2);  // earlier than the previous now_
  sched.run();
  ASSERT_EQ(rec.kinds.size(), 2u);
  EXPECT_EQ(rec.kinds[1], 2u);
  EXPECT_EQ(sched.now(), 10);
  // executed() is the lifetime count and survives clear().
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(Scheduler, NextEventTimePeeksWithoutExecuting) {
  Scheduler sched;
  Recorder rec;
  EXPECT_EQ(sched.next_event_time(), kTimeNever);
  sched.schedule_at(30, &rec, 1);
  sched.schedule_at(10, &rec, 2);
  EXPECT_EQ(sched.next_event_time(), 10);
  EXPECT_EQ(sched.pending(), 2u);  // peek must not pop
  sched.run_until(10);
  EXPECT_EQ(sched.next_event_time(), 30);
  sched.run();
  EXPECT_EQ(sched.next_event_time(), kTimeNever);
}

TEST(Scheduler, ClearResetsExternalEventCount) {
  // The shard engine counts mailbox-drain injections per scheduler; a
  // reused per-shard scheduler must start its replay at zero or the
  // sched.shard.absorbed gauge would leak across runs.
  Scheduler sched;
  EXPECT_EQ(sched.external_events(), 0u);
  sched.note_external_event();
  sched.note_external_event();
  EXPECT_EQ(sched.external_events(), 2u);
  sched.clear();
  EXPECT_EQ(sched.external_events(), 0u);
}

TEST(Scheduler, ClearResetsStopFlag) {
  class Stopper : public EventHandler {
   public:
    void on_event(Scheduler& sched, const Event&) override { sched.stop(); }
  };
  Scheduler sched;
  Stopper stopper;
  Recorder rec;
  sched.schedule_at(1, &stopper, 0);
  sched.run();
  sched.clear();
  sched.schedule_at(1, &rec, 1);
  sched.run();
  EXPECT_EQ(rec.kinds.size(), 1u);
}

TEST(Scheduler, ExecutedCountsAcrossRuns) {
  Scheduler sched;
  Recorder rec;
  for (Time t = 1; t <= 10; ++t) sched.schedule_at(t, &rec, 0);
  sched.run_until(5);
  sched.run_until(10);
  EXPECT_EQ(sched.executed(), 10u);
}

TEST(Scheduler, SchedulingAtCurrentTimeDuringEventWorks) {
  class SameTime : public EventHandler {
   public:
    void on_event(Scheduler& sched, const Event& ev) override {
      ++fired;
      if (ev.kind == 0) sched.schedule_at(sched.now(), this, 1);
    }
    int fired = 0;
  };
  Scheduler sched;
  SameTime handler;
  sched.schedule_at(7, &handler, 0);
  sched.run();
  EXPECT_EQ(handler.fired, 2);
  EXPECT_EQ(sched.now(), 7);
}

TEST(SchedulerDeath, PastSchedulingAborts) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(100, &rec, 0);
  sched.run();
  EXPECT_DEATH(sched.schedule_at(50, &rec, 0), "past");
}

TEST(SchedulerDeath, NullTargetAborts) {
  Scheduler sched;
  EXPECT_DEATH(sched.schedule_at(1, nullptr, 0), "target");
}

TEST(Scheduler, LargeRandomBatchStaysSorted) {
  Scheduler sched;
  Recorder rec;
  std::uint64_t state = 99;
  for (int i = 0; i < 10000; ++i) {
    sched.schedule_at(static_cast<Time>(splitmix64(state) % 1000000), &rec, 0);
  }
  sched.run();
  ASSERT_EQ(rec.times.size(), 10000u);
  for (std::size_t i = 1; i < rec.times.size(); ++i) {
    EXPECT_LE(rec.times[i - 1], rec.times[i]);
  }
}

// ---------------------------------------------------------------------------
// Every ordering property must hold for both pending-event structures;
// the heap is the reference the calendar queue is checked against.
// ---------------------------------------------------------------------------
class SchedulerQueueKind : public ::testing::TestWithParam<QueueKind> {};

INSTANTIATE_TEST_SUITE_P(BothQueues, SchedulerQueueKind,
                         ::testing::Values(QueueKind::kTwoTier, QueueKind::kHeap),
                         [](const auto& info) {
                           return info.param == QueueKind::kTwoTier ? "TwoTier" : "Heap";
                         });

TEST_P(SchedulerQueueKind, ExecutesInTimeThenInsertionOrder) {
  Scheduler sched(GetParam());
  Recorder rec;
  sched.schedule_at(30, &rec, 0, 4);
  sched.schedule_at(10, &rec, 0, 1);
  sched.schedule_at(10, &rec, 0, 2);
  sched.schedule_at(20, &rec, 0, 3);
  sched.run();
  EXPECT_EQ(rec.payloads, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST_P(SchedulerQueueKind, MixedHorizonsReplayIdentically) {
  // Same seeded workload through both structures: times span from
  // sub-bucket to beyond the calendar horizon, with handler-driven
  // inserts at the current time. The observable execution order is the
  // contract; it must not depend on the queue.
  auto replay = [](QueueKind kind) {
    Scheduler sched(kind);
    Recorder rec;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
      // Up to ~286 µs: crosses the 67 µs wheel horizon regularly.
      sched.schedule_at(static_cast<Time>(rng.next_below(1u << 28)), &rec, 0,
                        static_cast<std::uint64_t>(i));
    }
    sched.run();
    return rec.payloads;
  };
  EXPECT_EQ(replay(QueueKind::kTwoTier), replay(QueueKind::kHeap));
}

TEST_P(SchedulerQueueKind, ChainedSchedulingAdvances) {
  Scheduler sched(GetParam());
  Chainer chain(1000);
  sched.schedule_at(0, &chain, 0);
  sched.run();
  EXPECT_EQ(chain.fired, 1000);
  EXPECT_EQ(sched.executed(), 1000u);
}

// ---------------------------------------------------------------------------
// Reserved sequence slots, the collision watch and the per-kind counters
// — the scheduler-side contract the fabric fast path is built on.
// ---------------------------------------------------------------------------

TEST_P(SchedulerQueueKind, ReservedSeqKeepsItsSlotInSameTimeTies) {
  // A slot reserved early but scheduled late must still execute where
  // its eager twin would have: before every same-timestamp event with a
  // higher sequence, even though those were pushed into the queue first.
  Scheduler sched(GetParam());
  Recorder rec;
  sched.schedule_at(100, &rec, 0, 1);
  const std::uint64_t reserved = sched.reserve_seq();
  sched.schedule_at(100, &rec, 0, 3);
  sched.schedule_at(100, &rec, 0, 4);
  sched.schedule_at_reserved(100, reserved, &rec, 0, 2);  // materialize late
  sched.run();
  EXPECT_EQ(rec.payloads, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST_P(SchedulerQueueKind, ReserveSeqBurnsExactlyOneSequence) {
  // Interleaving reservations must not shift the sequence numbering the
  // surrounding schedule_at calls observe — parity with a run that
  // scheduled a real event in each slot.
  Scheduler sched(GetParam());
  Recorder rec;
  const std::uint64_t s0 = sched.schedule_at(10, &rec, 0);
  const std::uint64_t r0 = sched.reserve_seq();
  const std::uint64_t s1 = sched.schedule_at(10, &rec, 0);
  EXPECT_EQ(r0, s0 + 1);
  EXPECT_EQ(s1, r0 + 1);
  sched.run();  // an unmaterialized reservation simply never fires
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(Scheduler, WatchReportsOnlyTheArmedTimestamp) {
  Scheduler sched;
  Recorder rec;
  sched.arm_watch(50);
  EXPECT_FALSE(sched.watch_hit());
  sched.schedule_at(49, &rec, 0);
  sched.schedule_at(51, &rec, 0);
  EXPECT_FALSE(sched.watch_hit());  // near misses do not trip it
  sched.schedule_at(50, &rec, 0);
  EXPECT_TRUE(sched.watch_hit());
  // The hit latches until the watch is re-armed.
  sched.schedule_at(60, &rec, 0);
  EXPECT_TRUE(sched.watch_hit());
  sched.arm_watch(60);
  EXPECT_FALSE(sched.watch_hit());
}

TEST(Scheduler, WatchSeesReservedSlotMaterialization) {
  // schedule_at_reserved must trip the watch like schedule_at: a
  // deferred wakeup landing on the watched timestamp is an observer the
  // credit coalescer has to assume can see the merge window.
  Scheduler sched;
  Recorder rec;
  const std::uint64_t seq = sched.reserve_seq();
  sched.arm_watch(70);
  sched.schedule_at_reserved(70, seq, &rec, 0);
  EXPECT_TRUE(sched.watch_hit());
}

TEST(Scheduler, CurrentSeqMatchesDispatchedEvent) {
  class SeqProbe : public EventHandler {
   public:
    void on_event(Scheduler& sched, const Event& ev) override {
      seen.push_back(sched.current_seq());
      expected.push_back(ev.seq);
    }
    std::vector<std::uint64_t> seen;
    std::vector<std::uint64_t> expected;
  };
  Scheduler sched;
  SeqProbe probe;
  sched.schedule_at(5, &probe, 0);
  (void)sched.reserve_seq();
  sched.schedule_at(5, &probe, 0);
  sched.run();
  EXPECT_EQ(probe.seen, probe.expected);
  ASSERT_EQ(probe.seen.size(), 2u);
  EXPECT_LT(probe.seen[0] + 1, probe.seen[1]);  // the burnt slot shows up
}

TEST(Scheduler, PerKindCountersMapFabricKindsAndOverflow) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(1, &rec, 0);      // slot 0: kind-0 driver events
  sched.schedule_at(2, &rec, 2);      // slot 2: a fabric kind
  sched.schedule_at(3, &rec, 2);
  sched.schedule_at(4, &rec, 5);      // slot 5: highest dedicated kind
  sched.schedule_at(5, &rec, 6);      // first aggregated kind
  sched.schedule_at(6, &rec, 0xCC01); // far-off kind, same bucket
  sched.run();
  const auto& by_kind = sched.executed_by_kind();
  EXPECT_EQ(by_kind[0], 1u);
  EXPECT_EQ(by_kind[1], 0u);
  EXPECT_EQ(by_kind[2], 2u);
  EXPECT_EQ(by_kind[5], 1u);
  EXPECT_EQ(by_kind[Scheduler::kKindSlots - 1], 2u);
  std::uint64_t total = 0;
  for (const std::uint64_t n : by_kind) total += n;
  EXPECT_EQ(total, sched.executed());
}

TEST(Scheduler, PerKindCountersSurviveClear) {
  Scheduler sched;
  Recorder rec;
  sched.schedule_at(1, &rec, 3);
  sched.run();
  sched.clear();
  sched.schedule_at(1, &rec, 3);
  sched.run();
  EXPECT_EQ(sched.executed_by_kind()[3], 2u);
  EXPECT_EQ(sched.executed(), 2u);
}

TEST(SchedulerDeath, ReservedSeqMustComeFromReserveSeq) {
  Scheduler sched;
  Recorder rec;
  EXPECT_DEATH(sched.schedule_at_reserved(10, 99, &rec, 0), "reserve");
}

}  // namespace
}  // namespace ibsim::core
