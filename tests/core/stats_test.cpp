#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ibsim::core {
namespace {

TEST(RateCounter, AccumulatesBytesAndPackets) {
  RateCounter counter;
  counter.add(1000);
  counter.add(2000);
  EXPECT_EQ(counter.bytes(), 3000);
  EXPECT_EQ(counter.packets(), 2);
}

TEST(RateCounter, GbpsOverWindow) {
  RateCounter counter;
  counter.reset(kMicrosecond);
  counter.add(capacity_bytes(10.0, kMicrosecond));
  EXPECT_NEAR(counter.gbps(2 * kMicrosecond), 10.0, 0.01);
}

TEST(RateCounter, ResetStartsNewWindow) {
  RateCounter counter;
  counter.add(999999);
  counter.reset(100);
  EXPECT_EQ(counter.bytes(), 0);
  EXPECT_EQ(counter.window_start(), 100);
}

TEST(RateCounter, ZeroLengthWindowReportsZero) {
  // Sampling at (or before) the window-start instant must not divide by
  // zero — samplers run at arbitrary times, including reset time itself.
  RateCounter counter;
  counter.reset(kMicrosecond);
  counter.add(12345);
  EXPECT_EQ(counter.gbps(kMicrosecond), 0.0);
  EXPECT_EQ(counter.gbps(0), 0.0);  // inverted window, same guarantee
  EXPECT_TRUE(std::isfinite(counter.gbps(kMicrosecond)));
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, ResetClears) {
  Summary s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(Histogram, BinsAndRanges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.bins(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, CountsIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(0.9);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.add(2.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin_count(2), 0u);
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.set(0, 5.0);
  EXPECT_DOUBLE_EQ(tw.average(1000), 5.0);
}

TEST(TimeWeighted, StepSignalAverages) {
  TimeWeighted tw;
  tw.set(0, 0.0);
  tw.set(500, 10.0);  // 0 for half the window, 10 for the other half
  EXPECT_DOUBLE_EQ(tw.average(1000), 5.0);
}

TEST(TimeWeighted, ResetRestartsWindow) {
  TimeWeighted tw;
  tw.set(0, 100.0);
  tw.reset(1000);
  EXPECT_DOUBLE_EQ(tw.average(2000), 100.0);  // value persists, window restarts
  tw.set(2000, 0.0);
  EXPECT_DOUBLE_EQ(tw.average(3000), 50.0);
}

TEST(Jain, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 1.0, 1.0, 1.0}), 1.0);
}

TEST(Jain, CompletelyUnfair) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(Jain, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / (3.0 * 14.0), 1e-12);
}

}  // namespace
}  // namespace ibsim::core
