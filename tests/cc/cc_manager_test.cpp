#include "cc/cc_manager.hpp"

#include <gtest/gtest.h>

#include "ccalg/registry.hpp"
#include "ib/types.hpp"

namespace ibsim::cc {
namespace {

TEST(CcManager, BuildsGeometricCctOverLimit) {
  CcManager mgr(ib::CcParams::paper_table1(), 128, 13.5);
  EXPECT_TRUE(mgr.enabled());
  EXPECT_EQ(mgr.cct().size(), 128u);
  // Geometric fill: gentle first step (~5% slowdown), deep final step
  // (beyond the ~64x a 65-contributor hotspot needs).
  EXPECT_GT(mgr.cct().rate_fraction(1), 0.9);
  EXPECT_LT(mgr.cct().rate_fraction(127), 1.0 / 128.0);
  // Monotone non-increasing rates.
  for (std::size_t i = 1; i < 128; ++i) {
    EXPECT_LE(mgr.cct().rate_fraction(i), mgr.cct().rate_fraction(i - 1) + 1e-12);
  }
}

TEST(CcManager, ThresholdBytesFromWeight) {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.threshold_weight = 15;
  CcManager mgr(p);
  EXPECT_EQ(mgr.threshold_bytes(32 * 1024), 2048);  // 1/16 of the buffer
  p.threshold_weight = 8;
  CcManager mid(p);
  EXPECT_EQ(mid.threshold_bytes(32 * 1024), 16 * 1024);  // 8/16
}

TEST(CcManager, WeightZeroIsUnreachable) {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.threshold_weight = 0;
  CcManager mgr(p);
  EXPECT_EQ(mgr.threshold_bytes(32 * 1024), INT64_MAX);
}

TEST(CcManager, ThresholdNeverBelowOneByte) {
  ib::CcParams p = ib::CcParams::paper_table1();
  CcManager mgr(p);
  EXPECT_GE(mgr.threshold_bytes(4), 1);
}

TEST(CcManager, DisabledStillConstructs) {
  CcManager mgr(ib::CcParams::disabled());
  EXPECT_FALSE(mgr.enabled());
}

TEST(CcManager, CctEntriesExactlyLimitPlusOneIsValid) {
  // The tight boundary: a table of ccti_limit+1 entries covers every
  // reachable CCTI (0..limit inclusive) with no clamping headroom.
  ib::CcParams p = ib::CcParams::paper_table1();
  p.ccti_limit = 127;
  CcManager mgr(p, 128, 13.5);
  EXPECT_EQ(mgr.cct().size(), 128u);
  EXPECT_GT(mgr.cct().ird_delay(127, ib::kMtuBytes), 0);
  // One past the limit clamps to the last entry instead of reading OOB.
  EXPECT_EQ(mgr.cct().ird_delay(128, ib::kMtuBytes),
            mgr.cct().ird_delay(127, ib::kMtuBytes));
}

TEST(CcManager, DefaultAlgoAndOverride) {
  CcManager mgr(ib::CcParams::paper_table1());
  EXPECT_EQ(mgr.algo(), "iba_a10");
  EXPECT_EQ(mgr.effective_algo(), "iba_a10");
  mgr.set_algo("dcqcn");
  EXPECT_EQ(mgr.algo(), "dcqcn");
  EXPECT_EQ(mgr.effective_algo(), "dcqcn");
}

TEST(CcManager, DisabledManagerIsEffectivelyNone) {
  CcManager mgr(ib::CcParams::disabled());
  mgr.set_algo("dcqcn");
  EXPECT_EQ(mgr.algo(), "dcqcn");
  EXPECT_EQ(mgr.effective_algo(), "none");
}

TEST(CcManager, PublishesAlgoGauge) {
  telemetry::CounterRegistry registry;
  CcManager mgr(ib::CcParams::paper_table1());
  mgr.set_algo("dcqcn");
  mgr.publish(registry);
  const auto handle = registry.gauge("cc.algo");
  EXPECT_EQ(registry.value(handle),
            ccalg::CcAlgorithmRegistry::instance().id_of("dcqcn"));
}

TEST(CcManagerDeath, CctMustCoverLimit) {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.ccti_limit = 200;
  EXPECT_DEATH(CcManager(p, 128, 13.5), "cover");
}

TEST(CcManagerDeath, InvalidParamsAbort) {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.threshold_weight = 99;
  EXPECT_DEATH(CcManager mgr(p), "threshold_weight");
}

}  // namespace
}  // namespace ibsim::cc
