#include "cc/ca_cc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ib/types.hpp"

namespace ibsim::cc {
namespace {

class RecordingCnpSender : public CnpSender {
 public:
  void send_cnp(ib::NodeId to, ib::NodeId flow_dst) override {
    sent.push_back({to, flow_dst});
  }
  std::vector<std::pair<ib::NodeId, ib::NodeId>> sent;
};

class CaCcTest : public ::testing::Test {
 protected:
  CaCcTest()
      : params_(ib::CcParams::paper_table1()), cct_(128, 13.5) {
    cct_.populate_linear();
  }

  CaCcAgent make_agent(const ib::CcParams& params) {
    return CaCcAgent(/*self=*/0, /*n_nodes=*/8, params, &cct_, &sched_, &sender_);
  }

  ib::CcParams params_;
  ib::CongestionControlTable cct_;
  core::Scheduler sched_;
  RecordingCnpSender sender_;
};

TEST_F(CaCcTest, FlowsStartUnthrottled) {
  CaCcAgent agent = make_agent(params_);
  for (ib::NodeId d = 0; d < 8; ++d) {
    EXPECT_EQ(agent.ccti(d), 0);
    EXPECT_EQ(agent.flow_ready_at(d), 0);
  }
}

TEST_F(CaCcTest, BecnIncreasesCcti) {
  CaCcAgent agent = make_agent(params_);
  agent.on_becn(3, 0);
  EXPECT_EQ(agent.ccti(3), 1);
  EXPECT_EQ(agent.ccti(2), 0);  // QP level: other flows untouched
  agent.on_becn(3, 0);
  EXPECT_EQ(agent.ccti(3), 2);
  EXPECT_EQ(agent.becn_received(), 2u);
}

TEST_F(CaCcTest, CctiClampsAtLimit) {
  CaCcAgent agent = make_agent(params_);
  for (int i = 0; i < 500; ++i) agent.on_becn(1, 0);
  EXPECT_EQ(agent.ccti(1), params_.ccti_limit);
}

TEST_F(CaCcTest, IncreaseParameterApplies) {
  ib::CcParams p = params_;
  p.ccti_increase = 5;
  CaCcAgent agent = make_agent(p);
  agent.on_becn(2, 0);
  EXPECT_EQ(agent.ccti(2), 5);
}

TEST_F(CaCcTest, IrdDelaysNextPacket) {
  CaCcAgent agent = make_agent(params_);
  agent.on_becn(4, 0);  // ccti = 1 -> IRD = 1 packet time
  agent.on_data_granted(4, ib::kMtuBytes, /*end=*/1000000);
  const core::Time pkt_time = core::transmit_time(ib::kMtuBytes, 13.5);
  EXPECT_EQ(agent.flow_ready_at(4), 1000000 + pkt_time);
}

TEST_F(CaCcTest, UnthrottledFlowReadyAtGrantEnd) {
  CaCcAgent agent = make_agent(params_);
  agent.on_data_granted(4, ib::kMtuBytes, 777);
  EXPECT_EQ(agent.flow_ready_at(4), 777);
}

TEST_F(CaCcTest, TimerDecrementsAllThrottledFlows) {
  CaCcAgent agent = make_agent(params_);
  agent.on_becn(1, sched_.now());
  agent.on_becn(1, sched_.now());
  agent.on_becn(5, sched_.now());
  EXPECT_TRUE(agent.timer_armed());
  sched_.run_until(params_.timer_interval());
  EXPECT_EQ(agent.ccti(1), 1);
  EXPECT_EQ(agent.ccti(5), 0);
  EXPECT_EQ(agent.timer_expirations(), 1u);
}

TEST_F(CaCcTest, TimerChainStopsWhenAllFlowsRecover) {
  CaCcAgent agent = make_agent(params_);
  agent.on_becn(1, sched_.now());
  sched_.run();  // drains all timer events
  EXPECT_EQ(agent.ccti(1), 0);
  EXPECT_FALSE(agent.timer_armed());
  // Two expirations: one decrements to zero, none needed after.
  EXPECT_EQ(agent.timer_expirations(), 1u);
  EXPECT_EQ(sched_.pending(), 0u);
}

TEST_F(CaCcTest, TimerRearmsOnNewBecn) {
  CaCcAgent agent = make_agent(params_);
  agent.on_becn(1, sched_.now());
  sched_.run();
  EXPECT_FALSE(agent.timer_armed());
  agent.on_becn(2, sched_.now());
  EXPECT_TRUE(agent.timer_armed());
}

TEST_F(CaCcTest, CctiMinIsFloor) {
  ib::CcParams p = params_;
  p.ccti_min = 3;
  CaCcAgent agent = make_agent(p);
  for (int i = 0; i < 10; ++i) agent.on_becn(1, sched_.now());
  EXPECT_EQ(agent.ccti(1), 10);
  sched_.run_until(20 * p.timer_interval());
  EXPECT_EQ(agent.ccti(1), 3);  // never below the floor
}

TEST_F(CaCcTest, FecnTriggersCnpToSource) {
  CaCcAgent agent = make_agent(params_);
  agent.on_fecn(6);
  ASSERT_EQ(sender_.sent.size(), 1u);
  EXPECT_EQ(sender_.sent[0].first, 6);   // back to the data source
  EXPECT_EQ(sender_.sent[0].second, 0);  // flow reference: this node
  EXPECT_EQ(agent.cnps_sent(), 1u);
}

TEST_F(CaCcTest, DisabledAgentIgnoresEverything) {
  ib::CcParams p = ib::CcParams::disabled();
  CaCcAgent agent(0, 8, p, nullptr, &sched_, &sender_);
  agent.on_becn(1, 0);
  agent.on_fecn(2);
  agent.on_data_granted(1, ib::kMtuBytes, 999);
  EXPECT_EQ(agent.ccti(1), 0);
  EXPECT_EQ(agent.flow_ready_at(1), 0);
  EXPECT_TRUE(sender_.sent.empty());
}

TEST_F(CaCcTest, SlLevelSharesOneStateAcrossFlows) {
  ib::CcParams p = params_;
  p.sl_level = true;
  CaCcAgent agent = make_agent(p);
  agent.on_becn(1, 0);
  agent.on_becn(2, 0);
  // One BECN for any flow throttles every destination of the port.
  EXPECT_EQ(agent.ccti(1), 2);
  EXPECT_EQ(agent.ccti(5), 2);
  agent.on_data_granted(3, ib::kMtuBytes, 500000);
  EXPECT_GT(agent.flow_ready_at(7), 500000);
}

TEST_F(CaCcTest, ManyBecnsThenFullRecovery) {
  CaCcAgent agent = make_agent(params_);
  for (int i = 0; i < 40; ++i) agent.on_becn(2, sched_.now());
  EXPECT_EQ(agent.ccti(2), 40);
  sched_.run();  // timer chain runs to full recovery
  EXPECT_EQ(agent.ccti(2), 0);
  EXPECT_EQ(agent.timer_expirations(), 40u);
  EXPECT_FALSE(agent.timer_armed());
}

}  // namespace
}  // namespace ibsim::cc
