#include "cc/switch_cc.hpp"

#include <gtest/gtest.h>

namespace ibsim::cc {
namespace {

ib::CcParams params_with(std::uint8_t weight, std::uint16_t marking_rate = 0,
                         std::uint16_t packet_size = 0) {
  ib::CcParams p = ib::CcParams::paper_table1();
  p.threshold_weight = weight;
  p.marking_rate = marking_rate;
  p.packet_size = packet_size;
  return p;
}

TEST(SwitchPortCc, TracksQueuedBytes) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 4096, false);
  cc.on_enqueue(2048);
  cc.on_enqueue(2048);
  EXPECT_EQ(cc.queued_bytes(), 4096);
  cc.on_dequeue(2048);
  EXPECT_EQ(cc.queued_bytes(), 2048);
}

TEST(SwitchPortCc, ThresholdCrossingIsStrict) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 4096, false);
  cc.on_enqueue(2048);
  EXPECT_FALSE(cc.threshold_exceeded());
  cc.on_enqueue(2048);
  // Exactly at the threshold: not congested yet (a lone back-to-back
  // message must never self-mark).
  EXPECT_FALSE(cc.threshold_exceeded());
  cc.on_enqueue(2048);
  EXPECT_TRUE(cc.threshold_exceeded());
  cc.on_dequeue(4096);
  EXPECT_FALSE(cc.threshold_exceeded());
}

TEST(SwitchPortCc, MarksWhenRootWithCredits) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 2048, false);
  cc.on_enqueue(4096);
  EXPECT_TRUE(cc.decide_fecn(/*credits_after=*/1000, 2048));
  EXPECT_EQ(cc.marked(), 1u);
}

TEST(SwitchPortCc, VictimWithoutCreditsDoesNotMark) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 2048, /*victim_mask=*/false);
  cc.on_enqueue(4096);
  EXPECT_FALSE(cc.decide_fecn(/*credits_after=*/0, 2048));
  EXPECT_EQ(cc.victim_suppressed(), 1u);
  EXPECT_EQ(cc.marked(), 0u);
}

TEST(SwitchPortCc, VictimMaskOverridesCreditTest) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 2048, /*victim_mask=*/true);
  cc.on_enqueue(4096);
  EXPECT_TRUE(cc.decide_fecn(/*credits_after=*/0, 2048));
}

TEST(SwitchPortCc, BelowThresholdNeverMarks) {
  SwitchPortCc cc;
  cc.configure(params_with(15), 1 << 20, true);
  cc.on_enqueue(2048);
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));
  EXPECT_EQ(cc.eligible(), 0u);
}

TEST(SwitchPortCc, WeightZeroDisablesDetection) {
  SwitchPortCc cc;
  cc.configure(params_with(0), 1, true);
  cc.on_enqueue(1 << 20);
  EXPECT_FALSE(cc.threshold_exceeded());
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));
}

TEST(SwitchPortCc, DisabledParamsNeverMark) {
  SwitchPortCc cc;
  ib::CcParams p = ib::CcParams::disabled();
  cc.configure(p, 1, true);
  cc.on_enqueue(1 << 20);
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));
}

TEST(SwitchPortCc, PacketSizeExemptsSmallPackets) {
  SwitchPortCc cc;
  // Packet_Size = 4 -> packets up to 256 B are never marked.
  cc.configure(params_with(15, 0, 4), 2048, true);
  cc.on_enqueue(1 << 20);
  EXPECT_FALSE(cc.decide_fecn(1000, 64));
  EXPECT_FALSE(cc.decide_fecn(1000, 256));
  EXPECT_TRUE(cc.decide_fecn(1000, 257));
  EXPECT_TRUE(cc.decide_fecn(1000, 2048));
}

TEST(SwitchPortCc, MarkingRateZeroMarksEveryEligible) {
  SwitchPortCc cc;
  cc.configure(params_with(15, 0), 0, true);
  cc.on_enqueue(1 << 20);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(cc.decide_fecn(1000, 2048));
  EXPECT_EQ(cc.marked(), 10u);
  EXPECT_EQ(cc.eligible(), 10u);
}

TEST(SwitchPortCc, MarkingRateSpacesMarks) {
  SwitchPortCc cc;
  // Marking_Rate = 3: three eligible packets pass between marks.
  cc.configure(params_with(15, 3), 0, true);
  cc.on_enqueue(1 << 20);
  int marked = 0;
  for (int i = 0; i < 40; ++i) marked += cc.decide_fecn(1000, 2048) ? 1 : 0;
  EXPECT_EQ(marked, 10);
  EXPECT_EQ(cc.eligible(), 40u);
}

TEST(SwitchPortCc, MarkingRateCounterResetsBelowThreshold) {
  SwitchPortCc cc;
  // Marking_Rate = 1: one eligible packet passes between marks.
  cc.configure(params_with(15, 1), 2048, true);
  cc.on_enqueue(6144);
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));  // spacer
  EXPECT_TRUE(cc.decide_fecn(1000, 2048));   // mark
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));  // spacer
  cc.on_dequeue(6144);                        // queue drains
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));  // below threshold; counter resets
  cc.on_enqueue(6144);
  // Fresh congestion episode: the spacing pattern restarts.
  EXPECT_FALSE(cc.decide_fecn(1000, 2048));
  EXPECT_TRUE(cc.decide_fecn(1000, 2048));
}

}  // namespace
}  // namespace ibsim::cc
