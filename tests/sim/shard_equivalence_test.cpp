// Sharded-engine equivalence (DESIGN.md §15).
//
// The conservative-lookahead engine must be invisible three ways:
//  - shards=1 routes through the untouched serial engine, bit-identical
//    to a config that never mentions shards (and to every golden);
//  - a fixed shard count is deterministic: worker-thread count and
//    repeated runs (snapshot cache warm or cold) change nothing;
//  - sharded vs serial is *stats*-equivalent — cross-shard interleaving
//    may legitimately reorder same-timestamp arbitration, so headline
//    rates agree within a tolerance rather than bitwise.

#include <gtest/gtest.h>

#include <string>

#include "sim/shard_engine.hpp"
#include "sim/simulation.hpp"
#include "sim/snapshot.hpp"
#include "topo/builders.hpp"

namespace ibsim::sim {
namespace {

void expect_identical(const SimResult& a, const SimResult& b, const std::string& what) {
  EXPECT_EQ(a.hotspot_rcv_gbps, b.hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.non_hotspot_rcv_gbps, b.non_hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.all_rcv_gbps, b.all_rcv_gbps) << what;
  EXPECT_EQ(a.total_throughput_gbps, b.total_throughput_gbps) << what;
  EXPECT_EQ(a.jain_non_hotspot, b.jain_non_hotspot) << what;
  EXPECT_EQ(a.median_latency_us, b.median_latency_us) << what;
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us) << what;
  EXPECT_EQ(a.fecn_marked, b.fecn_marked) << what;
  EXPECT_EQ(a.cnps_sent, b.cnps_sent) << what;
  EXPECT_EQ(a.becn_received, b.becn_received) << what;
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << what;
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
}

void expect_near_rel(double a, double b, double tol, const std::string& what) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale < 1e-9) return;  // both ~zero
  EXPECT_LE(std::abs(a - b), tol * scale) << what << ": " << a << " vs " << b;
}

/// Serial vs sharded must tell the same congestion story: identical
/// event ordering is not promised, the paper's numbers are.
void expect_stats_equivalent(const SimResult& serial, const SimResult& sharded,
                             double tol, const std::string& what) {
  expect_near_rel(serial.hotspot_rcv_gbps, sharded.hotspot_rcv_gbps, tol,
                  what + " hotspot rate");
  expect_near_rel(serial.non_hotspot_rcv_gbps, sharded.non_hotspot_rcv_gbps, tol,
                  what + " victim rate");
  expect_near_rel(serial.total_throughput_gbps, sharded.total_throughput_gbps, tol,
                  what + " total throughput");
  expect_near_rel(static_cast<double>(serial.delivered_bytes),
                  static_cast<double>(sharded.delivered_bytes), tol,
                  what + " delivered bytes");
  expect_near_rel(serial.median_latency_us, sharded.median_latency_us, 2 * tol,
                  what + " median latency");
}

SimConfig small_clos_config() {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 4);
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.6;
  config.scenario.n_hotspots = 2;
  config.sim_time = 1500 * core::kMicrosecond;
  config.warmup = 300 * core::kMicrosecond;
  return config;
}

SimConfig ft3_2k_config() {
  SimConfig config;
  config.topology = TopologyKind::FatTree3;
  config.fat_tree3 = topo::FatTree3Params::scale_2k();
  config.sim_time = 150 * core::kMicrosecond;
  config.warmup = 50 * core::kMicrosecond;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 2;
  return config;
}

TEST(ShardEquivalence, LookaheadIsThePacketCrossingFloor) {
  fabric::FabricParams params;
  // Defaults: link 30ns, credit 50ns, switch 200ns, HCA rx 300ns — the
  // tightest crossing is a credit refund at link + credit delay.
  EXPECT_EQ(shard_lookahead(params), params.link_delay + params.credit_delay);
  params.credit_delay = 1000 * core::kNanosecond;
  EXPECT_EQ(shard_lookahead(params), params.link_delay + params.switch_delay);
}

TEST(ShardEquivalence, Shards1BitIdenticalToSerialAcrossTaxonomy) {
  // The congestion taxonomy's corner configs: oversubscribed clos
  // hotspot, CC off, moving hotspots, and victim-pattern dumbbell.
  std::vector<SimConfig> taxonomy;
  taxonomy.push_back(small_clos_config());
  taxonomy.push_back(small_clos_config());
  taxonomy.back().cc = ib::CcParams::disabled();
  taxonomy.push_back(small_clos_config());
  taxonomy.back().scenario.hotspot_lifetime = 150 * core::kMicrosecond;
  taxonomy.push_back(small_clos_config());
  taxonomy.back().topology = TopologyKind::Dumbbell;
  taxonomy.back().dumbbell_nodes_per_side = 6;

  for (std::size_t i = 0; i < taxonomy.size(); ++i) {
    SimConfig plain = taxonomy[i];
    const SimResult baseline = run_sim(plain);
    SimConfig pinned = taxonomy[i];
    pinned.shards = 1;
    pinned.threads = 4;  // worker knob must be inert on the serial engine
    Simulation sim(pinned);
    EXPECT_EQ(sim.effective_shards(), 1);
    const SimResult r = sim.run();
    expect_identical(baseline, r, "taxonomy config " + std::to_string(i));
  }
}

TEST(ShardEquivalence, ShardedDeterministicAcrossWorkerCounts) {
  SimConfig config = small_clos_config();
  config.shards = 4;

  SimResult by_threads[3];
  const std::int32_t threads[3] = {1, 2, 4};
  for (int t = 0; t < 3; ++t) {
    SimConfig c = config;
    c.threads = threads[t];
    Simulation sim(c);
    EXPECT_EQ(sim.effective_shards(), 4);
    by_threads[t] = sim.run();
  }
  expect_identical(by_threads[0], by_threads[1], "shards=4, 1 vs 2 workers");
  expect_identical(by_threads[0], by_threads[2], "shards=4, 1 vs 4 workers");

  // Run-to-run determinism at a fixed shard count.
  SimConfig again = config;
  again.threads = 2;
  expect_identical(by_threads[0], run_sim(again), "shards=4, repeat run");
}

TEST(ShardEquivalence, ShardedDeterministicWithMovingHotspots) {
  // Hotspot moves are global events the coordinator runs between
  // windows; they must not perturb determinism.
  SimConfig config = small_clos_config();
  config.shards = 4;
  config.threads = 2;
  config.scenario.hotspot_lifetime = 150 * core::kMicrosecond;
  const SimResult a = run_sim(config);
  const SimResult b = run_sim(config);
  expect_identical(a, b, "moving hotspots, shards=4 repeat");
}

TEST(ShardEquivalence, ShardReplayBitIdentical) {
  // Snapshot-cache replay regression (satellite of DESIGN.md §15): the
  // per-shard schedulers and the sharded fabric must reset/construct to
  // the same state whether the topology snapshot is shared or rebuilt,
  // so cache on/off (and warm vs cold cache) stays bit-identical with
  // shards > 1 exactly as ScaleInvariants pins for the serial engine.
  SnapshotCache::instance().clear();
  SimConfig cached = small_clos_config();
  cached.shards = 4;
  cached.threads = 2;
  cached.snapshot_cache = true;
  SimConfig fresh = cached;
  fresh.snapshot_cache = false;
  const SimResult warm = run_sim(cached);
  const SimResult cold = run_sim(fresh);
  const SimResult warm2 = run_sim(cached);  // second run really hits the cache
  expect_identical(warm, cold, "shards=4, cache on vs off");
  expect_identical(warm, warm2, "shards=4, cold vs warm cache");
}

TEST(ShardEquivalence, ShardedStatsEquivalentSmallClos) {
  SimConfig serial = small_clos_config();
  SimConfig sharded = small_clos_config();
  sharded.shards = 4;
  sharded.threads = 2;
  expect_stats_equivalent(run_sim(serial), run_sim(sharded), 0.15, "small clos");
}

TEST(ShardEquivalence, ShardedStatsEquivalentFt3_2k) {
  SimConfig serial = ft3_2k_config();
  SimConfig sharded = ft3_2k_config();
  sharded.shards = 8;
  sharded.threads = 2;
  Simulation sim(sharded);
  EXPECT_EQ(sim.effective_shards(), 8);
  expect_stats_equivalent(run_sim(serial), sim.run(), 0.15, "ft3-2k");
}

TEST(ShardEquivalence, ShardGaugesPublishedWithCountersTelemetry) {
  // End-of-run counters are the one telemetry mode the sharded engine
  // keeps; the run must label itself with the sched.shard.* gauges.
  SimConfig config = small_clos_config();
  config.shards = 4;
  config.threads = 2;
  config.telemetry.counters = true;
  const SimResult r = run_sim(config);
  ASSERT_TRUE(r.counters.count("sched.shard.count"));
  EXPECT_EQ(r.counters.at("sched.shard.count"), 4);
  ASSERT_TRUE(r.counters.count("sched.shard.windows"));
  EXPECT_GT(r.counters.at("sched.shard.windows"), 0);
  ASSERT_TRUE(r.counters.count("sched.shard.crossed_packets"));
  EXPECT_GT(r.counters.at("sched.shard.crossed_packets"), 0);
  ASSERT_TRUE(r.counters.count("sched.shard.absorbed_events"));
  EXPECT_GT(r.counters.at("sched.shard.absorbed_events"), 0);
  ASSERT_TRUE(r.counters.count("sched.shard.cut_links"));
  EXPECT_GT(r.counters.at("sched.shard.cut_links"), 0);
}

TEST(ShardEquivalence, WorkloadRunsFallBackToSerial) {
  // Feature gates: workload runs document a serial fallback rather than
  // silently racing; the run must still complete and report serial.
  SimConfig config = small_clos_config();
  config.shards = 4;
  config.workload.name = "incast";
  config.workload.ranks = 8;
  config.workload.message_bytes = 16 * 1024;
  Simulation sim(config);
  EXPECT_EQ(sim.effective_shards(), 1);
  const SimResult r = sim.run();
  EXPECT_TRUE(r.workload.ran);
}

TEST(ShardEquivalence, AutoShardsClampToSwitchCount) {
  // shards=0 derives from the resolved thread count; a fabric with
  // fewer switches than that must clamp, never leave empty shards.
  SimConfig config = small_clos_config();
  config.shards = 0;
  config.threads = 64;  // far above the 6 switches of the 4x2 clos
  Simulation sim(config);
  EXPECT_GE(sim.effective_shards(), 1);
  EXPECT_LE(sim.effective_shards(), 6);
  (void)sim.run();
}

}  // namespace
}  // namespace ibsim::sim
