// Snapshot-layer semantics: sharing cached topology/routing snapshots
// across runs must be observationally invisible. SimResults are compared
// field-for-field (EXPECT_EQ, no tolerance) between cache-on and
// cache-off runs and across run_parallel thread counts — the "gated on
// bit-identical results" guarantee of the sweep-engine overhaul.

#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig small_base() {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 250 * core::kMicrosecond;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.n_hotspots = 2;
  return config;
}

/// The three congestion-tree classes of the paper's taxonomy.
std::vector<SimConfig> taxonomy_configs() {
  std::vector<SimConfig> configs;
  SimConfig silent = small_base();
  silent.scenario.fraction_b = 0.0;
  silent.scenario.fraction_c_of_rest = 0.8;
  configs.push_back(silent);

  SimConfig windy = small_base();
  windy.scenario.fraction_b = 1.0;
  windy.scenario.p = 0.5;
  configs.push_back(windy);

  SimConfig moving = small_base();
  moving.scenario.fraction_b = 0.0;
  moving.scenario.fraction_c_of_rest = 0.8;
  moving.scenario.hotspot_lifetime = 200 * core::kMicrosecond;
  configs.push_back(moving);
  return configs;
}

void expect_identical(const SimResult& a, const SimResult& b, const std::string& what) {
  EXPECT_EQ(a.hotspot_rcv_gbps, b.hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.non_hotspot_rcv_gbps, b.non_hotspot_rcv_gbps) << what;
  EXPECT_EQ(a.all_rcv_gbps, b.all_rcv_gbps) << what;
  EXPECT_EQ(a.total_throughput_gbps, b.total_throughput_gbps) << what;
  EXPECT_EQ(a.jain_non_hotspot, b.jain_non_hotspot) << what;
  EXPECT_EQ(a.median_latency_us, b.median_latency_us) << what;
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us) << what;
  EXPECT_EQ(a.fecn_marked, b.fecn_marked) << what;
  EXPECT_EQ(a.cnps_sent, b.cnps_sent) << what;
  EXPECT_EQ(a.becn_received, b.becn_received) << what;
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes) << what;
  EXPECT_EQ(a.events_executed, b.events_executed) << what;
  EXPECT_EQ(a.counters, b.counters) << what;
}

TEST(SnapshotKeys, EncodeEveryTopologyParameterAndTieBreak) {
  SimConfig a = small_base();
  SimConfig b = a;
  EXPECT_EQ(topology_snapshot_key(a), topology_snapshot_key(b));
  b.clos.spines = 3;
  EXPECT_NE(topology_snapshot_key(a), topology_snapshot_key(b));

  // Scenario / CC / seed / timing are not part of the fabric's identity.
  b = a;
  b.seed = 99;
  b.scenario.p = 0.9;
  b.cc.enabled = false;
  b.sim_time = 2 * core::kMillisecond;
  EXPECT_EQ(routing_snapshot_key(a), routing_snapshot_key(b));

  SimConfig mesh = small_base();
  mesh.topology = TopologyKind::Mesh2D;
  EXPECT_NE(topology_snapshot_key(a), topology_snapshot_key(mesh));
  EXPECT_EQ(tie_break_for(mesh.topology), topo::RoutingTables::TieBreak::FirstPort);
  EXPECT_NE(routing_snapshot_key(mesh).find("first_port"), std::string::npos);
  EXPECT_NE(routing_snapshot_key(a).find("dmodk"), std::string::npos);
}

TEST(SnapshotCacheTest, CacheOnOffBitIdenticalAcrossTaxonomy) {
  SnapshotCache::instance().clear();
  for (SimConfig config : taxonomy_configs()) {
    config.telemetry.counters = true;  // compare counter snapshots too
    SimConfig cached = config;
    cached.snapshot_cache = true;
    SimConfig fresh = config;
    fresh.snapshot_cache = false;
    const SimResult warm = run_sim(cached);
    const SimResult cold = run_sim(fresh);
    // Run the cached variant again: the second run really hits the cache.
    const SimResult warm2 = run_sim(cached);
    expect_identical(warm, cold, config.scenario.describe() + " (cache on vs off)");
    expect_identical(warm, warm2, config.scenario.describe() + " (cold vs warm cache)");
  }
}

TEST(SnapshotCacheTest, SimulationsShareOneSnapshotInstance) {
  SnapshotCache::instance().clear();
  const SimConfig config = small_base();
  Simulation a(config);
  Simulation b(config);
  EXPECT_EQ(a.snapshot_ref().get(), b.snapshot_ref().get());
  EXPECT_EQ(&a.topology(), &b.topology());
  EXPECT_EQ(&a.routing(), &b.routing());

  SimConfig other = config;
  other.snapshot_cache = false;
  Simulation c(other);
  EXPECT_NE(a.snapshot_ref().get(), c.snapshot_ref().get());
}

TEST(SnapshotCacheTest, HitMissAccounting) {
  SnapshotCache& cache = SnapshotCache::instance();
  cache.clear();
  cache.reset_stats();
  const SimConfig config = small_base();

  { Simulation sim(config); }  // cold: topology miss + routing miss
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 2u);

  { Simulation sim(config); }  // warm: one routing-level hit
  { Simulation sim(config); }
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);

  SimConfig other = config;
  other.clos = topo::FoldedClosParams::scaled(2, 1, 2);
  { Simulation sim(other); }  // distinct key: two fresh misses
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.size(), 4u);

  SimConfig uncached = config;
  uncached.snapshot_cache = false;
  { Simulation sim(uncached); }  // bypasses the cache entirely
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(RunParallelInvariance, AnyThreadCountYieldsIdenticalOrderedResults) {
  SnapshotCache::instance().clear();
  // Mixed scenario classes and seeds → wildly different run lengths, the
  // case a static partition handles worst and work-stealing must not
  // reorder or cross-seed.
  std::vector<SimConfig> configs;
  for (SimConfig config : taxonomy_configs()) {
    config.seed = static_cast<std::uint64_t>(configs.size() + 1);
    configs.push_back(config);
    config.seed += 100;
    config.sim_time = config.sim_time / 2;
    configs.push_back(config);
  }
  const std::vector<SimResult> one = run_parallel(configs, 1);
  const std::vector<SimResult> two = run_parallel(configs, 2);
  const std::vector<SimResult> five = run_parallel(configs, 5);
  ASSERT_EQ(one.size(), configs.size());
  ASSERT_EQ(two.size(), configs.size());
  ASSERT_EQ(five.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const std::string what = "config " + std::to_string(i);
    expect_identical(one[i], two[i], what + " (1 vs 2 threads)");
    expect_identical(one[i], five[i], what + " (1 vs 5 threads)");
  }
}

TEST(RunParallelReport, AccountsEveryRunAndPublishesUtilization) {
  std::vector<SimConfig> configs(4, small_base());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].seed = static_cast<std::uint64_t>(i + 1);
  }
  SweepReport report;
  const std::vector<SimResult> results = run_parallel(configs, 2, &report);
  ASSERT_EQ(results.size(), 4u);
  ASSERT_EQ(report.workers.size(), 2u);
  std::uint64_t runs = 0;
  double busy = 0.0;
  for (const SweepWorkerStats& w : report.workers) {
    runs += w.runs;
    busy += w.busy_seconds;
  }
  EXPECT_EQ(runs, configs.size());
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(busy, 0.0);
  EXPECT_GT(report.utilization(), 0.0);
  EXPECT_LE(report.utilization(), 1.0 + 1e-9);

  telemetry::CounterRegistry registry;
  report.publish(registry);
  EXPECT_TRUE(registry.find("sweep.wall_us").valid());
  EXPECT_TRUE(registry.find("sweep.utilization_permille").valid());
  EXPECT_TRUE(registry.find("sweep.worker.0.busy_us").valid());
  EXPECT_TRUE(registry.find("sweep.worker.1.runs").valid());
  EXPECT_EQ(registry.value(registry.find("sweep.workers")), 2);
  const std::int64_t w0 = registry.value(registry.find("sweep.worker.0.runs"));
  const std::int64_t w1 = registry.value(registry.find("sweep.worker.1.runs"));
  EXPECT_EQ(w0 + w1, static_cast<std::int64_t>(configs.size()));
}

TEST(RunParallelReport, EmptySweepReportsNoWorkers) {
  SweepReport report;
  report.workers.push_back({1.0, 1});  // stale contents must be cleared
  EXPECT_TRUE(run_parallel({}, 4, &report).empty());
  EXPECT_TRUE(report.workers.empty());
  EXPECT_EQ(report.utilization(), 0.0);
}

}  // namespace
}  // namespace ibsim::sim
