#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

namespace ibsim::sim {
namespace {

/// A preset small enough for unit tests: 12-node fabric, 3 p-points.
ExperimentPreset tiny_preset() {
  ExperimentPreset preset = ExperimentPreset::quick();
  preset.clos = topo::FoldedClosParams::scaled(4, 2, 3);
  preset.static_sim_time = core::kMillisecond;
  preset.static_warmup = 250 * core::kMicrosecond;
  preset.p_values = {0.0, 0.5, 1.0};
  preset.lifetimes = {200 * core::kMicrosecond, 100 * core::kMicrosecond};
  preset.moving_min_sim_time = 600 * core::kMicrosecond;
  preset.moving_lifetimes_per_run = 3;
  return preset;
}

TEST(RunParallel, MatchesSerialExecution) {
  SimConfig config = tiny_preset().base_config();
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  std::vector<SimConfig> configs;
  for (int seed = 1; seed <= 4; ++seed) {
    configs.push_back(config);
    configs.back().seed = static_cast<std::uint64_t>(seed);
  }
  const std::vector<SimResult> parallel = run_parallel(configs, 4);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SimResult serial = run_sim(configs[i]);
    EXPECT_EQ(parallel[i].delivered_bytes, serial.delivered_bytes) << "config " << i;
    EXPECT_EQ(parallel[i].events_executed, serial.events_executed) << "config " << i;
  }
}

TEST(RunParallel, EmptyInputIsEmptyOutput) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
}

TEST(ResolveThreads, ExplicitCountWinsOverEnv) {
  ::setenv("IBSIM_THREADS", "7", 1);
  EXPECT_EQ(resolve_threads(3), 3);
  ::unsetenv("IBSIM_THREADS");
}

std::int32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<std::int32_t>(hw);
}

TEST(ResolveThreads, EnvOverridesHardwareDefaultClampedToHardware) {
  const std::int32_t hw = hardware_threads();
  ::setenv("IBSIM_THREADS", "2", 1);
  EXPECT_EQ(resolve_threads(0), 2 < hw ? 2 : hw);
  // A request beyond the core count is clamped, never oversubscribed.
  ::setenv("IBSIM_THREADS", "100000", 1);
  EXPECT_EQ(resolve_threads(0), hw);
  ::unsetenv("IBSIM_THREADS");
  EXPECT_EQ(resolve_threads(0), hw);
}

TEST(ResolveThreadsDeathTest, RejectsGarbageAndNonPositiveValues) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (const char* bad : {"banana", "", "3x", "-2", "0", "99999999999999999999"}) {
    ::setenv("IBSIM_THREADS", bad, 1);
    EXPECT_EXIT((void)resolve_threads(0), ::testing::ExitedWithCode(2), "IBSIM_THREADS")
        << "value '" << bad << "'";
  }
  ::unsetenv("IBSIM_THREADS");
}

TEST(RunParallel, HonoursThreadsEnv) {
  // A sweep pinned to one worker must still fill every slot correctly.
  ::setenv("IBSIM_THREADS", "1", 1);
  SimConfig config = tiny_preset().base_config();
  config.scenario.n_hotspots = 1;
  std::vector<SimConfig> configs(2, config);
  configs[1].seed = 2;
  const std::vector<SimResult> results = run_parallel(configs);
  ::unsetenv("IBSIM_THREADS");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].delivered_bytes, 0u);
  EXPECT_GT(results[1].delivered_bytes, 0u);
  EXPECT_NE(results[0].delivered_bytes, results[1].delivered_bytes);
}

TEST(WindyFigureHarness, SeriesShapesAndGrids) {
  const ExperimentPreset preset = tiny_preset();
  const WindyFigure fig = run_windy_figure(preset, 0.5);
  EXPECT_DOUBLE_EQ(fig.fraction_b, 0.5);
  for (const analysis::Series* s :
       {&fig.non_hotspot_off, &fig.non_hotspot_on, &fig.tmax, &fig.hotspot_off,
        &fig.hotspot_on, &fig.improvement}) {
    ASSERT_EQ(s->size(), preset.p_values.size());
    EXPECT_DOUBLE_EQ(s->x.front(), 0.0);
    EXPECT_DOUBLE_EQ(s->x.back(), 100.0);
  }
  // tmax is analytic and strictly decreasing in p.
  EXPECT_GT(fig.tmax.y.front(), fig.tmax.y.back());
  // Measured rates never exceed the sink ceiling.
  for (double y : fig.hotspot_on.y) EXPECT_LE(y, 13.7);
}

TEST(WindyFigureHarness, CsvFilesWritten) {
  const ExperimentPreset preset = tiny_preset();
  const WindyFigure fig = run_windy_figure(preset, 1.0);
  const std::string prefix = ::testing::TempDir() + "/windy_test";
  write_windy_csv(fig, prefix);
  for (const char* suffix :
       {"_a_nonhotspot.csv", "_b_hotspot.csv", "_c_improvement.csv"}) {
    std::ifstream in(prefix + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("p_pct"), std::string::npos);
    std::remove((prefix + suffix).c_str());
  }
}

TEST(Table2Harness, ProducesAllRows) {
  ExperimentPreset preset = tiny_preset();
  const Table2Result result = run_table2(preset);
  // Baseline rows: light uniform load (only 20% of 12 nodes active).
  EXPECT_GT(result.no_hotspot_off, 0.0);
  EXPECT_GT(result.no_hotspot_on, 0.0);
  // Hotspots saturate, non-hotspots collapse without CC.
  // 12 nodes / 8 hotspots leaves ~1 contributor each: near-saturated.
  EXPECT_GT(result.hotspot_rcv_off, 8.0);
  EXPECT_GT(result.total_throughput_on, 0.0);
  // The formatted table carries the paper's section structure.
  const std::string rendered = format_table2(result).render();
  EXPECT_NE(rendered.find("No hotspots, no CC"), std::string::npos);
  EXPECT_NE(rendered.find("Total network throughput"), std::string::npos);
}

TEST(MovingHarness, CurvesSpanTheLifetimeAxis) {
  const ExperimentPreset preset = tiny_preset();
  const MovingCurve curve = run_moving_silent(preset, 0.4);
  ASSERT_EQ(curve.off.size(), preset.lifetimes.size());
  ASSERT_EQ(curve.on.size(), preset.lifetimes.size());
  EXPECT_NE(curve.label.find("moving silent"), std::string::npos);
  // x axis in milliseconds, decreasing.
  EXPECT_DOUBLE_EQ(curve.off.x.front(), 0.2);
  EXPECT_DOUBLE_EQ(curve.off.x.back(), 0.1);
  for (double y : curve.on.y) EXPECT_GE(y, 0.0);
}

TEST(MovingHarness, WindyVariantLabelsP) {
  const ExperimentPreset preset = tiny_preset();
  const MovingCurve curve = run_moving_windy(preset, 0.6);
  EXPECT_NE(curve.label.find("p=60%"), std::string::npos);
  EXPECT_EQ(curve.off.size(), preset.lifetimes.size());
}

TEST(Presets, FromEnvHonoursForceFlag) {
  const ExperimentPreset forced = ExperimentPreset::from_env(/*force_full=*/true);
  EXPECT_EQ(forced.ccti_increase, ExperimentPreset::paper().ccti_increase);
  EXPECT_EQ(forced.static_sim_time, ExperimentPreset::paper().static_sim_time);
}

}  // namespace
}  // namespace ibsim::sim
