// Allocation-count regression guard for the fabric hot path.
//
// The PR 7 layout refactor (SoA port/VL banks + the packet arena) promises
// that once a simulation reaches steady state, the per-packet path performs
// ZERO heap allocations: packets recycle through the arena freelist, queues
// are intrusive, arbiter tables are inline, and every hot vector is
// reserved at build time. This binary overrides the global allocator to
// count every operator-new across a steady-state window of >100k events
// and pins the count to a small constant — the only allocations permitted
// are calendar-wheel buckets setting a new occupancy record, which is a
// geometric O(log) process over the whole run, not O(packets). The packet
// arena itself must not grow at all.
//
// Kept in its own test binary so the counting allocator cannot interact
// with any other suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/simulation.hpp"
#include "topo/builders.hpp"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace ibsim::sim {
namespace {

SimConfig hotspot_config(bool cc_on) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, 3);
  config.sim_time = 20 * core::kMillisecond;
  config.warmup = core::kMillisecond;
  config.seed = 1;
  config.cc = cc_on ? ib::CcParams::paper_table1() : ib::CcParams::disabled();
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  config.scenario.n_hotspots = 1;
  return config;
}

/// Warm a simulation past its transient, then count heap allocations over
/// a further simulate window.
struct WindowCounts {
  std::uint64_t heap_allocs;
  std::uint64_t arena_growths;
  std::uint64_t events;
};

WindowCounts run_and_count(Simulation& sim, core::Time warm_until, core::Time measure_until) {
  sim.fabric().start(sim.sched());
  sim.sched().run_until(warm_until);
  const std::uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  const std::uint64_t growths_before = sim.fabric().arena().growths();
  const std::uint64_t events = sim.sched().run_until(measure_until);
  return {g_heap_allocs.load(std::memory_order_relaxed) - allocs_before,
          sim.fabric().arena().growths() - growths_before, events};
}

// By 10ms of simulated hotspot traffic every hot vector has seen its
// working-set peak; the remaining 10ms window executes >100k events and
// may allocate at most a handful of times (a wheel bucket occasionally
// breaking its occupancy record). 64 is ~3 orders of magnitude below
// one-per-packet, so any per-packet allocation sneaking back into the
// path blows through it immediately.
constexpr std::uint64_t kWindowAllocBudget = 64;

TEST(AllocAudit, SteadyStateWindowHasNoPerPacketAllocations) {
  // Hotspot congestion with CC enabled: packet churn, FECN/BECN/CNP
  // traffic, CC timers, credit coalescing — the full hot path.
  Simulation sim(hotspot_config(/*cc_on=*/true));
  const WindowCounts counts =
      run_and_count(sim, 10 * core::kMillisecond, 20 * core::kMillisecond);
  ASSERT_GT(counts.events, 100000u) << "window too quiet to prove anything";
  EXPECT_LE(counts.heap_allocs, kWindowAllocBudget)
      << "the steady-state path allocates per packet again ("
      << counts.heap_allocs << " allocations over " << counts.events
      << " events)";
  EXPECT_EQ(counts.arena_growths, 0u) << "the packet arena grew mid-run";
}

TEST(AllocAudit, SteadyStateWindowHasNoPerPacketAllocationsWithoutCc) {
  // CC off removes throttling, so offered load — and packet churn — is
  // strictly higher; the zero-per-packet property must hold regardless.
  Simulation sim(hotspot_config(/*cc_on=*/false));
  const WindowCounts counts =
      run_and_count(sim, 10 * core::kMillisecond, 20 * core::kMillisecond);
  ASSERT_GT(counts.events, 100000u);
  EXPECT_LE(counts.heap_allocs, kWindowAllocBudget)
      << counts.heap_allocs << " allocations over " << counts.events
      << " events";
  EXPECT_EQ(counts.arena_growths, 0u);
}

TEST(AllocAudit, ArenaPreSizedForTopology) {
  // Fabric construction reserves the arena from the node count, so the
  // first packets never trigger growth either.
  Simulation sim(hotspot_config(/*cc_on=*/true));
  EXPECT_GE(sim.fabric().arena().capacity(),
            static_cast<std::size_t>(sim.topology().node_count()) * 16u);
  EXPECT_EQ(sim.fabric().arena().live(), 0);
}

}  // namespace
}  // namespace ibsim::sim
