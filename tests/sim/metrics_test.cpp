#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "ib/packet.hpp"

namespace ibsim::sim {
namespace {

ib::Packet make_packet(ib::NodeId src, std::int32_t bytes, core::Time injected) {
  ib::Packet pkt;
  pkt.src = src;
  pkt.bytes = bytes;
  pkt.injected_at = injected;
  return pkt;
}

TEST(Metrics, PerNodeRates) {
  MetricsCollector m(4, 1000.0);
  m.reset_window(0);
  const std::int64_t bytes = core::capacity_bytes(5.0, core::kMillisecond);
  ib::Packet pkt = make_packet(1, static_cast<std::int32_t>(bytes), 0);
  m.on_delivered(2, pkt, 100);
  EXPECT_NEAR(m.node_gbps(2, core::kMillisecond), 5.0, 0.01);
  EXPECT_EQ(m.node_gbps(0, core::kMillisecond), 0.0);
}

TEST(Metrics, HotspotAggregation) {
  MetricsCollector m(4, 1000.0);
  m.set_hotspots({0});
  m.reset_window(0);
  ib::Packet pkt = make_packet(3, 1000, 0);
  m.on_delivered(0, pkt, 10);  // hotspot
  m.on_delivered(1, pkt, 10);
  m.on_delivered(2, pkt, 10);
  const core::Time now = core::kMicrosecond;
  const double one_node = core::rate_gbps(1000, now);
  EXPECT_NEAR(m.avg_hotspot_gbps(now), one_node, 1e-9);
  EXPECT_NEAR(m.avg_non_hotspot_gbps(now), 2.0 * one_node / 3.0, 1e-9);
  EXPECT_NEAR(m.avg_all_gbps(now), 3.0 * one_node / 4.0, 1e-9);
  EXPECT_NEAR(m.total_throughput_gbps(now), 3.0 * one_node, 1e-9);
}

TEST(Metrics, NoHotspotsConfigured) {
  MetricsCollector m(2, 1000.0);
  m.reset_window(0);
  EXPECT_EQ(m.avg_hotspot_gbps(100), 0.0);
  ib::Packet pkt = make_packet(0, 500, 0);
  m.on_delivered(1, pkt, 10);
  EXPECT_GT(m.avg_non_hotspot_gbps(core::kMicrosecond), 0.0);
}

TEST(Metrics, ResetWindowDiscardsHistory) {
  MetricsCollector m(2, 1000.0);
  m.reset_window(0);
  ib::Packet pkt = make_packet(0, 99999, 0);
  m.on_delivered(1, pkt, 10);
  m.reset_window(core::kMicrosecond);
  EXPECT_EQ(m.delivered_bytes(), 0);
  EXPECT_EQ(m.node_gbps(1, 2 * core::kMicrosecond), 0.0);
  EXPECT_EQ(m.latency_us().total(), 0u);
}

TEST(Metrics, LatencyHistogramInMicroseconds) {
  MetricsCollector m(2, 1000.0);
  m.reset_window(0);
  ib::Packet pkt = make_packet(0, 100, 0);
  m.on_delivered(1, pkt, 5 * core::kMicrosecond);
  EXPECT_EQ(m.latency_us().total(), 1u);
  EXPECT_NEAR(m.latency_us().quantile(0.5), 5.0, 4.0);
}

TEST(Metrics, JainFairnessOverNonHotspots) {
  MetricsCollector m(3, 1000.0);
  m.set_hotspots({0});
  m.reset_window(0);
  ib::Packet pkt = make_packet(0, 1000, 0);
  // Equal delivery to both non-hotspots: perfectly fair.
  m.on_delivered(1, pkt, 10);
  m.on_delivered(2, pkt, 10);
  EXPECT_NEAR(m.jain_non_hotspot(core::kMicrosecond), 1.0, 1e-12);
  // Skew it.
  m.on_delivered(1, pkt, 20);
  m.on_delivered(1, pkt, 30);
  EXPECT_LT(m.jain_non_hotspot(core::kMicrosecond), 1.0);
}

TEST(Metrics, CountsPacketsAndBytes) {
  MetricsCollector m(2, 1000.0);
  m.reset_window(0);
  ib::Packet pkt = make_packet(0, 2048, 0);
  m.on_delivered(1, pkt, 10);
  m.on_delivered(1, pkt, 20);
  EXPECT_EQ(m.delivered_bytes(), 4096);
  EXPECT_EQ(m.delivered_packets(), 2u);
}

TEST(Metrics, PerClassLatencySplit) {
  MetricsCollector m(3, 1000.0);
  m.set_hotspots({0});
  m.reset_window(0);
  ib::Packet pkt = make_packet(2, 100, 0);
  m.on_delivered(0, pkt, 5 * core::kMicrosecond);   // hotspot
  m.on_delivered(1, pkt, 50 * core::kMicrosecond);  // victim
  m.on_delivered(1, pkt, 60 * core::kMicrosecond);
  EXPECT_EQ(m.hotspot_latency_us().total(), 1u);
  EXPECT_EQ(m.non_hotspot_latency_us().total(), 2u);
  EXPECT_EQ(m.latency_us().total(), 3u);
  EXPECT_GT(m.non_hotspot_latency_us().quantile(0.5), m.hotspot_latency_us().quantile(0.5));
}

TEST(Metrics, SetHotspotsReplacesPrevious) {
  MetricsCollector m(4, 1000.0);
  m.set_hotspots({0, 1});
  m.set_hotspots({2});
  m.reset_window(0);
  ib::Packet pkt = make_packet(0, 1000, 0);
  m.on_delivered(0, pkt, 10);
  // Node 0 is no longer a hotspot.
  EXPECT_EQ(m.avg_hotspot_gbps(core::kMicrosecond), 0.0);
  EXPECT_GT(m.avg_non_hotspot_gbps(core::kMicrosecond), 0.0);
}

}  // namespace
}  // namespace ibsim::sim
