#include "sim/cli.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ibsim::sim {
namespace {

bool parse(Cli& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()),
                   const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli("test");
  cli.add_int("count", 42, "a count");
  cli.add_double("rate", 1.5, "a rate");
  cli.add_string("name", "abc", "a name");
  cli.add_flag("verbose", "a flag");
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_EQ(cli.get_string("name"), "abc");
  EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, EqualsSyntax) {
  Cli cli("test");
  cli.add_int("count", 0, "");
  cli.add_double("rate", 0, "");
  cli.add_string("name", "", "");
  EXPECT_TRUE(parse(cli, {"--count=7", "--rate=2.25", "--name=xyz"}));
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.25);
  EXPECT_EQ(cli.get_string("name"), "xyz");
}

TEST(Cli, SpaceSyntax) {
  Cli cli("test");
  cli.add_int("count", 0, "");
  EXPECT_TRUE(parse(cli, {"--count", "9"}));
  EXPECT_EQ(cli.get_int("count"), 9);
}

TEST(Cli, FlagsSet) {
  Cli cli("test");
  cli.add_flag("full", "");
  EXPECT_TRUE(parse(cli, {"--full"}));
  EXPECT_TRUE(cli.flag("full"));
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(Cli, NegativeNumbers) {
  Cli cli("test");
  cli.add_int("offset", 0, "");
  cli.add_double("delta", 0, "");
  EXPECT_TRUE(parse(cli, {"--offset=-5", "--delta=-0.5"}));
  EXPECT_EQ(cli.get_int("offset"), -5);
  EXPECT_DOUBLE_EQ(cli.get_double("delta"), -0.5);
}

TEST(CliDeath, UnknownOptionExits) {
  Cli cli("test");
  EXPECT_DEATH(parse(cli, {"--nope"}), "unknown option");
}

TEST(CliDeath, BadIntegerExits) {
  Cli cli("test");
  cli.add_int("count", 0, "");
  EXPECT_DEATH(parse(cli, {"--count=abc"}), "integer");
}

TEST(CliDeath, MissingValueExits) {
  Cli cli("test");
  cli.add_int("count", 0, "");
  EXPECT_DEATH(parse(cli, {"--count"}), "needs a value");
}

TEST(CliDeath, FlagWithValueExits) {
  Cli cli("test");
  cli.add_flag("full", "");
  EXPECT_DEATH(parse(cli, {"--full=1"}), "does not take");
}

TEST(CliDeath, PositionalArgumentExits) {
  Cli cli("test");
  EXPECT_DEATH(parse(cli, {"positional"}), "unexpected");
}

TEST(CliDeath, WrongTypeQueryAborts) {
  Cli cli("test");
  cli.add_int("count", 0, "");
  EXPECT_TRUE(parse(cli, {}));
  EXPECT_DEATH((void)cli.get_double("count"), "wrong type");
}

}  // namespace
}  // namespace ibsim::sim
