#include "sim/config_file.hpp"

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ibsim::sim {
namespace {

TEST(ConfigFile, AppliesEveryCategory) {
  SimConfig config;
  const std::string err = apply_config_text(R"(
# topology
topology = mesh
mesh_rows = 5
mesh_cols = 6
mesh_nodes = 2

# traffic
fraction_b = 0.5
p_percent = 60
hotspots = 3
lifetime_us = 500
inject_gbps = 10

# congestion control
threshold_weight = 8
ccti_increase = 2
ccti_timer = 75
cct_fill = linear

# fabric
wire_gbps = 32
hca_inject_gbps = 27
hca_drain_gbps = 27.2
switch_ibuf_bytes = 65536

# run
sim_time_us = 2500
seed = 99
)",
                                            &config);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(config.topology, TopologyKind::Mesh2D);
  EXPECT_EQ(config.mesh_rows, 5);
  EXPECT_EQ(config.mesh_cols, 6);
  EXPECT_EQ(config.node_count(), 60);
  EXPECT_DOUBLE_EQ(config.scenario.fraction_b, 0.5);
  EXPECT_DOUBLE_EQ(config.scenario.p, 0.6);
  EXPECT_EQ(config.scenario.n_hotspots, 3);
  EXPECT_EQ(config.scenario.hotspot_lifetime, 500 * core::kMicrosecond);
  EXPECT_DOUBLE_EQ(config.scenario.capacity_gbps, 10.0);
  EXPECT_EQ(config.cc.threshold_weight, 8);
  EXPECT_EQ(config.cc.ccti_increase, 2);
  EXPECT_EQ(config.cc.ccti_timer, 75);
  EXPECT_EQ(config.cc.cct_fill, ib::CctFill::Linear);
  EXPECT_DOUBLE_EQ(config.fabric.wire_gbps, 32.0);
  EXPECT_EQ(config.fabric.switch_ibuf_data_bytes, 65536);
  EXPECT_EQ(config.sim_time, 2500 * core::kMicrosecond);
  EXPECT_EQ(config.seed, 99u);
}

TEST(ConfigFile, DefaultsUntouchedWhenEmpty) {
  SimConfig config;
  const SimConfig reference;
  EXPECT_TRUE(apply_config_text("", &config).empty());
  EXPECT_TRUE(apply_config_text("# only comments\n\n", &config).empty());
  EXPECT_EQ(config.node_count(), reference.node_count());
  EXPECT_EQ(config.cc.ccti_timer, reference.cc.ccti_timer);
}

TEST(ConfigFile, LifetimeZeroMeansStatic) {
  SimConfig config;
  config.scenario.hotspot_lifetime = core::kMillisecond;
  EXPECT_TRUE(apply_config_text("lifetime_us = 0\n", &config).empty());
  EXPECT_EQ(config.scenario.hotspot_lifetime, core::kTimeNever);
}

TEST(ConfigFile, BooleansFromIntegers) {
  SimConfig config;
  EXPECT_TRUE(apply_config_text("cc_enabled = 0\nsl_level = 1\ncut_through = 0\n",
                                &config)
                  .empty());
  EXPECT_FALSE(config.cc.enabled);
  EXPECT_TRUE(config.cc.sl_level);
  EXPECT_FALSE(config.fabric.cut_through);
}

TEST(ConfigFile, ReportsUnknownKeyWithLine) {
  SimConfig config;
  const std::string err = apply_config_text("seed = 1\nbogus = 2\n", &config);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(ConfigFile, SuggestsNearbyKeyForTypos) {
  SimConfig config;
  // One transposition away from 'hotspots'.
  std::string err = apply_config_text("hotspost = 3\n", &config);
  EXPECT_NE(err.find("unknown key 'hotspost'"), std::string::npos) << err;
  EXPECT_NE(err.find("did you mean 'hotspots'"), std::string::npos) << err;
  // A dropped character still suggests.
  err = apply_config_text("sim_time_u = 100\n", &config);
  EXPECT_NE(err.find("did you mean 'sim_time_us'"), std::string::npos) << err;
  // Nothing near: no far-fetched suggestion.
  err = apply_config_text("quux_frobnicate = 1\n", &config);
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_EQ(err.find("did you mean"), std::string::npos) << err;
}

TEST(ConfigFile, ResultStoreKeyApplies) {
  SimConfig config;
  EXPECT_TRUE(apply_config_text("result_store = /var/cache/ibsim\n", &config).empty());
  EXPECT_EQ(config.result_store, "/var/cache/ibsim");
  // And a typo of it gets the suggestion.
  const std::string err = apply_config_text("result_stor = x\n", &config);
  EXPECT_NE(err.find("did you mean 'result_store'"), std::string::npos) << err;
}

TEST(ConfigFile, ThreadsAndShardsKeysApply) {
  // One knob surface: the config-file `threads` key feeds both sweep
  // workers and intra-run shard workers; `shards` picks the intra-run
  // partition count (0 = derive from the resolved thread count).
  SimConfig config;
  EXPECT_TRUE(apply_config_text("threads = 4\nshards = 2\n", &config).empty());
  EXPECT_EQ(config.threads, 4);
  EXPECT_EQ(config.shards, 2);
  EXPECT_TRUE(apply_config_text("shards = 0\n", &config).empty());
  EXPECT_EQ(config.shards, 0);
  // Strict parse: garbage and negative counts are hard errors (the
  // IBSIM_THREADS exit-2 discipline), never silent fallbacks.
  EXPECT_NE(apply_config_text("threads = -2\n", &config).find("non-negative"),
            std::string::npos);
  EXPECT_NE(apply_config_text("shards = many\n", &config).find("non-negative"),
            std::string::npos);
  EXPECT_NE(apply_config_text("thread = 4\n", &config).find("did you mean 'threads'"),
            std::string::npos);
}

TEST(ConfigFile, ReportsMalformedLine) {
  SimConfig config;
  EXPECT_NE(apply_config_text("no equals sign\n", &config).find("line 1"),
            std::string::npos);
  EXPECT_NE(apply_config_text("seed =\n", &config).find("empty"), std::string::npos);
  EXPECT_NE(apply_config_text("seed = abc\n", &config).find("integer"), std::string::npos);
  EXPECT_NE(apply_config_text("topology = ring\n", &config).find("unknown topology"),
            std::string::npos);
}

TEST(ConfigFile, CcAlgoKeyApplies) {
  SimConfig config;
  EXPECT_TRUE(apply_config_text("cc_algo = dcqcn\n", &config).empty());
  EXPECT_EQ(config.cc_algo, "dcqcn");
  EXPECT_TRUE(apply_config_text("cc_algo = none\n", &config).empty());
  EXPECT_EQ(config.cc_algo, "none");
}

TEST(ConfigFile, UnknownCcAlgoListsValidNames) {
  SimConfig config;
  const std::string err = apply_config_text("seed = 1\ncc_algo = tcp_reno\n", &config);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("tcp_reno"), std::string::npos);
  EXPECT_NE(err.find("valid:"), std::string::npos);
  // The valid set enumerates every registered algorithm.
  EXPECT_NE(err.find("iba_a10"), std::string::npos);
  EXPECT_NE(err.find("dcqcn"), std::string::npos);
  EXPECT_NE(err.find("aimd"), std::string::npos);
  EXPECT_NE(err.find("none"), std::string::npos);
  // And the config keeps its default.
  EXPECT_EQ(config.cc_algo, "iba_a10");
}

TEST(ConfigFile, DuplicateKeyRejectedWithBothLines) {
  SimConfig config;
  const std::string err = apply_config_text("seed = 1\nhotspots = 2\nseed = 3\n", &config);
  EXPECT_NE(err.find("line 3"), std::string::npos);
  EXPECT_NE(err.find("duplicate key 'seed'"), std::string::npos);
  EXPECT_NE(err.find("line 1"), std::string::npos);
}

TEST(ConfigFile, SeparateApplicationsMayRepeatKeys) {
  // Duplicate detection is per document: layering a second config file
  // (or CLI-style overrides) on top stays legal.
  SimConfig config;
  EXPECT_TRUE(apply_config_text("seed = 1\n", &config).empty());
  EXPECT_TRUE(apply_config_text("seed = 2\n", &config).empty());
  EXPECT_EQ(config.seed, 2u);
}

TEST(ConfigFile, WorkloadKeysApply) {
  SimConfig config;
  const std::string err = apply_config_text(R"(
workload = incast
workload_ranks = 12
workload_bytes = 131072
workload_iters = 3
workload_compute_us = 5
workload_background = 0
)",
                                            &config);
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_TRUE(config.workload.active());
  EXPECT_EQ(config.workload.name, "incast");
  EXPECT_EQ(config.workload.ranks, 12);
  EXPECT_EQ(config.workload.message_bytes, 131072);
  EXPECT_EQ(config.workload.iterations, 3);
  EXPECT_EQ(config.workload.compute, 5 * core::kMicrosecond);
  EXPECT_FALSE(config.workload.background_uniform);
}

TEST(ConfigFile, UnknownWorkloadListsValidNames) {
  SimConfig config;
  const std::string err = apply_config_text("seed = 1\nworkload = lammps\n", &config);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("lammps"), std::string::npos);
  EXPECT_NE(err.find("valid:"), std::string::npos);
  EXPECT_NE(err.find("incast"), std::string::npos);
  EXPECT_NE(err.find("ring_allreduce"), std::string::npos);
  EXPECT_FALSE(config.workload.active());
}

TEST(ConfigFile, WorkloadFileKeyAccepted) {
  SimConfig config;
  EXPECT_TRUE(
      apply_config_text("workload = file\nworkload_file = w.wl\n", &config).empty());
  EXPECT_EQ(config.workload.name, "file");
  EXPECT_EQ(config.workload.file, "w.wl");
}

TEST(ConfigFile, CommentsAndWhitespaceTolerated) {
  SimConfig config;
  EXPECT_TRUE(
      apply_config_text("   seed=42   # trailing comment\n\t hotspots\t=\t7\n", &config)
          .empty());
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.scenario.n_hotspots, 7);
}

TEST(ConfigFile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ibsim_config_test.conf";
  {
    std::ofstream out(path);
    out << "topology = dumbbell\ndumbbell_nodes = 6\nseed = 5\n";
  }
  SimConfig config;
  EXPECT_TRUE(apply_config_file(path, &config).empty());
  EXPECT_EQ(config.topology, TopologyKind::Dumbbell);
  EXPECT_EQ(config.node_count(), 12);
  std::remove(path.c_str());
}

TEST(ConfigFile, MissingFileReported) {
  SimConfig config;
  EXPECT_NE(apply_config_file("/nonexistent/ibsim.conf", &config).find("cannot open"),
            std::string::npos);
}

TEST(ConfigFile, LoadedConfigRunsEndToEnd) {
  SimConfig config;
  ASSERT_TRUE(apply_config_text(R"(
topology = single
single_nodes = 6
fraction_c = 0.5
hotspots = 1
sim_time_us = 500
warmup_us = 100
)",
                                &config)
                  .empty());
  const SimResult r = run_sim(config);
  EXPECT_GT(r.delivered_bytes, 0);
}

}  // namespace
}  // namespace ibsim::sim
