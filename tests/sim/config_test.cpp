#include "sim/sim_config.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace ibsim::sim {
namespace {

TEST(SimConfig, NodeCountPerTopology) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  EXPECT_EQ(config.node_count(), 648);
  config.topology = TopologyKind::SingleSwitch;
  config.single_switch_nodes = 12;
  EXPECT_EQ(config.node_count(), 12);
  config.topology = TopologyKind::LinearChain;
  config.chain_switches = 3;
  config.chain_nodes_per_switch = 4;
  EXPECT_EQ(config.node_count(), 12);
  config.topology = TopologyKind::Dumbbell;
  config.dumbbell_nodes_per_side = 5;
  EXPECT_EQ(config.node_count(), 10);
}

TEST(SimConfig, DescribeMentionsKeyFacts) {
  SimConfig config;
  const std::string desc = config.describe();
  EXPECT_NE(desc.find("folded-clos"), std::string::npos);
  EXPECT_NE(desc.find("648"), std::string::npos);
  EXPECT_NE(desc.find("CC on"), std::string::npos);
  EXPECT_NE(desc.find("iba_a10"), std::string::npos);
}

TEST(SimConfig, DescribeNamesTheSelectedAlgorithm) {
  SimConfig config;
  config.cc_algo = "dcqcn";
  EXPECT_NE(config.describe().find("CC on (dcqcn)"), std::string::npos);
  config.cc.enabled = false;
  EXPECT_NE(config.describe().find("CC off"), std::string::npos);
  EXPECT_EQ(config.describe().find("dcqcn"), std::string::npos);
}

TEST(SimConfig, TopologyNames) {
  EXPECT_STREQ(topology_name(TopologyKind::SingleSwitch), "single-switch");
  EXPECT_STREQ(topology_name(TopologyKind::FoldedClos), "folded-clos");
  EXPECT_STREQ(topology_name(TopologyKind::LinearChain), "linear-chain");
  EXPECT_STREQ(topology_name(TopologyKind::Dumbbell), "dumbbell");
}

TEST(SimConfig, DefaultsMatchPaperSetup) {
  SimConfig config;
  EXPECT_EQ(config.clos.node_count(), 648);
  EXPECT_TRUE(config.cc.enabled);
  EXPECT_EQ(config.cc.ccti_timer, 150);
  EXPECT_DOUBLE_EQ(config.fabric.hca_inject_gbps, 13.5);
  EXPECT_DOUBLE_EQ(config.fabric.hca_drain_gbps, 13.6);
}

TEST(ExperimentPreset, QuickScalesLoopConsistently) {
  const ExperimentPreset quick = ExperimentPreset::quick();
  const ExperimentPreset paper = ExperimentPreset::paper();
  // The quick preset's CCTI loop runs 4x faster...
  EXPECT_EQ(quick.ccti_increase, 4 * paper.ccti_increase);
  EXPECT_NEAR(static_cast<double>(paper.ccti_timer) / quick.ccti_timer, 4.0, 0.1);
  // ...and its lifetime axis is compressed by the same factor.
  ASSERT_EQ(quick.lifetimes.size(), paper.lifetimes.size());
  for (std::size_t i = 0; i < quick.lifetimes.size(); ++i) {
    EXPECT_EQ(paper.lifetimes[i], 4 * quick.lifetimes[i]);
  }
}

TEST(ExperimentPreset, PaperUsesTable1Values) {
  const ExperimentPreset paper = ExperimentPreset::paper();
  EXPECT_EQ(paper.ccti_increase, 1);
  EXPECT_EQ(paper.ccti_timer, 150);
  const SimConfig config = paper.base_config();
  EXPECT_EQ(config.cc.ccti_increase, 1);
  EXPECT_EQ(config.cc.ccti_limit, 127);
}

TEST(ExperimentPreset, BaseConfigCarriesTiming) {
  ExperimentPreset preset = ExperimentPreset::quick();
  preset.seed = 77;
  const SimConfig config = preset.base_config();
  EXPECT_EQ(config.sim_time, preset.static_sim_time);
  EXPECT_EQ(config.warmup, preset.static_warmup);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_EQ(config.topology, TopologyKind::FoldedClos);
}

TEST(ExperimentPreset, PValuesCoverPaperAxis) {
  const ExperimentPreset preset = ExperimentPreset::quick();
  ASSERT_FALSE(preset.p_values.empty());
  EXPECT_DOUBLE_EQ(preset.p_values.front(), 0.0);
  EXPECT_DOUBLE_EQ(preset.p_values.back(), 1.0);
}

}  // namespace
}  // namespace ibsim::sim
