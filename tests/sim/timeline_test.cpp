#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig timeline_config(bool cc_on) {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(4, 2, 3);  // 12 nodes
  config.sim_time = core::kMillisecond;
  config.warmup = 0;
  config.cc.enabled = cc_on;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  return config;
}

TEST(Timeline, SamplesAtTheConfiguredInterval) {
  Simulation sim(timeline_config(true));
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 100 * core::kMicrosecond);
  timeline.install(sim.sched());
  (void)sim.run();
  ASSERT_EQ(timeline.samples().size(), 10u);
  for (std::size_t i = 0; i < timeline.samples().size(); ++i) {
    EXPECT_EQ(timeline.samples()[i].at,
              static_cast<core::Time>(i + 1) * 100 * core::kMicrosecond);
  }
}

TEST(Timeline, RatesMatchFinalMetrics) {
  Simulation sim(timeline_config(false));
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 100 * core::kMicrosecond);
  timeline.install(sim.sched());
  const SimResult r = sim.run();
  // The interval rates integrate back to the run's delivered bytes:
  // sum(rate_i * interval) == total delivered.
  double integrated = 0.0;
  for (const auto& s : timeline.samples()) {
    integrated += s.total_gbps * 100e-6 / 8e-9;  // Gb/s x 100us in bytes
  }
  EXPECT_NEAR(integrated, static_cast<double>(r.delivered_bytes),
              static_cast<double>(r.delivered_bytes) * 0.001 + 10.0);
}

TEST(Timeline, CongestionTreeVisibleWithoutCc) {
  Simulation sim(timeline_config(false));
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 50 * core::kMicrosecond);
  timeline.install(sim.sched());
  (void)sim.run();
  // The tree builds and stays: queued bytes grow to a sustained plateau.
  EXPECT_GT(timeline.peak_queued_bytes(), 100 * 1024);
  EXPECT_GT(timeline.samples().back().queued_bytes, 100 * 1024);
  // Without CC no flow is ever throttled.
  for (const auto& s : timeline.samples()) {
    EXPECT_EQ(s.throttled_flows, 0);
    EXPECT_EQ(s.fecn_marked, 0u);
  }
}

TEST(Timeline, CcPrunesTheTree) {
  SimConfig config = timeline_config(true);
  config.sim_time = 3 * core::kMillisecond;
  Simulation sim(config);
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 100 * core::kMicrosecond);
  timeline.install(sim.sched());
  (void)sim.run();
  // The tree grows, marking fires, throttles accumulate, and the tree is
  // pruned well below its peak by the end of the run.
  EXPECT_GT(timeline.peak_queued_bytes(), 50 * 1024);
  EXPECT_LT(timeline.samples().back().queued_bytes, timeline.peak_queued_bytes() / 2);
  bool saw_marks = false;
  bool saw_throttled = false;
  for (const auto& s : timeline.samples()) {
    saw_marks |= s.fecn_marked > 0;
    saw_throttled |= s.throttled_flows > 0;
  }
  EXPECT_TRUE(saw_marks);
  EXPECT_TRUE(saw_throttled);
  EXPECT_GT(timeline.samples().back().mean_ccti, 0.0);
}

TEST(Timeline, CsvHasHeaderAndRows) {
  Simulation sim(timeline_config(true));
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 200 * core::kMicrosecond);
  timeline.install(sim.sched());
  (void)sim.run();
  const std::string path = ::testing::TempDir() + "/timeline_test.csv";
  timeline.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("t_us,total_gbps"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
  std::remove(path.c_str());
}

TEST(TimelineDeath, DoubleInstallAborts) {
  Simulation sim(timeline_config(true));
  TimelineSampler timeline(&sim.fabric(), &sim.metrics(), 100 * core::kMicrosecond);
  timeline.install(sim.sched());
  EXPECT_DEATH(timeline.install(sim.sched()), "twice");
}

}  // namespace
}  // namespace ibsim::sim
