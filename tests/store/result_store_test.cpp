#include "store/result_store.hpp"

#include "sim/experiment.hpp"
#include "store/key.hpp"
#include "store/version.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace ibsim::store {
namespace {

namespace fs = std::filesystem;

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ibsim_store_test_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    StoreRegistry::instance().clear();
  }

  std::string dir_string() const { return dir_.string(); }

  static sim::SimConfig small_config(std::uint64_t seed) {
    sim::SimConfig config;
    config.topology = sim::TopologyKind::SingleSwitch;
    config.single_switch_nodes = 6;
    config.sim_time = 200 * core::kMicrosecond;
    config.warmup = 0;
    config.scenario.n_hotspots = 1;
    config.seed = seed;
    return config;
  }

  fs::path dir_;
};

TEST_F(ResultStoreTest, PutGetRoundTripWithProvenance) {
  ResultStore store({dir_string(), 0});
  ASSERT_TRUE(store.error().empty()) << store.error();

  const sim::SimConfig config = small_config(1);
  const sim::SimResult result = sim::run_sim(config);
  const std::string key = run_key(config);

  EXPECT_FALSE(store.contains(key));
  store.put(key, canonical_config_text(config), result, 0.25);
  EXPECT_TRUE(store.contains(key));
  EXPECT_EQ(store.entries(), 1u);

  RunRecord record;
  ASSERT_TRUE(store.get_record(key, &record));
  EXPECT_EQ(record.key, key);
  EXPECT_EQ(record.config_text, canonical_config_text(config));
  EXPECT_EQ(record.provenance.code_version, code_version());
  EXPECT_DOUBLE_EQ(record.provenance.wall_seconds, 0.25);
  EXPECT_EQ(record.result.delivered_bytes, result.delivered_bytes);
  EXPECT_EQ(record.result.events_executed, result.events_executed);

  // A second store on the same directory sees the record (cross-process
  // sharing is just cross-instance sharing of the same tree).
  ResultStore reopened({dir_string(), 0});
  sim::SimResult cached;
  EXPECT_TRUE(reopened.get(key, &cached));
  EXPECT_EQ(cached.delivered_bytes, result.delivered_bytes);
}

TEST_F(ResultStoreTest, MissesCountAndKeysList) {
  ResultStore store({dir_string(), 0});
  sim::SimResult result;
  EXPECT_FALSE(store.get("0000000000000000000000000000000000000000000000000000000000000000",
                         &result));
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 0u);

  const sim::SimConfig config = small_config(1);
  const std::string key = run_key(config);
  store.put(key, canonical_config_text(config), sim::run_sim(config), 0.0);
  EXPECT_TRUE(store.get(key, &result));
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.keys(), std::vector<std::string>{key});
}

TEST_F(ResultStoreTest, TornRecordReadsAsMiss) {
  ResultStore store({dir_string(), 0});
  const sim::SimConfig config = small_config(1);
  const std::string key = run_key(config);
  store.put(key, canonical_config_text(config), sim::run_sim(config), 0.0);

  // Corrupt the record in place — a torn write from a crashed producer.
  const fs::path object = dir_ / "objects" / key.substr(0, 2) / key;
  ASSERT_TRUE(fs::exists(object));
  {
    std::ofstream out(object, std::ios::trunc);
    out << "ibsim-store-record-v1\ngarbage";
  }
  sim::SimResult result;
  EXPECT_FALSE(store.get(key, &result));
  EXPECT_GE(store.stats().bad_records, 1u);

  // The next producer overwrites it and it reads cleanly again.
  store.put(key, canonical_config_text(config), sim::run_sim(config), 0.0);
  EXPECT_TRUE(store.get(key, &result));
}

TEST_F(ResultStoreTest, EvictionKeepsStoreBounded) {
  ResultStore store({dir_string(), 2});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const sim::SimConfig config = small_config(seed);
    store.put(run_key(config), canonical_config_text(config), sim::run_sim(config), 0.0);
  }
  EXPECT_LE(store.entries(), 2u);
  EXPECT_GE(store.stats().evictions, 2u);
}

TEST_F(ResultStoreTest, UnusableDirectoryDegradesToNoCache) {
  // A file where the directory should be: creation fails, and the store
  // must degrade to "no cache" rather than break the sweep.
  { std::ofstream out(dir_string()); }
  ResultStore store({dir_string() + "/sub", 0});
  EXPECT_FALSE(store.error().empty());
  const sim::SimConfig config = small_config(1);
  sim::SimResult result;
  EXPECT_FALSE(store.get(run_key(config), &result));
  store.put(run_key(config), canonical_config_text(config), sim::run_sim(config), 0.0);
  EXPECT_FALSE(store.contains(run_key(config)));
}

TEST_F(ResultStoreTest, RegistrySharesOneStorePerDirectory) {
  const auto a = StoreRegistry::instance().open(dir_string());
  const auto b = StoreRegistry::instance().open(dir_string() + "/.");
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(ResultStoreTest, RunParallelWarmSweepIsAllHits) {
  std::vector<sim::SimConfig> configs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::SimConfig config = small_config(seed);
    config.result_store = dir_string();
    configs.push_back(config);
  }

  sim::SweepReport cold;
  const std::vector<sim::SimResult> fresh = sim::run_parallel(configs, 2, &cold);
  EXPECT_EQ(cold.store_hits, 0u);
  EXPECT_EQ(cold.store_misses, 3u);

  sim::SweepReport warm;
  const std::vector<sim::SimResult> cached = sim::run_parallel(configs, 2, &warm);
  EXPECT_EQ(warm.store_hits, 3u);
  EXPECT_EQ(warm.store_misses, 0u);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached[i].delivered_bytes, fresh[i].delivered_bytes);
    EXPECT_EQ(cached[i].events_executed, fresh[i].events_executed);
    EXPECT_EQ(cached[i].total_throughput_gbps, fresh[i].total_throughput_gbps);
  }
}

TEST_F(ResultStoreTest, RunParallelResumesInterruptedSweep) {
  std::vector<sim::SimConfig> configs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    sim::SimConfig config = small_config(seed);
    config.result_store = dir_string();
    configs.push_back(config);
  }

  // A campaign killed after one cell: only that cell is on disk.
  (void)sim::run_parallel({configs[0]}, 1);

  // The rerun computes exactly the two missing cells.
  sim::SweepReport report;
  const std::vector<sim::SimResult> results = sim::run_parallel(configs, 2, &report);
  EXPECT_EQ(report.store_hits, 1u);
  EXPECT_EQ(report.store_misses, 2u);
  EXPECT_EQ(results.size(), 3u);
  for (const sim::SimResult& r : results) EXPECT_GT(r.delivered_bytes, 0);
}

}  // namespace
}  // namespace ibsim::store
