#include "store/serialize.hpp"

#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ibsim::store {
namespace {

/// Bit-exact double comparison: the store's contract is ULP-level
/// fidelity, so EXPECT_DOUBLE_EQ (4 ULPs) would be too weak.
void expect_bits(double a, double b, const char* what) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  EXPECT_EQ(ab, bb) << what << ": " << a << " vs " << b;
}

void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  expect_bits(a.hotspot_rcv_gbps, b.hotspot_rcv_gbps, "hotspot_rcv_gbps");
  expect_bits(a.non_hotspot_rcv_gbps, b.non_hotspot_rcv_gbps, "non_hotspot_rcv_gbps");
  expect_bits(a.all_rcv_gbps, b.all_rcv_gbps, "all_rcv_gbps");
  expect_bits(a.total_throughput_gbps, b.total_throughput_gbps, "total_throughput_gbps");
  expect_bits(a.jain_non_hotspot, b.jain_non_hotspot, "jain_non_hotspot");
  expect_bits(a.median_latency_us, b.median_latency_us, "median_latency_us");
  expect_bits(a.p99_latency_us, b.p99_latency_us, "p99_latency_us");
  EXPECT_EQ(a.fecn_marked, b.fecn_marked);
  EXPECT_EQ(a.cnps_sent, b.cnps_sent);
  EXPECT_EQ(a.becn_received, b.becn_received);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.events_by_kind, b.events_by_kind);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.workload.ran, b.workload.ran);
  EXPECT_EQ(a.workload.completed, b.workload.completed);
  EXPECT_EQ(a.workload.makespan, b.workload.makespan);
  EXPECT_EQ(a.workload.rank_finish, b.workload.rank_finish);
  EXPECT_EQ(a.workload.phase_finish, b.workload.phase_finish);
  EXPECT_EQ(a.workload.messages_completed, b.workload.messages_completed);
  EXPECT_EQ(a.workload.messages_total, b.workload.messages_total);
}

sim::SimConfig small_base() {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.sim_time = 300 * core::kMicrosecond;
  config.warmup = 50 * core::kMicrosecond;
  config.scenario.n_hotspots = 1;
  return config;
}

void round_trip(const sim::SimConfig& config) {
  const sim::SimResult fresh = sim::run_sim(config);
  const std::string text = serialize_result(fresh);
  sim::SimResult parsed;
  ASSERT_TRUE(parse_result(text, &parsed));
  expect_identical(fresh, parsed);
  // And the serialized form itself is a fixed point.
  EXPECT_EQ(serialize_result(parsed), text);
}

// The paper's congestion-tree taxonomy, one round-trip per family:
// silent (victims + dedicated contributors), windy (B nodes mixing
// hotspot and uniform traffic), moving (finite hotspot lifetimes).

TEST(Serialize, RoundTripSilentForest) {
  sim::SimConfig config = small_base();
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.8;
  round_trip(config);
}

TEST(Serialize, RoundTripWindyForest) {
  sim::SimConfig config = small_base();
  config.scenario.fraction_b = 1.0;
  config.scenario.p = 0.5;
  round_trip(config);
}

TEST(Serialize, RoundTripMovingForest) {
  sim::SimConfig config = small_base();
  config.scenario.fraction_b = 0.5;
  config.scenario.p = 0.4;
  config.scenario.hotspot_lifetime = 80 * core::kMicrosecond;
  round_trip(config);
}

TEST(Serialize, RoundTripWorkloadAndCounters) {
  sim::SimConfig config = small_base();
  config.workload.name = "incast";
  config.workload.ranks = 4;
  config.workload.message_bytes = 16 * 1024;
  config.sim_time = 2 * core::kMillisecond;
  config.telemetry.counters = true;  // fills SimResult::counters
  round_trip(config);
}

TEST(Serialize, MalformedInputRejected) {
  sim::SimResult result;
  EXPECT_FALSE(parse_result("", &result));
  EXPECT_FALSE(parse_result("not a record\n", &result));
  EXPECT_FALSE(parse_result("ibsim-result-v999\n", &result));

  const std::string good = serialize_result(sim::run_sim(small_base()));
  ASSERT_TRUE(parse_result(good, &result));
  // Truncations anywhere in the record read as a miss, never a crash
  // or a partial result.
  EXPECT_FALSE(parse_result(good.substr(0, good.size() / 2), &result));
  EXPECT_FALSE(parse_result(good.substr(0, good.size() - 4), &result));
}

}  // namespace
}  // namespace ibsim::store
