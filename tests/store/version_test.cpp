#include "store/version.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ibsim::store {
namespace {

TEST(Version, StampIsSingleToken) {
  const std::string stamp = code_version();
  ASSERT_FALSE(stamp.empty());
  // A git short hash, optionally "-dirty", or "unknown" — never spaces
  // or newlines (it is embedded in store keys and index lines).
  EXPECT_EQ(stamp.find_first_of(" \t\n\r"), std::string::npos);
  EXPECT_EQ(stamp.find_first_not_of("0123456789abcdef-dirtyunkow"), std::string::npos)
      << stamp;
}

TEST(Version, VersionLineNamesTheProgram) {
  const std::string line = version_line("simulate");
  EXPECT_EQ(line.rfind("simulate ", 0), 0u) << line;
  EXPECT_NE(line.find(code_version()), std::string::npos);
}

}  // namespace
}  // namespace ibsim::store
