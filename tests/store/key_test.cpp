#include "store/key.hpp"

#include "store/version.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

namespace ibsim::store {
namespace {

sim::SimConfig base_config() {
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.seed = 7;
  return config;
}

TEST(RunKey, DeterministicAndHexShaped) {
  const sim::SimConfig config = base_config();
  const std::string key = run_key(config);
  EXPECT_EQ(key, run_key(config));
  EXPECT_EQ(key.size(), 64u);  // SHA-256 hex
  EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(RunKey, CanonicalTextCarriesSeedAndTopology) {
  const std::string text = canonical_config_text(base_config());
  EXPECT_NE(text.find("seed=7"), std::string::npos);
  EXPECT_NE(text.find("topology=single"), std::string::npos);
}

TEST(RunKey, ResultStoreFieldIsExcluded) {
  // The one deliberate exception: where results are cached must not
  // feed the key of what is cached, or a campaign could never move its
  // store directory without recomputing everything.
  sim::SimConfig a = base_config();
  sim::SimConfig b = base_config();
  b.result_store = "/somewhere/else";
  EXPECT_EQ(canonical_config_text(a), canonical_config_text(b));
  EXPECT_EQ(run_key(a), run_key(b));
}

TEST(RunKey, ThreadsFieldIsExcluded) {
  // Worker-thread count is orchestration-only: shards execute the same
  // events whatever the worker count, so `threads` must never split the
  // cache the way `shards` (which is simulation-affecting) does.
  sim::SimConfig a = base_config();
  sim::SimConfig b = base_config();
  b.threads = 16;
  EXPECT_EQ(canonical_config_text(a), canonical_config_text(b));
  EXPECT_EQ(run_key(a), run_key(b));
}

/// Every simulation-affecting field must change the key. One mutator
/// per field family; a new SimConfig field that is not reflected in
/// canonical_config_text would silently alias cached results, so keep
/// this list in sync with the struct.
TEST(RunKey, EveryFieldChangesTheKey) {
  struct Mutation {
    const char* name;
    std::function<void(sim::SimConfig*)> apply;
  };
  const std::vector<Mutation> mutations = {
      {"seed", [](sim::SimConfig* c) { c->seed = 8; }},
      {"topology", [](sim::SimConfig* c) { c->topology = sim::TopologyKind::Dumbbell; }},
      {"single_switch_nodes", [](sim::SimConfig* c) { c->single_switch_nodes = 9; }},
      {"clos.leaves", [](sim::SimConfig* c) { c->clos.leaves = 7; }},
      {"fat_tree3.pods", [](sim::SimConfig* c) { c->fat_tree3.pods = 3; }},
      {"chain_switches", [](sim::SimConfig* c) { c->chain_switches = 5; }},
      {"dumbbell_nodes", [](sim::SimConfig* c) { c->dumbbell_nodes_per_side = 9; }},
      {"mesh.rows", [](sim::SimConfig* c) { c->mesh_rows = 5; }},
      {"fabric.wire_gbps", [](sim::SimConfig* c) { c->fabric.wire_gbps += 1.0; }},
      {"fabric.cut_through", [](sim::SimConfig* c) { c->fabric.cut_through = !c->fabric.cut_through; }},
      {"cc.enabled", [](sim::SimConfig* c) { c->cc.enabled = !c->cc.enabled; }},
      {"cc.threshold_weight", [](sim::SimConfig* c) { c->cc.threshold_weight += 1; }},
      {"cc.ccti_timer", [](sim::SimConfig* c) { c->cc.ccti_timer += 1; }},
      {"cc_algo", [](sim::SimConfig* c) { c->cc_algo = "dcqcn"; }},
      {"scenario.fraction_b", [](sim::SimConfig* c) { c->scenario.fraction_b += 0.25; }},
      {"scenario.p", [](sim::SimConfig* c) { c->scenario.p += 0.25; }},
      {"scenario.n_hotspots", [](sim::SimConfig* c) { c->scenario.n_hotspots += 1; }},
      {"scenario.lifetime", [](sim::SimConfig* c) { c->scenario.hotspot_lifetime = 123; }},
      {"workload.name", [](sim::SimConfig* c) { c->workload.name = "incast"; }},
      {"workload.ranks", [](sim::SimConfig* c) { c->workload.ranks += 1; }},
      {"workload.bytes", [](sim::SimConfig* c) { c->workload.message_bytes += 1; }},
      {"sim_time", [](sim::SimConfig* c) { c->sim_time += 1; }},
      {"warmup", [](sim::SimConfig* c) { c->warmup += 1; }},
      {"latency_hist_max_us", [](sim::SimConfig* c) { c->latency_hist_max_us += 1; }},
      // Proven bit-identical variants are still keyed conservatively: a
      // conservative key costs a miss, never a wrong result.
      {"scheduler_queue", [](sim::SimConfig* c) { c->scheduler_queue = core::QueueKind::kHeap; }},
      {"fabric_fast_path", [](sim::SimConfig* c) { c->fabric_fast_path = !c->fabric_fast_path; }},
      {"snapshot_cache", [](sim::SimConfig* c) { c->snapshot_cache = !c->snapshot_cache; }},
      // Cross-shard interleaving may legitimately differ between shard
      // counts, so the shard count is simulation-affecting.
      {"shards", [](sim::SimConfig* c) { c->shards = 4; }},
  };

  const std::string base_key = run_key(base_config());
  std::set<std::string> keys{base_key};
  for (const Mutation& mutation : mutations) {
    sim::SimConfig config = base_config();
    mutation.apply(&config);
    const std::string key = run_key(config);
    EXPECT_NE(key, base_key) << mutation.name << " did not change the key";
    EXPECT_TRUE(keys.insert(key).second) << mutation.name << " collided with another field";
  }
}

TEST(RunKey, CodeVersionChangesTheKey) {
  const sim::SimConfig config = base_config();
  EXPECT_NE(run_key_with_version(config, "aaaa1111"),
            run_key_with_version(config, "bbbb2222"));
  // run_key is run_key_with_version at this binary's own stamp.
  EXPECT_EQ(run_key(config), run_key_with_version(config, code_version()));
}

}  // namespace
}  // namespace ibsim::store
