// HCA-level behaviour: injection pacing, CNP priority, CC turnaround.

#include <gtest/gtest.h>

#include "fabric_fixture.hpp"
#include "ib/types.hpp"
#include "topo/builders.hpp"

namespace ibsim::fabric::testing {
namespace {

TEST(Hca, InjectionSpacingMatchesPacing) {
  // Two packets from an otherwise idle HCA are spaced by the 13.5 Gb/s
  // pacing interval, not the 16 Gb/s wire time.
  FabricFixture fx(topo::single_switch(3));
  fx.source(0).add_burst(1, ib::kMtuBytes, 2);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 2u);
  const core::Time gap =
      fx.observer.deliveries[1].injected_at - fx.observer.deliveries[0].injected_at;
  EXPECT_EQ(gap, core::transmit_time(ib::kMtuBytes, 13.5));
}

TEST(Hca, CnpJumpsTheDataQueue) {
  // Under CC, a FECN-marked delivery at node 0 queues a CNP there while
  // node 0 itself is busy streaming data: the CNP must still depart
  // promptly (priority + own VL), reflected in a BECN arriving at the
  // marked flow's source long before node 0's data backlog drains.
  FabricFixture fx(topo::single_switch(4), ib::CcParams::paper_table1());
  // Node 1 and 2 jam node 0 (endpoint congestion -> marks).
  fx.source(1).add_burst(0, ib::kMtuBytes, 400);
  fx.source(2).add_burst(0, ib::kMtuBytes, 400);
  // Node 0 streams a large burst elsewhere, so its send path is busy.
  fx.source(0).add_burst(3, ib::kMtuBytes, 400);
  fx.run();
  // The jamming sources received BECNs: their agents were throttled.
  const auto& agent1 = fx.fabric.hca(1).cc_agent();
  const auto& agent2 = fx.fabric.hca(2).cc_agent();
  EXPECT_GT(agent1.becn_received() + agent2.becn_received(), 0u);
  // And node 0's agent sent the CNPs.
  EXPECT_GT(fx.fabric.hca(0).cc_agent().cnps_sent(), 0u);
  EXPECT_EQ(fx.fabric.arena().live(), 0);
}

TEST(Hca, FecnDeliveredCounterTracksMarks) {
  FabricFixture fx(topo::single_switch(4), ib::CcParams::paper_table1());
  fx.source(1).add_burst(0, ib::kMtuBytes, 300);
  fx.source(2).add_burst(0, ib::kMtuBytes, 300);
  fx.run();
  std::uint64_t marked = 0;
  for (std::size_t i = 0; i < fx.fabric.switch_count(); ++i) {
    marked += fx.fabric.switch_at(i).fecn_marked();
  }
  EXPECT_EQ(fx.fabric.hca(0).fecn_delivered(), marked);
  // 1:1 FECN -> CNP turnaround at the destination.
  EXPECT_EQ(fx.fabric.hca(0).cc_agent().cnps_sent(), marked);
}

TEST(Hca, InjectedCountersMatchObserved) {
  FabricFixture fx(topo::single_switch(3));
  fx.source(0).add_burst(1, ib::kMtuBytes, 25);
  fx.source(2).add_burst(1, ib::kMtuBytes, 10);
  fx.run();
  EXPECT_EQ(fx.fabric.hca(0).injected_packets(), 25u);
  EXPECT_EQ(fx.fabric.hca(0).injected_bytes(), 25 * ib::kMtuBytes);
  EXPECT_EQ(fx.fabric.hca(2).injected_packets(), 10u);
  EXPECT_EQ(fx.fabric.hca(1).delivered_bytes(), 35 * ib::kMtuBytes);
}

TEST(Hca, CnpsNotCountedAsDeliveredData) {
  FabricFixture fx(topo::single_switch(4), ib::CcParams::paper_table1());
  fx.source(1).add_burst(0, ib::kMtuBytes, 200);
  fx.source(2).add_burst(0, ib::kMtuBytes, 200);
  fx.run();
  // Observer (metrics) saw only the 400 data packets even though CNPs
  // flowed back to the sources.
  EXPECT_EQ(fx.observer.deliveries.size(), 400u);
  EXPECT_GT(fx.fabric.total_cnps_sent(), 0u);
  for (const Delivery& d : fx.observer.deliveries) {
    EXPECT_EQ(d.bytes, ib::kMtuBytes);
  }
}

TEST(Hca, SourceRetryHintsAreHonoured) {
  // A source that reports "nothing until t" is polled again at t (the
  // injection path schedules a retry event rather than spinning).
  class OneShotAtTime final : public TrafficSource {
   public:
    OneShotAtTime(ib::NodeId self, core::Time when, ib::PacketArena* arena)
        : self_(self), when_(when), arena_(arena) {}
    Poll poll(core::Time now) override {
      ++polls;
      if (now < when_) return {ib::kNullPacket, when_};
      if (sent_) return {ib::kNullPacket, core::kTimeNever};
      sent_ = true;
      const ib::PacketHandle h = arena_->allocate();
      ib::Packet& pkt = arena_->get(h);
      pkt.src = self_;
      pkt.dst = 1;
      pkt.bytes = ib::kMtuBytes;
      pkt.vl = ib::kDataVl;
      return {h, core::kTimeNever};
    }
    int polls = 0;

   private:
    ib::NodeId self_;
    core::Time when_;
    ib::PacketArena* arena_;
    bool sent_ = false;
  };

  FabricFixture fx(topo::single_switch(2));
  OneShotAtTime source(0, 500 * core::kMicrosecond, &fx.fabric.arena());
  fx.fabric.hca(0).attach_source(&source);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 1u);
  EXPECT_EQ(fx.observer.deliveries[0].injected_at, 500 * core::kMicrosecond);
  // Polled a bounded number of times (start, the retry, post-send),
  // not once per event in between.
  EXPECT_LE(source.polls, 4);
}

}  // namespace
}  // namespace ibsim::fabric::testing
