// Unit tests for the fabric event fast path at the single-device level:
// the lazy-wakeup elision (no kEvLinkFree for an output whose queues
// drained), eager wakeups while work is queued, and coalescing of
// same-(port, vl, time) credit returns. The full-simulation bit-identity
// guarantee lives in tests/integration/fast_path_equivalence_test.cpp;
// here we pin the exact per-kind event counts on hand-built scenarios.

#include <gtest/gtest.h>

#include "fabric/events.hpp"
#include "fabric_fixture.hpp"
#include "ib/types.hpp"
#include "topo/builders.hpp"

namespace ibsim::fabric::testing {
namespace {

struct RunStats {
  std::vector<Delivery> deliveries;
  std::array<std::uint64_t, core::Scheduler::kKindSlots> by_kind{};
  std::uint64_t executed = 0;
};

void expect_same_deliveries(const RunStats& fast, const RunStats& slow) {
  ASSERT_EQ(fast.deliveries.size(), slow.deliveries.size());
  for (std::size_t i = 0; i < fast.deliveries.size(); ++i) {
    const Delivery& f = fast.deliveries[i];
    const Delivery& s = slow.deliveries[i];
    EXPECT_EQ(f.node, s.node) << "delivery " << i;
    EXPECT_EQ(f.src, s.src) << "delivery " << i;
    EXPECT_EQ(f.bytes, s.bytes) << "delivery " << i;
    EXPECT_EQ(f.injected_at, s.injected_at) << "delivery " << i;
    EXPECT_EQ(f.at, s.at) << "delivery " << i;
  }
}

// One packet across one switch. The switch output drains with the grant,
// so the fast path must not schedule its kEvLinkFree at all; the source
// HCA keeps its eager wakeup (an attached source must be re-polled).
TEST(FastPath, DrainedOutputSchedulesNoWakeup) {
  RunStats stats[2];
  for (const bool fast : {true, false}) {
    FabricParams params;
    params.fast_path = fast;
    FabricFixture fx(topo::single_switch(4), ib::CcParams::disabled(), params);
    fx.source(0).add_burst(3, ib::kMtuBytes, 1);
    fx.run();
    RunStats& st = stats[fast ? 0 : 1];
    st.deliveries = fx.observer.deliveries;
    st.by_kind = fx.sched.executed_by_kind();
    st.executed = fx.sched.executed();
  }
  const RunStats& fast = stats[0];
  const RunStats& slow = stats[1];
  expect_same_deliveries(fast, slow);

  // Slow path: one wakeup per grant (source HCA + switch). Fast path:
  // only the HCA's survives; the drained switch output's is elided.
  EXPECT_EQ(slow.by_kind[kEvLinkFree], 2u);
  EXPECT_EQ(fast.by_kind[kEvLinkFree], 1u);
  // Real work is identical: arrivals at the switch and the sink HCA,
  // one sink drain, credit returns from both hops.
  EXPECT_EQ(fast.by_kind[kEvPacketArrive], slow.by_kind[kEvPacketArrive]);
  EXPECT_EQ(fast.by_kind[kEvSinkFree], slow.by_kind[kEvSinkFree]);
  EXPECT_EQ(fast.by_kind[kEvCreditUpdate], slow.by_kind[kEvCreditUpdate]);
  EXPECT_EQ(fast.executed + 1, slow.executed);
}

// Fan-in backlog: two sources feed one output faster than the wire
// drains it, so the output's VoQ is non-empty at (almost) every grant
// and the fast path must keep scheduling real wakeups — laziness only
// elides provably dead events, it never parks a backlogged port.
TEST(FastPath, BackloggedOutputKeepsEagerWakeups) {
  RunStats stats[2];
  for (const bool fast : {true, false}) {
    FabricParams params;
    params.fast_path = fast;
    FabricFixture fx(topo::single_switch(4), ib::CcParams::disabled(), params);
    fx.source(0).add_burst(3, ib::kMtuBytes, 6);
    fx.source(1).add_burst(3, ib::kMtuBytes, 6);
    fx.run();
    RunStats& st = stats[fast ? 0 : 1];
    st.deliveries = fx.observer.deliveries;
    st.by_kind = fx.sched.executed_by_kind();
    st.executed = fx.sched.executed();
  }
  const RunStats& fast = stats[0];
  const RunStats& slow = stats[1];
  expect_same_deliveries(fast, slow);
  ASSERT_EQ(fast.deliveries.size(), 12u);

  // The backlogged switch output still takes real wakeups on the fast
  // path (strictly more than zero), but the tail grants that drain the
  // VoQ are elided, so the total stays below the slow path's
  // one-per-grant count.
  EXPECT_GT(fast.by_kind[kEvLinkFree], 0u);
  EXPECT_LT(fast.by_kind[kEvLinkFree], slow.by_kind[kEvLinkFree]);
  EXPECT_EQ(fast.by_kind[kEvPacketArrive], slow.by_kind[kEvPacketArrive]);
  EXPECT_EQ(fast.by_kind[kEvSinkFree], slow.by_kind[kEvSinkFree]);
  EXPECT_LT(fast.executed, slow.executed);
}

// Engineered same-instant credit returns: two primer packets of equal
// size seize outputs 2 and 3 at the same arrival instant, while the
// probe source's two equal-size packets wait behind them in input 0's
// VoQs. Both outputs free at the same tick, both grants dequeue from
// input 0, and both credit returns target (HCA 0, VL 0) at the same
// future time — the fast path must fuse them into one kEvCreditUpdate.
// The trailing filler burst keeps HCA 0's injector busy past the refund
// instant; coalescing only merges into a port that is provably busy
// through the refund time (an idle port could grant there and observe
// the split).
TEST(FastPath, SameInstantCreditReturnsCoalesce) {
  RunStats stats[2];
  for (const bool fast : {true, false}) {
    FabricParams params;
    params.fast_path = fast;
    FabricFixture fx(topo::single_switch(6), ib::CcParams::disabled(), params);
    ScriptedSource& probe = fx.source(0);
    probe.add_burst(1, 256, 1);  // decoy: occupies the injector so the
                                 // probes arrive after the primers grant
    probe.add_burst(2, 256, 1);
    probe.add_burst(3, 256, 1);
    probe.add_burst(2, ib::kMtuBytes, 1);  // filler: keeps HCA 0 injecting
                                           // through the probes' credit-return
                                           // instant; parked behind busy output
                                           // 2 so its own credit return is
                                           // scheduled only after the merge
    fx.source(4).add_burst(2, ib::kMtuBytes, 1);  // primer for output 2
    fx.source(5).add_burst(3, ib::kMtuBytes, 1);  // primer for output 3
    fx.run();
    RunStats& st = stats[fast ? 0 : 1];
    st.deliveries = fx.observer.deliveries;
    st.by_kind = fx.sched.executed_by_kind();
    st.executed = fx.sched.executed();
  }
  const RunStats& fast = stats[0];
  const RunStats& slow = stats[1];
  expect_same_deliveries(fast, slow);
  ASSERT_EQ(fast.deliveries.size(), 6u);

  // Slow path: one credit event per switch dequeue (6) plus one per
  // sink drain (6). Fast path: the two probe grants fire at the same
  // instant, dequeue from the same input and return credit to HCA 0 at
  // the same time — exactly one merge.
  EXPECT_EQ(slow.by_kind[kEvCreditUpdate], 12u);
  EXPECT_EQ(fast.by_kind[kEvCreditUpdate], 11u);
  EXPECT_EQ(fast.by_kind[kEvPacketArrive], slow.by_kind[kEvPacketArrive]);
  EXPECT_EQ(fast.by_kind[kEvSinkFree], slow.by_kind[kEvSinkFree]);
}

}  // namespace
}  // namespace ibsim::fabric::testing
