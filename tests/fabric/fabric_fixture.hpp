#pragma once

#include <memory>
#include <vector>

#include "cc/cc_manager.hpp"
#include "core/scheduler.hpp"
#include "fabric/fabric.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"

namespace ibsim::fabric::testing {

/// A scripted traffic source: emits a fixed list of (dst, bytes, count)
/// bursts as fast as the HCA lets it, in order.
class ScriptedSource final : public TrafficSource {
 public:
  explicit ScriptedSource(ib::NodeId self, ib::PacketArena* arena) : self_(self), arena_(arena) {}

  void add_burst(ib::NodeId dst, std::int32_t bytes, std::int32_t count) {
    bursts_.push_back({dst, bytes, count});
  }

  Poll poll(core::Time now) override {
    while (!bursts_.empty() && bursts_.front().count == 0) bursts_.erase(bursts_.begin());
    if (bursts_.empty()) return {ib::kNullPacket, core::kTimeNever};
    Burst& b = bursts_.front();
    --b.count;
    const ib::PacketHandle h = arena_->allocate();
    ib::Packet& pkt = arena_->get(h);
    pkt.src = self_;
    pkt.dst = b.dst;
    pkt.bytes = b.bytes;
    pkt.vl = ib::kDataVl;
    pkt.injected_at = now;
    ++emitted;
    return {h, core::kTimeNever};
  }

  int emitted = 0;

 private:
  struct Burst {
    ib::NodeId dst;
    std::int32_t bytes;
    std::int32_t count;
  };
  ib::NodeId self_;
  ib::PacketArena* arena_;
  std::vector<Burst> bursts_;
};

struct Delivery {
  ib::NodeId node;
  ib::NodeId src;
  std::int32_t bytes;
  bool fecn;
  core::Time injected_at;
  core::Time at;
};

class RecordingObserver final : public SinkObserver {
 public:
  void on_delivered(ib::NodeId node, const ib::Packet& pkt, core::Time now) override {
    deliveries.push_back({node, pkt.src, pkt.bytes, pkt.fecn, pkt.injected_at, now});
  }
  std::vector<Delivery> deliveries;

  [[nodiscard]] std::int64_t bytes_to(ib::NodeId node) const {
    std::int64_t total = 0;
    for (const Delivery& d : deliveries) {
      if (d.node == node) total += d.bytes;
    }
    return total;
  }
};

/// One fully wired fabric over any topology, with scripted sources.
struct FabricFixture {
  explicit FabricFixture(topo::Topology t,
                         const ib::CcParams& cc = ib::CcParams::disabled(),
                         const FabricParams& fparams = FabricParams{})
      : topo(std::move(t)),
        routing(topo::RoutingTables::compute(topo)),
        ccm(cc, 128, fparams.hca_inject_gbps),
        fabric(topo, routing, fparams, ccm, sched) {
    for (ib::NodeId n = 0; n < topo.node_count(); ++n) {
      fabric.hca(n).attach_observer(&observer);
    }
  }

  ScriptedSource& source(ib::NodeId node) {
    auto src = std::make_unique<ScriptedSource>(node, &fabric.arena());
    ScriptedSource* raw = src.get();
    sources.push_back(std::move(src));
    fabric.hca(node).attach_source(raw);
    return *raw;
  }

  void run(core::Time until = core::kTimeNever) {
    fabric.start(sched);
    sched.run_until(until);
  }

  core::Scheduler sched;
  topo::Topology topo;
  topo::RoutingTables routing;
  cc::CcManager ccm;
  Fabric fabric;
  RecordingObserver observer;
  std::vector<std::unique_ptr<ScriptedSource>> sources;
};

}  // namespace ibsim::fabric::testing
