#include "fabric/params.hpp"

#include <gtest/gtest.h>

namespace ibsim::fabric {
namespace {

TEST(FabricParams, DefaultsMatchCalibration) {
  const FabricParams p;
  EXPECT_DOUBLE_EQ(p.wire_gbps, 16.0);        // 20 Gb/s 4x DDR after 8b/10b
  EXPECT_DOUBLE_EQ(p.hca_inject_gbps, 13.5);  // PCIe v1.1 bound (paper V-A)
  EXPECT_DOUBLE_EQ(p.hca_drain_gbps, 13.6);   // "~0.1 Gb/s higher"
  EXPECT_TRUE(p.validate().empty());
}

TEST(FabricParams, CnpVlIsLastLane) {
  FabricParams p;
  p.n_vls = 2;
  EXPECT_EQ(p.cnp_vl(), 1);
  p.n_vls = 4;
  EXPECT_EQ(p.cnp_vl(), 3);
  p.cnp_on_own_vl = false;
  EXPECT_EQ(p.cnp_vl(), ib::kDataVl);
  p.cnp_on_own_vl = true;
  p.n_vls = 1;
  EXPECT_EQ(p.cnp_vl(), ib::kDataVl);  // nowhere else to go
}

TEST(FabricParams, VlCapacitySelectsBufferPools) {
  const FabricParams p;
  EXPECT_EQ(p.vl_capacity(ib::kDataVl, /*hca=*/false), p.switch_ibuf_data_bytes);
  EXPECT_EQ(p.vl_capacity(p.cnp_vl(), /*hca=*/false), p.switch_ibuf_cnp_bytes);
  EXPECT_EQ(p.vl_capacity(ib::kDataVl, /*hca=*/true), p.hca_ibuf_data_bytes);
  EXPECT_EQ(p.vl_capacity(p.cnp_vl(), /*hca=*/true), p.hca_ibuf_cnp_bytes);
}

TEST(FabricParams, SingleVlSharesTheDataPool) {
  FabricParams p;
  p.n_vls = 1;
  p.cnp_on_own_vl = false;
  EXPECT_EQ(p.vl_capacity(0, false), p.switch_ibuf_data_bytes);
}

TEST(FabricParams, ValidateCatchesBrokenSetups) {
  FabricParams p;
  p.wire_gbps = 0.0;
  EXPECT_FALSE(p.validate().empty());

  p = FabricParams{};
  p.hca_inject_gbps = 20.0;  // faster than the wire
  EXPECT_FALSE(p.validate().empty());

  p = FabricParams{};
  p.n_vls = 0;
  EXPECT_FALSE(p.validate().empty());
  p.n_vls = 16;
  EXPECT_FALSE(p.validate().empty());

  p = FabricParams{};
  p.switch_ibuf_data_bytes = 100;  // below one MTU
  EXPECT_FALSE(p.validate().empty());

  p = FabricParams{};
  p.switch_ibuf_cnp_bytes = 8;  // below one CNP
  EXPECT_FALSE(p.validate().empty());
}

}  // namespace
}  // namespace ibsim::fabric
