#include "fabric/vl_arbiter.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/rng.hpp"

namespace ibsim::fabric {
namespace {

TEST(VlArbiter, SingleLaneAlwaysPicksIt) {
  VlArbiter arb = VlArbiter::make_default(1, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arb.pick([](ib::Vl vl) { return vl == 0; }), 0);
  }
}

TEST(VlArbiter, NoWorkReturnsMinusOne) {
  VlArbiter arb = VlArbiter::make_default(2, 1);
  EXPECT_EQ(arb.pick([](ib::Vl) { return false; }), -1);
}

TEST(VlArbiter, DefaultTablesPutCnpVlHigh) {
  VlArbiter arb = VlArbiter::make_default(2, 1);
  ASSERT_EQ(arb.high_table().size(), 1u);
  EXPECT_EQ(arb.high_table()[0].vl, 1);
  ASSERT_EQ(arb.low_table().size(), 1u);
  EXPECT_EQ(arb.low_table()[0].vl, 0);
}

TEST(VlArbiter, HighPriorityLaneWins) {
  VlArbiter arb = VlArbiter::make_default(2, 1);
  // Both lanes busy: the CNP VL must always win.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);
  }
}

TEST(VlArbiter, FallsBackToLowWhenHighIdle) {
  VlArbiter arb = VlArbiter::make_default(2, 1);
  EXPECT_EQ(arb.pick([](ib::Vl vl) { return vl == 0; }), 0);
}

TEST(VlArbiter, WeightedRoundRobinHonoursWeights) {
  VlArbiter arb;
  arb.configure({}, {{0, 3}, {1, 1}});
  std::map<int, int> served;
  for (int i = 0; i < 400; ++i) {
    const int vl = arb.pick([](ib::Vl) { return true; });
    ASSERT_GE(vl, 0);
    ++served[vl];
  }
  // 3:1 weighting.
  EXPECT_NEAR(static_cast<double>(served[0]) / served[1], 3.0, 0.2);
}

TEST(VlArbiter, SkipsIdleLanesWithoutStalling) {
  VlArbiter arb;
  arb.configure({}, {{0, 2}, {1, 2}, {2, 2}});
  // Only VL 2 has work; it must be chosen every time.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(arb.pick([](ib::Vl vl) { return vl == 2; }), 2);
  }
}

TEST(VlArbiter, AlternatesBetweenEqualLanes) {
  VlArbiter arb;
  arb.configure({}, {{0, 1}, {1, 1}});
  std::map<int, int> served;
  for (int i = 0; i < 100; ++i) ++served[arb.pick([](ib::Vl) { return true; })];
  EXPECT_EQ(served[0], 50);
  EXPECT_EQ(served[1], 50);
}

TEST(VlArbiter, MakeDefaultManyVls) {
  VlArbiter arb = VlArbiter::make_default(4, 3);
  EXPECT_EQ(arb.high_table().size(), 1u);
  EXPECT_EQ(arb.low_table().size(), 3u);
  std::map<int, int> served;
  // 576 = 3 lanes x 3 full quanta of weight 64.
  for (int i = 0; i < 576; ++i) {
    ++served[arb.pick([](ib::Vl vl) { return vl != 3; })];
  }
  // Data lanes share equally when the CNP lane is idle.
  EXPECT_EQ(served[0], 192);
  EXPECT_EQ(served[1], 192);
  EXPECT_EQ(served[2], 192);
}

TEST(VlArbiter, HighLimitYieldsToLowTable) {
  VlArbiter arb;
  // Limit 1 => after 4096 bytes from the high table, one low grant.
  arb.configure({{1, 1}}, {{0, 64}}, /*high_limit=*/1);
  std::map<int, int> served;
  for (int i = 0; i < 300; ++i) {
    const int vl = arb.pick([](ib::Vl) { return true; });
    ASSERT_GE(vl, 0);
    ++served[vl];
    arb.granted(2048);  // half the budget per grant
  }
  // Pattern: 2 high grants (4096 B), then 1 low: 1/3 of service to VL0.
  EXPECT_EQ(served[0], 100);
  EXPECT_EQ(served[1], 200);
}

TEST(VlArbiter, HighLimitUnlimitedNeverYields) {
  VlArbiter arb;
  arb.configure({{1, 1}}, {{0, 64}}, VlArbiter::kUnlimitedHighLimit);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);
    arb.granted(4096);
  }
}

TEST(VlArbiter, ExhaustedHighStillServesWhenLowIdle) {
  VlArbiter arb;
  arb.configure({{1, 1}}, {{0, 64}}, /*high_limit=*/1);
  // Only the high lane has work: the limit must not block it.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(arb.pick([](ib::Vl vl) { return vl == 1; }), 1);
    arb.granted(4096);
  }
}

TEST(VlArbiter, LowGrantRefillsHighBudget) {
  VlArbiter arb;
  arb.configure({{1, 1}}, {{0, 64}}, /*high_limit=*/1);
  EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);
  arb.granted(4096);  // budget spent
  EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 0);  // low opportunity
  arb.granted(2048);
  EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);  // budget refilled
}

TEST(VlArbiter, NoteFailedPickMatchesFailedScan) {
  // The active-VL-bitmask fast path skips the full pick() scan when no
  // lane has work, but a failed scan is NOT a no-op: it refills the
  // current entries' quantums and may hand the high table a fresh byte
  // budget. note_failed_pick() must replicate that state change exactly,
  // or the fast path would diverge from the reference simulation.
  auto make = [] {
    VlArbiter arb;
    arb.configure({{3, 1}}, {{0, 2}, {1, 3}, {2, 1}}, /*high_limit=*/1);
    return arb;
  };
  // Drive both arbiters through the same grant history, with idle gaps
  // handled by a real failed scan on one and the shortcut on the other.
  VlArbiter scanned = make();
  VlArbiter shortcut = make();
  std::uint64_t state = 7;
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t roll = core::splitmix64(state);
    if (roll % 5 == 0) {
      EXPECT_EQ(scanned.pick([](ib::Vl) { return false; }), -1);
      shortcut.note_failed_pick();
    } else {
      const std::uint32_t work = 1u + static_cast<std::uint32_t>(roll % 15);
      const auto has_work = [work](ib::Vl vl) { return (work >> vl & 1u) != 0; };
      const std::int32_t a = scanned.pick(has_work);
      const std::int32_t b = shortcut.pick(has_work);
      ASSERT_EQ(a, b) << "diverged at step " << step;
      if (a >= 0) {
        const std::int64_t granted = 2048;
        scanned.granted(granted);
        shortcut.granted(granted);
      }
    }
  }
}

TEST(VlArbiter, NoteFailedPickRefillsHighBudget) {
  // An idle gap after the high table exhausts its byte budget must
  // restore high priority, exactly as a failed scan does.
  VlArbiter arb;
  arb.configure({{1, 1}}, {{0, 64}}, /*high_limit=*/1);
  EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);
  arb.granted(4096);  // budget spent; next contested pick would be low
  arb.note_failed_pick();
  EXPECT_EQ(arb.pick([](ib::Vl) { return true; }), 1);  // budget restored
}

TEST(VlArbiterDeath, ZeroWeightRejected) {
  VlArbiter arb;
  EXPECT_DEATH(arb.configure({}, {{0, 0}}), "weight");
}

TEST(VlArbiterDeath, EmptyTablesRejected) {
  VlArbiter arb;
  EXPECT_DEATH(arb.configure({}, {}), "at least one");
}

}  // namespace
}  // namespace ibsim::fabric
