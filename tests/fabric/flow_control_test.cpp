#include <gtest/gtest.h>

#include "fabric_fixture.hpp"
#include "ib/types.hpp"
#include "topo/builders.hpp"

namespace ibsim::fabric::testing {
namespace {

TEST(FlowControl, CreditsNeverExceedBufferCapacity) {
  // Saturate a dumbbell bottleneck and check outstanding credits stay
  // within the advertised buffer on every port at several points in time.
  FabricFixture fx(topo::dumbbell(3));
  for (ib::NodeId s = 0; s < 3; ++s) fx.source(s).add_burst(3, ib::kMtuBytes, 200);
  fx.fabric.start(fx.sched);
  for (core::Time t = 50 * core::kMicrosecond; t <= 400 * core::kMicrosecond;
       t += 50 * core::kMicrosecond) {
    fx.sched.run_until(t);
    for (std::size_t i = 0; i < fx.fabric.switch_count(); ++i) {
      auto& sw = fx.fabric.switch_at(i);
      for (std::int32_t port = 0; port < sw.n_ports(); ++port) {
        const OutputPort& op = sw.output(port);
        if (!op.connected) continue;
        for (ib::Vl vl = 0; vl < sw.bank().n_vls(); ++vl) {
          const CreditTracker& credits = sw.bank().credit(port, vl);
          EXPECT_GE(credits.available(), 0);
          EXPECT_LE(credits.outstanding(), credits.capacity());
        }
      }
    }
  }
}

TEST(FlowControl, LosslessUnderHeavyFanIn) {
  // 7 senders into one sink: every injected packet must be delivered,
  // none dropped (the pool drains to zero live packets).
  FabricFixture fx(topo::single_switch(8));
  const int kPackets = 300;
  for (ib::NodeId s = 1; s < 8; ++s) fx.source(s).add_burst(0, ib::kMtuBytes, kPackets);
  fx.run();
  EXPECT_EQ(fx.observer.deliveries.size(), static_cast<std::size_t>(7 * kPackets));
  EXPECT_EQ(fx.fabric.arena().live(), 0);
}

TEST(FlowControl, BackpressurePropagatesThroughChain) {
  // In a 3-switch chain, node 0 (on switch 0) sends to node 2 (switch 2)
  // while node 1 (switch 1) also sends to node 2. The shared sink slows
  // both; total still arrives losslessly.
  FabricFixture fx(topo::linear_chain(3, 1));
  fx.source(0).add_burst(2, ib::kMtuBytes, 150);
  fx.source(1).add_burst(2, ib::kMtuBytes, 150);
  fx.run();
  EXPECT_EQ(fx.observer.bytes_to(2), 300 * ib::kMtuBytes);
  EXPECT_EQ(fx.fabric.arena().live(), 0);
}

TEST(FlowControl, HolBlockingEmergesWithSharedBuffers) {
  // The classic congestion-spreading experiment on a dumbbell (nodes
  // 0-4 left, 5-9 right): nodes 0 and 1 overload node 5 across the
  // bottleneck, node 2 sends to node 6 (also across the bottleneck,
  // different destination). Without CC, the victim flow 2->6 is
  // HOL-blocked behind the hotspot traffic piling up in the right-hand
  // switch's shared ingress buffer and finishes far later than alone.
  const int kPackets = 200;

  // Baseline: victim alone.
  FabricFixture alone(topo::dumbbell(5));
  alone.source(2).add_burst(6, ib::kMtuBytes, kPackets);
  alone.run();
  core::Time t_alone = alone.observer.deliveries.back().at;

  // With the hotspot flows present.
  FabricFixture crowded(topo::dumbbell(5));
  crowded.source(0).add_burst(5, ib::kMtuBytes, 3 * kPackets);
  crowded.source(1).add_burst(5, ib::kMtuBytes, 3 * kPackets);
  crowded.source(2).add_burst(6, ib::kMtuBytes, kPackets);
  crowded.run();
  core::Time t_victim = 0;
  for (const Delivery& d : crowded.observer.deliveries) {
    if (d.node == 6) t_victim = std::max(t_victim, d.at);
  }
  // HOL blocking slows the victim by a large factor (it shares the
  // bottleneck ingress buffer with a jammed flow).
  EXPECT_GT(t_victim, 2 * t_alone);
}

TEST(FlowControl, VictimOnDisjointPathUnaffected) {
  // Flows on disjoint leaf pairs do not interact at all.
  FabricFixture fx(topo::folded_clos(topo::FoldedClosParams::scaled(4, 2, 2)));
  const int kPackets = 100;
  // Hotspot inside leaf 0 (local traffic: nodes 0,1 both on leaf 0).
  fx.source(0).add_burst(1, ib::kMtuBytes, 3 * kPackets);
  // Disjoint flow: leaf 2 node -> same-leaf neighbour.
  fx.source(4).add_burst(5, ib::kMtuBytes, kPackets);

  FabricFixture solo(topo::folded_clos(topo::FoldedClosParams::scaled(4, 2, 2)));
  solo.source(4).add_burst(5, ib::kMtuBytes, kPackets);

  fx.run();
  solo.run();
  core::Time t_fx = 0;
  for (const Delivery& d : fx.observer.deliveries) {
    if (d.node == 5) t_fx = std::max(t_fx, d.at);
  }
  EXPECT_EQ(t_fx, solo.observer.deliveries.back().at);
}

TEST(FlowControl, CnpVlHasIndependentCredits) {
  // Fill the data VL of the link from node 0's switch port; the CC agent
  // can still push a CNP out on its own VL. We approximate by checking
  // initial credit pools are per-VL with the configured capacities.
  FabricParams params;
  FabricFixture fx(topo::single_switch(2), ib::CcParams::paper_table1(), params);
  const PortVlBank& hca_bank = fx.fabric.hca(0).bank();
  ASSERT_EQ(hca_bank.n_vls(), params.n_vls);
  EXPECT_EQ(hca_bank.credit(0, ib::kDataVl).capacity(), params.switch_ibuf_data_bytes);
  EXPECT_EQ(hca_bank.credit(0, params.cnp_vl()).capacity(), params.switch_ibuf_cnp_bytes);
  // Switch ports facing HCAs advertise the HCA buffer sizes.
  const PortVlBank& sw_bank = fx.fabric.switch_at(0).bank();
  EXPECT_EQ(sw_bank.credit(0, ib::kDataVl).capacity(), params.hca_ibuf_data_bytes);
  EXPECT_EQ(sw_bank.credit(0, params.cnp_vl()).capacity(), params.hca_ibuf_cnp_bytes);
}

TEST(FlowControl, WireFasterThanDrainKeepsBufferBounded) {
  FabricFixture fx(topo::single_switch(3));
  fx.source(1).add_burst(0, ib::kMtuBytes, 500);
  fx.fabric.start(fx.sched);
  fx.sched.run_until(200 * core::kMicrosecond);
  // The switch port towards HCA 0 can have at most the HCA buffer
  // outstanding.
  EXPECT_LE(fx.fabric.switch_at(0).bank().credit(0, ib::kDataVl).outstanding(),
            fx.fabric.params().hca_ibuf_data_bytes);
  fx.sched.run_until(core::kTimeNever);
  EXPECT_EQ(fx.fabric.arena().live(), 0);
}

}  // namespace
}  // namespace ibsim::fabric::testing
