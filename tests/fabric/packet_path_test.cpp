#include <gtest/gtest.h>

#include <map>

#include "fabric_fixture.hpp"
#include "ib/types.hpp"
#include "topo/builders.hpp"

namespace ibsim::fabric::testing {
namespace {

TEST(PacketPath, SinglePacketCrossesOneSwitch) {
  FabricFixture fx(topo::single_switch(4));
  fx.source(0).add_burst(3, ib::kMtuBytes, 1);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 1u);
  const Delivery& d = fx.observer.deliveries[0];
  EXPECT_EQ(d.node, 3);
  EXPECT_EQ(d.src, 0);
  EXPECT_EQ(d.bytes, ib::kMtuBytes);
  EXPECT_FALSE(d.fecn);
}

TEST(PacketPath, LatencyMatchesModelTiming) {
  FabricFixture fx(topo::single_switch(4));
  const FabricParams& p = fx.fabric.params();
  fx.source(0).add_burst(3, ib::kMtuBytes, 1);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 1u);
  const Delivery& d = fx.observer.deliveries[0];
  // Cut-through path: inject -> (link + switch pipeline) -> grant at
  // switch -> (link + HCA rx pipeline) -> sink drain.
  const core::Time expected = p.link_delay + p.switch_delay   // to switch
                              + p.link_delay + p.hca_rx_delay // to HCA
                              + core::transmit_time(ib::kMtuBytes, p.hca_drain_gbps);
  EXPECT_EQ(d.at - d.injected_at, expected);
}

TEST(PacketPath, StoreAndForwardAddsSerialization) {
  FabricParams params;
  params.cut_through = false;
  FabricFixture fx(topo::single_switch(4), ib::CcParams::disabled(), params);
  fx.source(0).add_burst(3, ib::kMtuBytes, 1);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 1u);
  const Delivery& d = fx.observer.deliveries[0];
  const core::Time expected = params.link_delay + params.switch_delay +
                              params.link_delay + params.hca_rx_delay +
                              2 * core::transmit_time(ib::kMtuBytes, params.wire_gbps) +
                              core::transmit_time(ib::kMtuBytes, params.hca_drain_gbps);
  EXPECT_EQ(d.at - d.injected_at, expected);
}

TEST(PacketPath, PerFlowFifoPreserved) {
  FabricFixture fx(topo::folded_clos(topo::FoldedClosParams::scaled(4, 2, 3)));
  fx.source(0).add_burst(11, ib::kMtuBytes, 50);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), 50u);
  for (std::size_t i = 1; i < fx.observer.deliveries.size(); ++i) {
    EXPECT_LE(fx.observer.deliveries[i - 1].injected_at,
              fx.observer.deliveries[i].injected_at)
        << "flow reordered at delivery " << i;
  }
}

TEST(PacketPath, AllPairsDeliverAcrossClos) {
  FabricFixture fx(topo::folded_clos(topo::FoldedClosParams::scaled(3, 2, 2)));
  const std::int32_t n = fx.topo.node_count();
  for (ib::NodeId s = 0; s < n; ++s) {
    ScriptedSource& src = fx.source(s);
    for (ib::NodeId d = 0; d < n; ++d) {
      if (d != s) src.add_burst(d, ib::kMtuBytes, 1);
    }
  }
  fx.run();
  EXPECT_EQ(fx.observer.deliveries.size(), static_cast<std::size_t>(n * (n - 1)));
  for (ib::NodeId d = 0; d < n; ++d) {
    EXPECT_EQ(fx.observer.bytes_to(d), (n - 1) * ib::kMtuBytes);
  }
}

TEST(PacketPath, InjectionPacedAtHcaRate) {
  FabricFixture fx(topo::single_switch(4));
  const int kPackets = 100;
  fx.source(0).add_burst(1, ib::kMtuBytes, kPackets);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), static_cast<std::size_t>(kPackets));
  // Delivery rate is bounded by the sink drain (13.6 Gb/s), and the
  // spacing between consecutive deliveries equals the injection pacing
  // (13.5 Gb/s) since it is the slower stage.
  const Delivery& first = fx.observer.deliveries.front();
  const Delivery& last = fx.observer.deliveries.back();
  const double gbps =
      core::rate_gbps(static_cast<std::int64_t>(kPackets - 1) * ib::kMtuBytes,
                      last.at - first.at);
  EXPECT_NEAR(gbps, 13.5, 0.05);
}

TEST(PacketPath, DrainRateBoundsFanIn) {
  // Three senders to one destination: aggregate receive rate is capped
  // by the 13.6 Gb/s sink, not the 16 Gb/s wire.
  FabricFixture fx(topo::single_switch(5));
  const int kPackets = 120;
  for (ib::NodeId s = 1; s <= 3; ++s) fx.source(s).add_burst(0, ib::kMtuBytes, kPackets);
  fx.run();
  ASSERT_EQ(fx.observer.deliveries.size(), static_cast<std::size_t>(3 * kPackets));
  const Delivery& first = fx.observer.deliveries.front();
  const Delivery& last = fx.observer.deliveries.back();
  const double gbps = core::rate_gbps(
      static_cast<std::int64_t>(3 * kPackets - 1) * ib::kMtuBytes, last.at - first.at);
  EXPECT_NEAR(gbps, 13.6, 0.1);
}

TEST(PacketPath, FanInServedRoundRobinFairly) {
  FabricFixture fx(topo::single_switch(5));
  const int kPackets = 100;
  for (ib::NodeId s = 1; s <= 3; ++s) fx.source(s).add_burst(0, ib::kMtuBytes, kPackets);
  fx.run();
  // Count per-source deliveries in the first half; round-robin service
  // must keep them close.
  std::map<ib::NodeId, int> first_half;
  for (std::size_t i = 0; i < fx.observer.deliveries.size() / 2; ++i) {
    ++first_half[fx.observer.deliveries[i].src];
  }
  for (ib::NodeId s = 1; s <= 3; ++s) {
    EXPECT_NEAR(first_half[s], 50, 3) << "source " << s;
  }
}

TEST(PacketPath, NoSourceMeansSilence) {
  FabricFixture fx(topo::single_switch(2));
  fx.run(core::kMillisecond);
  EXPECT_TRUE(fx.observer.deliveries.empty());
  EXPECT_EQ(fx.fabric.arena().live(), 0);
}

TEST(PacketPath, PoolDrainsAfterRun) {
  FabricFixture fx(topo::folded_clos(topo::FoldedClosParams::scaled(3, 2, 2)));
  fx.source(0).add_burst(5, ib::kMtuBytes, 20);
  fx.source(2).add_burst(1, ib::kMtuBytes, 20);
  fx.run();
  // Every allocated packet was delivered and released: lossless.
  EXPECT_EQ(fx.fabric.arena().live(), 0);
  EXPECT_EQ(fx.observer.deliveries.size(), 40u);
}

}  // namespace
}  // namespace ibsim::fabric::testing
