#include "fabric/credits.hpp"

#include <gtest/gtest.h>

namespace ibsim::fabric {
namespace {

TEST(CreditTracker, StartsFull) {
  CreditTracker credits;
  credits.initialize(32768);
  EXPECT_EQ(credits.available(), 32768);
  EXPECT_EQ(credits.capacity(), 32768);
  EXPECT_EQ(credits.outstanding(), 0);
}

TEST(CreditTracker, ConsumeAndRefund) {
  CreditTracker credits;
  credits.initialize(4096);
  credits.consume(2048);
  EXPECT_EQ(credits.available(), 2048);
  EXPECT_EQ(credits.outstanding(), 2048);
  credits.refund(2048);
  EXPECT_EQ(credits.available(), 4096);
}

TEST(CreditTracker, CanSendChecksExactFit) {
  CreditTracker credits;
  credits.initialize(2048);
  EXPECT_TRUE(credits.can_send(2048));
  EXPECT_FALSE(credits.can_send(2049));
  credits.consume(2048);
  EXPECT_FALSE(credits.can_send(1));
  EXPECT_TRUE(credits.can_send(0));
}

TEST(CreditTracker, ManySmallConsumers) {
  CreditTracker credits;
  credits.initialize(64 * 100);
  for (int i = 0; i < 100; ++i) credits.consume(64);
  EXPECT_EQ(credits.available(), 0);
  for (int i = 0; i < 100; ++i) credits.refund(64);
  EXPECT_EQ(credits.available(), credits.capacity());
}

TEST(CreditTrackerDeath, OverdraftAborts) {
  CreditTracker credits;
  credits.initialize(100);
  EXPECT_DEATH(credits.consume(101), "lossless");
}

TEST(CreditTrackerDeath, OverRefundAborts) {
  CreditTracker credits;
  credits.initialize(100);
  EXPECT_DEATH(credits.refund(1), "overflow");
}

}  // namespace
}  // namespace ibsim::fabric
