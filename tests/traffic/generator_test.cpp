#include "traffic/generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ibsim::traffic {
namespace {

/// FlowGate stub with programmable per-destination ready times.
class StubGate : public cc::FlowGate {
 public:
  core::Time flow_ready_at(ib::NodeId dst) const override {
    auto it = ready.find(dst);
    return it == ready.end() ? 0 : it->second;
  }
  std::map<ib::NodeId, core::Time> ready;
};

class GeneratorTest : public ::testing::Test {
 protected:
  static constexpr std::int32_t kNodes = 16;

  BNodeGenerator make(double p, const cc::FlowGate* gate = nullptr,
                      const HotspotProvider* hotspot = nullptr) {
    BNodeParams params;
    params.p = p;
    if (p > 0 && hotspot == nullptr) hotspot = &fixed_;
    return BNodeGenerator(/*self=*/0, kNodes, params, hotspot, gate, &arena_, core::Rng(7));
  }

  /// Drain the generator greedily at time `now`; returns emitted handles
  /// (resolve through `pkt()` — they stay valid across arena growth).
  std::vector<ib::PacketHandle> drain(BNodeGenerator& gen, core::Time now, int max_pkts) {
    std::vector<ib::PacketHandle> out;
    for (int i = 0; i < max_pkts; ++i) {
      auto res = gen.poll(now);
      if (res.pkt == ib::kNullPacket) break;
      out.push_back(res.pkt);
    }
    return out;
  }

  const ib::Packet& pkt(ib::PacketHandle h) { return arena_.get(h); }

  ib::PacketArena arena_;
  FixedHotspot fixed_{5};
};

TEST_F(GeneratorTest, PureHotspotNodeSendsOnlyToHotspot) {
  BNodeGenerator gen = make(1.0);
  // At t the budget allows capacity x t bytes.
  const core::Time t = core::kMillisecond;
  auto pkts = drain(gen, t, 1000);
  ASSERT_FALSE(pkts.empty());
  for (ib::PacketHandle h : pkts) {
    EXPECT_EQ(pkt(h).dst, 5);
    EXPECT_TRUE(pkt(h).hotspot_stream);
    EXPECT_EQ(pkt(h).src, 0);
    EXPECT_EQ(pkt(h).bytes, ib::kMtuBytes);
  }
}

TEST_F(GeneratorTest, PureUniformNodeNeverHitsHotspotStream) {
  BNodeGenerator gen = make(0.0);
  auto pkts = drain(gen, core::kMillisecond, 1000);
  ASSERT_FALSE(pkts.empty());
  for (ib::PacketHandle h : pkts) {
    EXPECT_FALSE(pkt(h).hotspot_stream);
    EXPECT_NE(pkt(h).dst, 0);  // never self
  }
  EXPECT_EQ(gen.hotspot_bytes_sent(), 0);
}

TEST_F(GeneratorTest, BudgetCapsCumulativeBytes) {
  // Frame I: by time t the hotspot stream has sent at most p x cap x t,
  // the uniform stream at most (1-p) x cap x t.
  BNodeGenerator gen = make(0.5);
  const core::Time t = core::kMillisecond;
  (void)drain(gen, t, 100000);
  const std::int64_t budget = core::capacity_bytes(13.5, t);
  EXPECT_LE(gen.hotspot_bytes_sent(), budget / 2 + ib::kMtuBytes);
  EXPECT_LE(gen.uniform_bytes_sent(), budget / 2 + ib::kMtuBytes);
  // And the generator actually uses its budget (within one packet).
  EXPECT_GE(gen.hotspot_bytes_sent(), budget / 2 - ib::kMtuBytes);
  EXPECT_GE(gen.uniform_bytes_sent(), budget / 2 - ib::kMtuBytes);
}

TEST_F(GeneratorTest, BudgetSplitFollowsP) {
  for (double p : {0.1, 0.3, 0.6, 0.9}) {
    BNodeGenerator gen = make(p);
    const core::Time t = 10 * core::kMillisecond;
    (void)drain(gen, t, 200000);
    const double total =
        static_cast<double>(gen.hotspot_bytes_sent() + gen.uniform_bytes_sent());
    EXPECT_NEAR(static_cast<double>(gen.hotspot_bytes_sent()) / total, p, 0.01)
        << "p=" << p;
  }
}

TEST_F(GeneratorTest, RetryHintIsBudgetRefillTime) {
  BNodeGenerator gen = make(1.0);
  const core::Time t = core::kMicrosecond;
  (void)drain(gen, t, 100000);  // exhaust the budget at t
  auto res = gen.poll(t);
  EXPECT_EQ(res.pkt, ib::kNullPacket);
  ASSERT_NE(res.retry_at, core::kTimeNever);
  EXPECT_GT(res.retry_at, t);
  // At the hinted time the generator must be ready again.
  auto next = gen.poll(res.retry_at);
  EXPECT_NE(next.pkt, ib::kNullPacket);
}

TEST_F(GeneratorTest, MessagesAreTwoConsecutivePackets) {
  BNodeGenerator gen = make(1.0);
  auto pkts = drain(gen, core::kMillisecond, 10);
  ASSERT_GE(pkts.size(), 4u);
  // Packets pair up into messages: same msg_seq twice, then the next.
  EXPECT_EQ(pkt(pkts[0]).msg_seq, pkt(pkts[1]).msg_seq);
  EXPECT_EQ(pkt(pkts[2]).msg_seq, pkt(pkts[3]).msg_seq);
  EXPECT_NE(pkt(pkts[0]).msg_seq, pkt(pkts[2]).msg_seq);
}

TEST_F(GeneratorTest, ThrottledHotspotFlowDoesNotBlockUniform) {
  // Frame I's key independence property: the hotspot flow is throttled
  // far into the future, yet uniform traffic keeps flowing.
  StubGate gate;
  gate.ready[5] = core::kSecond;  // hotspot flow blocked for a long time
  BNodeGenerator gen = make(0.5, &gate);
  const core::Time t = core::kMillisecond;
  auto pkts = drain(gen, t, 100000);
  ASSERT_FALSE(pkts.empty());
  for (ib::PacketHandle h : pkts) EXPECT_FALSE(pkt(h).hotspot_stream);
  // Uniform used its (1-p) share; hotspot sent nothing.
  EXPECT_EQ(gen.hotspot_bytes_sent(), 0);
  EXPECT_GE(gen.uniform_bytes_sent(), core::capacity_bytes(13.5, t) / 2 - ib::kMtuBytes);
}

TEST_F(GeneratorTest, UniformDoesNotExceedItsShareWhenHotspotBlocked) {
  // ...and the uniform stream must NOT absorb the hotspot stream's
  // unused budget: the link goes idle instead (Frame I).
  StubGate gate;
  gate.ready[5] = core::kSecond;
  BNodeGenerator gen = make(0.5, &gate);
  const core::Time t = core::kMillisecond;
  (void)drain(gen, t, 100000);
  EXPECT_LE(gen.uniform_bytes_sent(), core::capacity_bytes(13.5, t) / 2 + ib::kMtuBytes);
  auto res = gen.poll(t);
  EXPECT_EQ(res.pkt, ib::kNullPacket);  // link idles
}

TEST_F(GeneratorTest, ThrottledUniformFlowsParkWithoutStallingTheRest) {
  // Every flow except destination 5 is throttled: uniform messages to
  // other destinations are parked (per-QP queueing), and only packets to
  // the ready destination leave the node — from either stream.
  StubGate gate;
  for (ib::NodeId d = 0; d < kNodes; ++d) gate.ready[d] = core::kSecond;
  gate.ready[5] = 0;  // only the hotspot destination is unthrottled
  BNodeGenerator gen = make(0.5, &gate);
  auto pkts = drain(gen, core::kMillisecond, 100000);
  ASSERT_FALSE(pkts.empty());
  for (ib::PacketHandle h : pkts) EXPECT_EQ(pkt(h).dst, 5);
  // The hotspot stream certainly ran; uniform draws that landed on 5
  // may have run too, but nothing else did.
  EXPECT_GT(gen.hotspot_bytes_sent(), 0);
}

TEST_F(GeneratorTest, DeficitInterleavesStreams) {
  BNodeGenerator gen = make(0.5);
  auto pkts = drain(gen, core::kMillisecond, 40);
  ASSERT_EQ(pkts.size(), 40u);
  // With equal shares, streams alternate at message granularity: within
  // any window of 8 packets both streams appear.
  for (std::size_t i = 0; i + 8 <= pkts.size(); i += 8) {
    int hotspot = 0;
    for (std::size_t j = i; j < i + 8; ++j) hotspot += pkt(pkts[j]).hotspot_stream ? 1 : 0;
    EXPECT_GT(hotspot, 0);
    EXPECT_LT(hotspot, 8);
  }
}

TEST_F(GeneratorTest, HotspotProviderFollowedPerMessage) {
  // Swap the provider's target between polls: the generator picks up the
  // new hotspot at the next message boundary.
  class MutableHotspot : public HotspotProvider {
   public:
    ib::NodeId current_hotspot() const override { return current; }
    ib::NodeId current = 3;
  };
  MutableHotspot hs;
  BNodeGenerator gen = make(1.0, nullptr, &hs);
  auto first = drain(gen, 10 * core::kMicrosecond, 2);  // one full message
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(pkt(first[0]).dst, 3);
  hs.current = 9;
  auto second = drain(gen, core::kMillisecond, 2);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(pkt(second[0]).dst, 9);
}

TEST_F(GeneratorTest, SelfHotspotRedirectsUniformly) {
  FixedHotspot self_hs(0);  // node 0's hotspot is itself
  BNodeGenerator gen = make(1.0, nullptr, &self_hs);
  auto pkts = drain(gen, core::kMillisecond, 100);
  ASSERT_FALSE(pkts.empty());
  for (ib::PacketHandle h : pkts) EXPECT_NE(pkt(h).dst, 0);
}

TEST_F(GeneratorTest, InjectedAtStamped) {
  BNodeGenerator gen = make(0.0);
  auto res = gen.poll(12345678);
  ASSERT_NE(res.pkt, ib::kNullPacket);
  EXPECT_EQ(pkt(res.pkt).injected_at, 12345678);
}

TEST_F(GeneratorTest, SameSeedSameSequence) {
  BNodeParams params;
  params.p = 0.5;
  BNodeGenerator a(0, kNodes, params, &fixed_, nullptr, &arena_, core::Rng(99));
  BNodeGenerator b(0, kNodes, params, &fixed_, nullptr, &arena_, core::Rng(99));
  for (int i = 0; i < 200; ++i) {
    auto ra = a.poll(core::kMillisecond);
    auto rb = b.poll(core::kMillisecond);
    ASSERT_NE(ra.pkt, ib::kNullPacket);
    ASSERT_NE(rb.pkt, ib::kNullPacket);
    EXPECT_EQ(pkt(ra.pkt).dst, pkt(rb.pkt).dst);
    EXPECT_EQ(pkt(ra.pkt).hotspot_stream, pkt(rb.pkt).hotspot_stream);
  }
}

}  // namespace
}  // namespace ibsim::traffic
