#include "traffic/destination.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ibsim::traffic {
namespace {

TEST(UniformDestination, NeverDrawsSelf) {
  core::Rng rng(1);
  UniformDestination dist(3, 8);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(dist.draw(rng), 3);
}

TEST(UniformDestination, CoversAllOtherNodes) {
  core::Rng rng(2);
  UniformDestination dist(0, 5);
  std::map<ib::NodeId, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[dist.draw(rng)];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [node, count] : counts) {
    EXPECT_GE(node, 1);
    EXPECT_LE(node, 4);
    EXPECT_NEAR(count, 1250, 150);  // uniform within ~4 sigma
  }
}

TEST(UniformDestination, SelfAtBoundaries) {
  core::Rng rng(3);
  UniformDestination first(0, 4);
  UniformDestination last(3, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(first.draw(rng), 0);
    EXPECT_NE(last.draw(rng), 3);
  }
}

TEST(UniformDestination, TwoNodeNetworkIsDeterministic) {
  core::Rng rng(4);
  UniformDestination dist(0, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.draw(rng), 1);
}

TEST(FixedDestination, AlwaysSame) {
  core::Rng rng(5);
  FixedDestination dist(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.draw(rng), 7);
}

}  // namespace
}  // namespace ibsim::traffic
