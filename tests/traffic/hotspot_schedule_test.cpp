#include "traffic/hotspot_schedule.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ibsim::traffic {
namespace {

TEST(HotspotSchedule, DrawsDistinctHotspots) {
  HotspotSchedule sched(20, 8, core::kTimeNever, core::Rng(1));
  std::set<ib::NodeId> unique(sched.hotspots().begin(), sched.hotspots().end());
  EXPECT_EQ(unique.size(), 8u);
  for (const ib::NodeId hs : sched.hotspots()) {
    EXPECT_GE(hs, 0);
    EXPECT_LT(hs, 20);
    EXPECT_TRUE(sched.is_hotspot(hs));
  }
}

TEST(HotspotSchedule, NonHotspotsClassified) {
  HotspotSchedule sched(20, 2, core::kTimeNever, core::Rng(2));
  int count = 0;
  for (ib::NodeId n = 0; n < 20; ++n) count += sched.is_hotspot(n) ? 1 : 0;
  EXPECT_EQ(count, 2);
}

TEST(HotspotSchedule, StaticScheduleNeverMoves) {
  core::Scheduler sched_core;
  HotspotSchedule sched(10, 2, core::kTimeNever, core::Rng(3));
  sched.install(sched_core);
  EXPECT_FALSE(sched.moving());
  EXPECT_EQ(sched_core.pending(), 0u);  // no move events scheduled
  sched_core.run_until(core::kSecond);
  EXPECT_EQ(sched.moves(), 0);
}

TEST(HotspotSchedule, MovingScheduleRelocatesEachLifetime) {
  core::Scheduler sched_core;
  HotspotSchedule sched(50, 4, core::kMillisecond, core::Rng(4));
  sched.install(sched_core);
  EXPECT_TRUE(sched.moving());
  sched_core.run_until(5 * core::kMillisecond + 1);
  EXPECT_EQ(sched.moves(), 5);
}

TEST(HotspotSchedule, MovesChangeTheSet) {
  core::Scheduler sched_core;
  HotspotSchedule sched(648, 8, core::kMillisecond, core::Rng(5));
  sched.install(sched_core);
  const std::vector<ib::NodeId> before = sched.hotspots();
  sched_core.run_until(core::kMillisecond);
  const std::vector<ib::NodeId> after = sched.hotspots();
  // With 8 of 648 slots, a redraw virtually surely differs.
  EXPECT_NE(before, after);
  // And the set stays distinct.
  std::set<ib::NodeId> unique(after.begin(), after.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(HotspotSchedule, SubsetProvidersTrackTheSchedule) {
  core::Scheduler sched_core;
  HotspotSchedule sched(100, 3, core::kMillisecond, core::Rng(6));
  ScheduleHotspot p0(&sched, 0);
  ScheduleHotspot p2(&sched, 2);
  sched.install(sched_core);
  EXPECT_EQ(p0.current_hotspot(), sched.hotspot(0));
  EXPECT_EQ(p2.current_hotspot(), sched.hotspot(2));
  sched_core.run_until(core::kMillisecond);
  EXPECT_EQ(p0.current_hotspot(), sched.hotspot(0));
}

TEST(HotspotSchedule, SameSeedSameDraws) {
  HotspotSchedule a(648, 8, core::kTimeNever, core::Rng(42));
  HotspotSchedule b(648, 8, core::kTimeNever, core::Rng(42));
  EXPECT_EQ(a.hotspots(), b.hotspots());
}

TEST(HotspotSchedule, AllNodesHotspotDegenerate) {
  HotspotSchedule sched(4, 4, core::kTimeNever, core::Rng(7));
  std::set<ib::NodeId> unique(sched.hotspots().begin(), sched.hotspots().end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(HotspotSchedule, ZeroHotspots) {
  core::Scheduler sched_core;
  HotspotSchedule sched(10, 0, core::kMillisecond, core::Rng(8));
  sched.install(sched_core);
  EXPECT_EQ(sched.n_hotspots(), 0);
  sched_core.run_until(10 * core::kMillisecond);
  EXPECT_EQ(sched.moves(), 0);  // nothing to move
}

TEST(HotspotSchedule, MovingWithAllNodesHotspotTerminates) {
  // Degenerate moving schedule: every node is a hotspot, so each redraw
  // rejection-samples a full permutation. Must terminate and keep the
  // set distinct after every move.
  core::Scheduler sched_core;
  HotspotSchedule sched(4, 4, core::kMillisecond, core::Rng(9));
  sched.install(sched_core);
  sched_core.run_until(3 * core::kMillisecond);
  EXPECT_EQ(sched.moves(), 3);
  std::set<ib::NodeId> unique(sched.hotspots().begin(), sched.hotspots().end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(HotspotSchedule, SingleEndpointPairRelocatesWithinBounds) {
  // Minimal fabric that can host traffic: two end nodes, one hotspot.
  core::Scheduler sched_core;
  HotspotSchedule sched(2, 1, core::kMillisecond, core::Rng(10));
  sched.install(sched_core);
  for (int move = 0; move < 5; ++move) {
    sched_core.run_until((move + 1) * core::kMillisecond);
    EXPECT_GE(sched.hotspot(0), 0);
    EXPECT_LT(sched.hotspot(0), 2);
  }
  EXPECT_EQ(sched.moves(), 5);
}

TEST(HotspotSchedule, MoveExactlyAtWindowBoundaryExecutes) {
  // Simulation::run calls run_until(warmup) then run_until(sim_time);
  // the scheduler executes events at exactly `until`, so a lifetime that
  // divides the window boundaries lands moves *on* them. Pin that down:
  // a move scheduled exactly at the stop time is part of the window.
  core::Scheduler sched_core;
  HotspotSchedule sched(10, 2, 100 * core::kMicrosecond, core::Rng(11));
  sched.install(sched_core);
  sched_core.run_until(100 * core::kMicrosecond);  // "warmup" edge
  EXPECT_EQ(sched.moves(), 1);
  sched_core.run_until(500 * core::kMicrosecond);  // "sim_time" edge
  EXPECT_EQ(sched.moves(), 5);
}

TEST(FixedHotspot, AlwaysSame) {
  FixedHotspot p(5);
  EXPECT_EQ(p.current_hotspot(), 5);
}

}  // namespace
}  // namespace ibsim::traffic
