#include "traffic/burst.hpp"

#include <gtest/gtest.h>

#include <map>

namespace ibsim::traffic {
namespace {

class BurstTest : public ::testing::Test {
 protected:
  /// Drive the generator like an idealised HCA: emit whenever ready,
  /// jump to the retry hint otherwise.
  void drive(BurstGenerator& gen, core::Time until) {
    core::Time now = 0;
    while (now < until) {
      auto res = gen.poll(now);
      if (res.pkt != ib::kNullPacket) {
        const core::Time pace = core::transmit_time(arena_.get(res.pkt).bytes, 13.5);
        arena_.release(res.pkt);
        now += pace;
      } else {
        ASSERT_GT(res.retry_at, now) << "burst generator must make progress";
        now = res.retry_at;
      }
    }
  }

  ib::PacketArena arena_;
};

TEST_F(BurstTest, DutyCycleMatchesPhaseMeans) {
  BurstParams params;
  params.mean_on = 100 * core::kMicrosecond;
  params.mean_off = 300 * core::kMicrosecond;
  params.rate_gbps = 13.5;
  BurstGenerator gen(0, 8, params, nullptr, &arena_, core::Rng(1));
  const core::Time horizon = 200 * core::kMillisecond;
  drive(gen, horizon);
  // Average rate = duty cycle x burst rate = 0.25 x 13.5.
  const double gbps = core::rate_gbps(gen.bytes_sent(), horizon);
  EXPECT_NEAR(gbps, 13.5 * 0.25, 0.6);
  // And on_time tracks the same duty cycle.
  EXPECT_NEAR(static_cast<double>(gen.on_time()) / static_cast<double>(horizon), 0.25,
              0.05);
}

TEST_F(BurstTest, SilentDuringOffPhases) {
  BurstParams params;
  params.mean_on = 50 * core::kMicrosecond;
  params.mean_off = 200 * core::kMicrosecond;
  BurstGenerator gen(0, 8, params, nullptr, &arena_, core::Rng(2));
  // Consecutive sends within a burst are packet-time spaced; gaps between
  // bursts are much longer. Both must appear.
  core::Time now = 0;
  int long_gaps = 0;
  int short_gaps = 0;
  core::Time last_send = -1;
  while (now < 20 * core::kMillisecond) {
    auto res = gen.poll(now);
    if (res.pkt != ib::kNullPacket) {
      if (last_send >= 0) {
        const core::Time gap = now - last_send;
        if (gap > 10 * core::kMicrosecond) ++long_gaps;
        if (gap <= 2 * core::transmit_time(ib::kMtuBytes, params.rate_gbps)) ++short_gaps;
      }
      last_send = now;
      const std::int32_t bytes = arena_.get(res.pkt).bytes;
      arena_.release(res.pkt);
      now += core::transmit_time(bytes, params.rate_gbps);
    } else {
      now = res.retry_at;
    }
  }
  EXPECT_GT(long_gaps, 5);
  EXPECT_GT(short_gaps, 50);
}

TEST_F(BurstTest, FixedDestinationHonoured) {
  BurstParams params;
  params.fixed_destination = true;
  params.destination = 5;
  BurstGenerator gen(0, 8, params, nullptr, &arena_, core::Rng(3));
  core::Time now = 0;
  for (int i = 0; i < 500 && now < 50 * core::kMillisecond;) {
    auto res = gen.poll(now);
    if (res.pkt != ib::kNullPacket) {
      EXPECT_EQ(arena_.get(res.pkt).dst, 5);
      arena_.release(res.pkt);
      ++i;
      now += 1000;
    } else {
      now = res.retry_at;
    }
  }
}

TEST_F(BurstTest, RedrawsDestinationPerBurst) {
  BurstParams params;
  params.mean_on = 20 * core::kMicrosecond;
  params.mean_off = 20 * core::kMicrosecond;
  params.new_destination_per_burst = true;
  BurstGenerator gen(0, 32, params, nullptr, &arena_, core::Rng(4));
  std::map<ib::NodeId, int> dsts;
  core::Time now = 0;
  while (now < 10 * core::kMillisecond) {
    auto res = gen.poll(now);
    if (res.pkt != ib::kNullPacket) {
      ++dsts[arena_.get(res.pkt).dst];
      arena_.release(res.pkt);
      now += core::transmit_time(ib::kMtuBytes, params.rate_gbps);
    } else {
      now = res.retry_at;
    }
  }
  // Many bursts, many destinations.
  EXPECT_GT(gen.bursts_started(), 50);
  EXPECT_GT(dsts.size(), 10u);
  EXPECT_EQ(dsts.count(0), 0u);  // never self
}

TEST_F(BurstTest, RespectsFlowGate) {
  class BlockAllGate : public cc::FlowGate {
   public:
    core::Time flow_ready_at(ib::NodeId) const override { return core::kSecond; }
  } gate;
  BurstParams params;
  BurstGenerator gen(0, 8, params, &gate, &arena_, core::Rng(5));
  core::Time now = 0;
  for (int i = 0; i < 100; ++i) {
    auto res = gen.poll(now);
    EXPECT_EQ(res.pkt, ib::kNullPacket);
    ASSERT_GT(res.retry_at, now);
    now = res.retry_at;
    if (now >= 100 * core::kMillisecond) break;
  }
  EXPECT_EQ(gen.bytes_sent(), 0);
}

TEST_F(BurstTest, DeterministicBySeed) {
  BurstParams params;
  BurstGenerator a(0, 8, params, nullptr, &arena_, core::Rng(7));
  BurstGenerator b(0, 8, params, nullptr, &arena_, core::Rng(7));
  core::Time now_a = 0;
  core::Time now_b = 0;
  for (int i = 0; i < 200; ++i) {
    auto ra = a.poll(now_a);
    auto rb = b.poll(now_b);
    EXPECT_EQ(ra.pkt == ib::kNullPacket, rb.pkt == ib::kNullPacket);
    if (ra.pkt != ib::kNullPacket) {
      EXPECT_EQ(arena_.get(ra.pkt).dst, arena_.get(rb.pkt).dst);
      arena_.release(ra.pkt);
      arena_.release(rb.pkt);
      now_a += 1000;
      now_b += 1000;
    } else {
      EXPECT_EQ(ra.retry_at, rb.retry_at);
      now_a = ra.retry_at;
      now_b = rb.retry_at;
    }
  }
}

}  // namespace
}  // namespace ibsim::traffic
