#include "traffic/scenario.hpp"

#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "topo/builders.hpp"

namespace ibsim::traffic {
namespace {

ScenarioSpec windy_spec(double fraction_b, double p) {
  ScenarioSpec spec;
  spec.fraction_b = fraction_b;
  spec.p = p;
  spec.fraction_c_of_rest = 0.8;
  spec.n_hotspots = 8;
  return spec;
}

TEST(Scenario, RoleCountsMatchFractions) {
  const Scenario scen(648, windy_spec(0.25, 0.5), core::Rng(1));
  EXPECT_EQ(scen.count(NodeRole::B), 162);
  EXPECT_EQ(scen.count(NodeRole::C), 389);  // 0.8 x 486, rounded
  EXPECT_EQ(scen.count(NodeRole::V), 97);
}

TEST(Scenario, AllBAndAllVExtremes) {
  const Scenario all_b(100, windy_spec(1.0, 0.3), core::Rng(2));
  EXPECT_EQ(all_b.count(NodeRole::B), 100);
  ScenarioSpec spec = windy_spec(0.0, 0.0);
  spec.fraction_c_of_rest = 0.0;
  const Scenario all_v(100, spec, core::Rng(3));
  EXPECT_EQ(all_v.count(NodeRole::V), 100);
}

TEST(Scenario, RolesAreSeedDeterministic) {
  const Scenario a(100, windy_spec(0.5, 0.5), core::Rng(42));
  const Scenario b(100, windy_spec(0.5, 0.5), core::Rng(42));
  for (ib::NodeId n = 0; n < 100; ++n) EXPECT_EQ(a.role(n), b.role(n));
  EXPECT_EQ(a.schedule().hotspots(), b.schedule().hotspots());
}

TEST(Scenario, DifferentSeedsPlaceRolesDifferently) {
  const Scenario a(200, windy_spec(0.5, 0.5), core::Rng(1));
  const Scenario b(200, windy_spec(0.5, 0.5), core::Rng(2));
  int diff = 0;
  for (ib::NodeId n = 0; n < 200; ++n) diff += (a.role(n) != b.role(n)) ? 1 : 0;
  EXPECT_GT(diff, 10);
}

TEST(Scenario, InstallAttachesGeneratorsToAllActiveNodes) {
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(16);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  ScenarioSpec spec = windy_spec(0.5, 0.5);
  spec.n_hotspots = 2;
  Scenario scen(16, spec, core::Rng(4));
  scen.install(fab, sched);
  EXPECT_EQ(scen.generators().size(), 16u);  // every node sends
}

TEST(Scenario, InactiveCNodesGetNoGenerator) {
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(16);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  ScenarioSpec spec = windy_spec(0.0, 0.0);
  spec.c_nodes_active = false;
  spec.n_hotspots = 2;
  Scenario scen(16, spec, core::Rng(5));
  scen.install(fab, sched);
  EXPECT_EQ(static_cast<std::int32_t>(scen.generators().size()),
            scen.count(NodeRole::V));
}

TEST(Scenario, GeneratorPMatchesRole) {
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(16);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  ScenarioSpec spec = windy_spec(0.5, 0.3);
  spec.n_hotspots = 2;
  Scenario scen(16, spec, core::Rng(6));
  scen.install(fab, sched);
  for (const BNodeGenerator* gen : scen.generators()) {
    switch (scen.role(gen->node())) {
      case NodeRole::B: EXPECT_DOUBLE_EQ(gen->params().p, 0.3); break;
      case NodeRole::C: EXPECT_DOUBLE_EQ(gen->params().p, 1.0); break;
      case NodeRole::V: EXPECT_DOUBLE_EQ(gen->params().p, 0.0); break;
    }
  }
}

TEST(Scenario, DescribeMentionsParameters) {
  const std::string desc = windy_spec(0.25, 0.6).describe();
  EXPECT_NE(desc.find("B=25%"), std::string::npos);
  EXPECT_NE(desc.find("p=60%"), std::string::npos);
  EXPECT_NE(desc.find("hotspots=8"), std::string::npos);
}

TEST(Scenario, RoleNames) {
  EXPECT_STREQ(role_name(NodeRole::B), "B");
  EXPECT_STREQ(role_name(NodeRole::C), "C");
  EXPECT_STREQ(role_name(NodeRole::V), "V");
}

TEST(Scenario, ZeroHotspotsDegradesContributorsToUniform) {
  // A zero-weight hotspot destination set: B and C nodes have hotspot
  // shares but nowhere to aim them — they must degenerate to pure
  // uniform senders, not divide by zero or park traffic forever.
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(8);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  ScenarioSpec spec = windy_spec(0.5, 0.7);
  spec.n_hotspots = 0;
  Scenario scen(8, spec, core::Rng(8));
  scen.install(fab, sched);
  ASSERT_EQ(scen.schedule().n_hotspots(), 0);
  for (const BNodeGenerator* gen : scen.generators()) {
    EXPECT_DOUBLE_EQ(gen->params().p, 0.0);
  }
  // And traffic actually flows.
  fab.start(sched);
  sched.run_until(200 * core::kMicrosecond);
  EXPECT_GT(fab.total_delivered_bytes(), 0);
}

TEST(Scenario, TwoNodeFabricRunsEndToEnd) {
  // The smallest fabric a scenario accepts: two end nodes on one
  // crossbar. Every draw of the uniform distribution must hit the one
  // other endpoint and traffic must flow both ways.
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(2);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  ScenarioSpec spec;
  spec.fraction_b = 0.0;
  spec.fraction_c_of_rest = 0.0;  // two V nodes, pure uniform
  spec.n_hotspots = 1;
  Scenario scen(2, spec, core::Rng(9));
  scen.install(fab, sched);
  fab.start(sched);
  sched.run_until(500 * core::kMicrosecond);
  EXPECT_GT(fab.hca(0).delivered_bytes(), 0);
  EXPECT_GT(fab.hca(1).delivered_bytes(), 0);
}

TEST(Scenario, MovesLandExactlyOnWindowBoundaries) {
  // A lifetime that divides both warmup and sim_time schedules moves
  // exactly on the window edges. Simulation::run stops at run_until(warmup)
  // and run_until(sim_time), both of which execute events at exactly the
  // stop time — so all five moves (100..500us) must be in, every run.
  sim::SimConfig config;
  config.topology = sim::TopologyKind::SingleSwitch;
  config.single_switch_nodes = 8;
  config.scenario.n_hotspots = 1;
  config.scenario.hotspot_lifetime = 100 * core::kMicrosecond;
  config.sim_time = 500 * core::kMicrosecond;
  config.warmup = 100 * core::kMicrosecond;
  sim::Simulation simulation(config);
  const sim::SimResult r = simulation.run();
  EXPECT_EQ(simulation.scenario().schedule().moves(), 5);
  // And the boundary handling is deterministic run to run.
  sim::Simulation again(config);
  const sim::SimResult r2 = again.run();
  EXPECT_EQ(r.delivered_bytes, r2.delivered_bytes);
  EXPECT_EQ(r.events_executed, r2.events_executed);
}

TEST(ScenarioDeath, DoubleInstallAborts) {
  core::Scheduler sched;
  const topo::Topology topo = topo::single_switch(4);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  const cc::CcManager ccm(ib::CcParams::disabled());
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);
  ScenarioSpec spec = windy_spec(0.0, 0.0);
  spec.n_hotspots = 1;
  Scenario scen(4, spec, core::Rng(7));
  scen.install(fab, sched);
  EXPECT_DEATH(scen.install(fab, sched), "twice");
}

}  // namespace
}  // namespace ibsim::traffic
