// End-to-end telemetry: run real simulations with the probes attached and
// check the CC feedback loop shows up in the counters, the CSV sampler
// produces rows, and per-run counter snapshots reach SimResult.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "sim/simulation.hpp"

namespace ibsim::sim {
namespace {

SimConfig hotspot_config() {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, 3);  // 18 nodes
  config.sim_time = 2 * core::kMillisecond;
  config.warmup = 500 * core::kMicrosecond;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;
  return config;
}

std::int64_t counter(const SimResult& r, const std::string& name) {
  const auto it = r.counters.find(name);
  return it == r.counters.end() ? -1 : it->second;
}

TEST(TelemetryIntegration, CongestedRunFiresTheCcFeedbackLoop) {
  SimConfig config = hotspot_config();
  config.telemetry.counters = true;
  const SimResult r = run_sim(config);

  // Every stage of the loop left a mark: switches detected congestion and
  // marked FECN, destinations turned marks into CNPs, sources received
  // the BECNs and throttled.
  EXPECT_GT(counter(r, "fabric.fecn_marked"), 0);
  EXPECT_GT(counter(r, "fabric.becn_sent"), 0);
  EXPECT_GT(counter(r, "fabric.becn_delivered"), 0);
  EXPECT_GT(counter(r, "fabric.throttle_events"), 0);
  EXPECT_GT(counter(r, "fabric.arb_grants"), 0);

  // The counters agree with the independently collected statistics.
  EXPECT_EQ(counter(r, "fabric.fecn_marked"), static_cast<std::int64_t>(r.fecn_marked));
  EXPECT_EQ(counter(r, "fabric.becn_sent"), static_cast<std::int64_t>(r.cnps_sent));
  EXPECT_EQ(counter(r, "fabric.becn_delivered"), static_cast<std::int64_t>(r.becn_received));

  // CC configuration is published alongside.
  EXPECT_EQ(counter(r, "cc.enabled"), 1);
}

TEST(TelemetryIntegration, UncongestedRunStaysQuiet) {
  SimConfig config = hotspot_config();
  config.scenario.fraction_c_of_rest = 0.0;  // uniform traffic, no hotspot
  config.scenario.n_hotspots = 0;
  // Inject far below the drain rate and detect at a lax threshold
  // (weight 4 = 12/16 of the buffer): transient sender collisions on a
  // shared sink queue a couple of packets at most, which the probes must
  // not report as congestion. The aggressive default (weight 15 = one
  // MTU) would mark even those blips.
  config.scenario.capacity_gbps = 1.0;
  config.cc.threshold_weight = 4;
  config.telemetry.counters = true;
  const SimResult r = run_sim(config);

  EXPECT_EQ(counter(r, "fabric.fecn_marked"), 0);
  EXPECT_EQ(counter(r, "fabric.becn_sent"), 0);
  EXPECT_EQ(counter(r, "fabric.becn_delivered"), 0);
  EXPECT_EQ(counter(r, "fabric.throttle_events"), 0);
  EXPECT_GT(counter(r, "fabric.arb_grants"), 0);  // traffic still flowed
}

TEST(TelemetryIntegration, TelemetryOffLeavesNoCounters) {
  const SimResult r = run_sim(hotspot_config());
  EXPECT_TRUE(r.counters.empty());
}

TEST(TelemetryIntegration, CountersCsvGetsOneRowPerInterval) {
  const std::string path = "telemetry_integration_counters.csv";
  SimConfig config = hotspot_config();
  config.telemetry.counters_csv = path;
  config.telemetry.sample_interval = 100 * core::kMicrosecond;
  const SimResult r = run_sim(config);
  EXPECT_FALSE(r.counters.empty());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header.rfind("t_us,", 0), 0u) << header;
  EXPECT_NE(header.find("fabric.fecn_marked"), std::string::npos);
  EXPECT_NE(header.find("fabric.queued_bytes"), std::string::npos);

  int rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  // 2 ms at 100 us cadence: the first sample lands at 100 us, the last at
  // 2000 us (scheduler runs events at the stop time inclusively).
  EXPECT_GE(rows, 19);
  EXPECT_LE(rows, 21);
  std::remove(path.c_str());
}

TEST(TelemetryIntegration, TraceCapturesTheCcFeedbackLoop) {
  const std::string path = "telemetry_integration.trace.json";
  SimConfig config = hotspot_config();
  config.telemetry.trace_path = path;
  config.telemetry.trace_categories = "cc,queues,credits";
  const SimResult r = run_sim(config);
  EXPECT_GT(r.fecn_marked, 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // FECN marking, BECN delivery and CCTI evolution all traced.
  EXPECT_NE(text.find("\"FECN mark\""), std::string::npos);
  EXPECT_NE(text.find("\"CNP sent\""), std::string::npos);
  EXPECT_NE(text.find("\"BECN delivered\""), std::string::npos);
  EXPECT_NE(text.find("\"ccti\""), std::string::npos);
  // Arbitration grants were not enabled — the high-volume category stays out.
  EXPECT_EQ(text.find("\"cat\":\"arb\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TelemetryIntegration, DetailedModeRegistersPerPortInstruments) {
  SimConfig config = hotspot_config();
  config.telemetry.counters = true;
  config.telemetry.detailed = true;
  const SimResult r = run_sim(config);

  bool saw_queue_gauge = false;
  bool saw_stall_counter = false;
  bool saw_hca_ccti = false;
  for (const auto& [name, value] : r.counters) {
    if (name.find(".queue_bytes") != std::string::npos) saw_queue_gauge = true;
    if (name.find(".credit_stall_ps") != std::string::npos) saw_stall_counter = true;
    if (name.rfind("hca.", 0) == 0 && name.find(".cc.ccti") != std::string::npos) {
      saw_hca_ccti = true;
    }
  }
  EXPECT_TRUE(saw_queue_gauge);
  EXPECT_TRUE(saw_stall_counter);
  EXPECT_TRUE(saw_hca_ccti);
}

}  // namespace
}  // namespace ibsim::sim
