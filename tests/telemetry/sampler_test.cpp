#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/time.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::telemetry {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class SamplerTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "sampler_test_out.csv";
};

TEST_F(SamplerTest, WritesHeaderAndOneRowPerInterval) {
  CounterRegistry reg;
  const auto c = reg.counter("fabric.fecn_marked");
  const auto g = reg.gauge("fabric.queued_bytes");

  core::Scheduler sched;
  CounterSampler sampler(&reg, 10 * core::kMicrosecond, path_);
  ASSERT_TRUE(sampler.install(sched));

  reg.add(c, 5);
  reg.set(g, 123);
  sched.run_until(35 * core::kMicrosecond);  // samples at 10, 20, 30 us
  sampler.close();

  EXPECT_EQ(sampler.rows_written(), 3u);
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "t_us,fabric.fecn_marked,fabric.queued_bytes");
  EXPECT_EQ(lines[1], "10.000,5,123");
}

TEST_F(SamplerTest, RefreshHookRunsBeforeEachRow) {
  CounterRegistry reg;
  const auto g = reg.gauge("pulled");

  core::Scheduler sched;
  std::int64_t pulls = 0;
  CounterSampler sampler(&reg, 10 * core::kMicrosecond, path_,
                         [&](core::Time) { reg.set(g, ++pulls); });
  ASSERT_TRUE(sampler.install(sched));
  sched.run_until(25 * core::kMicrosecond);
  sampler.close();

  EXPECT_EQ(pulls, 2);
  const auto lines = read_lines(path_);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "10.000,1");
  EXPECT_EQ(lines[2], "20.000,2");
}

TEST_F(SamplerTest, ColumnsFrozenAtInstall) {
  CounterRegistry reg;
  (void)reg.counter("early");

  core::Scheduler sched;
  CounterSampler sampler(&reg, 10 * core::kMicrosecond, path_);
  ASSERT_TRUE(sampler.install(sched));
  (void)reg.counter("late");  // after install: not a column
  sched.run_until(15 * core::kMicrosecond);
  sampler.close();

  const auto lines = read_lines(path_);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "t_us,early");
  EXPECT_EQ(lines[1].find("late"), std::string::npos);
}

TEST_F(SamplerTest, UnopenableFileReportsFailure) {
  CounterRegistry reg;
  core::Scheduler sched;
  CounterSampler sampler(&reg, core::kMicrosecond, "/nonexistent-dir/out.csv");
  EXPECT_FALSE(sampler.install(sched));
}

}  // namespace
}  // namespace ibsim::telemetry
