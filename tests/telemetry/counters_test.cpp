#include "telemetry/counters.hpp"

#include <gtest/gtest.h>

namespace ibsim::telemetry {
namespace {

TEST(CounterRegistry, ResolvesStableHandles) {
  CounterRegistry reg;
  const auto a = reg.counter("fabric.fecn_marked");
  const auto b = reg.gauge("fabric.queued_bytes");
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.idx, b.idx);

  // Re-resolving the same name yields the same handle.
  const auto a2 = reg.counter("fabric.fecn_marked");
  EXPECT_EQ(a.idx, a2.idx);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(CounterRegistry, CounterAccumulatesGaugeOverwrites) {
  CounterRegistry reg;
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  reg.inc(c);
  reg.add(c, 41);
  reg.set(g, 100);
  reg.set(g, 7);
  EXPECT_EQ(reg.value(c), 42);
  EXPECT_EQ(reg.value(g), 7);
  EXPECT_EQ(reg.kind(static_cast<std::size_t>(c.idx)), CounterRegistry::Kind::Counter);
  EXPECT_EQ(reg.kind(static_cast<std::size_t>(g.idx)), CounterRegistry::Kind::Gauge);
}

TEST(CounterRegistry, InvalidHandleUpdatesAreNoOps) {
  CounterRegistry reg;
  const auto c = reg.counter("real");
  CounterRegistry::Handle invalid;
  EXPECT_FALSE(invalid.valid());
  reg.inc(invalid);
  reg.add(invalid, 99);
  reg.set(invalid, 99);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.value(c), 0);
}

TEST(CounterRegistry, FindLooksUpWithoutCreating) {
  CounterRegistry reg;
  (void)reg.counter("exists");
  EXPECT_TRUE(reg.find("exists").valid());
  EXPECT_FALSE(reg.find("missing").valid());
  EXPECT_EQ(reg.size(), 1u);
}

TEST(CounterRegistry, PrefixSumRollsUpHierarchy) {
  CounterRegistry reg;
  reg.add(reg.counter("switch.3.port.0.fecn"), 5);
  reg.add(reg.counter("switch.3.port.1.fecn"), 7);
  reg.add(reg.counter("switch.4.port.0.fecn"), 11);
  reg.add(reg.counter("hca.0.becn"), 13);
  EXPECT_EQ(reg.prefix_sum("switch.3."), 12);
  EXPECT_EQ(reg.prefix_sum("switch."), 23);
  EXPECT_EQ(reg.prefix_sum(""), 36);
  EXPECT_EQ(reg.prefix_sum("nothing."), 0);
}

TEST(CounterRegistry, SnapshotPreservesRegistrationOrder) {
  CounterRegistry reg;
  reg.add(reg.counter("zz.last_name_first"), 1);
  reg.add(reg.counter("aa.first_name_last"), 2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "zz.last_name_first");
  EXPECT_EQ(snap[0].second, 1);
  EXPECT_EQ(snap[1].first, "aa.first_name_last");
  EXPECT_EQ(snap[1].second, 2);
}

}  // namespace
}  // namespace ibsim::telemetry
