// Chrome trace export: write a trace, then re-read and parse the file
// with a small strict JSON parser to prove the output is well-formed and
// the expected event records are present.

#include "telemetry/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/telemetry.hpp"

namespace ibsim::telemetry {
namespace {

/// Minimal recursive-descent JSON well-formedness checker. Does not build
/// a document tree — it validates syntax and lets the tests assert on the
/// raw text separately.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') { pos_ += 2; continue; }
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class ChromeTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "chrome_trace_test_out.json";
};

TEST_F(ChromeTraceTest, EmptyTelemetryProducesValidJson) {
  Telemetry telemetry{TelemetryOptions{}};  // no tracer at all
  ASSERT_TRUE(write_chrome_trace(path_, telemetry));
  const std::string text = slurp(path_);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST_F(ChromeTraceTest, EveryEventKindRendersAsValidJson) {
  TelemetryOptions options;
  options.trace_categories = kAllCategories;
  Telemetry telemetry{options};
  telemetry.set_track_name(0, "switch 0");
  telemetry.set_track_name(5, "hca 5 (node 2)");

  Tracer* tracer = telemetry.tracer();
  ASSERT_NE(tracer, nullptr);
  tracer->record(Category::kCc, EventKind::kFecnMark, 1000, 0, 2, 0, 8192);
  tracer->record(Category::kCc, EventKind::kBecnSent, 2000, 5, 0, 1, 7);
  tracer->record(Category::kCc, EventKind::kBecnDelivered, 3000, 5, 0, 1, 3);
  tracer->record(Category::kCc, EventKind::kCctiSet, 3500, 5, -1, -1, 12, 3);
  tracer->record(Category::kCc, EventKind::kThrottleStart, 3500, 5, -1, -1, 0, 3);
  tracer->record(Category::kCc, EventKind::kThrottleEnd, 9000, 5, -1, -1, 0, 3);
  tracer->record(Category::kQueues, EventKind::kCongestionEnter, 800, 0, 2, 0, 70000);
  tracer->record(Category::kQueues, EventKind::kCongestionExit, 4000, 0, 2, 0, 60000);
  tracer->record(Category::kCredits, EventKind::kCreditStallStart, 1200, 0, 3, -1, 0);
  tracer->record(Category::kCredits, EventKind::kCreditStallEnd, 2200, 0, 3, -1, 1000);
  tracer->record(Category::kArb, EventKind::kArbGrant, 5000, 0, 2, 0, 2048, 1230);

  ASSERT_TRUE(write_chrome_trace(path_, telemetry));
  const std::string text = slurp(path_);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;

  // Track metadata and one record of each phase type made it out.
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("switch 0"), std::string::npos);
  EXPECT_NE(text.find("hca 5 (node 2)"), std::string::npos);
  EXPECT_NE(text.find("\"FECN mark\""), std::string::npos);
  EXPECT_NE(text.find("\"CNP sent\""), std::string::npos);
  EXPECT_NE(text.find("\"BECN delivered\""), std::string::npos);
  EXPECT_NE(text.find("\"ccti\""), std::string::npos);
  EXPECT_NE(text.find("\"congested\""), std::string::npos);
  EXPECT_NE(text.find("\"credit stall\""), std::string::npos);
  EXPECT_NE(text.find("\"pkt\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\":0"), std::string::npos);
}

TEST_F(ChromeTraceTest, DroppedEventsAreReported) {
  TelemetryOptions options;
  options.trace_categories = kAllCategories;
  options.ring_capacity = 2;
  Telemetry telemetry{options};
  for (int i = 0; i < 5; ++i) {
    telemetry.tracer()->record(Category::kCc, EventKind::kFecnMark, i, 0, 0, 0, 0);
  }
  ASSERT_TRUE(write_chrome_trace(path_, telemetry));
  const std::string text = slurp(path_);
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"dropped_events\":3"), std::string::npos);
}

TEST_F(ChromeTraceTest, UnwritablePathFails) {
  Telemetry telemetry{TelemetryOptions{}};
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/trace.json", telemetry));
}

}  // namespace
}  // namespace ibsim::telemetry
