#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

namespace ibsim::telemetry {
namespace {

TEST(ParseCategories, KnownNamesAllAndEmpty) {
  std::uint32_t mask = 0;
  EXPECT_TRUE(parse_categories("cc", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(Category::kCc));

  EXPECT_TRUE(parse_categories("cc,credits", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(Category::kCc) |
                      static_cast<std::uint32_t>(Category::kCredits));

  EXPECT_TRUE(parse_categories("all", &mask));
  EXPECT_EQ(mask, kAllCategories);

  EXPECT_TRUE(parse_categories("", &mask));
  EXPECT_EQ(mask, kAllCategories);
}

TEST(ParseCategories, RejectsUnknownAndLeavesMaskAlone) {
  std::uint32_t mask = 0xDEAD;
  EXPECT_FALSE(parse_categories("cc,bogus", &mask));
  EXPECT_EQ(mask, 0xDEADu);
}

TEST(ParseCategories, FormatRoundTrips) {
  std::uint32_t mask = 0;
  ASSERT_TRUE(parse_categories("credits,arb", &mask));
  const std::string spelled = format_categories(mask);
  std::uint32_t again = 0;
  ASSERT_TRUE(parse_categories(spelled, &again));
  EXPECT_EQ(mask, again);
  EXPECT_EQ(format_categories(kAllCategories), "cc,credits,queues,arb");
}

TEST(Tracer, RecordsInOrder) {
  Tracer tracer(16, kAllCategories);
  tracer.record(Category::kCc, EventKind::kFecnMark, 100, /*dev=*/3, /*port=*/1, /*vl=*/0,
                4096);
  tracer.record(Category::kCc, EventKind::kBecnSent, 200, /*dev=*/9, /*port=*/0, /*vl=*/1, 5);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.at(0).kind, EventKind::kFecnMark);
  EXPECT_EQ(tracer.at(0).at, 100);
  EXPECT_EQ(tracer.at(0).dev, 3);
  EXPECT_EQ(tracer.at(0).value, 4096);
  EXPECT_EQ(tracer.at(1).kind, EventKind::kBecnSent);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, DisabledCategoryRecordsNothing) {
  Tracer tracer(16, static_cast<std::uint32_t>(Category::kCc));
  EXPECT_TRUE(tracer.enabled(Category::kCc));
  EXPECT_FALSE(tracer.enabled(Category::kArb));
  tracer.record(Category::kArb, EventKind::kArbGrant, 100, 0, 0, 0, 2048);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.record(Category::kCc, EventKind::kFecnMark, 100, 0, 0, 0, 2048);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer tracer(4, kAllCategories);
  for (std::int64_t i = 0; i < 10; ++i) {
    tracer.record(Category::kCc, EventKind::kFecnMark, i, 0, 0, 0, i);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The four newest survive, oldest-first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tracer.at(i).at, static_cast<core::Time>(6 + i));
    EXPECT_EQ(tracer.at(i).value, static_cast<std::int64_t>(6 + i));
  }
}

TEST(Tracer, ClearResets) {
  Tracer tracer(2, kAllCategories);
  for (int i = 0; i < 5; ++i) {
    tracer.record(Category::kCc, EventKind::kFecnMark, i, 0, 0, 0, 0);
  }
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record(Category::kCc, EventKind::kFecnMark, 77, 0, 0, 0, 0);
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.at(0).at, 77);
}

TEST(Tracer, EventRecordStaysCompact) {
  // The ring is sized in events; keep the record cache-friendly.
  EXPECT_LE(sizeof(TraceEvent), 32u);
}

}  // namespace
}  // namespace ibsim::telemetry
