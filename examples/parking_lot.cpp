// The parking-lot fairness scenario from the authors' hardware study
// (Gran et al., IPDPS 2010) that motivated the paper's parameter set:
// on a chain of switches, several sources send to a sink hanging off the
// far end. Without CC, round-robin arbitration at each merge point gives
// flows joining close to the hotspot a full "lane" each while the far
// flows share one — the classic parking-lot unfairness. IB CC throttles
// every contributor to its fair share.
//
//   ./parking_lot [--switches=N] [--sim-time-us=T] [--seed=S]

#include <cstdio>
#include <vector>

#include "analysis/table.hpp"
#include "core/stats.hpp"
#include "sim/cli.hpp"
#include "sim/simulation.hpp"
#include "topo/builders.hpp"

using namespace ibsim;

namespace {

/// A fixed-destination saturating source (everything to the sink) that
/// honours the CC injection-rate delay through the flow gate.
class ToSinkSource final : public fabric::TrafficSource {
 public:
  ToSinkSource(ib::NodeId self, ib::NodeId sink, double gbps, ib::PacketArena* arena,
               const cc::FlowGate* gate)
      : self_(self), sink_(sink), gbps_(gbps), arena_(arena), gate_(gate) {}

  Poll poll(core::Time now) override {
    // Rate-budgeted like the paper's generators: at most gbps x t bytes,
    // and never ahead of the CC throttle.
    auto ready = static_cast<core::Time>(
        static_cast<double>(sent_ + ib::kMtuBytes) * 8000.0 / gbps_);
    if (gate_ != nullptr && gate_->flow_ready_at(sink_) > ready) {
      ready = gate_->flow_ready_at(sink_);
    }
    if (ready > now) return {ib::kNullPacket, ready};
    const ib::PacketHandle h = arena_->allocate();
    ib::Packet& pkt = arena_->get(h);
    pkt.src = self_;
    pkt.dst = sink_;
    pkt.bytes = ib::kMtuBytes;
    pkt.vl = ib::kDataVl;
    pkt.injected_at = now;
    sent_ += pkt.bytes;
    return {h, core::kTimeNever};
  }

 private:
  ib::NodeId self_;
  ib::NodeId sink_;
  double gbps_;
  ib::PacketArena* arena_;
  const cc::FlowGate* gate_;
  std::int64_t sent_ = 0;
};

struct RunResult {
  std::vector<double> per_source_gbps;
  double sink_gbps = 0.0;
  double jain = 0.0;
};

RunResult run(bool cc_on, std::int32_t switches, core::Time sim_time, std::uint64_t seed) {
  (void)seed;
  core::Scheduler sched;
  // One node per switch; the node on the last switch is the sink, every
  // other node sends to it. Traffic from switch 0 crosses the most
  // merge points.
  const topo::Topology topo = topo::linear_chain(switches, 1);
  const topo::RoutingTables routing = topo::RoutingTables::compute(topo);
  ib::CcParams cc = cc_on ? ib::CcParams::paper_table1() : ib::CcParams::disabled();
  cc.ccti_increase = 4;  // quick loop for a short demo run
  cc.ccti_timer = 38;
  const cc::CcManager ccm(cc, 128, 13.5);
  fabric::Fabric fab(topo, routing, fabric::FabricParams{}, ccm, sched);

  const ib::NodeId sink = switches - 1;
  std::vector<std::unique_ptr<ToSinkSource>> sources;
  std::vector<core::RateCounter> rx_by_src(static_cast<std::size_t>(switches));

  class PerSourceObserver final : public fabric::SinkObserver {
   public:
    explicit PerSourceObserver(std::vector<core::RateCounter>* by_src) : by_src_(by_src) {}
    void on_delivered(ib::NodeId, const ib::Packet& pkt, core::Time) override {
      (*by_src_)[static_cast<std::size_t>(pkt.src)].add(pkt.bytes);
    }

   private:
    std::vector<core::RateCounter>* by_src_;
  } observer(&rx_by_src);

  for (ib::NodeId n = 0; n < switches - 1; ++n) {
    const cc::FlowGate* gate = cc_on ? &fab.hca(n).cc_agent() : nullptr;
    sources.push_back(std::make_unique<ToSinkSource>(n, sink, 13.5, &fab.arena(), gate));
    fab.hca(n).attach_source(sources.back().get());
  }
  fab.hca(sink).attach_observer(&observer);

  fab.start(sched);
  const core::Time warmup = sim_time / 2;
  sched.run_until(warmup);
  for (auto& counter : rx_by_src) counter.reset(warmup);
  sched.run_until(sim_time);

  RunResult result;
  for (ib::NodeId n = 0; n < switches - 1; ++n) {
    result.per_source_gbps.push_back(rx_by_src[static_cast<std::size_t>(n)].gbps(sim_time));
    result.sink_gbps += result.per_source_gbps.back();
  }
  result.jain = core::jain_fairness(result.per_source_gbps);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  sim::Cli cli("parking_lot: chain-topology fairness with and without IB CC");
  cli.add_int("switches", 5, "switches in the chain (sources = switches - 1)");
  cli.add_int("sim-time-us", 30000, "simulated time in microseconds");
  cli.add_int("seed", 1, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto switches = static_cast<std::int32_t>(cli.get_int("switches"));
  const core::Time sim_time = cli.get_int("sim-time-us") * core::kMicrosecond;

  std::printf("parking lot: %d sources merging towards one sink along a chain\n\n",
              switches - 1);

  analysis::TextTable table({"Source (hops from sink)", "CC off Gb/s", "CC on Gb/s"});
  const RunResult off = run(false, switches, sim_time, 1);
  const RunResult on = run(true, switches, sim_time, 1);
  for (std::size_t i = 0; i < off.per_source_gbps.size(); ++i) {
    table.add_row({"source " + std::to_string(i) + " (" +
                       std::to_string(off.per_source_gbps.size() - i) + " merges)",
                   analysis::fmt(off.per_source_gbps[i]), analysis::fmt(on.per_source_gbps[i])});
  }
  table.add_row({"sink total", analysis::fmt(off.sink_gbps), analysis::fmt(on.sink_gbps)});
  table.add_row({"Jain fairness", analysis::fmt(off.jain), analysis::fmt(on.jain)});
  table.print();

  std::printf("\nWithout CC the source nearest the sink grabs the biggest share\n"
              "(parking-lot problem); enabling CC drives Jain towards 1.0.\n");
  return 0;
}
