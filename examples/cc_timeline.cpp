// Watch a congestion tree live: eight contributors pile onto one hotspot
// from t=0; the timeline sampler records how the tree's queued bytes
// grow, FECN marking kicks in, CCTIs climb, the tree is pruned back, and
// — after the contributors stop — how the CCTI_Timer recovers the flows.
// The section III narrative ("branches grow and get pruned") as data.
//
//   ./cc_timeline [--interval-us=N] [--csv=path] [--no-cc]

#include <cstdio>

#include "sim/cli.hpp"
#include "sim/simulation.hpp"
#include "sim/timeline.hpp"

int main(int argc, char** argv) {
  using namespace ibsim;

  sim::Cli cli("cc_timeline: life cycle of a congestion tree");
  cli.add_int("interval-us", 50, "sampling interval in microseconds");
  cli.add_int("sim-time-us", 6000, "simulated time in microseconds");
  cli.add_int("seed", 1, "random seed");
  cli.add_flag("no-cc", "watch the tree persist without congestion control");
  cli.add_string("csv", "", "write the full time series as CSV");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.topology = sim::TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(8, 4, 4);  // 32 nodes
  config.sim_time = cli.get_int("sim-time-us") * core::kMicrosecond;
  config.warmup = 0;  // the transient IS the experiment
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.cc.enabled = !cli.flag("no-cc");
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.75;
  config.scenario.n_hotspots = 1;

  std::printf("congestion-tree timeline: %d nodes, 1 hotspot, CC %s\n\n",
              config.clos.node_count(), config.cc.enabled ? "on" : "off");

  sim::Simulation simulation(config);
  sim::TimelineSampler timeline(&simulation.fabric(), &simulation.metrics(),
                                cli.get_int("interval-us") * core::kMicrosecond);
  timeline.install(simulation.sched());
  const sim::SimResult result = simulation.run();

  timeline.print();
  std::printf("\npeak congestion-tree size: %.1f KB queued | final result: "
              "hotspot %.2f Gb/s, victims %.2f Gb/s\n",
              static_cast<double>(timeline.peak_queued_bytes()) / 1024.0,
              result.hotspot_rcv_gbps, result.non_hotspot_rcv_gbps);

  const std::string csv = cli.get_string("csv");
  if (!csv.empty()) {
    timeline.write_csv(csv);
    std::printf("timeline CSV written to %s\n", csv.c_str());
  }
  return 0;
}
