// Windy congestion trees on a configurable fat-tree: every node is a
// B node sending p% of its traffic to one of a few hotspots and the rest
// uniformly (paper section III-B). Sweeps p and prints victim throughput
// and the total-throughput gain from enabling CC — a miniature of the
// paper's figure 8 that runs in seconds.
//
//   ./windy_forest [--leaves=L] [--spines=S] [--nodes-per-leaf=N]
//                  [--hotspots=H] [--sim-time-us=T] [--seed=SEED]

#include <cstdio>

#include "analysis/table.hpp"
#include "sim/cli.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace ibsim;

  sim::Cli cli("windy_forest: B-node p-sweep on a small fat-tree");
  cli.add_int("leaves", 8, "leaf switches");
  cli.add_int("spines", 4, "spine switches");
  cli.add_int("nodes-per-leaf", 4, "end nodes per leaf");
  cli.add_int("hotspots", 2, "number of hotspots");
  cli.add_int("sim-time-us", 4000, "simulated time in microseconds");
  cli.add_int("seed", 1, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.topology = sim::TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(
      static_cast<std::int32_t>(cli.get_int("leaves")),
      static_cast<std::int32_t>(cli.get_int("spines")),
      static_cast<std::int32_t>(cli.get_int("nodes-per-leaf")));
  config.sim_time = cli.get_int("sim-time-us") * core::kMicrosecond;
  config.warmup = config.sim_time / 2;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.scenario.fraction_b = 1.0;  // pure windy forest
  config.scenario.n_hotspots = static_cast<std::int32_t>(cli.get_int("hotspots"));
  config.cc.ccti_increase = 4;  // quick loop for a demo-sized run
  config.cc.ccti_timer = 38;

  std::printf("windy forest: %d nodes, %d hotspots, all B nodes\n\n",
              config.clos.node_count(), config.scenario.n_hotspots);

  analysis::TextTable table({"p (%)", "victims CC off", "victims CC on", "total gain (x)"});
  for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    config.scenario.p = p;
    config.cc.enabled = false;
    const sim::SimResult off = sim::run_sim(config);
    config.cc.enabled = true;
    const sim::SimResult on = sim::run_sim(config);
    const double gain = off.total_throughput_gbps > 0
                            ? on.total_throughput_gbps / off.total_throughput_gbps
                            : 0.0;
    table.add_row({analysis::fmt(p * 100, 0), analysis::fmt(off.non_hotspot_rcv_gbps),
                   analysis::fmt(on.non_hotspot_rcv_gbps), analysis::fmt(gain, 2)});
  }
  table.print();
  std::printf(
      "\nThe gain peaks at intermediate-to-high p — hotspot traffic congests,\n"
      "yet enough uniform traffic remains to be rescued from HOL blocking\n"
      "(the cap shape of the paper's figures 5-8c). Note the low-p rows: on\n"
      "a fabric this small the congestion trees blanket most paths, so the\n"
      "marking also throttles innocent uniform flows and CC can cost more\n"
      "than it saves — collateral that vanishes at the paper's 648-node\n"
      "scale (run bench/fig8_windy100, where CC wins at every p > 0).\n");
  return 0;
}
