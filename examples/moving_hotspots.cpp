// Moving congestion trees (paper section III-C): hotspots relocate every
// `lifetime`, tearing congestion trees down and regrowing them elsewhere
// — the "cloud" workload whose communication pattern nobody knows in
// advance. Shows how the CC advantage shrinks (but doesn't turn harmful)
// as the dynamics speed up.
//
//   ./moving_hotspots [--lifetime-us=L] [--steps=N] [--sim-time-us=T]

#include <cstdio>

#include "analysis/table.hpp"
#include "sim/cli.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace ibsim;

  sim::Cli cli("moving_hotspots: CC advantage vs hotspot lifetime");
  cli.add_int("lifetime-us", 1600, "longest hotspot lifetime in microseconds");
  cli.add_int("steps", 4, "number of lifetimes swept (halving each step)");
  cli.add_int("seed", 1, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.topology = sim::TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(8, 4, 4);  // 32 nodes
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.8;  // silent trees...
  config.scenario.n_hotspots = 2;
  config.cc.ccti_increase = 4;
  config.cc.ccti_timer = 38;

  std::printf("moving hotspots: %d nodes, 80%% contributors, 2 hotspots\n\n",
              config.clos.node_count());

  analysis::TextTable table(
      {"Lifetime (us)", "all-node rcv CC off", "all-node rcv CC on", "gain"});
  core::Time lifetime = cli.get_int("lifetime-us") * core::kMicrosecond;
  for (int step = 0; step < cli.get_int("steps"); ++step, lifetime /= 2) {
    config.scenario.hotspot_lifetime = lifetime;  // ...that now move
    config.sim_time = 8 * lifetime;
    config.warmup = lifetime;
    config.cc.enabled = false;
    const sim::SimResult off = sim::run_sim(config);
    config.cc.enabled = true;
    const sim::SimResult on = sim::run_sim(config);
    table.add_row({analysis::fmt(static_cast<double>(lifetime) / core::kMicrosecond, 0),
                   analysis::fmt(off.all_rcv_gbps), analysis::fmt(on.all_rcv_gbps),
                   analysis::fmt(off.all_rcv_gbps > 0 ? on.all_rcv_gbps / off.all_rcv_gbps : 0,
                                 2)});
  }
  table.print();
  std::printf("\nShorter lifetimes spread load by themselves (receive rates rise)\n"
              "while the CC feedback loop has less time to act — the advantage\n"
              "narrows, exactly the trend of the paper's figures 9 and 10.\n");
  return 0;
}
