// General-purpose simulation runner: every knob of the library exposed
// on the command line, results as a table and optional CSV timeline.
// This is the "use the library without writing C++" entry point for
// downstream users.
//
//   ./simulate --topology=clos --leaves=36 --spines=18 --nodes-per-leaf=18
//              --fraction-b=1.0 --p=60 --hotspots=8 --sim-time-us=10000
//
// Run ./simulate --help for the full knob list.

#include <chrono>
#include <cstdio>
#include <string>

#include "ccalg/registry.hpp"
#include "core/log.hpp"
#include "sim/cli.hpp"
#include "sim/config_file.hpp"
#include "sim/simulation.hpp"
#include "sim/timeline.hpp"
#include "store/key.hpp"
#include "store/result_store.hpp"
#include "store/version.hpp"
#include "telemetry/summary.hpp"
#include "workload/registry.hpp"

namespace {

/// The headline result block — shared by the live-run path and the
/// result-store hit path, which must print identical stdout (the store's
/// contract is that a cached run is indistinguishable from a fresh one).
void print_results(const ibsim::sim::SimConfig& config, const ibsim::sim::SimResult& r) {
  using ibsim::core::kMicrosecond;
  using ibsim::core::kTimeNever;
  std::printf("\nresults over the measurement window:\n");
  std::printf("  avg receive rate, hotspots      %10.3f Gb/s\n", r.hotspot_rcv_gbps);
  std::printf("  avg receive rate, non-hotspots  %10.3f Gb/s\n", r.non_hotspot_rcv_gbps);
  std::printf("  avg receive rate, all nodes     %10.3f Gb/s\n", r.all_rcv_gbps);
  std::printf("  total network throughput        %10.1f Gb/s\n", r.total_throughput_gbps);
  std::printf("  Jain fairness (non-hotspots)    %10.4f\n", r.jain_non_hotspot);
  std::printf("  median / p99 packet latency     %7.1f / %.1f us\n", r.median_latency_us,
              r.p99_latency_us);
  std::printf("  FECN marked / CNPs / BECNs      %llu / %llu / %llu\n",
              static_cast<unsigned long long>(r.fecn_marked),
              static_cast<unsigned long long>(r.cnps_sent),
              static_cast<unsigned long long>(r.becn_received));
  std::printf("  events executed                 %llu\n",
              static_cast<unsigned long long>(r.events_executed));

  if (r.workload.ran) {
    std::printf("\napplication workload (%s):\n", config.workload.name.c_str());
    std::printf("  messages completed              %llu / %llu\n",
                static_cast<unsigned long long>(r.workload.messages_completed),
                static_cast<unsigned long long>(r.workload.messages_total));
    if (r.workload.completed) {
      std::printf("  makespan                        %10.1f us\n", r.workload.makespan_us());
    } else {
      std::printf("  makespan                        did not finish within sim-time\n");
    }
    std::printf("  per-phase finish times (us):");
    for (std::size_t p = 0; p < r.workload.phase_finish.size(); ++p) {
      const ibsim::core::Time t = r.workload.phase_finish[p];
      if (t == kTimeNever) {
        std::printf(" -");
      } else {
        std::printf(" %.1f", static_cast<double>(t) / kMicrosecond);
      }
    }
    std::printf("\n  per-rank finish times (us):");
    for (std::size_t rr = 0; rr < r.workload.rank_finish.size(); ++rr) {
      const ibsim::core::Time t = r.workload.rank_finish[rr];
      if (t == kTimeNever) {
        std::printf(" -");
      } else {
        std::printf(" %.1f", static_cast<double>(t) / kMicrosecond);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ibsim;

  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--version") {
      std::printf("%s\n", store::version_line("simulate").c_str());
      return 0;
    }
  }

  sim::Cli cli("simulate: run one InfiniBand CC simulation from the command line");
  // Topology.
  cli.add_string("topology", "clos", "clos | single | chain | dumbbell | mesh | ft3");
  cli.add_int("leaves", 12, "clos: leaf switches");
  cli.add_int("spines", 6, "clos: spine switches");
  cli.add_int("nodes-per-leaf", 6, "clos: end nodes per leaf");
  cli.add_int("switch-nodes", 8, "single: end nodes on the crossbar");
  cli.add_int("chain-switches", 4, "chain: switches");
  cli.add_int("chain-nodes", 2, "chain: nodes per switch");
  cli.add_int("dumbbell-nodes", 4, "dumbbell: nodes per side");
  cli.add_int("mesh-rows", 4, "mesh: rows");
  cli.add_int("mesh-cols", 4, "mesh: columns");
  cli.add_int("mesh-nodes", 4, "mesh: nodes per switch");
  cli.add_string("ft3-preset", "", "ft3: canned shape, 2k | 10k (overrides the ft3-* knobs)");
  cli.add_int("ft3-pods", 4, "ft3: pods");
  cli.add_int("ft3-leaves", 2, "ft3: leaf switches per pod");
  cli.add_int("ft3-aggs", 2, "ft3: aggregation switches per pod");
  cli.add_int("ft3-cores", 4, "ft3: core switches");
  cli.add_int("ft3-nodes", 4, "ft3: end nodes per leaf");
  // Traffic.
  cli.add_double("fraction-b", 0.0, "share of B nodes (0..1)");
  cli.add_double("p", 50.0, "B-node hotspot percentage (0..100)");
  cli.add_double("fraction-c", 0.8, "C share of the non-B nodes (0..1)");
  cli.add_int("hotspots", 1, "number of hotspots");
  cli.add_int("lifetime-us", 0, "hotspot lifetime (0 = static)");
  cli.add_double("inject-gbps", 13.5, "per-node injection capacity");
  // Application workload (replaces the synthetic scenario when set).
  cli.add_string("workload", "",
                 "application workload (incast | ring_allreduce | tree_allreduce | "
                 "all_to_all | stencil | idle | file; 'help' lists)");
  cli.add_flag("list-workloads", "print the registered workloads and exit");
  cli.add_string("workload-file", "", "workload DSL file (with --workload=file)");
  cli.add_int("workload-ranks", 0, "ranks of the canned patterns (0 = all nodes)");
  cli.add_int("workload-bytes", 64 * 1024, "payload bytes per workload message");
  cli.add_int("workload-iters", 1, "iterations of the canned patterns");
  cli.add_int("workload-compute-us", 0, "per-iteration compute delay");
  cli.add_flag("workload-no-background", "leave non-rank nodes silent");
  // Congestion control.
  cli.add_flag("no-cc", "disable congestion control");
  cli.add_string("cc-algo", "iba_a10",
                 "reaction-point algorithm (iba_a10 | dcqcn | aimd | none; 'help' lists)");
  cli.add_flag("list-cc-algos", "print the registered CC algorithms and exit");
  cli.add_int("threshold", 15, "threshold weight 0..15");
  cli.add_int("marking-rate", 0, "Marking_Rate");
  cli.add_int("ccti-increase", 1, "CCTI_Increase");
  cli.add_int("ccti-limit", 127, "CCTI_Limit");
  cli.add_int("ccti-timer", 150, "CCTI_Timer (1.024us units)");
  cli.add_flag("sl-level", "operate CC per SL instead of per QP");
  cli.add_flag("linear-cct", "linear CCT fill instead of geometric");
  // Run control.
  cli.add_flag("no-fast-path",
               "run the reference one-event-per-action fabric path (A/B baseline; "
               "results are bit-identical either way)");
  cli.add_int("sim-time-us", 5000, "simulated microseconds");
  cli.add_int("warmup-us", 1000, "warmup microseconds excluded from metrics");
  cli.add_int("seed", 1, "random seed");
  cli.add_int("shards", 1,
              "fabric shards for intra-run parallelism (1 = serial engine, "
              "0 = one per resolved thread)");
  cli.add_int("threads", 0,
              "worker threads (shard workers here, sweep workers elsewhere); "
              "precedence: --threads > config-file threads > IBSIM_THREADS > hardware");
  cli.add_int("timeline-us", 0, "sampling interval for --timeline-csv (0 = off)");
  cli.add_string("timeline-csv", "", "write a telemetry time series CSV");
  cli.add_string("config", "", "key=value config file applied before the flags");
  cli.add_string("result-store", "",
                 "on-disk result store directory: serve this run from cache if "
                 "present, publish it otherwise");
  cli.add_flag("version", "print the code version stamp and exit");
  cli.add_flag("verbose", "info-level logging");
  // Telemetry.
  cli.add_string("trace", "", "write a Chrome trace-event JSON (Perfetto-loadable)");
  cli.add_string("trace-categories", "all", "trace categories: cc,credits,queues,arb");
  cli.add_int("trace-ring", 1 << 20, "trace ring capacity (events)");
  cli.add_string("counters-csv", "", "write a counter time-series CSV");
  cli.add_int("telemetry-sample-us", 50, "counter CSV sampling interval");
  cli.add_flag("telemetry-detailed", "per-port/per-node instruments, not just aggregates");
  cli.add_flag("counters", "collect and print fabric counters even without a file");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.flag("verbose")) core::Log::set_level(core::LogLevel::Info);

  const auto& algo_registry = ccalg::CcAlgorithmRegistry::instance();
  if (cli.flag("list-cc-algos") || cli.get_string("cc-algo") == "help") {
    std::printf("registered congestion-control algorithms:\n");
    for (const std::string& name : algo_registry.names()) {
      std::printf("  %s\n", name.c_str());
    }
    return 0;
  }
  const auto& workload_registry = workload::WorkloadRegistry::instance();
  if (cli.flag("list-workloads") || cli.get_string("workload") == "help") {
    std::printf("registered workloads:\n");
    for (const std::string& name : workload_registry.names()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("  file (DSL file via --workload-file)\n");
    return 0;
  }

  sim::SimConfig config;
  if (!cli.get_string("config").empty()) {
    const std::string err = sim::apply_config_file(cli.get_string("config"), &config);
    if (!err.empty()) {
      std::fprintf(stderr, "config error: %s\n", err.c_str());
      return 2;
    }
  }
  const std::string topology = cli.get_string("topology");
  if (topology == "clos") {
    config.topology = sim::TopologyKind::FoldedClos;
    config.clos = topo::FoldedClosParams::scaled(
        static_cast<std::int32_t>(cli.get_int("leaves")),
        static_cast<std::int32_t>(cli.get_int("spines")),
        static_cast<std::int32_t>(cli.get_int("nodes-per-leaf")));
  } else if (topology == "single") {
    config.topology = sim::TopologyKind::SingleSwitch;
    config.single_switch_nodes = static_cast<std::int32_t>(cli.get_int("switch-nodes"));
  } else if (topology == "chain") {
    config.topology = sim::TopologyKind::LinearChain;
    config.chain_switches = static_cast<std::int32_t>(cli.get_int("chain-switches"));
    config.chain_nodes_per_switch = static_cast<std::int32_t>(cli.get_int("chain-nodes"));
  } else if (topology == "dumbbell") {
    config.topology = sim::TopologyKind::Dumbbell;
    config.dumbbell_nodes_per_side = static_cast<std::int32_t>(cli.get_int("dumbbell-nodes"));
  } else if (topology == "mesh") {
    config.topology = sim::TopologyKind::Mesh2D;
    config.mesh_rows = static_cast<std::int32_t>(cli.get_int("mesh-rows"));
    config.mesh_cols = static_cast<std::int32_t>(cli.get_int("mesh-cols"));
    config.mesh_nodes_per_switch = static_cast<std::int32_t>(cli.get_int("mesh-nodes"));
  } else if (topology == "ft3") {
    config.topology = sim::TopologyKind::FatTree3;
    const std::string preset = cli.get_string("ft3-preset");
    if (preset == "2k") {
      config.fat_tree3 = topo::FatTree3Params::scale_2k();
    } else if (preset == "10k") {
      config.fat_tree3 = topo::FatTree3Params::scale_10k();
    } else if (!preset.empty()) {
      std::fprintf(stderr, "unknown ft3 preset '%s' (valid: 2k | 10k)\n", preset.c_str());
      return 2;
    } else {
      config.fat_tree3.pods = static_cast<std::int32_t>(cli.get_int("ft3-pods"));
      config.fat_tree3.leaves_per_pod = static_cast<std::int32_t>(cli.get_int("ft3-leaves"));
      config.fat_tree3.aggs_per_pod = static_cast<std::int32_t>(cli.get_int("ft3-aggs"));
      config.fat_tree3.cores = static_cast<std::int32_t>(cli.get_int("ft3-cores"));
      config.fat_tree3.nodes_per_leaf = static_cast<std::int32_t>(cli.get_int("ft3-nodes"));
    }
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", topology.c_str());
    return 2;
  }

  config.scenario.fraction_b = cli.get_double("fraction-b");
  config.scenario.p = cli.get_double("p") / 100.0;
  config.scenario.fraction_c_of_rest = cli.get_double("fraction-c");
  config.scenario.n_hotspots = static_cast<std::int32_t>(cli.get_int("hotspots"));
  config.scenario.capacity_gbps = cli.get_double("inject-gbps");
  if (cli.get_int("lifetime-us") > 0) {
    config.scenario.hotspot_lifetime = cli.get_int("lifetime-us") * core::kMicrosecond;
  }

  if (cli.was_set("workload")) config.workload.name = cli.get_string("workload");
  if (cli.was_set("workload-file")) config.workload.file = cli.get_string("workload-file");
  if (cli.was_set("workload-ranks")) {
    config.workload.ranks = static_cast<std::int32_t>(cli.get_int("workload-ranks"));
  }
  if (cli.was_set("workload-bytes")) config.workload.message_bytes = cli.get_int("workload-bytes");
  if (cli.was_set("workload-iters")) {
    config.workload.iterations = static_cast<std::int32_t>(cli.get_int("workload-iters"));
  }
  if (cli.was_set("workload-compute-us")) {
    config.workload.compute = cli.get_int("workload-compute-us") * core::kMicrosecond;
  }
  if (cli.flag("workload-no-background")) config.workload.background_uniform = false;
  if (config.workload.active()) {
    const std::string& wname = config.workload.name;
    if (wname == "file") {
      if (config.workload.file.empty()) {
        std::fprintf(stderr, "--workload=file needs --workload-file (or workload_file)\n");
        return 2;
      }
      workload::WorkloadSpec spec;
      const std::string err = workload::load_workload_file(config.workload.file, &spec);
      if (!err.empty()) {
        std::fprintf(stderr, "workload file error: %s\n", err.c_str());
        return 2;
      }
    } else if (!workload_registry.contains(wname)) {
      std::fprintf(stderr, "unknown workload '%s' (valid: %s, or 'file')\n", wname.c_str(),
                   workload_registry.names_joined().c_str());
      return 2;
    }
  }

  config.cc.enabled = !cli.flag("no-cc");
  if (cli.was_set("cc-algo") || config.cc_algo.empty()) {
    config.cc_algo = cli.get_string("cc-algo");
  }
  if (!algo_registry.contains(config.cc_algo)) {
    std::fprintf(stderr, "unknown cc algorithm '%s' (valid: %s)\n", config.cc_algo.c_str(),
                 algo_registry.names_joined().c_str());
    return 2;
  }
  config.cc.threshold_weight = static_cast<std::uint8_t>(cli.get_int("threshold"));
  config.cc.marking_rate = static_cast<std::uint16_t>(cli.get_int("marking-rate"));
  config.cc.ccti_increase = static_cast<std::uint16_t>(cli.get_int("ccti-increase"));
  config.cc.ccti_limit = static_cast<std::uint16_t>(cli.get_int("ccti-limit"));
  config.cc.ccti_timer = static_cast<std::uint16_t>(cli.get_int("ccti-timer"));
  config.cc.sl_level = cli.flag("sl-level");
  config.cc.cct_fill = cli.flag("linear-cct") ? ib::CctFill::Linear : ib::CctFill::Geometric;

  config.sim_time = cli.get_int("sim-time-us") * core::kMicrosecond;
  config.warmup = cli.get_int("warmup-us") * core::kMicrosecond;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (cli.flag("no-fast-path")) config.fabric_fast_path = false;
  if (cli.was_set("shards")) {
    if (cli.get_int("shards") < 0) {
      std::fprintf(stderr, "--shards must be >= 0 (0 = one per resolved thread)\n");
      return 2;
    }
    config.shards = static_cast<std::int32_t>(cli.get_int("shards"));
  }
  if (cli.was_set("threads")) {
    if (cli.get_int("threads") < 0) {
      std::fprintf(stderr, "--threads must be >= 0 (0 = IBSIM_THREADS, then hardware)\n");
      return 2;
    }
    config.threads = static_cast<std::int32_t>(cli.get_int("threads"));
  }
  if (config.shards != 1 && cli.get_int("timeline-us") > 0) {
    std::fprintf(stderr, "timeline sampling needs the serial engine; forcing --shards=1\n");
    config.shards = 1;
  }

  if (!cli.get_string("trace").empty()) config.telemetry.trace_path = cli.get_string("trace");
  if (cli.was_set("trace-categories")) {
    config.telemetry.trace_categories = cli.get_string("trace-categories");
  }
  if (cli.was_set("trace-ring")) config.telemetry.trace_ring_capacity = cli.get_int("trace-ring");
  if (!cli.get_string("counters-csv").empty()) {
    config.telemetry.counters_csv = cli.get_string("counters-csv");
  }
  if (cli.was_set("telemetry-sample-us")) {
    config.telemetry.sample_interval = cli.get_int("telemetry-sample-us") * core::kMicrosecond;
  }
  if (cli.flag("telemetry-detailed")) config.telemetry.detailed = true;
  if (cli.flag("counters")) config.telemetry.counters = true;
  {
    std::uint32_t mask = 0;
    if (!telemetry::parse_categories(config.telemetry.trace_categories, &mask)) {
      std::fprintf(stderr, "unknown trace category in '%s'\n",
                   config.telemetry.trace_categories.c_str());
      return 2;
    }
  }

  // Result store: the --result-store flag overrides a config-file
  // result_store key. Timeline and telemetry outputs need a live
  // simulation (they sample it as it runs), so those runs bypass the
  // store rather than silently produce empty side files on a hit.
  if (cli.was_set("result-store")) config.result_store = cli.get_string("result-store");
  std::shared_ptr<store::ResultStore> result_store;
  if (!config.result_store.empty()) {
    if (config.telemetry.active() || cli.get_int("timeline-us") > 0) {
      std::fprintf(stderr,
                   "result store bypassed: telemetry/timeline output needs a live run\n");
    } else {
      result_store = store::StoreRegistry::instance().open(config.result_store);
      if (!result_store->error().empty()) {
        std::fprintf(stderr, "result store disabled: %s\n", result_store->error().c_str());
      }
    }
  }

  std::printf("%s\n", config.describe().c_str());

  std::string run_key;
  sim::SimResult cached_result;
  bool cached = false;
  if (result_store != nullptr) {
    run_key = store::run_key(config);
    cached = result_store->get(run_key, &cached_result);
  }

  if (cached) {
    std::fprintf(stderr, "result store hit: %s\n", run_key.c_str());
    print_results(config, cached_result);
  } else {
    sim::Simulation simulation(config);
    std::unique_ptr<sim::TimelineSampler> timeline;
    if (cli.get_int("timeline-us") > 0) {
      timeline = std::make_unique<sim::TimelineSampler>(
          &simulation.fabric(), &simulation.metrics(),
          cli.get_int("timeline-us") * core::kMicrosecond);
      timeline->install(simulation.sched());
    }
    const auto wall_start = std::chrono::steady_clock::now();
    const sim::SimResult r = simulation.run();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    if (result_store != nullptr) {
      result_store->put(run_key, store::canonical_config_text(config), r, wall_seconds);
    }

    print_results(config, r);

    const std::string timeline_csv = cli.get_string("timeline-csv");
    if (timeline != nullptr && !timeline_csv.empty()) {
      timeline->write_csv(timeline_csv);
      std::printf("timeline written to %s\n", timeline_csv.c_str());
    }

    if (const telemetry::Telemetry* t = simulation.telemetry(); t != nullptr) {
      std::printf("\n%s",
                  telemetry::counters_table(t->registry(), t->detailed()).render().c_str());
      if (t->tracer() != nullptr) {
        std::printf("trace: %s -> %s\n", telemetry::describe_tracer(*t->tracer()).c_str(),
                    config.telemetry.trace_path.c_str());
      }
      if (!config.telemetry.counters_csv.empty()) {
        std::printf("counters CSV written to %s\n", config.telemetry.counters_csv.c_str());
      }
    }
  }
  if (result_store != nullptr) {
    std::fprintf(stderr, "%s\n", result_store->stats_line().c_str());
  }
  return 0;
}
