// Quickstart: congestion control on a small fat-tree.
//
// Builds a 6-leaf x 3-spine folded Clos (18 end nodes), points half the
// nodes at a single hotspot, and runs the same scenario twice — with the
// InfiniBand CC mechanism disabled and enabled (paper Table I parameter
// values) — printing the receive rates of hotspot and victim nodes.
//
//   ./quickstart [--nodes-per-leaf=N] [--sim-time-us=T] [--seed=S]

#include <cstdio>

#include "sim/cli.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace ibsim;

  sim::Cli cli("quickstart: IB congestion control on a small fat-tree");
  cli.add_int("nodes-per-leaf", 3, "end nodes per leaf switch");
  cli.add_int("sim-time-us", 2000, "simulated time in microseconds");
  cli.add_int("seed", 1, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  sim::SimConfig config;
  config.topology = sim::TopologyKind::FoldedClos;
  config.clos = topo::FoldedClosParams::scaled(6, 3, static_cast<std::int32_t>(
                                                         cli.get_int("nodes-per-leaf")));
  config.sim_time = cli.get_int("sim-time-us") * core::kMicrosecond;
  config.warmup = config.sim_time / 4;
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Half the nodes hammer one hotspot (C nodes), the rest send uniformly
  // (V nodes) and become the victims of the congestion tree.
  config.scenario.fraction_b = 0.0;
  config.scenario.fraction_c_of_rest = 0.5;
  config.scenario.n_hotspots = 1;

  std::printf("fabric: %d leaves x %d spines, %d end nodes\n", config.clos.leaves,
              config.clos.spines, config.clos.node_count());
  std::printf("scenario: %s\n\n", config.scenario.describe().c_str());

  sim::SimResult result[2];
  for (const bool cc_on : {false, true}) {
    config.cc.enabled = cc_on;
    result[cc_on ? 1 : 0] = sim::run_sim(config);
    const sim::SimResult& r = result[cc_on ? 1 : 0];
    std::printf("CC %-3s | hotspot %6.2f Gb/s | victims %6.2f Gb/s | total %8.2f Gb/s | "
                "FECN %llu, BECN %llu\n",
                cc_on ? "on" : "off", r.hotspot_rcv_gbps, r.non_hotspot_rcv_gbps,
                r.total_throughput_gbps, static_cast<unsigned long long>(r.fecn_marked),
                static_cast<unsigned long long>(r.becn_received));
  }

  const double gain = result[0].non_hotspot_rcv_gbps > 0.0
                          ? result[1].non_hotspot_rcv_gbps / result[0].non_hotspot_rcv_gbps
                          : 0.0;
  std::printf("\nEnabling CC improved the victims' receive rate %.1fx.\n", gain);
  return 0;
}
