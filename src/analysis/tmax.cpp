#include "analysis/tmax.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::analysis {

double tmax_gbps(const TmaxInputs& in) {
  IBSIM_ASSERT(in.n_nodes > 0, "tmax needs nodes");
  const double uniform_offered =
      (static_cast<double>(in.n_b) * (1.0 - in.p) + static_cast<double>(in.n_v)) *
      in.inject_gbps;
  const double per_node = uniform_offered / static_cast<double>(in.n_nodes);
  return std::min(per_node, in.drain_gbps);
}

double hotspot_offered_gbps(const TmaxInputs& in, std::int32_t n_hotspots) {
  if (n_hotspots <= 0) return 0.0;
  // Hotspot-directed load: all of C plus p of B, split across hotspots;
  // uniform traffic also lands on hotspots at 1/n_nodes per sender but
  // that term is negligible and the paper's analysis ignores it too.
  const double hotspot_offered =
      (static_cast<double>(in.n_c) + static_cast<double>(in.n_b) * in.p) * in.inject_gbps;
  return hotspot_offered / static_cast<double>(n_hotspots);
}

}  // namespace ibsim::analysis
