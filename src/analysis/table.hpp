#pragma once

#include <string>
#include <vector>

namespace ibsim::analysis {

/// Simple aligned text table for reproducing the paper's tables on a
/// terminal (and into the experiment logs). Cells are strings; numeric
/// helpers format consistently.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: label + one numeric value (Table II style rows).
  void add_kv(const std::string& label, double value, int precision = 3);

  /// A full-width section banner row.
  void add_section(const std::string& title);

  [[nodiscard]] std::string render() const;
  void print() const;

  /// CSV rendering of the same content (sections become comment lines).
  [[nodiscard]] std::string render_csv() const;

 private:
  struct Row {
    bool section = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Format a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace ibsim::analysis
