#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>

#include "core/assert.hpp"

namespace ibsim::analysis {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  IBSIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  IBSIM_ASSERT(cells.size() == headers_.size(), "row width does not match headers");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_kv(const std::string& label, double value, int precision) {
  IBSIM_ASSERT(headers_.size() == 2, "add_kv needs a two-column table");
  add_row({label, fmt(value, precision)});
}

void TextTable::add_section(const std::string& title) {
  rows_.push_back(Row{true, {title}});
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.section) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  std::size_t total = headers_.size() * 3;
  for (std::size_t w : widths) total += w;

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size() + 1, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  out.append(total, '-');
  out += '\n';
  for (const Row& row : rows_) {
    if (row.section) {
      out += "-- " + row.cells.front() + " ";
      if (row.cells.front().size() + 4 < total)
        out.append(total - row.cells.front().size() - 4, '-');
      out += '\n';
    } else {
      emit_row(row.cells);
    }
  }
  return out;
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += cells[c];
    }
    out += '\n';
  };
  emit(headers_);
  for (const Row& row : rows_) {
    if (row.section) {
      out += "# " + row.cells.front() + '\n';
    } else {
      emit(row.cells);
    }
  }
  return out;
}

}  // namespace ibsim::analysis
