#include "analysis/series.hpp"

#include <cstdio>
#include <fstream>

#include "core/assert.hpp"

namespace ibsim::analysis {

double Series::max_y() const {
  double best = 0.0;
  for (double v : y) best = v > best ? v : best;
  return best;
}

double Series::x_of_max_y() const {
  double best = 0.0;
  double best_x = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > best) {
      best = y[i];
      best_x = x[i];
    }
  }
  return best_x;
}

Series ratio_series(const std::string& name, const Series& numerator,
                    const Series& denominator) {
  IBSIM_ASSERT(numerator.size() == denominator.size(), "ratio over mismatched series");
  Series out;
  out.name = name;
  for (std::size_t i = 0; i < numerator.size(); ++i) {
    IBSIM_ASSERT(numerator.x[i] == denominator.x[i], "ratio over mismatched x grids");
    const double denom = denominator.y[i];
    out.add(numerator.x[i], denom != 0.0 ? numerator.y[i] / denom : 0.0);
  }
  return out;
}

void write_csv(const std::string& path, const std::string& x_label,
               const std::vector<const Series*>& series) {
  IBSIM_ASSERT(!series.empty(), "CSV needs at least one series");
  std::ofstream out(path);
  IBSIM_ASSERT(out.good(), "cannot open CSV output file");
  out << x_label;
  for (const Series* s : series) out << ',' << s->name;
  out << '\n';
  const std::size_t rows = series.front()->size();
  for (std::size_t i = 0; i < rows; ++i) {
    out << series.front()->x[i];
    for (const Series* s : series) {
      IBSIM_ASSERT(s->size() == rows, "CSV series have mismatched lengths");
      out << ',' << s->y[i];
    }
    out << '\n';
  }
}

void print_series(const std::string& x_label, const std::vector<const Series*>& series) {
  std::printf("%12s", x_label.c_str());
  for (const Series* s : series) std::printf("  %16s", s->name.c_str());
  std::printf("\n");
  if (series.empty()) return;
  const std::size_t rows = series.front()->size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%12.4g", series.front()->x[i]);
    for (const Series* s : series) std::printf("  %16.4f", s->y[i]);
    std::printf("\n");
  }
}

}  // namespace ibsim::analysis
