#pragma once

#include <string>
#include <vector>

namespace ibsim::analysis {

/// A named (x, y) data series — one line of a paper figure.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  void add(double xv, double yv) {
    x.push_back(xv);
    y.push_back(yv);
  }
  [[nodiscard]] std::size_t size() const { return x.size(); }

  /// y at the largest x value (for quick summaries).
  [[nodiscard]] double last_y() const { return y.empty() ? 0.0 : y.back(); }

  /// Maximum y and its x position.
  [[nodiscard]] double max_y() const;
  [[nodiscard]] double x_of_max_y() const;
};

/// Element-wise ratio of two series sharing the same x grid (e.g. the
/// "Y times improvement by enabling CC" curves of figures 5-8c).
[[nodiscard]] Series ratio_series(const std::string& name, const Series& numerator,
                                  const Series& denominator);

/// Write one or more series sharing an x grid as CSV: header
/// `x,<name1>,<name2>,...`, one row per x value.
void write_csv(const std::string& path, const std::string& x_label,
               const std::vector<const Series*>& series);

/// Render aligned columns to stdout (x followed by each series' y),
/// mirroring the CSV layout for terminal reading.
void print_series(const std::string& x_label, const std::vector<const Series*>& series);

}  // namespace ibsim::analysis
