#pragma once

#include <cstdint>

namespace ibsim::analysis {

/// Inputs of the analytic "tmax" model the paper plots in figures 5-8(a):
/// the theoretical maximum average receive rate of the non-hotspot nodes
/// if the hotspots were not present, i.e. if all traffic offered to
/// non-hotspot destinations arrived unhindered.
struct TmaxInputs {
  std::int32_t n_nodes = 648;
  std::int32_t n_b = 0;   ///< B nodes (send p to hotspot, 1-p uniform)
  std::int32_t n_c = 0;   ///< C nodes (send everything to a hotspot)
  std::int32_t n_v = 0;   ///< V nodes (send everything uniformly)
  double p = 0.0;         ///< hotspot fraction of B traffic
  double inject_gbps = 13.5;
  double drain_gbps = 13.6;  ///< per-node receive ceiling
};

/// tmax = min(uniform traffic offered / n_nodes, drain ceiling).
///
/// Uniform (non-hotspot-directed) offered load is n_b (1-p) + n_v nodes'
/// worth of injection; the paper averages it over all nodes of the
/// network (e.g. 25% B at p=0: (162+97) x 13.5 / 648 = 5.4 Gb/s, the
/// tmax value quoted in section V-B.1).
[[nodiscard]] double tmax_gbps(const TmaxInputs& in);

/// Expected per-hotspot receive rate when contributors saturate it: the
/// drain ceiling (13.6 Gb/s in the calibrated model), provided offered
/// hotspot load exceeds it.
[[nodiscard]] double hotspot_offered_gbps(const TmaxInputs& in, std::int32_t n_hotspots);

}  // namespace ibsim::analysis
