#pragma once

#include <cstdint>

#include "ib/cc_params.hpp"

namespace ibsim::cc {

/// Congestion detection and FECN marking state of one switch output
/// Port VL (IBA "Switch Features", paper section II.1).
///
/// The detector watches the bytes queued across all input-buffer VoQs
/// that target this output port and VL. When the queue crosses the
/// threshold derived from the threshold weight, the Port VL is
/// *threshold-exceeded*; whether it actually enters the congestion state
/// for a given forwarded packet additionally requires the port to be the
/// *root* of congestion (it has credits to send) or to have the
/// Victim_Mask set. Marking of an eligible packet is then subject to
/// Packet_Size and Marking_Rate.
class SwitchPortCc {
 public:
  SwitchPortCc() = default;

  /// Configure: `threshold_bytes` is the absolute queue threshold this
  /// port uses (derived by the fabric from the weight and the reference
  /// buffer size); `victim_mask` marks even without credits.
  void configure(const ib::CcParams& params, std::int64_t threshold_bytes, bool victim_mask);

  /// VoQ bookkeeping, called by the switch on every enqueue/dequeue
  /// towards this output Port VL. The return value reports a threshold
  /// crossing (telemetry probe point): on_enqueue returns true when this
  /// update pushed the queue *into* the threshold-exceeded state,
  /// on_dequeue when it fell back out of it. Callers without telemetry
  /// ignore it and the comparison folds away.
  bool on_enqueue(std::int32_t bytes) {
    const bool was = threshold_exceeded();
    queued_bytes_ += bytes;
    return !was && threshold_exceeded();
  }
  bool on_dequeue(std::int32_t bytes) {
    const bool was = threshold_exceeded();
    queued_bytes_ -= bytes;
    return was && !threshold_exceeded();
  }

  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }
  /// Strictly greater: a queue of exactly the threshold is not yet
  /// congested. With weight 15 (threshold = one MTU) this matters: the
  /// second packet of a back-to-back two-packet message always waits
  /// behind the first, and that alone must not look like congestion.
  [[nodiscard]] bool threshold_exceeded() const {
    return enabled_ && queued_bytes_ > threshold_bytes_;
  }

  /// Marking decision for a packet being granted through this Port VL.
  /// `credits_after` is the downstream credit balance after the grant
  /// (the root-of-congestion test); `pkt_bytes` the packet's wire size.
  /// Returns true if the packet's FECN bit must be set.
  [[nodiscard]] bool decide_fecn(std::int64_t credits_after, std::int32_t pkt_bytes);

  // Statistics.
  [[nodiscard]] std::uint64_t marked() const { return marked_; }
  [[nodiscard]] std::uint64_t eligible() const { return eligible_; }
  [[nodiscard]] std::uint64_t victim_suppressed() const { return victim_suppressed_; }

 private:
  bool enabled_ = false;
  bool victim_mask_ = false;
  std::int64_t threshold_bytes_ = INT64_MAX;
  std::int32_t min_markable_bytes_ = 0;
  std::uint16_t marking_rate_ = 0;
  std::int64_t queued_bytes_ = 0;
  std::uint32_t since_last_mark_ = 0;
  std::uint64_t marked_ = 0;
  std::uint64_t eligible_ = 0;
  std::uint64_t victim_suppressed_ = 0;
};

}  // namespace ibsim::cc
