#include "cc/cc_manager.hpp"

#include <cmath>

#include "ccalg/registry.hpp"
#include "core/assert.hpp"

namespace ibsim::cc {

CcManager::CcManager(const ib::CcParams& params, std::size_t cct_entries, double ref_gbps)
    : params_(params),
      cct_(std::make_unique<ib::CongestionControlTable>(cct_entries, ref_gbps)) {
  const std::string err = params_.validate();
  IBSIM_ASSERT(err.empty(), err.c_str());
  IBSIM_ASSERT(cct_entries > params_.ccti_limit, "CCT must cover the CCTI limit");
  // Geometric fill (default): each CCT step adds a few percent of
  // injection-rate delay. Small indices throttle gently (a stray mark on
  // uniform traffic costs a few percent, matching the paper's negligible
  // p=0 penalty), while the top of the table still reaches the deep
  // slowdowns (~1/500) that dozens of contributors per hotspot need to
  // meet their fair share. The linear fill is kept for the CCT ablation.
  if (params_.cct_fill == ib::CctFill::Linear) {
    cct_->populate_linear();
  } else {
    cct_->populate_geometric(params_.cct_base);
  }
}

void CcManager::publish(telemetry::CounterRegistry& registry) const {
  registry.set(registry.gauge("cc.enabled"), params_.enabled ? 1 : 0);
  registry.set(registry.gauge("cc.threshold_weight"), params_.threshold_weight);
  registry.set(registry.gauge("cc.marking_rate"), params_.marking_rate);
  registry.set(registry.gauge("cc.ccti_increase"), params_.ccti_increase);
  registry.set(registry.gauge("cc.ccti_limit"), params_.ccti_limit);
  registry.set(registry.gauge("cc.ccti_timer_ps"), params_.timer_interval());
  registry.set(registry.gauge("cc.sl_level"), params_.sl_level ? 1 : 0);
  // Gauges only carry integers: publish the registry rank of the
  // effective algorithm ("none" when CC is disabled).
  registry.set(registry.gauge("cc.algo"),
               ccalg::CcAlgorithmRegistry::instance().id_of(effective_algo()));
}

std::int64_t CcManager::threshold_bytes(std::int64_t ref_buffer_bytes) const {
  const double fraction = params_.threshold_fraction();
  if (fraction > 1.0) return INT64_MAX;  // weight 0: detection disabled
  auto bytes = static_cast<std::int64_t>(
      std::llround(fraction * static_cast<double>(ref_buffer_bytes)));
  return bytes < 1 ? 1 : bytes;
}

}  // namespace ibsim::cc
