#include "cc/switch_cc.hpp"

#include "core/assert.hpp"

namespace ibsim::cc {

void SwitchPortCc::configure(const ib::CcParams& params, std::int64_t threshold_bytes,
                             bool victim_mask) {
  enabled_ = params.enabled && params.threshold_weight > 0;
  victim_mask_ = victim_mask;
  threshold_bytes_ = threshold_bytes;
  min_markable_bytes_ = params.min_markable_bytes();
  marking_rate_ = params.marking_rate;
}

bool SwitchPortCc::decide_fecn(std::int64_t credits_after, std::int32_t pkt_bytes) {
  if (!threshold_exceeded()) {
    since_last_mark_ = 0;
    return false;
  }
  // Root-of-congestion test: a Port VL without credits is a victim and
  // must not enter the congestion state, unless the Victim_Mask is set.
  if (credits_after <= 0 && !victim_mask_) {
    ++victim_suppressed_;
    return false;
  }
  // Packet_Size: packets at or below the limit are never marked.
  if (pkt_bytes <= min_markable_bytes_) return false;
  ++eligible_;
  // Marking_Rate: mean eligible packets between marks (0 = mark all).
  if (since_last_mark_ < marking_rate_) {
    ++since_last_mark_;
    return false;
  }
  since_last_mark_ = 0;
  ++marked_;
  return true;
}

}  // namespace ibsim::cc
