#pragma once

#include <memory>
#include <string>

#include "ib/cc_params.hpp"
#include "ib/cct.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::cc {

/// The Congestion Control Manager role from the IB architecture: owns the
/// fabric-wide CC parameter set and the Congestion Control Table contents
/// that every channel adapter is configured with.
///
/// The real CC manager is a subnet-management agent; here it is the
/// configuration root the simulation builder distributes to switches
/// (marking parameters) and HCAs (CA parameters + CCT).
class CcManager {
 public:
  /// `cct_entries` sizes the table; it must exceed ccti_limit.
  /// `ref_gbps` is the injection rate IRD delays are computed against.
  explicit CcManager(const ib::CcParams& params, std::size_t cct_entries = 128,
                     double ref_gbps = 13.5);

  [[nodiscard]] const ib::CcParams& params() const { return params_; }
  [[nodiscard]] const ib::CongestionControlTable& cct() const { return *cct_; }
  [[nodiscard]] ib::CongestionControlTable& mutable_cct() { return *cct_; }
  [[nodiscard]] bool enabled() const { return params_.enabled; }

  /// Reaction-point algorithm every channel adapter is configured with
  /// (a ccalg::CcAlgorithmRegistry name; default "iba_a10"). The
  /// *effective* algorithm is "none" whenever CC is disabled.
  void set_algo(const std::string& algo) { algo_ = algo; }
  [[nodiscard]] const std::string& algo() const { return algo_; }
  [[nodiscard]] std::string effective_algo() const {
    return params_.enabled ? algo_ : "none";
  }

  /// Absolute queue threshold (bytes) for a switch output Port VL, given
  /// the reference input-buffer capacity of one VL.
  [[nodiscard]] std::int64_t threshold_bytes(std::int64_t ref_buffer_bytes) const;

  /// Publish the fabric-wide CC configuration into a counter registry as
  /// `cc.*` gauges, so exported counter sets are self-describing (a CSV
  /// or summary read in isolation still shows which CC regime ran).
  void publish(telemetry::CounterRegistry& registry) const;

 private:
  ib::CcParams params_;
  std::string algo_ = "iba_a10";
  std::unique_ptr<ib::CongestionControlTable> cct_;
};

}  // namespace ibsim::cc
