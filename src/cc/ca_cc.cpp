#include "cc/ca_cc.hpp"

#include "ccalg/registry.hpp"
#include "core/assert.hpp"

namespace ibsim::cc {

namespace {
constexpr std::uint32_t kTimerEvent = 0xCC01;
}

CaCcAgent::CaCcAgent(ib::NodeId self, std::int32_t n_nodes, const ib::CcParams& params,
                     const ib::CongestionControlTable* cct, core::Scheduler* sched,
                     CnpSender* cnp_sender, const std::string& algo)
    : self_(self), params_(params), sched_(sched), cnp_sender_(cnp_sender) {
  IBSIM_ASSERT(!params_.enabled || cct != nullptr, "enabled CC agent needs a CCT");
  IBSIM_ASSERT(n_nodes > 0, "agent needs a node count");
  ccalg::CcAlgoContext ctx;
  // SL-level CC shares one state across all destinations of the port.
  ctx.n_flows = params_.sl_level ? 1 : n_nodes;
  ctx.params = params_;
  ctx.cct = cct;
  algo_ = ccalg::CcAlgorithmRegistry::instance().create(
      params_.enabled ? algo : "none", ctx);
  ended_scratch_.reserve(static_cast<std::size_t>(ctx.n_flows));
}

std::int32_t CaCcAgent::flow_index(ib::NodeId dst) const {
  const std::int32_t idx = params_.sl_level ? 0 : dst;
  IBSIM_ASSERT(idx >= 0, "flow destination out of range");
  return idx;
}

core::Time CaCcAgent::flow_ready_at(ib::NodeId dst) const {
  if (!params_.enabled) return 0;
  return algo_->ready_at(flow_index(dst));
}

void CaCcAgent::on_data_granted(ib::NodeId dst, std::int32_t bytes, core::Time end) {
  if (!params_.enabled) return;
  algo_->on_send(flow_index(dst), bytes, end);
}

void CaCcAgent::on_becn(ib::NodeId flow_dst, core::Time now) {
  if (!params_.enabled) return;
  ++becn_received_;
  const ccalg::BecnOutcome out = algo_->on_becn(flow_index(flow_dst), now);
  if (tel_.registry != nullptr) {
    tel_.registry->inc(tel_.becn_delivered);
    if (out.newly_throttled) tel_.registry->inc(tel_.throttle_events);
    tel_.registry->set(tel_.ccti_gauge, out.severity);
  }
  if (tel_.tracer != nullptr && tel_.tracer->enabled(telemetry::Category::kCc)) {
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kBecnDelivered, now,
                        tel_.trace_dev, -1, -1, flow_dst);
    if (out.newly_throttled) {
      tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kThrottleStart, now,
                          tel_.trace_dev, -1, -1, 0, flow_dst);
    }
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kCctiSet, now,
                        tel_.trace_dev, -1, -1, out.severity, flow_dst);
  }
  arm_timer(now);
}

void CaCcAgent::on_fecn(ib::NodeId src) {
  if (!params_.enabled) return;
  if (!algo_->cnp_on_fecn()) return;
  ++cnps_sent_;
  cnp_sender_->send_cnp(src, self_);
}

void CaCcAgent::arm_timer(core::Time now) {
  if (timer_armed_) return;
  const core::Time delay = algo_->timer_delay();
  if (delay == 0) return;
  timer_armed_ = true;
  sched_->schedule_at(now + delay, this, kTimerEvent);
}

void CaCcAgent::on_event(core::Scheduler& sched, const core::Event& ev) {
  IBSIM_ASSERT(ev.kind == kTimerEvent, "CA CC agent received an unknown event");
  ++timer_expirations_;
  timer_armed_ = false;
  const bool trace_cc =
      tel_.tracer != nullptr && tel_.tracer->enabled(telemetry::Category::kCc);
  ended_scratch_.clear();
  const std::int64_t severity =
      algo_->on_timer(sched.now(), trace_cc ? &ended_scratch_ : nullptr);
  if (trace_cc) {
    for (const std::int32_t dst : ended_scratch_) {
      tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kThrottleEnd,
                          sched.now(), tel_.trace_dev, -1, -1, 0, dst);
    }
  }
  if (tel_.registry != nullptr) tel_.registry->set(tel_.ccti_gauge, severity);
  if (trace_cc) {
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kCctiSet, sched.now(),
                        tel_.trace_dev, -1, -1, severity, -1);
  }
  // Keep the chain running while any flow is still throttled.
  arm_timer(sched.now());
}

std::uint16_t CaCcAgent::ccti(ib::NodeId dst) const {
  return algo_->ccti(flow_index(dst));
}

}  // namespace ibsim::cc
