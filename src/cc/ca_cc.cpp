#include "cc/ca_cc.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::cc {

namespace {
constexpr std::uint32_t kTimerEvent = 0xCC01;
}

CaCcAgent::CaCcAgent(ib::NodeId self, std::int32_t n_nodes, const ib::CcParams& params,
                     const ib::CongestionControlTable* cct, core::Scheduler* sched,
                     CnpSender* cnp_sender)
    : self_(self),
      params_(params),
      cct_(cct),
      sched_(sched),
      cnp_sender_(cnp_sender),
      // SL-level CC shares one state across all destinations of the port.
      flows_(params.sl_level ? 1 : static_cast<std::size_t>(n_nodes)) {
  IBSIM_ASSERT(!params_.enabled || cct_ != nullptr, "enabled CC agent needs a CCT");
  IBSIM_ASSERT(n_nodes > 0, "agent needs a node count");
}

CaCcAgent::FlowCc& CaCcAgent::flow(ib::NodeId dst) {
  const std::size_t idx = params_.sl_level ? 0 : static_cast<std::size_t>(dst);
  IBSIM_ASSERT(idx < flows_.size(), "flow destination out of range");
  return flows_[idx];
}

const CaCcAgent::FlowCc& CaCcAgent::flow(ib::NodeId dst) const {
  const std::size_t idx = params_.sl_level ? 0 : static_cast<std::size_t>(dst);
  IBSIM_ASSERT(idx < flows_.size(), "flow destination out of range");
  return flows_[idx];
}

core::Time CaCcAgent::flow_ready_at(ib::NodeId dst) const {
  if (!params_.enabled) return 0;
  return flow(dst).ready_at;
}

void CaCcAgent::on_data_granted(ib::NodeId dst, std::int32_t bytes, core::Time end) {
  if (!params_.enabled) return;
  FlowCc& f = flow(dst);
  if (f.ccti == 0) {
    f.ready_at = end;
    return;
  }
  f.ready_at = end + cct_->ird_delay(f.ccti, bytes);
}

void CaCcAgent::on_becn(ib::NodeId flow_dst, core::Time now) {
  if (!params_.enabled) return;
  ++becn_received_;
  FlowCc& f = flow(flow_dst);
  const bool newly_throttled = f.ccti == 0 && f.active_idx < 0;
  if (newly_throttled) {
    f.active_idx = static_cast<std::int32_t>(active_flows_.size());
    active_flows_.push_back(params_.sl_level ? 0 : flow_dst);
  }
  const std::uint16_t before = f.ccti;
  f.ccti = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(f.ccti + params_.ccti_increase, params_.ccti_limit));
  ccti_total_ += f.ccti - before;
  if (tel_.registry != nullptr) {
    tel_.registry->inc(tel_.becn_delivered);
    if (newly_throttled) tel_.registry->inc(tel_.throttle_events);
    tel_.registry->set(tel_.ccti_gauge, ccti_total_);
  }
  if (tel_.tracer != nullptr && tel_.tracer->enabled(telemetry::Category::kCc)) {
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kBecnDelivered, now,
                        tel_.trace_dev, -1, -1, flow_dst);
    if (newly_throttled) {
      tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kThrottleStart, now,
                          tel_.trace_dev, -1, -1, 0, flow_dst);
    }
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kCctiSet, now,
                        tel_.trace_dev, -1, -1, ccti_total_, flow_dst);
  }
  arm_timer(now);
}

void CaCcAgent::on_fecn(ib::NodeId src) {
  if (!params_.enabled) return;
  ++cnps_sent_;
  cnp_sender_->send_cnp(src, self_);
}

void CaCcAgent::arm_timer(core::Time now) {
  if (timer_armed_ || active_flows_.empty()) return;
  timer_armed_ = true;
  sched_->schedule_at(now + params_.timer_interval(), this, kTimerEvent);
}

void CaCcAgent::on_event(core::Scheduler& sched, const core::Event& ev) {
  IBSIM_ASSERT(ev.kind == kTimerEvent, "CA CC agent received an unknown event");
  ++timer_expirations_;
  timer_armed_ = false;
  // Every expiry of the CCTI_Timer decrements the CCTI of all flows of
  // the port by one, down to CCTI_Min. Only throttled flows are visited;
  // flows reaching zero leave the active list (swap-remove).
  const bool trace_cc =
      tel_.tracer != nullptr && tel_.tracer->enabled(telemetry::Category::kCc);
  for (std::size_t i = 0; i < active_flows_.size();) {
    const std::int32_t dst = active_flows_[i];
    FlowCc& f = flows_[static_cast<std::size_t>(dst)];
    if (f.ccti > params_.ccti_min) {
      --f.ccti;
      --ccti_total_;
    }
    if (f.ccti == 0) {
      f.active_idx = -1;
      active_flows_[i] = active_flows_.back();
      active_flows_.pop_back();
      if (i < active_flows_.size()) {
        flows_[static_cast<std::size_t>(active_flows_[i])].active_idx =
            static_cast<std::int32_t>(i);
      }
      if (trace_cc) {
        tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kThrottleEnd,
                            sched.now(), tel_.trace_dev, -1, -1, 0, dst);
      }
    } else {
      ++i;
    }
  }
  if (tel_.registry != nullptr) tel_.registry->set(tel_.ccti_gauge, ccti_total_);
  if (trace_cc) {
    tel_.tracer->record(telemetry::Category::kCc, telemetry::EventKind::kCctiSet, sched.now(),
                        tel_.trace_dev, -1, -1, ccti_total_, -1);
  }
  // Keep the chain running while any flow is still throttled.
  arm_timer(sched.now());
}

std::uint16_t CaCcAgent::ccti(ib::NodeId dst) const { return flow(dst).ccti; }

}  // namespace ibsim::cc
