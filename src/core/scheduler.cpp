#include "core/scheduler.hpp"

namespace ibsim::core {

std::uint64_t Scheduler::run_until(Time until) {
  stopped_ = false;
  std::uint64_t count = 0;
  for (;;) {
    if (stopped_) break;
    const Event* front = queue_.peek();
    if (front == nullptr || front->at > until) break;
    const Event ev = *front;
    queue_.pop();
    IBSIM_ASSERT(ev.at >= now_, "scheduler time went backwards");
    now_ = ev.at;
    cur_seq_ = ev.seq;
    ev.target->on_event(*this, ev);
    ++count;
    ++executed_;
    ++executed_by_kind_[ev.kind < kKindSlots - 1 ? ev.kind : kKindSlots - 1];
  }
  if (queue_.empty() && until != kTimeNever && now_ < until) {
    // Queue drained before the horizon: advance the clock so metric
    // windows measured against `until` stay well defined.
    now_ = until;
  }
  return count;
}

void Scheduler::clear() {
  queue_.clear();
  now_ = 0;
  next_seq_ = 0;
  cur_seq_ = 0;
  watch_at_ = kTimeNever;
  watch_hit_ = false;
  stopped_ = false;
  external_events_ = 0;
}

}  // namespace ibsim::core
