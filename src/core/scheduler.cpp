#include "core/scheduler.hpp"

#include <algorithm>

namespace ibsim::core {

void Scheduler::sift_up(std::size_t i) {
  Event ev = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!event_after(heap_[parent], ev)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void Scheduler::sift_down(std::size_t i) {
  Event ev = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (event_after(heap_[best], heap_[child])) best = child;
    }
    if (!event_after(ev, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = ev;
}

void Scheduler::schedule_at(Time at, EventHandler* target, std::uint32_t kind,
                            std::uint64_t a, std::uint64_t b) {
  IBSIM_ASSERT(target != nullptr, "event needs a target handler");
  IBSIM_ASSERT(at >= now_, "cannot schedule an event in the past");
  heap_.push_back(Event{at, next_seq_++, target, kind, a, b});
  sift_up(heap_.size() - 1);
}

std::uint64_t Scheduler::run_until(Time until) {
  stopped_ = false;
  std::uint64_t count = 0;
  while (!heap_.empty() && !stopped_) {
    if (heap_.front().at > until) break;
    const Event ev = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    IBSIM_ASSERT(ev.at >= now_, "scheduler time went backwards");
    now_ = ev.at;
    ev.target->on_event(*this, ev);
    ++count;
    ++executed_;
  }
  if (heap_.empty() && until != kTimeNever && now_ < until) {
    // Queue drained before the horizon: advance the clock so metric
    // windows measured against `until` stay well defined.
    now_ = until;
  }
  return count;
}

void Scheduler::clear() {
  heap_.clear();
  stopped_ = false;
}

}  // namespace ibsim::core
