#pragma once

#include <cstdarg>
#include <string>

#include "core/time.hpp"

namespace ibsim::core {

/// Log severity. Default threshold is Warn so benchmark runs stay quiet;
/// tests and examples raise it explicitly when tracing.
enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide logger for the simulator. Not thread-safe by design: the
/// simulation core is single-threaded (parallelism in this repo lives at
/// the experiment-sweep level, one process/simulation per worker).
class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  [[nodiscard]] static bool enabled(LogLevel level);

  /// printf-style logging, prefixed with severity and simulation time.
  static void write(LogLevel level, Time now, const char* fmt, ...)
      __attribute__((format(printf, 3, 4)));
};

#define IBSIM_LOG(lvl, now, ...)                                     \
  do {                                                               \
    if (::ibsim::core::Log::enabled(lvl)) {                          \
      ::ibsim::core::Log::write(lvl, now, __VA_ARGS__);              \
    }                                                                \
  } while (0)

}  // namespace ibsim::core
