#include "core/log.hpp"

#include <cstdio>

namespace ibsim::core {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
bool Log::enabled(LogLevel level) { return level >= g_level && g_level != LogLevel::Off; }

void Log::write(LogLevel level, Time now, const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%s %12s] ", level_name(level), format_time(now).c_str());
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ibsim::core
