#pragma once

#include <cstdint>
#include <vector>

#include "core/assert.hpp"
#include "core/event.hpp"
#include "core/time.hpp"

namespace ibsim::core {

/// Discrete-event scheduler: a 4-ary min-heap of events ordered by
/// (time, insertion sequence). The wider fan-out halves the tree depth
/// of the binary heap and keeps sift paths within fewer cache lines —
/// heap maintenance is the single hottest operation of a busy fabric.
///
/// This is the replacement for the OMNeT++ kernel the paper's model ran
/// on. It is deliberately minimal: schedule, run, stop. Determinism is a
/// hard guarantee — two runs with the same schedule produce identical
/// event orderings, because ties are broken by insertion sequence rather
/// than heap layout.
class Scheduler {
 public:
  Scheduler() { heap_.reserve(1 << 16); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time. Advances only while events execute.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Total events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedule an event at absolute time `at` (must not be in the past).
  void schedule_at(Time at, EventHandler* target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0);

  /// Schedule an event `delay` after the current time.
  void schedule_in(Time delay, EventHandler* target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + delay, target, kind, a, b);
  }

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still execute). Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains or stop() is called.
  std::uint64_t run() { return run_until(kTimeNever); }

  /// Request that the run loop return after the current event.
  void stop() { stopped_ = true; }

  /// Drop all pending events (used between independent experiment runs
  /// sharing one scheduler).
  void clear();

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace ibsim::core
