#pragma once

#include <cstdint>

#include "core/assert.hpp"
#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/time.hpp"

namespace ibsim::core {

/// Discrete-event scheduler over a two-tier event queue: a calendar
/// wheel for the short-horizon events that dominate a busy fabric,
/// backed by a 4-ary min-heap for far-future timers (see EventQueue).
/// The reference heap-only queue remains selectable for A/B testing —
/// both orderings are bit-for-bit identical by construction.
///
/// This is the replacement for the OMNeT++ kernel the paper's model ran
/// on. It is deliberately minimal: schedule, run, stop. Determinism is a
/// hard guarantee — two runs with the same schedule produce identical
/// event orderings, because ties are broken by insertion sequence rather
/// than queue layout.
class Scheduler {
 public:
  explicit Scheduler(QueueKind kind = QueueKind::kTwoTier) : queue_(kind) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Which pending-event structure this scheduler runs on.
  [[nodiscard]] QueueKind queue_kind() const { return queue_.kind(); }

  /// Current simulation time. Advances only while events execute.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events executed so far (lifetime of the scheduler; survives
  /// clear() so sweep harnesses can aggregate across runs).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedule an event at absolute time `at` (must not be in the past).
  void schedule_at(Time at, EventHandler* target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    IBSIM_ASSERT(target != nullptr, "event needs a target handler");
    IBSIM_ASSERT(at >= now_, "cannot schedule an event in the past");
    queue_.push(Event{at, next_seq_++, target, a, b, kind});
  }

  /// Schedule an event `delay` after the current time.
  void schedule_in(Time delay, EventHandler* target, std::uint32_t kind,
                   std::uint64_t a = 0, std::uint64_t b = 0) {
    schedule_at(now_ + delay, target, kind, a, b);
  }

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still execute). Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains or stop() is called.
  std::uint64_t run() { return run_until(kTimeNever); }

  /// Request that the run loop return after the current event.
  void stop() { stopped_ = true; }

  /// Reset to a pristine scheduler: drop all pending events and rewind
  /// the clock and insertion sequence to zero, so independent experiment
  /// runs sharing one scheduler can schedule from t=0 again. Only the
  /// lifetime executed() count survives.
  void clear();

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace ibsim::core
