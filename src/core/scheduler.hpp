#pragma once

#include <array>
#include <cstdint>

#include "core/assert.hpp"
#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/time.hpp"

namespace ibsim::core {

/// Discrete-event scheduler over a two-tier event queue: a calendar
/// wheel for the short-horizon events that dominate a busy fabric,
/// backed by a 4-ary min-heap for far-future timers (see EventQueue).
/// The reference heap-only queue remains selectable for A/B testing —
/// both orderings are bit-for-bit identical by construction.
///
/// This is the replacement for the OMNeT++ kernel the paper's model ran
/// on. It is deliberately minimal: schedule, run, stop. Determinism is a
/// hard guarantee — two runs with the same schedule produce identical
/// event orderings, because ties are broken by insertion sequence rather
/// than queue layout.
class Scheduler {
 public:
  /// Per-kind executed() breakdown: slots 1..5 hold the fabric event
  /// kinds (PacketArrive..RetryInject), slot 0 holds kind-0 events
  /// (bench/test drivers), slot 6 aggregates everything else (timers,
  /// telemetry samples, hotspot moves). Fixed-size array so the hot
  /// path is one indexed increment — no strings, no hashing.
  static constexpr std::size_t kKindSlots = 7;

  explicit Scheduler(QueueKind kind = QueueKind::kTwoTier) : queue_(kind) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Which pending-event structure this scheduler runs on.
  [[nodiscard]] QueueKind queue_kind() const { return queue_.kind(); }

  /// Current simulation time. Advances only while events execute.
  [[nodiscard]] Time now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events executed so far (lifetime of the scheduler; survives
  /// clear() so sweep harnesses can aggregate across runs).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Lifetime executed() broken down by event kind (see kKindSlots for
  /// the slot mapping). Survives clear() like executed().
  [[nodiscard]] const std::array<std::uint64_t, kKindSlots>& executed_by_kind() const {
    return executed_by_kind_;
  }

  /// Sequence number of the event currently being dispatched. Valid only
  /// inside on_event; lets handlers compare their own position in a
  /// same-timestamp tie against a reserved (elided) event's slot.
  [[nodiscard]] std::uint64_t current_seq() const { return cur_seq_; }

  /// Timestamp of the earliest pending event, or kTimeNever when the
  /// queue is empty. Non-const because the calendar queue may lazily
  /// advance its wheel to find the front; the event set is unchanged.
  /// The sharded engine uses this to derive the next lookahead window.
  [[nodiscard]] Time next_event_time() {
    const Event* front = queue_.peek();
    return front == nullptr ? kTimeNever : front->at;
  }

  /// Count one event injected from another shard's mailbox (window-
  /// barrier drain). Pure bookkeeping for the sched.shard.* gauges.
  void note_external_event() { ++external_events_; }

  /// Events injected via note_external_event() since construction or the
  /// last clear(). Per-run state: clear() resets it so snapshot-cache
  /// replays stay bit-identical run to run.
  [[nodiscard]] std::uint64_t external_events() const { return external_events_; }

  /// Schedule an event at absolute time `at` (must not be in the past).
  /// Returns the insertion sequence assigned to the event, which fixes
  /// its position among same-timestamp peers.
  std::uint64_t schedule_at(Time at, EventHandler* target, std::uint32_t kind,
                            std::uint64_t a = 0, std::uint64_t b = 0) {
    IBSIM_ASSERT(target != nullptr, "event needs a target handler");
    IBSIM_ASSERT(at >= now_, "cannot schedule an event in the past");
    const std::uint64_t seq = next_seq_++;
    watch_hit_ |= (at == watch_at_);
    queue_.push(Event{at, seq, target, a, b, kind});
    return seq;
  }

  /// Schedule an event `delay` after the current time.
  std::uint64_t schedule_in(Time delay, EventHandler* target, std::uint32_t kind,
                            std::uint64_t a = 0, std::uint64_t b = 0) {
    return schedule_at(now_ + delay, target, kind, a, b);
  }

  /// Burn one insertion sequence number without scheduling anything.
  /// The fabric fast path reserves the slot an elided event would have
  /// occupied so every event that *does* execute keeps the exact
  /// (at, seq) it would have had on the slow path — the foundation of
  /// the fast-on/fast-off bit-identity guarantee (DESIGN.md §11).
  [[nodiscard]] std::uint64_t reserve_seq() { return next_seq_++; }

  /// Schedule an event into a sequence slot previously obtained from
  /// reserve_seq(). The queue orders by (at, seq), so a deferred wakeup
  /// scheduled late still lands exactly where its eager twin would have.
  void schedule_at_reserved(Time at, std::uint64_t seq, EventHandler* target,
                            std::uint32_t kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    IBSIM_ASSERT(target != nullptr, "event needs a target handler");
    IBSIM_ASSERT(at >= now_, "cannot schedule an event in the past");
    IBSIM_ASSERT(seq < next_seq_, "reserved seq must come from reserve_seq()");
    watch_hit_ |= (at == watch_at_);
    queue_.push(Event{at, seq, target, a, b, kind});
  }

  /// Arm a single-slot collision watch: watch_hit() reports whether any
  /// event has been scheduled at exactly time `at` since this call.
  /// Used by credit-return coalescing to prove no observer can run
  /// between a pending event's slot and a merge into it.
  void arm_watch(Time at) {
    watch_at_ = at;
    watch_hit_ = false;
  }

  /// True iff an event landed on the watched timestamp since arm_watch().
  [[nodiscard]] bool watch_hit() const { return watch_hit_; }

  /// Run until the queue drains or `until` is reached (events at exactly
  /// `until` still execute). Returns the number of events executed.
  std::uint64_t run_until(Time until);

  /// Run until the queue drains or stop() is called.
  std::uint64_t run() { return run_until(kTimeNever); }

  /// Request that the run loop return after the current event.
  void stop() { stopped_ = true; }

  /// Reset to a pristine scheduler: drop all pending events and rewind
  /// the clock and insertion sequence to zero, so independent experiment
  /// runs sharing one scheduler can schedule from t=0 again. Only the
  /// lifetime executed() count survives.
  void clear();

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cur_seq_ = 0;
  Time watch_at_ = kTimeNever;
  bool watch_hit_ = false;
  bool stopped_ = false;
  std::uint64_t external_events_ = 0;
  std::array<std::uint64_t, kKindSlots> executed_by_kind_{};
};

}  // namespace ibsim::core
