#pragma once

#include <cstdint>

#include "core/time.hpp"

namespace ibsim::core {

class Scheduler;
struct Event;

/// Component interface for receiving scheduled events.
///
/// Handlers are plain objects owned by the model (switch ports, HCAs,
/// generators, timers); the scheduler never owns or frees them. Using a
/// virtual dispatch with an integer `kind` instead of std::function keeps
/// event scheduling allocation-free, which matters at the tens of millions
/// of events a single figure reproduction processes.
class EventHandler {
 public:
  virtual ~EventHandler() = default;

  /// Called by the scheduler when an event addressed to this handler
  /// reaches the head of the queue.
  virtual void on_event(Scheduler& sched, const Event& ev) = 0;
};

/// A scheduled occurrence. `kind` and the payload words `a`/`b` are
/// interpreted by the target handler (typically `a` carries a pointer or
/// an index, `b` a secondary index).
///
/// Layout is hot: events are copied during every queue operation, so the
/// ordering key (at, seq) leads the struct and the whole record must stay
/// within a single cache line (see the static_assert below).
struct Event {
  Time at = 0;             ///< absolute firing time
  std::uint64_t seq = 0;   ///< insertion sequence; breaks time ties deterministically
  EventHandler* target = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t kind = 0;
};

static_assert(sizeof(Event) <= 64,
              "Event must fit one cache line; queue ops copy events constantly");

/// Strict weak ordering for the scheduler's queues: earlier time first,
/// then earlier insertion. Guarantees replay determinism independent of
/// queue internals.
[[nodiscard]] inline bool event_after(const Event& lhs, const Event& rhs) {
  if (lhs.at != rhs.at) return lhs.at > rhs.at;
  return lhs.seq > rhs.seq;
}

/// Companion ordering for sorted calendar buckets: (at, seq) ascending.
[[nodiscard]] inline bool event_before(const Event& lhs, const Event& rhs) {
  if (lhs.at != rhs.at) return lhs.at < rhs.at;
  return lhs.seq < rhs.seq;
}

}  // namespace ibsim::core
