#pragma once

#include <cstdio>
#include <cstdlib>

/// IBSIM_ASSERT: model-invariant check, enabled in all build types.
///
/// The simulator's correctness arguments (credit conservation, buffer
/// bounds, FIFO ordering) rely on these invariants holding during every
/// run, including Release benchmarks, so they are not compiled out.
#define IBSIM_ASSERT(cond, msg)                                                \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "ibsim assertion failed at %s:%d: %s\n  %s\n",      \
                   __FILE__, __LINE__, #cond, msg);                            \
      std::abort();                                                            \
    }                                                                          \
  } while (0)
