#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace ibsim::core {

void Summary::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::reset() { *this = Summary{}; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  IBSIM_ASSERT(hi > lo && bins > 0, "histogram needs a positive range and bins");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t cum = underflow_;
  if (cum > target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // Strict inequality: empty bins are skipped, the target falls in the
    // first bin whose cumulative count exceeds it.
    if (cum + counts_[i] > target) {
      const double frac =
          static_cast<double>(target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum += counts_[i];
  }
  return hi_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

void Histogram::absorb(const Histogram& other) {
  IBSIM_ASSERT(lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size(),
               "can only absorb a histogram with identical shape");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void TimeWeighted::set(Time now, double value) {
  IBSIM_ASSERT(now >= last_change_, "time-weighted signal updated out of order");
  weighted_sum_ += value_ * static_cast<double>(now - last_change_);
  value_ = value;
  last_change_ = now;
}

double TimeWeighted::average(Time now) const {
  const Time span = now - window_start_;
  if (span <= 0) return value_;
  const double tail = value_ * static_cast<double>(now - last_change_);
  return (weighted_sum_ + tail) / static_cast<double>(span);
}

void TimeWeighted::reset(Time now) {
  weighted_sum_ = 0.0;
  last_change_ = now;
  window_start_ = now;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace ibsim::core
