#include "core/event_queue.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::core {

// ---------------------------------------------------------------------------
// HeapQueue
// ---------------------------------------------------------------------------

void HeapQueue::sift_up(std::size_t i) {
  Event ev = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!event_after(heap_[parent], ev)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

void HeapQueue::sift_down(std::size_t i) {
  Event ev = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t child = first + 1; child < last; ++child) {
      if (event_after(heap_[best], heap_[child])) best = child;
    }
    if (!event_after(ev, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = ev;
}

void HeapQueue::push(const Event& ev) {
  heap_.push_back(ev);
  sift_up(heap_.size() - 1);
}

void HeapQueue::pop() {
  IBSIM_ASSERT(!heap_.empty(), "popping an empty event heap");
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

// ---------------------------------------------------------------------------
// CalendarQueue
// ---------------------------------------------------------------------------

void CalendarQueue::push(const Event& ev) {
  if (ev.at < base_ + kBucketWidth) {
    // Into (or before) the bucket currently draining. The scheduler
    // guarantees ev.at >= now, so "before base_" only happens when the
    // wheel cursor ran ahead of simulation time while locating the next
    // event; ordering still holds because the overlay merges by
    // (at, seq) against the sorted bucket remainder.
    overlay_.push(ev);
    return;
  }
  if (ev.at < horizon()) {
    // Future bucket: O(1) append, sorted only when the wheel gets there.
    buckets_[(static_cast<std::uint64_t>(ev.at) >> kBucketBits) &
             (kNumBuckets - 1)]
        .push_back(ev);
    ++wheel_count_;
    return;
  }
  far_.push(ev);
}

void CalendarQueue::advance() {
  IBSIM_ASSERT(pos_ == buckets_[cur_].size() && overlay_.empty(),
               "advancing a wheel bucket that still holds events");
  buckets_[cur_].clear();
  pos_ = 0;
  if (wheel_count_ == 0) {
    // Every bucket is empty: jump straight to the bucket of the earliest
    // far event instead of stepping through empty buckets.
    IBSIM_ASSERT(!far_.empty(), "advancing an empty calendar queue");
    base_ = far_.top().at & ~(kBucketWidth - 1);
    cur_ = (static_cast<std::uint64_t>(base_) >> kBucketBits) & (kNumBuckets - 1);
  } else {
    base_ += kBucketWidth;
    cur_ = (cur_ + 1) & (kNumBuckets - 1);
  }
  // Far events that now fall inside this bucket join it before the sort,
  // which is what makes their ordering indistinguishable from events
  // scheduled into the wheel directly.
  std::vector<Event>& bucket = buckets_[cur_];
  const Time end = base_ + kBucketWidth;
  while (!far_.empty() && far_.top().at < end) {
    bucket.push_back(far_.top());
    far_.pop();
    ++wheel_count_;
  }
  std::sort(bucket.begin(), bucket.end(), event_before);
}

const Event* CalendarQueue::peek() {
  for (;;) {
    const Event* bucket_front =
        pos_ < buckets_[cur_].size() ? &buckets_[cur_][pos_] : nullptr;
    if (!overlay_.empty()) {
      const Event& o = overlay_.top();
      if (bucket_front == nullptr || event_before(o, *bucket_front)) {
        front_in_overlay_ = true;
        return &o;
      }
    }
    if (bucket_front != nullptr) {
      front_in_overlay_ = false;
      return bucket_front;
    }
    if (wheel_count_ == 0 && far_.empty()) return nullptr;
    advance();
  }
}

void CalendarQueue::pop() {
  if (front_in_overlay_) {
    overlay_.pop();
    return;
  }
  IBSIM_ASSERT(pos_ < buckets_[cur_].size() && wheel_count_ > 0,
               "calendar pop without a preceding peek");
  ++pos_;
  --wheel_count_;
}

void CalendarQueue::clear() {
  for (auto& bucket : buckets_) bucket.clear();
  cur_ = 0;
  pos_ = 0;
  base_ = 0;
  wheel_count_ = 0;
  front_in_overlay_ = false;
  overlay_.clear();
  far_.clear();
}

}  // namespace ibsim::core
