#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace ibsim::core {

/// Simulation time in integer picoseconds.
///
/// Picosecond resolution keeps every quantity used by the model exact
/// enough for deterministic replay: one byte on a 16 Gb/s InfiniBand
/// 4x DDR data path takes exactly 500 ps, and the CC timer unit
/// (1.024 us) is an exact integer as well.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1000 * kPicosecond;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// Sentinel for "never" / unset deadlines.
inline constexpr Time kTimeNever = INT64_MAX;

/// Serialization delay of `bytes` on a `gbps` (gigabit-per-second,
/// 10^9 bits/s) data path, rounded to the nearest picosecond.
[[nodiscard]] inline Time transmit_time(std::int64_t bytes, double gbps) {
  return static_cast<Time>(std::llround(static_cast<double>(bytes) * 8000.0 / gbps));
}

/// Average rate in Gb/s of `bytes` delivered over `span` (0 if span==0).
[[nodiscard]] inline double rate_gbps(std::int64_t bytes, Time span) {
  if (span <= 0) return 0.0;
  return static_cast<double>(bytes) * 8000.0 / static_cast<double>(span);
}

/// Bytes a `gbps` data path can carry during `span`.
[[nodiscard]] inline std::int64_t capacity_bytes(double gbps, Time span) {
  return static_cast<std::int64_t>(gbps * static_cast<double>(span) / 8000.0);
}

/// Human-readable rendering of a time value ("1.250 ms", "819.2 ns", ...).
[[nodiscard]] std::string format_time(Time t);

}  // namespace ibsim::core
