#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace ibsim::core {

/// Windowed byte/packet counter. `reset(now)` starts a measurement
/// window (used to discard warm-up transients); rates are computed
/// against the window start.
class RateCounter {
 public:
  void add(std::int64_t bytes) {
    bytes_ += bytes;
    ++packets_;
  }
  void reset(Time now) {
    bytes_ = 0;
    packets_ = 0;
    window_start_ = now;
  }
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] std::int64_t packets() const { return packets_; }
  [[nodiscard]] Time window_start() const { return window_start_; }
  /// Average rate in Gb/s between window start and `now`. A zero-length
  /// (or inverted) window reports 0.0 rather than dividing by zero —
  /// callers sample at arbitrary times, including the window-start
  /// instant itself.
  [[nodiscard]] double gbps(Time now) const {
    if (now <= window_start_) return 0.0;
    return rate_gbps(bytes_, now - window_start_);
  }
  /// Fold another counter's traffic into this one (shard-metrics merge;
  /// both counters must share a window start for the rate to be valid).
  void absorb(const RateCounter& other) {
    bytes_ += other.bytes_;
    packets_ += other.packets_;
  }

 private:
  std::int64_t bytes_ = 0;
  std::int64_t packets_ = 0;
  Time window_start_ = 0;
};

/// Running scalar summary: count / mean / min / max (Welford variance).
class Summary {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  void reset();

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi) with overflow/underflow bins.
/// Used for packet latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Linear-interpolated quantile estimate, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  void reset();
  /// Fold another histogram's samples into this one. Both histograms
  /// must have identical bounds and bin counts (asserted).
  void absorb(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. queue
/// occupancy, CCTI level).
class TimeWeighted {
 public:
  void set(Time now, double value);
  [[nodiscard]] double average(Time now) const;
  [[nodiscard]] double current() const { return value_; }
  void reset(Time now);

 private:
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  Time last_change_ = 0;
  Time window_start_ = 0;
};

/// Jain's fairness index of a set of allocations: (sum x)^2 / (n * sum x^2);
/// 1.0 = perfectly fair, 1/n = one node takes everything.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

}  // namespace ibsim::core
