#pragma once

#include <cstdint>
#include <vector>

#include "core/event.hpp"
#include "core/time.hpp"

namespace ibsim::core {

/// Which pending-event structure a Scheduler runs on.
///
/// `kTwoTier` is the production queue: a calendar wheel for the
/// short-horizon events that dominate a busy fabric, backed by a 4-ary
/// heap for far-future timers. `kHeap` is the plain 4-ary heap kept as
/// the reference implementation — the A/B determinism tests prove both
/// produce bit-identical simulations, and the perf harness measures the
/// two against each other.
enum class QueueKind : std::uint8_t { kTwoTier, kHeap };

/// 4-ary min-heap of events ordered by (time, insertion sequence). The
/// wider fan-out halves the tree depth of a binary heap and keeps sift
/// paths within fewer cache lines.
class HeapQueue {
 public:
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Minimum event by (at, seq); undefined when empty.
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  void push(const Event& ev);
  void pop();
  void clear() { heap_.clear(); }

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;
};

/// Two-tier pending-event set: a calendar wheel of fixed-width buckets
/// covering the near future, backed by a HeapQueue for events beyond the
/// wheel horizon.
///
/// The busy-fabric event mix (`kEvLinkFree`, `kEvPacketArrive`,
/// `kEvCreditUpdate`, `kEvSinkFree`) schedules within a few
/// link-serialization times of `now` (an MTU at 16 Gb/s serializes in
/// ~1 us), so nearly every hot-path event lands in the wheel, where push
/// is an O(1) append and pop is an amortized O(1) walk of a sorted
/// bucket. Far-future events (CCTI timers at ~150 us, hotspot
/// relocations at ms scale) overflow into the heap and migrate into
/// their bucket when the wheel reaches them.
///
/// Determinism contract: extraction order is exactly ascending (at, seq)
/// — identical, bit for bit, to the reference HeapQueue — because every
/// bucket is sorted by (at, seq) before it drains, migrated heap events
/// join the bucket before that sort, and same-bucket insertions made
/// while the bucket drains go through a (at, seq)-ordered overlay heap
/// that is merged on extraction.
class CalendarQueue {
 public:
  /// Bucket width of 2^16 ps ~= 65.5 ns: an MTU serialization spans ~16
  /// buckets, so concurrent link events spread instead of piling into
  /// one bucket.
  static constexpr int kBucketBits = 16;
  static constexpr Time kBucketWidth = Time{1} << kBucketBits;
  /// 1024 buckets -> ~67 us horizon; comfortably past every
  /// link-layer delay yet small enough that a full rotation of empty
  /// buckets is a trivial scan.
  static constexpr std::size_t kNumBuckets = 1024;

  CalendarQueue() : buckets_(kNumBuckets) {}

  [[nodiscard]] std::size_t size() const {
    return wheel_count_ + overlay_.size() + far_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void push(const Event& ev);

  /// Minimum pending event by (at, seq), or nullptr when empty. Lazily
  /// advances the wheel (migrating + sorting buckets), which is why this
  /// is non-const; simulation time is not affected.
  [[nodiscard]] const Event* peek();

  /// Remove the event returned by the immediately preceding peek().
  void pop();

  void clear();

 private:
  /// Advance to the next bucket that can hold the earliest event:
  /// one step forward when the wheel still holds events, or a direct
  /// jump to the heap-top's bucket when it does not. Migrates heap
  /// events that fall inside the new bucket, then sorts it.
  void advance();

  [[nodiscard]] Time horizon() const {
    return base_ + static_cast<Time>(kNumBuckets) * kBucketWidth;
  }

  std::vector<std::vector<Event>> buckets_;
  std::size_t cur_ = 0;          ///< index of the bucket starting at base_
  std::size_t pos_ = 0;          ///< drain position within buckets_[cur_]
  Time base_ = 0;                ///< start time of the current bucket
  std::size_t wheel_count_ = 0;  ///< undrained events across all buckets
  bool front_in_overlay_ = false;  ///< where the last peek() found the min
  HeapQueue overlay_;  ///< current-bucket insertions made while it drains
  HeapQueue far_;      ///< events at or beyond the wheel horizon
};

/// The scheduler's pending-event set, switchable between the production
/// two-tier calendar queue and the reference heap (see QueueKind). One
/// predictable branch per operation buys a like-for-like A/B harness.
class EventQueue {
 public:
  explicit EventQueue(QueueKind kind) : kind_(kind) {
    if (kind_ == QueueKind::kHeap) heap_.reserve(1 << 16);
  }

  [[nodiscard]] QueueKind kind() const { return kind_; }

  [[nodiscard]] std::size_t size() const {
    return kind_ == QueueKind::kTwoTier ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void push(const Event& ev) {
    if (kind_ == QueueKind::kTwoTier) {
      calendar_.push(ev);
    } else {
      heap_.push(ev);
    }
  }

  [[nodiscard]] const Event* peek() {
    if (kind_ == QueueKind::kTwoTier) return calendar_.peek();
    return heap_.empty() ? nullptr : &heap_.top();
  }

  void pop() {
    if (kind_ == QueueKind::kTwoTier) {
      calendar_.pop();
    } else {
      heap_.pop();
    }
  }

  void clear() {
    calendar_.clear();
    heap_.clear();
  }

 private:
  QueueKind kind_;
  CalendarQueue calendar_;
  HeapQueue heap_;
};

}  // namespace ibsim::core
