#include "core/time.hpp"

#include <cstdio>

namespace ibsim::core {

std::string format_time(Time t) {
  char buf[64];
  const double ps = static_cast<double>(t);
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ps / static_cast<double>(kSecond));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ps / static_cast<double>(kMillisecond));
  } else if (t >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ps / static_cast<double>(kMicrosecond));
  } else if (t >= kNanosecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", ps / static_cast<double>(kNanosecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ps", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace ibsim::core
