#include "core/rng.hpp"

namespace ibsim::core {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless bounded draw.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::fork(std::string_view label, std::uint64_t index) const {
  std::uint64_t mix = seed_;
  mix ^= hash_label(label) + 0x9e3779b97f4a7c15ULL + (mix << 6) + (mix >> 2);
  mix ^= (index + 1) * 0xda942042e4dd58b5ULL;
  std::uint64_t sm = mix;
  return Rng(splitmix64(sm));
}

}  // namespace ibsim::core
