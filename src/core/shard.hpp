#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/assert.hpp"

namespace ibsim::core {

/// Reusable sense-reversing spin barrier for the sharded engine's window
/// loop. Window phases are short (tens of microseconds of simulated time
/// translate to sub-millisecond wall slices), so parking threads in a
/// condition variable would cost more than it saves; the spin yields to
/// the OS each iteration so oversubscribed hosts (CI runners, the
/// single-core dev container) still make progress.
///
/// With one party arrive_and_wait() is a no-op, which lets the engine
/// keep a single code path for serial-worker and multi-worker runs.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::int32_t parties) : parties_(parties) {
    IBSIM_ASSERT(parties >= 1, "barrier needs at least one party");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Block until all parties have arrived. The last arriver flips the
  /// generation, releasing everyone; seq_cst atomics double as the
  /// memory fence that publishes each phase's writes to the next.
  void arrive_and_wait() {
    if (parties_ == 1) return;
    const std::uint32_t gen = generation_.load();
    if (arrived_.fetch_add(1) + 1 == parties_) {
      arrived_.store(0);
      generation_.store(gen + 1);
      return;
    }
    while (generation_.load() == gen) std::this_thread::yield();
  }

  [[nodiscard]] std::int32_t parties() const { return parties_; }

 private:
  std::atomic<std::int32_t> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
  std::int32_t parties_;
};

}  // namespace ibsim::core
