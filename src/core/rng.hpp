#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace ibsim::core {

/// xoshiro256++ pseudo-random generator, seeded via SplitMix64.
///
/// The simulator never uses std::mt19937 or distribution objects from
/// <random>: their outputs differ across standard library implementations,
/// and determinism across platforms is a design requirement. Every model
/// component derives its own named sub-stream (`Rng::fork`), so adding a
/// component never perturbs the random sequence another component sees.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the stream. Equal seeds yield equal sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Next raw 64-bit draw.
  std::uint64_t next();

  /// UniformInt in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Derive an independent, reproducible sub-stream keyed by a label and
  /// an index (e.g. fork("gen", node_id)).
  [[nodiscard]] Rng fork(std::string_view label, std::uint64_t index) const;

  // UniformRandomBitGenerator interface (for std::shuffle-style use).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }
  result_type operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

/// SplitMix64 step; exposed for seeding tests.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a 64-bit hash of a label, used to key forked sub-streams.
[[nodiscard]] std::uint64_t hash_label(std::string_view label);

}  // namespace ibsim::core
