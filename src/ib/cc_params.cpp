#include "ib/cc_params.hpp"

namespace ibsim::ib {

std::string CcParams::validate() const {
  if (threshold_weight > 15) return "threshold_weight must be in [0, 15]";
  if (ccti_limit > 16383) return "ccti_limit exceeds the CCT index space";
  if (ccti_min > ccti_limit) return "ccti_min must not exceed ccti_limit";
  if (ccti_increase == 0 && enabled) return "ccti_increase of 0 makes BECNs no-ops";
  if (ccti_timer == 0 && enabled) return "ccti_timer of 0 would never recover";
  return {};
}

CcParams CcParams::paper_table1() {
  CcParams p;
  p.enabled = true;
  p.threshold_weight = 15;
  p.marking_rate = 0;
  p.packet_size = 0;
  p.ccti_increase = 1;
  p.ccti_limit = 127;
  p.ccti_min = 0;
  p.ccti_timer = 150;
  return p;
}

CcParams CcParams::disabled() {
  CcParams p;
  p.enabled = false;
  return p;
}

}  // namespace ibsim::ib
