#pragma once

#include <cstdint>
#include <string>

#include "core/time.hpp"

namespace ibsim::ib {

/// How the Congestion Control Manager populates the CCT.
enum class CctFill : std::uint8_t {
  /// Entry i delays by base^i - 1 packet times: gentle low-index steps,
  /// deep high-index slowdowns. The default (see cc::CcManager).
  Geometric,
  /// Entry i delays by i packet times: rate = ref/(1+i).
  Linear,
};

/// The IBA 1.2.1 congestion-control parameter set (annex A10), exactly the
/// knobs the paper's section II describes, with the value set from the
/// paper's Table I as the default.
///
/// Switch side:
///  * `threshold_weight`  — 0 disables marking; 1..15 is a uniformly
///    *decreasing* queue threshold (1 = marks very late, 15 = marks as
///    soon as a couple of packets queue up).
///  * `marking_rate`      — mean number of FECN-eligible packets forwarded
///    between two actual markings (0 = mark every eligible packet).
///  * `packet_size`       — packets up to this size (in 64 B credit units,
///    to match the spec's granularity) are never FECN-marked.
///  * `victim_mask_hca_ports` — apply the Victim_Mask to switch ports that
///    face HCAs, so endpoint congestion keeps marking even when the port
///    is momentarily out of credits.
///
/// Channel adapter side:
///  * `ccti_increase`     — CCTI bump per received BECN.
///  * `ccti_limit`        — CCTI upper bound (index into the CCT).
///  * `ccti_min`          — CCTI floor the timer decrements towards.
///  * `ccti_timer`        — recovery timer in units of 1.024 us; every
///    expiry decrements the CCTI of all flows of the port by one.
struct CcParams {
  bool enabled = true;

  // Switch features.
  std::uint8_t threshold_weight = 15;
  std::uint16_t marking_rate = 0;
  std::uint16_t packet_size = 0;
  bool victim_mask_hca_ports = true;

  // CA features (paper Table I).
  std::uint16_t ccti_increase = 1;
  std::uint16_t ccti_limit = 127;
  std::uint16_t ccti_min = 0;
  std::uint16_t ccti_timer = 150;

  /// CCT population strategy and the geometric growth base.
  CctFill cct_fill = CctFill::Geometric;
  double cct_base = 1.05;

  /// True when CC operates per SL instead of per QP. The paper only uses
  /// QP-level CC (section II.2) but calls out the SL level as harmful;
  /// we keep both so the ablation benchmark can reproduce that claim.
  bool sl_level = false;

  /// CCTI_Timer expiry interval. The spec expresses the field in units of
  /// 1.024 us.
  [[nodiscard]] core::Time timer_interval() const {
    return static_cast<core::Time>(ccti_timer) * 1024 * core::kNanosecond;
  }

  /// Threshold fraction of the reference input-buffer VL capacity at
  /// which a Port VL's queue is considered congested. Weight 15 maps to
  /// 1/16 of the buffer (aggressive), weight 1 to 15/16 (lax); weight 0
  /// disables detection entirely, per the spec's description of a
  /// "uniformly decreasing value of the threshold".
  [[nodiscard]] double threshold_fraction() const {
    if (threshold_weight == 0) return 2.0;  // unreachable occupancy
    const int w = threshold_weight > 15 ? 15 : threshold_weight;
    return static_cast<double>(16 - w) / 16.0;
  }

  /// Packet_Size is expressed in 64 B units; FECN eligibility requires a
  /// packet strictly larger than this.
  [[nodiscard]] std::int32_t min_markable_bytes() const {
    return static_cast<std::int32_t>(packet_size) * 64;
  }

  /// Validate ranges against the spec; returns an error string or empty.
  [[nodiscard]] std::string validate() const;

  /// The paper's Table I values (the defaults above, spelled out).
  [[nodiscard]] static CcParams paper_table1();

  /// CC switched off entirely (the paper's "CC off" baseline).
  [[nodiscard]] static CcParams disabled();
};

}  // namespace ibsim::ib
