#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "ib/types.hpp"

namespace ibsim::ib {

/// Index of a packet inside its PacketArena. Handles are what the fabric
/// stores everywhere a packet rests (event payloads, staged slots, VoQs,
/// receive queues) — they stay valid across arena growth, unlike raw
/// pointers/references, and they halve the size of every queue link.
using PacketHandle = std::uint32_t;

/// The null handle ("no packet"). An arena never hands this index out.
inline constexpr PacketHandle kNullPacket = 0xffffffffu;

/// One InfiniBand packet as the simulator models it: the header fields the
/// CC mechanism and the fabric need, plus bookkeeping for metrics.
///
/// Packets live in a PacketArena and travel by PacketHandle through
/// scheduler event payloads; they are never copied on the data path. A
/// `Packet&` obtained from an arena is a *transient* view: it may dangle
/// after the next allocate() (the slot vector can grow), so persistent
/// state must hold handles and re-resolve.
struct Packet {
  std::uint64_t id = 0;       ///< unique per simulation, for tracing
  NodeId src = kInvalidNode;  ///< source end node
  NodeId dst = kInvalidNode;  ///< destination end node (DLID)
  std::int32_t bytes = 0;     ///< wire size
  Vl vl = kDataVl;
  Sl sl = 0;

  bool fecn = false;    ///< Forward Explicit Congestion Notification bit
  bool becn = false;    ///< Backward Explicit Congestion Notification bit
  bool is_cnp = false;  ///< explicit congestion notification packet

  /// BECN/CNP flow reference: the destination of the *original* data flow
  /// this notification throttles (i.e. the congested hotspot), so the
  /// source can index its per-QP CCTI.
  NodeId flow_dst = kInvalidNode;

  bool hotspot_stream = false;  ///< generator stream tag (metrics only)
  bool app = false;             ///< workload-engine payload; msg_seq is the op id
  std::uint32_t msg_seq = 0;    ///< message number within its flow
  core::Time injected_at = 0;   ///< grant time at the source HCA

  /// Intrusive link: the next handle in whichever list holds this packet
  /// (arena freelist or one PacketQueue — never both).
  PacketHandle next = kNullPacket;

  /// Reset every live header/bookkeeping field to its freshly-constructed
  /// value. `id` and `next` are deliberately untouched: the arena assigns
  /// a fresh id on allocation and owns the list link. Keeping this an
  /// explicit field list (instead of `*this = Packet{}`) avoids the
  /// double id write on the allocation hot path and makes any future
  /// field addition a conscious reset decision.
  void reset() {
    src = kInvalidNode;
    dst = kInvalidNode;
    bytes = 0;
    vl = kDataVl;
    sl = 0;
    fecn = false;
    becn = false;
    is_cnp = false;
    flow_dst = kInvalidNode;
    hotspot_stream = false;
    app = false;
    msg_seq = 0;
    injected_at = 0;
  }
};

/// Contiguous packet storage with an intrusive handle freelist. All
/// packets of one simulation live in a single dense vector, so the hot
/// loop walks cache lines instead of chasing per-chunk heap pointers, and
/// a handle is a 32-bit index instead of a 64-bit pointer.
///
/// Allocation never touches the heap once the arena holds enough slots
/// for the peak live-packet count (Fabric pre-sizes from the topology);
/// growth doubles the slot vector and is counted in `growths()` so tests
/// can pin a steady-state window to zero reallocation.
class PacketArena {
 public:
  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Fetch a zero-initialised packet with a fresh id.
  [[nodiscard]] PacketHandle allocate() {
    if (free_head_ == kNullPacket) grow(slots_.size() + 1);
    const PacketHandle h = free_head_;
    Packet& pkt = slots_[h];
    free_head_ = pkt.next;
    pkt.reset();
    pkt.id = next_id_++;
    pkt.next = kNullPacket;
    ++live_;
    return h;
  }

  /// Return a packet to the arena. Must have come from this arena.
  void release(PacketHandle h);

  /// Resolve a handle. The reference is transient: valid only until the
  /// next allocate()/reserve() (the slot vector may grow).
  [[nodiscard]] Packet& get(PacketHandle h) { return slots_[h]; }
  [[nodiscard]] const Packet& get(PacketHandle h) const { return slots_[h]; }

  /// Ensure capacity for at least `slots` packets (does not shrink).
  void reserve(std::size_t slots);

  /// Packets currently handed out (allocated minus released).
  [[nodiscard]] std::int64_t live() const { return live_; }

  /// Total packets ever allocated (freshly or recycled).
  [[nodiscard]] std::uint64_t total_allocated() const { return next_id_; }

  /// Slots owned (live + free).
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Times the slot vector grew (including explicit reserve() growth).
  /// A steady-state window with growths() unchanged proves the packet
  /// path performed zero heap allocations.
  [[nodiscard]] std::uint64_t growths() const { return growths_; }

  /// Approximate resident bytes of the arena storage.
  [[nodiscard]] std::size_t memory_bytes() const { return slots_.capacity() * sizeof(Packet); }

 private:
  void grow(std::size_t min_slots);
  void grow_to(std::size_t new_size);

  std::vector<Packet> slots_;
  PacketHandle free_head_ = kNullPacket;
  std::int64_t live_ = 0;
  std::uint64_t next_id_ = 0;
  std::uint64_t growths_ = 0;
};

/// Intrusive FIFO of packets, chained through `Packet::next` (a packet is
/// either in the arena's freelist or in at most one queue, never both).
/// Holds handles, not pointers, and takes the arena as a parameter
/// instead of storing it — a queue is 24 bytes, which is what keeps the
/// tens of thousands of VoQs of a 10k-endpoint fabric dense in cache.
/// Tracks byte occupancy for flow control and CC.
class PacketQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == kNullPacket; }
  [[nodiscard]] std::int32_t count() const { return count_; }
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] PacketHandle front() const { return head_; }

  void push_back(PacketArena& arena, PacketHandle h);
  void push_front(PacketArena& arena, PacketHandle h);
  [[nodiscard]] PacketHandle pop_front(PacketArena& arena);

 private:
  PacketHandle head_ = kNullPacket;
  PacketHandle tail_ = kNullPacket;
  std::int32_t count_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace ibsim::ib
