#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "ib/types.hpp"

namespace ibsim::ib {

/// One InfiniBand packet as the simulator models it: the header fields the
/// CC mechanism and the fabric need, plus bookkeeping for metrics.
///
/// Packets are pool-allocated (`PacketPool`) and passed by pointer through
/// scheduler event payloads; they are never copied on the data path.
struct Packet {
  std::uint64_t id = 0;       ///< unique per simulation, for tracing
  NodeId src = kInvalidNode;  ///< source end node
  NodeId dst = kInvalidNode;  ///< destination end node (DLID)
  std::int32_t bytes = 0;     ///< wire size
  Vl vl = kDataVl;
  Sl sl = 0;

  bool fecn = false;    ///< Forward Explicit Congestion Notification bit
  bool becn = false;    ///< Backward Explicit Congestion Notification bit
  bool is_cnp = false;  ///< explicit congestion notification packet

  /// BECN/CNP flow reference: the destination of the *original* data flow
  /// this notification throttles (i.e. the congested hotspot), so the
  /// source can index its per-QP CCTI.
  NodeId flow_dst = kInvalidNode;

  bool hotspot_stream = false;  ///< generator stream tag (metrics only)
  bool app = false;             ///< workload-engine payload; msg_seq is the op id
  std::uint32_t msg_seq = 0;    ///< message number within its flow
  core::Time injected_at = 0;   ///< grant time at the source HCA

  Packet* pool_next = nullptr;  ///< intrusive freelist link

  /// Reset every live header/bookkeeping field to its freshly-constructed
  /// value. `id` and `pool_next` are deliberately untouched: the pool
  /// assigns a fresh id on allocation and owns the freelist link. Keeping
  /// this an explicit field list (instead of `*this = Packet{}`) avoids
  /// the double id write on the allocation hot path and makes any future
  /// field addition a conscious reset decision.
  void reset() {
    src = kInvalidNode;
    dst = kInvalidNode;
    bytes = 0;
    vl = kDataVl;
    sl = 0;
    fecn = false;
    becn = false;
    is_cnp = false;
    flow_dst = kInvalidNode;
    hotspot_stream = false;
    app = false;
    msg_seq = 0;
    injected_at = 0;
  }
};

/// Intrusive FIFO of packets, chained through `Packet::pool_next` (a
/// packet is either in the pool's freelist or in at most one queue, never
/// both). Keeps the tens of thousands of VoQs in a large fabric
/// allocation-free; tracks byte occupancy for flow control and CC.
class PacketQueue {
 public:
  [[nodiscard]] bool empty() const { return head_ == nullptr; }
  [[nodiscard]] std::int32_t count() const { return count_; }
  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] Packet* front() const { return head_; }

  void push_back(Packet* pkt);
  void push_front(Packet* pkt);
  [[nodiscard]] Packet* pop_front();

 private:
  Packet* head_ = nullptr;
  Packet* tail_ = nullptr;
  std::int32_t count_ = 0;
  std::int64_t bytes_ = 0;
};

/// Freelist-based packet allocator. Allocation never touches the heap on
/// the hot path after the first chunk; recycled packets are fully reset.
class PacketPool {
 public:
  explicit PacketPool(std::size_t chunk_packets = 4096);
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Fetch a zero-initialised packet with a fresh id.
  [[nodiscard]] Packet* allocate();

  /// Return a packet to the pool. Must have come from this pool.
  void release(Packet* pkt);

  /// Packets currently handed out (allocated minus released).
  [[nodiscard]] std::int64_t live() const { return live_; }

  /// Total packets ever allocated (freshly or recycled).
  [[nodiscard]] std::uint64_t total_allocated() const { return next_id_; }

 private:
  void grow();

  std::size_t chunk_packets_;
  std::vector<Packet*> chunks_;
  Packet* free_list_ = nullptr;
  std::int64_t live_ = 0;
  std::uint64_t next_id_ = 0;
};

}  // namespace ibsim::ib
