#pragma once

#include <cstdint>

namespace ibsim::ib {

/// End-node identifier. Doubles as the destination LID used by the linear
/// forwarding tables: in this model each HCA owns exactly one LID and
/// switches are addressed structurally, as in the paper's setup.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Virtual lane index (IBA allows 0..14 data VLs; we use a small set).
using Vl = std::uint8_t;

/// Service level. The model keeps SL == VL (identity SL-to-VL map).
using Sl = std::uint8_t;

/// Fabric-wide constants matching the paper's simulation setup
/// (section IV: 4x DDR links, MTU 2048 B, 4096 B messages).
inline constexpr std::int32_t kMtuBytes = 2048;
inline constexpr std::int32_t kPacketsPerMessage = 2;
inline constexpr std::int32_t kMessageBytes = kMtuBytes * kPacketsPerMessage;

/// Congestion notification packets are small (BECN-carrying CNP).
inline constexpr std::int32_t kCnpBytes = 64;

/// Default VL assignment: bulk data on VL 0, CNPs on a dedicated VL so
/// that the CC feedback loop cannot be starved by the very congestion it
/// is trying to resolve (the spec routes CNPs on a configured SL).
inline constexpr Vl kDataVl = 0;
inline constexpr Vl kCnpVl = 1;
inline constexpr int kDefaultVlCount = 2;

}  // namespace ibsim::ib
