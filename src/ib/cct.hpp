#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "ib/types.hpp"

namespace ibsim::ib {

/// The Congestion Control Table (CCT) of a channel adapter port.
///
/// Per IBA 1.2.1 each entry is a 16-bit word: bits [15:14] hold a shift,
/// bits [13:0] a multiplier. An entry's injection-rate delay (IRD) — the
/// gap inserted between consecutive packets of a throttled flow — is
///
///     IRD = (multiplier << shift) x T_packet
///
/// where T_packet is the serialization time of the packet being delayed at
/// the reference injection rate ("the IRD calculation being relative to
/// the packet length", paper section II.2). Entry 0 must encode zero
/// delay; a flow whose CCTI reaches 0 is unthrottled.
class CongestionControlTable {
 public:
  /// Build a table with `entries` slots (all zero delay) referenced to the
  /// given injection rate in Gb/s.
  explicit CongestionControlTable(std::size_t entries = 128, double ref_gbps = 13.5);

  /// Pack a multiplier (14 bits) and shift (2 bits) into an entry.
  [[nodiscard]] static std::uint16_t encode(std::uint32_t multiplier, std::uint32_t shift);

  /// The delay factor an entry encodes: multiplier << shift.
  [[nodiscard]] static std::uint32_t decode_factor(std::uint16_t entry);

  /// Set a raw entry. Index 0 is forced to zero delay by the spec.
  void set_entry(std::size_t index, std::uint16_t entry);
  [[nodiscard]] std::uint16_t entry(std::size_t index) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] double ref_gbps() const { return ref_gbps_; }

  /// IRD for a packet of `bytes` at CCT index `ccti` (clamped to the
  /// table). With the linear table this yields an injection rate of
  /// ref_gbps / (1 + ccti) for back-to-back MTU packets.
  [[nodiscard]] core::Time ird_delay(std::size_t ccti, std::int32_t bytes) const;

  /// Relative injection rate (0..1] the table grants at `ccti` for MTU
  /// packets: 1 / (1 + factor).
  [[nodiscard]] double rate_fraction(std::size_t ccti) const;

  /// Populate entries so entry i delays by i packet times (factor i):
  /// the canonical "larger index yields a larger IRD" fill used with the
  /// paper's parameters. Handles the 14-bit multiplier limit via shift.
  void populate_linear();

  /// Populate entries with factor round(base^i) - 1 (geometric slowdown),
  /// the common alternative fill; exposed for the ablation benchmarks.
  void populate_geometric(double base);

 private:
  std::vector<std::uint16_t> entries_;
  double ref_gbps_;
};

}  // namespace ibsim::ib
