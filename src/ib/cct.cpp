#include "ib/cct.hpp"

#include <cmath>

#include "core/assert.hpp"

namespace ibsim::ib {

CongestionControlTable::CongestionControlTable(std::size_t entries, double ref_gbps)
    : entries_(entries, 0), ref_gbps_(ref_gbps) {
  IBSIM_ASSERT(entries >= 1, "CCT needs at least one entry");
  IBSIM_ASSERT(ref_gbps > 0.0, "CCT reference rate must be positive");
}

std::uint16_t CongestionControlTable::encode(std::uint32_t multiplier, std::uint32_t shift) {
  IBSIM_ASSERT(multiplier < (1u << 14), "CCT multiplier exceeds 14 bits");
  IBSIM_ASSERT(shift < 4, "CCT shift exceeds 2 bits");
  return static_cast<std::uint16_t>((shift << 14) | multiplier);
}

std::uint32_t CongestionControlTable::decode_factor(std::uint16_t entry) {
  const std::uint32_t shift = entry >> 14;
  const std::uint32_t multiplier = entry & 0x3fffu;
  return multiplier << shift;
}

void CongestionControlTable::set_entry(std::size_t index, std::uint16_t entry) {
  IBSIM_ASSERT(index < entries_.size(), "CCT index out of range");
  if (index == 0) entry = 0;  // spec: index 0 is always "no delay"
  entries_[index] = entry;
}

std::uint16_t CongestionControlTable::entry(std::size_t index) const {
  IBSIM_ASSERT(index < entries_.size(), "CCT index out of range");
  return entries_[index];
}

core::Time CongestionControlTable::ird_delay(std::size_t ccti, std::int32_t bytes) const {
  if (ccti >= entries_.size()) ccti = entries_.size() - 1;
  const std::uint32_t factor = decode_factor(entries_[ccti]);
  if (factor == 0) return 0;
  return static_cast<core::Time>(factor) * core::transmit_time(bytes, ref_gbps_);
}

double CongestionControlTable::rate_fraction(std::size_t ccti) const {
  if (ccti >= entries_.size()) ccti = entries_.size() - 1;
  return 1.0 / (1.0 + static_cast<double>(decode_factor(entries_[ccti])));
}

void CongestionControlTable::populate_linear() {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    std::uint32_t factor = static_cast<std::uint32_t>(i);
    std::uint32_t shift = 0;
    while (factor >= (1u << 14) && shift < 3) {
      factor = (factor + 1) / 2;
      ++shift;
    }
    entries_[i] = encode(factor, shift);
  }
}

void CongestionControlTable::populate_geometric(double base) {
  IBSIM_ASSERT(base > 1.0, "geometric CCT needs base > 1");
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const double want = std::pow(base, static_cast<double>(i)) - 1.0;
    std::uint32_t factor =
        want > static_cast<double>(0x3fffu << 3) ? (0x3fffu << 3)
                                                 : static_cast<std::uint32_t>(std::lround(want));
    std::uint32_t shift = 0;
    while (factor >= (1u << 14) && shift < 3) {
      factor = (factor + 1) / 2;
      ++shift;
    }
    entries_[i] = encode(factor, shift);
  }
}

}  // namespace ibsim::ib
