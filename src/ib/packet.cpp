#include "ib/packet.hpp"

#include "core/assert.hpp"

namespace ibsim::ib {

void PacketQueue::push_back(PacketArena& arena, PacketHandle h) {
  IBSIM_ASSERT(h != kNullPacket, "queueing null packet");
  Packet& pkt = arena.get(h);
  pkt.next = kNullPacket;
  if (tail_ == kNullPacket) {
    head_ = tail_ = h;
  } else {
    arena.get(tail_).next = h;
    tail_ = h;
  }
  ++count_;
  bytes_ += pkt.bytes;
}

void PacketQueue::push_front(PacketArena& arena, PacketHandle h) {
  IBSIM_ASSERT(h != kNullPacket, "queueing null packet");
  Packet& pkt = arena.get(h);
  pkt.next = head_;
  head_ = h;
  if (tail_ == kNullPacket) tail_ = h;
  ++count_;
  bytes_ += pkt.bytes;
}

PacketHandle PacketQueue::pop_front(PacketArena& arena) {
  IBSIM_ASSERT(head_ != kNullPacket, "popping an empty packet queue");
  const PacketHandle h = head_;
  Packet& pkt = arena.get(h);
  head_ = pkt.next;
  if (head_ == kNullPacket) tail_ = kNullPacket;
  pkt.next = kNullPacket;
  --count_;
  bytes_ -= pkt.bytes;
  return h;
}

void PacketArena::reserve(std::size_t slots) {
  // Exact: a caller that reserves 4 gets 4, so tests can provoke
  // exhaustion-regrowth cheaply; only exhaustion applies the doubling.
  if (slots > slots_.size()) grow_to(slots);
}

void PacketArena::grow(std::size_t min_slots) {
  std::size_t new_size = slots_.empty() ? 1024 : slots_.size() * 2;
  if (new_size < min_slots) new_size = min_slots;
  grow_to(new_size);
}

void PacketArena::grow_to(std::size_t new_size) {
  const std::size_t old_size = slots_.size();
  IBSIM_ASSERT(new_size < static_cast<std::size_t>(kNullPacket),
               "packet arena exceeds the 32-bit handle space");
  slots_.resize(new_size);
  // Thread the new slots onto the freelist so the lowest index allocates
  // first — freshly used packets stay at the dense front of the arena.
  for (std::size_t i = new_size; i > old_size; --i) {
    slots_[i - 1].next = free_head_;
    free_head_ = static_cast<PacketHandle>(i - 1);
  }
  ++growths_;
}

void PacketArena::release(PacketHandle h) {
  IBSIM_ASSERT(h != kNullPacket && h < slots_.size(), "releasing a foreign packet handle");
  IBSIM_ASSERT(live_ > 0, "arena released more packets than it allocated");
  slots_[h].next = free_head_;
  free_head_ = h;
  --live_;
}

}  // namespace ibsim::ib
