#include "ib/packet.hpp"

#include "core/assert.hpp"

namespace ibsim::ib {

void PacketQueue::push_back(Packet* pkt) {
  IBSIM_ASSERT(pkt != nullptr, "queueing null packet");
  pkt->pool_next = nullptr;
  if (tail_ == nullptr) {
    head_ = tail_ = pkt;
  } else {
    tail_->pool_next = pkt;
    tail_ = pkt;
  }
  ++count_;
  bytes_ += pkt->bytes;
}

void PacketQueue::push_front(Packet* pkt) {
  IBSIM_ASSERT(pkt != nullptr, "queueing null packet");
  pkt->pool_next = head_;
  head_ = pkt;
  if (tail_ == nullptr) tail_ = pkt;
  ++count_;
  bytes_ += pkt->bytes;
}

Packet* PacketQueue::pop_front() {
  IBSIM_ASSERT(head_ != nullptr, "popping an empty packet queue");
  Packet* pkt = head_;
  head_ = pkt->pool_next;
  if (head_ == nullptr) tail_ = nullptr;
  pkt->pool_next = nullptr;
  --count_;
  bytes_ -= pkt->bytes;
  return pkt;
}

PacketPool::PacketPool(std::size_t chunk_packets) : chunk_packets_(chunk_packets) {
  IBSIM_ASSERT(chunk_packets_ > 0, "packet pool chunk must be positive");
}

PacketPool::~PacketPool() {
  for (Packet* chunk : chunks_) delete[] chunk;
}

void PacketPool::grow() {
  auto* chunk = new Packet[chunk_packets_];
  chunks_.push_back(chunk);
  for (std::size_t i = 0; i < chunk_packets_; ++i) {
    chunk[i].pool_next = free_list_;
    free_list_ = &chunk[i];
  }
}

Packet* PacketPool::allocate() {
  if (free_list_ == nullptr) grow();
  Packet* pkt = free_list_;
  free_list_ = pkt->pool_next;
  pkt->reset();
  pkt->id = next_id_++;
  pkt->pool_next = nullptr;
  ++live_;
  return pkt;
}

void PacketPool::release(Packet* pkt) {
  IBSIM_ASSERT(pkt != nullptr, "releasing null packet");
  IBSIM_ASSERT(live_ > 0, "pool released more packets than it allocated");
  pkt->pool_next = free_list_;
  free_list_ = pkt;
  --live_;
}

}  // namespace ibsim::ib
