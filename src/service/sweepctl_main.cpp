// sweepctl — client for the sweepd daemon.
//
// Usage:
//   sweepctl --socket=PATH submit FILE   submit a sweep request (FILE is
//                                        JSON, '-' reads stdin); streams
//                                        the daemon's cell/done events to
//                                        stdout as NDJSON
//   sweepctl --socket=PATH status        one status line (jobs + store)
//   sweepctl --socket=PATH drain         block until the daemon is idle
//   sweepctl --socket=PATH ping          liveness probe (startup polling)
//   sweepctl --socket=PATH shutdown      ask the daemon to exit
//   sweepctl --version
//
// Output is the daemon's protocol verbatim, one JSON object per line —
// the CI store-smoke job byte-diffs cold and warm transcripts.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/json.hpp"
#include "service/socket.hpp"
#include "store/version.hpp"

namespace {

using ibsim::service::connect_unix;
using ibsim::service::Fd;
using ibsim::service::Json;
using ibsim::service::read_line;
using ibsim::service::write_line;

void usage() {
  std::fprintf(stderr,
               "usage: sweepctl --socket=PATH submit FILE|-\n"
               "       sweepctl --socket=PATH status|drain|ping|shutdown\n"
               "       sweepctl --version\n");
}

/// Print one received event line; returns the "event" value.
std::string show(const std::string& line) {
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
  std::string error;
  const Json event = Json::parse(line, &error);
  const Json* kind = event.find("event");
  return kind != nullptr && kind->is_string() ? kind->as_string() : std::string();
}

/// Send one request line, then print events until one of `final_events`
/// (or an error event / disconnect). Returns the process exit code.
int roundtrip(const std::string& socket_path, const std::string& request,
              const std::initializer_list<const char*> final_events) {
  Fd fd;
  std::string error;
  if (!connect_unix(socket_path, &fd, &error)) {
    std::fprintf(stderr, "sweepctl: %s\n", error.c_str());
    return 1;
  }
  if (!write_line(fd.get(), request)) {
    std::fprintf(stderr, "sweepctl: cannot write request\n");
    return 1;
  }
  std::string buffer;
  std::string line;
  while (read_line(fd.get(), &buffer, &line)) {
    const std::string event = show(line);
    if (event == "error") return 1;
    for (const char* final_event : final_events) {
      if (event == final_event) return 0;
    }
  }
  std::fprintf(stderr, "sweepctl: daemon closed the connection\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::string submit_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s\n", ibsim::store::version_line("sweepctl").c_str());
      return 0;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(std::strlen("--socket="));
    } else if (command.empty()) {
      command = arg;
    } else if (command == "submit" && submit_file.empty()) {
      submit_file = arg;
    } else {
      std::fprintf(stderr, "sweepctl: unexpected argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage();
    return 2;
  }

  if (command == "status") {
    return roundtrip(socket_path, R"({"op":"status"})", {"status"});
  }
  if (command == "drain") {
    return roundtrip(socket_path, R"({"op":"drain"})", {"drained"});
  }
  if (command == "ping") {
    return roundtrip(socket_path, R"({"op":"ping"})", {"pong"});
  }
  if (command == "shutdown") {
    return roundtrip(socket_path, R"({"op":"shutdown"})", {"bye"});
  }
  if (command == "submit") {
    if (submit_file.empty()) {
      usage();
      return 2;
    }
    std::string text;
    if (submit_file == "-") {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      text = buf.str();
    } else {
      std::ifstream in(submit_file);
      if (!in.good()) {
        std::fprintf(stderr, "sweepctl: cannot open '%s'\n", submit_file.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    // Requests may be written as pretty multi-line JSON; the protocol
    // needs one line, so parse and re-dump compactly (this also reports
    // syntax errors client-side with a byte offset).
    std::string error;
    Json request = Json::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "sweepctl: %s: %s\n", submit_file.c_str(), error.c_str());
      return 1;
    }
    if (request.find("op") == nullptr) request.set("op", Json::string("submit"));
    return roundtrip(socket_path, request.dump(), {"done"});
  }

  std::fprintf(stderr, "sweepctl: unknown command '%s'\n", command.c_str());
  usage();
  return 2;
}
