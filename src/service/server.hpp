#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/socket.hpp"
#include "service/sweep_service.hpp"
#include "sim/sim_config.hpp"

namespace ibsim::service {

/// The sweepd daemon's transport: a Unix-domain-socket server speaking
/// newline-delimited JSON, one object per line, over a SweepService.
///
/// Requests (client → server), dispatched on the "op" field:
///
///   {"op":"ping"}                          → {"event":"pong"}
///   {"op":"submit","name":...,"base":{...},"axes":{...}[,"threads":N]}
///       → {"event":"accepted","job":J,"cells":N}
///       → one {"event":"cell","job":J,"index":I,"label":...,"key":...,
///              "cached":B,"shared":B,"all_rcv_gbps":X,...} per cell,
///          streamed as cells complete (store hits arrive immediately)
///       → {"event":"done","job":J,"cells":N,"store_hits":H}
///   {"op":"status"}                        → {"event":"status","jobs":[...]}
///   {"op":"drain"}   blocks until every job is complete
///                                          → {"event":"drained","jobs":N}
///   {"op":"shutdown"}                      → {"event":"bye"}, daemon exits
///
/// Malformed input produces {"event":"error","message":...} and keeps
/// the connection open. Connections are handled on their own threads;
/// submissions from concurrent clients dedup against each other through
/// the service (identical in-flight cells run once, fanning out to every
/// subscriber).
class SweepServer {
 public:
  struct Options {
    std::string socket_path;
    /// Defaults each request's cells start from (before its base keys).
    sim::SimConfig base_config;
    SweepService::Options service;
  };

  explicit SweepServer(Options options);
  ~SweepServer();  // stop() if still running

  /// Bind the socket and start serving. False (with `*error`) if the
  /// socket cannot be bound.
  [[nodiscard]] bool start(std::string* error);

  /// Block until a client's shutdown request (or stop()).
  void wait();

  /// Close the listener and all connections, join every thread.
  void stop();

  [[nodiscard]] SweepService& service() { return *service_; }
  [[nodiscard]] const std::string& socket_path() const { return options_.socket_path; }

 private:
  /// Per-connection state shared with in-flight completion callbacks:
  /// the callbacks outlive the read loop when a client disconnects
  /// mid-sweep, so the fd and its write lock are reference-counted.
  struct Connection {
    Fd fd;
    std::mutex write_mu;  ///< cell events and replies interleave safely
  };

  void accept_loop();
  void handle_connection(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);

  Options options_;
  std::unique_ptr<SweepService> service_;
  Fd listener_;
  std::thread accept_thread_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool running_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace ibsim::service
