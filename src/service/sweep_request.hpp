#pragma once

#include <string>
#include <utility>
#include <vector>

#include "service/json.hpp"
#include "sim/sim_config.hpp"

namespace ibsim::service {

/// One sweep submission, as carried by the daemon protocol:
///
///   {"op": "submit", "name": "table2",
///    "base": {"topology": "clos", "sim_time_us": 2000, ...},
///    "axes": {"p_percent": [0, 50, 100], "cc_enabled": [0, 1]},
///    "threads": 4}
///
/// `base` and `axes` use exactly the config-file key vocabulary
/// (sim/config_file.hpp) — the request is a config file plus a Cartesian
/// sweep over it, nothing more, so every key gets the config parser's
/// validation and "did you mean" diagnostics for free.
struct SweepRequest {
  std::string name;
  /// Base settings in request order, as (key, value-text) pairs.
  std::vector<std::pair<std::string, std::string>> base;
  /// Sweep axes in request order; each axis is (key, value-texts).
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
  /// Advisory worker-thread request (0 = daemon default). The daemon's
  /// pool size is fixed at startup; the field is accepted so clients can
  /// carry it, and ignored by the current scheduler.
  std::int32_t threads = 0;
};

/// One expanded sweep cell: the fully-resolved config plus a stable
/// human label of its axis coordinates ("p_percent=50 cc_enabled=1").
struct SweepCell {
  std::string label;
  sim::SimConfig config;
};

/// Parse a protocol submit object into a SweepRequest. Returns true on
/// success; on failure fills `*error` (unknown fields, wrong types,
/// empty axes — requests fail loudly like config files do).
[[nodiscard]] bool parse_sweep_request(const Json& json, SweepRequest* request,
                                       std::string* error);

/// Expand a request into cells: the Cartesian product of the axes, in
/// row-major request order (last axis varies fastest). Each cell starts
/// from `base_config`, applies the request's base keys, then its axis
/// assignments — both through the config-file parser, so an invalid
/// value or unknown key aborts the whole expansion with its diagnostic.
/// An axes-less request expands to the single base cell.
[[nodiscard]] bool expand_sweep(const SweepRequest& request,
                                const sim::SimConfig& base_config,
                                std::vector<SweepCell>* cells, std::string* error);

}  // namespace ibsim::service
