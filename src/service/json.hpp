#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ibsim::service {

/// Minimal JSON value for the sweep service's newline-delimited protocol
/// (service/server.hpp). Self-contained by design — the container bakes
/// in no JSON library, and the protocol needs only the basics: parse one
/// line, build one line, no comments, no trailing commas, UTF-8 passed
/// through verbatim (\uXXXX escapes are decoded for BMP code points).
///
/// Objects preserve insertion order (vector of pairs, not a map), so a
/// dumped reply is byte-deterministic given the same construction order
/// — the store-smoke CI job diffs protocol transcripts.
///
/// Numbers keep their source text alongside the parsed double: a value
/// forwarded from request to config text round-trips exactly as the
/// client wrote it ("0.1" never becomes "0.10000000000000001").
class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;  // null
  static Json boolean(bool v);
  static Json number(double v);
  static Json number_int(std::int64_t v);
  /// Number with explicit source text (the parser uses this to preserve
  /// the client's spelling; `text` must parse back to `v`).
  static Json number_raw(double v, std::string text);
  static Json string(std::string v);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return number_; }
  [[nodiscard]] std::int64_t as_int() const { return static_cast<std::int64_t>(number_); }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  /// The number exactly as written in the source (or as formatted at
  /// construction) — what sweep requests forward into config text.
  [[nodiscard]] const std::string& number_text() const { return string_; }

  [[nodiscard]] const std::vector<Json>& elements() const { return elements_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Object member by key, or nullptr (also nullptr on non-objects).
  [[nodiscard]] const Json* find(const std::string& key) const;

  void push_back(Json v);                    ///< array append
  void set(const std::string& key, Json v);  ///< object insert/overwrite

  /// Serialize on one line (no newline, minimal whitespace).
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document. On failure returns null and sets
  /// `*error` to a byte-offset diagnostic.
  [[nodiscard]] static Json parse(const std::string& text, std::string* error);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // string value, or number source text
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ibsim::service
