// sweepd — the sweep daemon. Listens on a Unix socket for
// newline-delimited JSON sweep requests (see service/server.hpp for the
// protocol), schedules cells across a persistent worker pool, and
// serves/publishes results through the on-disk result store so repeated
// and concurrent campaigns only simulate what is missing.
//
// Usage:
//   sweepd --socket=PATH [--result-store=DIR] [--threads=N]
//          [--config=FILE] [--version]
//
// --config seeds the base SimConfig every request starts from (same
// key = value format as simulate --config); requests then layer their
// own base and axes on top.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"
#include "sim/config_file.hpp"
#include "store/version.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: sweepd --socket=PATH [--result-store=DIR] [--threads=N]\n"
               "              [--config=FILE] [--version]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  ibsim::service::SweepServer::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      std::printf("%s\n", ibsim::store::version_line("sweepd").c_str());
      return 0;
    }
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(std::strlen("--socket="));
    } else if (arg.rfind("--result-store=", 0) == 0) {
      options.service.store_dir = arg.substr(std::strlen("--result-store="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.service.threads = std::atoi(arg.c_str() + std::strlen("--threads="));
    } else if (arg.rfind("--config=", 0) == 0) {
      const std::string path = arg.substr(std::strlen("--config="));
      const std::string err = ibsim::sim::apply_config_file(path, &options.base_config);
      if (!err.empty()) {
        std::fprintf(stderr, "sweepd: %s: %s\n", path.c_str(), err.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "sweepd: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    usage();
    return 2;
  }
  options.socket_path = socket_path;

  ibsim::service::SweepServer server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "sweepd: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "sweepd %s listening on %s\n", ibsim::store::code_version(),
               socket_path.c_str());
  if (server.service().store() != nullptr) {
    std::fprintf(stderr, "sweepd: result store at %s\n",
                 server.service().store()->dir().c_str());
  }
  server.wait();  // until a client sends {"op":"shutdown"}
  server.stop();
  if (server.service().store() != nullptr) {
    std::fprintf(stderr, "sweepd: %s\n", server.service().store()->stats_line().c_str());
  }
  return 0;
}
