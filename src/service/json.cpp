#include "service/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ibsim::service {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  char buf[64];
  // %.17g round-trips every double; trim to the shortest form that still
  // parses back equal so dumps stay readable.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  j.string_ = buf;
  return j;
}

Json Json::number_int(std::int64_t v) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = static_cast<double>(v);
  j.string_ = std::to_string(v);
  return j;
}

Json Json::number_raw(double v, std::string text) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  j.string_ = std::move(text);
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::String;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) { elements_.push_back(std::move(v)); }

void Json::set(const std::string& key, Json v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

namespace {

void dump_string(const std::string& s, std::string* out) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;  // UTF-8 bytes pass through
        }
    }
  }
  *out += '"';
}

void dump_value(const Json& j, std::string* out) {
  switch (j.kind()) {
    case Json::Kind::Null: *out += "null"; return;
    case Json::Kind::Bool: *out += j.as_bool() ? "true" : "false"; return;
    case Json::Kind::Number: *out += j.number_text(); return;
    case Json::Kind::String: dump_string(j.as_string(), out); return;
    case Json::Kind::Array: {
      *out += '[';
      bool first = true;
      for (const Json& e : j.elements()) {
        if (!first) *out += ',';
        first = false;
        dump_value(e, out);
      }
      *out += ']';
      return;
    }
    case Json::Kind::Object: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) *out += ',';
        first = false;
        dump_string(k, out);
        *out += ':';
        dump_value(v, out);
      }
      *out += '}';
      return;
    }
  }
}

/// Recursive-descent parser over the raw bytes. Depth-capped so a
/// hostile "[[[[..." line cannot blow the daemon's stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool parse(Json* out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after JSON value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character in string");
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // needed by the protocol; a lone surrogate encodes as-is).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!literal("null", 4)) return false;
        *out = Json();
        return true;
      case 't':
        if (!literal("true", 4)) return false;
        *out = Json::boolean(true);
        return true;
      case 'f':
        if (!literal("false", 5)) return false;
        *out = Json::boolean(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Json::string(std::move(s));
        return true;
      }
      case '[': {
        ++pos_;
        *out = Json::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          Json element;
          skip_ws();
          if (!value(&element, depth + 1)) return false;
          out->push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos_;
        *out = Json::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
          ++pos_;
          skip_ws();
          Json member;
          if (!value(&member, depth + 1)) return false;
          out->set(key, std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default: {
        // Number: scan the JSON number grammar, keep the exact source
        // text, validate by strtod consuming all of it.
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ == start) return fail("unexpected character");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          pos_ = start;
          return fail("malformed number");
        }
        // Preserve the client's spelling, not the shortest re-encoding.
        *out = Json::number_raw(v, token);
        return true;
      }
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

Json Json::parse(const std::string& text, std::string* error) {
  if (error != nullptr) error->clear();
  Json out;
  Parser p(text, error);
  if (!p.parse(&out)) return Json();
  return out;
}

}  // namespace ibsim::service
