#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/sweep_request.hpp"
#include "sim/simulation.hpp"
#include "store/result_store.hpp"

namespace ibsim::service {

/// The daemon's scheduling core: a persistent worker pool executing
/// sweep cells, with the result store and in-flight run deduplication
/// layered in front of it. Transport-free — the Unix-socket server
/// (service/server.hpp) sits on top, and tests drive the service
/// in-process.
///
/// Every cell is identified by its store run key (store/key.hpp), even
/// when no store is configured — simulations are deterministic, so two
/// jobs submitting an identical cell concurrently share one execution:
/// the first submission schedules the run, later ones subscribe to it.
/// With a store, cells already on disk complete at submit time without
/// touching the pool, and fresh results are published for the next
/// campaign. The cache hierarchy a cell falls through is therefore:
/// store hit → in-flight subscription → scheduled run.
class SweepService {
 public:
  struct Options {
    /// Result-store directory ("" = no persistence, dedup still works).
    std::string store_dir;
    /// Worker threads (0 = hardware concurrency via resolve_threads).
    std::int32_t threads = 0;
  };

  /// Completion record of one cell, delivered to the submitting job's
  /// callback from whichever thread finished the cell (a worker, or the
  /// submitting thread itself for store hits).
  struct CellOutcome {
    std::uint64_t job = 0;
    std::size_t index = 0;  ///< cell position within the job
    std::string label;
    std::string key;      ///< store run key of the cell
    bool cached = false;  ///< served from the on-disk store at submit
    bool shared = false;  ///< subscribed to another job's in-flight run
    sim::SimResult result;
  };
  using CellCallback = std::function<void(const CellOutcome&)>;
  using DoneCallback = std::function<void(std::uint64_t job)>;

  struct JobStatus {
    std::uint64_t id = 0;
    std::string name;
    std::size_t cells = 0;
    std::size_t done = 0;
    std::size_t store_hits = 0;
    bool complete = false;
  };

  explicit SweepService(Options options);
  /// Stops accepting work, drains nothing: pending cells are abandoned,
  /// in-flight runs finish (their callbacks still fire) and workers join.
  ~SweepService();

  /// Submit an expanded sweep. `on_cell` fires once per cell (store
  /// hits fire before submit returns), `on_done` once after the last
  /// cell. Callbacks come from arbitrary threads and must synchronize
  /// their own side effects. Returns the job id.
  std::uint64_t submit(std::string name, std::vector<SweepCell> cells,
                       CellCallback on_cell, DoneCallback on_done = nullptr);

  /// Snapshot of every job submitted so far, in submission order.
  [[nodiscard]] std::vector<JobStatus> status();

  /// Block until every submitted job has completed.
  void drain();

  /// The service's store (null when running without persistence).
  [[nodiscard]] const std::shared_ptr<store::ResultStore>& store() const { return store_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string name;
    std::size_t cells = 0;
    std::size_t done = 0;
    std::size_t store_hits = 0;
    CellCallback on_cell;
    DoneCallback on_done;
  };

  /// One subscriber of an in-flight run: which job/cell wants the result.
  struct Subscriber {
    std::uint64_t job = 0;
    std::size_t index = 0;
    std::string label;
    bool shared = false;
  };

  struct InFlight {
    sim::SimConfig config;
    std::vector<Subscriber> subscribers;
    bool scheduled = false;  ///< queued for (or claimed by) a worker
  };

  void worker_loop();
  /// Deliver a finished result to every subscriber of `key` and advance
  /// their jobs' completion counts. Called with `mu_` held; callbacks
  /// run outside the lock.
  void complete_locked(std::unique_lock<std::mutex>& lock, const std::string& key,
                       const sim::SimResult& result, bool cached);

  std::shared_ptr<store::ResultStore> store_;  // null without a store
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for queue_
  std::condition_variable drain_cv_;  ///< drain() waits for completion
  bool stopping_ = false;
  /// Callback batches currently running outside the lock. drain() must
  /// wait these out: a job's `done` count advances before its callbacks
  /// fire, so done==cells alone would let drain() return with the last
  /// cell's delivery still in flight.
  std::size_t delivering_ = 0;
  std::deque<std::string> queue_;  ///< keys of runs awaiting a worker
  std::unordered_map<std::string, InFlight> inflight_;
  std::unordered_map<std::uint64_t, Job> jobs_;
  std::vector<std::uint64_t> job_order_;
  std::uint64_t next_job_ = 1;
};

}  // namespace ibsim::service
