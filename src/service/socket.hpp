#pragma once

#include <string>

namespace ibsim::service {

/// Thin RAII + line-I/O layer over Unix domain stream sockets — just
/// enough for the daemon's newline-delimited JSON protocol. Errors come
/// back as bool/-1 with the reason in an out-parameter; nothing here
/// throws (the daemon must survive any client behaviour).

/// Owning fd wrapper (close on destruction, movable, non-copyable).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Bind and listen on a Unix socket path. An existing socket file at
/// `path` is unlinked first (the daemon owns its socket path; a stale
/// file from a crashed predecessor must not block startup).
[[nodiscard]] bool listen_unix(const std::string& path, Fd* out, std::string* error);

/// Connect to a listening Unix socket.
[[nodiscard]] bool connect_unix(const std::string& path, Fd* out, std::string* error);

/// Accept one connection (blocks). Returns false on listener shutdown
/// or error.
[[nodiscard]] bool accept_unix(const Fd& listener, Fd* out);

/// Read one '\n'-terminated line (the newline is stripped, a CR before
/// it too). Returns false on EOF/error with nothing buffered. The
/// caller owns `buffer` across calls on the same fd — it carries data
/// read past the newline.
[[nodiscard]] bool read_line(int fd, std::string* buffer, std::string* line);

/// Write all of `line` plus a trailing newline. False on error.
[[nodiscard]] bool write_line(int fd, const std::string& line);

}  // namespace ibsim::service
