#include "service/sweep_service.hpp"

#include <chrono>

#include "sim/experiment.hpp"
#include "store/key.hpp"

namespace ibsim::service {

SweepService::SweepService(Options options) {
  if (!options.store_dir.empty()) {
    store_ = store::StoreRegistry::instance().open(options.store_dir);
  }
  const std::int32_t n = sim::resolve_threads(options.threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepService::~SweepService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::uint64_t SweepService::submit(std::string name, std::vector<SweepCell> cells,
                                   CellCallback on_cell, DoneCallback on_done) {
  // Key every cell and probe the store before taking the service lock:
  // hashing and disk reads are the slow part of submission and need no
  // shared state.
  struct Prepared {
    std::string key;
    bool hit = false;
    sim::SimResult result;
  };
  std::vector<Prepared> prepared(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    prepared[i].key = store::run_key(cells[i].config);
    if (store_ != nullptr) {
      prepared[i].hit = store_->get(prepared[i].key, &prepared[i].result);
    }
  }

  std::vector<CellOutcome> immediate;
  std::uint64_t id = 0;
  bool complete_at_submit = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    id = next_job_++;
    Job job;
    job.id = id;
    job.name = std::move(name);
    job.cells = cells.size();
    job.on_cell = std::move(on_cell);
    job.on_done = std::move(on_done);

    std::size_t scheduled = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (prepared[i].hit) {
        ++job.done;
        ++job.store_hits;
        CellOutcome outcome;
        outcome.job = id;
        outcome.index = i;
        outcome.label = cells[i].label;
        outcome.key = prepared[i].key;
        outcome.cached = true;
        outcome.result = std::move(prepared[i].result);
        immediate.push_back(std::move(outcome));
        continue;
      }
      InFlight& flight = inflight_[prepared[i].key];
      Subscriber sub;
      sub.job = id;
      sub.index = i;
      sub.label = cells[i].label;
      // Joining a run someone else already scheduled (another job, or an
      // earlier duplicate cell of this one) — the scheduling dedup the
      // daemon exists for.
      sub.shared = flight.scheduled;
      flight.subscribers.push_back(std::move(sub));
      if (!flight.scheduled) {
        flight.config = cells[i].config;
        flight.scheduled = true;
        queue_.push_back(prepared[i].key);
        ++scheduled;
      }
    }
    complete_at_submit = job.done == job.cells;
    jobs_.emplace(id, std::move(job));
    job_order_.push_back(id);
    ++delivering_;  // store-hit callbacks below run outside the lock
    for (std::size_t i = 0; i < scheduled; ++i) work_cv_.notify_one();
  }

  // Callbacks fire outside the lock; a fully-cached job completes before
  // submit returns, which is what makes warm reruns instant.
  const Job* job = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job = &jobs_.at(id);
  }
  for (const CellOutcome& outcome : immediate) {
    if (job->on_cell) job->on_cell(outcome);
  }
  if (complete_at_submit && job->on_done) job->on_done(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --delivering_;
  }
  drain_cv_.notify_all();
  return id;
}

void SweepService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;  // pending cells are abandoned by design
    const std::string key = std::move(queue_.front());
    queue_.pop_front();
    const sim::SimConfig config = inflight_.at(key).config;
    lock.unlock();

    const auto start = std::chrono::steady_clock::now();
    const sim::SimResult result = sim::run_sim(config);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (store_ != nullptr) {
      store_->put(key, store::canonical_config_text(config), result, wall);
    }

    lock.lock();
    complete_locked(lock, key, result, false);
  }
}

void SweepService::complete_locked(std::unique_lock<std::mutex>& lock,
                                   const std::string& key, const sim::SimResult& result,
                                   bool cached) {
  // Take the subscriber list out of the in-flight table first: a submit
  // racing with this completion then starts a fresh entry (and, having
  // missed the store before our put, at worst re-runs the cell — wasted
  // work, never a wrong or missed delivery).
  auto node = inflight_.extract(key);
  if (node.empty()) return;

  struct Delivery {
    CellCallback on_cell;
    CellOutcome outcome;
  };
  std::vector<Delivery> deliveries;
  std::vector<DoneCallback> done_callbacks;
  std::vector<std::uint64_t> done_ids;
  for (Subscriber& sub : node.mapped().subscribers) {
    Job& job = jobs_.at(sub.job);
    ++job.done;
    Delivery d;
    d.on_cell = job.on_cell;  // copy: invoked outside the lock
    d.outcome.job = sub.job;
    d.outcome.index = sub.index;
    d.outcome.label = std::move(sub.label);
    d.outcome.key = key;
    d.outcome.cached = cached;
    d.outcome.shared = sub.shared;
    d.outcome.result = result;
    deliveries.push_back(std::move(d));
    if (job.done == job.cells && job.on_done) {
      done_callbacks.push_back(job.on_done);
      done_ids.push_back(job.id);
    }
  }

  ++delivering_;
  lock.unlock();
  for (const Delivery& d : deliveries) {
    if (d.on_cell) d.on_cell(d.outcome);
  }
  for (std::size_t i = 0; i < done_callbacks.size(); ++i) {
    done_callbacks[i](done_ids[i]);
  }
  lock.lock();
  --delivering_;
  drain_cv_.notify_all();
}

std::vector<SweepService::JobStatus> SweepService::status() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(job_order_.size());
  for (const std::uint64_t id : job_order_) {
    const Job& job = jobs_.at(id);
    JobStatus s;
    s.id = job.id;
    s.name = job.name;
    s.cells = job.cells;
    s.done = job.done;
    s.store_hits = job.store_hits;
    s.complete = job.done == job.cells;
    out.push_back(std::move(s));
  }
  return out;
}

void SweepService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    if (delivering_ > 0) return false;
    for (const auto& [id, job] : jobs_) {
      if (job.done < job.cells) return false;
    }
    return true;
  });
}

}  // namespace ibsim::service
