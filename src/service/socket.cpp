#include "service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ibsim::service {

Fd::~Fd() { close(); }

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Fd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

bool listen_unix(const std::string& path, Fd* out, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, &addr, error)) return false;
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // stale socket from a crashed predecessor
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  if (::listen(fd.get(), 16) != 0) {
    if (error != nullptr) {
      *error = "listen '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  *out = std::move(fd);
  return true;
}

bool connect_unix(const std::string& path, Fd* out, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, &addr, error)) return false;
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect '" + path + "': " + std::strerror(errno);
    }
    return false;
  }
  *out = std::move(fd);
  return true;
}

bool accept_unix(const Fd& listener, Fd* out) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      *out = Fd(fd);
      return true;
    }
    if (errno == EINTR) continue;
    return false;  // listener closed or fatal error: accept loop ends
  }
}

bool read_line(int fd, std::string* buffer, std::string* line) {
  for (;;) {
    const std::size_t nl = buffer->find('\n');
    if (nl != std::string::npos) {
      *line = buffer->substr(0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buffer->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buffer->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
}

bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t sent = 0;
  while (sent < out.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-sweep must produce a
    // write error here, not SIGPIPE-kill the daemon.
    const ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace ibsim::service
