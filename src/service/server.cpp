#include "service/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "service/json.hpp"
#include "service/sweep_request.hpp"

namespace ibsim::service {

namespace {

/// Serialized writer over one connection: a raw fd plus the
/// connection's write mutex. Callbacks capture it by value together
/// with the owning Connection shared_ptr, which keeps the fd open (a
/// stopped server shuts the socket down but never closes it while
/// callbacks exist, so a stale fd number can never alias a new file).
struct ConnWriter {
  int fd;
  std::mutex* mu;
  void send(const Json& event) const {
    std::lock_guard<std::mutex> lock(*mu);
    // A dead client makes this fail; completions for its jobs are
    // simply dropped (the results are in the store regardless).
    (void)write_line(fd, event.dump());
  }
};

Json error_event(const std::string& message) {
  Json e = Json::object();
  e.set("event", Json::string("error"));
  e.set("message", Json::string(message));
  return e;
}

}  // namespace

SweepServer::SweepServer(Options options) : options_(std::move(options)) {
  service_ = std::make_unique<SweepService>(options_.service);
}

SweepServer::~SweepServer() { stop(); }

bool SweepServer::start(std::string* error) {
  if (!listen_unix(options_.socket_path, &listener_, error)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void SweepServer::accept_loop() {
  for (;;) {
    Fd fd;
    if (!accept_unix(listener_, &fd)) return;  // listener shut down
    auto conn = std::make_shared<Connection>();
    conn->fd = std::move(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;  // raced with stop(); conn closes on scope exit
    connections_.push_back(conn);
    connection_threads_.emplace_back([this, conn] { handle_connection(conn); });
  }
}

void SweepServer::handle_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  std::string line;
  while (read_line(conn->fd.get(), &buffer, &line)) {
    if (line.empty()) continue;
    handle_line(conn, line);
  }
}

void SweepServer::handle_line(const std::shared_ptr<Connection>& conn,
                              const std::string& line) {
  const ConnWriter writer{conn->fd.get(), &conn->write_mu};

  std::string parse_error;
  const Json request = Json::parse(line, &parse_error);
  if (!parse_error.empty()) {
    writer.send(error_event("bad JSON: " + parse_error));
    return;
  }
  const Json* op = request.find("op");
  if (op == nullptr || !op->is_string()) {
    writer.send(error_event("request needs a string 'op' field"));
    return;
  }

  if (op->as_string() == "ping") {
    Json pong = Json::object();
    pong.set("event", Json::string("pong"));
    writer.send(pong);
    return;
  }

  if (op->as_string() == "status") {
    Json status = Json::object();
    status.set("event", Json::string("status"));
    Json jobs = Json::array();
    for (const SweepService::JobStatus& s : service_->status()) {
      Json job = Json::object();
      job.set("id", Json::number_int(static_cast<std::int64_t>(s.id)));
      job.set("name", Json::string(s.name));
      job.set("cells", Json::number_int(static_cast<std::int64_t>(s.cells)));
      job.set("done", Json::number_int(static_cast<std::int64_t>(s.done)));
      job.set("store_hits", Json::number_int(static_cast<std::int64_t>(s.store_hits)));
      job.set("complete", Json::boolean(s.complete));
      jobs.push_back(std::move(job));
    }
    status.set("jobs", std::move(jobs));
    if (service_->store() != nullptr) {
      const store::ResultStore::Stats stats = service_->store()->stats();
      Json store = Json::object();
      store.set("dir", Json::string(service_->store()->dir()));
      store.set("hits", Json::number_int(static_cast<std::int64_t>(stats.hits)));
      store.set("misses", Json::number_int(static_cast<std::int64_t>(stats.misses)));
      store.set("puts", Json::number_int(static_cast<std::int64_t>(stats.puts)));
      store.set("entries",
                Json::number_int(static_cast<std::int64_t>(service_->store()->entries())));
      status.set("store", std::move(store));
    }
    writer.send(status);
    return;
  }

  if (op->as_string() == "drain") {
    // Blocks this connection's thread only; other clients keep talking.
    service_->drain();
    Json drained = Json::object();
    drained.set("event", Json::string("drained"));
    drained.set("jobs",
                Json::number_int(static_cast<std::int64_t>(service_->status().size())));
    writer.send(drained);
    return;
  }

  if (op->as_string() == "shutdown") {
    Json bye = Json::object();
    bye.set("event", Json::string("bye"));
    writer.send(bye);
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    return;
  }

  if (op->as_string() == "submit") {
    SweepRequest sweep;
    std::string error;
    if (!parse_sweep_request(request, &sweep, &error)) {
      writer.send(error_event(error));
      return;
    }
    std::vector<SweepCell> cells;
    if (!expand_sweep(sweep, options_.base_config, &cells, &error)) {
      writer.send(error_event(error));
      return;
    }
    const std::size_t n_cells = cells.size();

    // Per-job hit counter shared by the callbacks (cell events may fire
    // from several worker threads).
    auto hits = std::make_shared<std::atomic<std::size_t>>(0);
    auto on_cell = [writer, hits](const SweepService::CellOutcome& outcome) {
      if (outcome.cached) hits->fetch_add(1, std::memory_order_relaxed);
      Json cell = Json::object();
      cell.set("event", Json::string("cell"));
      cell.set("job", Json::number_int(static_cast<std::int64_t>(outcome.job)));
      cell.set("index", Json::number_int(static_cast<std::int64_t>(outcome.index)));
      cell.set("label", Json::string(outcome.label));
      cell.set("key", Json::string(outcome.key));
      cell.set("cached", Json::boolean(outcome.cached));
      cell.set("shared", Json::boolean(outcome.shared));
      cell.set("all_rcv_gbps", Json::number(outcome.result.all_rcv_gbps));
      cell.set("hotspot_rcv_gbps", Json::number(outcome.result.hotspot_rcv_gbps));
      cell.set("non_hotspot_rcv_gbps", Json::number(outcome.result.non_hotspot_rcv_gbps));
      cell.set("total_throughput_gbps",
               Json::number(outcome.result.total_throughput_gbps));
      writer.send(cell);
    };
    auto on_done = [writer, hits, n_cells](std::uint64_t job) {
      Json done = Json::object();
      done.set("event", Json::string("done"));
      done.set("job", Json::number_int(static_cast<std::int64_t>(job)));
      done.set("cells", Json::number_int(static_cast<std::int64_t>(n_cells)));
      done.set("store_hits", Json::number_int(static_cast<std::int64_t>(
                                 hits->load(std::memory_order_relaxed))));
      writer.send(done);
    };

    // The accepted event must precede every cell event, and submit()
    // fires store hits synchronously — hold the job back until the
    // header is on the wire. conn (not just the raw fd) is captured by
    // the callbacks' writer so the socket outlives a client that
    // disconnects mid-sweep.
    Json accepted = Json::object();
    accepted.set("event", Json::string("accepted"));
    accepted.set("name", Json::string(sweep.name));
    accepted.set("cells", Json::number_int(static_cast<std::int64_t>(n_cells)));
    writer.send(accepted);
    service_->submit(sweep.name, std::move(cells),
                     [conn, on_cell](const SweepService::CellOutcome& outcome) {
                       on_cell(outcome);
                     },
                     [conn, on_done](std::uint64_t job) { on_done(job); });
    return;
  }

  writer.send(error_event("unknown op '" + op->as_string() + "'"));
}

void SweepServer::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_ || !running_; });
}

void SweepServer::stop() {
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && accept_thread_.joinable() == false && connection_threads_.empty()) {
      return;
    }
    running_ = false;
    shutdown_cv_.notify_all();
    connections = std::move(connections_);
    threads = std::move(connection_threads_);
    connections_.clear();
    connection_threads_.clear();
  }
  // shutdown() (not just close) wakes a blocked accept()/read().
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const auto& conn : connections) {
    if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RDWR);
  }
  for (std::thread& t : threads) t.join();
  ::unlink(options_.socket_path.c_str());
}

}  // namespace ibsim::service
