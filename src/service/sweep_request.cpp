#include "service/sweep_request.hpp"

#include "sim/config_file.hpp"

namespace ibsim::service {

namespace {

/// A scalar request value as config-file value text. Numbers keep their
/// request spelling (Json preserves it), so "0.1" reaches the config
/// parser exactly as the client wrote it.
bool value_text(const Json& v, std::string* out, std::string* error) {
  switch (v.kind()) {
    case Json::Kind::String: *out = v.as_string(); return true;
    case Json::Kind::Number: *out = v.number_text(); return true;
    case Json::Kind::Bool: *out = v.as_bool() ? "1" : "0"; return true;
    default:
      *error = "expected a string, number, or bool value";
      return false;
  }
}

}  // namespace

bool parse_sweep_request(const Json& json, SweepRequest* request, std::string* error) {
  *request = SweepRequest{};
  if (!json.is_object()) {
    *error = "submit request must be a JSON object";
    return false;
  }
  for (const auto& [key, value] : json.members()) {
    if (key == "op") continue;  // dispatched by the caller
    if (key == "name") {
      if (!value.is_string()) {
        *error = "'name' must be a string";
        return false;
      }
      request->name = value.as_string();
      continue;
    }
    if (key == "threads") {
      if (!value.is_number() || value.as_double() < 0) {
        *error = "'threads' must be a non-negative number";
        return false;
      }
      request->threads = static_cast<std::int32_t>(value.as_int());
      continue;
    }
    if (key == "base") {
      if (!value.is_object()) {
        *error = "'base' must be an object of config keys";
        return false;
      }
      for (const auto& [config_key, config_value] : value.members()) {
        std::string text;
        if (!value_text(config_value, &text, error)) {
          *error = "base." + config_key + ": " + *error;
          return false;
        }
        request->base.emplace_back(config_key, std::move(text));
      }
      continue;
    }
    if (key == "axes") {
      if (!value.is_object()) {
        *error = "'axes' must be an object of config key -> value list";
        return false;
      }
      for (const auto& [axis_key, axis_values] : value.members()) {
        if (!axis_values.is_array() || axis_values.elements().empty()) {
          *error = "axes." + axis_key + ": must be a non-empty array";
          return false;
        }
        std::vector<std::string> texts;
        texts.reserve(axis_values.elements().size());
        for (const Json& element : axis_values.elements()) {
          std::string text;
          if (!value_text(element, &text, error)) {
            *error = "axes." + axis_key + ": " + *error;
            return false;
          }
          texts.push_back(std::move(text));
        }
        request->axes.emplace_back(axis_key, std::move(texts));
      }
      continue;
    }
    // Same philosophy as the config-file parser: an unrecognised field
    // is a typo until proven otherwise.
    *error = "unknown request field '" + key + "'";
    return false;
  }
  if (request->name.empty()) {
    *error = "submit request needs a non-empty 'name'";
    return false;
  }
  return true;
}

bool expand_sweep(const SweepRequest& request, const sim::SimConfig& base_config,
                  std::vector<SweepCell>* cells, std::string* error) {
  cells->clear();

  // Base keys become one config-file text applied up front (duplicate
  // keys within the base are caught by the config parser itself).
  std::string base_text;
  for (const auto& [key, value] : request.base) {
    base_text += key + " = " + value + "\n";
  }
  sim::SimConfig with_base = base_config;
  if (std::string err = sim::apply_config_text(base_text, &with_base); !err.empty()) {
    *error = "base: " + err;
    return false;
  }

  // Row-major Cartesian product: the odometer's last axis ticks fastest,
  // matching the nesting order a hand-written loop over the request
  // would produce. Axis assignments apply as a second config text, so an
  // axis may legitimately override a base key without tripping the
  // parser's per-file duplicate detection.
  std::size_t total = 1;
  for (const auto& [key, values] : request.axes) total *= values.size();
  cells->reserve(total);
  std::vector<std::size_t> odometer(request.axes.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    std::string label;
    std::string axis_text;
    for (std::size_t a = 0; a < request.axes.size(); ++a) {
      const auto& [key, values] = request.axes[a];
      const std::string& value = values[odometer[a]];
      if (!label.empty()) label += ' ';
      label += key + "=" + value;
      axis_text += key + " = " + value + "\n";
    }
    SweepCell cell;
    cell.label = label.empty() ? request.name : label;
    cell.config = with_base;
    if (std::string err = sim::apply_config_text(axis_text, &cell.config); !err.empty()) {
      *error = "cell '" + cell.label + "': " + err;
      cells->clear();
      return false;
    }
    cells->push_back(std::move(cell));
    for (std::size_t a = request.axes.size(); a-- > 0;) {
      if (++odometer[a] < request.axes[a].second.size()) break;
      odometer[a] = 0;
    }
  }
  return true;
}

}  // namespace ibsim::service
