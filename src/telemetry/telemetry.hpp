#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace ibsim::telemetry {

/// Construction options for one Telemetry instance.
struct TelemetryOptions {
  std::uint32_t trace_categories = 0;  ///< 0 disables the tracer entirely
  std::size_t ring_capacity = 1u << 20;
  /// Register per-port / per-node instruments (queue_bytes, buf_bytes,
  /// credit_stall_ps, per-HCA CCTI) in addition to the fabric-wide
  /// aggregates. Off by default: on a 648-node fabric this is tens of
  /// thousands of gauges.
  bool detailed = false;
};

/// The observability root one simulation owns: a counter registry, an
/// optional tracer, and the track names exporters render. Devices receive
/// a `Telemetry*` at attach time (null = telemetry off, the only cost a
/// probe then pays is that null check) and pre-resolve their counter
/// handles once.
class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options) : options_(options) {
    if (options.trace_categories != 0) {
      tracer_ = std::make_unique<Tracer>(options.ring_capacity, options.trace_categories);
    }
  }

  [[nodiscard]] const TelemetryOptions& options() const { return options_; }
  [[nodiscard]] bool detailed() const { return options_.detailed; }

  [[nodiscard]] CounterRegistry& registry() { return registry_; }
  [[nodiscard]] const CounterRegistry& registry() const { return registry_; }

  /// Null when no trace category is enabled — probes cache this pointer.
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const Tracer* tracer() const { return tracer_.get(); }

  /// Name the trace track of a device ("switch 3", "hca 12 (node 5)").
  void set_track_name(std::int32_t dev, std::string name) {
    track_names_[dev] = std::move(name);
  }
  [[nodiscard]] const std::map<std::int32_t, std::string>& track_names() const {
    return track_names_;
  }

 private:
  TelemetryOptions options_;
  CounterRegistry registry_;
  std::unique_ptr<Tracer> tracer_;
  std::map<std::int32_t, std::string> track_names_;
};

}  // namespace ibsim::telemetry
