#include "telemetry/sampler.hpp"

#include <cinttypes>

#include "core/assert.hpp"

namespace ibsim::telemetry {

namespace {
constexpr std::uint32_t kSampleEvent = 0x7E1E;
}

CounterSampler::CounterSampler(const CounterRegistry* registry, core::Time interval,
                               std::string csv_path, std::function<void(core::Time)> refresh)
    : registry_(registry),
      interval_(interval),
      path_(std::move(csv_path)),
      refresh_(std::move(refresh)) {
  IBSIM_ASSERT(interval > 0, "counter sampler needs a positive interval");
}

CounterSampler::~CounterSampler() { close(); }

bool CounterSampler::install(core::Scheduler& sched) {
  IBSIM_ASSERT(!installed_, "counter sampler installed twice");
  installed_ = true;
  file_ = std::fopen(path_.c_str(), "w");
  if (file_ == nullptr) return false;
  columns_ = registry_->size();
  std::fputs("t_us", file_);
  for (std::size_t i = 0; i < columns_; ++i) {
    std::fprintf(file_, ",%s", registry_->name(i).c_str());
  }
  std::fputc('\n', file_);
  sched.schedule_in(interval_, this, kSampleEvent);
  return true;
}

void CounterSampler::on_event(core::Scheduler& sched, const core::Event& ev) {
  IBSIM_ASSERT(ev.kind == kSampleEvent, "counter sampler received an unknown event");
  if (file_ != nullptr) {
    const core::Time now = sched.now();
    if (refresh_) refresh_(now);
    std::fprintf(file_, "%.3f", static_cast<double>(now) / 1e6);
    for (std::size_t i = 0; i < columns_; ++i) {
      std::fprintf(file_, ",%" PRId64, registry_->value(i));
    }
    std::fputc('\n', file_);
    ++rows_;
  }
  sched.schedule_in(interval_, this, kSampleEvent);
}

void CounterSampler::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace ibsim::telemetry
