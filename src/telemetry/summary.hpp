#pragma once

#include "analysis/table.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace ibsim::telemetry {

/// End-of-run counter summary as an aligned text table (the analysis
/// layer's table renderer, so it prints and CSV-exports like the paper
/// tables). Only the fabric-wide aggregates by default; `detailed` adds
/// every per-port / per-node instrument.
[[nodiscard]] analysis::TextTable counters_table(const CounterRegistry& registry,
                                                 bool detailed = false);

/// One-line health summary of a tracer ("12345 events, 0 dropped").
[[nodiscard]] std::string describe_tracer(const Tracer& tracer);

}  // namespace ibsim::telemetry
