#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace ibsim::telemetry {

/// Trace event categories; each is one enable bit, so a probe behind a
/// disabled category costs exactly one branch.
enum class Category : std::uint32_t {
  kCc = 1u << 0,       ///< FECN marks, BECN/CNP traffic, CCTI evolution
  kCredits = 1u << 1,  ///< credit-exhaustion stalls on output ports
  kQueues = 1u << 2,   ///< Port-VL queue threshold crossings
  kArb = 1u << 3,      ///< every VL-arbitration grant (high volume)
};

inline constexpr std::uint32_t kAllCategories =
    static_cast<std::uint32_t>(Category::kCc) | static_cast<std::uint32_t>(Category::kCredits) |
    static_cast<std::uint32_t>(Category::kQueues) | static_cast<std::uint32_t>(Category::kArb);

/// Parse a comma-separated category list ("cc,credits", "all", "" = all).
/// Returns false on an unknown name; `*mask` is only written on success.
[[nodiscard]] bool parse_categories(const std::string& spec, std::uint32_t* mask);

/// Render a mask back to the canonical comma-separated spelling.
[[nodiscard]] std::string format_categories(std::uint32_t mask);

/// What happened. The payload convention per kind is documented next to
/// the probe that records it; `value`/`aux` are kind-specific.
enum class EventKind : std::uint16_t {
  kFecnMark = 1,         ///< switch marked a forwarded packet; value=queued bytes
  kBecnSent = 2,         ///< HCA queued a CNP; value=destination node
  kBecnDelivered = 3,    ///< CNP drained at the source HCA; value=flow dst
  kCctiSet = 4,          ///< a CA's CCTI mass changed; value=sum of its flows'
                         ///< CCTIs, aux=flow dst that triggered it (-1 = timer)
  kThrottleStart = 5,    ///< a flow entered the throttled set; aux=flow dst
  kThrottleEnd = 6,      ///< a flow recovered to CCTI 0; aux=flow dst
  kCongestionEnter = 7,  ///< Port-VL queue crossed the CC threshold; value=bytes
  kCongestionExit = 8,   ///< Port-VL queue fell back under it; value=bytes
  kCreditStallStart = 9, ///< output port had work but no credits
  kCreditStallEnd = 10,  ///< credits returned; value=stall duration (ps)
  kArbGrant = 11,        ///< VL arbiter granted a packet; value=bytes, aux=pace ps
};

/// One record: 32 bytes, fixed layout, no ownership.
struct TraceEvent {
  core::Time at = 0;
  std::int64_t value = 0;
  std::int32_t dev = -1;   ///< device id (trace track "process")
  std::int32_t aux = 0;
  std::int16_t port = -1;  ///< port on `dev` (trace track "thread"), -1 = device-wide
  EventKind kind = EventKind::kFecnMark;
  std::int8_t vl = -1;
};

/// Bounded ring of timestamped fabric events. When full, the oldest
/// records are overwritten (the tail of a run is usually the interesting
/// part) and the drop count reported, so a too-small ring is visible
/// rather than silent.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity, std::uint32_t category_mask)
      : mask_(category_mask), capacity_(capacity) {
    IBSIM_ASSERT(capacity > 0, "tracer ring needs a positive capacity");
    ring_.reserve(capacity < 4096 ? capacity : 4096);
  }

  /// The one-branch gate every probe checks first.
  [[nodiscard]] bool enabled(Category c) const {
    return (mask_ & static_cast<std::uint32_t>(c)) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }

  void record(Category c, EventKind kind, core::Time at, std::int32_t dev, std::int32_t port,
              std::int32_t vl, std::int64_t value, std::int32_t aux = 0) {
    if (!enabled(c)) return;
    TraceEvent ev;
    ev.at = at;
    ev.value = value;
    ev.dev = dev;
    ev.aux = aux;
    ev.port = static_cast<std::int16_t>(port);
    ev.kind = kind;
    ev.vl = static_cast<std::int8_t>(vl);
    push(ev);
  }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Event `i` in time order, 0 = oldest retained.
  [[nodiscard]] const TraceEvent& at(std::size_t i) const {
    IBSIM_ASSERT(i < ring_.size(), "trace event index out of range");
    return ring_[(head_ + i) % ring_.size()];
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  void push(const TraceEvent& ev) {
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
      return;
    }
    // Full: overwrite the oldest slot and advance the logical head.
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }

  std::uint32_t mask_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace ibsim::telemetry
