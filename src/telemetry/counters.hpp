#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/assert.hpp"

namespace ibsim::telemetry {

/// Registry of named, hierarchical counters and gauges
/// (`switch.3.port.12.vl0.queue_bytes`, `fabric.fecn_marked`, ...).
///
/// Names are resolved once, at instrumentation time, into dense integer
/// handles; every hot-path update is then a single indexed add/store with
/// no hashing or string work. Counters accumulate (monotone deltas),
/// gauges hold the latest sampled value — the distinction only matters to
/// exporters (a CSV consumer differentiates counters, plots gauges).
class CounterRegistry {
 public:
  enum class Kind : std::uint8_t { Counter, Gauge };

  /// Pre-resolved instrument reference. Invalid handles (default
  /// constructed) are legal and make updates no-ops, so probe points can
  /// hold handles unconditionally and skip registration when a detail
  /// level is disabled.
  struct Handle {
    std::int32_t idx = -1;
    [[nodiscard]] bool valid() const { return idx >= 0; }
  };

  /// Get-or-create by name. Re-resolving an existing name returns the
  /// same handle; the kind must match.
  Handle counter(const std::string& name) { return resolve(name, Kind::Counter); }
  Handle gauge(const std::string& name) { return resolve(name, Kind::Gauge); }

  // --- hot path ------------------------------------------------------------
  void add(Handle h, std::int64_t delta) {
    if (h.idx >= 0) values_[static_cast<std::size_t>(h.idx)] += delta;
  }
  void inc(Handle h) { add(h, 1); }
  void set(Handle h, std::int64_t value) {
    if (h.idx >= 0) values_[static_cast<std::size_t>(h.idx)] = value;
  }

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const { return names_[i]; }
  [[nodiscard]] Kind kind(std::size_t i) const { return kinds_[i]; }
  [[nodiscard]] std::int64_t value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] std::int64_t value(Handle h) const {
    IBSIM_ASSERT(h.valid(), "reading an invalid counter handle");
    return values_[static_cast<std::size_t>(h.idx)];
  }

  /// Find an instrument by exact name; returns an invalid handle if the
  /// name was never registered.
  [[nodiscard]] Handle find(const std::string& name) const {
    const auto it = index_.find(name);
    return it == index_.end() ? Handle{} : Handle{it->second};
  }

  /// Sum of every instrument whose name starts with `prefix` — the
  /// hierarchical roll-up (`switch.3.` sums all of switch 3's counters).
  [[nodiscard]] std::int64_t prefix_sum(const std::string& prefix) const;

  /// (name, value) pairs in registration order — registration order is
  /// deterministic, so snapshots of identical runs compare equal.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> snapshot() const;

 private:
  Handle resolve(const std::string& name, Kind kind);

  std::unordered_map<std::string, std::int32_t> index_;
  std::vector<std::string> names_;
  std::vector<Kind> kinds_;
  std::vector<std::int64_t> values_;
};

}  // namespace ibsim::telemetry
