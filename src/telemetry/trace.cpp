#include "telemetry/trace.hpp"

namespace ibsim::telemetry {

namespace {

struct CategoryName {
  const char* name;
  Category category;
};

constexpr CategoryName kCategoryNames[] = {
    {"cc", Category::kCc},
    {"credits", Category::kCredits},
    {"queues", Category::kQueues},
    {"arb", Category::kArb},
};

}  // namespace

bool parse_categories(const std::string& spec, std::uint32_t* mask) {
  if (spec.empty() || spec == "all") {
    *mask = kAllCategories;
    return true;
  }
  std::uint32_t out = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    bool known = false;
    for (const CategoryName& c : kCategoryNames) {
      if (token == c.name) {
        out |= static_cast<std::uint32_t>(c.category);
        known = true;
        break;
      }
    }
    if (!known) return false;
    pos = comma + 1;
  }
  *mask = out;
  return true;
}

std::string format_categories(std::uint32_t mask) {
  std::string out;
  for (const CategoryName& c : kCategoryNames) {
    if ((mask & static_cast<std::uint32_t>(c.category)) == 0) continue;
    if (!out.empty()) out += ',';
    out += c.name;
  }
  return out;
}

}  // namespace ibsim::telemetry
