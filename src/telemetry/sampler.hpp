#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "core/event.hpp"
#include "core/scheduler.hpp"
#include "core/time.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::telemetry {

/// Periodic CSV sampler of a counter registry: one column per
/// instrument, one row per sampling interval (the same cadence pattern
/// as sim/timeline, but over the whole registry instead of a fixed
/// schema). The column set is frozen at install time — instrument the
/// fabric first, then install.
///
/// The optional `refresh` hook runs before each row and lets the owner
/// update pull-style gauges (e.g. fabric-wide queued bytes) that no hot
/// path pushes.
class CounterSampler final : public core::EventHandler {
 public:
  CounterSampler(const CounterRegistry* registry, core::Time interval, std::string csv_path,
                 std::function<void(core::Time)> refresh = {});
  ~CounterSampler() override;

  CounterSampler(const CounterSampler&) = delete;
  CounterSampler& operator=(const CounterSampler&) = delete;

  /// Open the CSV, write the header, and begin sampling every interval.
  /// Returns false (and samples nothing) if the file cannot be opened.
  bool install(core::Scheduler& sched);

  void on_event(core::Scheduler& sched, const core::Event& ev) override;

  /// Flush and close the file; further samples are dropped. Idempotent,
  /// also run by the destructor.
  void close();

  [[nodiscard]] std::uint64_t rows_written() const { return rows_; }

 private:
  const CounterRegistry* registry_;
  core::Time interval_;
  std::string path_;
  std::function<void(core::Time)> refresh_;
  std::FILE* file_ = nullptr;
  std::size_t columns_ = 0;
  std::uint64_t rows_ = 0;
  bool installed_ = false;
};

}  // namespace ibsim::telemetry
