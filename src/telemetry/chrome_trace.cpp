#include "telemetry/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

namespace ibsim::telemetry {

namespace {

/// Timestamps: Chrome traces are in microseconds; %.6f keeps the full
/// picosecond resolution of core::Time.
void print_ts(std::FILE* f, core::Time at) {
  std::fprintf(f, "%.6f", static_cast<double>(at) / 1e6);
}

void print_escaped(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', f);
    if (static_cast<unsigned char>(c) < 0x20) continue;  // never happens for our names
    std::fputc(c, f);
  }
}

/// Unique id for an async span: one concurrent episode per (dev, port, vl).
std::uint64_t span_id(const TraceEvent& ev) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ev.dev)) << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(ev.port + 1)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(ev.vl + 1));
}

struct EventWriter {
  std::FILE* f;
  bool first = true;

  void begin(const char* name, const char* cat, const char* ph, core::Time at,
             std::int32_t pid, std::int32_t tid) {
    if (!first) std::fputs(",\n", f);
    first = false;
    std::fprintf(f, R"({"name":"%s","cat":"%s","ph":"%s","ts":)", name, cat, ph);
    print_ts(f, at);
    std::fprintf(f, R"(,"pid":%d,"tid":%d)", pid, tid);
  }
  void end() { std::fputs("}", f); }
};

}  // namespace

bool write_chrome_trace(const std::string& path, const Telemetry& telemetry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
  EventWriter w{f};

  // Track metadata: process names for every known device, thread names
  // for every (device, port) that actually traced something.
  for (const auto& [dev, name] : telemetry.track_names()) {
    w.begin("process_name", "__metadata", "M", 0, dev, 0);
    std::fputs(",\"args\":{\"name\":\"", f);
    print_escaped(f, name);
    std::fputs("\"}", f);
    w.end();
  }
  const Tracer* tracer = telemetry.tracer();
  if (tracer != nullptr) {
    std::set<std::pair<std::int32_t, std::int32_t>> tracks;
    for (std::size_t i = 0; i < tracer->size(); ++i) {
      const TraceEvent& ev = tracer->at(i);
      if (ev.port >= 0) tracks.emplace(ev.dev, ev.port);
    }
    for (const auto& [dev, port] : tracks) {
      w.begin("thread_name", "__metadata", "M", 0, dev, port);
      std::fprintf(f, ",\"args\":{\"name\":\"port %d\"}", port);
      w.end();
    }

    for (std::size_t i = 0; i < tracer->size(); ++i) {
      const TraceEvent& ev = tracer->at(i);
      const std::int32_t tid = ev.port >= 0 ? ev.port : 0;
      switch (ev.kind) {
        case EventKind::kFecnMark:
          w.begin("FECN mark", "cc", "i", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"s\":\"t\",\"args\":{\"vl\":%d,\"queued_bytes\":%" PRId64 "}",
                       ev.vl, ev.value);
          break;
        case EventKind::kBecnSent:
          w.begin("CNP sent", "cc", "i", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"s\":\"t\",\"args\":{\"to_node\":%" PRId64 "}", ev.value);
          break;
        case EventKind::kBecnDelivered:
          w.begin("BECN delivered", "cc", "i", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"s\":\"t\",\"args\":{\"flow_dst\":%" PRId64 "}", ev.value);
          break;
        case EventKind::kCctiSet:
          w.begin("ccti", "cc", "C", ev.at, ev.dev, 0);
          std::fprintf(f, ",\"args\":{\"ccti\":%" PRId64 "}", ev.value);
          break;
        case EventKind::kThrottleStart:
          w.begin("throttle start", "cc", "i", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"s\":\"t\",\"args\":{\"flow_dst\":%d}", ev.aux);
          break;
        case EventKind::kThrottleEnd:
          w.begin("throttle end", "cc", "i", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"s\":\"t\",\"args\":{\"flow_dst\":%d}", ev.aux);
          break;
        case EventKind::kCongestionEnter:
          w.begin("congested", "queues", "b", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"id\":\"0x%" PRIx64 "\",\"args\":{\"vl\":%d,\"bytes\":%" PRId64 "}",
                       span_id(ev), ev.vl, ev.value);
          break;
        case EventKind::kCongestionExit:
          w.begin("congested", "queues", "e", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"id\":\"0x%" PRIx64 "\"", span_id(ev));
          break;
        case EventKind::kCreditStallStart:
          w.begin("credit stall", "credits", "b", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"id\":\"0x%" PRIx64 "\",\"args\":{\"vl\":%d}", span_id(ev), ev.vl);
          break;
        case EventKind::kCreditStallEnd:
          w.begin("credit stall", "credits", "e", ev.at, ev.dev, tid);
          std::fprintf(f, ",\"id\":\"0x%" PRIx64 "\",\"args\":{\"stall_ps\":%" PRId64 "}",
                       span_id(ev), ev.value);
          break;
        case EventKind::kArbGrant:
          w.begin("pkt", "arb", "X", ev.at, ev.dev, tid);
          std::fputs(",\"dur\":", f);
          print_ts(f, ev.aux);
          std::fprintf(f, ",\"args\":{\"vl\":%d,\"bytes\":%" PRId64 "}", ev.vl, ev.value);
          break;
      }
      w.end();
    }
  }

  std::fprintf(f, "\n],\"otherData\":{\"dropped_events\":%" PRIu64 "}}\n",
               tracer != nullptr ? tracer->dropped() : 0);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace ibsim::telemetry
