#include "telemetry/counters.hpp"

namespace ibsim::telemetry {

CounterRegistry::Handle CounterRegistry::resolve(const std::string& name, Kind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    const auto idx = static_cast<std::size_t>(it->second);
    IBSIM_ASSERT(kinds_[idx] == kind, "instrument re-registered with a different kind");
    return Handle{it->second};
  }
  const auto idx = static_cast<std::int32_t>(values_.size());
  index_.emplace(name, idx);
  names_.push_back(name);
  kinds_.push_back(kind);
  values_.push_back(0);
  return Handle{idx};
}

std::int64_t CounterRegistry::prefix_sum(const std::string& prefix) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].compare(0, prefix.size(), prefix) == 0) total += values_[i];
  }
  return total;
}

std::vector<std::pair<std::string, std::int64_t>> CounterRegistry::snapshot() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) out.emplace_back(names_[i], values_[i]);
  return out;
}

}  // namespace ibsim::telemetry
