#include "telemetry/summary.hpp"

#include <cinttypes>
#include <cstdio>

namespace ibsim::telemetry {

analysis::TextTable counters_table(const CounterRegistry& registry, bool detailed) {
  analysis::TextTable table({"counter", "kind", "value"});
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const std::string& name = registry.name(i);
    // Per-port and per-node instruments live under "switch." / "hca.";
    // the aggregate namespace is "fabric." / "cc.".
    const bool per_device =
        name.compare(0, 7, "switch.") == 0 || name.compare(0, 4, "hca.") == 0;
    if (per_device && !detailed) continue;
    table.add_row({name, registry.kind(i) == CounterRegistry::Kind::Counter ? "counter" : "gauge",
                   std::to_string(registry.value(i))});
  }
  return table;
}

std::string describe_tracer(const Tracer& tracer) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%zu trace events retained (%s), %" PRIu64 " dropped",
                tracer.size(), format_categories(tracer.mask()).c_str(), tracer.dropped());
  return buf;
}

}  // namespace ibsim::telemetry
