#pragma once

#include <string>

#include "telemetry/telemetry.hpp"

namespace ibsim::telemetry {

/// Write the tracer's retained events as Chrome trace-event JSON,
/// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// Rendering: one "process" per device (named via the telemetry track
/// names), one "thread" per port. FECN marks and BECN hops are instant
/// events, VL-arbitration grants are complete slices spanning the pacing
/// interval, credit stalls and congestion episodes are async spans, and
/// CCTI changes are counter tracks — the CC feedback loop end to end.
///
/// Returns false if the file cannot be written. A telemetry instance
/// without a tracer produces a valid trace containing only metadata.
[[nodiscard]] bool write_chrome_trace(const std::string& path, const Telemetry& telemetry);

}  // namespace ibsim::telemetry
