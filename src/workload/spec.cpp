#include "workload/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/assert.hpp"

namespace ibsim::workload {
namespace {

/// Barrier iteration chaining used by several builders: the first ops of
/// iteration k depend on `prev` (the closing ops of iteration k-1) and
/// pay the per-iteration compute delay.
void chain_iteration(WorkloadOp* op, const std::vector<std::int32_t>& prev,
                     core::Time compute) {
  op->deps.insert(op->deps.end(), prev.begin(), prev.end());
  op->compute = compute;
}

}  // namespace

std::int32_t WorkloadSpec::phase_count() const {
  std::int32_t max_phase = -1;
  for (const WorkloadOp& op : ops) max_phase = std::max(max_phase, op.phase);
  return max_phase + 1;
}

std::int64_t WorkloadSpec::total_bytes() const {
  std::int64_t total = 0;
  for (const WorkloadOp& op : ops) total += op.bytes;
  return total;
}

std::string WorkloadSpec::validate() const {
  if (ranks < 1) return "workload needs at least one rank";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const WorkloadOp& op = ops[i];
    std::ostringstream at;
    at << "op " << i << ": ";
    if (op.src_rank < 0 || op.src_rank >= ranks) return at.str() + "src rank out of range";
    if (op.dst_rank < 0 || op.dst_rank >= ranks) return at.str() + "dst rank out of range";
    if (op.src_rank == op.dst_rank) return at.str() + "src and dst rank are the same";
    if (op.bytes <= 0) return at.str() + "bytes must be positive";
    if (op.phase < 0) return at.str() + "phase must be non-negative";
    if (op.compute < 0) return at.str() + "compute must be non-negative";
    for (const std::int32_t d : op.deps) {
      if (d < 0 || static_cast<std::size_t>(d) >= i)
        return at.str() + "dependency must reference an earlier op";
    }
  }
  return "";
}

WorkloadSpec build_incast(const WorkloadParams& params) {
  IBSIM_ASSERT(params.ranks >= 2, "incast needs at least 2 ranks");
  WorkloadSpec spec;
  spec.name = "incast";
  spec.ranks = params.ranks;
  const std::int32_t senders = params.ranks - 1;
  std::vector<std::int32_t> prev;
  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    std::vector<std::int32_t> round;
    round.reserve(static_cast<std::size_t>(senders));
    for (std::int32_t s = 1; s < params.ranks; ++s) {
      WorkloadOp op;
      op.src_rank = s;
      op.dst_rank = 0;
      op.bytes = params.message_bytes;
      op.phase = iter;
      if (iter > 0) chain_iteration(&op, prev, params.compute);
      round.push_back(static_cast<std::int32_t>(spec.ops.size()));
      spec.ops.push_back(std::move(op));
    }
    prev = std::move(round);
  }
  return spec;
}

WorkloadSpec build_ring_allreduce(const WorkloadParams& params) {
  IBSIM_ASSERT(params.ranks >= 2, "ring allreduce needs at least 2 ranks");
  const std::int32_t R = params.ranks;
  const std::int32_t steps = 2 * (R - 1);
  const std::int64_t chunk = std::max<std::int64_t>(1, params.message_bytes / R);
  WorkloadSpec spec;
  spec.name = "ring_allreduce";
  spec.ranks = R;
  // Op id layout: ((iter * steps) + step) * R + rank.
  const auto id_of = [R, steps](std::int32_t iter, std::int32_t step, std::int32_t rank) {
    return (iter * steps + step) * R + rank;
  };
  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    for (std::int32_t step = 0; step < steps; ++step) {
      for (std::int32_t r = 0; r < R; ++r) {
        WorkloadOp op;
        op.src_rank = r;
        op.dst_rank = (r + 1) % R;
        op.bytes = chunk;
        op.phase = iter * steps + step;
        const std::int32_t left = (r - 1 + R) % R;
        if (step > 0) {
          // Rank r forwards chunk `step` only after it finished its own
          // previous send and received the chunk from its left neighbour.
          op.deps = {id_of(iter, step - 1, r), id_of(iter, step - 1, left)};
        } else if (iter > 0) {
          op.deps = {id_of(iter - 1, steps - 1, r), id_of(iter - 1, steps - 1, left)};
          op.compute = params.compute;
        }
        spec.ops.push_back(std::move(op));
      }
    }
  }
  return spec;
}

WorkloadSpec build_tree_allreduce(const WorkloadParams& params) {
  IBSIM_ASSERT(params.ranks >= 2, "tree allreduce needs at least 2 ranks");
  const std::int32_t R = params.ranks;
  std::int32_t levels = 0;
  while ((std::int32_t{1} << levels) < R) ++levels;
  WorkloadSpec spec;
  spec.name = "tree_allreduce";
  spec.ranks = R;
  // `delivered_to[r]` is the op that last handed the (partial or full)
  // result to rank r — the natural dependency of r's next send.
  std::vector<std::int32_t> delivered_to(static_cast<std::size_t>(R), -1);
  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    std::vector<std::vector<std::int32_t>> received(static_cast<std::size_t>(R));
    // Reduce: at level l, rank i (i % 2^(l+1) == 2^l) sends to i - 2^l.
    for (std::int32_t level = 0; level < levels; ++level) {
      const std::int32_t half = std::int32_t{1} << level;
      for (std::int32_t i = half; i < R; i += 2 * half) {
        WorkloadOp op;
        op.src_rank = i;
        op.dst_rank = i - half;
        op.bytes = params.message_bytes;
        op.phase = iter * 2 * levels + level;
        // Wait for every child contribution already reduced into i, and
        // (on later iterations) for i's copy of the previous result.
        op.deps = received[static_cast<std::size_t>(i)];
        if (iter > 0 && delivered_to[static_cast<std::size_t>(i)] >= 0) {
          op.deps.push_back(delivered_to[static_cast<std::size_t>(i)]);
          op.compute = params.compute;
        }
        const auto id = static_cast<std::int32_t>(spec.ops.size());
        received[static_cast<std::size_t>(i - half)].push_back(id);
        spec.ops.push_back(std::move(op));
      }
    }
    // Broadcast mirrors the reduce: parent i - 2^l forwards down to i.
    for (std::int32_t level = levels - 1; level >= 0; --level) {
      const std::int32_t half = std::int32_t{1} << level;
      for (std::int32_t i = half; i < R; i += 2 * half) {
        const std::int32_t parent = i - half;
        WorkloadOp op;
        op.src_rank = parent;
        op.dst_rank = i;
        op.bytes = params.message_bytes;
        op.phase = iter * 2 * levels + levels + (levels - 1 - level);
        // The parent forwards once it holds the full reduction: either
        // the broadcast op that reached it, or (for the root) all the
        // reduce sends it absorbed.
        if (delivered_to[static_cast<std::size_t>(parent)] >= 0 && parent != 0) {
          op.deps = {delivered_to[static_cast<std::size_t>(parent)]};
        } else {
          op.deps = received[static_cast<std::size_t>(parent)];
        }
        const auto id = static_cast<std::int32_t>(spec.ops.size());
        delivered_to[static_cast<std::size_t>(i)] = id;
        spec.ops.push_back(std::move(op));
      }
    }
    // Ranks the broadcast never reaches (only the root) key the next
    // iteration off the reduce sends they received.
    if (!received[0].empty()) delivered_to[0] = received[0].back();
  }
  return spec;
}

WorkloadSpec build_all_to_all(const WorkloadParams& params) {
  IBSIM_ASSERT(params.ranks >= 2, "all-to-all needs at least 2 ranks");
  const std::int32_t R = params.ranks;
  WorkloadSpec spec;
  spec.name = "all_to_all";
  spec.ranks = R;
  // Op id layout: ((iter * (R-1)) + (shift-1)) * R + rank.
  const auto id_of = [R](std::int32_t iter, std::int32_t shift, std::int32_t rank) {
    return (iter * (R - 1) + (shift - 1)) * R + rank;
  };
  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    for (std::int32_t shift = 1; shift < R; ++shift) {
      for (std::int32_t r = 0; r < R; ++r) {
        WorkloadOp op;
        op.src_rank = r;
        op.dst_rank = (r + shift) % R;
        op.bytes = params.message_bytes;
        op.phase = iter * (R - 1) + (shift - 1);
        if (shift > 1) {
          op.deps = {id_of(iter, shift - 1, r)};
        } else if (iter > 0) {
          op.deps = {id_of(iter - 1, R - 1, r)};
          op.compute = params.compute;
        }
        spec.ops.push_back(std::move(op));
      }
    }
  }
  return spec;
}

WorkloadSpec build_stencil(const WorkloadParams& params) {
  IBSIM_ASSERT(params.ranks >= 2, "stencil needs at least 2 ranks");
  const std::int32_t R = params.ranks;
  WorkloadSpec spec;
  spec.name = "stencil";
  spec.ranks = R;
  // Two ops per rank per iteration (right then left neighbour); with
  // R == 2 both land on the same peer, which is fine.
  const auto id_of = [R](std::int32_t iter, std::int32_t rank, std::int32_t dir) {
    return (iter * R + rank) * 2 + dir;
  };
  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    for (std::int32_t r = 0; r < R; ++r) {
      for (std::int32_t dir = 0; dir < 2; ++dir) {
        WorkloadOp op;
        op.src_rank = r;
        op.dst_rank = dir == 0 ? (r + 1) % R : (r - 1 + R) % R;
        op.bytes = params.message_bytes;
        op.phase = iter;
        if (iter > 0) {
          // Rank r starts iteration k once it sent and received both
          // halos of iteration k-1.
          const std::int32_t right = (r + 1) % R;
          const std::int32_t left = (r - 1 + R) % R;
          op.deps = {id_of(iter - 1, r, 0), id_of(iter - 1, r, 1),
                     id_of(iter - 1, left, 0), id_of(iter - 1, right, 1)};
          std::sort(op.deps.begin(), op.deps.end());
          op.deps.erase(std::unique(op.deps.begin(), op.deps.end()), op.deps.end());
          op.compute = params.compute;
        }
        spec.ops.push_back(std::move(op));
      }
    }
  }
  return spec;
}

WorkloadSpec build_idle(const WorkloadParams& params) {
  WorkloadSpec spec;
  spec.name = "idle";
  spec.ranks = std::max<std::int32_t>(1, params.ranks);
  return spec;
}

namespace {

bool parse_int(const std::string& tok, std::int64_t* out) {
  if (tok.empty()) return false;
  std::size_t pos = 0;
  try {
    *out = std::stoll(tok, &pos);
  } catch (...) {
    return false;
  }
  return pos == tok.size();
}

std::string fail(int line_no, const std::string& what) {
  std::ostringstream out;
  out << "line " << line_no << ": " << what;
  return out.str();
}

}  // namespace

std::string parse_workload_text(const std::string& text, WorkloadSpec* out) {
  WorkloadSpec spec;
  spec.name = "custom";
  bool ranks_seen = false;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string word;
    std::vector<std::string> tokens;
    while (words >> word) tokens.push_back(word);
    if (tokens.empty()) continue;
    if (tokens[0] == "name") {
      if (tokens.size() != 2) return fail(line_no, "expected: name <identifier>");
      spec.name = tokens[1];
    } else if (tokens[0] == "ranks") {
      std::int64_t value = 0;
      if (tokens.size() != 2 || !parse_int(tokens[1], &value) || value < 1)
        return fail(line_no, "expected: ranks <positive integer>");
      spec.ranks = static_cast<std::int32_t>(value);
      ranks_seen = true;
    } else if (tokens[0] == "op") {
      if (!ranks_seen) return fail(line_no, "'ranks' must come before the first op");
      WorkloadOp op;
      bool src_seen = false;
      bool dst_seen = false;
      bool bytes_seen = false;
      for (std::size_t i = 1; i + 1 < tokens.size(); i += 2) {
        const std::string& key = tokens[i];
        const std::string& value = tokens[i + 1];
        std::int64_t num = 0;
        if (key == "after") {
          std::istringstream ids(value);
          std::string id_tok;
          while (std::getline(ids, id_tok, ',')) {
            if (!parse_int(id_tok, &num) || num < 0 ||
                num >= static_cast<std::int64_t>(spec.ops.size()))
              return fail(line_no, "'after' must list earlier op numbers");
            op.deps.push_back(static_cast<std::int32_t>(num));
          }
        } else if (!parse_int(value, &num)) {
          return fail(line_no, "'" + key + "' needs an integer value");
        } else if (key == "src") {
          op.src_rank = static_cast<std::int32_t>(num);
          src_seen = true;
        } else if (key == "dst") {
          op.dst_rank = static_cast<std::int32_t>(num);
          dst_seen = true;
        } else if (key == "bytes") {
          op.bytes = num;
          bytes_seen = true;
        } else if (key == "phase") {
          op.phase = static_cast<std::int32_t>(num);
        } else if (key == "compute_us") {
          op.compute = num * core::kMicrosecond;
        } else {
          return fail(line_no, "unknown op attribute '" + key + "'");
        }
      }
      if (tokens.size() % 2 == 0)
        return fail(line_no, "op attribute '" + tokens.back() + "' is missing a value");
      if (!src_seen || !dst_seen || !bytes_seen)
        return fail(line_no, "op needs at least src, dst and bytes");
      spec.ops.push_back(std::move(op));
    } else {
      return fail(line_no, "unknown directive '" + tokens[0] + "'");
    }
  }
  if (!ranks_seen) return "workload file never sets 'ranks'";
  const std::string invalid = spec.validate();
  if (!invalid.empty()) return invalid;
  *out = std::move(spec);
  return "";
}

std::string load_workload_file(const std::string& path, WorkloadSpec* out) {
  std::ifstream in(path);
  if (!in) return "cannot open workload file: " + path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_workload_text(buffer.str(), out);
}

}  // namespace ibsim::workload
