#include "workload/engine.hpp"

#include <algorithm>

#include "cc/ca_cc.hpp"
#include "core/assert.hpp"
#include "ib/packet.hpp"

namespace ibsim::workload {

WorkloadEngine::WorkloadEngine(WorkloadSpec spec, const Options& options, core::Rng rng)
    : spec_(std::move(spec)), options_(options), rng_(rng) {
  const std::string invalid = spec_.validate();
  IBSIM_ASSERT(invalid.empty(), "invalid workload spec");
  const auto n_ops = spec_.ops.size();
  run_.resize(n_ops);
  dependents_.resize(n_ops);
  ranks_.resize(static_cast<std::size_t>(spec_.ranks));
  rank_nodes_.reserve(static_cast<std::size_t>(spec_.ranks));
  for (std::int32_t r = 0; r < spec_.ranks; ++r)
    rank_nodes_.push_back(static_cast<ib::NodeId>(r));
  gate_.assign(static_cast<std::size_t>(spec_.ranks), nullptr);
  phase_remaining_.assign(static_cast<std::size_t>(spec_.phase_count()), 0);
  phase_last_.assign(phase_remaining_.size(), core::kTimeNever);
  rank_remaining_.assign(static_cast<std::size_t>(spec_.ranks), 0);
  rank_last_.assign(rank_remaining_.size(), core::kTimeNever);
  // Reserve every per-rank ready queue to the number of ops that rank
  // sends and the nudge scratch to the rank count: the injection path
  // then never reallocates, whatever order dependencies resolve in.
  wake_.reserve(static_cast<std::size_t>(spec_.ranks));
  {
    std::vector<std::int32_t> src_ops(static_cast<std::size_t>(spec_.ranks), 0);
    for (const WorkloadOp& op : spec_.ops) ++src_ops[static_cast<std::size_t>(op.src_rank)];
    for (std::int32_t r = 0; r < spec_.ranks; ++r)
      ranks_[static_cast<std::size_t>(r)].queue.reserve(
          static_cast<std::size_t>(src_ops[static_cast<std::size_t>(r)]));
  }
  for (std::size_t i = 0; i < n_ops; ++i) {
    const WorkloadOp& op = spec_.ops[i];
    run_[i].deps_left = static_cast<std::int32_t>(op.deps.size());
    for (const std::int32_t d : op.deps)
      dependents_[static_cast<std::size_t>(d)].push_back(static_cast<std::int32_t>(i));
    ++phase_remaining_[static_cast<std::size_t>(op.phase)];
    ++rank_remaining_[static_cast<std::size_t>(op.src_rank)];
    ++rank_remaining_[static_cast<std::size_t>(op.dst_rank)];
    if (run_[i].deps_left == 0) {
      run_[i].ready_at = op.compute;  // eligible from t = 0 plus its compute
      ranks_[static_cast<std::size_t>(op.src_rank)].queue.push_back(
          static_cast<std::int32_t>(i));
    }
  }
  // Ranks with no ops at all are finished before the run starts.
  for (std::size_t r = 0; r < rank_remaining_.size(); ++r)
    if (rank_remaining_[r] == 0) rank_last_[r] = 0;
}

WorkloadEngine::~WorkloadEngine() = default;

void WorkloadEngine::install(fabric::Fabric& fabric, fabric::SinkObserver* next) {
  IBSIM_ASSERT(spec_.ranks <= fabric.node_count(),
               "workload has more ranks than the fabric has end nodes");
  fabric_ = &fabric;
  next_ = next;
  arena_ = &fabric.arena();
  const bool cc_on = fabric.cc_manager().enabled();
  sources_.reserve(static_cast<std::size_t>(spec_.ranks));
  for (std::int32_t r = 0; r < spec_.ranks; ++r) {
    fabric::Hca& hca = fabric.hca(rank_nodes_[static_cast<std::size_t>(r)]);
    if (cc_on) gate_[static_cast<std::size_t>(r)] = &hca.cc_agent();
    sources_.push_back(std::make_unique<RankSource>(this, r));
    hca.attach_source(sources_.back().get());
  }
  if (options_.background_uniform && spec_.ranks < fabric.node_count()) {
    traffic::BNodeParams params;
    params.p = 0.0;  // pure uniform victims, no hotspot stream
    params.capacity_gbps = options_.background_gbps;
    for (ib::NodeId node = spec_.ranks; node < fabric.node_count(); ++node) {
      fabric::Hca& hca = fabric.hca(node);
      background_.push_back(std::make_unique<traffic::BNodeGenerator>(
          node, fabric.node_count(), params, nullptr,
          cc_on ? &hca.cc_agent() : nullptr, arena_, rng_.fork("workload_bg", node)));
      hca.attach_source(background_.back().get());
    }
  }
  // Observe every sink (application completions resolve here; everything
  // is forwarded to the metrics collector).
  for (ib::NodeId node = 0; node < fabric.node_count(); ++node)
    fabric.hca(node).attach_observer(this);
}

fabric::TrafficSource::Poll WorkloadEngine::poll_rank(std::int32_t rank, core::Time now) {
  RankState& state = ranks_[static_cast<std::size_t>(rank)];
  fabric::TrafficSource::Poll result;
  core::Time earliest = core::kTimeNever;
  for (std::size_t qi = 0; qi < state.queue.size(); ++qi) {
    const std::int32_t op_id = state.queue[qi];
    OpRun& run = run_[static_cast<std::size_t>(op_id)];
    const WorkloadOp& op = spec_.ops[static_cast<std::size_t>(op_id)];
    core::Time at = run.ready_at;
    const cc::FlowGate* gate = gate_[static_cast<std::size_t>(rank)];
    if (at <= now && gate != nullptr) {
      // A CC-throttled op must not head-of-line block the rank's other
      // ready ops (per-QP queueing) — skip it and try the next one.
      const core::Time gated = gate->flow_ready_at(rank_nodes_[static_cast<std::size_t>(op.dst_rank)]);
      if (gated > at) at = gated;
    }
    if (at > now) {
      earliest = std::min(earliest, at);
      continue;
    }
    const ib::PacketHandle h = arena_->allocate();
    ib::Packet& pkt = arena_->get(h);
    const std::int64_t remaining = op.bytes - run.injected;
    pkt.src = rank_nodes_[static_cast<std::size_t>(rank)];
    pkt.dst = rank_nodes_[static_cast<std::size_t>(op.dst_rank)];
    pkt.bytes = static_cast<std::int32_t>(std::min<std::int64_t>(remaining, ib::kMtuBytes));
    pkt.vl = ib::kDataVl;
    pkt.app = true;
    pkt.msg_seq = static_cast<std::uint32_t>(op_id);
    pkt.injected_at = now;
    run.injected += pkt.bytes;
    if (run.injected == op.bytes)
      state.queue.erase(state.queue.begin() + static_cast<std::ptrdiff_t>(qi));
    result.pkt = h;
    return result;
  }
  result.retry_at = earliest;
  return result;
}

void WorkloadEngine::on_delivered(ib::NodeId node, const ib::Packet& pkt, core::Time now) {
  if (pkt.app) {
    const auto op_id = static_cast<std::size_t>(pkt.msg_seq);
    IBSIM_ASSERT(op_id < spec_.ops.size(), "app packet with unknown op id");
    IBSIM_ASSERT(node == rank_nodes_[static_cast<std::size_t>(spec_.ops[op_id].dst_rank)],
                 "app packet drained at the wrong node");
    OpRun& run = run_[op_id];
    run.delivered += pkt.bytes;
    if (run.delivered == spec_.ops[op_id].bytes)
      complete_op(static_cast<std::int32_t>(op_id), now);
  }
  if (next_ != nullptr) next_->on_delivered(node, pkt, now);
}

void WorkloadEngine::complete_op(std::int32_t op_id, core::Time now) {
  OpRun& run = run_[static_cast<std::size_t>(op_id)];
  const WorkloadOp& op = spec_.ops[static_cast<std::size_t>(op_id)];
  run.completed_at = now;
  ++messages_completed_;
  bytes_completed_ += op.bytes;
  last_completion_ = now;  // deliveries arrive in time order
  if (--phase_remaining_[static_cast<std::size_t>(op.phase)] == 0)
    phase_last_[static_cast<std::size_t>(op.phase)] = now;
  for (const std::int32_t r : {op.src_rank, op.dst_rank})
    if (--rank_remaining_[static_cast<std::size_t>(r)] == 0)
      rank_last_[static_cast<std::size_t>(r)] = now;
  // Resolve dependents in op-id order; collect the ranks that gained
  // work and nudge each exactly once, in rank order — keeps the event
  // sequence a pure function of the spec.
  wake_.clear();
  for (const std::int32_t d : dependents_[static_cast<std::size_t>(op_id)]) {
    OpRun& dep_run = run_[static_cast<std::size_t>(d)];
    if (--dep_run.deps_left > 0) continue;
    const WorkloadOp& dep = spec_.ops[static_cast<std::size_t>(d)];
    dep_run.ready_at = now + dep.compute;
    ranks_[static_cast<std::size_t>(dep.src_rank)].queue.push_back(d);
    wake_.push_back(dep.src_rank);
  }
  std::sort(wake_.begin(), wake_.end());
  wake_.erase(std::unique(wake_.begin(), wake_.end()), wake_.end());
  for (const std::int32_t r : wake_)
    fabric_->hca(rank_nodes_[static_cast<std::size_t>(r)]).nudge(fabric_->sched());
}

WorkloadProgress WorkloadEngine::progress() const {
  WorkloadProgress out;
  out.messages_total = spec_.ops.size();
  out.messages_completed = messages_completed_;
  out.bytes_completed = bytes_completed_;
  out.complete = messages_completed_ == spec_.ops.size();
  if (out.complete) out.makespan = spec_.ops.empty() ? 0 : last_completion_;
  out.rank_finish = rank_last_;
  out.phase_finish = phase_last_;
  return out;
}

}  // namespace ibsim::workload
