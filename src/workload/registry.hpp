#pragma once

#include <string>
#include <vector>

#include "workload/spec.hpp"

namespace ibsim::workload {

/// String-keyed factory for the canned workload patterns. The built-in
/// patterns (`all_to_all`, `idle`, `incast`, `ring_allreduce`,
/// `stencil`, `tree_allreduce`) are registered on first use; tests may
/// register additional ones. Like `ccalg::CcAlgorithmRegistry`, the
/// backing map keeps names sorted so enumeration order is deterministic.
class WorkloadRegistry {
 public:
  using Builder = WorkloadSpec (*)(const WorkloadParams&);

  [[nodiscard]] static WorkloadRegistry& instance();

  /// Register `builder` under `name`; re-registering replaces. Names
  /// must be non-empty and must not be "file" (reserved for DSL files).
  void add(const std::string& name, Builder builder);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Build an instance of `name`; aborts if unknown — callers that take
  /// user input must check contains() first and report `names()` in
  /// their error message.
  [[nodiscard]] WorkloadSpec build(const std::string& name,
                                   const WorkloadParams& params) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// "all_to_all, idle, incast, ..." — for error messages and --help.
  [[nodiscard]] std::string names_joined() const;
};

}  // namespace ibsim::workload
