#include "workload/registry.hpp"

#include <map>
#include <sstream>

#include "core/assert.hpp"

namespace ibsim::workload {
namespace {

std::map<std::string, WorkloadRegistry::Builder>& builders() {
  static std::map<std::string, WorkloadRegistry::Builder> map = {
      {"all_to_all", &build_all_to_all}, {"idle", &build_idle},
      {"incast", &build_incast},         {"ring_allreduce", &build_ring_allreduce},
      {"stencil", &build_stencil},       {"tree_allreduce", &build_tree_allreduce},
  };
  return map;
}

}  // namespace

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(const std::string& name, Builder builder) {
  IBSIM_ASSERT(!name.empty(), "workload name must be non-empty");
  IBSIM_ASSERT(name != "file", "'file' is reserved for DSL workload files");
  IBSIM_ASSERT(builder != nullptr, "workload builder must be non-null");
  builders()[name] = builder;
}

bool WorkloadRegistry::contains(const std::string& name) const {
  return builders().count(name) != 0;
}

WorkloadSpec WorkloadRegistry::build(const std::string& name,
                                     const WorkloadParams& params) const {
  const auto it = builders().find(name);
  IBSIM_ASSERT(it != builders().end(), "unknown workload");
  WorkloadSpec spec = it->second(params);
  return spec;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(builders().size());
  for (const auto& [name, builder] : builders()) out.push_back(name);
  return out;
}

std::string WorkloadRegistry::names_joined() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, builder] : builders()) {
    if (!first) out << ", ";
    out << name;
    first = false;
  }
  return out.str();
}

}  // namespace ibsim::workload
