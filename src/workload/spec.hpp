#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace ibsim::workload {

/// One point-to-point message of an application workload: `src_rank`
/// sends `bytes` to `dst_rank` once every dependency has completed and
/// the sender's `compute` delay has elapsed. Completion means the last
/// byte drained at the destination's sink — so fabric congestion
/// directly stretches the dependency chain, which is the feedback loop
/// the synthetic generators cannot express.
struct WorkloadOp {
  std::int32_t src_rank = 0;
  std::int32_t dst_rank = 0;
  std::int64_t bytes = 0;
  /// Logical phase (collective step) the op belongs to; phases only
  /// group ops for reporting — ordering comes from `deps`.
  std::int32_t phase = 0;
  /// Local computation inserted between the last dependency completing
  /// and this op becoming eligible to inject.
  core::Time compute = 0;
  /// Indices of ops that must complete before this one may start. Every
  /// dep must be a *smaller* index, so a spec is a DAG by construction.
  std::vector<std::int32_t> deps;
};

/// A complete application workload: `ranks` logical processes and the
/// dependency-ordered message set they exchange. Ranks map onto end
/// nodes 0..ranks-1 of the fabric they run on.
struct WorkloadSpec {
  std::string name;
  std::int32_t ranks = 0;
  std::vector<WorkloadOp> ops;

  /// Number of phases (max phase index + 1; 0 when there are no ops).
  [[nodiscard]] std::int32_t phase_count() const;
  /// Total payload bytes across all ops.
  [[nodiscard]] std::int64_t total_bytes() const;
  /// Structural check: ranks >= 1, src/dst in range and distinct,
  /// bytes > 0, deps strictly earlier. Returns "" or a description.
  [[nodiscard]] std::string validate() const;
};

/// Knobs of the canned pattern builders.
struct WorkloadParams {
  std::int32_t ranks = 8;
  /// Payload per logical message (collectives divide it into chunks
  /// where the algorithm does, e.g. ring allreduce).
  std::int64_t message_bytes = 64 * 1024;
  /// Times the pattern repeats; iteration k+1 depends on iteration k.
  std::int32_t iterations = 1;
  /// Compute delay between dependency resolution and injection for ops
  /// that start a new iteration (models the application's compute step).
  core::Time compute = 0;
};

// Canned MPI-style patterns. All return specs satisfying validate().
/// Ranks 1..R-1 each send message_bytes to rank 0; iterations are
/// barrier-separated (every send of round k+1 waits for all of round k).
[[nodiscard]] WorkloadSpec build_incast(const WorkloadParams& params);
/// Classic ring allreduce: 2(R-1) steps of message_bytes/R chunks, each
/// step gated on the sender's previous send and its left neighbour's.
[[nodiscard]] WorkloadSpec build_ring_allreduce(const WorkloadParams& params);
/// Binomial-tree reduce to rank 0 followed by the mirrored broadcast.
[[nodiscard]] WorkloadSpec build_tree_allreduce(const WorkloadParams& params);
/// Pairwise-exchange personalized all-to-all: R-1 shifted steps, each
/// rank's step s send gated on its step s-1 send.
[[nodiscard]] WorkloadSpec build_all_to_all(const WorkloadParams& params);
/// 1-D ring halo exchange: every iteration each rank sends to both
/// neighbours, gated on its previous iteration's sends and receives.
[[nodiscard]] WorkloadSpec build_stencil(const WorkloadParams& params);
/// No application traffic at all — the victim-flow baseline: background
/// senders run alone, completion is immediate.
[[nodiscard]] WorkloadSpec build_idle(const WorkloadParams& params);

/// Parse the compact workload DSL:
///
///   # comment
///   name  <identifier>                  (optional)
///   ranks <R>                           (required, before the first op)
///   op src <i> dst <j> bytes <n> [phase <p>] [compute_us <t>]
///      [after <id>[,<id>...]]
///
/// Ops are numbered 0,1,2,... in file order; `after` references those
/// numbers and must point backwards. Returns "" on success or a
/// "line N: ..." diagnostic; `*out` is only valid on success.
[[nodiscard]] std::string parse_workload_text(const std::string& text, WorkloadSpec* out);

/// Load and parse a DSL file; same diagnostics plus I/O errors.
[[nodiscard]] std::string load_workload_file(const std::string& path, WorkloadSpec* out);

}  // namespace ibsim::workload
