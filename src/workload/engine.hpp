#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "fabric/fabric.hpp"
#include "fabric/interfaces.hpp"
#include "ib/types.hpp"
#include "traffic/generator.hpp"
#include "workload/spec.hpp"

namespace ibsim::workload {

/// Completion-time view of a running (or finished) workload. Times are
/// scheduler timestamps so comparisons across runs are bit-exact;
/// unfinished entries hold core::kTimeNever.
struct WorkloadProgress {
  bool complete = false;
  /// Completion time of the last op (kTimeNever until complete; 0 for
  /// the empty workload, which completes before anything runs).
  core::Time makespan = core::kTimeNever;
  /// Per rank: time its last op (sent or received) completed.
  std::vector<core::Time> rank_finish;
  /// Per phase: time the phase's last op completed.
  std::vector<core::Time> phase_finish;
  std::uint64_t messages_completed = 0;
  std::uint64_t messages_total = 0;
  std::int64_t bytes_completed = 0;
};

/// Drives a WorkloadSpec through the fabric: one TrafficSource per rank
/// injects MTU-sized packets of ops whose dependencies have completed,
/// and the engine observes sink deliveries to resolve dependencies —
/// so congestion on any op's path delays every op downstream of it.
/// Optionally fills the remaining (non-rank) end nodes with uniform
/// background senders, the victim flows of the CC experiments.
///
/// Determinism: per-rank ready queues are scanned in insertion order,
/// dependents resolve in op-id order, and the only randomness (the
/// background senders) uses named Rng forks — so a workload run is a
/// pure function of (spec, config, seed), independent of wall clock,
/// thread placement and snapshot-cache hits.
class WorkloadEngine final : public fabric::SinkObserver {
 public:
  struct Options {
    /// Attach saturating uniform B-node senders (p = 0) to every end
    /// node not running a rank.
    bool background_uniform = false;
    /// Injection capacity of those background senders.
    double background_gbps = 13.5;
  };

  /// `spec` must satisfy WorkloadSpec::validate().
  WorkloadEngine(WorkloadSpec spec, const Options& options, core::Rng rng);
  ~WorkloadEngine() override;

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Attach rank sources and background generators, and install this
  /// engine as every HCA's sink observer, forwarding each delivery to
  /// `next` (the metrics collector). Rank r runs on end node r; the
  /// fabric must have at least spec.ranks end nodes.
  void install(fabric::Fabric& fabric, fabric::SinkObserver* next);

  void on_delivered(ib::NodeId node, const ib::Packet& pkt, core::Time now) override;

  [[nodiscard]] WorkloadProgress progress() const;
  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
  /// End nodes running ranks (node i == rank i).
  [[nodiscard]] const std::vector<ib::NodeId>& rank_nodes() const { return rank_nodes_; }

 private:
  /// TrafficSource adapter: the HCA of rank r polls the engine.
  class RankSource final : public fabric::TrafficSource {
   public:
    RankSource(WorkloadEngine* engine, std::int32_t rank) : engine_(engine), rank_(rank) {}
    [[nodiscard]] Poll poll(core::Time now) override {
      return engine_->poll_rank(rank_, now);
    }

   private:
    WorkloadEngine* engine_;
    std::int32_t rank_;
  };

  /// Runtime state of one op.
  struct OpRun {
    std::int32_t deps_left = 0;
    /// When the op may start injecting; kTimeNever while deps pend.
    core::Time ready_at = core::kTimeNever;
    std::int64_t injected = 0;
    std::int64_t delivered = 0;
    core::Time completed_at = core::kTimeNever;
  };

  struct RankState {
    /// Ready (deps resolved) but not fully injected ops, FIFO order.
    std::vector<std::int32_t> queue;
  };

  [[nodiscard]] fabric::TrafficSource::Poll poll_rank(std::int32_t rank, core::Time now);
  void complete_op(std::int32_t op_id, core::Time now);

  WorkloadSpec spec_;
  Options options_;
  core::Rng rng_;

  std::vector<OpRun> run_;
  std::vector<std::vector<std::int32_t>> dependents_;  ///< op -> ops waiting on it
  std::vector<RankState> ranks_;
  std::vector<ib::NodeId> rank_nodes_;

  fabric::Fabric* fabric_ = nullptr;
  fabric::SinkObserver* next_ = nullptr;
  ib::PacketArena* arena_ = nullptr;
  std::vector<const cc::FlowGate*> gate_;  ///< per rank; null when CC is off
  std::vector<std::unique_ptr<RankSource>> sources_;
  std::vector<std::unique_ptr<traffic::BNodeGenerator>> background_;

  // Progress accounting.
  std::uint64_t messages_completed_ = 0;
  std::int64_t bytes_completed_ = 0;
  core::Time last_completion_ = core::kTimeNever;
  std::vector<std::int32_t> phase_remaining_;
  std::vector<core::Time> phase_last_;
  std::vector<std::int32_t> rank_remaining_;
  std::vector<core::Time> rank_last_;
  std::vector<std::int32_t> wake_;  ///< scratch: ranks to nudge after resolution
};

}  // namespace ibsim::workload
