#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace ibsim::topo {

/// Spatial decomposition of a topology for the sharded engine: every
/// device belongs to exactly one shard, and every HCA shares a shard
/// with the switch it is cabled to (so the HCA<->leaf grant/credit loop
/// never crosses a shard boundary — see DESIGN.md §15).
struct ShardPlan {
  std::vector<std::int32_t> shard_of_device;  // indexed by DeviceId
  std::int32_t n_shards = 1;
  /// Number of links whose endpoints landed in different shards (both
  /// directions counted once). Diagnostic: smaller cut = less mailbox
  /// traffic per window.
  std::int32_t cut_links = 0;
};

/// Partition `topo` into at most `want_shards` shards. Switches are
/// ordered by (partition_group hint, creation order) and split into
/// contiguous runs balanced by attached-HCA weight; HCAs follow their
/// switch. The result is deterministic — it depends only on the
/// topology and `want_shards`. Degenerate inputs (want_shards <= 1,
/// fewer than two switches) yield a single-shard plan.
[[nodiscard]] ShardPlan make_shard_plan(const Topology& topo, std::int32_t want_shards);

}  // namespace ibsim::topo
