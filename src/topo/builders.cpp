#include "topo/builders.hpp"

#include "core/assert.hpp"

namespace ibsim::topo {

Topology single_switch(std::int32_t nodes) {
  IBSIM_ASSERT(nodes >= 2, "single switch needs at least two nodes");
  Topology topo;
  const DeviceId sw = topo.add_switch(nodes, "xbar");
  for (std::int32_t i = 0; i < nodes; ++i) {
    const DeviceId hca = topo.add_hca();
    topo.connect(PortRef{hca, 0}, PortRef{sw, i});
  }
  return topo;
}

Topology folded_clos(const FoldedClosParams& params) {
  IBSIM_ASSERT(params.leaves > 0 && params.spines > 0 && params.nodes_per_leaf > 0,
               "folded clos dimensions must be positive");
  Topology topo;
  std::vector<DeviceId> leaves;
  leaves.reserve(static_cast<std::size_t>(params.leaves));
  for (std::int32_t l = 0; l < params.leaves; ++l) {
    leaves.push_back(topo.add_switch(params.leaf_ports(), "leaf" + std::to_string(l)));
    // Each leaf anchors a partition group; spines are spread over the
    // groups round-robin since every spine touches every leaf anyway.
    topo.set_partition_group(leaves.back(), l);
  }
  std::vector<DeviceId> spines;
  spines.reserve(static_cast<std::size_t>(params.spines));
  for (std::int32_t s = 0; s < params.spines; ++s) {
    spines.push_back(topo.add_switch(params.leaves, "spine" + std::to_string(s)));
    topo.set_partition_group(spines.back(), s % params.leaves);
  }
  // HCAs in leaf-major order so NodeId / nodes_per_leaf identifies the leaf.
  for (std::int32_t l = 0; l < params.leaves; ++l) {
    for (std::int32_t n = 0; n < params.nodes_per_leaf; ++n) {
      const DeviceId hca = topo.add_hca();
      topo.connect(PortRef{hca, 0}, PortRef{leaves[static_cast<std::size_t>(l)], n});
    }
  }
  for (std::int32_t l = 0; l < params.leaves; ++l) {
    for (std::int32_t s = 0; s < params.spines; ++s) {
      topo.connect(PortRef{leaves[static_cast<std::size_t>(l)], params.nodes_per_leaf + s},
                   PortRef{spines[static_cast<std::size_t>(s)], l});
    }
  }
  return topo;
}

Topology linear_chain(std::int32_t switches, std::int32_t nodes_per_switch) {
  IBSIM_ASSERT(switches >= 2, "chain needs at least two switches");
  IBSIM_ASSERT(nodes_per_switch >= 1, "chain needs nodes on each switch");
  Topology topo;
  // Ports: [0, nodes_per_switch) to HCAs, then port n = link to previous
  // switch, port n+1 = link to next switch.
  std::vector<DeviceId> sws;
  for (std::int32_t i = 0; i < switches; ++i) {
    sws.push_back(topo.add_switch(nodes_per_switch + 2, "chain" + std::to_string(i)));
  }
  for (std::int32_t i = 0; i < switches; ++i) {
    for (std::int32_t n = 0; n < nodes_per_switch; ++n) {
      const DeviceId hca = topo.add_hca();
      topo.connect(PortRef{hca, 0}, PortRef{sws[static_cast<std::size_t>(i)], n});
    }
  }
  for (std::int32_t i = 0; i + 1 < switches; ++i) {
    topo.connect(PortRef{sws[static_cast<std::size_t>(i)], nodes_per_switch + 1},
                 PortRef{sws[static_cast<std::size_t>(i + 1)], nodes_per_switch});
  }
  return topo;
}

Topology dumbbell(std::int32_t nodes_per_side) {
  IBSIM_ASSERT(nodes_per_side >= 1, "dumbbell needs nodes on each side");
  Topology topo;
  const DeviceId left = topo.add_switch(nodes_per_side + 1, "left");
  const DeviceId right = topo.add_switch(nodes_per_side + 1, "right");
  for (std::int32_t side = 0; side < 2; ++side) {
    const DeviceId sw = side == 0 ? left : right;
    for (std::int32_t n = 0; n < nodes_per_side; ++n) {
      const DeviceId hca = topo.add_hca();
      topo.connect(PortRef{hca, 0}, PortRef{sw, n});
    }
  }
  topo.connect(PortRef{left, nodes_per_side}, PortRef{right, nodes_per_side});
  return topo;
}

Topology fat_tree3(const FatTree3Params& params) {
  IBSIM_ASSERT(params.pods > 0 && params.leaves_per_pod > 0 && params.aggs_per_pod > 0 &&
                   params.cores > 0 && params.nodes_per_leaf > 0,
               "fat-tree dimensions must be positive");
  Topology topo;
  std::vector<DeviceId> leaves;
  std::vector<DeviceId> aggs;
  std::vector<DeviceId> cores;
  for (std::int32_t p = 0; p < params.pods; ++p) {
    for (std::int32_t l = 0; l < params.leaves_per_pod; ++l) {
      leaves.push_back(topo.add_switch(params.nodes_per_leaf + params.aggs_per_pod,
                                       "p" + std::to_string(p) + "leaf" + std::to_string(l)));
      // Pods are the natural shard unit: all intra-pod links stay inside
      // one partition group, only agg<->core links cross groups.
      topo.set_partition_group(leaves.back(), p);
    }
  }
  for (std::int32_t p = 0; p < params.pods; ++p) {
    for (std::int32_t a = 0; a < params.aggs_per_pod; ++a) {
      aggs.push_back(topo.add_switch(params.leaves_per_pod + params.cores,
                                     "p" + std::to_string(p) + "agg" + std::to_string(a)));
      topo.set_partition_group(aggs.back(), p);
    }
  }
  for (std::int32_t c = 0; c < params.cores; ++c) {
    cores.push_back(topo.add_switch(params.pods * params.aggs_per_pod,
                                    "core" + std::to_string(c)));
    topo.set_partition_group(cores.back(), c % params.pods);
  }
  // HCAs in leaf-major order.
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    for (std::int32_t i = 0; i < params.nodes_per_leaf; ++i) {
      const DeviceId hca = topo.add_hca();
      topo.connect(PortRef{hca, 0}, PortRef{leaves[l], i});
    }
  }
  // Leaf <-> agg, within each pod (full bipartite).
  for (std::int32_t p = 0; p < params.pods; ++p) {
    for (std::int32_t l = 0; l < params.leaves_per_pod; ++l) {
      const DeviceId leaf = leaves[static_cast<std::size_t>(p * params.leaves_per_pod + l)];
      for (std::int32_t a = 0; a < params.aggs_per_pod; ++a) {
        const DeviceId agg = aggs[static_cast<std::size_t>(p * params.aggs_per_pod + a)];
        topo.connect(PortRef{leaf, params.nodes_per_leaf + a}, PortRef{agg, l});
      }
    }
  }
  // Agg <-> core (full bipartite across pods).
  for (std::int32_t p = 0; p < params.pods; ++p) {
    for (std::int32_t a = 0; a < params.aggs_per_pod; ++a) {
      const DeviceId agg = aggs[static_cast<std::size_t>(p * params.aggs_per_pod + a)];
      for (std::int32_t c = 0; c < params.cores; ++c) {
        topo.connect(PortRef{agg, params.leaves_per_pod + c},
                     PortRef{cores[static_cast<std::size_t>(c)], p * params.aggs_per_pod + a});
      }
    }
  }
  return topo;
}

Topology mesh2d(std::int32_t rows, std::int32_t cols, std::int32_t nodes_per_switch) {
  IBSIM_ASSERT(rows >= 1 && cols >= 1 && rows * cols >= 2, "mesh needs at least two switches");
  IBSIM_ASSERT(nodes_per_switch >= 1, "mesh needs nodes on each switch");
  Topology topo;
  const std::int32_t n = nodes_per_switch;
  std::vector<DeviceId> sws;
  sws.reserve(static_cast<std::size_t>(rows * cols));
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      sws.push_back(topo.add_switch(n + 4, "mesh" + std::to_string(r) + "_" +
                                               std::to_string(c)));
      // Row-major groups: a contiguous split over rows cuts only the
      // Y-direction links between adjacent rows.
      topo.set_partition_group(sws.back(), r);
    }
  }
  auto at = [&](std::int32_t r, std::int32_t c) {
    return sws[static_cast<std::size_t>(r * cols + c)];
  };
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      for (std::int32_t i = 0; i < n; ++i) {
        const DeviceId hca = topo.add_hca();
        topo.connect(PortRef{hca, 0}, PortRef{at(r, c), i});
      }
    }
  }
  // Port layout after the HCAs: n = X-, n+1 = X+, n+2 = Y-, n+3 = Y+.
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c + 1 < cols; ++c) {
      topo.connect(PortRef{at(r, c), n + 1}, PortRef{at(r, c + 1), n});
    }
  }
  for (std::int32_t r = 0; r + 1 < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      topo.connect(PortRef{at(r, c), n + 3}, PortRef{at(r + 1, c), n + 2});
    }
  }
  return topo;
}

}  // namespace ibsim::topo
