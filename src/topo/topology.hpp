#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ib/types.hpp"

namespace ibsim::topo {

/// Device index within a Topology (HCAs and switches share the space).
using DeviceId = std::int32_t;
inline constexpr DeviceId kInvalidDevice = -1;

enum class DeviceKind : std::uint8_t { Hca, Switch };

/// (device, port) address of one end of a link.
struct PortRef {
  DeviceId device = kInvalidDevice;
  std::int32_t port = -1;

  [[nodiscard]] bool valid() const { return device != kInvalidDevice && port >= 0; }
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// A physical cabling description: devices, their port counts, and the
/// point-to-point links between ports. This is pure structure — rates,
/// buffers and behaviour belong to the fabric layer.
class Topology {
 public:
  /// Add a switch with `ports` ports. Returns its device id.
  DeviceId add_switch(std::int32_t ports, std::string name = {});

  /// Add a single-port HCA (an end node). Returns its device id. HCAs are
  /// assigned consecutive NodeIds in creation order.
  DeviceId add_hca(std::string name = {});

  /// Cable two free ports together (bidirectional full-duplex link).
  void connect(PortRef a, PortRef b);

  [[nodiscard]] std::int32_t device_count() const { return static_cast<std::int32_t>(devices_.size()); }
  [[nodiscard]] DeviceKind kind(DeviceId dev) const { return devices_[static_cast<std::size_t>(dev)].kind; }
  [[nodiscard]] std::int32_t port_count(DeviceId dev) const { return devices_[static_cast<std::size_t>(dev)].ports; }
  [[nodiscard]] const std::string& name(DeviceId dev) const { return devices_[static_cast<std::size_t>(dev)].name; }

  /// The port on the other end of the cable, or an invalid ref if the
  /// port is not cabled.
  [[nodiscard]] PortRef peer(PortRef p) const;
  [[nodiscard]] bool connected(PortRef p) const { return peer(p).valid(); }

  /// Number of end nodes (HCAs).
  [[nodiscard]] std::int32_t node_count() const { return static_cast<std::int32_t>(hcas_.size()); }

  /// Device id of end node `node`.
  [[nodiscard]] DeviceId hca_device(ib::NodeId node) const { return hcas_[static_cast<std::size_t>(node)]; }

  /// NodeId of an HCA device (asserts on switches).
  [[nodiscard]] ib::NodeId node_of(DeviceId dev) const;

  /// All switch device ids, in creation order.
  [[nodiscard]] const std::vector<DeviceId>& switches() const { return switches_; }

  /// Cut-minimizing partition hint for the shard planner: switches that
  /// share a group (a leaf pod, a mesh row, ...) are kept adjacent in
  /// the planner's ordering so shard boundaries fall on the sparse
  /// inter-group links. -1 (the default) means "no preference"; the
  /// planner then falls back to creation order.
  void set_partition_group(DeviceId dev, std::int32_t group) {
    devices_[static_cast<std::size_t>(dev)].partition_group = group;
  }
  [[nodiscard]] std::int32_t partition_group(DeviceId dev) const {
    return devices_[static_cast<std::size_t>(dev)].partition_group;
  }

  /// Check structural sanity: every HCA cabled, no self-links, port
  /// references in range. Returns an error description or empty string.
  [[nodiscard]] std::string validate() const;

 private:
  struct Device {
    DeviceKind kind;
    std::int32_t ports;
    std::string name;
    std::int32_t first_port;  // index into port_peers_
    ib::NodeId node = ib::kInvalidNode;
    std::int32_t partition_group = -1;
  };

  [[nodiscard]] std::size_t port_slot(PortRef p) const;

  std::vector<Device> devices_;
  std::vector<PortRef> port_peers_;
  std::vector<DeviceId> hcas_;
  std::vector<DeviceId> switches_;
};

}  // namespace ibsim::topo
