#include "topo/partition.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::topo {

namespace {

/// Attached HCAs dominate a shard's event load (injection, sink drain,
/// CC agents), so balance on them; the +1 keeps transit-only switches
/// (aggs, cores) from being weightless.
std::int64_t switch_weight(const Topology& topo, DeviceId sw) {
  std::int64_t hcas = 0;
  for (std::int32_t p = 0; p < topo.port_count(sw); ++p) {
    const PortRef peer = topo.peer(PortRef{sw, p});
    if (peer.valid() && topo.kind(peer.device) == DeviceKind::Hca) ++hcas;
  }
  return hcas + 1;
}

}  // namespace

ShardPlan make_shard_plan(const Topology& topo, std::int32_t want_shards) {
  ShardPlan plan;
  plan.shard_of_device.assign(static_cast<std::size_t>(topo.device_count()), 0);

  const std::vector<DeviceId>& sws = topo.switches();
  const std::int32_t n = static_cast<std::int32_t>(sws.size());
  const std::int32_t k = std::min(want_shards, n);
  if (k <= 1) return plan;
  plan.n_shards = k;

  // Hint-major ordering: switches of one partition group (one pod, one
  // mesh row) sit adjacent, so the contiguous split below cuts between
  // groups where links are sparse. std::stable_sort keeps creation
  // order inside a group and for unhinted topologies.
  std::vector<DeviceId> ordered(sws.begin(), sws.end());
  std::stable_sort(ordered.begin(), ordered.end(), [&](DeviceId a, DeviceId b) {
    return topo.partition_group(a) < topo.partition_group(b);
  });

  std::int64_t total = 0;
  std::vector<std::int64_t> weight(static_cast<std::size_t>(n), 0);
  for (std::int32_t i = 0; i < n; ++i) {
    weight[static_cast<std::size_t>(i)] = switch_weight(topo, ordered[static_cast<std::size_t>(i)]);
    total += weight[static_cast<std::size_t>(i)];
  }

  // Contiguous balanced split: a switch lands in the shard its weight
  // midpoint falls into, clamped so shards are non-decreasing, never
  // skipped, and the tail always has one switch per remaining shard.
  std::int64_t cum2 = 0;  // 2 * (weight of switches before i)
  std::int32_t prev = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    const std::int64_t w = weight[static_cast<std::size_t>(i)];
    std::int32_t s = static_cast<std::int32_t>(((cum2 + w) * k) / (2 * total));
    s = std::min(s, k - 1);
    s = std::min(s, prev + 1);
    s = std::max(s, prev);
    s = std::max(s, k - (n - i));
    plan.shard_of_device[static_cast<std::size_t>(ordered[static_cast<std::size_t>(i)])] = s;
    prev = s;
    cum2 += 2 * w;
  }
  IBSIM_ASSERT(prev == k - 1, "partition must populate every shard");

  // HCAs follow the switch they are cabled to.
  for (ib::NodeId node = 0; node < topo.node_count(); ++node) {
    const DeviceId hca = topo.hca_device(node);
    const PortRef up = topo.peer(PortRef{hca, 0});
    IBSIM_ASSERT(up.valid() && topo.kind(up.device) == DeviceKind::Switch,
                 "HCA must be cabled to a switch");
    plan.shard_of_device[static_cast<std::size_t>(hca)] =
        plan.shard_of_device[static_cast<std::size_t>(up.device)];
  }

  for (const DeviceId sw : sws) {
    for (std::int32_t p = 0; p < topo.port_count(sw); ++p) {
      const PortRef peer = topo.peer(PortRef{sw, p});
      if (!peer.valid() || peer.device <= sw) continue;  // count each link once
      if (plan.shard_of_device[static_cast<std::size_t>(sw)] !=
          plan.shard_of_device[static_cast<std::size_t>(peer.device)]) {
        ++plan.cut_links;
      }
    }
  }
  return plan;
}

}  // namespace ibsim::topo
