#pragma once

#include <cstdint>
#include <vector>

#include "ib/types.hpp"
#include "topo/topology.hpp"

namespace ibsim::topo {

/// Deterministic destination-based routing: one linear forwarding table
/// (LFT) per switch, mapping destination NodeId to output port — exactly
/// the "routing using linear forwarding tables" of the paper's model.
///
/// Tables are computed with per-destination BFS; among equal-length
/// next hops a switch picks candidate[dst % candidates], the d-mod-k rule
/// that yields the standard non-blocking spreading on fat-trees.
class RoutingTables {
 public:
  /// How a switch chooses among equal-length next hops.
  enum class TieBreak : std::uint8_t {
    /// candidate[dst %% candidates]: the classic d-mod-k spreading that
    /// balances fat-tree up-paths (the default).
    DModK,
    /// Always the lowest candidate port. With the mesh2d port layout
    /// (X ports before Y ports) this yields dimension-order (XY)
    /// routing, which is deadlock-free on meshes.
    FirstPort,
  };

  /// Compute LFTs for every switch in `topo`.
  [[nodiscard]] static RoutingTables compute(const Topology& topo,
                                             TieBreak tie_break = TieBreak::DModK);

  /// Output port switch `dev` uses towards end node `dst`.
  [[nodiscard]] std::int32_t out_port(DeviceId dev, ib::NodeId dst) const {
    return lfts_[static_cast<std::size_t>(switch_slot_[static_cast<std::size_t>(dev)])]
                [static_cast<std::size_t>(dst)];
  }

  /// Follow the tables from `src` to `dst`; returns the sequence of
  /// devices visited (starting with src's device, ending with dst's).
  /// Used by tests and topology debugging.
  [[nodiscard]] std::vector<DeviceId> trace(const Topology& topo, ib::NodeId src,
                                            ib::NodeId dst) const;

  /// Hop count (number of links traversed) from `src` to `dst`.
  [[nodiscard]] std::int32_t hops(const Topology& topo, ib::NodeId src, ib::NodeId dst) const {
    return static_cast<std::int32_t>(trace(topo, src, dst).size()) - 1;
  }

 private:
  std::vector<std::int32_t> switch_slot_;          // DeviceId -> dense switch index
  std::vector<std::vector<std::int32_t>> lfts_;    // [switch slot][dst] -> port
};

}  // namespace ibsim::topo
