#pragma once

#include <cstdint>
#include <vector>

#include "ib/types.hpp"
#include "topo/topology.hpp"

namespace ibsim::topo {

/// Deterministic destination-based routing: one linear forwarding table
/// (LFT) per switch, mapping destination NodeId to output port — exactly
/// the "routing using linear forwarding tables" of the paper's model.
///
/// Tables are computed with per-destination BFS; among equal-length
/// next hops a switch picks candidate[dst % candidates], the d-mod-k rule
/// that yields the standard non-blocking spreading on fat-trees.
///
/// Storage is one contiguous array, stride-indexed by dense switch slot:
/// entry (slot, dst) lives at slot * stride + dst. Sweeps share one
/// RoutingTables across many concurrent runs (see sim::RoutingSnapshot),
/// so lookups walking a destination range stay within one cache-friendly
/// row instead of chasing a per-switch heap allocation.
class RoutingTables {
 public:
  /// How a switch chooses among equal-length next hops.
  enum class TieBreak : std::uint8_t {
    /// candidate[dst %% candidates]: the classic d-mod-k spreading that
    /// balances fat-tree up-paths (the default).
    DModK,
    /// Always the lowest candidate port. With the mesh2d port layout
    /// (X ports before Y ports) this yields dimension-order (XY)
    /// routing, which is deadlock-free on meshes.
    FirstPort,
  };

  /// Compute LFTs for every switch in `topo`.
  [[nodiscard]] static RoutingTables compute(const Topology& topo,
                                             TieBreak tie_break = TieBreak::DModK);

  /// Output port switch `dev` uses towards end node `dst`.
  [[nodiscard]] std::int32_t out_port(DeviceId dev, ib::NodeId dst) const {
    return lft_[static_cast<std::size_t>(switch_slot_[static_cast<std::size_t>(dev)]) *
                    stride_ +
                static_cast<std::size_t>(dst)];
  }

  /// Pointer to switch `dev`'s row of the flat LFT, indexed by NodeId.
  /// Valid while this RoutingTables is alive; devices on the packet hot
  /// path cache it once instead of re-deriving slot * stride per lookup.
  [[nodiscard]] const std::int32_t* lft_row(DeviceId dev) const {
    return lft_.data() +
           static_cast<std::size_t>(switch_slot_[static_cast<std::size_t>(dev)]) * stride_;
  }

  /// The flattened LFT storage: switch_count() rows of stride() entries,
  /// row order matching Topology::switches(). Exposed for the golden
  /// determinism tests that pin table contents across storage rewrites.
  [[nodiscard]] const std::vector<std::int32_t>& flat() const { return lft_; }

  /// Entries per switch row in flat() (the topology's node count).
  [[nodiscard]] std::size_t stride() const { return stride_; }

  /// Number of switch rows in flat().
  [[nodiscard]] std::size_t switch_count() const {
    return stride_ == 0 ? 0 : lft_.size() / stride_;
  }

  /// Follow the tables from `src` to `dst`; returns the sequence of
  /// devices visited (starting with src's device, ending with dst's).
  /// Used by tests and topology debugging.
  [[nodiscard]] std::vector<DeviceId> trace(const Topology& topo, ib::NodeId src,
                                            ib::NodeId dst) const;

  /// Hop count (number of links traversed) from `src` to `dst`.
  [[nodiscard]] std::int32_t hops(const Topology& topo, ib::NodeId src, ib::NodeId dst) const {
    return static_cast<std::int32_t>(trace(topo, src, dst).size()) - 1;
  }

 private:
  std::vector<std::int32_t> switch_slot_;  // DeviceId -> dense switch index
  std::size_t stride_ = 0;                 // entries per switch row (node count)
  std::vector<std::int32_t> lft_;          // [slot * stride_ + dst] -> port
};

}  // namespace ibsim::topo
