#include "topo/topology.hpp"

#include "core/assert.hpp"

namespace ibsim::topo {

DeviceId Topology::add_switch(std::int32_t ports, std::string name) {
  IBSIM_ASSERT(ports > 0, "switch needs at least one port");
  const auto id = static_cast<DeviceId>(devices_.size());
  if (name.empty()) name = "sw" + std::to_string(switches_.size());
  devices_.push_back(Device{DeviceKind::Switch, ports, std::move(name),
                            static_cast<std::int32_t>(port_peers_.size()), ib::kInvalidNode});
  port_peers_.resize(port_peers_.size() + static_cast<std::size_t>(ports));
  switches_.push_back(id);
  return id;
}

DeviceId Topology::add_hca(std::string name) {
  const auto id = static_cast<DeviceId>(devices_.size());
  const auto node = static_cast<ib::NodeId>(hcas_.size());
  if (name.empty()) name = "hca" + std::to_string(node);
  devices_.push_back(Device{DeviceKind::Hca, 1, std::move(name),
                            static_cast<std::int32_t>(port_peers_.size()), node});
  port_peers_.resize(port_peers_.size() + 1);
  hcas_.push_back(id);
  return id;
}

std::size_t Topology::port_slot(PortRef p) const {
  IBSIM_ASSERT(p.device >= 0 && p.device < device_count(), "device out of range");
  const Device& dev = devices_[static_cast<std::size_t>(p.device)];
  IBSIM_ASSERT(p.port >= 0 && p.port < dev.ports, "port out of range");
  return static_cast<std::size_t>(dev.first_port + p.port);
}

void Topology::connect(PortRef a, PortRef b) {
  IBSIM_ASSERT(a.device != b.device, "self-links are not allowed");
  const std::size_t sa = port_slot(a);
  const std::size_t sb = port_slot(b);
  IBSIM_ASSERT(!port_peers_[sa].valid(), "port already cabled");
  IBSIM_ASSERT(!port_peers_[sb].valid(), "port already cabled");
  port_peers_[sa] = b;
  port_peers_[sb] = a;
}

PortRef Topology::peer(PortRef p) const { return port_peers_[port_slot(p)]; }

ib::NodeId Topology::node_of(DeviceId dev) const {
  const Device& d = devices_[static_cast<std::size_t>(dev)];
  IBSIM_ASSERT(d.kind == DeviceKind::Hca, "node_of called on a switch");
  return d.node;
}

std::string Topology::validate() const {
  for (DeviceId dev = 0; dev < device_count(); ++dev) {
    const Device& d = devices_[static_cast<std::size_t>(dev)];
    if (d.kind == DeviceKind::Hca && !peer(PortRef{dev, 0}).valid()) {
      return "HCA '" + d.name + "' is not cabled";
    }
  }
  if (hcas_.empty()) return "topology has no end nodes";
  return {};
}

}  // namespace ibsim::topo
