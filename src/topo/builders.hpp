#pragma once

#include <cstdint>

#include "topo/topology.hpp"

namespace ibsim::topo {

/// A single crossbar switch with `nodes` HCAs attached — the smallest
/// fabric that exhibits endpoint congestion (used by unit tests and the
/// parking-lot example).
[[nodiscard]] Topology single_switch(std::int32_t nodes);

/// Parameters of a two-tier folded-Clos ("three-stage fat-tree" when the
/// Clos is unfolded, the paper's terminology).
struct FoldedClosParams {
  std::int32_t leaves = 36;          ///< leaf (edge) switches
  std::int32_t spines = 18;          ///< spine (core) switches
  std::int32_t nodes_per_leaf = 18;  ///< HCAs below each leaf

  /// The Sun Datacenter InfiniBand Switch 648 fabric used throughout the
  /// paper: 54 x 36-port crossbars, 648 nodes, non-blocking.
  [[nodiscard]] static FoldedClosParams sun_dcs_648() { return {36, 18, 18}; }

  /// A proportionally shrunk instance (same 2:1 leaf:spine shape, still
  /// non-blocking) for fast tests: `scale`=3 gives 6 leaves x 3 spines x
  /// 3 nodes = 18 nodes.
  [[nodiscard]] static FoldedClosParams scaled(std::int32_t leaves, std::int32_t spines,
                                               std::int32_t nodes_per_leaf) {
    return {leaves, spines, nodes_per_leaf};
  }

  [[nodiscard]] std::int32_t node_count() const { return leaves * nodes_per_leaf; }
  [[nodiscard]] std::int32_t switch_count() const { return leaves + spines; }
  /// Leaf port count: down-links plus one up-link per spine.
  [[nodiscard]] std::int32_t leaf_ports() const { return nodes_per_leaf + spines; }
};

/// Build a folded Clos: every leaf connects to every spine with one link.
/// Leaf ports [0, nodes_per_leaf) go down to HCAs, ports
/// [nodes_per_leaf, nodes_per_leaf+spines) go up to spines; spine port i
/// connects to leaf i.
[[nodiscard]] Topology folded_clos(const FoldedClosParams& params);

/// A chain of `switches` crossbars with `nodes_per_switch` HCAs on each —
/// the classic "parking lot" scenario from the authors' hardware study
/// [Gran et al., IPDPS 2010] where flows joining closer to the hotspot
/// crowd out distant ones without CC.
[[nodiscard]] Topology linear_chain(std::int32_t switches, std::int32_t nodes_per_switch);

/// Two switches joined by a single bottleneck link with `nodes_per_side`
/// HCAs on each side; the minimal congestion-spreading fabric.
[[nodiscard]] Topology dumbbell(std::int32_t nodes_per_side);

/// Parameters of a three-tier (leaf / aggregation / core) fat-tree —
/// the "three-stage" structure of large InfiniBand installations when
/// one chassis is not enough. Every leaf connects to every aggregation
/// switch of its pod; every aggregation switch connects to every core.
struct FatTree3Params {
  std::int32_t pods = 4;
  std::int32_t leaves_per_pod = 2;
  std::int32_t aggs_per_pod = 2;
  std::int32_t cores = 4;
  std::int32_t nodes_per_leaf = 4;

  /// The 10k-endpoint scale target: 16 pods x 32 leaves x 20 nodes =
  /// 10240 HCAs over 608 switches. Largest radixes are the aggregation
  /// (32 + 32) and core (16 x 4) switches at 64 ports — right at the
  /// arbitration bitmask limit, matching the biggest single-chip
  /// crossbars.
  [[nodiscard]] static FatTree3Params scale_10k() { return {16, 32, 4, 32, 20}; }

  /// A ~2k-endpoint instance of the same shape (8 pods x 16 leaves x
  /// 16 nodes = 2048 HCAs, 160 switches) — big enough to exercise the
  /// scale path, small enough for CI smoke runs.
  [[nodiscard]] static FatTree3Params scale_2k() { return {8, 16, 4, 16, 16}; }

  [[nodiscard]] std::int32_t node_count() const {
    return pods * leaves_per_pod * nodes_per_leaf;
  }
  [[nodiscard]] std::int32_t switch_count() const {
    return pods * (leaves_per_pod + aggs_per_pod) + cores;
  }
};

/// Build the three-tier fat-tree. Switch order: all leaves (pod-major),
/// then all aggregation switches (pod-major), then the cores. Leaf ports
/// [0, n) go to HCAs, then one up-port per pod aggregation switch;
/// aggregation ports [0, leaves_per_pod) go down, then one up-port per
/// core; core port (pod * aggs_per_pod + a) connects to agg a of pod.
[[nodiscard]] Topology fat_tree3(const FatTree3Params& params);

/// A rows x cols 2D mesh with `nodes_per_switch` HCAs on every switch —
/// the topology family the paper's conclusion leaves as an open question
/// for IB CC. Switch (r, c) is switches()[r * cols + c]; its ports are
/// [0, n) down to HCAs, then X- , X+ , Y- , Y+ in that order, so
/// first-port tie-breaking in the routing yields dimension-order (XY)
/// routing, which is deadlock-free on a mesh.
[[nodiscard]] Topology mesh2d(std::int32_t rows, std::int32_t cols,
                              std::int32_t nodes_per_switch);

}  // namespace ibsim::topo
