#include "topo/routing.hpp"

#include <deque>
#include <limits>

#include "core/assert.hpp"

namespace ibsim::topo {

RoutingTables RoutingTables::compute(const Topology& topo, TieBreak tie_break) {
  RoutingTables rt;
  const std::int32_t n_dev = topo.device_count();
  const std::int32_t n_nodes = topo.node_count();

  rt.switch_slot_.assign(static_cast<std::size_t>(n_dev), -1);
  for (std::size_t i = 0; i < topo.switches().size(); ++i) {
    rt.switch_slot_[static_cast<std::size_t>(topo.switches()[i])] = static_cast<std::int32_t>(i);
  }
  rt.lfts_.assign(topo.switches().size(),
                  std::vector<std::int32_t>(static_cast<std::size_t>(n_nodes), -1));

  constexpr std::int32_t kUnreached = std::numeric_limits<std::int32_t>::max();
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n_dev));

  for (ib::NodeId dst = 0; dst < n_nodes; ++dst) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    std::deque<DeviceId> queue;
    const DeviceId dst_dev = topo.hca_device(dst);
    dist[static_cast<std::size_t>(dst_dev)] = 0;
    queue.push_back(dst_dev);
    while (!queue.empty()) {
      const DeviceId dev = queue.front();
      queue.pop_front();
      const std::int32_t d = dist[static_cast<std::size_t>(dev)];
      for (std::int32_t p = 0; p < topo.port_count(dev); ++p) {
        const PortRef peer = topo.peer(PortRef{dev, p});
        if (!peer.valid()) continue;
        auto& pd = dist[static_cast<std::size_t>(peer.device)];
        if (pd == kUnreached) {
          pd = d + 1;
          queue.push_back(peer.device);
        }
      }
    }

    for (std::size_t slot = 0; slot < topo.switches().size(); ++slot) {
      const DeviceId sw = topo.switches()[slot];
      const std::int32_t d = dist[static_cast<std::size_t>(sw)];
      if (d == kUnreached) continue;  // disconnected: leave -1
      // Candidate ports, in port order, whose peer is one hop closer.
      std::vector<std::int32_t> candidates;
      for (std::int32_t p = 0; p < topo.port_count(sw); ++p) {
        const PortRef peer = topo.peer(PortRef{sw, p});
        if (!peer.valid()) continue;
        if (dist[static_cast<std::size_t>(peer.device)] == d - 1) candidates.push_back(p);
      }
      IBSIM_ASSERT(!candidates.empty(), "BFS-reachable switch must have a next hop");
      const std::size_t pick =
          tie_break == TieBreak::DModK
              ? static_cast<std::size_t>(dst) % candidates.size()  // d-mod-k spreading
              : 0;                                                 // lowest port (DOR)
      rt.lfts_[slot][static_cast<std::size_t>(dst)] = candidates[pick];
    }
  }
  return rt;
}

std::vector<DeviceId> RoutingTables::trace(const Topology& topo, ib::NodeId src,
                                           ib::NodeId dst) const {
  std::vector<DeviceId> path;
  DeviceId dev = topo.hca_device(src);
  path.push_back(dev);
  if (src == dst) return path;
  // Leave the source HCA through its only port.
  PortRef hop = topo.peer(PortRef{dev, 0});
  IBSIM_ASSERT(hop.valid(), "source HCA is not cabled");
  dev = hop.device;
  path.push_back(dev);
  const DeviceId dst_dev = topo.hca_device(dst);
  std::int32_t guard = topo.device_count() + 2;
  while (dev != dst_dev) {
    IBSIM_ASSERT(topo.kind(dev) == DeviceKind::Switch, "route wandered into an HCA");
    const std::int32_t port = out_port(dev, dst);
    IBSIM_ASSERT(port >= 0, "destination unreachable from switch");
    hop = topo.peer(PortRef{dev, port});
    IBSIM_ASSERT(hop.valid(), "LFT points at an uncabled port");
    dev = hop.device;
    path.push_back(dev);
    IBSIM_ASSERT(--guard > 0, "routing loop detected");
  }
  return path;
}

}  // namespace ibsim::topo
