#include "topo/routing.hpp"

#include <deque>
#include <limits>

#include "core/assert.hpp"

namespace ibsim::topo {

namespace {

/// Flat adjacency of the cabled ports: for device `dev`, the entries
/// [first[dev], first[dev+1]) list its connected ports in port order.
/// Built once per compute() so neither the per-destination BFS nor the
/// candidate scan re-walks the port space through Topology::peer — the
/// duplicate work that used to dominate the all-pairs computation.
struct Adjacency {
  struct Edge {
    std::int32_t port;
    DeviceId peer;
  };
  std::vector<std::int32_t> first;  // device -> index into edges (n_dev + 1 entries)
  std::vector<Edge> edges;

  explicit Adjacency(const Topology& topo) {
    const std::int32_t n_dev = topo.device_count();
    first.reserve(static_cast<std::size_t>(n_dev) + 1);
    for (DeviceId dev = 0; dev < n_dev; ++dev) {
      first.push_back(static_cast<std::int32_t>(edges.size()));
      for (std::int32_t p = 0; p < topo.port_count(dev); ++p) {
        const PortRef peer = topo.peer(PortRef{dev, p});
        if (peer.valid()) edges.push_back({p, peer.device});
      }
    }
    first.push_back(static_cast<std::int32_t>(edges.size()));
  }
};

}  // namespace

RoutingTables RoutingTables::compute(const Topology& topo, TieBreak tie_break) {
  RoutingTables rt;
  const std::int32_t n_dev = topo.device_count();
  const std::int32_t n_nodes = topo.node_count();
  const std::size_t n_switches = topo.switches().size();

  rt.switch_slot_.assign(static_cast<std::size_t>(n_dev), -1);
  for (std::size_t i = 0; i < n_switches; ++i) {
    rt.switch_slot_[static_cast<std::size_t>(topo.switches()[i])] = static_cast<std::int32_t>(i);
  }
  rt.stride_ = static_cast<std::size_t>(n_nodes);
  rt.lft_.assign(n_switches * rt.stride_, -1);

  const Adjacency adj(topo);
  constexpr std::int32_t kUnreached = std::numeric_limits<std::int32_t>::max();
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n_dev));
  std::deque<DeviceId> queue;
  std::vector<std::int32_t> candidates;  // reused across (dst, switch) pairs

  for (ib::NodeId dst = 0; dst < n_nodes; ++dst) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    const DeviceId dst_dev = topo.hca_device(dst);
    dist[static_cast<std::size_t>(dst_dev)] = 0;
    queue.push_back(dst_dev);
    while (!queue.empty()) {
      const DeviceId dev = queue.front();
      queue.pop_front();
      const std::int32_t d = dist[static_cast<std::size_t>(dev)];
      for (std::int32_t e = adj.first[static_cast<std::size_t>(dev)];
           e < adj.first[static_cast<std::size_t>(dev) + 1]; ++e) {
        auto& pd = dist[static_cast<std::size_t>(adj.edges[static_cast<std::size_t>(e)].peer)];
        if (pd == kUnreached) {
          pd = d + 1;
          queue.push_back(adj.edges[static_cast<std::size_t>(e)].peer);
        }
      }
    }

    for (std::size_t slot = 0; slot < n_switches; ++slot) {
      const DeviceId sw = topo.switches()[slot];
      const std::int32_t d = dist[static_cast<std::size_t>(sw)];
      if (d == kUnreached) continue;  // disconnected: leave -1
      // Candidate ports, in port order, whose peer is one hop closer.
      candidates.clear();
      for (std::int32_t e = adj.first[static_cast<std::size_t>(sw)];
           e < adj.first[static_cast<std::size_t>(sw) + 1]; ++e) {
        const Adjacency::Edge& edge = adj.edges[static_cast<std::size_t>(e)];
        if (dist[static_cast<std::size_t>(edge.peer)] == d - 1) candidates.push_back(edge.port);
      }
      IBSIM_ASSERT(!candidates.empty(), "BFS-reachable switch must have a next hop");
      const std::size_t pick =
          tie_break == TieBreak::DModK
              ? static_cast<std::size_t>(dst) % candidates.size()  // d-mod-k spreading
              : 0;                                                 // lowest port (DOR)
      rt.lft_[slot * rt.stride_ + static_cast<std::size_t>(dst)] = candidates[pick];
    }
  }
  return rt;
}

std::vector<DeviceId> RoutingTables::trace(const Topology& topo, ib::NodeId src,
                                           ib::NodeId dst) const {
  std::vector<DeviceId> path;
  DeviceId dev = topo.hca_device(src);
  path.push_back(dev);
  if (src == dst) return path;
  // Leave the source HCA through its only port.
  PortRef hop = topo.peer(PortRef{dev, 0});
  IBSIM_ASSERT(hop.valid(), "source HCA is not cabled");
  dev = hop.device;
  path.push_back(dev);
  const DeviceId dst_dev = topo.hca_device(dst);
  std::int32_t guard = topo.device_count() + 2;
  while (dev != dst_dev) {
    IBSIM_ASSERT(topo.kind(dev) == DeviceKind::Switch, "route wandered into an HCA");
    const std::int32_t port = out_port(dev, dst);
    IBSIM_ASSERT(port >= 0, "destination unreachable from switch");
    hop = topo.peer(PortRef{dev, port});
    IBSIM_ASSERT(hop.valid(), "LFT points at an uncabled port");
    dev = hop.device;
    path.push_back(dev);
    IBSIM_ASSERT(--guard > 0, "routing loop detected");
  }
  return path;
}

}  // namespace ibsim::topo
