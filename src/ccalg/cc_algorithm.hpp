#pragma once

#include <cstdint>
#include <vector>

#include "core/time.hpp"
#include "ib/cc_params.hpp"
#include "ib/cct.hpp"

namespace ibsim::ccalg {

/// Construction-time context for a reaction-point algorithm instance.
/// One instance serves one channel-adapter port; `n_flows` sizes its
/// per-destination state (1 in SL-level mode, where the whole port
/// shares one flow slot — the agent maps destinations to slot indices).
struct CcAlgoContext {
  std::int32_t n_flows = 1;
  ib::CcParams params;
  /// The port's Congestion Control Table. Required by `iba_a10`; the
  /// rate-based algorithms only borrow its reference rate.
  const ib::CongestionControlTable* cct = nullptr;
  /// Injection rate (Gb/s) that rate fractions and inter-packet delays
  /// are computed against when no CCT is attached.
  double ref_gbps = 13.5;

  [[nodiscard]] double reference_gbps() const {
    return cct != nullptr ? cct->ref_gbps() : ref_gbps;
  }
};

/// What a BECN did to the flow it hit — the agent turns this into
/// telemetry (throttle-start events, severity gauges) without knowing
/// the algorithm's internals.
struct BecnOutcome {
  /// The flow entered the throttled set with this BECN.
  bool newly_throttled = false;
  /// Aggregate severity after the reaction (see severity_sum()).
  std::int64_t severity = 0;
};

/// A congestion-control reaction-point policy: everything the channel
/// adapter does between "a BECN arrived" and "the next packet of this
/// flow may inject at time T". One instance per CA port, owning its own
/// per-flow state; all calls arrive from the single simulation thread in
/// event order, and implementations must be deterministic functions of
/// that call sequence (no wall clock, no unseeded randomness).
///
/// The surrounding CaCcAgent keeps the FECN turnaround, the recovery
/// timer event, counters and telemetry — an algorithm only decides how
/// flows are throttled and how they recover:
///
///  * on_send      — a data packet of `flow` finished injection at `end`;
///                   record and return the flow's next-ready time.
///  * on_becn      — a BECN for `flow` arrived; tighten the throttle.
///  * on_timer     — one recovery-timer expiry; relax throttles, report
///                   flows that fully recovered.
///  * injection_delay — the gap the current throttle state would insert
///                   after a packet of `bytes` (introspection; on_send is
///                   the mutating path).
class CcAlgorithm {
 public:
  virtual ~CcAlgorithm() = default;

  /// Registry key this instance was created under ("iba_a10", ...).
  [[nodiscard]] virtual const char* name() const = 0;

  // --- source side ---------------------------------------------------------
  /// A packet of `bytes` of `flow` finishes injection at `end`: apply the
  /// flow's current injection-rate delay and return its next-ready time.
  virtual core::Time on_send(std::int32_t flow, std::int32_t bytes, core::Time end) = 0;

  /// Earliest time `flow` may inject its next packet (0 = immediately).
  [[nodiscard]] virtual core::Time ready_at(std::int32_t flow) const = 0;

  /// The inter-packet gap the current throttle state inserts after a
  /// packet of `bytes` of `flow` (0 when unthrottled).
  [[nodiscard]] virtual core::Time injection_delay(std::int32_t flow,
                                                   std::int32_t bytes) const = 0;

  // --- BECN reaction -------------------------------------------------------
  virtual BecnOutcome on_becn(std::int32_t flow, core::Time now) = 0;

  // --- recovery timer ------------------------------------------------------
  /// Delay until the next recovery-timer expiry, or 0 when no timer is
  /// needed (no flow is throttled). Consulted by the agent every time it
  /// considers arming the timer.
  [[nodiscard]] virtual core::Time timer_delay() const = 0;

  /// One timer expiry: advance every throttled flow's recovery. Flows
  /// that left the throttled set are appended to `ended` when it is
  /// non-null (trace support; passing null must not change behaviour).
  /// Returns the aggregate severity after the sweep.
  virtual std::int64_t on_timer(core::Time now, std::vector<std::int32_t>* ended) = 0;

  // --- destination side ----------------------------------------------------
  /// Whether a FECN-marked delivery should be answered with a CNP. The
  /// `none` passthrough returns false — the reaction point is dark.
  [[nodiscard]] virtual bool cnp_on_fecn() const { return true; }

  // --- introspection -------------------------------------------------------
  /// Flows currently throttled (the set the recovery timer visits).
  [[nodiscard]] virtual std::int32_t active_flow_count() const = 0;

  /// Aggregate throttle severity, maintained incrementally so sampling is
  /// O(1). For `iba_a10` this is the CCTI mass (sum of CCTIs over
  /// throttled flows); rate-based algorithms report the rate deficit
  /// sum(round(1024 * (1 - rate))) so the same gauge stays meaningful.
  [[nodiscard]] virtual std::int64_t severity_sum() const = 0;

  /// The flow's CCT index, for algorithms that have one (0 otherwise).
  [[nodiscard]] virtual std::uint16_t ccti(std::int32_t flow) const {
    (void)flow;
    return 0;
  }

  /// The relative injection rate (0..1] the flow is currently granted.
  [[nodiscard]] virtual double rate_fraction(std::int32_t flow) const = 0;
};

}  // namespace ibsim::ccalg
