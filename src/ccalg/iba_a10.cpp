#include "ccalg/iba_a10.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::ccalg {

IbaA10::IbaA10(const CcAlgoContext& ctx) : params_(ctx.params), cct_(ctx.cct) {
  IBSIM_ASSERT(cct_ != nullptr, "iba_a10 needs a congestion control table");
  IBSIM_ASSERT(ctx.n_flows > 0, "iba_a10 needs at least one flow slot");
  flows_.resize(static_cast<std::size_t>(ctx.n_flows));
  // Every flow can be active at once; reserving here keeps the BECN/timer
  // hot path free of reallocation for the whole run.
  active_flows_.reserve(static_cast<std::size_t>(ctx.n_flows));
}

std::unique_ptr<CcAlgorithm> IbaA10::make(const CcAlgoContext& ctx) {
  return std::make_unique<IbaA10>(ctx);
}

core::Time IbaA10::on_send(std::int32_t flow, std::int32_t bytes, core::Time end) {
  FlowCc& f = flows_[static_cast<std::size_t>(flow)];
  if (f.ccti == 0) {
    f.ready_at = end;
    return f.ready_at;
  }
  f.ready_at = end + cct_->ird_delay(f.ccti, bytes);
  return f.ready_at;
}

core::Time IbaA10::ready_at(std::int32_t flow) const {
  return flows_[static_cast<std::size_t>(flow)].ready_at;
}

core::Time IbaA10::injection_delay(std::int32_t flow, std::int32_t bytes) const {
  const FlowCc& f = flows_[static_cast<std::size_t>(flow)];
  return f.ccti == 0 ? 0 : cct_->ird_delay(f.ccti, bytes);
}

BecnOutcome IbaA10::on_becn(std::int32_t flow, core::Time now) {
  (void)now;
  FlowCc& f = flows_[static_cast<std::size_t>(flow)];
  BecnOutcome out;
  out.newly_throttled = f.ccti == 0 && f.active_idx < 0;
  if (out.newly_throttled) {
    f.active_idx = static_cast<std::int32_t>(active_flows_.size());
    active_flows_.push_back(flow);
  }
  const std::uint16_t before = f.ccti;
  f.ccti = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(f.ccti + params_.ccti_increase, params_.ccti_limit));
  ccti_total_ += f.ccti - before;
  out.severity = ccti_total_;
  return out;
}

core::Time IbaA10::timer_delay() const {
  return active_flows_.empty() ? 0 : params_.timer_interval();
}

std::int64_t IbaA10::on_timer(core::Time now, std::vector<std::int32_t>* ended) {
  (void)now;
  // Every expiry of the CCTI_Timer decrements the CCTI of all flows of
  // the port by one, down to CCTI_Min. Only throttled flows are visited;
  // flows reaching zero leave the active list (swap-remove).
  for (std::size_t i = 0; i < active_flows_.size();) {
    const std::int32_t flow = active_flows_[i];
    FlowCc& f = flows_[static_cast<std::size_t>(flow)];
    if (f.ccti > params_.ccti_min) {
      --f.ccti;
      --ccti_total_;
    }
    if (f.ccti == 0) {
      f.active_idx = -1;
      active_flows_[i] = active_flows_.back();
      active_flows_.pop_back();
      if (i < active_flows_.size()) {
        flows_[static_cast<std::size_t>(active_flows_[i])].active_idx =
            static_cast<std::int32_t>(i);
      }
      if (ended != nullptr) ended->push_back(flow);
    } else {
      ++i;
    }
  }
  return ccti_total_;
}

std::uint16_t IbaA10::ccti(std::int32_t flow) const {
  return flows_[static_cast<std::size_t>(flow)].ccti;
}

double IbaA10::rate_fraction(std::int32_t flow) const {
  return cct_->rate_fraction(flows_[static_cast<std::size_t>(flow)].ccti);
}

}  // namespace ibsim::ccalg
