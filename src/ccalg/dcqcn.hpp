#pragma once

#include <memory>

#include "ccalg/rate_based.hpp"

namespace ibsim::ccalg {

/// DCQCN-style reaction point (Zhu et al., SIGCOMM 2015), adapted to the
/// simulator's BECN/timer cadence: each CNP-equivalent BECN updates the
/// congestion estimate alpha and cuts the rate multiplicatively
/// (rate *= 1 - alpha/2); every recovery-timer expiry first runs fast
/// recovery (rate moves halfway to the pre-cut target) and, once the
/// fast-recovery stages are spent, raises the target additively — then
/// hyper-additively — before averaging again. Alpha decays every timer
/// tick, so a quiet flow both forgets congestion and regains rate.
class Dcqcn final : public RateBasedAlgorithm {
 public:
  explicit Dcqcn(const CcAlgoContext& ctx);

  [[nodiscard]] static std::unique_ptr<CcAlgorithm> make(const CcAlgoContext& ctx);

  [[nodiscard]] const char* name() const override { return "dcqcn"; }

 protected:
  void react(RateFlow& f) override;
  bool recover(RateFlow& f) override;

 private:
  // DCQCN constants, expressed as rate fractions per timer tick. The
  // canonical parameters (g = 1/256, 55 us alpha timer, 40 Mb/s AI on a
  // 40 Gb/s line) assume a much faster feedback loop than the CCTI_Timer
  // cadence the simulator runs recovery at, so g and the increase steps
  // are scaled up to converge in a comparable number of ticks.
  static constexpr double kG = 1.0 / 16.0;         ///< alpha EWMA gain per BECN
  static constexpr double kAlphaDecay = 1.0 / 8.0; ///< alpha *= 1-this per tick
  static constexpr std::uint32_t kFastStages = 5;  ///< averaging-only stages
  static constexpr double kAi = 1.0 / 64.0;        ///< additive target step
  static constexpr double kHai = 1.0 / 16.0;       ///< hyper step after kHyperAfter
  static constexpr std::uint32_t kHyperAfter = 5;  ///< additive stages before hyper
  static constexpr double kMinRate = 1.0 / 1024.0;
  static constexpr double kDoneThreshold = 1.0 - 1.0 / 1024.0;
};

}  // namespace ibsim::ccalg
