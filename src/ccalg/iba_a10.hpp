#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccalg/cc_algorithm.hpp"

namespace ibsim::ccalg {

/// The IBA 1.2.1 annex-A10 reference reaction point (paper section
/// II.2), extracted verbatim from the original CaCcAgent: a per-flow
/// CCT index (CCTI) bumped by `CCTI_Increase` per BECN and clamped to
/// `CCTI_Limit`, an injection-rate delay looked up in the Congestion
/// Control Table, and a `CCTI_Timer` chain that decrements every
/// throttled flow's CCTI by one per expiry down to `CCTI_Min`.
///
/// This is the default algorithm and the behaviour baseline: with
/// `cc_algo = iba_a10` a simulation must be bit-identical to the
/// pre-extraction tree (guarded by the ccalg equivalence tests).
class IbaA10 final : public CcAlgorithm {
 public:
  explicit IbaA10(const CcAlgoContext& ctx);

  [[nodiscard]] static std::unique_ptr<CcAlgorithm> make(const CcAlgoContext& ctx);

  [[nodiscard]] const char* name() const override { return "iba_a10"; }

  core::Time on_send(std::int32_t flow, std::int32_t bytes, core::Time end) override;
  [[nodiscard]] core::Time ready_at(std::int32_t flow) const override;
  [[nodiscard]] core::Time injection_delay(std::int32_t flow,
                                           std::int32_t bytes) const override;

  BecnOutcome on_becn(std::int32_t flow, core::Time now) override;

  [[nodiscard]] core::Time timer_delay() const override;
  std::int64_t on_timer(core::Time now, std::vector<std::int32_t>* ended) override;

  [[nodiscard]] std::int32_t active_flow_count() const override {
    return static_cast<std::int32_t>(active_flows_.size());
  }
  [[nodiscard]] std::int64_t severity_sum() const override { return ccti_total_; }
  [[nodiscard]] std::uint16_t ccti(std::int32_t flow) const override;
  [[nodiscard]] double rate_fraction(std::int32_t flow) const override;

 private:
  struct FlowCc {
    std::uint16_t ccti = 0;
    std::int32_t active_idx = -1;  ///< position in active_flows_, -1 if idle
    core::Time ready_at = 0;
  };

  ib::CcParams params_;
  const ib::CongestionControlTable* cct_;

  /// Per-destination state (QP level); in SL-level mode the agent maps
  /// every destination to slot 0.
  std::vector<FlowCc> flows_;
  /// Flows with CCTI > 0 — the only ones the timer must visit.
  std::vector<std::int32_t> active_flows_;
  std::int64_t ccti_total_ = 0;  ///< sum of CCTIs over active_flows_
};

}  // namespace ibsim::ccalg
