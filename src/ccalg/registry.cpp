#include "ccalg/registry.hpp"

#include "ccalg/aimd.hpp"
#include "ccalg/dcqcn.hpp"
#include "ccalg/iba_a10.hpp"
#include "ccalg/none.hpp"
#include "core/assert.hpp"

namespace ibsim::ccalg {

CcAlgorithmRegistry::CcAlgorithmRegistry() {
  add("iba_a10", &IbaA10::make);
  add("dcqcn", &Dcqcn::make);
  add("aimd", &Aimd::make);
  add("none", &NoneAlgorithm::make);
}

CcAlgorithmRegistry& CcAlgorithmRegistry::instance() {
  static CcAlgorithmRegistry registry;
  return registry;
}

void CcAlgorithmRegistry::add(const std::string& name, Factory factory) {
  IBSIM_ASSERT(!name.empty(), "algorithm name must be non-empty");
  IBSIM_ASSERT(factory != nullptr, "algorithm factory must be non-null");
  factories_[name] = factory;
}

bool CcAlgorithmRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::unique_ptr<CcAlgorithm> CcAlgorithmRegistry::create(
    const std::string& name, const CcAlgoContext& ctx) const {
  auto it = factories_.find(name);
  IBSIM_ASSERT(it != factories_.end(), "unknown congestion-control algorithm");
  return it->second(ctx);
}

std::vector<std::string> CcAlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::int64_t CcAlgorithmRegistry::id_of(const std::string& name) const {
  std::int64_t id = 0;
  for (const auto& [key, factory] : factories_) {
    if (key == name) return id;
    ++id;
  }
  return -1;
}

std::string CcAlgorithmRegistry::names_joined() const {
  std::string out;
  for (const auto& [name, factory] : factories_) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace ibsim::ccalg
