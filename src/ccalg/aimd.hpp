#pragma once

#include <memory>

#include "ccalg/rate_based.hpp"

namespace ibsim::ccalg {

/// Textbook AIMD reaction point: every BECN halves the flow's rate
/// fraction (multiplicative decrease), every recovery-timer expiry adds
/// a fixed increment back (additive increase). The simplest possible
/// fair-share policy — the useful contrast to `iba_a10`'s table-driven
/// throttle and `dcqcn`'s estimator in the comparison experiments.
class Aimd final : public RateBasedAlgorithm {
 public:
  explicit Aimd(const CcAlgoContext& ctx);

  [[nodiscard]] static std::unique_ptr<CcAlgorithm> make(const CcAlgoContext& ctx);

  [[nodiscard]] const char* name() const override { return "aimd"; }

 protected:
  void react(RateFlow& f) override;
  bool recover(RateFlow& f) override;

 private:
  static constexpr double kDecrease = 0.5;     ///< rate *= this per BECN
  static constexpr double kIncrease = 1.0 / 32.0;  ///< rate += this per tick
  static constexpr double kMinRate = 1.0 / 1024.0;
};

}  // namespace ibsim::ccalg
