#include "ccalg/dcqcn.hpp"

namespace ibsim::ccalg {

Dcqcn::Dcqcn(const CcAlgoContext& ctx) : RateBasedAlgorithm(ctx, kMinRate) {}

std::unique_ptr<CcAlgorithm> Dcqcn::make(const CcAlgoContext& ctx) {
  return std::make_unique<Dcqcn>(ctx);
}

void Dcqcn::react(RateFlow& f) {
  f.alpha = (1.0 - kG) * f.alpha + kG;
  f.target = f.rate;
  f.rate = f.rate * (1.0 - f.alpha / 2.0);
  f.stage = 0;
}

bool Dcqcn::recover(RateFlow& f) {
  f.alpha *= 1.0 - kAlphaDecay;
  ++f.stage;
  if (f.stage > kFastStages) {
    const std::uint32_t additive_stage = f.stage - kFastStages;
    f.target += additive_stage > kHyperAfter ? kHai : kAi;
    if (f.target > 1.0) f.target = 1.0;
  }
  f.rate = (f.rate + f.target) / 2.0;
  return f.rate >= kDoneThreshold && f.target >= 1.0;
}

}  // namespace ibsim::ccalg
