#include "ccalg/aimd.hpp"

namespace ibsim::ccalg {

Aimd::Aimd(const CcAlgoContext& ctx) : RateBasedAlgorithm(ctx, kMinRate) {}

std::unique_ptr<CcAlgorithm> Aimd::make(const CcAlgoContext& ctx) {
  return std::make_unique<Aimd>(ctx);
}

void Aimd::react(RateFlow& f) { f.rate *= kDecrease; }

bool Aimd::recover(RateFlow& f) {
  f.rate += kIncrease;
  return f.rate >= 1.0;
}

}  // namespace ibsim::ccalg
