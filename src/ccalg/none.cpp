#include "ccalg/none.hpp"

namespace ibsim::ccalg {

std::unique_ptr<CcAlgorithm> NoneAlgorithm::make(const CcAlgoContext& ctx) {
  (void)ctx;
  return std::make_unique<NoneAlgorithm>();
}

}  // namespace ibsim::ccalg
