#include "ccalg/rate_based.hpp"

#include <cmath>

#include "core/assert.hpp"

namespace ibsim::ccalg {

RateBasedAlgorithm::RateBasedAlgorithm(const CcAlgoContext& ctx, double min_rate)
    : params_(ctx.params), ref_gbps_(ctx.reference_gbps()), min_rate_(min_rate) {
  IBSIM_ASSERT(ctx.n_flows > 0, "rate-based CC needs at least one flow slot");
  IBSIM_ASSERT(min_rate_ > 0.0 && min_rate_ < 1.0, "min_rate must be in (0, 1)");
  flows_.resize(static_cast<std::size_t>(ctx.n_flows));
  active_flows_.reserve(static_cast<std::size_t>(ctx.n_flows));
}

core::Time RateBasedAlgorithm::on_send(std::int32_t flow, std::int32_t bytes,
                                       core::Time end) {
  RateFlow& f = flows_[static_cast<std::size_t>(flow)];
  f.ready_at = end + injection_delay(flow, bytes);
  return f.ready_at;
}

core::Time RateBasedAlgorithm::ready_at(std::int32_t flow) const {
  return flows_[static_cast<std::size_t>(flow)].ready_at;
}

core::Time RateBasedAlgorithm::injection_delay(std::int32_t flow,
                                               std::int32_t bytes) const {
  const RateFlow& f = flows_[static_cast<std::size_t>(flow)];
  if (f.rate >= 1.0) return 0;
  // Gap after a packet of T(bytes) so the averaged rate is f.rate:
  // T x (1 - r) / r, same semantics as a CCT entry's IRD factor.
  const double gap = static_cast<double>(core::transmit_time(bytes, ref_gbps_)) *
                     (1.0 - f.rate) / f.rate;
  return static_cast<core::Time>(std::llround(gap));
}

BecnOutcome RateBasedAlgorithm::on_becn(std::int32_t flow, core::Time now) {
  (void)now;
  RateFlow& f = flows_[static_cast<std::size_t>(flow)];
  BecnOutcome out;
  out.newly_throttled = f.active_idx < 0;
  if (out.newly_throttled) {
    f.active_idx = static_cast<std::int32_t>(active_flows_.size());
    active_flows_.push_back(flow);
  }
  const std::int64_t before = severity_of(f);
  react(f);
  if (f.rate < min_rate_) f.rate = min_rate_;
  severity_total_ += severity_of(f) - before;
  out.severity = severity_total_;
  return out;
}

core::Time RateBasedAlgorithm::timer_delay() const {
  return active_flows_.empty() ? 0 : params_.timer_interval();
}

std::int64_t RateBasedAlgorithm::on_timer(core::Time now, std::vector<std::int32_t>* ended) {
  (void)now;
  for (std::size_t i = 0; i < active_flows_.size();) {
    const std::int32_t flow = active_flows_[i];
    RateFlow& f = flows_[static_cast<std::size_t>(flow)];
    const std::int64_t before = severity_of(f);
    const bool done = recover(f);
    if (done) {
      f.rate = 1.0;
      f.target = 1.0;
      f.stage = 0;
      f.active_idx = -1;
      active_flows_[i] = active_flows_.back();
      active_flows_.pop_back();
      if (i < active_flows_.size()) {
        flows_[static_cast<std::size_t>(active_flows_[i])].active_idx =
            static_cast<std::int32_t>(i);
      }
      if (ended != nullptr) ended->push_back(flow);
    } else {
      ++i;
    }
    severity_total_ += severity_of(f) - before;
  }
  return severity_total_;
}

}  // namespace ibsim::ccalg
