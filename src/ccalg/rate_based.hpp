#pragma once

#include <cstdint>
#include <vector>

#include "ccalg/cc_algorithm.hpp"

namespace ibsim::ccalg {

/// Shared machinery of the rate-based reaction points (`dcqcn`, `aimd`):
/// each flow holds a current injection-rate fraction in (0, 1]; a BECN
/// tightens it (subclass policy), the recovery timer relaxes it
/// (subclass policy), and the injection-rate delay is derived from the
/// fraction exactly like a CCT entry's IRD — a packet of `b` bytes at
/// rate `r` is followed by a gap of T(b) x (1 - r) / r, so back-to-back
/// MTU packets average `r` x reference rate.
///
/// The active-flow set uses the same swap-remove bookkeeping as IbaA10;
/// the severity gauge is the quantized rate deficit
/// sum(round(1024 x (1 - rate))), maintained incrementally.
class RateBasedAlgorithm : public CcAlgorithm {
 public:
  RateBasedAlgorithm(const CcAlgoContext& ctx, double min_rate);

  core::Time on_send(std::int32_t flow, std::int32_t bytes, core::Time end) override;
  [[nodiscard]] core::Time ready_at(std::int32_t flow) const override;
  [[nodiscard]] core::Time injection_delay(std::int32_t flow,
                                           std::int32_t bytes) const override;

  BecnOutcome on_becn(std::int32_t flow, core::Time now) override;

  [[nodiscard]] core::Time timer_delay() const override;
  std::int64_t on_timer(core::Time now, std::vector<std::int32_t>* ended) override;

  [[nodiscard]] std::int32_t active_flow_count() const override {
    return static_cast<std::int32_t>(active_flows_.size());
  }
  [[nodiscard]] std::int64_t severity_sum() const override { return severity_total_; }
  [[nodiscard]] double rate_fraction(std::int32_t flow) const override {
    return flows_[static_cast<std::size_t>(flow)].rate;
  }

 protected:
  struct RateFlow {
    double rate = 1.0;    ///< granted fraction of the reference rate
    double target = 1.0;  ///< recovery target (DCQCN; unused by AIMD)
    double alpha = 1.0;   ///< congestion estimate (DCQCN; unused by AIMD)
    std::uint32_t stage = 0;  ///< recovery stages since the last BECN
    std::int32_t active_idx = -1;
    core::Time ready_at = 0;
  };

  /// Tighten `f` for one BECN (rate must end in [min_rate, 1]).
  virtual void react(RateFlow& f) = 0;
  /// One recovery step for `f`; return true when fully recovered (the
  /// flow then leaves the active set with rate snapped back to 1).
  virtual bool recover(RateFlow& f) = 0;

  [[nodiscard]] double min_rate() const { return min_rate_; }

  ib::CcParams params_;

 private:
  [[nodiscard]] static std::int64_t severity_of(const RateFlow& f) {
    return static_cast<std::int64_t>(1024.0 * (1.0 - f.rate) + 0.5);
  }

  double ref_gbps_;
  double min_rate_;
  std::vector<RateFlow> flows_;
  std::vector<std::int32_t> active_flows_;
  std::int64_t severity_total_ = 0;
};

}  // namespace ibsim::ccalg
