#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ccalg/cc_algorithm.hpp"

namespace ibsim::ccalg {

/// String-keyed factory for reaction-point algorithms. The four built-in
/// algorithms (`aimd`, `dcqcn`, `iba_a10`, `none`) are registered on
/// first use; experiments and tests may register additional ones. The
/// backing map keeps names sorted, so enumeration order — and the
/// numeric ids derived from it — is deterministic and independent of
/// registration order.
class CcAlgorithmRegistry {
 public:
  using Factory = std::unique_ptr<CcAlgorithm> (*)(const CcAlgoContext&);

  [[nodiscard]] static CcAlgorithmRegistry& instance();

  /// Register `factory` under `name`. Re-registering an existing name
  /// replaces its factory (tests use this to inject instrumented
  /// doubles); names must be non-empty.
  void add(const std::string& name, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Create an instance of `name`; aborts if unknown — callers that take
  /// user input must check contains() first and report `names()` in
  /// their error message.
  [[nodiscard]] std::unique_ptr<CcAlgorithm> create(const std::string& name,
                                                    const CcAlgoContext& ctx) const;

  /// All registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Stable numeric id of `name` (its rank in the sorted name list), or
  /// -1 when unknown. Published as the `cc.algo` telemetry gauge, which
  /// only carries integers.
  [[nodiscard]] std::int64_t id_of(const std::string& name) const;

  /// "aimd, dcqcn, iba_a10, none" — for error messages and --help.
  [[nodiscard]] std::string names_joined() const;

 private:
  CcAlgorithmRegistry();

  std::map<std::string, Factory> factories_;
};

}  // namespace ibsim::ccalg
