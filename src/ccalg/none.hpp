#pragma once

#include <memory>

#include "ccalg/cc_algorithm.hpp"

namespace ibsim::ccalg {

/// Explicit no-op reaction point: never throttles, never answers FECN
/// with a CNP, never needs a timer. This is what a disabled congestion
/// manager resolves to, replacing the old scattered `if (!enabled)`
/// early-outs with a real (trivially inspectable) algorithm.
class NoneAlgorithm final : public CcAlgorithm {
 public:
  [[nodiscard]] static std::unique_ptr<CcAlgorithm> make(const CcAlgoContext& ctx);

  [[nodiscard]] const char* name() const override { return "none"; }

  core::Time on_send(std::int32_t flow, std::int32_t bytes, core::Time end) override {
    (void)flow;
    (void)bytes;
    return end;
  }
  [[nodiscard]] core::Time ready_at(std::int32_t flow) const override {
    (void)flow;
    return 0;
  }
  [[nodiscard]] core::Time injection_delay(std::int32_t flow,
                                           std::int32_t bytes) const override {
    (void)flow;
    (void)bytes;
    return 0;
  }

  BecnOutcome on_becn(std::int32_t flow, core::Time now) override {
    (void)flow;
    (void)now;
    return {};
  }

  [[nodiscard]] core::Time timer_delay() const override { return 0; }
  std::int64_t on_timer(core::Time now, std::vector<std::int32_t>* ended) override {
    (void)now;
    (void)ended;
    return 0;
  }

  [[nodiscard]] bool cnp_on_fecn() const override { return false; }

  [[nodiscard]] std::int32_t active_flow_count() const override { return 0; }
  [[nodiscard]] std::int64_t severity_sum() const override { return 0; }
  [[nodiscard]] double rate_fraction(std::int32_t flow) const override {
    (void)flow;
    return 1.0;
  }
};

}  // namespace ibsim::ccalg
