#pragma once

#include <cstdint>

#include "core/time.hpp"
#include "fabric/vl_arbiter.hpp"
#include "ib/types.hpp"
#include "telemetry/counters.hpp"
#include "topo/topology.hpp"

namespace ibsim::fabric {

/// Fast-path link-wakeup state (FabricParams::fast_path). The slow path
/// schedules kEvLinkFree unconditionally after every grant; the fast
/// path elides it when the output drained, remembering the (at, seq)
/// slot the event would have occupied so a later materialization — or
/// the lazy no-op application at the next arbitration attempt — is
/// indistinguishable from the eager schedule (DESIGN.md §11).
enum class WakeState : std::uint8_t {
  kNone = 0,       ///< no wakeup outstanding (slow path always here)
  kScheduled = 1,  ///< a kEvLinkFree with seq == wake_seq is in the queue
  kElided = 2,     ///< slot reserved at (busy_until, wake_seq), no event queued
};

/// Per-output-port state shared by switches and HCAs: the downstream
/// link, timing, the VL arbiter and the wakeup bookkeeping. This is a
/// flat value type — no heap blocks behind it. The per-(port, VL) hot
/// arrays (credits, coalesced-credit accumulators, round-robin cursors,
/// CC detectors) live in the owning device's PortVlBank so the grant
/// loop reads them from stride-indexed contiguous storage (DESIGN.md
/// §13).
///
/// Behaviour (arbitration loops, event scheduling) lives in the owning
/// device; this struct is deliberately state-plus-small-helpers so both
/// device types reuse it without virtual dispatch on the hot path.
struct OutputPort {
  // Downstream endpoint.
  topo::DeviceId peer_dev = topo::kInvalidDevice;
  std::int32_t peer_port = -1;
  bool peer_is_hca = false;
  bool connected = false;

  // Link timing: serialization on the wire, pacing of consecutive grants
  // (HCA injection is paced below wire speed by the PCIe bottleneck), and
  // the one-way delays applied to packet and credit events.
  double wire_gbps = 16.0;
  double pace_gbps = 16.0;
  core::Time prop_delay = 0;
  core::Time rx_pipeline_delay = 0;  ///< receiver-side pipeline, added on arrival

  core::Time busy_until = 0;

  // Fast-path wakeup bookkeeping (see WakeState). wake_seq identifies the
  // live wakeup: an in-queue kEvLinkFree whose seq differs is stale and
  // must be dropped without acting.
  WakeState wake = WakeState::kNone;
  std::uint64_t wake_seq = 0;

  VlArbiter vlarb;

  // Statistics.
  std::int64_t tx_bytes = 0;
  std::uint64_t tx_packets = 0;

  // Telemetry: when this port last went work-but-no-credits (kTimeNever =
  // not stalled), and the per-port stall-time counter (valid only in
  // detailed mode). Only maintained while telemetry is attached.
  core::Time stall_since = core::kTimeNever;
  telemetry::CounterRegistry::Handle h_stall_ps;

  [[nodiscard]] core::Time ser_time(std::int32_t bytes) const {
    return core::transmit_time(bytes, wire_gbps);
  }
  [[nodiscard]] core::Time pace_time(std::int32_t bytes) const {
    return core::transmit_time(bytes, pace_gbps);
  }
  [[nodiscard]] bool idle(core::Time now) const { return connected && now >= busy_until; }
};

}  // namespace ibsim::fabric
