#pragma once

#include <cstdint>
#include <vector>

#include "cc/switch_cc.hpp"
#include "core/time.hpp"
#include "fabric/credits.hpp"
#include "fabric/vl_arbiter.hpp"
#include "ib/types.hpp"
#include "telemetry/counters.hpp"
#include "topo/topology.hpp"

namespace ibsim::fabric {

/// Fast-path link-wakeup state (FabricParams::fast_path). The slow path
/// schedules kEvLinkFree unconditionally after every grant; the fast
/// path elides it when the output drained, remembering the (at, seq)
/// slot the event would have occupied so a later materialization — or
/// the lazy no-op application at the next arbitration attempt — is
/// indistinguishable from the eager schedule (DESIGN.md §11).
enum class WakeState : std::uint8_t {
  kNone = 0,       ///< no wakeup outstanding (slow path always here)
  kScheduled = 1,  ///< a kEvLinkFree with seq == wake_seq is in the queue
  kElided = 2,     ///< slot reserved at (busy_until, wake_seq), no event queued
};

/// Per-output-port state shared by switches and HCAs: the downstream
/// link, credit balances per VL, the VL arbiter, round-robin input
/// pointers, and (on switches) the congestion-detection state.
///
/// Behaviour (arbitration loops, event scheduling) lives in the owning
/// device; this struct is deliberately state-plus-small-helpers so both
/// device types reuse it without virtual dispatch on the hot path.
struct OutputPort {
  // Downstream endpoint.
  topo::DeviceId peer_dev = topo::kInvalidDevice;
  std::int32_t peer_port = -1;
  bool peer_is_hca = false;
  bool connected = false;

  // Link timing: serialization on the wire, pacing of consecutive grants
  // (HCA injection is paced below wire speed by the PCIe bottleneck), and
  // the one-way delays applied to packet and credit events.
  double wire_gbps = 16.0;
  double pace_gbps = 16.0;
  core::Time prop_delay = 0;
  core::Time rx_pipeline_delay = 0;  ///< receiver-side pipeline, added on arrival

  core::Time busy_until = 0;

  // Fast-path wakeup bookkeeping (see WakeState). wake_seq identifies the
  // live wakeup: an in-queue kEvLinkFree whose seq differs is stale and
  // must be dropped without acting.
  WakeState wake = WakeState::kNone;
  std::uint64_t wake_seq = 0;

  std::vector<CreditTracker> credits;       ///< per VL, against the peer's ibuf
  std::vector<std::int32_t> pending_credit; ///< per VL: bytes riding a deferred credit event
  std::vector<std::int32_t> rr_next;        ///< per VL: next input port to consider
  VlArbiter vlarb;
  std::vector<cc::SwitchPortCc> cc;         ///< per VL congestion detector (switches)

  // Statistics.
  std::int64_t tx_bytes = 0;
  std::uint64_t tx_packets = 0;

  // Telemetry: when this port last went work-but-no-credits (kTimeNever =
  // not stalled), and the per-port stall-time counter (valid only in
  // detailed mode). Only maintained while telemetry is attached.
  core::Time stall_since = core::kTimeNever;
  telemetry::CounterRegistry::Handle h_stall_ps;

  [[nodiscard]] core::Time ser_time(std::int32_t bytes) const {
    return core::transmit_time(bytes, wire_gbps);
  }
  [[nodiscard]] core::Time pace_time(std::int32_t bytes) const {
    return core::transmit_time(bytes, pace_gbps);
  }
  [[nodiscard]] bool idle(core::Time now) const { return connected && now >= busy_until; }
};

}  // namespace ibsim::fabric
