#pragma once

#include "core/time.hpp"
#include "ib/packet.hpp"
#include "ib/types.hpp"

namespace ibsim::fabric {

/// A traffic source attached to an HCA. The HCA polls it whenever the
/// injection path is free; the source either hands over the next packet
/// to send (an arena handle — ownership transfers to the fabric) or
/// reports when it should be polled again (budget refill, throttled flow
/// becoming ready, next arrival of an open-loop process).
/// `retry_at == kTimeNever` means "nothing until external state changes".
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  struct Poll {
    ib::PacketHandle pkt = ib::kNullPacket;
    core::Time retry_at = core::kTimeNever;
  };

  [[nodiscard]] virtual Poll poll(core::Time now) = 0;
};

/// Observer of packets fully drained by an HCA sink. The metrics
/// collector implements this; CNPs are consumed by the CC agent and do
/// not reach the observer.
class SinkObserver {
 public:
  virtual ~SinkObserver() = default;
  virtual void on_delivered(ib::NodeId node, const ib::Packet& pkt, core::Time now) = 0;
};

}  // namespace ibsim::fabric
