#include "fabric/fabric.hpp"

#include <algorithm>

#include "fabric/events.hpp"

namespace ibsim::fabric {

std::string FabricParams::validate() const {
  if (wire_gbps <= 0 || hca_inject_gbps <= 0 || hca_drain_gbps <= 0)
    return "link rates must be positive";
  if (hca_inject_gbps > wire_gbps) return "injection pacing cannot exceed the wire rate";
  if (n_vls < 1 || n_vls > 15) return "n_vls must be in [1, 15]";
  if (switch_ibuf_data_bytes < ib::kMtuBytes || hca_ibuf_data_bytes < ib::kMtuBytes)
    return "data VL buffers must hold at least one MTU packet";
  if (cnp_on_own_vl && n_vls > 1 &&
      (switch_ibuf_cnp_bytes < ib::kCnpBytes || hca_ibuf_cnp_bytes < ib::kCnpBytes))
    return "CNP VL buffers must hold at least one CNP";
  return {};
}

Fabric::Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
               const FabricParams& params, const cc::CcManager& ccm, core::Scheduler& sched)
    : Fabric(topo, routing, params, ccm, &sched, nullptr) {}

Fabric::Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
               const FabricParams& params, const cc::CcManager& ccm, const ShardLayout& layout)
    : Fabric(topo, routing, params, ccm, nullptr, &layout) {}

Fabric::Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
               const FabricParams& params, const cc::CcManager& ccm, core::Scheduler* sched,
               const ShardLayout* layout)
    : topo_(&topo), routing_(&routing), params_(params), ccm_(&ccm), sched_(sched) {
  const std::string err = params_.validate();
  IBSIM_ASSERT(err.empty(), err.c_str());
  const std::string topo_err = topo.validate();
  IBSIM_ASSERT(topo_err.empty(), topo_err.c_str());

  if (layout != nullptr) {
    IBSIM_ASSERT(layout->shard_of_device != nullptr &&
                     layout->shard_of_device->size() ==
                         static_cast<std::size_t>(topo.device_count()),
                 "shard layout must cover every device");
    shard_of_ = *layout->shard_of_device;
    shard_scheds_ = layout->scheds;
    n_shards_ = static_cast<std::int32_t>(shard_scheds_.size());
    IBSIM_ASSERT(n_shards_ >= 1, "shard layout needs at least one scheduler");
    sched_ = shard_scheds_.front();
    mail_.resize(static_cast<std::size_t>(n_shards_) * static_cast<std::size_t>(n_shards_));
    crossings_.resize(static_cast<std::size_t>(n_shards_));
    // Per-shard arenas sized as the serial arena would be, split evenly.
    const std::size_t per_shard = std::max<std::size_t>(
        1024, static_cast<std::size_t>(topo.node_count()) * 16 /
                  static_cast<std::size_t>(n_shards_));
    for (std::int32_t s = 0; s < n_shards_; ++s) {
      shard_arenas_.push_back(std::make_unique<ib::PacketArena>());
      shard_arenas_.back()->reserve(per_shard);
    }
    // The HCA<->leaf loop (grant, sink credit refund, CNP emission) is
    // latency-critical and assumed shard-local everywhere; the planner
    // guarantees it, the engine depends on it.
    for (ib::NodeId node = 0; node < topo.node_count(); ++node) {
      const topo::DeviceId hca = topo.hca_device(node);
      const topo::PortRef up = topo.peer(topo::PortRef{hca, 0});
      IBSIM_ASSERT(up.valid() && shard_of(hca) == shard_of(up.device),
                   "HCA must share a shard with its leaf switch");
    }
  } else {
    // Pre-size the arena to the fabric's scale: the live-packet population
    // is bounded by buffered bytes (one MTU per credit unit per link), and
    // ~16 packets per endpoint covers every calibrated configuration with
    // headroom. Under-sizing is safe — the arena doubles on demand — this
    // only moves the growth out of the measured window.
    arena_.reserve(std::max<std::size_t>(
        4096, static_cast<std::size_t>(topo.node_count()) * 16));
  }
  coal_.resize(static_cast<std::size_t>(n_shards_));

  handlers_.resize(static_cast<std::size_t>(topo.device_count()), nullptr);
  switches_.reserve(topo.switches().size());
  hcas_.reserve(static_cast<std::size_t>(topo.node_count()));
  for (topo::DeviceId dev = 0; dev < topo.device_count(); ++dev) {
    if (topo.kind(dev) == topo::DeviceKind::Switch) {
      switches_.push_back(std::make_unique<SwitchDevice>(this, dev, topo.port_count(dev)));
      handlers_[static_cast<std::size_t>(dev)] = switches_.back().get();
    } else {
      const ib::NodeId node = topo.node_of(dev);
      IBSIM_ASSERT(node == static_cast<ib::NodeId>(hcas_.size()),
                   "HCA creation order must match NodeId order");
      hcas_.push_back(std::make_unique<Hca>(this, dev, node, topo.node_count(), ccm));
      handlers_[static_cast<std::size_t>(dev)] = hcas_.back().get();
    }
  }

  for (auto& sw : switches_) {
    for (std::int32_t p = 0; p < sw->n_ports(); ++p) {
      const topo::PortRef self{sw->device_id(), p};
      const topo::PortRef peer = topo.peer(self);
      if (!peer.valid()) continue;
      wire_output(sw->output(p), sw->bank(), p, self, peer, /*from_hca=*/false);
    }
  }
  for (auto& h : hcas_) {
    const topo::PortRef self{h->device_id(), 0};
    const topo::PortRef peer = topo.peer(self);
    IBSIM_ASSERT(peer.valid(), "HCA must be cabled");
    wire_output(h->out_, h->bank(), 0, self, peer, /*from_hca=*/true);
  }
}

void Fabric::wire_output(OutputPort& op, PortVlBank& bank, std::int32_t port,
                         topo::PortRef self, topo::PortRef peer, bool from_hca) {
  const std::int32_t n_vls = params_.n_vls;
  op.peer_dev = peer.device;
  op.peer_port = peer.port;
  op.peer_is_hca = topo_->kind(peer.device) == topo::DeviceKind::Hca;
  op.connected = true;
  op.wire_gbps = params_.wire_gbps;
  op.pace_gbps = from_hca ? params_.hca_inject_gbps : params_.wire_gbps;
  op.prop_delay = params_.link_delay;
  op.rx_pipeline_delay = op.peer_is_hca ? params_.hca_rx_delay : params_.switch_delay;
  op.vlarb = VlArbiter::make_default(n_vls, params_.cnp_vl());

  for (std::int32_t vl = 0; vl < n_vls; ++vl) {
    const auto v = static_cast<ib::Vl>(vl);
    bank.credit(port, v).initialize(params_.vl_capacity(v, op.peer_is_hca));
    if (!from_hca) {
      // Only switches detect congestion and mark FECN. The threshold is
      // referenced to the switch input-buffer VL capacity; the Victim
      // Mask is applied to ports that face HCAs (endpoint congestion
      // roots there and an HCA never detects congestion itself).
      const bool victim_mask = op.peer_is_hca && ccm_->params().victim_mask_hca_ports;
      bank.cc(port, v).configure(ccm_->params(),
                                 ccm_->threshold_bytes(params_.vl_capacity(v, /*hca=*/false)),
                                 victim_mask);
    }
  }
  (void)self;
}

void Fabric::schedule_credit_return(core::Scheduler& sched, topo::DeviceId dev,
                                    std::int32_t in_port, ib::Vl vl, std::int32_t bytes,
                                    core::Time tail_time) {
  const topo::PortRef upstream = topo_->peer(topo::PortRef{dev, in_port});
  IBSIM_ASSERT(upstream.valid(), "credit return towards an uncabled port");
  const core::Time at = tail_time + params_.link_delay + params_.credit_delay;
  const std::int32_t shard = shard_of(dev);
  if (!shard_of_.empty() && shard != shard_of(upstream.device)) {
    // Refund crosses the cut: park it in the upstream shard's mailbox.
    // The upstream port's pending_credit accumulator belongs to the
    // other shard, so no coalescing — the drain schedules a plain
    // self-contained credit event.
    mail_[static_cast<std::size_t>(shard) * static_cast<std::size_t>(n_shards_) +
          static_cast<std::size_t>(shard_of(upstream.device))]
        .credits.push_back({at, upstream.device, upstream.port, vl, bytes});
    ++crossings_[static_cast<std::size_t>(shard)].credits;
    return;
  }
  core::EventHandler* target = handlers_[static_cast<std::size_t>(upstream.device)];
  CoalesceCandidate& coal = coal_[static_cast<std::size_t>(shard)];
  if (params_.fast_path) {
    OutputPort& op = output_port_at(upstream.device, upstream.port);
    std::int32_t& pending = port_bank_at(upstream.device).pending_credit(upstream.port, vl);
    if (coal.dev == upstream.device && coal.port == upstream.port && coal.vl == vl &&
        coal.at == at && pending > 0 && !sched.watch_hit() && !op.idle(at)) {
      // Same destination, same refund instant, deferred event still in
      // flight, and nothing else scheduled at `at` since it was created:
      // ride the existing event. Burn the slot this event would have
      // taken so downstream sequence numbers are unchanged.
      //
      // The `!op.idle(at)` leg makes the merge invisible: the reference
      // path refunds in two steps and arbitrates after each, so a grant
      // (or FECN-threshold read) at `at` between the halves would see
      // only the first refund. A port busy strictly past `at` cannot
      // grant there in either mode (busy_until never moves backwards),
      // so folding the second refund into the first changes nothing any
      // event at `at` can observe.
      pending += bytes;
      (void)sched.reserve_seq();
      return;
    }
    if (pending == 0) {
      // Open a fresh deferred return and make it the merge candidate.
      pending = bytes;
      (void)sched.schedule_at(at, target, kEvCreditUpdate, pack_credit_deferred(vl),
                              static_cast<std::uint64_t>(upstream.port));
      coal = {upstream.device, upstream.port, vl, at};
      sched.arm_watch(at);
      return;
    }
    // A deferred event for this (port, vl) is outstanding at another
    // timestamp: fall through to a plain self-contained event rather
    // than risk double-draining the accumulator. Costs one event — the
    // fast path's failure mode is always less coalescing, never a
    // behavioural difference.
  }
  sched.schedule_at(at, target, kEvCreditUpdate, pack_credit(vl, bytes),
                    static_cast<std::uint64_t>(upstream.port));
}

void Fabric::send_packet(core::Scheduler& sched, topo::DeviceId from_dev, core::Time arrive,
                         topo::DeviceId to_dev, std::int32_t to_port, ib::PacketHandle h) {
  const std::int32_t src = shard_of(from_dev);
  const std::int32_t dst = shard_of(to_dev);
  if (src == dst) {
    sched.schedule_at(arrive, handlers_[static_cast<std::size_t>(to_dev)], kEvPacketArrive, h,
                      static_cast<std::uint64_t>(to_port));
    return;
  }
  ib::PacketArena& arena = *shard_arenas_[static_cast<std::size_t>(src)];
  Mailbox& mb = mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_shards_) +
                      static_cast<std::size_t>(dst)];
  mb.packets.push_back({arrive, to_dev, to_port, arena.get(h)});
  // The copy dragged the freelist link along; sever it so the message
  // holds a standalone packet.
  mb.packets.back().pkt.next = ib::kNullPacket;
  arena.release(h);
  ++crossings_[static_cast<std::size_t>(src)].packets;
}

void Fabric::drain_mailboxes_into(std::int32_t dst_shard) {
  core::Scheduler& sched = *shard_scheds_[static_cast<std::size_t>(dst_shard)];
  ib::PacketArena& arena = *shard_arenas_[static_cast<std::size_t>(dst_shard)];
  for (std::int32_t src = 0; src < n_shards_; ++src) {
    Mailbox& mb = mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_shards_) +
                        static_cast<std::size_t>(dst_shard)];
    // Credits before packets within one source: both orders are valid
    // interleavings, but one must be fixed for run-to-run determinism.
    for (const CreditMsg& m : mb.credits) {
      sched.schedule_at(m.at, handlers_[static_cast<std::size_t>(m.dev)], kEvCreditUpdate,
                        pack_credit(m.vl, m.bytes), static_cast<std::uint64_t>(m.port));
      sched.note_external_event();
    }
    mb.credits.clear();
    for (const PacketMsg& m : mb.packets) {
      const ib::PacketHandle h = arena.allocate();
      ib::Packet& pkt = arena.get(h);
      pkt = m.pkt;  // keeps the source-assigned packet id (trace-only)
      pkt.next = ib::kNullPacket;
      sched.schedule_at(m.at, handlers_[static_cast<std::size_t>(m.dst_dev)], kEvPacketArrive, h,
                        static_cast<std::uint64_t>(m.dst_port));
      sched.note_external_event();
    }
    mb.packets.clear();
  }
}

std::uint64_t Fabric::crossed_packets() const {
  std::uint64_t total = 0;
  for (const ShardTraffic& t : crossings_) total += t.packets;
  return total;
}

std::uint64_t Fabric::crossed_credits() const {
  std::uint64_t total = 0;
  for (const ShardTraffic& t : crossings_) total += t.credits;
  return total;
}

OutputPort& Fabric::output_port_at(topo::DeviceId dev, std::int32_t port) {
  core::EventHandler* handler = handlers_[static_cast<std::size_t>(dev)];
  if (topo_->kind(dev) == topo::DeviceKind::Switch) {
    return static_cast<SwitchDevice*>(handler)->output(port);
  }
  IBSIM_ASSERT(port == 0, "HCAs have a single port");
  return static_cast<Hca*>(handler)->out();
}

PortVlBank& Fabric::port_bank_at(topo::DeviceId dev) {
  core::EventHandler* handler = handlers_[static_cast<std::size_t>(dev)];
  if (topo_->kind(dev) == topo::DeviceKind::Switch) {
    return static_cast<SwitchDevice*>(handler)->bank();
  }
  return static_cast<Hca*>(handler)->bank();
}

void Fabric::start(core::Scheduler& sched) {
  if (shard_scheds_.empty()) {
    for (auto& h : hcas_) h->start(sched);
    return;
  }
  // Sharded: every HCA's first-injection poll belongs on its own shard's
  // queue. The caller's scheduler only runs global (fabric-agnostic)
  // events.
  for (auto& h : hcas_) h->start(sched_for(h->device_id()));
}

void Fabric::attach_telemetry(telemetry::Telemetry* telemetry) {
  telemetry_ = telemetry;
  FabricCounters counters;  // all handles invalid when detaching
  if (telemetry_ != nullptr) {
    telemetry::CounterRegistry& reg = telemetry_->registry();
    counters.fecn_marked = reg.counter("fabric.fecn_marked");
    counters.becn_sent = reg.counter("fabric.becn_sent");
    counters.becn_delivered = reg.counter("fabric.becn_delivered");
    counters.throttle_events = reg.counter("fabric.throttle_events");
    counters.credit_stalls = reg.counter("fabric.credit_stalls");
    counters.credit_stall_ps = reg.counter("fabric.credit_stall_ps");
    counters.arb_grants = reg.counter("fabric.arb_grants");
    g_queued_bytes_ = reg.gauge("fabric.queued_bytes");
    g_active_cc_flows_ = reg.gauge("fabric.active_cc_flows");
    g_ccti_sum_ = reg.gauge("fabric.ccti_sum");
    ccm_->publish(reg);
    // Track names exist only for the trace exporter; counter-only runs
    // skip the O(devices) string construction entirely.
    if (telemetry_->tracer() != nullptr) {
      for (const auto& sw : switches_) {
        telemetry_->set_track_name(sw->device_id(),
                                   "switch " + std::to_string(sw->device_id()));
      }
      for (const auto& h : hcas_) {
        telemetry_->set_track_name(h->device_id(), "hca " + std::to_string(h->device_id()) +
                                                       " (node " + std::to_string(h->node()) +
                                                       ")");
      }
    }
  }
  for (auto& sw : switches_) sw->attach_telemetry(telemetry_, counters);
  for (auto& h : hcas_) h->attach_telemetry(telemetry_, counters);
}

void Fabric::refresh_gauges() {
  if (telemetry_ == nullptr) return;
  telemetry::CounterRegistry& reg = telemetry_->registry();
  reg.set(g_queued_bytes_, total_queued_bytes());
  reg.set(g_active_cc_flows_, total_active_cc_flows());
  reg.set(g_ccti_sum_, total_ccti_sum());
}

void Fabric::set_link_rate(topo::DeviceId dev, std::int32_t port, double gbps) {
  IBSIM_ASSERT(gbps > 0.0, "link rate must be positive");
  core::EventHandler* handler = handlers_[static_cast<std::size_t>(dev)];
  IBSIM_ASSERT(handler != nullptr, "unknown device");
  OutputPort* op = nullptr;
  if (topo_->kind(dev) == topo::DeviceKind::Switch) {
    op = &static_cast<SwitchDevice*>(handler)->output(port);
  } else {
    IBSIM_ASSERT(port == 0, "HCAs have a single port");
    op = &static_cast<Hca*>(handler)->out();
  }
  IBSIM_ASSERT(op->connected, "cannot scale an uncabled port");
  // Keep the HCA injection bottleneck: pacing never exceeds the wire.
  op->wire_gbps = gbps;
  if (op->pace_gbps > gbps) op->pace_gbps = gbps;
}

std::uint64_t Fabric::total_fecn_marked() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->fecn_marked();
  return total;
}

std::int64_t Fabric::total_queued_bytes() const {
  std::int64_t total = 0;
  for (const auto& sw : switches_) {
    const PortVlBank& bank = sw->bank();
    for (std::int32_t p = 0; p < sw->n_ports(); ++p) {
      if (!sw->output(p).connected) continue;
      for (std::int32_t v = 0; v < bank.n_vls(); ++v) {
        total += bank.cc(p, static_cast<ib::Vl>(v)).queued_bytes();
      }
    }
  }
  return total;
}

std::int32_t Fabric::total_active_cc_flows() const {
  std::int32_t total = 0;
  for (const auto& h : hcas_) total += h->cc_agent().active_flow_count();
  return total;
}

std::int64_t Fabric::total_ccti_sum() const {
  std::int64_t total = 0;
  for (const auto& h : hcas_) total += h->cc_agent().ccti_sum();
  return total;
}

std::uint64_t Fabric::total_becn_received() const {
  std::uint64_t total = 0;
  for (const auto& h : hcas_) total += h->cc_agent().becn_received();
  return total;
}

std::uint64_t Fabric::total_cnps_sent() const {
  std::uint64_t total = 0;
  for (const auto& h : hcas_) total += h->cc_agent().cnps_sent();
  return total;
}

std::int64_t Fabric::total_injected_bytes() const {
  std::int64_t total = 0;
  for (const auto& h : hcas_) total += h->injected_bytes();
  return total;
}

std::int64_t Fabric::total_delivered_bytes() const {
  std::int64_t total = 0;
  for (const auto& h : hcas_) total += h->delivered_bytes();
  return total;
}

std::uint64_t Fabric::total_delivered_packets() const {
  std::uint64_t total = 0;
  for (const auto& h : hcas_) total += h->delivered_packets();
  return total;
}

}  // namespace ibsim::fabric
