#pragma once

#include <cstdint>

#include "core/assert.hpp"

namespace ibsim::fabric {

/// Credit balance a sender holds against one VL of the downstream input
/// buffer. This is the link-level flow control that makes the fabric
/// lossless: a sender consumes `bytes` of credit when it starts a packet
/// and gets them back when the packet leaves the downstream buffer, so an
/// input buffer can never be overrun.
class CreditTracker {
 public:
  void initialize(std::int64_t capacity) {
    capacity_ = capacity;
    available_ = capacity;
  }

  [[nodiscard]] std::int64_t available() const { return available_; }
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t outstanding() const { return capacity_ - available_; }
  [[nodiscard]] bool can_send(std::int32_t bytes) const { return available_ >= bytes; }

  void consume(std::int32_t bytes) {
    IBSIM_ASSERT(available_ >= bytes, "credit underflow: lossless invariant violated");
    available_ -= bytes;
  }

  void refund(std::int32_t bytes) {
    available_ += bytes;
    IBSIM_ASSERT(available_ <= capacity_, "credit overflow: refund exceeds capacity");
  }

 private:
  std::int64_t capacity_ = 0;
  std::int64_t available_ = 0;
};

}  // namespace ibsim::fabric
