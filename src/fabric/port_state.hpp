#pragma once

#include <cstdint>
#include <vector>

#include "cc/switch_cc.hpp"
#include "core/assert.hpp"
#include "fabric/credits.hpp"
#include "ib/types.hpp"

namespace ibsim::fabric {

/// Structure-of-arrays bank of the per-(output port, VL) hot state of one
/// device: flow-control credit balances, the coalesced-credit
/// accumulators, the arbitration round-robin cursors and (on switches)
/// the congestion detectors. Each quantity is a flat, stride-indexed
/// contiguous array with slot = port * n_vls + vl, extending the PR 4
/// LFT flattening to the fabric data plane: the grant loop reads credits
/// and CC state from dense arrays instead of chasing one heap vector per
/// OutputPort.
///
/// Behaviour stays in the owning device; the bank is plain state. HCAs
/// initialise with `with_cc = false` — an HCA never detects congestion,
/// so its bank carries no detector array.
class PortVlBank {
 public:
  void init(std::int32_t n_ports, std::int32_t n_vls, bool with_cc) {
    IBSIM_ASSERT(n_ports > 0 && n_vls > 0, "port/VL bank needs positive dimensions");
    n_ports_ = n_ports;
    n_vls_ = n_vls;
    const std::size_t n = static_cast<std::size_t>(n_ports) * static_cast<std::size_t>(n_vls);
    credits_.assign(n, CreditTracker{});
    pending_credit_.assign(n, 0);
    rr_next_.assign(n, 0);
    cc_.assign(with_cc ? n : 0, cc::SwitchPortCc{});
  }

  [[nodiscard]] CreditTracker& credit(std::int32_t port, ib::Vl vl) {
    return credits_[slot(port, vl)];
  }
  [[nodiscard]] const CreditTracker& credit(std::int32_t port, ib::Vl vl) const {
    return credits_[slot(port, vl)];
  }

  /// Bytes riding a deferred (coalesced) credit event towards this port VL.
  [[nodiscard]] std::int32_t& pending_credit(std::int32_t port, ib::Vl vl) {
    return pending_credit_[slot(port, vl)];
  }

  /// Next input port the round-robin arbitration considers for this port VL.
  [[nodiscard]] std::int32_t& rr_next(std::int32_t port, ib::Vl vl) {
    return rr_next_[slot(port, vl)];
  }

  [[nodiscard]] cc::SwitchPortCc& cc(std::int32_t port, ib::Vl vl) {
    return cc_[slot(port, vl)];
  }
  [[nodiscard]] const cc::SwitchPortCc& cc(std::int32_t port, ib::Vl vl) const {
    return cc_[slot(port, vl)];
  }

  [[nodiscard]] bool has_cc() const { return !cc_.empty(); }
  [[nodiscard]] std::int32_t n_ports() const { return n_ports_; }
  [[nodiscard]] std::int32_t n_vls() const { return n_vls_; }

 private:
  [[nodiscard]] std::size_t slot(std::int32_t port, ib::Vl vl) const {
    IBSIM_ASSERT(port >= 0 && port < n_ports_ && vl < n_vls_, "port/VL index out of range");
    return static_cast<std::size_t>(port) * static_cast<std::size_t>(n_vls_) +
           static_cast<std::size_t>(vl);
  }

  std::int32_t n_ports_ = 0;
  std::int32_t n_vls_ = 0;
  std::vector<CreditTracker> credits_;
  std::vector<std::int32_t> pending_credit_;
  std::vector<std::int32_t> rr_next_;
  std::vector<cc::SwitchPortCc> cc_;
};

}  // namespace ibsim::fabric
