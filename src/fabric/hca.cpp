#include "fabric/hca.hpp"

#include <bit>
#include <string>

#include "fabric/events.hpp"
#include "fabric/fabric.hpp"

namespace ibsim::fabric {

Hca::Hca(Fabric* fabric, topo::DeviceId dev, ib::NodeId node, std::int32_t n_nodes,
         const cc::CcManager& ccm)
    : fabric_(fabric), dev_(dev), node_(node), fast_path_(fabric->params().fast_path),
      arena_(&fabric->arena_for(dev)), home_sched_(&fabric->sched_for(dev)) {
  const FabricParams& p = fabric_->params();
  drain_gbps_ = p.hca_drain_gbps;
  rx_.resize(static_cast<std::size_t>(p.n_vls));
  bank_.init(/*n_ports=*/1, p.n_vls, /*with_cc=*/false);
  // The CC agent's IRD timers must tick on this HCA's shard scheduler.
  cc_agent_ = std::make_unique<cc::CaCcAgent>(node, n_nodes, ccm.params(),
                                              ccm.enabled() ? &ccm.cct() : nullptr,
                                              home_sched_, this, ccm.algo());
}

void Hca::start(core::Scheduler& sched) { try_inject(sched); }

void Hca::on_event(core::Scheduler& sched, const core::Event& ev) {
  switch (ev.kind) {
    case kEvPacketArrive:
      receive(sched, static_cast<ib::PacketHandle>(ev.a));
      break;
    case kEvLinkFree:
      if (fast_path_) {
        // Same live-wakeup discipline as the switch: a superseded
        // wakeup would only run try_inject against a busy port, so it
        // is dropped instead.
        if (out_.wake != WakeState::kScheduled || ev.seq != out_.wake_seq) break;
        out_.wake = WakeState::kNone;
      }
      try_inject(sched);
      break;
    case kEvCreditUpdate: {
      const ib::Vl vl = credit_vl(ev.a);
      if (credit_is_deferred(ev.a)) {
        std::int32_t& pending = bank_.pending_credit(0, vl);
        bank_.credit(0, vl).refund(pending);
        pending = 0;
      } else {
        bank_.credit(0, vl).refund(credit_bytes(ev.a));
      }
      // While the port is pacing out a packet, try_inject could not
      // grant; and an elided wakeup implies nothing is waiting to go
      // out (credits never create work), so skip the attempt.
      if (fast_path_ && !out_.idle(sched.now())) break;
      try_inject(sched);
      break;
    }
    case kEvSinkFree:
      finish_drain(sched);
      break;
    case kEvRetryInject:
      if (ev.at >= retry_at_) retry_at_ = core::kTimeNever;
      try_inject(sched);
      break;
    default:
      IBSIM_ASSERT(false, "HCA received an unknown event kind");
  }
}

void Hca::send_cnp(ib::NodeId to, ib::NodeId flow_dst) {
  ib::PacketArena& arena = *arena_;
  const ib::PacketHandle h = arena.allocate();
  ib::Packet& cnp = arena.get(h);
  cnp.src = node_;
  cnp.dst = to;
  cnp.bytes = ib::kCnpBytes;
  cnp.vl = fabric_->params().cnp_vl();
  cnp.is_cnp = true;
  cnp.becn = true;
  cnp.flow_dst = flow_dst;
  const ib::Vl cnp_vl = cnp.vl;
  cnp_queue_.push_back(arena, h);
  if (registry_ != nullptr) {
    registry_->inc(counters_.becn_sent);
    if (tracer_ != nullptr) {
      tracer_->record(telemetry::Category::kCc, telemetry::EventKind::kBecnSent,
                      home_sched_->now(), dev_, /*port=*/0, cnp_vl,
                      /*value=*/to, /*aux=*/flow_dst);
    }
  }
  try_inject(*home_sched_);
}

void Hca::attach_telemetry(telemetry::Telemetry* telemetry, const FabricCounters& counters) {
  counters_ = counters;
  if (telemetry == nullptr) {
    tracer_ = nullptr;
    registry_ = nullptr;
    cc_agent_->set_telemetry({});
    return;
  }
  tracer_ = telemetry->tracer();
  registry_ = &telemetry->registry();

  cc::CaCcTelemetry hooks;
  hooks.tracer = tracer_;
  hooks.registry = registry_;
  hooks.trace_dev = dev_;
  hooks.throttle_events = counters_.throttle_events;
  hooks.becn_delivered = counters_.becn_delivered;
  if (telemetry->detailed()) {
    hooks.ccti_gauge =
        registry_->gauge("hca." + std::to_string(node_) + ".cc.ccti");
  }
  cc_agent_->set_telemetry(hooks);
}

void Hca::try_inject(core::Scheduler& sched) {
  const core::Time now = sched.now();
  if (fast_path_ && out_.wake == WakeState::kElided) {
    if (now < out_.busy_until ||
        (now == out_.busy_until && out_.wake_seq > sched.current_seq())) {
      // New work surfaced (a CNP, a nudge) while the port's wakeup was
      // elided and its slot is still ahead: materialize it so injection
      // resumes exactly where the slow path's eager event would have.
      sched.schedule_at_reserved(out_.busy_until, out_.wake_seq, this, kEvLinkFree, 0, 0);
      out_.wake = WakeState::kScheduled;
      if (now < out_.busy_until) return;
    } else {
      // Slot passed. The elided wakeup was a guaranteed no-op — it was
      // only elided with no CNPs queued, no staged packet and no source
      // to poll, so unlike the switch there is no arbiter state to
      // re-apply (DESIGN.md §11).
      out_.wake = WakeState::kNone;
    }
  }
  if (!out_.idle(now)) return;  // the pending LinkFree event will re-enter

  ib::PacketArena& arena = *arena_;

  // Congestion notifications go out ahead of data ("as soon as
  // possible", section II.2): their VL has strict priority and a
  // separate credit pool.
  if (!cnp_queue_.empty()) {
    const ib::Packet& cnp = arena.get(cnp_queue_.front());
    if (bank_.credit(0, cnp.vl).can_send(cnp.bytes)) {
      grant(sched, cnp_queue_.pop_front(arena));
      return;
    }
    // CNP blocked on its VL credits; data below may still proceed.
  }

  if (staged_ == ib::kNullPacket && source_ != nullptr) {
    TrafficSource::Poll res = source_->poll(now);
    staged_ = res.pkt;
    if (staged_ == ib::kNullPacket) {
      maybe_schedule_retry(sched, res.retry_at);
      return;
    }
    IBSIM_ASSERT(arena.get(staged_).src == node_, "source produced a packet for another node");
  }
  if (staged_ == ib::kNullPacket) return;
  const ib::Packet& staged = arena.get(staged_);
  if (!bank_.credit(0, staged.vl).can_send(staged.bytes)) return;  // wait for credits

  const ib::PacketHandle h = staged_;
  staged_ = ib::kNullPacket;
  grant(sched, h);
}

void Hca::grant(core::Scheduler& sched, ib::PacketHandle h) {
  const core::Time now = sched.now();
  ib::Packet& pkt = arena_->get(h);
  bank_.credit(0, pkt.vl).consume(pkt.bytes);
  // Pacing below wire speed models the PCIe injection bottleneck: the
  // port stays "busy" for the paced interval even though the wire
  // serializes faster.
  out_.busy_until = now + out_.pace_time(pkt.bytes);
  out_.tx_bytes += pkt.bytes;
  ++out_.tx_packets;
  pkt.injected_at = now;
  injected_bytes_ += pkt.bytes;
  ++injected_packets_;

  // Hoisted before the send: a cross-shard send_packet releases `h`.
  // (HCA uplinks are always shard-local by the partition invariant, but
  // the rule is cheap and uniform.)
  const bool is_cnp = pkt.is_cnp;
  const ib::NodeId pkt_dst = pkt.dst;
  const std::int32_t pkt_bytes = pkt.bytes;

  core::Time arrive = now + out_.prop_delay + out_.rx_pipeline_delay;
  if (!fabric_->params().cut_through) arrive += out_.ser_time(pkt_bytes);
  fabric_->send_packet(sched, dev_, arrive, out_.peer_dev, out_.peer_port, h);
  if (!fast_path_) {
    sched.schedule_at(out_.busy_until, this, kEvLinkFree, 0, 0);
  } else if (!cnp_queue_.empty() || staged_ != ib::kNullPacket || source_ != nullptr) {
    // More to send — or a source whose poll() must run at the wakeup
    // (polling mutates generator state, so it cannot be deferred):
    // schedule eagerly, slow-path style.
    out_.wake = WakeState::kScheduled;
    out_.wake_seq = sched.schedule_at(out_.busy_until, this, kEvLinkFree, 0, 0);
  } else {
    // Source-less node (pure receiver answering with CNPs) with nothing
    // queued: elide the wakeup, burning its sequence slot.
    out_.wake = WakeState::kElided;
    out_.wake_seq = sched.reserve_seq();
  }

  if (!is_cnp) {
    // The injection-rate delay for this flow's next packet starts when
    // this one finishes.
    cc_agent_->on_data_granted(pkt_dst, pkt_bytes, out_.busy_until);
  }
}

void Hca::maybe_schedule_retry(core::Scheduler& sched, core::Time at) {
  if (at == core::kTimeNever) return;
  if (at <= sched.now()) at = sched.now() + 1;
  if (retry_at_ <= at) return;  // an earlier (or equal) retry is pending
  retry_at_ = at;
  sched.schedule_at(at, this, kEvRetryInject, 0, 0);
}

void Hca::receive(core::Scheduler& sched, ib::PacketHandle h) {
  ib::PacketArena& arena = *arena_;
  const ib::Vl vl = arena.get(h).vl;
  rx_[vl].push_back(arena, h);
  rx_active_vls_ |= static_cast<std::uint16_t>(1u << vl);
  try_drain(sched);
}

void Hca::try_drain(core::Scheduler& sched) {
  if (draining_ != ib::kNullPacket) return;
  if (rx_active_vls_ == 0) return;
  // CNP VL first so BECNs reach the CC agent with minimum delay, then
  // the lowest nonempty VL — one word test instead of scanning queues.
  const ib::Vl cnp_vl = fabric_->params().cnp_vl();
  const ib::Vl vl = (rx_active_vls_ & (1u << cnp_vl)) != 0
                        ? cnp_vl
                        : static_cast<ib::Vl>(std::countr_zero(rx_active_vls_));
  ib::PacketArena& arena = *arena_;
  ib::PacketQueue* queue = &rx_[vl];
  draining_ = queue->pop_front(arena);
  if (queue->empty()) rx_active_vls_ &= static_cast<std::uint16_t>(~(1u << vl));
  const core::Time done =
      sched.now() + core::transmit_time(arena.get(draining_).bytes, drain_gbps_);
  sched.schedule_at(done, this, kEvSinkFree, 0, 0);
}

void Hca::finish_drain(core::Scheduler& sched) {
  const ib::PacketHandle h = draining_;
  IBSIM_ASSERT(h != ib::kNullPacket, "sink-free event without a draining packet");
  draining_ = ib::kNullPacket;
  const core::Time now = sched.now();
  // Copy the packet out of the arena before running the callbacks below:
  // on_fecn can send a CNP and the observer can nudge a workload rank,
  // both of which allocate — and an allocation may grow the arena,
  // invalidating any reference into it.
  const ib::Packet pkt = arena_->get(h);

  // The packet has left the HCA input buffer: flow-control credits go
  // back to the last switch.
  fabric_->schedule_credit_return(sched, dev_, 0, pkt.vl, pkt.bytes, now);

  if (pkt.is_cnp) {
    cc_agent_->on_becn(pkt.flow_dst, now);
  } else {
    delivered_bytes_ += pkt.bytes;
    ++delivered_packets_;
    if (pkt.fecn) {
      ++fecn_delivered_;
      cc_agent_->on_fecn(pkt.src);
    }
    if (observer_ != nullptr) observer_->on_delivered(node_, pkt, now);
  }
  arena_->release(h);
  try_drain(sched);
}

}  // namespace ibsim::fabric
