#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/ca_cc.hpp"
#include "cc/cc_manager.hpp"
#include "core/event.hpp"
#include "fabric/interfaces.hpp"
#include "fabric/output_port.hpp"
#include "fabric/port_state.hpp"
#include "fabric/telemetry_hooks.hpp"
#include "ib/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/topology.hpp"

namespace ibsim::fabric {

class Fabric;

/// A host channel adapter: traffic injection (paced at the PCIe-limited
/// rate, CNPs ahead of data, per-flow IRD throttling via the CC agent)
/// and the receive path (per-VL receive queues drained by the sink at the
/// calibrated end-node rate, FECN-to-CNP turnaround, metrics delivery).
///
/// Packets are arena handles throughout; the per-VL credit balances live
/// in a one-port PortVlBank (no CC detectors — an HCA never marks FECN).
class Hca final : public core::EventHandler, public cc::CnpSender {
 public:
  Hca(Fabric* fabric, topo::DeviceId dev, ib::NodeId node, std::int32_t n_nodes,
      const cc::CcManager& ccm);

  /// Attach the generator polled for data packets. May be null (a node
  /// that only receives).
  void attach_source(TrafficSource* source) { source_ = source; }
  void attach_observer(SinkObserver* observer) { observer_ = observer; }

  /// Kick off injection at the current simulation time.
  void start(core::Scheduler& sched);

  void on_event(core::Scheduler& sched, const core::Event& ev) override;

  /// cc::CnpSender: queue a congestion notification ahead of data.
  void send_cnp(ib::NodeId to, ib::NodeId flow_dst) override;

  /// Ask the injection path to re-poll the source (used when external
  /// state such as a hotspot move makes a source ready again).
  void nudge(core::Scheduler& sched) { try_inject(sched); }

  [[nodiscard]] ib::NodeId node() const { return node_; }
  [[nodiscard]] topo::DeviceId device_id() const { return dev_; }
  [[nodiscard]] cc::CaCcAgent& cc_agent() { return *cc_agent_; }
  [[nodiscard]] const cc::CaCcAgent& cc_agent() const { return *cc_agent_; }
  [[nodiscard]] OutputPort& out() { return out_; }

  /// The flat per-VL state bank of the single uplink port (port 0).
  [[nodiscard]] PortVlBank& bank() { return bank_; }
  [[nodiscard]] const PortVlBank& bank() const { return bank_; }

  [[nodiscard]] std::int64_t injected_bytes() const { return injected_bytes_; }
  [[nodiscard]] std::uint64_t injected_packets() const { return injected_packets_; }
  [[nodiscard]] std::int64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] std::uint64_t fecn_delivered() const { return fecn_delivered_; }

  /// Install observability (called by Fabric::attach_telemetry): the CNP
  /// probe on this HCA plus the CC agent's hooks. Detailed mode adds a
  /// per-node CCTI gauge.
  void attach_telemetry(telemetry::Telemetry* telemetry, const FabricCounters& counters);

 private:
  friend class Fabric;  // wiring

  void try_inject(core::Scheduler& sched);
  void grant(core::Scheduler& sched, ib::PacketHandle h);
  void maybe_schedule_retry(core::Scheduler& sched, core::Time at);
  void receive(core::Scheduler& sched, ib::PacketHandle h);
  void try_drain(core::Scheduler& sched);
  void finish_drain(core::Scheduler& sched);

  Fabric* fabric_;
  topo::DeviceId dev_;
  ib::NodeId node_;
  bool fast_path_;  ///< FabricParams::fast_path, cached off the hot path
  /// This device's shard-local arena and scheduler (the fabric-wide ones
  /// when the fabric is serial). Cached so the hot paths never consult
  /// the shard map.
  ib::PacketArena* arena_ = nullptr;
  core::Scheduler* home_sched_ = nullptr;

  // Injection side.
  OutputPort out_;
  PortVlBank bank_;  ///< port 0 only: per-VL credits + coalesce accumulators
  ib::PacketHandle staged_ = ib::kNullPacket;  ///< data packet waiting for credits
  ib::PacketQueue cnp_queue_;
  TrafficSource* source_ = nullptr;
  core::Time retry_at_ = core::kTimeNever;

  // Receive side.
  std::vector<ib::PacketQueue> rx_;  ///< per VL
  std::uint16_t rx_active_vls_ = 0;  ///< bit vl set iff rx_[vl] nonempty
  ib::PacketHandle draining_ = ib::kNullPacket;
  double drain_gbps_ = 13.6;
  SinkObserver* observer_ = nullptr;

  std::unique_ptr<cc::CaCcAgent> cc_agent_;

  // Telemetry (null when not attached).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::CounterRegistry* registry_ = nullptr;
  FabricCounters counters_;

  std::int64_t injected_bytes_ = 0;
  std::uint64_t injected_packets_ = 0;
  std::int64_t delivered_bytes_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t fecn_delivered_ = 0;
};

}  // namespace ibsim::fabric
