#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cc_manager.hpp"
#include "core/scheduler.hpp"
#include "fabric/hca.hpp"
#include "fabric/params.hpp"
#include "fabric/switch_device.hpp"
#include "fabric/telemetry_hooks.hpp"
#include "ib/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace ibsim::fabric {

/// The instantiated network: one SwitchDevice per topology switch, one
/// Hca per end node, links wired with rates, delays and initial credit
/// balances, and CC configured everywhere from the CcManager.
///
/// The Fabric borrows the topology, routing tables, CC manager and
/// scheduler — they must outlive it. Traffic sources and the sink
/// observer are attached afterwards by the simulation builder.
///
/// All packets live in one per-fabric PacketArena and travel as 32-bit
/// handles; the arena is pre-sized to the fabric's scale so steady-state
/// operation performs no per-packet allocation.
class Fabric {
 public:
  /// Spatial decomposition for the sharded engine: which shard owns each
  /// device, and the per-shard scheduler each shard's events run on.
  /// The referenced shard_of_device vector and schedulers must outlive
  /// the Fabric (the simulation owns both).
  struct ShardLayout {
    const std::vector<std::int32_t>* shard_of_device = nullptr;  // by DeviceId
    std::vector<core::Scheduler*> scheds;                        // one per shard
  };

  Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
         const FabricParams& params, const cc::CcManager& ccm, core::Scheduler& sched);

  /// Sharded construction: devices are owned by shards, each with its own
  /// scheduler and packet arena; packets and credits that cross a shard
  /// boundary go through mailboxes drained at window barriers instead of
  /// being scheduled directly (DESIGN.md §15).
  Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
         const FabricParams& params, const cc::CcManager& ccm, const ShardLayout& layout);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] Hca& hca(ib::NodeId node) { return *hcas_[static_cast<std::size_t>(node)]; }
  [[nodiscard]] const Hca& hca(ib::NodeId node) const {
    return *hcas_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::int32_t node_count() const { return static_cast<std::int32_t>(hcas_.size()); }
  [[nodiscard]] SwitchDevice& switch_at(std::size_t i) { return *switches_[i]; }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }

  [[nodiscard]] core::Scheduler& sched() { return *sched_; }
  [[nodiscard]] ib::PacketArena& arena() { return arena_; }
  [[nodiscard]] const ib::PacketArena& arena() const { return arena_; }

  // Shard topology of this fabric (serial fabrics are one big shard).
  [[nodiscard]] std::int32_t n_shards() const { return n_shards_; }
  [[nodiscard]] std::int32_t shard_of(topo::DeviceId dev) const {
    return shard_of_.empty() ? 0 : shard_of_[static_cast<std::size_t>(dev)];
  }
  /// Scheduler that runs `dev`'s events (the serial scheduler when the
  /// fabric is not sharded).
  [[nodiscard]] core::Scheduler& sched_for(topo::DeviceId dev) {
    return shard_scheds_.empty() ? *sched_ : *shard_scheds_[static_cast<std::size_t>(shard_of(dev))];
  }
  /// Arena that owns packets created or buffered at `dev`.
  [[nodiscard]] ib::PacketArena& arena_for(topo::DeviceId dev) {
    return shard_arenas_.empty() ? arena_ : *shard_arenas_[static_cast<std::size_t>(shard_of(dev))];
  }
  /// Arena for packets injected by end node `node` (traffic generators).
  [[nodiscard]] ib::PacketArena& arena_for_node(ib::NodeId node) {
    return arena_for(topo_->hca_device(node));
  }
  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const cc::CcManager& cc_manager() const { return *ccm_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
  [[nodiscard]] const topo::RoutingTables& routing() const { return *routing_; }

  /// Event-handler of any device (for cross-device event scheduling).
  [[nodiscard]] core::EventHandler* handler(topo::DeviceId dev) {
    return handlers_[static_cast<std::size_t>(dev)];
  }

  /// Schedule the flow-control credit refund for a packet that leaves the
  /// input buffer of (`dev`, `in_port`) at `tail_time`, addressed to the
  /// upstream sender's output port. `sched` is the scheduler of `dev`'s
  /// shard; when the upstream port lives in another shard the refund is
  /// deposited in that shard's mailbox instead of scheduled directly.
  void schedule_credit_return(core::Scheduler& sched, topo::DeviceId dev, std::int32_t in_port,
                              ib::Vl vl, std::int32_t bytes, core::Time tail_time);

  /// Deliver packet `h` (owned by `from_dev`'s arena) to (`to_dev`,
  /// `to_port`) at time `arrive`. Same shard: a plain kEvPacketArrive on
  /// `sched`, bit-identical to scheduling it directly. Cross-shard: the
  /// packet is copied into the destination shard's mailbox and the local
  /// handle released — after this call `h` must not be touched.
  void send_packet(core::Scheduler& sched, topo::DeviceId from_dev, core::Time arrive,
                   topo::DeviceId to_dev, std::int32_t to_port, ib::PacketHandle h);

  /// Drain every mailbox addressed to `dst_shard` into that shard's
  /// scheduler, in ascending source-shard order (the deterministic merge
  /// order — see DESIGN.md §15). Called at window barriers by the owner
  /// of `dst_shard` only; touches no other shard's state.
  void drain_mailboxes_into(std::int32_t dst_shard);

  /// Cross-shard traffic since construction (mailbox deposits).
  [[nodiscard]] std::uint64_t crossed_packets() const;
  [[nodiscard]] std::uint64_t crossed_credits() const;

  /// Start all HCA injectors.
  void start(core::Scheduler& sched);

  /// Install observability fabric-wide: register the aggregate counters
  /// and gauges, name the trace tracks, publish the CC configuration, and
  /// hand every device its probes. Pass null to detach. Observation-only —
  /// attaching telemetry never changes simulated behaviour.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Recompute the fabric-wide gauges (queued bytes, active CC flows,
  /// CCTI mass) from current device state. Called by the CSV sampler and
  /// before counter snapshots; a no-op when telemetry is not attached.
  void refresh_gauges();

  /// Override the data rate of one direction of a link (the output port
  /// (dev, port) serializes and paces at `gbps` from now on). Models
  /// link frequency/voltage scaling — one of the congestion causes the
  /// paper's introduction lists. Call before or during a run.
  void set_link_rate(topo::DeviceId dev, std::int32_t port, double gbps);

  // Fabric-wide statistics.
  [[nodiscard]] std::uint64_t total_fecn_marked() const;
  /// Bytes currently waiting in switch VoQs fabric-wide: the live size of
  /// every congestion tree (telemetry).
  [[nodiscard]] std::int64_t total_queued_bytes() const;
  /// Throttled flows and their CCTI mass across every HCA (telemetry).
  [[nodiscard]] std::int32_t total_active_cc_flows() const;
  [[nodiscard]] std::int64_t total_ccti_sum() const;
  [[nodiscard]] std::uint64_t total_becn_received() const;
  [[nodiscard]] std::uint64_t total_cnps_sent() const;
  [[nodiscard]] std::int64_t total_injected_bytes() const;
  [[nodiscard]] std::int64_t total_delivered_bytes() const;
  /// Packets handed to sinks across every HCA (lifetime of the run).
  [[nodiscard]] std::uint64_t total_delivered_packets() const;

 private:
  Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
         const FabricParams& params, const cc::CcManager& ccm, core::Scheduler* sched,
         const ShardLayout* layout);

  void wire_output(OutputPort& op, PortVlBank& bank, std::int32_t port, topo::PortRef self,
                   topo::PortRef peer, bool from_hca);

  /// The OutputPort object behind (dev, port), switch or HCA.
  [[nodiscard]] OutputPort& output_port_at(topo::DeviceId dev, std::int32_t port);
  /// The PortVlBank owning (dev, *)'s per-VL state, switch or HCA.
  [[nodiscard]] PortVlBank& port_bank_at(topo::DeviceId dev);

  /// Credit-coalescing candidate (fast path): the most recently scheduled
  /// deferred credit event. A later return for the same (dev, port, vl)
  /// at the same timestamp merges into it — adding to the port's
  /// pending_credit accumulator and burning the event's sequence slot —
  /// provided no other event was scheduled at that timestamp in between
  /// (Scheduler::watch_hit proves the merge window is unobservable).
  struct CoalesceCandidate {
    topo::DeviceId dev = topo::kInvalidDevice;
    std::int32_t port = -1;
    ib::Vl vl = 0;
    core::Time at = core::kTimeNever;
  };
  /// One candidate per shard (a single entry when serial): coalescing is
  /// a per-scheduler optimization, so each shard merges only into events
  /// on its own queue.
  std::vector<CoalesceCandidate> coal_;

  /// A boundary crossing parked until the next window barrier. Packets
  /// travel by value — the handle is released in the source arena and
  /// re-allocated in the destination arena at drain time.
  struct PacketMsg {
    core::Time at;
    topo::DeviceId dst_dev;
    std::int32_t dst_port;
    ib::Packet pkt;
  };
  struct CreditMsg {
    core::Time at;
    topo::DeviceId dev;  // upstream device whose output port is refunded
    std::int32_t port;
    ib::Vl vl;
    std::int32_t bytes;
  };
  /// SPSC by protocol: mailbox (src, dst) is written only by src's owner
  /// thread during a window and read only by dst's owner at the barrier.
  struct Mailbox {
    std::vector<PacketMsg> packets;
    std::vector<CreditMsg> credits;
  };

  std::int32_t n_shards_ = 1;
  std::vector<std::int32_t> shard_of_;              // empty when serial
  std::vector<core::Scheduler*> shard_scheds_;      // empty when serial
  std::vector<std::unique_ptr<ib::PacketArena>> shard_arenas_;
  std::vector<Mailbox> mail_;                       // indexed src * n_shards_ + dst
  struct ShardTraffic {
    std::uint64_t packets = 0;
    std::uint64_t credits = 0;
  };
  std::vector<ShardTraffic> crossings_;             // per source shard

  const topo::Topology* topo_;
  const topo::RoutingTables* routing_;
  FabricParams params_;
  const cc::CcManager* ccm_;
  core::Scheduler* sched_;

  ib::PacketArena arena_;
  std::vector<std::unique_ptr<SwitchDevice>> switches_;
  std::vector<std::unique_ptr<Hca>> hcas_;
  std::vector<core::EventHandler*> handlers_;

  // Telemetry (null when not attached).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::CounterRegistry::Handle g_queued_bytes_;
  telemetry::CounterRegistry::Handle g_active_cc_flows_;
  telemetry::CounterRegistry::Handle g_ccti_sum_;
};

}  // namespace ibsim::fabric
