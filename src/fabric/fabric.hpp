#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cc/cc_manager.hpp"
#include "core/scheduler.hpp"
#include "fabric/hca.hpp"
#include "fabric/params.hpp"
#include "fabric/switch_device.hpp"
#include "fabric/telemetry_hooks.hpp"
#include "ib/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"

namespace ibsim::fabric {

/// The instantiated network: one SwitchDevice per topology switch, one
/// Hca per end node, links wired with rates, delays and initial credit
/// balances, and CC configured everywhere from the CcManager.
///
/// The Fabric borrows the topology, routing tables, CC manager and
/// scheduler — they must outlive it. Traffic sources and the sink
/// observer are attached afterwards by the simulation builder.
///
/// All packets live in one per-fabric PacketArena and travel as 32-bit
/// handles; the arena is pre-sized to the fabric's scale so steady-state
/// operation performs no per-packet allocation.
class Fabric {
 public:
  Fabric(const topo::Topology& topo, const topo::RoutingTables& routing,
         const FabricParams& params, const cc::CcManager& ccm, core::Scheduler& sched);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  [[nodiscard]] Hca& hca(ib::NodeId node) { return *hcas_[static_cast<std::size_t>(node)]; }
  [[nodiscard]] const Hca& hca(ib::NodeId node) const {
    return *hcas_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::int32_t node_count() const { return static_cast<std::int32_t>(hcas_.size()); }
  [[nodiscard]] SwitchDevice& switch_at(std::size_t i) { return *switches_[i]; }
  [[nodiscard]] std::size_t switch_count() const { return switches_.size(); }

  [[nodiscard]] core::Scheduler& sched() { return *sched_; }
  [[nodiscard]] ib::PacketArena& arena() { return arena_; }
  [[nodiscard]] const ib::PacketArena& arena() const { return arena_; }
  [[nodiscard]] const FabricParams& params() const { return params_; }
  [[nodiscard]] const cc::CcManager& cc_manager() const { return *ccm_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topo_; }
  [[nodiscard]] const topo::RoutingTables& routing() const { return *routing_; }

  /// Event-handler of any device (for cross-device event scheduling).
  [[nodiscard]] core::EventHandler* handler(topo::DeviceId dev) {
    return handlers_[static_cast<std::size_t>(dev)];
  }

  /// Schedule the flow-control credit refund for a packet that leaves the
  /// input buffer of (`dev`, `in_port`) at `tail_time`, addressed to the
  /// upstream sender's output port.
  void schedule_credit_return(topo::DeviceId dev, std::int32_t in_port, ib::Vl vl,
                              std::int32_t bytes, core::Time tail_time);

  /// Start all HCA injectors.
  void start(core::Scheduler& sched);

  /// Install observability fabric-wide: register the aggregate counters
  /// and gauges, name the trace tracks, publish the CC configuration, and
  /// hand every device its probes. Pass null to detach. Observation-only —
  /// attaching telemetry never changes simulated behaviour.
  void attach_telemetry(telemetry::Telemetry* telemetry);

  /// Recompute the fabric-wide gauges (queued bytes, active CC flows,
  /// CCTI mass) from current device state. Called by the CSV sampler and
  /// before counter snapshots; a no-op when telemetry is not attached.
  void refresh_gauges();

  /// Override the data rate of one direction of a link (the output port
  /// (dev, port) serializes and paces at `gbps` from now on). Models
  /// link frequency/voltage scaling — one of the congestion causes the
  /// paper's introduction lists. Call before or during a run.
  void set_link_rate(topo::DeviceId dev, std::int32_t port, double gbps);

  // Fabric-wide statistics.
  [[nodiscard]] std::uint64_t total_fecn_marked() const;
  /// Bytes currently waiting in switch VoQs fabric-wide: the live size of
  /// every congestion tree (telemetry).
  [[nodiscard]] std::int64_t total_queued_bytes() const;
  /// Throttled flows and their CCTI mass across every HCA (telemetry).
  [[nodiscard]] std::int32_t total_active_cc_flows() const;
  [[nodiscard]] std::int64_t total_ccti_sum() const;
  [[nodiscard]] std::uint64_t total_becn_received() const;
  [[nodiscard]] std::uint64_t total_cnps_sent() const;
  [[nodiscard]] std::int64_t total_injected_bytes() const;
  [[nodiscard]] std::int64_t total_delivered_bytes() const;
  /// Packets handed to sinks across every HCA (lifetime of the run).
  [[nodiscard]] std::uint64_t total_delivered_packets() const;

 private:
  void wire_output(OutputPort& op, PortVlBank& bank, std::int32_t port, topo::PortRef self,
                   topo::PortRef peer, bool from_hca);

  /// The OutputPort object behind (dev, port), switch or HCA.
  [[nodiscard]] OutputPort& output_port_at(topo::DeviceId dev, std::int32_t port);
  /// The PortVlBank owning (dev, *)'s per-VL state, switch or HCA.
  [[nodiscard]] PortVlBank& port_bank_at(topo::DeviceId dev);

  /// Credit-coalescing candidate (fast path): the most recently scheduled
  /// deferred credit event. A later return for the same (dev, port, vl)
  /// at the same timestamp merges into it — adding to the port's
  /// pending_credit accumulator and burning the event's sequence slot —
  /// provided no other event was scheduled at that timestamp in between
  /// (Scheduler::watch_hit proves the merge window is unobservable).
  struct CoalesceCandidate {
    topo::DeviceId dev = topo::kInvalidDevice;
    std::int32_t port = -1;
    ib::Vl vl = 0;
    core::Time at = core::kTimeNever;
  };
  CoalesceCandidate coal_;

  const topo::Topology* topo_;
  const topo::RoutingTables* routing_;
  FabricParams params_;
  const cc::CcManager* ccm_;
  core::Scheduler* sched_;

  ib::PacketArena arena_;
  std::vector<std::unique_ptr<SwitchDevice>> switches_;
  std::vector<std::unique_ptr<Hca>> hcas_;
  std::vector<core::EventHandler*> handlers_;

  // Telemetry (null when not attached).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::CounterRegistry::Handle g_queued_bytes_;
  telemetry::CounterRegistry::Handle g_active_cc_flows_;
  telemetry::CounterRegistry::Handle g_ccti_sum_;
};

}  // namespace ibsim::fabric
