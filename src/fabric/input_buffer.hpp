#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "ib/packet.hpp"
#include "ib/types.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::fabric {

/// One switch input buffer (the model's `ibuf`): virtual output queues
/// per (output port, VL), supporting virtual cut-through forwarding.
///
/// Physical capacity is not enforced here — the lossless guarantee lives
/// in the *sender's* CreditTracker, which never lets more bytes into this
/// buffer than the VL capacity advertised at wiring time. The occupancy
/// counters exist for invariant checks and statistics.
class InputBuffer {
 public:
  void init(std::int32_t n_outputs, std::int32_t n_vls) {
    n_outputs_ = n_outputs;
    n_vls_ = n_vls;
    voqs_.assign(static_cast<std::size_t>(n_outputs) * static_cast<std::size_t>(n_vls),
                 ib::PacketQueue{});
    vl_bytes_.assign(static_cast<std::size_t>(n_vls), 0);
  }

  [[nodiscard]] ib::PacketQueue& voq(std::int32_t out, ib::Vl vl) {
    return voqs_[slot(out, vl)];
  }
  [[nodiscard]] const ib::PacketQueue& voq(std::int32_t out, ib::Vl vl) const {
    return voqs_[slot(out, vl)];
  }

  void enqueue(std::int32_t out, ib::Vl vl, ib::Packet* pkt) {
    voq(out, vl).push_back(pkt);
    vl_bytes_[vl] += pkt->bytes;
    if (probe_registry_ != nullptr) probe_registry_->set(probe_gauges_[vl], vl_bytes_[vl]);
  }

  [[nodiscard]] ib::Packet* dequeue(std::int32_t out, ib::Vl vl) {
    ib::Packet* pkt = voq(out, vl).pop_front();
    vl_bytes_[vl] -= pkt->bytes;
    IBSIM_ASSERT(vl_bytes_[vl] >= 0, "input buffer occupancy underflow");
    if (probe_registry_ != nullptr) probe_registry_->set(probe_gauges_[vl], vl_bytes_[vl]);
    return pkt;
  }

  /// Bytes resident in this buffer on `vl` (all VoQs).
  [[nodiscard]] std::int64_t vl_bytes(ib::Vl vl) const { return vl_bytes_[vl]; }

  [[nodiscard]] std::int32_t n_outputs() const { return n_outputs_; }
  [[nodiscard]] std::int32_t n_vls() const { return n_vls_; }

  /// Telemetry: mirror each VL's occupancy into the given gauges
  /// (`handles[vl]`) on every enqueue/dequeue. Null registry disables the
  /// probe — the only hot-path cost then is one pointer test.
  void set_probe(telemetry::CounterRegistry* registry,
                 std::vector<telemetry::CounterRegistry::Handle> handles) {
    IBSIM_ASSERT(registry == nullptr ||
                     handles.size() == static_cast<std::size_t>(n_vls_),
                 "input-buffer probe needs one gauge per VL");
    probe_registry_ = registry;
    probe_gauges_ = std::move(handles);
  }

 private:
  [[nodiscard]] std::size_t slot(std::int32_t out, ib::Vl vl) const {
    IBSIM_ASSERT(out >= 0 && out < n_outputs_ && vl < n_vls_, "VoQ index out of range");
    return static_cast<std::size_t>(out) * static_cast<std::size_t>(n_vls_) +
           static_cast<std::size_t>(vl);
  }

  std::int32_t n_outputs_ = 0;
  std::int32_t n_vls_ = 0;
  std::vector<ib::PacketQueue> voqs_;
  std::vector<std::int64_t> vl_bytes_;
  telemetry::CounterRegistry* probe_registry_ = nullptr;
  std::vector<telemetry::CounterRegistry::Handle> probe_gauges_;
};

}  // namespace ibsim::fabric
