#pragma once

#include "telemetry/counters.hpp"

namespace ibsim::fabric {

/// Fabric-wide aggregate counters, registered once by
/// Fabric::attach_telemetry and shared (by handle) with every device, so
/// each hot-path update is a single indexed add.
struct FabricCounters {
  telemetry::CounterRegistry::Handle fecn_marked;     ///< packets FECN-marked by switches
  telemetry::CounterRegistry::Handle becn_sent;       ///< CNPs queued by destination HCAs
  telemetry::CounterRegistry::Handle becn_delivered;  ///< BECNs that reached a source CA
  telemetry::CounterRegistry::Handle throttle_events; ///< flows entering the throttled set
  telemetry::CounterRegistry::Handle credit_stalls;   ///< output ports blocked on credits
  telemetry::CounterRegistry::Handle credit_stall_ps; ///< total blocked time (ps)
  telemetry::CounterRegistry::Handle arb_grants;      ///< VL-arbitration grants
};

}  // namespace ibsim::fabric
