#include "fabric/vl_arbiter.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace ibsim::fabric {

void VlArbiter::configure(std::span<const VlArbEntry> high, std::span<const VlArbEntry> low,
                          std::uint8_t high_limit) {
  IBSIM_ASSERT(!high.empty() || !low.empty(), "VL arbiter needs at least one entry");
  IBSIM_ASSERT(high.size() <= kMaxEntries && low.size() <= kMaxEntries,
               "VL arbiter table exceeds the inline capacity");
  for (const auto& e : high) IBSIM_ASSERT(e.weight > 0, "VL arb weight must be positive");
  for (const auto& e : low) IBSIM_ASSERT(e.weight > 0, "VL arb weight must be positive");
  std::copy(high.begin(), high.end(), high_.entries.begin());
  high_.size = high.size();
  std::copy(low.begin(), low.end(), low_.entries.begin());
  low_.size = low.size();
  high_limit_ = high_limit;
  hi_bytes_since_yield_ = 0;
  last_from_high_ = false;
  hi_idx_ = lo_idx_ = 0;
  hi_left_ = high_.size == 0 ? 0 : high_.entries.front().weight;
  lo_left_ = low_.size == 0 ? 0 : low_.entries.front().weight;
}

VlArbiter VlArbiter::make_default(std::int32_t n_vls, ib::Vl cnp_vl) {
  VlArbiter arb;
  std::array<VlArbEntry, kMaxEntries> high{};
  std::array<VlArbEntry, kMaxEntries> low{};
  std::size_t n_high = 0;
  std::size_t n_low = 0;
  for (std::int32_t vl = 0; vl < n_vls; ++vl) {
    if (n_vls > 1 && static_cast<ib::Vl>(vl) == cnp_vl) {
      high[n_high++] = VlArbEntry{static_cast<ib::Vl>(vl), 1};
    } else {
      low[n_low++] = VlArbEntry{static_cast<ib::Vl>(vl), 64};
    }
  }
  if (n_high == 0 && n_low == 0) low[n_low++] = VlArbEntry{0, 64};
  arb.configure(std::span<const VlArbEntry>(high.data(), n_high),
                std::span<const VlArbEntry>(low.data(), n_low));
  return arb;
}

}  // namespace ibsim::fabric
