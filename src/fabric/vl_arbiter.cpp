#include "fabric/vl_arbiter.hpp"

#include "core/assert.hpp"

namespace ibsim::fabric {

void VlArbiter::configure(std::vector<VlArbEntry> high, std::vector<VlArbEntry> low,
                          std::uint8_t high_limit) {
  IBSIM_ASSERT(!high.empty() || !low.empty(), "VL arbiter needs at least one entry");
  for (const auto& e : high) IBSIM_ASSERT(e.weight > 0, "VL arb weight must be positive");
  for (const auto& e : low) IBSIM_ASSERT(e.weight > 0, "VL arb weight must be positive");
  high_ = std::move(high);
  low_ = std::move(low);
  high_limit_ = high_limit;
  hi_bytes_since_yield_ = 0;
  last_from_high_ = false;
  hi_idx_ = lo_idx_ = 0;
  hi_left_ = high_.empty() ? 0 : high_.front().weight;
  lo_left_ = low_.empty() ? 0 : low_.front().weight;
}

VlArbiter VlArbiter::make_default(std::int32_t n_vls, ib::Vl cnp_vl) {
  VlArbiter arb;
  std::vector<VlArbEntry> high;
  std::vector<VlArbEntry> low;
  for (std::int32_t vl = 0; vl < n_vls; ++vl) {
    if (n_vls > 1 && static_cast<ib::Vl>(vl) == cnp_vl) {
      high.push_back(VlArbEntry{static_cast<ib::Vl>(vl), 1});
    } else {
      low.push_back(VlArbEntry{static_cast<ib::Vl>(vl), 64});
    }
  }
  if (high.empty() && low.empty()) low.push_back(VlArbEntry{0, 64});
  arb.configure(std::move(high), std::move(low));
  return arb;
}

}  // namespace ibsim::fabric
