#pragma once

#include <cstdint>
#include <string>

#include "core/time.hpp"
#include "ib/types.hpp"

namespace ibsim::fabric {

/// Physical and architectural parameters of the fabric, calibrated so the
/// model reproduces the end-node rates of the hardware the paper's
/// simulator was tuned against (Mellanox MTS3600 switches, PCIe v1.1
/// HCAs, 4x DDR links):
///
///  * links signal at 20 Gb/s; after 8b/10b encoding the data rate is
///    16 Gb/s — `wire_gbps`;
///  * an HCA cannot inject faster than 13.5 Gb/s (PCIe v1.1 protocol
///    overhead; paper section V-A footnote) — `hca_inject_gbps`;
///  * an HCA sinks at most 13.6 Gb/s, "approximately 0.1 Gb/s higher
///    than the injection rate" — `hca_drain_gbps`.
struct FabricParams {
  double wire_gbps = 16.0;
  double hca_inject_gbps = 13.5;
  double hca_drain_gbps = 13.6;

  /// Cable propagation plus SerDes latency per link.
  core::Time link_delay = 30 * core::kNanosecond;
  /// Switch ingress pipeline (routing decision, VoQ insertion).
  core::Time switch_delay = 200 * core::kNanosecond;
  /// HCA receive pipeline before a packet reaches the sink queue.
  core::Time hca_rx_delay = 300 * core::kNanosecond;
  /// Processing latency of a credit update at the sender, added on top of
  /// the link propagation of the flow-control packet.
  core::Time credit_delay = 50 * core::kNanosecond;

  /// Number of virtual lanes. VL0 carries data; the last VL carries CNPs
  /// when `cnp_on_own_vl` is set (the default), so the CC feedback loop
  /// has credits independent of the congestion it reports on.
  std::int32_t n_vls = ib::kDefaultVlCount;
  bool cnp_on_own_vl = true;

  /// Input buffering per switch port for the data VL (the credit pool a
  /// sender sees). 32 KiB = 16 MTU packets.
  std::int64_t switch_ibuf_data_bytes = 32 * 1024;
  /// Input buffering per switch port for the CNP VL.
  std::int64_t switch_ibuf_cnp_bytes = 4 * 1024;
  /// Input buffering at an HCA (between last switch and the sink).
  std::int64_t hca_ibuf_data_bytes = 16 * 1024;
  std::int64_t hca_ibuf_cnp_bytes = 4 * 1024;

  /// Virtual cut-through (packets eligible for forwarding at header
  /// arrival) versus store-and-forward.
  bool cut_through = true;

  /// Fabric event fast path: elide no-op link wakeups (reserving their
  /// (at, seq) slots), skip arbitration on credit updates that arrive
  /// while the port is serializing, and coalesce same-(port, vl, time)
  /// credit returns into one event. Bit-identical simulation results on
  /// vs. off by construction (DESIGN.md §11); off runs the reference
  /// event-per-hop chain for A/B testing.
  bool fast_path = true;

  [[nodiscard]] ib::Vl cnp_vl() const {
    return cnp_on_own_vl && n_vls > 1 ? static_cast<ib::Vl>(n_vls - 1) : ib::kDataVl;
  }

  /// Credit pool capacity of one VL of one input buffer.
  [[nodiscard]] std::int64_t vl_capacity(ib::Vl vl, bool hca) const {
    const bool is_cnp_vl = (vl == cnp_vl()) && cnp_on_own_vl && n_vls > 1;
    if (hca) return is_cnp_vl ? hca_ibuf_cnp_bytes : hca_ibuf_data_bytes;
    return is_cnp_vl ? switch_ibuf_cnp_bytes : switch_ibuf_data_bytes;
  }

  /// Sanity-check against obviously broken setups. Returns an error
  /// string or empty.
  [[nodiscard]] std::string validate() const;
};

}  // namespace ibsim::fabric
