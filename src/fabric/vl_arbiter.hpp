#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>

#include "ib/types.hpp"

namespace ibsim::fabric {

/// One VL arbitration table entry: serve `vl` for up to `weight` packets
/// before yielding to the next entry (IBA weights are in 64-byte units;
/// packet granularity is the standard simulator simplification and is what
/// the paper's model arbitrates at, since whole packets are forwarded).
struct VlArbEntry {
  ib::Vl vl = 0;
  std::uint8_t weight = 1;
};

/// InfiniBand-style two-table VL arbiter: the high-priority table wins
/// over the low-priority table, bounded by the spec's HighPriority
/// limit — after `high_limit` 4 KiB blocks have been granted from the
/// high table without yielding, the low table gets one grant opportunity
/// so bulk lanes cannot starve (limit 255 disables the bound, per the
/// IBA convention). Within a table, weighted round-robin.
///
/// With the default fabric layout this gives CNPs (their own VL in the
/// high table) priority over bulk data, which is exactly the "notify
/// the source as quickly as possible" property section II.2 of the
/// paper calls for.
///
/// The tables are inline fixed-capacity arrays (IBA allows at most 15
/// data VLs), so an arbiter is a flat value type: the tens of thousands
/// of output ports in a large fabric carry no per-port heap blocks and
/// arbitration never leaves the port's cache lines.
class VlArbiter {
 public:
  VlArbiter() = default;

  /// The spec's "unlimited" HighPriority limit sentinel.
  static constexpr std::uint8_t kUnlimitedHighLimit = 255;

  /// Inline table capacity; covers the IBA VL space.
  static constexpr std::size_t kMaxEntries = 16;

  void configure(std::span<const VlArbEntry> high, std::span<const VlArbEntry> low,
                 std::uint8_t high_limit = kUnlimitedHighLimit);
  void configure(std::initializer_list<VlArbEntry> high,
                 std::initializer_list<VlArbEntry> low,
                 std::uint8_t high_limit = kUnlimitedHighLimit) {
    configure(std::span<const VlArbEntry>(high.begin(), high.size()),
              std::span<const VlArbEntry>(low.begin(), low.size()), high_limit);
  }

  /// Default tables for `n_vls` lanes: the CNP VL (if distinct) in the
  /// high-priority table, all other VLs with equal weight in the low one.
  [[nodiscard]] static VlArbiter make_default(std::int32_t n_vls, ib::Vl cnp_vl);

  /// Choose the next VL to serve among lanes for which `has_work(vl)`
  /// returns true. Returns -1 if no lane has work. Call granted() with
  /// the winning packet's size afterwards so the HighPriority limit
  /// accounting stays accurate.
  template <typename HasWork>
  [[nodiscard]] std::int32_t pick(HasWork&& has_work) {
    if (!high_exhausted()) {
      const std::int32_t hi = pick_from(high_, hi_idx_, hi_left_, has_work);
      if (hi >= 0) {
        last_from_high_ = true;
        return hi;
      }
    }
    const std::int32_t lo = pick_from(low_, lo_idx_, lo_left_, has_work);
    if (lo >= 0) {
      last_from_high_ = false;
      // The low table got its opportunity: the high table's budget
      // refills.
      hi_bytes_since_yield_ = 0;
      return lo;
    }
    if (high_exhausted()) {
      // Low table had nothing after all — let the high table continue.
      hi_bytes_since_yield_ = 0;
      const std::int32_t hi = pick_from(high_, hi_idx_, hi_left_, has_work);
      if (hi >= 0) {
        last_from_high_ = true;
        return hi;
      }
    }
    return -1;
  }

  /// Report the size of the packet granted after the last pick().
  void granted(std::int32_t bytes) {
    if (last_from_high_) hi_bytes_since_yield_ += bytes;
  }

  /// O(1) equivalent of a pick() in which no VL had work: both tables'
  /// scan would visit every entry twice and come back to where it
  /// started with the current entry's quantum refilled (and, when the
  /// high table was exhausted, its budget reset by the low table's empty
  /// opportunity). Callers that already know no lane has work (via the
  /// owner's active-VL bitmask) call this instead of scanning, keeping
  /// subsequent arbitration decisions bit-identical to a full scan.
  void note_failed_pick() {
    if (high_.size != 0) hi_left_ = high_.entries[hi_idx_].weight;
    if (low_.size != 0) lo_left_ = low_.entries[lo_idx_].weight;
    if (high_exhausted()) hi_bytes_since_yield_ = 0;
  }

  [[nodiscard]] std::uint8_t high_limit() const { return high_limit_; }

  [[nodiscard]] std::span<const VlArbEntry> high_table() const {
    return {high_.entries.data(), high_.size};
  }
  [[nodiscard]] std::span<const VlArbEntry> low_table() const {
    return {low_.entries.data(), low_.size};
  }

 private:
  struct Table {
    std::array<VlArbEntry, kMaxEntries> entries{};
    std::size_t size = 0;
  };

  template <typename HasWork>
  [[nodiscard]] std::int32_t pick_from(const Table& table, std::size_t& idx,
                                       std::int32_t& left, HasWork&& has_work) {
    if (table.size == 0) return -1;
    // Visit each entry at most twice: once with its remaining quantum,
    // once after a reset, so a lone busy VL is always found.
    for (std::size_t step = 0; step < 2 * table.size; ++step) {
      const VlArbEntry& entry = table.entries[idx];
      if (left > 0 && has_work(entry.vl)) {
        --left;
        return entry.vl;
      }
      idx = (idx + 1) % table.size;
      left = table.entries[idx].weight;
    }
    return -1;
  }

  /// True when the high table has used up its grant budget and must
  /// yield to the low table.
  [[nodiscard]] bool high_exhausted() const {
    return high_limit_ != kUnlimitedHighLimit &&
           hi_bytes_since_yield_ >= static_cast<std::int64_t>(high_limit_) * 4096;
  }

  Table high_;
  Table low_;
  std::uint8_t high_limit_ = kUnlimitedHighLimit;
  std::int64_t hi_bytes_since_yield_ = 0;
  bool last_from_high_ = false;
  std::size_t hi_idx_ = 0;
  std::int32_t hi_left_ = 0;
  std::size_t lo_idx_ = 0;
  std::int32_t lo_left_ = 0;
};

}  // namespace ibsim::fabric
