#pragma once

#include <cstdint>
#include <vector>

#include "core/event.hpp"
#include "fabric/output_port.hpp"
#include "fabric/port_state.hpp"
#include "fabric/telemetry_hooks.hpp"
#include "ib/packet.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/routing.hpp"

namespace ibsim::fabric {

class Fabric;

/// A crossbar switch: virtual output queues per (input, output, VL),
/// destination routing via the linear forwarding tables, round-robin
/// arbitration per output across inputs under the VL arbiter, and
/// per-output-Port-VL congestion detection / FECN marking.
///
/// Hot state is structure-of-arrays: credits / coalesced-credit
/// accumulators / round-robin cursors / CC detectors live in a flat
/// PortVlBank, and the VoQs are one switch-level array laid out so the
/// inputs competing for an (output, VL) pair are contiguous — the
/// arbitration scan walks one cache-line run instead of hopping across
/// per-input buffer objects.
class SwitchDevice final : public core::EventHandler {
 public:
  SwitchDevice(Fabric* fabric, topo::DeviceId dev, std::int32_t n_ports);

  void on_event(core::Scheduler& sched, const core::Event& ev) override;

  [[nodiscard]] topo::DeviceId device_id() const { return dev_; }
  [[nodiscard]] std::int32_t n_ports() const { return n_ports_; }
  [[nodiscard]] OutputPort& output(std::int32_t port) { return outputs_[static_cast<std::size_t>(port)]; }
  [[nodiscard]] const OutputPort& output(std::int32_t port) const {
    return outputs_[static_cast<std::size_t>(port)];
  }

  /// The flat per-(output port, VL) state bank (credits, CC, cursors).
  [[nodiscard]] PortVlBank& bank() { return bank_; }
  [[nodiscard]] const PortVlBank& bank() const { return bank_; }

  /// The VoQ holding input `in`'s packets towards (out, vl).
  [[nodiscard]] const ib::PacketQueue& voq(std::int32_t in, std::int32_t out,
                                           ib::Vl vl) const {
    return voqs_[voq_slot(in, out, vl)];
  }

  /// Bytes resident in input `in`'s buffer on `vl` (all VoQs).
  [[nodiscard]] std::int64_t input_vl_bytes(std::int32_t in, ib::Vl vl) const {
    return vl_bytes_[static_cast<std::size_t>(in) * static_cast<std::size_t>(fabric_vls_) +
                     static_cast<std::size_t>(vl)];
  }

  /// Total FECN marks applied by this switch (all ports/VLs).
  [[nodiscard]] std::uint64_t fecn_marked() const;

  /// Bytes forwarded by this switch (all ports).
  [[nodiscard]] std::int64_t forwarded_bytes() const;

  /// Install observability (called by Fabric::attach_telemetry). Shared
  /// aggregate handles come pre-resolved; in detailed mode the switch
  /// additionally registers per-Port-VL queue gauges, per-input-VL buffer
  /// gauges, and per-port stall-time counters.
  void attach_telemetry(telemetry::Telemetry* telemetry, const FabricCounters& counters);

 private:
  friend class Fabric;  // wiring

  void receive(core::Scheduler& sched, ib::PacketHandle h, std::int32_t in_port);
  void try_send(core::Scheduler& sched, std::int32_t out_port);
  [[nodiscard]] bool grant_one(core::Scheduler& sched, std::int32_t out_port);
  [[nodiscard]] bool input_eligible(std::int32_t in, std::int32_t out, ib::Vl vl) const;

  /// VoQ layout: the n_ports inputs of one (out, vl) pair are adjacent,
  /// so the credit-fallback scan over busy inputs stays in one stride.
  [[nodiscard]] std::size_t voq_slot(std::int32_t in, std::int32_t out, ib::Vl vl) const {
    IBSIM_ASSERT(in >= 0 && in < n_ports_ && out >= 0 && out < n_ports_ && vl < fabric_vls_,
                 "VoQ index out of range");
    return (static_cast<std::size_t>(out) * static_cast<std::size_t>(fabric_vls_) +
            static_cast<std::size_t>(vl)) *
               static_cast<std::size_t>(n_ports_) +
           static_cast<std::size_t>(in);
  }

  // --- telemetry (cold paths; every caller is behind a null check) ------
  void note_enqueue(std::int32_t out, ib::Vl vl, bool entered_congestion, core::Time now);
  void note_grant(core::Time now, std::int32_t out, ib::Vl vl, const ib::Packet& pkt,
                  bool exited_congestion, bool fecn_set, core::Time pace);
  void note_blocked(std::int32_t out, core::Time now);
  void note_buffer_level(std::int32_t in, ib::Vl vl);
  [[nodiscard]] telemetry::CounterRegistry::Handle out_queue_gauge(std::int32_t out,
                                                                   ib::Vl vl) const {
    return out_queue_gauges_[static_cast<std::size_t>(out) *
                                 static_cast<std::size_t>(fabric_vls_) +
                             static_cast<std::size_t>(vl)];
  }

  /// Bitmask of input ports with a nonempty VoQ towards (out, vl): bit i
  /// set means input i has queued work. Lets arbitration find the next
  /// round-robin input in O(1) instead of scanning all ports. Limits the
  /// model to 64-port switches, comfortably above the 36-port crossbars
  /// of the target fabrics.
  [[nodiscard]] std::uint64_t& busy_mask(std::int32_t out, ib::Vl vl) {
    return busy_mask_[static_cast<std::size_t>(out) *
                          static_cast<std::size_t>(fabric_vls_) +
                      static_cast<std::size_t>(vl)];
  }

  /// Per-output bitmask of VLs with any queued work: bit vl set iff
  /// busy_mask(out, vl) != 0. Lets grant_one() and note_blocked() test a
  /// single word instead of scanning every VL's VoQ bitmask (IBA allows
  /// at most 15 data VLs, so 16 bits suffice).
  [[nodiscard]] std::uint16_t& active_vls(std::int32_t out) {
    return active_vls_[static_cast<std::size_t>(out)];
  }

  Fabric* fabric_;
  topo::DeviceId dev_;
  std::int32_t n_ports_;
  std::int32_t fabric_vls_;
  bool fast_path_;                  ///< FabricParams::fast_path, cached off the hot path
  ib::PacketArena* arena_ = nullptr;  ///< this device's shard-local arena
  const std::int32_t* lft_row_;     ///< this switch's row of the flat LFT, indexed by dst
  std::vector<OutputPort> outputs_;
  PortVlBank bank_;                          ///< per (out, vl): credits/pending/rr/cc
  std::vector<ib::PacketQueue> voqs_;        ///< [(out * n_vls + vl) * n_ports + in]
  std::vector<std::int64_t> vl_bytes_;       ///< per (in, vl) buffer occupancy
  std::vector<std::uint64_t> busy_mask_;
  std::vector<std::uint16_t> active_vls_;  ///< per output port

  // Telemetry (null / empty when not attached).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  FabricCounters counters_;
  std::vector<telemetry::CounterRegistry::Handle> out_queue_gauges_;  ///< per (out, vl)
  telemetry::CounterRegistry* probe_registry_ = nullptr;  ///< detailed mode only
  std::vector<telemetry::CounterRegistry::Handle> in_buf_gauges_;     ///< per (in, vl)
};

}  // namespace ibsim::fabric
