#include "fabric/switch_device.hpp"

#include <bit>
#include <string>

#include "fabric/events.hpp"
#include "fabric/fabric.hpp"

namespace ibsim::fabric {

SwitchDevice::SwitchDevice(Fabric* fabric, topo::DeviceId dev, std::int32_t n_ports)
    : fabric_(fabric),
      dev_(dev),
      n_ports_(n_ports),
      fabric_vls_(fabric->params().n_vls),
      fast_path_(fabric->params().fast_path),
      arena_(&fabric->arena_for(dev)),
      lft_row_(fabric->routing().lft_row(dev)) {
  IBSIM_ASSERT(n_ports <= 64, "switch radix limited to 64 by the arbitration bitmask");
  outputs_.resize(static_cast<std::size_t>(n_ports));
  bank_.init(n_ports, fabric_vls_, /*with_cc=*/true);
  voqs_.assign(static_cast<std::size_t>(n_ports) * static_cast<std::size_t>(fabric_vls_) *
                   static_cast<std::size_t>(n_ports),
               ib::PacketQueue{});
  vl_bytes_.assign(
      static_cast<std::size_t>(n_ports) * static_cast<std::size_t>(fabric_vls_), 0);
  busy_mask_.assign(
      static_cast<std::size_t>(n_ports) * static_cast<std::size_t>(fabric_vls_), 0);
  active_vls_.assign(static_cast<std::size_t>(n_ports), 0);
}

void SwitchDevice::on_event(core::Scheduler& sched, const core::Event& ev) {
  switch (ev.kind) {
    case kEvPacketArrive:
      receive(sched, static_cast<ib::PacketHandle>(ev.a), static_cast<std::int32_t>(ev.b));
      break;
    case kEvLinkFree: {
      if (fast_path_) {
        // Only the live wakeup acts; a superseded one (the port granted
        // again at the same timestamp before this fired) is dropped. On
        // the slow path the same event runs try_send against a busy port
        // — a pure no-op — so dropping it is behaviour-identical.
        auto& op = outputs_[static_cast<std::size_t>(ev.b)];
        if (op.wake != WakeState::kScheduled || ev.seq != op.wake_seq) break;
        op.wake = WakeState::kNone;
      }
      try_send(sched, static_cast<std::int32_t>(ev.b));
      break;
    }
    case kEvCreditUpdate: {
      const auto port = static_cast<std::int32_t>(ev.b);
      const ib::Vl vl = credit_vl(ev.a);
      if (credit_is_deferred(ev.a)) {
        // Coalesced return: the byte total rode the port-side
        // accumulator instead of the event payload.
        std::int32_t& pending = bank_.pending_credit(port, vl);
        bank_.credit(port, vl).refund(pending);
        pending = 0;
      } else {
        bank_.credit(port, vl).refund(credit_bytes(ev.a));
      }
      // Busy-aware fast path: while the port is serializing, try_send
      // could not grant anyway (and a deferred wakeup can only be
      // outstanding for a workless port — see DESIGN.md §11), so skip
      // the arbitration attempt entirely.
      if (fast_path_ && !outputs_[static_cast<std::size_t>(port)].idle(sched.now())) break;
      try_send(sched, port);
      break;
    }
    default:
      IBSIM_ASSERT(false, "switch received an unknown event kind");
  }
}

void SwitchDevice::receive(core::Scheduler& sched, ib::PacketHandle h, std::int32_t in_port) {
  ib::PacketArena& arena = *arena_;
  const ib::Packet& pkt = arena.get(h);
  const std::int32_t out = lft_row_[pkt.dst];
  IBSIM_ASSERT(out >= 0 && out < n_ports_, "LFT has no route to destination");
  const ib::Vl vl = pkt.vl;
  const std::int32_t bytes = pkt.bytes;
  busy_mask(out, vl) |= 1ull << in_port;
  active_vls(out) |= static_cast<std::uint16_t>(1u << vl);
  voqs_[voq_slot(in_port, out, vl)].push_back(arena, h);
  vl_bytes_[static_cast<std::size_t>(in_port) * static_cast<std::size_t>(fabric_vls_) +
            static_cast<std::size_t>(vl)] += bytes;
  const bool entered = bank_.cc(out, vl).on_enqueue(bytes);
  if (telemetry_ != nullptr) {
    note_buffer_level(in_port, vl);
    note_enqueue(out, vl, entered, sched.now());
  }
  try_send(sched, out);
}

bool SwitchDevice::input_eligible(std::int32_t in, std::int32_t out, ib::Vl vl) const {
  const ib::PacketQueue& q = voqs_[voq_slot(in, out, vl)];
  if (q.empty()) return false;
  return bank_.credit(out, vl).can_send(arena_->get(q.front()).bytes);
}

void SwitchDevice::try_send(core::Scheduler& sched, std::int32_t out_port) {
  auto& op = outputs_[static_cast<std::size_t>(out_port)];
  if (fast_path_ && op.wake == WakeState::kElided) {
    const core::Time now = sched.now();
    if (now < op.busy_until ||
        (now == op.busy_until && op.wake_seq > sched.current_seq())) {
      // The elided wakeup's (at, seq) slot is still ahead of the event
      // being dispatched: materialize it into its reserved slot so the
      // arbitration it would have run happens exactly where the slow
      // path's eager kEvLinkFree would have run it.
      sched.schedule_at_reserved(op.busy_until, op.wake_seq, this, kEvLinkFree, 0,
                                 static_cast<std::uint64_t>(out_port));
      op.wake = WakeState::kScheduled;
      if (now < op.busy_until) return;  // still serializing; nothing can grant yet
    } else {
      // The slot has passed. While elided the port had no queued work
      // (work arrival materializes above), so the skipped event's
      // try_send could only have made one state change: the failed-pick
      // quantum refill. Apply it now — note_failed_pick is idempotent
      // and time-independent, so late application is exact.
      op.vlarb.note_failed_pick();
      op.wake = WakeState::kNone;
    }
  }
  if (grant_one(sched, out_port)) {
    if (!fast_path_) {
      sched.schedule_at(op.busy_until, this, kEvLinkFree, 0,
                        static_cast<std::uint64_t>(out_port));
    } else if (active_vls(out_port) != 0) {
      // Work still queued behind this grant: the wakeup will do real
      // arbitration, so schedule it eagerly (slow-path behaviour).
      op.wake = WakeState::kScheduled;
      op.wake_seq = sched.schedule_at(op.busy_until, this, kEvLinkFree, 0,
                                      static_cast<std::uint64_t>(out_port));
    } else {
      // Output drained: elide the wakeup but burn its sequence slot so
      // every later event keeps its slow-path (at, seq) position.
      op.wake = WakeState::kElided;
      op.wake_seq = sched.reserve_seq();
    }
  }
}

bool SwitchDevice::grant_one(core::Scheduler& sched, std::int32_t out_port) {
  auto& op = outputs_[static_cast<std::size_t>(out_port)];
  const core::Time now = sched.now();
  if (!op.idle(now)) return false;

  // VL arbitration over lanes with queued work and credits (coarse
  // check via the per-output active-VL word and the per-lane busy
  // bitmask), then round-robin over the inputs of the winning lane.
  const std::uint16_t vl_work = active_vls(out_port);
  if (vl_work == 0) {
    // No VL queues anything towards this output: skip the table scan,
    // but apply the exact state change an empty scan would have made so
    // later arbitration stays bit-identical.
    op.vlarb.note_failed_pick();
    return false;
  }
  const std::int32_t vl_pick = op.vlarb.pick([&](ib::Vl vl) {
    return (vl_work & (1u << vl)) != 0 && bank_.credit(out_port, vl).available() > 0;
  });
  if (vl_pick < 0) {
    if (telemetry_ != nullptr) note_blocked(out_port, now);
    return false;
  }
  const auto vl = static_cast<ib::Vl>(vl_pick);
  CreditTracker& credits = bank_.credit(out_port, vl);
  ib::PacketArena& arena = *arena_;
  // The n_ports VoQs feeding (out_port, vl) — contiguous by layout.
  ib::PacketQueue* const lane = &voqs_[voq_slot(0, out_port, vl)];

  // Next busy input at or after the round-robin pointer, wrapping.
  std::int32_t& rr_next = bank_.rr_next(out_port, vl);
  const std::uint64_t mask = busy_mask(out_port, vl);
  const std::uint64_t from_start = mask & (~0ull << rr_next);
  std::int32_t chosen =
      std::countr_zero(from_start != 0 ? from_start : mask);
  if (!credits.can_send(arena.get(lane[chosen].front()).bytes)) {
    // Head too large for the remaining credits; rare (mixed packet sizes
    // on one VL) — fall back to scanning the other busy inputs.
    chosen = -1;
    std::uint64_t rest = mask;
    while (rest != 0) {
      const std::int32_t in = std::countr_zero(rest);
      rest &= rest - 1;
      if (!lane[in].empty() && credits.can_send(arena.get(lane[in].front()).bytes)) {
        chosen = in;
        break;
      }
    }
    if (chosen < 0) {
      if (telemetry_ != nullptr) note_blocked(out_port, now);
      return false;  // the next credit update retries
    }
  }
  // Branch instead of %: n_ports is not a power of two, so the modulo
  // compiles to an integer division on this per-grant path.
  rr_next = chosen + 1 == n_ports_ ? 0 : chosen + 1;

  const ib::PacketHandle h = lane[chosen].pop_front(arena);
  ib::Packet& pkt = arena.get(h);
  vl_bytes_[static_cast<std::size_t>(chosen) * static_cast<std::size_t>(fabric_vls_) +
            static_cast<std::size_t>(vl)] -= pkt.bytes;
  IBSIM_ASSERT(input_vl_bytes(chosen, vl) >= 0, "input buffer occupancy underflow");
  if (lane[chosen].empty()) {
    std::uint64_t& mask_ref = busy_mask(out_port, vl);
    mask_ref &= ~(1ull << chosen);
    if (mask_ref == 0)
      active_vls(out_port) &= static_cast<std::uint16_t>(~(1u << vl));
  }
  op.vlarb.granted(pkt.bytes);
  const bool exited = bank_.cc(out_port, vl).on_dequeue(pkt.bytes);
  credits.consume(pkt.bytes);

  // FECN marking: the packet is forwarded through this Port VL; the
  // detector applies the threshold / root-vs-victim / Packet_Size /
  // Marking_Rate rules (paper section II.1).
  const bool fecn_now = bank_.cc(out_port, vl).decide_fecn(credits.available(), pkt.bytes);
  if (fecn_now) pkt.fecn = true;

  const core::Time pace = op.pace_time(pkt.bytes);
  op.busy_until = now + pace;
  op.tx_bytes += pkt.bytes;
  ++op.tx_packets;
  if (telemetry_ != nullptr) {
    note_buffer_level(chosen, vl);
    note_grant(now, out_port, vl, pkt, exited, fecn_now, pace);
  }

  // Hoisted before the send: when the link to op.peer_dev is a shard
  // cut, send_packet copies the packet into a mailbox and releases `h`,
  // so `pkt` must not be read afterwards.
  const std::int32_t pkt_bytes = pkt.bytes;
  const core::Time ser = op.ser_time(pkt_bytes);

  // Head of the packet reaches the peer's input stage after link
  // propagation plus the receiver pipeline (cut-through); add the full
  // serialization time when running store-and-forward.
  core::Time arrive = now + op.prop_delay + op.rx_pipeline_delay;
  if (!fabric_->params().cut_through) arrive += ser;
  fabric_->send_packet(sched, dev_, arrive, op.peer_dev, op.peer_port, h);

  // The packet's tail leaves our input buffer one serialization later;
  // that is when the upstream sender's credits come back.
  fabric_->schedule_credit_return(sched, dev_, chosen, vl, pkt_bytes, now + ser);
  return true;
}

std::uint64_t SwitchDevice::fecn_marked() const {
  std::uint64_t total = 0;
  for (std::int32_t p = 0; p < n_ports_; ++p) {
    for (std::int32_t v = 0; v < fabric_vls_; ++v) {
      total += bank_.cc(p, static_cast<ib::Vl>(v)).marked();
    }
  }
  return total;
}

std::int64_t SwitchDevice::forwarded_bytes() const {
  std::int64_t total = 0;
  for (const auto& op : outputs_) total += op.tx_bytes;
  return total;
}

void SwitchDevice::attach_telemetry(telemetry::Telemetry* telemetry,
                                    const FabricCounters& counters) {
  telemetry_ = telemetry;
  tracer_ = telemetry != nullptr ? telemetry->tracer() : nullptr;
  counters_ = counters;
  out_queue_gauges_.clear();
  in_buf_gauges_.clear();
  probe_registry_ = nullptr;
  if (telemetry_ == nullptr || !telemetry_->detailed()) {
    for (auto& op : outputs_) op.h_stall_ps = {};
    return;
  }
  // Detailed mode: per-Port-VL instruments, registered in a fixed order so
  // CSV columns and summary rows are stable across runs. The instrument
  // names are built from a per-switch prefix so attaching detailed
  // telemetry to a 648-node fabric allocates one prefix per switch, not
  // one temporary chain per instrument.
  telemetry::CounterRegistry& reg = telemetry_->registry();
  probe_registry_ = &reg;
  out_queue_gauges_.reserve(static_cast<std::size_t>(n_ports_) *
                            static_cast<std::size_t>(fabric_vls_));
  in_buf_gauges_.reserve(static_cast<std::size_t>(n_ports_) *
                         static_cast<std::size_t>(fabric_vls_));
  const std::string sw_prefix = "switch." + std::to_string(dev_);
  for (std::int32_t p = 0; p < n_ports_; ++p) {
    const std::string port_str = std::to_string(p);
    const std::string base = sw_prefix + ".port." + port_str;
    for (std::int32_t v = 0; v < fabric_vls_; ++v) {
      out_queue_gauges_.push_back(
          reg.gauge(base + ".vl" + std::to_string(v) + ".queue_bytes"));
    }
    outputs_[static_cast<std::size_t>(p)].h_stall_ps = reg.counter(base + ".credit_stall_ps");
    const std::string in_base = sw_prefix + ".in." + port_str + ".vl";
    for (std::int32_t v = 0; v < fabric_vls_; ++v) {
      in_buf_gauges_.push_back(reg.gauge(in_base + std::to_string(v) + ".buf_bytes"));
    }
  }
}

void SwitchDevice::note_buffer_level(std::int32_t in, ib::Vl vl) {
  if (probe_registry_ == nullptr) return;
  const std::size_t slot = static_cast<std::size_t>(in) *
                               static_cast<std::size_t>(fabric_vls_) +
                           static_cast<std::size_t>(vl);
  probe_registry_->set(in_buf_gauges_[slot], vl_bytes_[slot]);
}

void SwitchDevice::note_enqueue(std::int32_t out, ib::Vl vl, bool entered_congestion,
                                core::Time now) {
  const cc::SwitchPortCc& det = bank_.cc(out, vl);
  if (!out_queue_gauges_.empty()) {
    telemetry_->registry().set(out_queue_gauge(out, vl), det.queued_bytes());
  }
  if (entered_congestion && tracer_ != nullptr) {
    tracer_->record(telemetry::Category::kQueues, telemetry::EventKind::kCongestionEnter, now,
                    dev_, out, vl, det.queued_bytes());
  }
}

void SwitchDevice::note_grant(core::Time now, std::int32_t out, ib::Vl vl,
                              const ib::Packet& pkt, bool exited_congestion, bool fecn_set,
                              core::Time pace) {
  telemetry::CounterRegistry& reg = telemetry_->registry();
  auto& op = outputs_[static_cast<std::size_t>(out)];
  const cc::SwitchPortCc& det = bank_.cc(out, vl);
  reg.inc(counters_.arb_grants);
  if (fecn_set) reg.inc(counters_.fecn_marked);
  if (!out_queue_gauges_.empty()) reg.set(out_queue_gauge(out, vl), det.queued_bytes());
  if (op.stall_since != core::kTimeNever) {
    const core::Time stalled = now - op.stall_since;
    op.stall_since = core::kTimeNever;
    reg.inc(counters_.credit_stalls);
    reg.add(counters_.credit_stall_ps, stalled);
    reg.add(op.h_stall_ps, stalled);  // no-op unless detailed mode resolved it
    if (tracer_ != nullptr) {
      tracer_->record(telemetry::Category::kCredits, telemetry::EventKind::kCreditStallEnd, now,
                      dev_, out, /*vl=*/-1, stalled);
    }
  }
  if (tracer_ == nullptr) return;
  if (fecn_set) {
    tracer_->record(telemetry::Category::kCc, telemetry::EventKind::kFecnMark, now, dev_, out,
                    vl, det.queued_bytes());
  }
  if (exited_congestion) {
    tracer_->record(telemetry::Category::kQueues, telemetry::EventKind::kCongestionExit, now,
                    dev_, out, vl, det.queued_bytes());
  }
  tracer_->record(telemetry::Category::kArb, telemetry::EventKind::kArbGrant, now, dev_, out,
                  vl, pkt.bytes, static_cast<std::int32_t>(pace));
}

void SwitchDevice::note_blocked(std::int32_t out, core::Time now) {
  auto& op = outputs_[static_cast<std::size_t>(out)];
  if (op.stall_since != core::kTimeNever) return;  // stall already open
  // Blocked-with-no-work is just an idle port, not a credit stall. One
  // word test instead of scanning every VL's VoQ bitmask.
  if (active_vls(out) == 0) return;
  op.stall_since = now;
  if (tracer_ != nullptr) {
    tracer_->record(telemetry::Category::kCredits, telemetry::EventKind::kCreditStallStart, now,
                    dev_, out, /*vl=*/-1, 0);
  }
}

}  // namespace ibsim::fabric
