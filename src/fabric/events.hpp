#pragma once

#include <cstdint>

#include "ib/types.hpp"

namespace ibsim::fabric {

/// Event kinds exchanged between fabric components. Payload conventions:
/// `a` carries a PacketHandle (PacketArrive) or packed credit info
/// (CreditUpdate); `b` carries the port index on the *receiving* device.
enum EventKind : std::uint32_t {
  /// A packet's head reaches an input buffer (after link + pipeline
  /// delays). a = PacketHandle, b = input port.
  kEvPacketArrive = 1,
  /// An output port finished serializing (or pacing) a packet and may
  /// arbitrate again. b = output port.
  kEvLinkFree = 2,
  /// Flow-control credits returned by the downstream input buffer.
  /// a = pack_credit(vl, bytes), b = output port being replenished.
  kEvCreditUpdate = 3,
  /// The HCA sink finished draining a packet (held in the HCA's
  /// draining slot; the payload is unused).
  kEvSinkFree = 4,
  /// Timed retry for an HCA whose traffic source reported a future
  /// readiness time (pacing budget, IRD throttle).
  kEvRetryInject = 5,
};

[[nodiscard]] inline std::uint64_t pack_credit(ib::Vl vl, std::int32_t bytes) {
  return (static_cast<std::uint64_t>(vl) << 32) | static_cast<std::uint32_t>(bytes);
}

/// Deferred credit return (fast path): the byte count lives in the
/// receiving port's pending_credit[vl] accumulator instead of the event
/// payload, so several same-(port,vl,time) returns can share one event.
inline constexpr std::uint64_t kCreditDeferredBit = 1ull << 63;

[[nodiscard]] inline std::uint64_t pack_credit_deferred(ib::Vl vl) {
  return kCreditDeferredBit | (static_cast<std::uint64_t>(vl) << 32);
}

[[nodiscard]] inline bool credit_is_deferred(std::uint64_t packed) {
  return (packed & kCreditDeferredBit) != 0;
}

[[nodiscard]] inline ib::Vl credit_vl(std::uint64_t packed) {
  return static_cast<ib::Vl>((packed >> 32) & 0xffffu);
}

[[nodiscard]] inline std::int32_t credit_bytes(std::uint64_t packed) {
  return static_cast<std::int32_t>(packed & 0xffffffffu);
}

}  // namespace ibsim::fabric
