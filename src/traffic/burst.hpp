#pragma once

#include <cmath>
#include <cstdint>

#include "cc/ca_cc.hpp"
#include "core/rng.hpp"
#include "fabric/interfaces.hpp"
#include "ib/packet.hpp"
#include "traffic/destination.hpp"

namespace ibsim::traffic {

/// Parameters of an on/off burst source. Phase lengths are drawn from
/// exponential distributions, the classic bursty-traffic model; the duty
/// cycle is mean_on / (mean_on + mean_off).
struct BurstParams {
  core::Time mean_on = 100 * core::kMicrosecond;
  core::Time mean_off = 300 * core::kMicrosecond;
  double rate_gbps = 13.5;           ///< injection rate while ON
  std::int32_t packet_bytes = ib::kMtuBytes;
  bool fixed_destination = false;    ///< all bursts to one node vs uniform
  ib::NodeId destination = ib::kInvalidNode;  ///< used when fixed
  bool new_destination_per_burst = true;      ///< uniform: redraw per burst
};

/// On/off bursty traffic source — "network burstiness" is one of the
/// congestion causes the paper's introduction lists. During an ON phase
/// the source streams packets at `rate_gbps` towards its current
/// destination (respecting the CC throttle); during OFF it is silent.
class BurstGenerator final : public fabric::TrafficSource {
 public:
  /// `gate` may be null (CC disabled).
  BurstGenerator(ib::NodeId self, std::int32_t n_nodes, const BurstParams& params,
                 const cc::FlowGate* gate, ib::PacketArena* arena, core::Rng rng);

  [[nodiscard]] Poll poll(core::Time now) override;

  [[nodiscard]] std::int64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::int64_t bursts_started() const { return bursts_; }
  /// Simulated time this source has spent in ON phases up to the last
  /// phase transition processed.
  [[nodiscard]] core::Time on_time() const { return on_time_; }

 private:
  void advance_phases(core::Time now);
  [[nodiscard]] core::Time draw_exponential(core::Time mean);

  ib::NodeId self_;
  BurstParams params_;
  const cc::FlowGate* gate_;
  ib::PacketArena* arena_;
  core::Rng rng_;
  UniformDestination uniform_;

  bool on_ = false;
  core::Time phase_end_ = 0;
  core::Time next_send_ = 0;
  ib::NodeId current_dst_ = ib::kInvalidNode;
  std::int64_t bytes_sent_ = 0;
  std::int64_t bursts_ = 0;
  core::Time on_time_ = 0;
};

}  // namespace ibsim::traffic
