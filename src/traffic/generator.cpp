#include "traffic/generator.hpp"

#include <cmath>
#include <cstddef>

#include "core/assert.hpp"

namespace ibsim::traffic {

BNodeGenerator::BNodeGenerator(ib::NodeId self, std::int32_t n_nodes,
                               const BNodeParams& params, const HotspotProvider* hotspot,
                               const cc::FlowGate* gate, ib::PacketArena* arena, core::Rng rng)
    : self_(self),
      params_(params),
      hotspot_(hotspot),
      gate_(gate),
      arena_(arena),
      rng_(rng),
      uniform_(self, n_nodes) {
  IBSIM_ASSERT(params_.p >= 0.0 && params_.p <= 1.0, "p must be a fraction in [0, 1]");
  IBSIM_ASSERT(params_.p == 0.0 || hotspot_ != nullptr,
               "a generator with p > 0 needs a hotspot provider");
  streams_[0].share = params_.p;
  streams_[0].to_hotspot = true;
  streams_[1].share = 1.0 - params_.p;
  streams_[1].to_hotspot = false;
  // The deferred set is bounded by kMaxDeferred: reserving it here keeps
  // the poll path allocation-free for the lifetime of the generator.
  for (Stream& s : streams_) s.deferred.reserve(kMaxDeferred);
}

core::Time BNodeGenerator::stream_ready_at(Stream& stream, core::Time now) {
  if (stream.share <= 0.0) return core::kTimeNever;

  // Budget: cumulative bytes must never exceed share x capacity x t.
  const double budget_rate = stream.share * params_.capacity_gbps;  // Gb/s
  const auto needed = static_cast<double>(stream.sent_bytes + params_.packet_bytes);
  const auto budget_ready =
      static_cast<core::Time>(std::ceil(needed * 8000.0 / budget_rate));
  if (budget_ready > now) return budget_ready;  // budget gates regardless of flow

  const auto gate_ready = [&](ib::NodeId dst) {
    return gate_ != nullptr ? gate_->flow_ready_at(dst) : 0;
  };

  // A started message continues regardless of later throttling (the IRD
  // applies between packets via gate_ready of its flow).
  if (stream.pending.packets > 0) {
    const core::Time flow_ready = gate_ready(stream.pending.dst);
    return flow_ready > now ? flow_ready : now;
  }

  // Resume a parked message whose flow has recovered, oldest first.
  for (std::size_t i = 0; i < stream.deferred.size(); ++i) {
    if (gate_ready(stream.deferred[i].dst) <= now) {
      stream.pending = stream.deferred[i];
      stream.deferred.erase(stream.deferred.begin() + static_cast<std::ptrdiff_t>(i));
      return now;
    }
  }

  // Open new messages; a throttled uniform draw is parked instead of
  // blocking the stream (per-QP queueing), bounded per poll and in total
  // to keep the deferred set small. The hotspot stream has a single
  // destination, so when its flow is throttled the stream simply waits.
  for (int attempt = 0; attempt < 4; ++attempt) {
    ib::NodeId dst = stream.to_hotspot ? hotspot_->current_hotspot() : uniform_.draw(rng_);
    // A node drawn as its own hotspot redirects that message uniformly
    // rather than sending to itself.
    if (dst == self_) dst = uniform_.draw(rng_);
    const core::Time flow_ready = gate_ready(dst);
    if (flow_ready <= now) {
      stream.pending = Message{dst, params_.message_bytes / params_.packet_bytes,
                               stream.msg_seq++};
      return now;
    }
    if (stream.to_hotspot) return flow_ready;
    if (stream.deferred.size() >= kMaxDeferred) break;
    stream.deferred.push_back(
        Message{dst, params_.message_bytes / params_.packet_bytes, stream.msg_seq++});
  }

  // Everything parked: come back when the earliest flow recovers.
  core::Time earliest = core::kTimeNever;
  for (const Message& msg : stream.deferred) {
    const core::Time t = gate_ready(msg.dst);
    if (t < earliest) earliest = t;
  }
  return earliest > now ? earliest : now;
}

ib::PacketHandle BNodeGenerator::emit(Stream& stream, core::Time now) {
  IBSIM_ASSERT(stream.pending.packets > 0, "emitting without an open message");
  const ib::PacketHandle h = arena_->allocate();
  ib::Packet& pkt = arena_->get(h);
  pkt.src = self_;
  pkt.dst = stream.pending.dst;
  pkt.bytes = params_.packet_bytes;
  pkt.vl = ib::kDataVl;
  pkt.hotspot_stream = stream.to_hotspot;
  pkt.msg_seq = stream.pending.seq;
  pkt.injected_at = now;
  stream.sent_bytes += pkt.bytes;
  --stream.pending.packets;
  return h;
}

fabric::TrafficSource::Poll BNodeGenerator::poll(core::Time now) {
  core::Time ready[2];
  for (int s = 0; s < 2; ++s) ready[s] = stream_ready_at(streams_[s], now);

  const bool r0 = ready[0] <= now;
  const bool r1 = ready[1] <= now;
  if (r0 || r1) {
    int pick;
    if (r0 && r1) {
      // Deficit order: the stream further behind its share goes first.
      const double d0 = static_cast<double>(streams_[0].sent_bytes) / streams_[0].share;
      const double d1 = static_cast<double>(streams_[1].sent_bytes) / streams_[1].share;
      pick = d0 <= d1 ? 0 : 1;
    } else {
      pick = r0 ? 0 : 1;
    }
    return Poll{emit(streams_[pick], now), core::kTimeNever};
  }
  return Poll{ib::kNullPacket, ready[0] < ready[1] ? ready[0] : ready[1]};
}

}  // namespace ibsim::traffic
