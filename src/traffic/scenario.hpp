#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "fabric/fabric.hpp"
#include "traffic/generator.hpp"
#include "traffic/hotspot_schedule.hpp"

namespace ibsim::traffic {

/// Node roles from the paper's congestion-tree taxonomy (section III):
/// C nodes send everything to their subset's hotspot, V nodes send
/// uniformly, B nodes split p / (1-p) between the two.
enum class NodeRole : std::uint8_t { B, C, V };

[[nodiscard]] const char* role_name(NodeRole role);

/// Declarative description of a traffic scenario, matching the knobs the
/// paper's evaluation sweeps.
struct ScenarioSpec {
  /// Fraction of all nodes that are B nodes (the "x%" of section V-B).
  double fraction_b = 0.0;
  /// Hotspot share of a B node's traffic (the "p" axis), as a fraction.
  double p = 0.5;
  /// Of the nodes that are not B: fraction that are C (paper: 80% C,
  /// 20% V).
  double fraction_c_of_rest = 0.8;
  /// Number of hotspots; contributors (B and C) are split evenly into
  /// this many subsets.
  std::int32_t n_hotspots = 8;
  /// Hotspot lifetime; kTimeNever = static hotspots.
  core::Time hotspot_lifetime = core::kTimeNever;
  /// Table II's baseline rows disable the C nodes entirely ("before
  /// enabling the C nodes").
  bool c_nodes_active = true;
  /// Injection capacity the p-budgets are computed against.
  double capacity_gbps = 13.5;

  [[nodiscard]] std::string describe() const;
};

/// A fully instantiated scenario: role assignment, hotspot schedule, and
/// one generator per sending node, wired onto a fabric.
class Scenario {
 public:
  /// Build role assignment and generators for `n_nodes` end nodes.
  Scenario(std::int32_t n_nodes, const ScenarioSpec& spec, core::Rng rng);

  /// Attach generators to the fabric's HCAs and the schedule to the
  /// scheduler. Call once, before the simulation starts.
  void install(fabric::Fabric& fabric, core::Scheduler& sched);

  [[nodiscard]] NodeRole role(ib::NodeId node) const {
    return roles_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] const HotspotSchedule& schedule() const { return *schedule_; }
  [[nodiscard]] bool is_hotspot(ib::NodeId node) const { return schedule_->is_hotspot(node); }
  [[nodiscard]] std::int32_t count(NodeRole role) const;
  [[nodiscard]] const std::vector<BNodeGenerator*>& generators() const { return gen_ptrs_; }

 private:
  std::int32_t n_nodes_;
  ScenarioSpec spec_;
  std::vector<NodeRole> roles_;
  std::unique_ptr<HotspotSchedule> schedule_;
  std::vector<std::unique_ptr<ScheduleHotspot>> providers_;  // one per subset
  std::vector<std::unique_ptr<BNodeGenerator>> generators_;
  std::vector<BNodeGenerator*> gen_ptrs_;
  std::vector<std::int32_t> subset_of_node_;
  core::Rng rng_;
  bool installed_ = false;
};

}  // namespace ibsim::traffic
