#include "traffic/destination.hpp"

#include "core/assert.hpp"

namespace ibsim::traffic {

UniformDestination::UniformDestination(ib::NodeId self, std::int32_t n_nodes)
    : self_(self), n_nodes_(n_nodes) {
  IBSIM_ASSERT(n_nodes >= 2, "uniform destination needs at least two nodes");
}

ib::NodeId UniformDestination::draw(core::Rng& rng) {
  // Draw over n-1 slots and skip self, so every other node is equally
  // likely without rejection sampling.
  auto pick = static_cast<ib::NodeId>(rng.next_below(static_cast<std::uint64_t>(n_nodes_ - 1)));
  if (pick >= self_) ++pick;
  return pick;
}

}  // namespace ibsim::traffic
