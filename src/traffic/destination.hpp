#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "ib/types.hpp"

namespace ibsim::traffic {

/// Strategy for drawing the destination of a new message.
class DestinationDistribution {
 public:
  virtual ~DestinationDistribution() = default;
  [[nodiscard]] virtual ib::NodeId draw(core::Rng& rng) = 0;
};

/// Uniform over all end nodes except the sender itself — the paper's
/// "uniform destination distribution including all nodes in the network
/// (except the node itself)" (Frame I).
class UniformDestination final : public DestinationDistribution {
 public:
  UniformDestination(ib::NodeId self, std::int32_t n_nodes);
  [[nodiscard]] ib::NodeId draw(core::Rng& rng) override;

 private:
  ib::NodeId self_;
  std::int32_t n_nodes_;
};

/// Always the same destination (used by tests and fixed-pattern
/// examples).
class FixedDestination final : public DestinationDistribution {
 public:
  explicit FixedDestination(ib::NodeId dst) : dst_(dst) {}
  [[nodiscard]] ib::NodeId draw(core::Rng&) override { return dst_; }

 private:
  ib::NodeId dst_;
};

}  // namespace ibsim::traffic
