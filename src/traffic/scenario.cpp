#include "traffic/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/assert.hpp"

namespace ibsim::traffic {

const char* role_name(NodeRole role) {
  switch (role) {
    case NodeRole::B: return "B";
    case NodeRole::C: return "C";
    case NodeRole::V: return "V";
  }
  return "?";
}

std::string ScenarioSpec::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "B=%.0f%% p=%.0f%% C/rest=%.0f%% hotspots=%d lifetime=%s%s",
                fraction_b * 100.0, p * 100.0, fraction_c_of_rest * 100.0, n_hotspots,
                hotspot_lifetime == core::kTimeNever ? "static"
                                                     : core::format_time(hotspot_lifetime).c_str(),
                c_nodes_active ? "" : " (C inactive)");
  return buf;
}

Scenario::Scenario(std::int32_t n_nodes, const ScenarioSpec& spec, core::Rng rng)
    : n_nodes_(n_nodes), spec_(spec), rng_(rng) {
  IBSIM_ASSERT(n_nodes >= 2, "scenario needs at least two nodes");
  IBSIM_ASSERT(spec.fraction_b >= 0.0 && spec.fraction_b <= 1.0, "fraction_b out of range");
  IBSIM_ASSERT(spec.p >= 0.0 && spec.p <= 1.0, "p out of range");

  // Random role placement: shuffle the node ids, then carve off B, C, V
  // contiguously from the shuffled order ("randomly distributed in the
  // topology").
  std::vector<ib::NodeId> order(static_cast<std::size_t>(n_nodes));
  for (std::int32_t i = 0; i < n_nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  core::Rng shuffle_rng = rng_.fork("roles", 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(shuffle_rng.next_below(i));
    std::swap(order[i - 1], order[j]);
  }

  const auto n_b = static_cast<std::int32_t>(
      std::llround(spec.fraction_b * static_cast<double>(n_nodes)));
  const std::int32_t rest = n_nodes - n_b;
  const auto n_c = static_cast<std::int32_t>(
      std::llround(spec.fraction_c_of_rest * static_cast<double>(rest)));

  roles_.assign(static_cast<std::size_t>(n_nodes), NodeRole::V);
  for (std::int32_t i = 0; i < n_b; ++i)
    roles_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = NodeRole::B;
  for (std::int32_t i = n_b; i < n_b + n_c; ++i)
    roles_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = NodeRole::C;

  schedule_ = std::make_unique<HotspotSchedule>(n_nodes, spec.n_hotspots,
                                                spec.hotspot_lifetime, rng_.fork("hotspots", 0));
  providers_.reserve(static_cast<std::size_t>(spec.n_hotspots));
  for (std::int32_t s = 0; s < spec.n_hotspots; ++s) {
    providers_.push_back(std::make_unique<ScheduleHotspot>(schedule_.get(), s));
  }

  // Contributors (B and C separately) are divided evenly into the
  // hotspot subsets, in shuffled-node order.
  subset_of_node_.assign(static_cast<std::size_t>(n_nodes), -1);
  if (spec.n_hotspots > 0) {
    std::int32_t next_b = 0;
    std::int32_t next_c = 0;
    for (const ib::NodeId node : order) {
      const NodeRole r = roles_[static_cast<std::size_t>(node)];
      if (r == NodeRole::B) {
        subset_of_node_[static_cast<std::size_t>(node)] = next_b++ % spec.n_hotspots;
      } else if (r == NodeRole::C) {
        subset_of_node_[static_cast<std::size_t>(node)] = next_c++ % spec.n_hotspots;
      }
    }
  }
}

void Scenario::install(fabric::Fabric& fabric, core::Scheduler& sched) {
  IBSIM_ASSERT(!installed_, "scenario installed twice");
  IBSIM_ASSERT(fabric.node_count() == n_nodes_, "fabric size does not match scenario");
  installed_ = true;

  generators_.reserve(static_cast<std::size_t>(n_nodes_));
  gen_ptrs_.reserve(static_cast<std::size_t>(n_nodes_));
  for (ib::NodeId node = 0; node < n_nodes_; ++node) {
    const NodeRole r = roles_[static_cast<std::size_t>(node)];
    if (r == NodeRole::C && !spec_.c_nodes_active) continue;  // silent C node

    BNodeParams params;
    params.capacity_gbps = spec_.capacity_gbps;
    switch (r) {
      case NodeRole::B: params.p = spec_.p; break;
      case NodeRole::C: params.p = 1.0; break;
      case NodeRole::V: params.p = 0.0; break;
    }
    const std::int32_t subset = subset_of_node_[static_cast<std::size_t>(node)];
    const HotspotProvider* provider =
        (params.p > 0.0 && subset >= 0) ? providers_[static_cast<std::size_t>(subset)].get()
                                        : nullptr;
    if (params.p > 0.0 && provider == nullptr) {
      // A contributor without any hotspot configured degenerates to a
      // pure uniform sender.
      params.p = 0.0;
    }

    fabric::Hca& hca = fabric.hca(node);
    const cc::FlowGate* gate =
        fabric.cc_manager().enabled() ? &hca.cc_agent() : nullptr;
    generators_.push_back(std::make_unique<BNodeGenerator>(
        node, n_nodes_, params, provider, gate, &fabric.arena_for_node(node),
        rng_.fork("gen", static_cast<std::uint64_t>(node))));
    gen_ptrs_.push_back(generators_.back().get());
    hca.attach_source(generators_.back().get());
  }
  schedule_->install(sched);
}

std::int32_t Scenario::count(NodeRole role) const {
  std::int32_t n = 0;
  for (const NodeRole r : roles_) n += (r == role) ? 1 : 0;
  return n;
}

}  // namespace ibsim::traffic
