#include "traffic/hotspot_schedule.hpp"

#include "core/assert.hpp"

namespace ibsim::traffic {

namespace {
constexpr std::uint32_t kMoveEvent = 0x4507;
}

HotspotSchedule::HotspotSchedule(std::int32_t n_nodes, std::int32_t n_hotspots,
                                 core::Time lifetime, core::Rng rng)
    : n_nodes_(n_nodes), lifetime_(lifetime), rng_(rng) {
  IBSIM_ASSERT(n_hotspots >= 0 && n_hotspots <= n_nodes,
               "hotspot count must fit in the node count");
  hotspots_.resize(static_cast<std::size_t>(n_hotspots));
  is_hotspot_.assign(static_cast<std::size_t>(n_nodes), false);
  redraw();
}

void HotspotSchedule::redraw() {
  std::fill(is_hotspot_.begin(), is_hotspot_.end(), false);
  // Rejection-sample distinct nodes; with 8 hotspots among hundreds of
  // nodes collisions are rare.
  for (auto& hs : hotspots_) {
    ib::NodeId pick;
    do {
      pick = static_cast<ib::NodeId>(rng_.next_below(static_cast<std::uint64_t>(n_nodes_)));
    } while (is_hotspot_[static_cast<std::size_t>(pick)]);
    is_hotspot_[static_cast<std::size_t>(pick)] = true;
    hs = pick;
  }
}

void HotspotSchedule::install(core::Scheduler& sched) {
  if (moving() && !hotspots_.empty()) {
    sched.schedule_in(lifetime_, this, kMoveEvent);
  }
}

void HotspotSchedule::on_event(core::Scheduler& sched, const core::Event& ev) {
  IBSIM_ASSERT(ev.kind == kMoveEvent, "hotspot schedule received an unknown event");
  redraw();
  ++moves_;
  sched.schedule_in(lifetime_, this, kMoveEvent);
}

}  // namespace ibsim::traffic
