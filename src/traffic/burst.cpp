#include "traffic/burst.hpp"

#include "core/assert.hpp"

namespace ibsim::traffic {

BurstGenerator::BurstGenerator(ib::NodeId self, std::int32_t n_nodes,
                               const BurstParams& params, const cc::FlowGate* gate,
                               ib::PacketArena* arena, core::Rng rng)
    : self_(self),
      params_(params),
      gate_(gate),
      arena_(arena),
      rng_(rng),
      uniform_(self, n_nodes) {
  IBSIM_ASSERT(params_.mean_on > 0 && params_.mean_off >= 0, "burst phases must be positive");
  IBSIM_ASSERT(params_.rate_gbps > 0.0, "burst rate must be positive");
  IBSIM_ASSERT(!params_.fixed_destination || params_.destination != ib::kInvalidNode,
               "fixed-destination bursts need a destination");
  // Start in an OFF phase so sources desynchronise by seed.
  on_ = false;
  phase_end_ = params_.mean_off > 0 ? draw_exponential(params_.mean_off) : 0;
  current_dst_ = params_.fixed_destination ? params_.destination : uniform_.draw(rng_);
}

core::Time BurstGenerator::draw_exponential(core::Time mean) {
  // Inverse-CDF with the draw bounded away from 0 and 1; at least 1 ps.
  const double u = rng_.next_double();
  const double x = -static_cast<double>(mean) * std::log(1.0 - u * 0.999999);
  return x < 1.0 ? 1 : static_cast<core::Time>(x);
}

void BurstGenerator::advance_phases(core::Time now) {
  while (phase_end_ <= now) {
    on_ = !on_;
    if (on_) {
      ++bursts_;
      next_send_ = phase_end_;  // burst starts where the OFF phase ended
      if (!params_.fixed_destination && params_.new_destination_per_burst) {
        current_dst_ = uniform_.draw(rng_);
      }
      const core::Time duration = draw_exponential(params_.mean_on);
      on_time_ += duration;  // credited when the phase is scheduled
      phase_end_ += duration;
    } else {
      phase_end_ += params_.mean_off > 0 ? draw_exponential(params_.mean_off) : 1;
    }
  }
}

fabric::TrafficSource::Poll BurstGenerator::poll(core::Time now) {
  advance_phases(now);
  if (!on_) return {ib::kNullPacket, phase_end_};

  core::Time ready = next_send_;
  const core::Time flow_ready = gate_ != nullptr ? gate_->flow_ready_at(current_dst_) : 0;
  if (flow_ready > ready) ready = flow_ready;
  if (ready > now) {
    // Wake at the earlier of "next packet slot" and "phase end" (the
    // burst may end before the throttle clears).
    return {ib::kNullPacket, ready < phase_end_ ? ready : phase_end_};
  }

  const ib::PacketHandle h = arena_->allocate();
  ib::Packet& pkt = arena_->get(h);
  pkt.src = self_;
  pkt.dst = current_dst_;
  pkt.bytes = params_.packet_bytes;
  pkt.vl = ib::kDataVl;
  pkt.injected_at = now;
  bytes_sent_ += pkt.bytes;
  next_send_ = now + core::transmit_time(pkt.bytes, params_.rate_gbps);
  return {h, core::kTimeNever};
}

}  // namespace ibsim::traffic
