#pragma once

#include <cstdint>
#include <memory>

#include "cc/ca_cc.hpp"
#include "core/rng.hpp"
#include "fabric/interfaces.hpp"
#include "ib/packet.hpp"
#include "traffic/destination.hpp"
#include "traffic/hotspot_schedule.hpp"

namespace ibsim::traffic {

/// Parameters of a B-node traffic generator (paper section III-B and
/// Frame I). C nodes are B nodes with p = 1, V nodes B nodes with p = 0,
/// so this single generator covers every role in the paper.
struct BNodeParams {
  double p = 0.5;             ///< fraction of capacity destined for the hotspot
  double capacity_gbps = 13.5;///< injection capacity the p-budgets refer to
  std::int32_t message_bytes = ib::kMessageBytes;
  std::int32_t packet_bytes = ib::kMtuBytes;
};

/// Saturating two-stream generator implementing Frame I's semantics:
///
///  * the hotspot stream may have sent at most p x capacity x t bytes by
///    any time t, the uniform stream at most (1-p) x capacity x t;
///  * the two streams are independent: a hotspot flow held back by the
///    CC throttle never blocks uniform traffic, and uniform traffic never
///    exceeds its own share to "help out" — the link idles instead;
///  * messages are 2 MTU packets to one destination, sent back-to-back
///    when flow control and the CC injection-rate delay allow;
///  * when both streams are ready the one further behind its share goes
///    first (deficit order), reproducing Frame I's interleaving.
class BNodeGenerator final : public fabric::TrafficSource {
 public:
  /// `gate` may be null (CC disabled). `hotspot` may be null when p == 0.
  BNodeGenerator(ib::NodeId self, std::int32_t n_nodes, const BNodeParams& params,
                 const HotspotProvider* hotspot, const cc::FlowGate* gate,
                 ib::PacketArena* arena, core::Rng rng);

  [[nodiscard]] Poll poll(core::Time now) override;

  // Budget accounting, exposed for the Frame I property tests.
  [[nodiscard]] std::int64_t hotspot_bytes_sent() const { return streams_[0].sent_bytes; }
  [[nodiscard]] std::int64_t uniform_bytes_sent() const { return streams_[1].sent_bytes; }
  [[nodiscard]] ib::NodeId node() const { return self_; }
  [[nodiscard]] const BNodeParams& params() const { return params_; }

 private:
  struct Message {
    ib::NodeId dst = ib::kInvalidNode;
    std::int32_t packets = 0;
    std::uint32_t seq = 0;
  };

  /// Hard cap on parked messages per stream; the deferred vector is
  /// reserved to this at construction so polling never allocates.
  static constexpr std::size_t kMaxDeferred = 16;

  struct Stream {
    double share = 0.0;            ///< fraction of capacity this stream may use
    bool to_hotspot = false;
    std::int64_t sent_bytes = 0;
    Message pending;               ///< the open message, if packets > 0
    /// Messages whose flow is CC-throttled, parked so they do not HOL
    /// block the stream (per-QP queueing: a throttled QP never blocks
    /// other QPs of the same port). Re-polled before new draws.
    std::vector<Message> deferred;
    std::uint32_t msg_seq = 0;
  };

  /// Earliest time `stream` may inject its next packet (budget + IRD),
  /// opening a new message if none is pending.
  [[nodiscard]] core::Time stream_ready_at(Stream& stream, core::Time now);
  [[nodiscard]] ib::PacketHandle emit(Stream& stream, core::Time now);

  ib::NodeId self_;
  BNodeParams params_;
  const HotspotProvider* hotspot_;
  const cc::FlowGate* gate_;
  ib::PacketArena* arena_;
  core::Rng rng_;
  UniformDestination uniform_;
  Stream streams_[2];  ///< [0] hotspot, [1] uniform
};

}  // namespace ibsim::traffic
