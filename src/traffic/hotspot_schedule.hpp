#pragma once

#include <cstdint>
#include <vector>

#include "core/event.hpp"
#include "core/rng.hpp"
#include "core/scheduler.hpp"
#include "ib/types.hpp"

namespace ibsim::traffic {

/// Where a contributor subset should currently send its hotspot traffic.
class HotspotProvider {
 public:
  virtual ~HotspotProvider() = default;
  [[nodiscard]] virtual ib::NodeId current_hotspot() const = 0;
};

/// The set of hotspots in the network and, for moving scenarios, their
/// relocation over time (paper section V-C): every `lifetime`, all
/// hotspots are re-drawn as random distinct end nodes, which tears one
/// congestion-tree forest down and grows another somewhere else.
///
/// A `lifetime` of core::kTimeNever keeps the hotspots static (the silent
/// and windy scenarios of sections V-A and V-B).
class HotspotSchedule final : public core::EventHandler {
 public:
  HotspotSchedule(std::int32_t n_nodes, std::int32_t n_hotspots, core::Time lifetime,
                  core::Rng rng);

  /// Draw the initial hotspot set and, if moving, schedule relocations.
  void install(core::Scheduler& sched);

  void on_event(core::Scheduler& sched, const core::Event& ev) override;

  [[nodiscard]] ib::NodeId hotspot(std::int32_t subset) const {
    return hotspots_[static_cast<std::size_t>(subset)];
  }
  [[nodiscard]] const std::vector<ib::NodeId>& hotspots() const { return hotspots_; }
  [[nodiscard]] bool is_hotspot(ib::NodeId node) const {
    return is_hotspot_[static_cast<std::size_t>(node)];
  }
  [[nodiscard]] std::int32_t n_hotspots() const {
    return static_cast<std::int32_t>(hotspots_.size());
  }
  [[nodiscard]] bool moving() const { return lifetime_ != core::kTimeNever; }
  [[nodiscard]] core::Time lifetime() const { return lifetime_; }
  [[nodiscard]] std::int32_t moves() const { return moves_; }

 private:
  void redraw();

  std::int32_t n_nodes_;
  core::Time lifetime_;
  core::Rng rng_;
  std::vector<ib::NodeId> hotspots_;
  std::vector<bool> is_hotspot_;
  std::int32_t moves_ = 0;
};

/// HotspotProvider view of one subset of a schedule.
class ScheduleHotspot final : public HotspotProvider {
 public:
  ScheduleHotspot(const HotspotSchedule* schedule, std::int32_t subset)
      : schedule_(schedule), subset_(subset) {}
  [[nodiscard]] ib::NodeId current_hotspot() const override {
    return schedule_->hotspot(subset_);
  }

 private:
  const HotspotSchedule* schedule_;
  std::int32_t subset_;
};

/// Fixed single hotspot (tests, minimal examples).
class FixedHotspot final : public HotspotProvider {
 public:
  explicit FixedHotspot(ib::NodeId dst) : dst_(dst) {}
  [[nodiscard]] ib::NodeId current_hotspot() const override { return dst_; }

 private:
  ib::NodeId dst_;
};

}  // namespace ibsim::traffic
