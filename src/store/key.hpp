#pragma once

#include <string>

#include "sim/sim_config.hpp"

namespace ibsim::store {

/// Canonical text form of a fully-resolved SimConfig: one `key=value`
/// line per field, fields in a fixed order, doubles printed as C hexfloat
/// (`%a`, exact round-trip), times/integers in decimal. Every SimConfig
/// field is included — even ones proven bit-identical across settings
/// (scheduler queue, fabric fast path, snapshot cache): a conservative
/// key can only cost a cache miss, never return a wrong result. The one
/// exception is `result_store` itself, which names where results are
/// cached and must not feed the key of what is cached.
///
/// Adding a field to SimConfig (or any struct it embeds) requires adding
/// it here; the round-trip tests in tests/store pin the format.
[[nodiscard]] std::string canonical_config_text(const sim::SimConfig& config);

/// The content key one run is stored under: SHA-256 over a versioned
/// header, the canonical config text (which includes the seed), and the
/// build's code-version stamp. Two processes built from the same commit
/// with clean trees compute identical keys for identical configs; any
/// config field, the seed, or the code version changing changes the key.
[[nodiscard]] std::string run_key(const sim::SimConfig& config);

/// run_key with an explicit version stamp (tests exercise version
/// sensitivity without rebuilding).
[[nodiscard]] std::string run_key_with_version(const sim::SimConfig& config,
                                               const std::string& code_version);

}  // namespace ibsim::store
