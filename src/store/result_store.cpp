#include "store/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "store/serialize.hpp"
#include "store/version.hpp"

namespace ibsim::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kRecordHeader = "ibsim-store-record-v1";
constexpr const char* kRecordTrailer = "end";

std::string hostname() {
  char buf[256];
  if (gethostname(buf, sizeof(buf)) != 0) return "unknown-host";
  buf[sizeof(buf) - 1] = '\0';
  return buf;
}

std::int64_t now_unix_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// `name <decimal byte count>\n<exactly that many bytes>` — the framed
/// blocks carrying config and result text inside a record.
void put_block(std::string& out, const char* name, const std::string& body) {
  out += name;
  out += ' ';
  out += std::to_string(body.size());
  out += '\n';
  out += body;
}

bool read_line(const std::string& text, std::size_t* pos, std::string* line) {
  if (*pos >= text.size()) return false;
  const std::size_t nl = text.find('\n', *pos);
  if (nl == std::string::npos) return false;
  *line = text.substr(*pos, nl - *pos);
  *pos = nl + 1;
  return true;
}

bool read_named(const std::string& text, std::size_t* pos, const char* name,
                std::string* value) {
  std::string line;
  if (!read_line(text, pos, &line)) return false;
  const std::string prefix = std::string(name) + ' ';
  if (line.rfind(prefix, 0) != 0) return false;
  *value = line.substr(prefix.size());
  return true;
}

bool read_block(const std::string& text, std::size_t* pos, const char* name,
                std::string* body) {
  std::string size_str;
  if (!read_named(text, pos, name, &size_str)) return false;
  char* end = nullptr;
  const std::uint64_t n = std::strtoull(size_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (*pos + n > text.size()) return false;
  *body = text.substr(*pos, n);
  *pos += n;
  return true;
}

}  // namespace

ResultStore::ResultStore(Options options)
    : dir_(std::move(options.dir)), max_entries_(options.max_entries) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  if (!ec) fs::create_directories(fs::path(dir_) / "tmp", ec);
  if (ec) {
    error_ = "cannot create store directory '" + dir_ + "': " + ec.message();
  }
}

std::string ResultStore::object_path(const std::string& key) const {
  const std::string shard = key.size() >= 2 ? key.substr(0, 2) : std::string("xx");
  return (fs::path(dir_) / "objects" / shard / key).string();
}

bool ResultStore::get_record(const std::string& key, RunRecord* record) {
  if (!error_.empty()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::ifstream in(object_path(key), std::ios::binary);
  if (!in.good()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // Parse the record; anything unexpected is a torn or foreign file and
  // counts as a miss (the next producer overwrites it).
  const auto bad = [&] {
    bad_records_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  std::size_t pos = 0;
  std::string line;
  if (!read_line(text, &pos, &line) || line != kRecordHeader) return bad();
  RunRecord r;
  if (!read_named(text, &pos, "key", &r.key) || r.key != key) return bad();
  if (!read_named(text, &pos, "version", &r.provenance.code_version)) return bad();
  if (!read_named(text, &pos, "host", &r.provenance.host)) return bad();
  std::string stamp;
  if (!read_named(text, &pos, "timestamp_us", &stamp)) return bad();
  r.provenance.timestamp_us = std::strtoll(stamp.c_str(), nullptr, 10);
  std::string wall;
  if (!read_named(text, &pos, "wall_seconds", &wall)) return bad();
  r.provenance.wall_seconds = std::strtod(wall.c_str(), nullptr);
  if (!read_block(text, &pos, "config_bytes", &r.config_text)) return bad();
  std::string result_text;
  if (!read_block(text, &pos, "result_bytes", &result_text)) return bad();
  if (!read_line(text, &pos, &line) || line != kRecordTrailer) return bad();
  if (pos != text.size()) return bad();
  if (!parse_result(result_text, &r.result)) return bad();

  hits_.fetch_add(1, std::memory_order_relaxed);
  *record = std::move(r);
  return true;
}

bool ResultStore::get(const std::string& key, sim::SimResult* result) {
  RunRecord record;
  if (!get_record(key, &record)) return false;
  *result = std::move(record.result);
  return true;
}

bool ResultStore::contains(const std::string& key) {
  sim::SimResult ignored;
  return get(key, &ignored);
}

void ResultStore::put(const std::string& key, const std::string& config_text,
                      const sim::SimResult& result, double wall_seconds) {
  if (!error_.empty()) return;

  std::string record;
  record.reserve(1024 + config_text.size());
  record += kRecordHeader;
  record += '\n';
  record += "key " + key + '\n';
  record += "version " + std::string(code_version()) + '\n';
  record += "host " + hostname() + '\n';
  record += "timestamp_us " + std::to_string(now_unix_us()) + '\n';
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", wall_seconds);
    record += "wall_seconds " + std::string(buf) + '\n';
  }
  put_block(record, "config_bytes", config_text);
  put_block(record, "result_bytes", serialize_result(result));
  record += kRecordTrailer;
  record += '\n';

  std::lock_guard<std::mutex> lock(write_mu_);
  const std::string tmp =
      (fs::path(dir_) / "tmp" /
       (key + "." + std::to_string(::getpid()) + "." +
        std::to_string(tmp_seq_.fetch_add(1, std::memory_order_relaxed))))
          .string();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << record;
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;
    }
  }
  const std::string object = object_path(key);
  std::error_code ec;
  fs::create_directories(fs::path(object).parent_path(), ec);
  if (!ec) fs::rename(tmp, object, ec);  // atomic publish
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  puts_.fetch_add(1, std::memory_order_relaxed);

  // Append-only provenance index; informational, never read back for
  // lookups, so a lost line costs nothing.
  std::ofstream index((fs::path(dir_) / "index.tsv").string(), std::ios::app);
  index << key << '\t' << code_version() << '\t' << now_unix_us() << '\t' << hostname()
        << '\n';

  if (max_entries_ > 0) evict_over_cap();
}

void ResultStore::evict_over_cap() {
  // Called under write_mu_. Collect (mtime, path), drop oldest first.
  struct Entry {
    fs::file_time_type mtime;
    fs::path path;
  };
  std::vector<Entry> all;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& object : fs::directory_iterator(shard.path(), ec)) {
      if (!object.is_regular_file()) continue;
      all.push_back({fs::last_write_time(object.path(), ec), object.path()});
    }
  }
  if (all.size() <= max_entries_) return;
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  const std::size_t excess = all.size() - static_cast<std::size_t>(max_entries_);
  for (std::size_t i = 0; i < excess; ++i) {
    if (fs::remove(all[i].path, ec)) {
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t ResultStore::entries() const {
  std::uint64_t n = 0;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& object : fs::directory_iterator(shard.path(), ec)) {
      if (object.is_regular_file()) ++n;
    }
  }
  return n;
}

std::vector<std::string> ResultStore::keys() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& object : fs::directory_iterator(shard.path(), ec)) {
      if (object.is_regular_file()) out.push_back(object.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ResultStore::Stats ResultStore::stats() const {
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
          puts_.load(std::memory_order_relaxed), evictions_.load(std::memory_order_relaxed),
          bad_records_.load(std::memory_order_relaxed)};
}

void ResultStore::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  puts_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  bad_records_.store(0, std::memory_order_relaxed);
}

void ResultStore::publish(telemetry::CounterRegistry& registry) const {
  const Stats s = stats();
  registry.set(registry.gauge("store.hits"), static_cast<std::int64_t>(s.hits));
  registry.set(registry.gauge("store.misses"), static_cast<std::int64_t>(s.misses));
  registry.set(registry.gauge("store.puts"), static_cast<std::int64_t>(s.puts));
  registry.set(registry.gauge("store.evictions"), static_cast<std::int64_t>(s.evictions));
  registry.set(registry.gauge("store.bad_records"),
               static_cast<std::int64_t>(s.bad_records));
  registry.set(registry.gauge("store.entries"), static_cast<std::int64_t>(entries()));
}

std::string ResultStore::stats_line() const {
  const Stats s = stats();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "store %s: hits=%llu misses=%llu puts=%llu evictions=%llu bad=%llu",
                dir_.c_str(), static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.puts),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.bad_records));
  return buf;
}

StoreRegistry& StoreRegistry::instance() {
  static StoreRegistry registry;
  return registry;
}

std::shared_ptr<ResultStore> StoreRegistry::open(const std::string& dir) {
  // lexically_normal keeps a trailing separator ("x/." -> "x/"), which
  // would split one directory across two store instances.
  std::string norm = fs::path(dir).lexically_normal().string();
  while (norm.size() > 1 && norm.back() == fs::path::preferred_separator) norm.pop_back();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stores_.find(norm);
  if (it != stores_.end()) return it->second;
  auto store = std::make_shared<ResultStore>(ResultStore::Options{norm, 0});
  stores_.emplace(norm, store);
  return store;
}

void StoreRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stores_.clear();
}

}  // namespace ibsim::store
