#include "store/version.hpp"

namespace ibsim::store {

std::string version_line(const char* program) {
  return std::string(program) + " " + code_version();
}

}  // namespace ibsim::store
