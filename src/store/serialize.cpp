#include "store/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ibsim::store {

namespace {

constexpr const char* kHeader = "ibsim-result-v1";
constexpr const char* kTrailer = "end";

void put_double(std::string& out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out += name;
  out += ' ';
  out += buf;
  out += '\n';
}

void put_i64(std::string& out, const char* name, std::int64_t v) {
  out += name;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void put_u64(std::string& out, const char* name, std::uint64_t v) {
  out += name;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

/// Reader over the serialized lines: each get_* consumes one line and
/// validates its field name, so reordered or missing fields fail loudly
/// instead of silently mis-assigning.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  bool next(std::string* line) { return static_cast<bool>(std::getline(in_, *line)); }

  bool expect_named(const char* name, std::string* value) {
    std::string line;
    if (!next(&line)) return false;
    const std::string prefix = std::string(name) + ' ';
    if (line.rfind(prefix, 0) != 0) return false;
    *value = line.substr(prefix.size());
    return !value->empty();
  }

  bool get_double(const char* name, double* v) {
    std::string value;
    if (!expect_named(name, &value)) return false;
    char* end = nullptr;
    *v = std::strtod(value.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  bool get_i64(const char* name, std::int64_t* v) {
    std::string value;
    if (!expect_named(name, &value)) return false;
    char* end = nullptr;
    *v = std::strtoll(value.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }

  bool get_u64(const char* name, std::uint64_t* v) {
    std::string value;
    if (!expect_named(name, &value)) return false;
    char* end = nullptr;
    *v = std::strtoull(value.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
  }

 private:
  std::istringstream in_;
};

bool parse_time_list(const std::string& value, std::vector<core::Time>* out) {
  std::istringstream in(value);
  std::uint64_t n = 0;
  if (!(in >> n)) return false;
  out->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::int64_t t = 0;
    if (!(in >> t)) return false;
    out->push_back(t);
  }
  std::string extra;
  return !(in >> extra);
}

}  // namespace

std::string serialize_result(const sim::SimResult& r) {
  std::string out;
  out.reserve(1024 + 48 * r.counters.size());
  out += kHeader;
  out += '\n';
  put_double(out, "hotspot_rcv_gbps", r.hotspot_rcv_gbps);
  put_double(out, "non_hotspot_rcv_gbps", r.non_hotspot_rcv_gbps);
  put_double(out, "all_rcv_gbps", r.all_rcv_gbps);
  put_double(out, "total_throughput_gbps", r.total_throughput_gbps);
  put_double(out, "jain_non_hotspot", r.jain_non_hotspot);
  put_double(out, "median_latency_us", r.median_latency_us);
  put_double(out, "p99_latency_us", r.p99_latency_us);
  put_u64(out, "fecn_marked", r.fecn_marked);
  put_u64(out, "cnps_sent", r.cnps_sent);
  put_u64(out, "becn_received", r.becn_received);
  put_i64(out, "delivered_bytes", r.delivered_bytes);
  put_u64(out, "events_executed", r.events_executed);
  put_u64(out, "delivered_packets", r.delivered_packets);
  {
    out += "events_by_kind " + std::to_string(r.events_by_kind.size());
    for (const std::uint64_t v : r.events_by_kind) {
      out += ' ';
      out += std::to_string(v);
    }
    out += '\n';
  }
  put_u64(out, "counters", r.counters.size());
  for (const auto& [name, value] : r.counters) {
    // std::map iterates name-sorted, so equal results serialize to
    // equal bytes. Counter names never contain whitespace.
    out += "c " + name + ' ' + std::to_string(value) + '\n';
  }
  {
    const sim::WorkloadResult& w = r.workload;
    out += std::string("workload ") + (w.ran ? "1" : "0") + ' ' + (w.completed ? "1" : "0") +
           ' ' + std::to_string(w.makespan) + ' ' + std::to_string(w.messages_completed) +
           ' ' + std::to_string(w.messages_total) + '\n';
    out += "rank_finish " + std::to_string(w.rank_finish.size());
    for (const core::Time t : w.rank_finish) out += ' ' + std::to_string(t);
    out += '\n';
    out += "phase_finish " + std::to_string(w.phase_finish.size());
    for (const core::Time t : w.phase_finish) out += ' ' + std::to_string(t);
    out += '\n';
  }
  out += kTrailer;
  out += '\n';
  return out;
}

bool parse_result(const std::string& text, sim::SimResult* result) {
  *result = sim::SimResult{};
  LineReader in(text);
  std::string line;
  if (!in.next(&line) || line != kHeader) return false;

  sim::SimResult r;
  if (!in.get_double("hotspot_rcv_gbps", &r.hotspot_rcv_gbps)) return false;
  if (!in.get_double("non_hotspot_rcv_gbps", &r.non_hotspot_rcv_gbps)) return false;
  if (!in.get_double("all_rcv_gbps", &r.all_rcv_gbps)) return false;
  if (!in.get_double("total_throughput_gbps", &r.total_throughput_gbps)) return false;
  if (!in.get_double("jain_non_hotspot", &r.jain_non_hotspot)) return false;
  if (!in.get_double("median_latency_us", &r.median_latency_us)) return false;
  if (!in.get_double("p99_latency_us", &r.p99_latency_us)) return false;
  if (!in.get_u64("fecn_marked", &r.fecn_marked)) return false;
  if (!in.get_u64("cnps_sent", &r.cnps_sent)) return false;
  if (!in.get_u64("becn_received", &r.becn_received)) return false;
  if (!in.get_i64("delivered_bytes", &r.delivered_bytes)) return false;
  if (!in.get_u64("events_executed", &r.events_executed)) return false;
  if (!in.get_u64("delivered_packets", &r.delivered_packets)) return false;
  {
    std::string value;
    if (!in.expect_named("events_by_kind", &value)) return false;
    std::istringstream slots(value);
    std::uint64_t n = 0;
    if (!(slots >> n) || n != r.events_by_kind.size()) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!(slots >> r.events_by_kind[i])) return false;
    }
  }
  std::uint64_t n_counters = 0;
  if (!in.get_u64("counters", &n_counters)) return false;
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    if (!in.next(&line)) return false;
    std::istringstream row(line);
    std::string tag;
    std::string name;
    std::int64_t value = 0;
    if (!(row >> tag >> name >> value) || tag != "c") return false;
    r.counters.emplace(std::move(name), value);
  }
  {
    std::string value;
    if (!in.expect_named("workload", &value)) return false;
    std::istringstream w(value);
    int ran = 0;
    int completed = 0;
    std::int64_t makespan = 0;
    if (!(w >> ran >> completed >> makespan >> r.workload.messages_completed >>
          r.workload.messages_total)) {
      return false;
    }
    r.workload.ran = ran != 0;
    r.workload.completed = completed != 0;
    r.workload.makespan = makespan;
    if (!in.expect_named("rank_finish", &value)) return false;
    if (!parse_time_list(value, &r.workload.rank_finish)) return false;
    if (!in.expect_named("phase_finish", &value)) return false;
    if (!parse_time_list(value, &r.workload.phase_finish)) return false;
  }
  if (!in.next(&line) || line != kTrailer) return false;
  if (in.next(&line)) return false;  // trailing garbage

  *result = std::move(r);
  return true;
}

}  // namespace ibsim::store
