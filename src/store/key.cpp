#include "store/key.hpp"

#include <cstdio>

#include "store/hash.hpp"
#include "store/version.hpp"

namespace ibsim::store {

namespace {

/// Line-oriented canonical writer. Doubles go out as hexfloat so the
/// text identifies the exact bit pattern; two configs differing in any
/// ULP of any parameter get different keys.
class CanonicalWriter {
 public:
  void field(const char* name, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    line(name, buf);
  }
  void field(const char* name, std::int64_t v) { line(name, std::to_string(v)); }
  void field(const char* name, std::uint64_t v) { line(name, std::to_string(v)); }
  void field(const char* name, std::int32_t v) { line(name, std::to_string(v)); }
  void field(const char* name, bool v) { line(name, v ? "1" : "0"); }
  void field(const char* name, const std::string& v) { line(name, v); }

  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void line(const char* name, const std::string& value) {
    out_ += name;
    out_ += '=';
    out_ += value;
    out_ += '\n';
  }
  std::string out_;
};

const char* queue_kind_name(core::QueueKind kind) {
  return kind == core::QueueKind::kTwoTier ? "two_tier" : "heap";
}

const char* cct_fill_name(ib::CctFill fill) {
  return fill == ib::CctFill::Geometric ? "geometric" : "linear";
}

/// Local copy of the topology names: ibsim_store links below ibsim_sim
/// (which defines sim::topology_name), so the key module keeps its own
/// mapping rather than creating a static-library cycle. Names are part
/// of the key format — renaming one invalidates cached entries, which
/// is the correct behaviour for a format change.
const char* topology_key_name(sim::TopologyKind kind) {
  switch (kind) {
    case sim::TopologyKind::SingleSwitch: return "single";
    case sim::TopologyKind::FoldedClos: return "clos";
    case sim::TopologyKind::FatTree3: return "fat_tree3";
    case sim::TopologyKind::LinearChain: return "chain";
    case sim::TopologyKind::Dumbbell: return "dumbbell";
    case sim::TopologyKind::Mesh2D: return "mesh";
  }
  return "unknown";
}

}  // namespace

std::string canonical_config_text(const sim::SimConfig& c) {
  CanonicalWriter w;

  // Topology. Every family's parameters are emitted regardless of the
  // selected kind: "fully resolved" means the whole struct, so the key
  // tests' "any field changes the key" property holds without a
  // per-kind field map that could drift out of date.
  w.field("topology", std::string(topology_key_name(c.topology)));
  w.field("clos.leaves", c.clos.leaves);
  w.field("clos.spines", c.clos.spines);
  w.field("clos.nodes_per_leaf", c.clos.nodes_per_leaf);
  w.field("fat_tree3.pods", c.fat_tree3.pods);
  w.field("fat_tree3.leaves_per_pod", c.fat_tree3.leaves_per_pod);
  w.field("fat_tree3.aggs_per_pod", c.fat_tree3.aggs_per_pod);
  w.field("fat_tree3.cores", c.fat_tree3.cores);
  w.field("fat_tree3.nodes_per_leaf", c.fat_tree3.nodes_per_leaf);
  w.field("single_switch_nodes", c.single_switch_nodes);
  w.field("chain_switches", c.chain_switches);
  w.field("chain_nodes_per_switch", c.chain_nodes_per_switch);
  w.field("dumbbell_nodes_per_side", c.dumbbell_nodes_per_side);
  w.field("mesh_rows", c.mesh_rows);
  w.field("mesh_cols", c.mesh_cols);
  w.field("mesh_nodes_per_switch", c.mesh_nodes_per_switch);

  // Fabric calibration.
  w.field("fabric.wire_gbps", c.fabric.wire_gbps);
  w.field("fabric.hca_inject_gbps", c.fabric.hca_inject_gbps);
  w.field("fabric.hca_drain_gbps", c.fabric.hca_drain_gbps);
  w.field("fabric.link_delay", static_cast<std::int64_t>(c.fabric.link_delay));
  w.field("fabric.switch_delay", static_cast<std::int64_t>(c.fabric.switch_delay));
  w.field("fabric.hca_rx_delay", static_cast<std::int64_t>(c.fabric.hca_rx_delay));
  w.field("fabric.credit_delay", static_cast<std::int64_t>(c.fabric.credit_delay));
  w.field("fabric.n_vls", c.fabric.n_vls);
  w.field("fabric.cnp_on_own_vl", c.fabric.cnp_on_own_vl);
  w.field("fabric.switch_ibuf_data_bytes", c.fabric.switch_ibuf_data_bytes);
  w.field("fabric.switch_ibuf_cnp_bytes", c.fabric.switch_ibuf_cnp_bytes);
  w.field("fabric.hca_ibuf_data_bytes", c.fabric.hca_ibuf_data_bytes);
  w.field("fabric.hca_ibuf_cnp_bytes", c.fabric.hca_ibuf_cnp_bytes);
  w.field("fabric.cut_through", c.fabric.cut_through);
  w.field("fabric.fast_path", c.fabric.fast_path);

  // Congestion control.
  w.field("cc.enabled", c.cc.enabled);
  w.field("cc.threshold_weight", static_cast<std::int64_t>(c.cc.threshold_weight));
  w.field("cc.marking_rate", static_cast<std::int64_t>(c.cc.marking_rate));
  w.field("cc.packet_size", static_cast<std::int64_t>(c.cc.packet_size));
  w.field("cc.victim_mask_hca_ports", c.cc.victim_mask_hca_ports);
  w.field("cc.ccti_increase", static_cast<std::int64_t>(c.cc.ccti_increase));
  w.field("cc.ccti_limit", static_cast<std::int64_t>(c.cc.ccti_limit));
  w.field("cc.ccti_min", static_cast<std::int64_t>(c.cc.ccti_min));
  w.field("cc.ccti_timer", static_cast<std::int64_t>(c.cc.ccti_timer));
  w.field("cc.cct_fill", std::string(cct_fill_name(c.cc.cct_fill)));
  w.field("cc.cct_base", c.cc.cct_base);
  w.field("cc.sl_level", c.cc.sl_level);
  w.field("cc_algo", c.cc_algo);

  // Traffic scenario.
  w.field("scenario.fraction_b", c.scenario.fraction_b);
  w.field("scenario.p", c.scenario.p);
  w.field("scenario.fraction_c_of_rest", c.scenario.fraction_c_of_rest);
  w.field("scenario.n_hotspots", c.scenario.n_hotspots);
  w.field("scenario.hotspot_lifetime", static_cast<std::int64_t>(c.scenario.hotspot_lifetime));
  w.field("scenario.c_nodes_active", c.scenario.c_nodes_active);
  w.field("scenario.capacity_gbps", c.scenario.capacity_gbps);

  // Application workload.
  w.field("workload.name", c.workload.name);
  w.field("workload.file", c.workload.file);
  w.field("workload.ranks", c.workload.ranks);
  w.field("workload.message_bytes", c.workload.message_bytes);
  w.field("workload.iterations", c.workload.iterations);
  w.field("workload.compute", static_cast<std::int64_t>(c.workload.compute));
  w.field("workload.background_uniform", c.workload.background_uniform);

  // Run control.
  w.field("sim_time", static_cast<std::int64_t>(c.sim_time));
  w.field("warmup", static_cast<std::int64_t>(c.warmup));
  w.field("seed", c.seed);
  w.field("snapshot_cache", c.snapshot_cache);
  w.field("scheduler_queue", std::string(queue_kind_name(c.scheduler_queue)));
  w.field("fabric_fast_path", c.fabric_fast_path);
  w.field("latency_hist_max_us", c.latency_hist_max_us);
  // Sharded runs are deterministic per shard count but cross-shard
  // interleaving can differ between shard counts, so `shards` is part of
  // the key. `threads` is deliberately absent: worker count never
  // changes results (like result_store, it is orchestration-only).
  w.field("shards", static_cast<std::int64_t>(c.shards));

  // Telemetry: all of it feeds the key. counters/detailed change the
  // SimResult::counters map, and a CSV sampler schedules its own events
  // so events_executed differs from an unsampled run.
  w.field("telemetry.counters", c.telemetry.counters);
  w.field("telemetry.trace_path", c.telemetry.trace_path);
  w.field("telemetry.trace_categories", c.telemetry.trace_categories);
  w.field("telemetry.counters_csv", c.telemetry.counters_csv);
  w.field("telemetry.sample_interval", static_cast<std::int64_t>(c.telemetry.sample_interval));
  w.field("telemetry.trace_ring_capacity", c.telemetry.trace_ring_capacity);
  w.field("telemetry.detailed", c.telemetry.detailed);

  return w.take();
}

std::string run_key_with_version(const sim::SimConfig& config,
                                 const std::string& code_version) {
  Sha256 h;
  static const char* header = "ibsim-run-key-v1\n";
  h.update(header, std::char_traits<char>::length(header));
  const std::string text = canonical_config_text(config);
  h.update(text.data(), text.size());
  const std::string version_line = "code_version=" + code_version + "\n";
  h.update(version_line.data(), version_line.size());
  return h.hex_digest();
}

std::string run_key(const sim::SimConfig& config) {
  return run_key_with_version(config, code_version());
}

}  // namespace ibsim::store
