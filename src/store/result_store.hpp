#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulation.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::store {

/// Provenance of one stored run: who computed it, when, with which
/// build. Not part of the key — two hosts computing the same cell
/// produce records that differ only here, and either is valid.
struct RunProvenance {
  std::string code_version;
  std::string host;
  std::int64_t timestamp_us = 0;  ///< wall clock at publish (unix epoch)
  double wall_seconds = 0.0;      ///< simulation wall time on the producer
};

/// One record as loaded back from disk.
struct RunRecord {
  std::string key;
  RunProvenance provenance;
  std::string config_text;  ///< canonical config text (store/key.hpp)
  sim::SimResult result;
};

/// On-disk, content-addressed store of simulation results.
///
/// Layout under the store directory:
///
///   objects/<key[0:2]>/<key>   one record per run (see result_store.cpp)
///   tmp/                       in-flight writes before publication
///   index.tsv                  append-only log: key, version, time, host
///
/// Publishing is write-then-rename: a record is materialised in tmp/ and
/// renamed into objects/, so readers — concurrent threads or other
/// processes sharing the directory — only ever observe absent or
/// complete records. A record that fails validation (torn write from a
/// crashed producer, version drift in the format) reads as a miss and
/// is overwritten by the next producer. Concurrent producers of the
/// same key race benignly: both write equivalent records and the last
/// rename wins.
///
/// get/put are thread-safe. Instances are usually shared through
/// StoreRegistry so a sweep's workers and its harness count stats on
/// the same object.
class ResultStore {
 public:
  struct Options {
    std::string dir;
    /// Retain at most this many records (0 = unlimited). Exceeding the
    /// cap evicts oldest-mtime records after a put — a crude LRU that
    /// keeps long-lived shared stores bounded.
    std::uint64_t max_entries = 0;
  };

  /// Opens (and creates, if needed) the store directory. Throws nothing:
  /// a directory that cannot be created leaves the store in an error
  /// state where every get misses and every put is dropped (error()
  /// tells why) — a broken cache must degrade to "no cache", never
  /// break the sweep.
  explicit ResultStore(Options options);

  /// Look up a run by key. On a hit fills `*result` and returns true.
  bool get(const std::string& key, sim::SimResult* result);

  /// Like get, but also returns provenance and config text.
  bool get_record(const std::string& key, RunRecord* record);

  [[nodiscard]] bool contains(const std::string& key);

  /// Publish a run. `config_text` is the canonical config
  /// (store/key.hpp) kept for provenance and debugging; `wall_seconds`
  /// is how long the simulation took to compute.
  void put(const std::string& key, const std::string& config_text,
           const sim::SimResult& result, double wall_seconds);

  /// Number of records currently on disk (scans the objects tree).
  [[nodiscard]] std::uint64_t entries() const;

  /// Keys of every record on disk, sorted (tests, sweepctl status).
  [[nodiscard]] std::vector<std::string> keys() const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t puts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bad_records = 0;  ///< torn/invalid records encountered
  };
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Publish the stats as store.* gauges (store.hits, store.misses,
  /// store.puts, store.evictions, store.bad_records, store.entries).
  void publish(telemetry::CounterRegistry& registry) const;

  /// One-line human summary: "store <dir>: hits=H misses=M puts=P ...".
  [[nodiscard]] std::string stats_line() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  /// Empty when the store is usable; otherwise why it is disabled.
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  [[nodiscard]] std::string object_path(const std::string& key) const;
  void evict_over_cap();

  std::string dir_;
  std::uint64_t max_entries_ = 0;
  std::string error_;
  std::mutex write_mu_;  // serializes put/evict within this process
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bad_records_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
};

/// Process-wide directory-keyed registry of open stores, so every
/// subsystem touching `--result-store=DIR` (run_parallel workers, the
/// sweep service, the CLI front ends) shares one ResultStore per
/// directory and its stats aggregate in one place.
class StoreRegistry {
 public:
  static StoreRegistry& instance();

  /// Get-or-open the store at `dir` (normalized lexically).
  [[nodiscard]] std::shared_ptr<ResultStore> open(const std::string& dir);

  /// Drop registry references (open stores stay valid for holders).
  void clear();

 private:
  StoreRegistry() = default;
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ResultStore>> stores_;
};

}  // namespace ibsim::store
