#pragma once

#include <string>

#include "sim/simulation.hpp"

namespace ibsim::store {

/// Serialize a SimResult as versioned line-oriented text. Doubles are
/// written as C hexfloat (`%a`), so parse_result reconstructs every
/// field bit-for-bit — the store's contract is that a cached result is
/// indistinguishable from a fresh run, down to the last ULP.
[[nodiscard]] std::string serialize_result(const sim::SimResult& result);

/// Parse text produced by serialize_result. Returns true and fills
/// `*result` on success; returns false on any malformed, truncated, or
/// version-mismatched input (the store then treats the record as a
/// miss). `*result` is value-initialized before parsing either way.
[[nodiscard]] bool parse_result(const std::string& text, sim::SimResult* result);

}  // namespace ibsim::store
