#pragma once

#include <cstdint>
#include <string>

namespace ibsim::store {

/// Self-contained SHA-256 (FIPS 180-4). The result store keys runs by
/// content hash; a 64-bit mixer would make accidental key collisions a
/// realistic event over campaign-sized stores, so we pay the ~100 lines
/// for a real cryptographic digest instead of depending on a library
/// the build image may not carry.
class Sha256 {
 public:
  Sha256();

  /// Absorb `len` bytes. May be called repeatedly.
  void update(const void* data, std::size_t len);

  /// Finalise and return the 64-char lowercase hex digest. The object
  /// must not be updated afterwards.
  [[nodiscard]] std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
};

/// One-shot convenience: hex SHA-256 of a string.
[[nodiscard]] std::string sha256_hex(const std::string& data);

}  // namespace ibsim::store
