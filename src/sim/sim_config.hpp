#pragma once

#include <cstdint>
#include <string>

#include "fabric/params.hpp"
#include "ib/cc_params.hpp"
#include "topo/builders.hpp"
#include "traffic/scenario.hpp"

namespace ibsim::sim {

/// Which physical topology to instantiate.
enum class TopologyKind : std::uint8_t {
  SingleSwitch,
  FoldedClos,
  FatTree3,
  LinearChain,
  Dumbbell,
  Mesh2D,
};

[[nodiscard]] const char* topology_name(TopologyKind kind);

/// Complete description of one simulation run: topology, fabric
/// calibration, CC parameters, traffic scenario, and timing.
struct SimConfig {
  TopologyKind topology = TopologyKind::FoldedClos;
  topo::FoldedClosParams clos = topo::FoldedClosParams::sun_dcs_648();
  topo::FatTree3Params fat_tree3;
  std::int32_t single_switch_nodes = 8;
  std::int32_t chain_switches = 4;
  std::int32_t chain_nodes_per_switch = 2;
  std::int32_t dumbbell_nodes_per_side = 4;
  std::int32_t mesh_rows = 4;
  std::int32_t mesh_cols = 4;
  std::int32_t mesh_nodes_per_switch = 4;

  fabric::FabricParams fabric;
  ib::CcParams cc = ib::CcParams::paper_table1();
  traffic::ScenarioSpec scenario;

  /// Total simulated time and the warm-up prefix excluded from metrics.
  core::Time sim_time = 2 * core::kMillisecond;
  core::Time warmup = 500 * core::kMicrosecond;

  std::uint64_t seed = 1;

  /// Latency histogram range (microseconds).
  double latency_hist_max_us = 20000.0;

  [[nodiscard]] std::int32_t node_count() const;
  [[nodiscard]] std::string describe() const;
};

}  // namespace ibsim::sim
