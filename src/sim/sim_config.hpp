#pragma once

#include <cstdint>
#include <string>

#include "core/event_queue.hpp"
#include "core/time.hpp"
#include "fabric/params.hpp"
#include "ib/cc_params.hpp"
#include "topo/builders.hpp"
#include "traffic/scenario.hpp"

namespace ibsim::sim {

/// Which physical topology to instantiate.
enum class TopologyKind : std::uint8_t {
  SingleSwitch,
  FoldedClos,
  FatTree3,
  LinearChain,
  Dumbbell,
  Mesh2D,
};

[[nodiscard]] const char* topology_name(TopologyKind kind);

/// Observability knobs of one run. Everything is off by default — the
/// simulation then never constructs a Telemetry instance and the fabric
/// hot paths pay a single null check.
struct TelemetrySettings {
  /// Force the counter registry on even without a trace/CSV destination
  /// (fills SimResult::counters).
  bool counters = false;
  /// Chrome trace-event JSON destination ("" = no tracing).
  std::string trace_path;
  /// Comma-separated trace categories ("cc,credits,queues,arb"; "all").
  std::string trace_categories = "all";
  /// Counter time-series CSV destination ("" = no sampler). NOTE: the
  /// sampler schedules its own events, so events_executed differs from an
  /// unsampled run (simulated behaviour still does not).
  std::string counters_csv;
  /// Sampling cadence of the CSV time series.
  core::Time sample_interval = 50 * core::kMicrosecond;
  /// Trace ring capacity (events); oldest records drop when exceeded.
  std::int64_t trace_ring_capacity = 1 << 20;
  /// Register per-port/per-node instruments, not just fabric aggregates.
  bool detailed = false;

  [[nodiscard]] bool tracing() const { return !trace_path.empty(); }
  [[nodiscard]] bool active() const {
    return counters || tracing() || !counters_csv.empty() || detailed;
  }
};

/// Application workload riding on the run (src/workload). When active,
/// the workload engine replaces the synthetic scenario as the traffic
/// source: end nodes 0..ranks-1 run the workload's ranks, the remaining
/// nodes optionally send uniform background ("victim") traffic.
struct WorkloadSettings {
  /// Workload name: "" keeps the synthetic scenario (workload off), a
  /// workload::WorkloadRegistry key runs a canned pattern, and "file"
  /// loads the DSL file named by `file`.
  std::string name;
  std::string file;
  /// Ranks the pattern builders use; 0 means every end node.
  std::int32_t ranks = 0;
  /// Payload per logical message of the canned patterns.
  std::int64_t message_bytes = 64 * 1024;
  /// Iterations of the canned patterns.
  std::int32_t iterations = 1;
  /// Per-iteration compute delay of the canned patterns.
  core::Time compute = 0;
  /// Fill non-rank end nodes with saturating uniform senders — the
  /// victim flows the CC comparisons measure.
  bool background_uniform = true;

  [[nodiscard]] bool active() const { return !name.empty(); }
};

/// Complete description of one simulation run: topology, fabric
/// calibration, CC parameters, traffic scenario, and timing.
struct SimConfig {
  TopologyKind topology = TopologyKind::FoldedClos;
  topo::FoldedClosParams clos = topo::FoldedClosParams::sun_dcs_648();
  topo::FatTree3Params fat_tree3;
  std::int32_t single_switch_nodes = 8;
  std::int32_t chain_switches = 4;
  std::int32_t chain_nodes_per_switch = 2;
  std::int32_t dumbbell_nodes_per_side = 4;
  std::int32_t mesh_rows = 4;
  std::int32_t mesh_cols = 4;
  std::int32_t mesh_nodes_per_switch = 4;

  fabric::FabricParams fabric;
  ib::CcParams cc = ib::CcParams::paper_table1();
  /// Reaction-point algorithm name (a ccalg::CcAlgorithmRegistry key:
  /// "iba_a10", "dcqcn", "aimd", "none"). Ignored when cc.enabled is
  /// false — the effective algorithm is "none" then.
  std::string cc_algo = "iba_a10";
  traffic::ScenarioSpec scenario;
  /// Application workload (inactive by default; replaces `scenario`
  /// when `workload.active()`).
  WorkloadSettings workload;

  /// Total simulated time and the warm-up prefix excluded from metrics.
  core::Time sim_time = 2 * core::kMillisecond;
  core::Time warmup = 500 * core::kMicrosecond;

  std::uint64_t seed = 1;

  /// Share topology/routing snapshots across runs through the process-wide
  /// content-keyed SnapshotCache (sim/snapshot.hpp). Snapshots are
  /// immutable either way — disabling only forces every Simulation to
  /// rebuild its own copy, which the cache-equivalence tests use to prove
  /// results are bit-identical with sharing on and off.
  bool snapshot_cache = true;

  /// Pending-event structure of the run's scheduler. The default
  /// two-tier calendar queue and the reference heap produce bit-identical
  /// simulations (guarded by the A/B determinism tests); the heap exists
  /// for those tests and for perf comparisons.
  core::QueueKind scheduler_queue = core::QueueKind::kTwoTier;

  /// Fabric event fast path (fabric::FabricParams::fast_path): lazy link
  /// wakeups, busy-aware credit handling and coalesced credit returns.
  /// On and off produce bit-identical SimResults (guarded by the A/B
  /// equivalence tests); off runs the reference one-event-per-action
  /// chain, cutting only events_executed, never behaviour.
  bool fabric_fast_path = true;

  /// Latency histogram range (microseconds).
  double latency_hist_max_us = 20000.0;

  /// Intra-run parallelism: number of fabric shards the simulation is
  /// spatially partitioned into (DESIGN.md §15). 1 (the default) runs
  /// the serial engine; 0 derives the shard count from the resolved
  /// thread count. Values above the switch count are clamped. The shard
  /// count is simulation-affecting (cross-shard event interleaving can
  /// legitimately differ between shard counts), so it is part of the
  /// result-store key; for a fixed shard count results are run-to-run
  /// deterministic.
  std::int32_t shards = 1;

  /// Worker threads for parallel execution: the intra-run shard workers
  /// and (via resolve_threads) sweep workers share this knob. 0 defers
  /// to IBSIM_THREADS, then hardware concurrency; precedence is
  /// CLI --threads > config-file `threads` > IBSIM_THREADS > hardware.
  /// Orchestration-only — thread count never changes results (shards
  /// execute deterministically regardless of worker count) — so like
  /// result_store it is excluded from the store key.
  std::int32_t threads = 0;

  /// On-disk result store directory ("" = no store). When set, sweep
  /// harnesses (run_parallel, simulate, the sweep service) consult the
  /// content-addressed store (src/store) before running and publish
  /// fresh results into it, so repeated and interrupted campaigns only
  /// compute missing cells. Orchestration-only: this path is the one
  /// SimConfig field excluded from the store key
  /// (store::canonical_config_text) — where a result is cached must not
  /// change what it is keyed as.
  ///
  /// NOTE: any new simulation-affecting field added to SimConfig (or the
  /// structs it embeds) must also be added to
  /// store::canonical_config_text, or stale cached results could alias
  /// the new behaviour. tests/store/key_test.cpp pins the existing
  /// fields.
  std::string result_store;

  /// Observability (off by default; see TelemetrySettings).
  TelemetrySettings telemetry;

  [[nodiscard]] std::int32_t node_count() const;
  [[nodiscard]] std::string describe() const;
};

}  // namespace ibsim::sim
