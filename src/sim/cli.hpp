#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ibsim::sim {

/// Minimal long-option parser shared by the bench and example binaries:
/// `--flag`, `--key=value` or `--key value`. Unknown options abort with a
/// usage message listing the registered options.
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Register options with defaults (also defines the help text).
  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, std::int64_t default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, std::string default_value, const std::string& help);

  /// Parse argv. On `--help` prints usage and returns false (caller
  /// should exit 0); on errors prints a message and calls exit(2).
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] bool flag(const std::string& name) const;
  /// True when the option appeared on the command line (as opposed to
  /// holding its registered default). Lets callers layer flags over a
  /// config file without the defaults clobbering it.
  [[nodiscard]] bool was_set(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  void print_usage() const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    Kind kind;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool set_on_command_line = false;
  };

  const Option& require(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace ibsim::sim
