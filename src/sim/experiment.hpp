#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "sim/simulation.hpp"
#include "telemetry/counters.hpp"

namespace ibsim::sim {

/// Scale preset shared by the paper-reproduction benchmarks. The paper
/// simulates 0.1 s timeslots on the 648-node fabric; throughput ratios
/// converge orders of magnitude earlier, so the default ("quick") preset
/// keeps the full topology but shortens the measured window, and scales
/// the moving-hotspot axis together with the CCTI timer so the
/// lifetime-to-recovery-time ratio matches the paper's sweep.
/// `ExperimentPreset::from_env()` honours IBSIM_FULL=1 for paper-scale
/// windows.
struct ExperimentPreset {
  topo::FoldedClosParams clos = topo::FoldedClosParams::sun_dcs_648();

  // Static-hotspot experiments (Table II, figures 5-8).
  core::Time static_sim_time = 2 * core::kMillisecond;
  core::Time static_warmup = 500 * core::kMicrosecond;
  std::vector<double> p_values = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};

  // Moving-hotspot experiments (figures 9-10).
  std::vector<core::Time> lifetimes;   ///< decreasing hotspot lifetimes
  core::Time moving_min_sim_time = 0;
  std::int32_t moving_lifetimes_per_run = 6;  ///< simulated hotspot periods

  // CC control-loop scale. The quick preset runs the whole loop 4x
  // faster (CCTI_Increase 4, CCTI_Timer 150/4) with hotspot lifetimes
  // scaled by the same factor, so the convergence-to-window and
  // lifetime-to-recovery ratios match the paper within windows that fit
  // a laptop run; the paper preset uses the exact Table I values.
  std::uint16_t ccti_increase = 1;
  std::uint16_t ccti_timer = 150;

  std::uint64_t seed = 1;
  std::int32_t threads = 0;  ///< 0 = hardware concurrency

  /// Fabric event fast path (lazy link wakeups, coalesced credit
  /// returns). Bit-identical results either way; off only for A/B
  /// timing runs such as `table2_silent --no-fast-path`.
  bool fabric_fast_path = true;

  /// On-disk result store directory ("" = none), propagated into every
  /// config the preset builds so run_parallel serves repeated cells from
  /// cache (see SimConfig::result_store). Benches expose it as
  /// --result-store=DIR.
  std::string result_store;

  [[nodiscard]] static ExperimentPreset quick();
  [[nodiscard]] static ExperimentPreset paper();
  /// quick() unless IBSIM_FULL=1 (or a bench was passed --full).
  [[nodiscard]] static ExperimentPreset from_env(bool force_full = false);

  /// Base SimConfig with this preset's topology and timing.
  [[nodiscard]] SimConfig base_config() const;
};

/// Resolve a sweep's worker count: an explicit positive `threads` wins,
/// else the IBSIM_THREADS environment variable (CI pins sweeps with it),
/// else hardware concurrency. IBSIM_THREADS must be a plain positive
/// integer — garbage, negative or zero values abort with a clear error
/// instead of silently falling back — and is clamped to the machine's
/// hardware concurrency.
[[nodiscard]] std::int32_t resolve_threads(std::int32_t threads);

/// What one run_parallel worker did: how long it spent inside
/// Simulation runs versus the pool's wall clock, and how many runs it
/// claimed. With work-stealing the busy times should be near-equal even
/// when run lengths are wildly skewed (moving/windy scenarios).
struct SweepWorkerStats {
  double busy_seconds = 0.0;
  std::uint64_t runs = 0;
};

/// Per-sweep execution report filled by run_parallel.
struct SweepReport {
  double wall_seconds = 0.0;
  std::vector<SweepWorkerStats> workers;

  /// Result-store outcome of the sweep's pre-pass: runs served from the
  /// on-disk store versus actually executed (and then published). Both
  /// zero when no config names a result_store.
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;

  /// Mean fraction of the pool's wall time the workers spent running
  /// simulations (1.0 = perfectly balanced, no idle tails).
  [[nodiscard]] double utilization() const;

  /// Publish the report as sweep.* instruments (sweep.wall_us,
  /// sweep.utilization_permille, sweep.store_hits/misses,
  /// sweep.worker.N.busy_us / .runs).
  void publish(telemetry::CounterRegistry& registry) const;
};

/// Run many independent simulations concurrently — the sweep-level
/// parallelism the harness uses. Workers self-schedule runs off a shared
/// atomic cursor (work-stealing with chunk size 1), so skewed run times
/// cannot strand long tails on one thread the way a static partition
/// does. Determinism is preserved exactly: seeding is per-config, every
/// run executes on its own scheduler, and results stream into pre-sized
/// slots positionally matched to `configs` (move-assigned from
/// worker-local storage, bounding peak memory to one in-flight result
/// per worker). Topology/routing snapshots are shared through the
/// SnapshotCache for every config that enables it.
///
/// Configs with a non-empty result_store first consult the on-disk
/// store (src/store): cached runs fill their slots without scheduling,
/// fresh runs are published after completion. An interrupted sweep
/// rerun therefore computes only the missing cells, and a fully warm
/// rerun does zero simulation work — the store's serialization is
/// bit-exact, so callers cannot tell a cached result from a fresh one.
[[nodiscard]] std::vector<SimResult> run_parallel(const std::vector<SimConfig>& configs,
                                                  std::int32_t threads = 0,
                                                  SweepReport* report = nullptr);

// ---------------------------------------------------------------------------
// Table II: the silent forest of congestion trees.
// ---------------------------------------------------------------------------
struct Table2Result {
  double no_hotspot_off = 0.0;       ///< avg rcv, V nodes only, CC off
  double no_hotspot_on = 0.0;        ///< avg rcv, V nodes only, CC on
  double hotspot_rcv_off = 0.0;      ///< hotspots avg rcv, CC off
  double non_hotspot_rcv_off = 0.0;  ///< non-hotspots avg rcv, CC off
  double hotspot_rcv_on = 0.0;       ///< hotspots avg rcv, CC on
  double non_hotspot_rcv_on = 0.0;   ///< non-hotspots avg rcv, CC on
  double total_throughput_off = 0.0;
  double total_throughput_on = 0.0;
};

[[nodiscard]] Table2Result run_table2(const ExperimentPreset& preset);
[[nodiscard]] analysis::TextTable format_table2(const Table2Result& result);

// ---------------------------------------------------------------------------
// Figures 5-8: the windy forest, one figure per B-node fraction.
// ---------------------------------------------------------------------------
struct WindyFigure {
  double fraction_b = 0.0;
  analysis::Series non_hotspot_off;  ///< fig (a), CC off
  analysis::Series non_hotspot_on;   ///< fig (a), CC on
  analysis::Series tmax;             ///< fig (a), analytic ceiling
  analysis::Series hotspot_off;      ///< fig (b), CC off
  analysis::Series hotspot_on;       ///< fig (b), CC on
  analysis::Series improvement;      ///< fig (c), total-throughput ratio on/off
};

[[nodiscard]] WindyFigure run_windy_figure(const ExperimentPreset& preset, double fraction_b);
void print_windy_figure(const WindyFigure& figure);
/// Write the three sub-figures as CSV files with the given path prefix.
void write_windy_csv(const WindyFigure& figure, const std::string& prefix);

// ---------------------------------------------------------------------------
// CC-algorithm comparison: the paper's congestion-tree taxonomy (silent /
// windy / moving forests) rerun once per reaction-point algorithm.
// ---------------------------------------------------------------------------
struct CcCompareScenario {
  std::string label;               ///< "silent forest", "windy forest p=50%", ...
  std::vector<SimResult> results;  ///< positionally matched to CcCompareResult::algos
};

struct CcCompareResult {
  std::vector<std::string> algos;  ///< registry names, in run order
  std::vector<CcCompareScenario> scenarios;
};

/// Run the three taxonomy scenarios once per algorithm (identical seeds
/// and traffic across algorithms — only the reaction point differs).
/// Empty `algos` means every registered algorithm.
[[nodiscard]] CcCompareResult run_cc_compare(const ExperimentPreset& preset,
                                             const std::vector<std::string>& algos = {});

/// One section per scenario; rows are algorithms, columns the hotspot /
/// victim receive rates and the total network throughput.
[[nodiscard]] analysis::TextTable format_cc_compare(const CcCompareResult& result);

// ---------------------------------------------------------------------------
// Figures 9-10: moving congestion trees over decreasing hotspot lifetime.
// ---------------------------------------------------------------------------
struct MovingCurve {
  std::string label;
  analysis::Series off;  ///< avg rcv all nodes, CC off, vs lifetime (ms)
  analysis::Series on;   ///< avg rcv all nodes, CC on
};

/// Figure 9: silent trees (B = 0) with moving hotspots, parameterised by
/// the V-node share (paper: 20% and 60%).
[[nodiscard]] MovingCurve run_moving_silent(const ExperimentPreset& preset, double fraction_v);

/// Figure 10: pure windy trees (100% B) with moving hotspots, for one p.
[[nodiscard]] MovingCurve run_moving_windy(const ExperimentPreset& preset, double p);

void print_moving_curve(const MovingCurve& curve);
void write_moving_csv(const MovingCurve& curve, const std::string& prefix);

}  // namespace ibsim::sim
