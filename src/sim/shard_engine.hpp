#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"
#include "core/shard.hpp"
#include "core/time.hpp"
#include "fabric/fabric.hpp"

namespace ibsim::sim {

/// Minimum simulated time a boundary crossing takes: every cross-shard
/// message created by an event at time t lands at t + lookahead or
/// later, so a window ending before t_min + lookahead can never receive
/// a message into its own past. Packets cross at link_delay +
/// rx_pipeline (switch or HCA), credits at link_delay + credit_delay;
/// the lookahead is the smallest of the three and is static — link rate
/// scaling changes only serialization, never these delays.
[[nodiscard]] core::Time shard_lookahead(const fabric::FabricParams& params);

/// Conservative-lookahead window loop over the per-shard schedulers of a
/// sharded Fabric (DESIGN.md §15). Each run_until call executes windows
/// [T, W] with W = min(t_min + lookahead - 1, until, next_global - 1):
/// all shards run their events up to W in parallel, then a barrier, then
/// each shard drains the mailboxes addressed to it, then the next window
/// is planned. Global events (hotspot moves) run single-threaded between
/// windows on the global scheduler.
class ShardEngine {
 public:
  struct Stats {
    std::uint64_t windows = 0;        ///< barrier rounds executed
    std::uint64_t global_events = 0;  ///< events run on the global scheduler
  };

  /// `fabric` must have been built with a ShardLayout whose schedulers
  /// are `shards`; `global` runs non-fabric events. `worker_threads` is
  /// clamped to [1, shards.size()]; shards are dealt to workers
  /// round-robin, and worker count never affects results.
  ShardEngine(fabric::Fabric* fabric, core::Scheduler* global,
              std::vector<core::Scheduler*> shards, core::Time lookahead,
              std::int32_t worker_threads);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Run every shard (and the global scheduler) up to and including
  /// `until`. Mailboxes are empty on return: all boundary crossings
  /// produced by executed events have been delivered.
  void run_until(core::Time until);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int32_t worker_count() const { return workers_; }

  /// Sum of executed() over the shard schedulers plus the global one.
  [[nodiscard]] std::uint64_t total_executed() const;
  [[nodiscard]] std::array<std::uint64_t, core::Scheduler::kKindSlots> total_executed_by_kind()
      const;
  /// Cross-shard events injected at drains (sched.shard.absorbed gauge).
  [[nodiscard]] std::uint64_t total_absorbed() const;

 private:
  /// Advance the global scheduler and compute the next window end.
  /// Returns false when nothing at or below `until` remains anywhere.
  bool plan_window(core::Time until);
  void worker_body(std::int32_t tid, core::Time until);

  fabric::Fabric* fabric_;
  core::Scheduler* global_;
  std::vector<core::Scheduler*> shards_;
  core::Time lookahead_;
  std::int32_t workers_;
  core::SpinBarrier barrier_;

  // Window state published by the coordinator (worker 0) at the release
  // barrier and read by all workers. Atomics are formally required for
  // the cross-thread handoff; the barrier supplies the ordering.
  std::atomic<core::Time> window_end_{0};
  std::atomic<bool> done_{false};

  Stats stats_;
};

}  // namespace ibsim::sim
