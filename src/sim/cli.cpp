#include "sim/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/assert.hpp"

namespace ibsim::sim {

Cli::Cli(std::string program_description) : description_(std::move(program_description)) {
  add_flag("help", "show this help");
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::Flag, help, false, 0, 0.0, {}};
  order_.push_back(name);
}

void Cli::add_int(const std::string& name, std::int64_t default_value, const std::string& help) {
  Option opt{Kind::Int, help, false, 0, 0.0, {}};
  opt.int_value = default_value;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value, const std::string& help) {
  Option opt{Kind::Double, help, false, 0, 0.0, {}};
  opt.double_value = default_value;
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void Cli::add_string(const std::string& name, std::string default_value,
                     const std::string& help) {
  Option opt{Kind::String, help, false, 0, 0.0, {}};
  opt.string_value = std::move(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

bool Cli::parse(int argc, char** argv) {
  auto fail = [&](const std::string& msg) {
    std::fprintf(stderr, "error: %s\n", msg.c_str());
    print_usage();
    std::exit(2);
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) fail("unexpected argument '" + arg + "'");
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) fail("unknown option '--" + arg + "'");
    Option& opt = it->second;
    opt.set_on_command_line = true;
    if (opt.kind == Kind::Flag) {
      if (has_value) fail("flag '--" + arg + "' does not take a value");
      opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("option '--" + arg + "' needs a value");
      value = argv[++i];
    }
    char* end = nullptr;
    switch (opt.kind) {
      case Kind::Int:
        opt.int_value = std::strtoll(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') fail("'--" + arg + "' expects an integer");
        break;
      case Kind::Double:
        opt.double_value = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0') fail("'--" + arg + "' expects a number");
        break;
      case Kind::String:
        opt.string_value = value;
        break;
      case Kind::Flag:
        break;
    }
  }
  if (flag("help")) {
    print_usage();
    return false;
  }
  return true;
}

const Cli::Option& Cli::require(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  IBSIM_ASSERT(it != options_.end(), "unregistered CLI option queried");
  IBSIM_ASSERT(it->second.kind == kind, "CLI option queried with the wrong type");
  return it->second;
}

bool Cli::flag(const std::string& name) const { return require(name, Kind::Flag).flag_value; }

bool Cli::was_set(const std::string& name) const {
  const auto it = options_.find(name);
  IBSIM_ASSERT(it != options_.end(), "unregistered CLI option queried");
  return it->second.set_on_command_line;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return require(name, Kind::Int).int_value;
}

double Cli::get_double(const std::string& name) const {
  return require(name, Kind::Double).double_value;
}

const std::string& Cli::get_string(const std::string& name) const {
  return require(name, Kind::String).string_value;
}

void Cli::print_usage() const {
  std::printf("%s\n\noptions:\n", description_.c_str());
  for (const std::string& name : order_) {
    const Option& opt = options_.at(name);
    std::string left = "--" + name;
    switch (opt.kind) {
      case Kind::Flag: break;
      case Kind::Int: left += "=<int> (default " + std::to_string(opt.int_value) + ")"; break;
      case Kind::Double: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", opt.double_value);
        left += "=<num> (default " + std::string(buf) + ")";
        break;
      }
      case Kind::String:
        left += "=<str>" + (opt.string_value.empty() ? std::string{}
                                                     : " (default " + opt.string_value + ")");
        break;
    }
    std::printf("  %-44s %s\n", left.c_str(), opt.help.c_str());
  }
}

}  // namespace ibsim::sim
