#pragma once

#include <string>

#include "sim/sim_config.hpp"

namespace ibsim::sim {

/// Plain-text configuration for SimConfig: one `key = value` pair per
/// line, `#` comments, whitespace-insensitive — the same flavour of file
/// OpenSM uses for its CC settings, so a deployment-style workflow
/// ("edit the conf, rerun") works without recompiling.
///
/// Recognised keys (all optional; unknown keys are an error):
///
///   topology            clos | single | chain | dumbbell | mesh
///   clos_leaves, clos_spines, clos_nodes_per_leaf
///   single_nodes, chain_switches, chain_nodes
///   dumbbell_nodes, mesh_rows, mesh_cols, mesh_nodes
///   fraction_b, p_percent, fraction_c, hotspots, lifetime_us, inject_gbps
///   workload (a workload::WorkloadRegistry name, or 'file'),
///   workload_file, workload_ranks, workload_bytes, workload_iters,
///   workload_compute_us, workload_background (0/1)
///   cc_enabled (0/1), cc_algo (iba_a10 | dcqcn | aimd | none),
///   threshold_weight, marking_rate, packet_size,
///   victim_mask (0/1), ccti_increase, ccti_limit, ccti_min, ccti_timer,
///   sl_level (0/1), cct_fill (geometric | linear), cct_base
///   wire_gbps, hca_inject_gbps, hca_drain_gbps, n_vls, cut_through (0/1)
///   switch_ibuf_bytes, hca_ibuf_bytes
///   sim_time_us, warmup_us, seed
///   trace_file, trace_categories (cc,credits,queues,arb | all),
///   counters_csv, telemetry_sample_us, trace_ring,
///   telemetry_detailed (0/1), telemetry_counters (0/1)
///   result_store (directory of the on-disk result cache; see src/store)
///
/// Each key may appear at most once; a duplicate is an error naming both
/// lines (silent last-wins would hide typos and merge accidents). An
/// unknown key's diagnostic suggests the closest recognised key when one
/// is within a small edit distance ("did you mean 'topology'?").
///
/// Returns an empty string on success, or a "line N: ..." diagnostic.
[[nodiscard]] std::string apply_config_text(const std::string& text, SimConfig* config);

/// Load and apply a config file; same diagnostics, plus I/O errors.
[[nodiscard]] std::string apply_config_file(const std::string& path, SimConfig* config);

}  // namespace ibsim::sim
