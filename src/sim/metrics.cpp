#include "sim/metrics.hpp"

#include "core/assert.hpp"

namespace ibsim::sim {

MetricsCollector::MetricsCollector(std::int32_t n_nodes, double latency_hist_max_us)
    : rx_(static_cast<std::size_t>(n_nodes)),
      hotspot_(static_cast<std::size_t>(n_nodes), false),
      latency_us_(0.0, latency_hist_max_us, 256),
      latency_hotspot_us_(0.0, latency_hist_max_us, 256),
      latency_non_hotspot_us_(0.0, latency_hist_max_us, 256) {}

void MetricsCollector::on_delivered(ib::NodeId node, const ib::Packet& pkt, core::Time now) {
  rx_[static_cast<std::size_t>(node)].add(pkt.bytes);
  delivered_bytes_ += pkt.bytes;
  ++delivered_packets_;
  const double latency = static_cast<double>(now - pkt.injected_at) /
                         static_cast<double>(core::kMicrosecond);
  latency_us_.add(latency);
  if (hotspot_[static_cast<std::size_t>(node)]) {
    latency_hotspot_us_.add(latency);
  } else {
    latency_non_hotspot_us_.add(latency);
  }
}

void MetricsCollector::reset_window(core::Time now) {
  window_start_ = now;
  for (auto& counter : rx_) counter.reset(now);
  latency_us_.reset();
  latency_hotspot_us_.reset();
  latency_non_hotspot_us_.reset();
  delivered_bytes_ = 0;
  delivered_packets_ = 0;
}

void MetricsCollector::absorb(const MetricsCollector& other) {
  IBSIM_ASSERT(rx_.size() == other.rx_.size(), "collectors must cover the same nodes");
  IBSIM_ASSERT(window_start_ == other.window_start_,
               "collectors must share a measurement window");
  // Each shard collector only sees deliveries to its own shard's nodes,
  // so the per-node sums never double count.
  for (std::size_t i = 0; i < rx_.size(); ++i) rx_[i].absorb(other.rx_[i]);
  latency_us_.absorb(other.latency_us_);
  latency_hotspot_us_.absorb(other.latency_hotspot_us_);
  latency_non_hotspot_us_.absorb(other.latency_non_hotspot_us_);
  delivered_bytes_ += other.delivered_bytes_;
  delivered_packets_ += other.delivered_packets_;
}

void MetricsCollector::set_hotspots(const std::vector<ib::NodeId>& hotspots) {
  std::fill(hotspot_.begin(), hotspot_.end(), false);
  for (const ib::NodeId hs : hotspots) hotspot_[static_cast<std::size_t>(hs)] = true;
  n_hotspots_ = static_cast<std::int32_t>(hotspots.size());
}

double MetricsCollector::node_gbps(ib::NodeId node, core::Time now) const {
  return rx_[static_cast<std::size_t>(node)].gbps(now);
}

double MetricsCollector::avg_hotspot_gbps(core::Time now) const {
  if (n_hotspots_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < rx_.size(); ++i) {
    if (hotspot_[i]) sum += rx_[i].gbps(now);
  }
  return sum / static_cast<double>(n_hotspots_);
}

double MetricsCollector::avg_non_hotspot_gbps(core::Time now) const {
  const auto n = static_cast<std::int32_t>(rx_.size()) - n_hotspots_;
  if (n <= 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < rx_.size(); ++i) {
    if (!hotspot_[i]) sum += rx_[i].gbps(now);
  }
  return sum / static_cast<double>(n);
}

double MetricsCollector::avg_all_gbps(core::Time now) const {
  if (rx_.empty()) return 0.0;
  return total_throughput_gbps(now) / static_cast<double>(rx_.size());
}

double MetricsCollector::total_throughput_gbps(core::Time now) const {
  double sum = 0.0;
  for (const auto& counter : rx_) sum += counter.gbps(now);
  return sum;
}

std::int64_t MetricsCollector::hotspot_bytes() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < rx_.size(); ++i) {
    if (hotspot_[i]) total += rx_[i].bytes();
  }
  return total;
}

std::int64_t MetricsCollector::non_hotspot_bytes() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < rx_.size(); ++i) {
    if (!hotspot_[i]) total += rx_[i].bytes();
  }
  return total;
}

double MetricsCollector::jain_non_hotspot(core::Time now) const {
  std::vector<double> rates;
  rates.reserve(rx_.size());
  for (std::size_t i = 0; i < rx_.size(); ++i) {
    if (!hotspot_[i]) rates.push_back(rx_[i].gbps(now));
  }
  return core::jain_fairness(rates);
}

}  // namespace ibsim::sim
