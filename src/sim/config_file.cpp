#include "sim/config_file.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "ccalg/registry.hpp"
#include "telemetry/trace.hpp"
#include "workload/registry.hpp"

namespace ibsim::sim {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool parse_double(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != nullptr && *end == '\0' && !value.empty();
}

bool parse_int(const std::string& value, std::int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !value.empty();
}

/// Every key apply_key recognises, in the order the header documents
/// them. Only used to produce "did you mean" suggestions — the dispatch
/// itself stays in apply_key so each key sits next to its parsing.
constexpr const char* kKnownKeys[] = {
    "topology", "clos_leaves", "clos_spines", "clos_nodes_per_leaf",
    "single_nodes", "chain_switches", "chain_nodes", "dumbbell_nodes",
    "mesh_rows", "mesh_cols", "mesh_nodes", "ft3_pods", "ft3_leaves_per_pod",
    "ft3_aggs_per_pod", "ft3_cores", "ft3_nodes_per_leaf", "fraction_b",
    "p_percent", "fraction_c", "hotspots", "lifetime_us", "inject_gbps",
    "cc_enabled", "cc_algo", "threshold_weight", "marking_rate", "packet_size",
    "victim_mask", "ccti_increase", "ccti_limit", "ccti_min", "ccti_timer",
    "sl_level", "cct_fill", "cct_base", "wire_gbps", "hca_inject_gbps",
    "hca_drain_gbps", "n_vls", "cut_through", "fabric_fast_path",
    "switch_ibuf_bytes", "hca_ibuf_bytes", "workload", "workload_file",
    "workload_ranks", "workload_bytes", "workload_iters", "workload_compute_us",
    "workload_background", "sim_time_us", "warmup_us", "seed", "trace_file",
    "trace_categories", "counters_csv", "telemetry_sample_us", "trace_ring",
    "telemetry_detailed", "telemetry_counters", "result_store", "threads",
    "shards",
};

/// Levenshtein edit distance with a cutoff: stops caring past `limit`
/// (returns limit + 1), which keeps suggestion scans cheap.
std::size_t edit_distance(const std::string& a, const std::string& b, std::size_t limit) {
  if (a.size() > b.size()) return edit_distance(b, a, limit);
  if (b.size() - a.size() > limit) return limit + 1;
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev_diag = row[0];
    row[0] = j;
    std::size_t best = row[0];
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({row[i - 1] + 1, row[i] + 1, subst});
      best = std::min(best, row[i]);
    }
    if (best > limit) return limit + 1;
  }
  return row[a.size()];
}

/// Nearest recognised key within a small edit distance, or "" when
/// nothing is plausibly close (so a genuinely unknown key does not get
/// a nonsense suggestion).
std::string closest_known_key(const std::string& key) {
  // One typo per ~4 characters of key, at least 2: catches "topolgy",
  // "result_stor", "cc_algoo" without matching unrelated keys.
  const std::size_t limit = std::max<std::size_t>(2, key.size() / 4);
  std::string best;
  std::size_t best_distance = limit + 1;
  for (const char* candidate : kKnownKeys) {
    const std::size_t d = edit_distance(key, candidate, limit);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

/// Apply one key. Returns an error description or empty.
std::string apply_key(const std::string& key, const std::string& value, SimConfig* c) {
  const auto want_int = [&](auto setter) -> std::string {
    std::int64_t v = 0;
    if (!parse_int(value, &v)) return "expected an integer for '" + key + "'";
    setter(v);
    return {};
  };
  const auto want_double = [&](auto setter) -> std::string {
    double v = 0;
    if (!parse_double(value, &v)) return "expected a number for '" + key + "'";
    setter(v);
    return {};
  };

  if (key == "topology") {
    if (value == "clos") c->topology = TopologyKind::FoldedClos;
    else if (value == "single") c->topology = TopologyKind::SingleSwitch;
    else if (value == "chain") c->topology = TopologyKind::LinearChain;
    else if (value == "dumbbell") c->topology = TopologyKind::Dumbbell;
    else if (value == "mesh") c->topology = TopologyKind::Mesh2D;
    else if (value == "fat-tree3") c->topology = TopologyKind::FatTree3;
    else return "unknown topology '" + value + "'";
    return {};
  }
  if (key == "cct_fill") {
    if (value == "geometric") c->cc.cct_fill = ib::CctFill::Geometric;
    else if (value == "linear") c->cc.cct_fill = ib::CctFill::Linear;
    else return "unknown cct_fill '" + value + "'";
    return {};
  }

  if (key == "clos_leaves") return want_int([&](auto v) { c->clos.leaves = static_cast<std::int32_t>(v); });
  if (key == "clos_spines") return want_int([&](auto v) { c->clos.spines = static_cast<std::int32_t>(v); });
  if (key == "clos_nodes_per_leaf")
    return want_int([&](auto v) { c->clos.nodes_per_leaf = static_cast<std::int32_t>(v); });
  if (key == "single_nodes")
    return want_int([&](auto v) { c->single_switch_nodes = static_cast<std::int32_t>(v); });
  if (key == "chain_switches")
    return want_int([&](auto v) { c->chain_switches = static_cast<std::int32_t>(v); });
  if (key == "chain_nodes")
    return want_int([&](auto v) { c->chain_nodes_per_switch = static_cast<std::int32_t>(v); });
  if (key == "dumbbell_nodes")
    return want_int([&](auto v) { c->dumbbell_nodes_per_side = static_cast<std::int32_t>(v); });
  if (key == "mesh_rows") return want_int([&](auto v) { c->mesh_rows = static_cast<std::int32_t>(v); });
  if (key == "mesh_cols") return want_int([&](auto v) { c->mesh_cols = static_cast<std::int32_t>(v); });
  if (key == "mesh_nodes")
    return want_int([&](auto v) { c->mesh_nodes_per_switch = static_cast<std::int32_t>(v); });
  if (key == "ft3_pods") return want_int([&](auto v) { c->fat_tree3.pods = static_cast<std::int32_t>(v); });
  if (key == "ft3_leaves_per_pod")
    return want_int([&](auto v) { c->fat_tree3.leaves_per_pod = static_cast<std::int32_t>(v); });
  if (key == "ft3_aggs_per_pod")
    return want_int([&](auto v) { c->fat_tree3.aggs_per_pod = static_cast<std::int32_t>(v); });
  if (key == "ft3_cores") return want_int([&](auto v) { c->fat_tree3.cores = static_cast<std::int32_t>(v); });
  if (key == "ft3_nodes_per_leaf")
    return want_int([&](auto v) { c->fat_tree3.nodes_per_leaf = static_cast<std::int32_t>(v); });

  if (key == "fraction_b") return want_double([&](auto v) { c->scenario.fraction_b = v; });
  if (key == "p_percent") return want_double([&](auto v) { c->scenario.p = v / 100.0; });
  if (key == "fraction_c")
    return want_double([&](auto v) { c->scenario.fraction_c_of_rest = v; });
  if (key == "hotspots")
    return want_int([&](auto v) { c->scenario.n_hotspots = static_cast<std::int32_t>(v); });
  if (key == "lifetime_us")
    return want_int([&](auto v) {
      c->scenario.hotspot_lifetime = v > 0 ? v * core::kMicrosecond : core::kTimeNever;
    });
  if (key == "inject_gbps") return want_double([&](auto v) { c->scenario.capacity_gbps = v; });

  if (key == "cc_enabled") return want_int([&](auto v) { c->cc.enabled = v != 0; });
  if (key == "cc_algo") {
    const auto& registry = ccalg::CcAlgorithmRegistry::instance();
    if (!registry.contains(value)) {
      return "unknown cc_algo '" + value + "' (valid: " + registry.names_joined() + ")";
    }
    c->cc_algo = value;
    return {};
  }
  if (key == "threshold_weight")
    return want_int([&](auto v) { c->cc.threshold_weight = static_cast<std::uint8_t>(v); });
  if (key == "marking_rate")
    return want_int([&](auto v) { c->cc.marking_rate = static_cast<std::uint16_t>(v); });
  if (key == "packet_size")
    return want_int([&](auto v) { c->cc.packet_size = static_cast<std::uint16_t>(v); });
  if (key == "victim_mask")
    return want_int([&](auto v) { c->cc.victim_mask_hca_ports = v != 0; });
  if (key == "ccti_increase")
    return want_int([&](auto v) { c->cc.ccti_increase = static_cast<std::uint16_t>(v); });
  if (key == "ccti_limit")
    return want_int([&](auto v) { c->cc.ccti_limit = static_cast<std::uint16_t>(v); });
  if (key == "ccti_min")
    return want_int([&](auto v) { c->cc.ccti_min = static_cast<std::uint16_t>(v); });
  if (key == "ccti_timer")
    return want_int([&](auto v) { c->cc.ccti_timer = static_cast<std::uint16_t>(v); });
  if (key == "sl_level") return want_int([&](auto v) { c->cc.sl_level = v != 0; });
  if (key == "cct_base") return want_double([&](auto v) { c->cc.cct_base = v; });

  if (key == "wire_gbps") return want_double([&](auto v) { c->fabric.wire_gbps = v; });
  if (key == "hca_inject_gbps")
    return want_double([&](auto v) { c->fabric.hca_inject_gbps = v; });
  if (key == "hca_drain_gbps")
    return want_double([&](auto v) { c->fabric.hca_drain_gbps = v; });
  if (key == "n_vls") return want_int([&](auto v) { c->fabric.n_vls = static_cast<std::int32_t>(v); });
  if (key == "cut_through") return want_int([&](auto v) { c->fabric.cut_through = v != 0; });
  if (key == "fabric_fast_path")
    return want_int([&](auto v) { c->fabric_fast_path = v != 0; });
  if (key == "switch_ibuf_bytes")
    return want_int([&](auto v) { c->fabric.switch_ibuf_data_bytes = v; });
  if (key == "hca_ibuf_bytes")
    return want_int([&](auto v) { c->fabric.hca_ibuf_data_bytes = v; });

  if (key == "workload") {
    const auto& registry = workload::WorkloadRegistry::instance();
    if (value != "file" && !registry.contains(value)) {
      return "unknown workload '" + value + "' (valid: " + registry.names_joined() +
             ", or 'file' with workload_file)";
    }
    c->workload.name = value;
    return {};
  }
  if (key == "workload_file") {
    c->workload.file = value;
    return {};
  }
  if (key == "workload_ranks")
    return want_int([&](auto v) { c->workload.ranks = static_cast<std::int32_t>(v); });
  if (key == "workload_bytes")
    return want_int([&](auto v) { c->workload.message_bytes = v; });
  if (key == "workload_iters")
    return want_int([&](auto v) { c->workload.iterations = static_cast<std::int32_t>(v); });
  if (key == "workload_compute_us")
    return want_int([&](auto v) { c->workload.compute = v * core::kMicrosecond; });
  if (key == "workload_background")
    return want_int([&](auto v) { c->workload.background_uniform = v != 0; });

  if (key == "sim_time_us")
    return want_int([&](auto v) { c->sim_time = v * core::kMicrosecond; });
  if (key == "warmup_us") return want_int([&](auto v) { c->warmup = v * core::kMicrosecond; });
  if (key == "seed") return want_int([&](auto v) { c->seed = static_cast<std::uint64_t>(v); });

  if (key == "trace_file") {
    c->telemetry.trace_path = value;
    return {};
  }
  if (key == "trace_categories") {
    std::uint32_t mask = 0;
    if (!telemetry::parse_categories(value, &mask)) {
      return "unknown trace category in '" + value + "'";
    }
    c->telemetry.trace_categories = value;
    return {};
  }
  if (key == "counters_csv") {
    c->telemetry.counters_csv = value;
    return {};
  }
  if (key == "telemetry_sample_us")
    return want_int([&](auto v) { c->telemetry.sample_interval = v * core::kMicrosecond; });
  if (key == "trace_ring") return want_int([&](auto v) { c->telemetry.trace_ring_capacity = v; });
  if (key == "telemetry_detailed")
    return want_int([&](auto v) { c->telemetry.detailed = v != 0; });
  if (key == "telemetry_counters")
    return want_int([&](auto v) { c->telemetry.counters = v != 0; });

  if (key == "result_store") {
    c->result_store = value;
    return {};
  }

  // Parallelism knobs. Precedence for the worker-thread count is
  // CLI --threads > config-file threads > IBSIM_THREADS > hardware
  // (resolve_threads); both sweep workers and intra-run shard workers
  // consume the resolved value.
  if (key == "threads" || key == "shards") {
    std::int64_t v = 0;
    if (!parse_int(value, &v) || v < 0) {
      return "expected a non-negative integer for '" + key + "' (0 = auto)";
    }
    if (key == "threads") c->threads = static_cast<std::int32_t>(v);
    else c->shards = static_cast<std::int32_t>(v);
    return {};
  }

  std::string err = "unknown key '" + key + "'";
  const std::string near = closest_known_key(key);
  if (!near.empty()) err += " (did you mean '" + near + "'?)";
  return err;
}

}  // namespace

std::string apply_config_text(const std::string& text, SimConfig* config) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  std::map<std::string, int> seen_at;  // key -> first line, for duplicate detection
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return "line " + std::to_string(line_number) + ": expected 'key = value'";
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty()) {
      return "line " + std::to_string(line_number) + ": empty key or value";
    }
    const auto [it, inserted] = seen_at.emplace(key, line_number);
    if (!inserted) {
      // Silent last-wins hides typos and merge accidents; make the
      // collision loud and point at both occurrences.
      return "line " + std::to_string(line_number) + ": duplicate key '" + key +
             "' (already set at line " + std::to_string(it->second) + ")";
    }
    const std::string err = apply_key(key, value, config);
    if (!err.empty()) return "line " + std::to_string(line_number) + ": " + err;
  }
  return {};
}

std::string apply_config_file(const std::string& path, SimConfig* config) {
  std::ifstream in(path);
  if (!in.good()) return "cannot open config file '" + path + "'";
  std::stringstream buf;
  buf << in.rdbuf();
  return apply_config_text(buf.str(), config);
}

}  // namespace ibsim::sim
