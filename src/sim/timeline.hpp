#pragma once

#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/scheduler.hpp"
#include "fabric/fabric.hpp"
#include "sim/metrics.hpp"

namespace ibsim::sim {

/// Periodic sampler of the fabric's congestion state: a time series of
/// receive rates, queued bytes (the live size of the congestion trees),
/// FECN/BECN activity, and the CC throttling mass. This is the
/// instrument behind the "congestion tree grows, CC prunes it back"
/// narrative of the paper's section III — it shows the tree's life cycle
/// rather than just end-of-run averages.
class TimelineSampler final : public core::EventHandler {
 public:
  struct Sample {
    core::Time at = 0;
    double total_gbps = 0.0;         ///< fabric receive rate over the interval
    double hotspot_gbps = 0.0;       ///< avg per hotspot node
    double non_hotspot_gbps = 0.0;   ///< avg per non-hotspot node
    std::int64_t queued_bytes = 0;   ///< switch VoQ occupancy fabric-wide
    std::int32_t throttled_flows = 0;
    double mean_ccti = 0.0;          ///< mean CCTI over throttled flows
    std::uint64_t fecn_marked = 0;   ///< marks during the interval
    std::uint64_t becn_received = 0; ///< BECNs during the interval
  };

  /// Samples every `interval` once installed. The metrics collector
  /// provides the delivery counters; the fabric provides queue and CC
  /// telemetry.
  TimelineSampler(fabric::Fabric* fabric, const MetricsCollector* metrics,
                  core::Time interval);

  /// Begin sampling at the current simulation time.
  void install(core::Scheduler& sched);

  void on_event(core::Scheduler& sched, const core::Event& ev) override;

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// Write the series as CSV (one row per sample).
  void write_csv(const std::string& path) const;

  /// Render a compact text table of the series to stdout.
  void print(std::size_t max_rows = 40) const;

  /// Largest queued-bytes value seen — the congestion forest's high-water
  /// mark.
  [[nodiscard]] std::int64_t peak_queued_bytes() const;

 private:
  fabric::Fabric* fabric_;
  const MetricsCollector* metrics_;
  core::Time interval_;
  std::vector<Sample> samples_;

  // Previous-counter snapshots for interval deltas.
  core::Time last_at_ = 0;
  std::int64_t last_delivered_bytes_ = 0;
  double last_hotspot_bytes_ = 0.0;
  double last_non_hotspot_bytes_ = 0.0;
  std::uint64_t last_fecn_ = 0;
  std::uint64_t last_becn_ = 0;
  bool installed_ = false;
};

}  // namespace ibsim::sim
