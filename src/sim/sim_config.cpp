#include "sim/sim_config.hpp"

#include <cstdio>

namespace ibsim::sim {

const char* topology_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::SingleSwitch: return "single-switch";
    case TopologyKind::FoldedClos: return "folded-clos";
    case TopologyKind::FatTree3: return "fat-tree3";
    case TopologyKind::LinearChain: return "linear-chain";
    case TopologyKind::Dumbbell: return "dumbbell";
    case TopologyKind::Mesh2D: return "mesh2d";
  }
  return "?";
}

std::int32_t SimConfig::node_count() const {
  switch (topology) {
    case TopologyKind::SingleSwitch: return single_switch_nodes;
    case TopologyKind::FoldedClos: return clos.node_count();
    case TopologyKind::FatTree3: return fat_tree3.node_count();
    case TopologyKind::LinearChain: return chain_switches * chain_nodes_per_switch;
    case TopologyKind::Dumbbell: return 2 * dumbbell_nodes_per_side;
    case TopologyKind::Mesh2D: return mesh_rows * mesh_cols * mesh_nodes_per_switch;
  }
  return 0;
}

std::string SimConfig::describe() const {
  const std::string cc_desc = cc.enabled ? "on (" + cc_algo + ")" : "off";
  std::string traffic_desc;
  if (workload.active()) {
    char wbuf[160];
    std::snprintf(wbuf, sizeof(wbuf), "workload %s x%d (%d ranks, %lld B msgs%s)",
                  workload.name.c_str(), workload.iterations,
                  workload.ranks > 0 ? workload.ranks : node_count(),
                  static_cast<long long>(workload.message_bytes),
                  workload.background_uniform ? ", bg uniform" : "");
    traffic_desc = wbuf;
  } else {
    traffic_desc = scenario.describe();
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf), "%s (%d nodes), CC %s, %s, sim %s (warmup %s), seed %llu",
                topology_name(topology), node_count(), cc_desc.c_str(),
                traffic_desc.c_str(), core::format_time(sim_time).c_str(),
                core::format_time(warmup).c_str(),
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace ibsim::sim
