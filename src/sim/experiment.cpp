#include "sim/experiment.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "analysis/tmax.hpp"
#include "ccalg/registry.hpp"
#include "core/assert.hpp"
#include "store/key.hpp"
#include "store/result_store.hpp"

namespace ibsim::sim {

ExperimentPreset ExperimentPreset::quick() {
  ExperimentPreset p;
  p.static_sim_time = 10 * core::kMillisecond;
  p.static_warmup = 5 * core::kMillisecond;
  p.ccti_increase = 4;
  p.ccti_timer = 38;  // ~150 / 4
  // Moving-hotspot axis scaled 1:4 against the paper (2.5 ms..0.25 ms
  // instead of 10 ms..1 ms), matching the 4x-faster CC loop above so
  // the lifetime-to-recovery ratio the sweep probes is preserved.
  p.lifetimes = {2500 * core::kMicrosecond, 2000 * core::kMicrosecond,
                 1500 * core::kMicrosecond, 1000 * core::kMicrosecond,
                 500 * core::kMicrosecond,  250 * core::kMicrosecond};
  p.moving_min_sim_time = 2 * core::kMillisecond;
  p.moving_lifetimes_per_run = 6;
  return p;
}

ExperimentPreset ExperimentPreset::paper() {
  ExperimentPreset p;
  p.static_sim_time = 60 * core::kMillisecond;
  p.static_warmup = 30 * core::kMillisecond;
  p.lifetimes = {10 * core::kMillisecond, 8 * core::kMillisecond, 6 * core::kMillisecond,
                 4 * core::kMillisecond,  2 * core::kMillisecond, 1 * core::kMillisecond};
  p.ccti_increase = 1;
  p.ccti_timer = 150;
  p.moving_min_sim_time = 10 * core::kMillisecond;
  p.moving_lifetimes_per_run = 10;
  return p;
}

ExperimentPreset ExperimentPreset::from_env(bool force_full) {
  const char* env = std::getenv("IBSIM_FULL");
  const bool full = force_full || (env != nullptr && env[0] == '1');
  return full ? paper() : quick();
}

SimConfig ExperimentPreset::base_config() const {
  SimConfig config;
  config.topology = TopologyKind::FoldedClos;
  config.clos = clos;
  config.sim_time = static_sim_time;
  config.warmup = static_warmup;
  config.seed = seed;
  config.cc.ccti_increase = ccti_increase;
  config.cc.ccti_timer = ccti_timer;
  config.fabric_fast_path = fabric_fast_path;
  config.result_store = result_store;
  return config;
}

std::int32_t resolve_threads(std::int32_t threads) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::int32_t hw = hw_raw == 0 ? 4 : static_cast<std::int32_t>(hw_raw);
  if (threads > 0) return threads;
  // CI (and users pinning a sweep to a core budget) override the
  // hardware default without touching every preset. A malformed value
  // would silently serialize or oversubscribe a many-hour sweep, so it
  // is a hard error, not a fallthrough.
  if (const char* env = std::getenv("IBSIM_THREADS"); env != nullptr) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "error: IBSIM_THREADS='%s' is not an integer\n", env);
      std::exit(2);
    }
    if (v <= 0) {
      std::fprintf(stderr,
                   "error: IBSIM_THREADS=%ld must be a positive thread count "
                   "(unset it to use hardware concurrency)\n",
                   v);
      std::exit(2);
    }
    // Oversubscribing cores only adds scheduler noise to a CPU-bound
    // sweep; clamp to what the machine can actually run.
    return v > hw ? hw : static_cast<std::int32_t>(v);
  }
  return hw;
}

double SweepReport::utilization() const {
  if (workers.empty() || wall_seconds <= 0.0) return 0.0;
  double busy = 0.0;
  for (const SweepWorkerStats& w : workers) busy += w.busy_seconds;
  return busy / (wall_seconds * static_cast<double>(workers.size()));
}

void SweepReport::publish(telemetry::CounterRegistry& registry) const {
  registry.set(registry.gauge("sweep.wall_us"),
               static_cast<std::int64_t>(wall_seconds * 1e6));
  registry.set(registry.gauge("sweep.workers"),
               static_cast<std::int64_t>(workers.size()));
  registry.set(registry.gauge("sweep.utilization_permille"),
               static_cast<std::int64_t>(utilization() * 1000.0));
  registry.set(registry.gauge("sweep.store_hits"), static_cast<std::int64_t>(store_hits));
  registry.set(registry.gauge("sweep.store_misses"),
               static_cast<std::int64_t>(store_misses));
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::string prefix = "sweep.worker." + std::to_string(w);
    registry.set(registry.gauge(prefix + ".busy_us"),
                 static_cast<std::int64_t>(workers[w].busy_seconds * 1e6));
    registry.set(registry.gauge(prefix + ".runs"),
                 static_cast<std::int64_t>(workers[w].runs));
  }
}

std::vector<SimResult> run_parallel(const std::vector<SimConfig>& configs,
                                    std::int32_t threads, SweepReport* report) {
  std::vector<SimResult> results(configs.size());
  if (report != nullptr) *report = SweepReport{};
  if (configs.empty()) return results;
  const auto sweep_start = std::chrono::steady_clock::now();

  // Result-store pre-pass: cells already on disk fill their slots here
  // and never reach the pool; the remainder keeps its original order in
  // `todo` (positional determinism is untouched — the store only decides
  // *whether* slot i is computed, never what goes into it). Keys and
  // store handles are kept per-slot so a mixed sweep (different stores,
  // or some configs without one) stays correct.
  std::vector<std::size_t> todo;
  todo.reserve(configs.size());
  std::vector<std::shared_ptr<store::ResultStore>> stores(configs.size());
  std::vector<std::string> keys(configs.size());
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (!configs[i].result_store.empty()) {
      stores[i] = store::StoreRegistry::instance().open(configs[i].result_store);
      keys[i] = store::run_key(configs[i]);
      if (stores[i]->get(keys[i], &results[i])) {
        ++store_hits;
        continue;
      }
      ++store_misses;
    }
    todo.push_back(i);
  }

  if (!todo.empty()) {
    if (threads <= 0) {
      // One knob surface (DESIGN.md §15): a config-file `threads` key
      // steers the sweep pool too. An explicit harness argument wins;
      // below that, the first config asking for a count decides.
      for (const std::size_t i : todo) {
        if (configs[i].threads > 0) {
          threads = configs[i].threads;
          break;
        }
      }
    }
    threads = resolve_threads(threads);
    const auto n_workers = static_cast<std::size_t>(threads) < todo.size()
                               ? static_cast<std::size_t>(threads)
                               : todo.size();
    // Work-stealing via a shared cursor: each worker claims the next
    // unstarted run the moment it goes idle, so one long moving-hotspot
    // run cannot strand a statically assigned tail behind it. Result
    // ordering and per-run seeding are untouched — slot i always holds
    // configs[i] run with configs[i].seed, whoever executes it.
    std::atomic<std::size_t> next{0};
    std::vector<SweepWorkerStats> worker_stats(n_workers);
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      pool.emplace_back([&, w] {
        SweepWorkerStats& stats = worker_stats[w];
        for (;;) {
          const std::size_t t = next.fetch_add(1);
          if (t >= todo.size()) return;
          const std::size_t i = todo[t];
          const auto run_start = std::chrono::steady_clock::now();
          // Build the result worker-locally, then move it into the
          // pre-sized slot: counter snapshots and series never get
          // deep-copied, and peak memory stays one in-flight result per
          // worker above the output vector.
          SimResult r = run_sim(configs[i]);
          results[i] = std::move(r);
          const double run_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
                  .count();
          stats.busy_seconds += run_seconds;
          ++stats.runs;
          // Publish after timing: a cold sweep pays the store write
          // outside busy_seconds, keeping worker-balance numbers about
          // simulation work only.
          if (stores[i] != nullptr) {
            stores[i]->put(keys[i], store::canonical_config_text(configs[i]), results[i],
                           run_seconds);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    if (report != nullptr) report->workers = std::move(worker_stats);
  }

  if (report != nullptr) {
    report->wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
    report->store_hits = store_hits;
    report->store_misses = store_misses;
  }
  return results;
}

// ---------------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------------

Table2Result run_table2(const ExperimentPreset& preset) {
  SimConfig base = preset.base_config();
  base.scenario.fraction_b = 0.0;
  base.scenario.fraction_c_of_rest = 0.8;  // 80% C / 20% V
  base.scenario.n_hotspots = 8;

  std::vector<SimConfig> configs;
  for (const bool c_active : {false, true}) {
    for (const bool cc_on : {false, true}) {
      SimConfig config = base;
      config.scenario.c_nodes_active = c_active;
      config.cc.enabled = cc_on;
      configs.push_back(config);
    }
  }
  const std::vector<SimResult> r = run_parallel(configs, preset.threads);

  Table2Result out;
  out.no_hotspot_off = r[0].all_rcv_gbps;
  out.no_hotspot_on = r[1].all_rcv_gbps;
  out.hotspot_rcv_off = r[2].hotspot_rcv_gbps;
  out.non_hotspot_rcv_off = r[2].non_hotspot_rcv_gbps;
  out.total_throughput_off = r[2].total_throughput_gbps;
  out.hotspot_rcv_on = r[3].hotspot_rcv_gbps;
  out.non_hotspot_rcv_on = r[3].non_hotspot_rcv_gbps;
  out.total_throughput_on = r[3].total_throughput_gbps;
  return out;
}

analysis::TextTable format_table2(const Table2Result& t) {
  analysis::TextTable table({"Metric", "Gbps"});
  table.add_section("No hotspots, no CC");
  table.add_kv("Avg. receive rate", t.no_hotspot_off);
  table.add_section("No hotspots, CC on");
  table.add_kv("Avg. receive rate", t.no_hotspot_on);
  table.add_section("Hotspots, no CC");
  table.add_kv("Hotspots avg. rcv.", t.hotspot_rcv_off);
  table.add_kv("Non-hotspots avg. rcv", t.non_hotspot_rcv_off);
  table.add_section("Hotspots, CC on");
  table.add_kv("Hotspots avg. rcv.", t.hotspot_rcv_on);
  table.add_kv("Non-hotspots avg. rcv", t.non_hotspot_rcv_on);
  table.add_section("Total network throughput, hotspots");
  table.add_kv("Without CC", t.total_throughput_off);
  table.add_kv("With CC", t.total_throughput_on);
  return table;
}

// ---------------------------------------------------------------------------
// Figures 5-8 (windy forest)
// ---------------------------------------------------------------------------

WindyFigure run_windy_figure(const ExperimentPreset& preset, double fraction_b) {
  std::vector<SimConfig> configs;
  for (const double p : preset.p_values) {
    for (const bool cc_on : {false, true}) {
      SimConfig config = preset.base_config();
      config.scenario.fraction_b = fraction_b;
      config.scenario.p = p;
      config.scenario.fraction_c_of_rest = 0.8;
      config.scenario.n_hotspots = 8;
      config.cc.enabled = cc_on;
      configs.push_back(config);
    }
  }
  const std::vector<SimResult> results = run_parallel(configs, preset.threads);

  WindyFigure fig;
  fig.fraction_b = fraction_b;
  fig.non_hotspot_off.name = "nonhot_cc_off";
  fig.non_hotspot_on.name = "nonhot_cc_on";
  fig.tmax.name = "tmax";
  fig.hotspot_off.name = "hot_cc_off";
  fig.hotspot_on.name = "hot_cc_on";

  analysis::Series total_off{"total_cc_off", {}, {}};
  analysis::Series total_on{"total_cc_on", {}, {}};

  const std::int32_t n = preset.clos.node_count();
  const auto n_b = static_cast<std::int32_t>(std::llround(fraction_b * n));
  const std::int32_t rest = n - n_b;
  const auto n_c = static_cast<std::int32_t>(std::llround(0.8 * rest));
  const std::int32_t n_v = rest - n_c;

  for (std::size_t i = 0; i < preset.p_values.size(); ++i) {
    const double p_pct = preset.p_values[i] * 100.0;
    const SimResult& off = results[2 * i];
    const SimResult& on = results[2 * i + 1];
    fig.non_hotspot_off.add(p_pct, off.non_hotspot_rcv_gbps);
    fig.non_hotspot_on.add(p_pct, on.non_hotspot_rcv_gbps);
    fig.hotspot_off.add(p_pct, off.hotspot_rcv_gbps);
    fig.hotspot_on.add(p_pct, on.hotspot_rcv_gbps);
    total_off.add(p_pct, off.total_throughput_gbps);
    total_on.add(p_pct, on.total_throughput_gbps);

    analysis::TmaxInputs tin;
    tin.n_nodes = n;
    tin.n_b = n_b;
    tin.n_c = n_c;
    tin.n_v = n_v;
    tin.p = preset.p_values[i];
    fig.tmax.add(p_pct, analysis::tmax_gbps(tin));
  }
  fig.improvement = analysis::ratio_series("cc_improvement", total_on, total_off);
  return fig;
}

void print_windy_figure(const WindyFigure& fig) {
  std::printf("== Windy forest, %.0f%% B nodes ==\n", fig.fraction_b * 100.0);
  std::printf("-- (a) avg receive rate, non-hotspots (Gb/s) --\n");
  analysis::print_series("p (%)", {&fig.non_hotspot_off, &fig.non_hotspot_on, &fig.tmax});
  std::printf("-- (b) avg receive rate, hotspots (Gb/s) --\n");
  analysis::print_series("p (%)", {&fig.hotspot_off, &fig.hotspot_on});
  std::printf("-- (c) total network throughput improvement by enabling CC (x) --\n");
  analysis::print_series("p (%)", {&fig.improvement});
  std::printf("peak improvement: %.1fx at p=%.0f%%\n\n", fig.improvement.max_y(),
              fig.improvement.x_of_max_y());
}

void write_windy_csv(const WindyFigure& fig, const std::string& prefix) {
  analysis::write_csv(prefix + "_a_nonhotspot.csv", "p_pct",
                      {&fig.non_hotspot_off, &fig.non_hotspot_on, &fig.tmax});
  analysis::write_csv(prefix + "_b_hotspot.csv", "p_pct",
                      {&fig.hotspot_off, &fig.hotspot_on});
  analysis::write_csv(prefix + "_c_improvement.csv", "p_pct", {&fig.improvement});
}

// ---------------------------------------------------------------------------
// CC-algorithm comparison
// ---------------------------------------------------------------------------

CcCompareResult run_cc_compare(const ExperimentPreset& preset,
                               const std::vector<std::string>& algos) {
  CcCompareResult out;
  out.algos = algos.empty() ? ccalg::CcAlgorithmRegistry::instance().names() : algos;
  for (const std::string& algo : out.algos) {
    IBSIM_ASSERT(ccalg::CcAlgorithmRegistry::instance().contains(algo),
                 "run_cc_compare: unknown algorithm name");
  }

  // The three congestion-tree kinds of the paper's taxonomy, at the
  // preset's scale. Traffic, seeds and topology are identical across
  // algorithms — only the reaction point differs.
  struct Spec {
    const char* label;
    traffic::ScenarioSpec scenario;
    bool moving;
  };
  std::vector<Spec> specs;
  {
    Spec silent{"silent forest (B=0%, 8 hotspots)", {}, false};
    silent.scenario.fraction_b = 0.0;
    silent.scenario.fraction_c_of_rest = 0.8;
    silent.scenario.n_hotspots = 8;
    specs.push_back(silent);

    Spec windy{"windy forest (B=100%, p=50%)", {}, false};
    windy.scenario.fraction_b = 1.0;
    windy.scenario.p = 0.5;
    windy.scenario.n_hotspots = 8;
    specs.push_back(windy);

    Spec moving{"moving silent forest (B=0%)", {}, true};
    moving.scenario.fraction_b = 0.0;
    moving.scenario.fraction_c_of_rest = 0.8;
    moving.scenario.n_hotspots = 8;
    specs.push_back(moving);
  }

  std::vector<SimConfig> configs;
  for (const Spec& spec : specs) {
    for (const std::string& algo : out.algos) {
      SimConfig config = preset.base_config();
      config.scenario = spec.scenario;
      config.cc.enabled = true;
      config.cc_algo = algo;
      if (spec.moving) {
        IBSIM_ASSERT(!preset.lifetimes.empty(), "preset needs moving lifetimes");
        const core::Time lifetime = preset.lifetimes[preset.lifetimes.size() / 2];
        config.scenario.hotspot_lifetime = lifetime;
        core::Time sim = lifetime * preset.moving_lifetimes_per_run;
        if (sim < preset.moving_min_sim_time) sim = preset.moving_min_sim_time;
        config.sim_time = sim;
        config.warmup = lifetime < preset.static_warmup ? lifetime : preset.static_warmup;
      }
      configs.push_back(config);
    }
  }
  std::vector<SimResult> results = run_parallel(configs, preset.threads);

  std::size_t next = 0;
  for (const Spec& spec : specs) {
    CcCompareScenario scenario;
    scenario.label = spec.label;
    for (std::size_t a = 0; a < out.algos.size(); ++a) {
      scenario.results.push_back(std::move(results[next++]));
    }
    out.scenarios.push_back(std::move(scenario));
  }
  return out;
}

analysis::TextTable format_cc_compare(const CcCompareResult& result) {
  analysis::TextTable table(
      {"Algorithm", "Hotspot rcv", "Victim rcv", "All rcv", "Total Gb/s"});
  for (const CcCompareScenario& scenario : result.scenarios) {
    table.add_section(scenario.label);
    for (std::size_t a = 0; a < result.algos.size(); ++a) {
      const SimResult& r = scenario.results[a];
      table.add_row({result.algos[a], analysis::fmt(r.hotspot_rcv_gbps),
                     analysis::fmt(r.non_hotspot_rcv_gbps), analysis::fmt(r.all_rcv_gbps),
                     analysis::fmt(r.total_throughput_gbps, 1)});
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// Figures 9-10 (moving hotspots)
// ---------------------------------------------------------------------------

namespace {
MovingCurve run_moving(const ExperimentPreset& preset, const traffic::ScenarioSpec& scenario,
                       std::string label) {
  std::vector<SimConfig> configs;
  for (const core::Time lifetime : preset.lifetimes) {
    for (const bool cc_on : {false, true}) {
      SimConfig config = preset.base_config();
      config.scenario = scenario;
      config.scenario.hotspot_lifetime = lifetime;
      config.cc.enabled = cc_on;
      // Simulate a fixed number of hotspot periods, with a floor so the
      // shortest lifetimes still measure a meaningful window.
      core::Time sim = lifetime * preset.moving_lifetimes_per_run;
      if (sim < preset.moving_min_sim_time) sim = preset.moving_min_sim_time;
      config.sim_time = sim;
      config.warmup = lifetime < preset.static_warmup ? lifetime : preset.static_warmup;
      configs.push_back(config);
    }
  }
  const std::vector<SimResult> results = run_parallel(configs, preset.threads);

  MovingCurve curve;
  curve.label = std::move(label);
  curve.off.name = "all_cc_off";
  curve.on.name = "all_cc_on";
  for (std::size_t i = 0; i < preset.lifetimes.size(); ++i) {
    const double lifetime_ms = static_cast<double>(preset.lifetimes[i]) /
                               static_cast<double>(core::kMillisecond);
    curve.off.add(lifetime_ms, results[2 * i].all_rcv_gbps);
    curve.on.add(lifetime_ms, results[2 * i + 1].all_rcv_gbps);
  }
  return curve;
}
}  // namespace

MovingCurve run_moving_silent(const ExperimentPreset& preset, double fraction_v) {
  traffic::ScenarioSpec scenario;
  scenario.fraction_b = 0.0;
  scenario.fraction_c_of_rest = 1.0 - fraction_v;
  scenario.n_hotspots = 8;
  char label[64];
  std::snprintf(label, sizeof(label), "moving silent, %.0f%% V / %.0f%% C",
                fraction_v * 100.0, (1.0 - fraction_v) * 100.0);
  return run_moving(preset, scenario, label);
}

MovingCurve run_moving_windy(const ExperimentPreset& preset, double p) {
  traffic::ScenarioSpec scenario;
  scenario.fraction_b = 1.0;
  scenario.p = p;
  scenario.n_hotspots = 8;
  char label[64];
  std::snprintf(label, sizeof(label), "moving windy, 100%% B, p=%.0f%%", p * 100.0);
  return run_moving(preset, scenario, label);
}

void print_moving_curve(const MovingCurve& curve) {
  std::printf("== %s ==\n", curve.label.c_str());
  std::printf("-- avg receive rate, all nodes (Gb/s) vs hotspot lifetime (ms) --\n");
  analysis::print_series("lifetime_ms", {&curve.off, &curve.on});
  std::printf("\n");
}

void write_moving_csv(const MovingCurve& curve, const std::string& prefix) {
  analysis::write_csv(prefix + ".csv", "lifetime_ms", {&curve.off, &curve.on});
}

}  // namespace ibsim::sim
